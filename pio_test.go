package pio

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	dev := NewDevice(P300)
	idx, err := Open(dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var clock Clock
	for i := uint64(0); i < 5000; i++ {
		done, err := idx.Insert(clock.Now(), Record{Key: i * 2, Value: i})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(done)
	}
	v, ok, done, err := idx.Search(clock.Now(), 4000)
	if err != nil || !ok || v != 2000 {
		t.Fatalf("Search: %v %v %v", v, ok, err)
	}
	clock.Advance(done)
	recs, done, err := idx.RangeSearch(clock.Now(), 100, 200)
	if err != nil || len(recs) != 50 {
		t.Fatalf("Range: %d %v", len(recs), err)
	}
	clock.Advance(done)
	got, done, err := idx.SearchMany(clock.Now(), []Key{2, 4, 6, 9999999})
	if err != nil || len(got) != 3 {
		t.Fatalf("SearchMany: %v %v", got, err)
	}
	clock.Advance(done)
	done, err = idx.Delete(clock.Now(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	_, ok, _, err = idx.Search(clock.Now(), 4000)
	if err != nil || ok {
		t.Fatalf("deleted key visible: %v %v", ok, err)
	}
	done, err = idx.Checkpoint(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	if idx.Pending() != 0 {
		t.Fatalf("pending after checkpoint: %d", idx.Pending())
	}
	if idx.Count() != 4999 {
		t.Fatalf("count = %d", idx.Count())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if clock.Elapsed() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if dev.Stats().TotalOps() == 0 {
		t.Fatal("no device traffic")
	}
}

func TestBulkLoadAndHeight(t *testing.T) {
	dev := NewDevice(Iodrive)
	idx, err := Open(dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 100000)
	for i := range recs {
		recs[i] = Record{Key: uint64(i) * 3, Value: uint64(i)}
	}
	if err := idx.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if idx.Count() != 100000 || idx.Height() < 2 {
		t.Fatalf("count=%d height=%d", idx.Count(), idx.Height())
	}
	v, ok, _, err := idx.Search(0, 150000)
	if err != nil || !ok || v != 50000 {
		t.Fatalf("Search: %v %v %v", v, ok, err)
	}
}

func TestWALRecovery(t *testing.T) {
	dev := NewDevice(F120)
	opts := DefaultOptions()
	opts.WAL = true
	idx, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var clock Clock
	for i := uint64(0); i < 100; i++ {
		done, err := idx.Insert(clock.Now(), Record{Key: i, Value: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(done)
	}
	// Force the log (commit), then crash and recover.
	done, err := idx.Flush(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	idx.Crash()
	rep, done, err := idx.Recover(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	_ = rep
	for i := uint64(0); i < 100; i++ {
		v, ok, d, err := idx.Search(clock.Now(), i)
		if err != nil || !ok || v != i+1 {
			t.Fatalf("after recovery Search(%d): %v %v %v", i, v, ok, err)
		}
		clock.Advance(d)
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{Iodrive, P300, F120, X25E, X25M, Vertex2} {
		d := NewDevice(p)
		if d == nil {
			t.Fatalf("nil device for %s", p)
		}
	}
	if _, err := NewDeviceNamed("bogus"); err == nil {
		t.Fatal("bogus profile accepted")
	}
}

func TestConcurrentWrapper(t *testing.T) {
	dev := NewDevice(P300)
	idx, err := Open(dev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := idx.Concurrent()
	done, err := c.Insert(0, Record{Key: 1, Value: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _, err := c.Search(done, 1)
	if err != nil || !ok || v != 2 {
		t.Fatalf("concurrent search: %v %v %v", v, ok, err)
	}
}
