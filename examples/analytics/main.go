// Analytics: bulk-load a large index and compare the legacy leaf-chain
// range scan (classic B+-tree) with the PIO B-tree's parallel range search
// across range widths — the workload family of the paper's Figure 10,
// framed as an analytics scan over an orders table.
package main

import (
	"fmt"
	"log"

	pio "repro"
)

func main() {
	const n = 500_000

	dev := pio.NewDevice(pio.Iodrive)
	opts := pio.DefaultOptions()
	opts.LeafSegs = 4 // 8KB leaves: package-level parallelism on scans
	idx, err := pio.Open(dev, opts)
	if err != nil {
		log.Fatal(err)
	}

	// "orders" table: one index record per order, keyed by order id.
	recs := make([]pio.Record, n)
	for i := range recs {
		recs[i] = pio.Record{Key: uint64(i) * 4, Value: uint64(i)}
	}
	if err := idx.BulkLoad(recs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d orders (height %d)\n", n, idx.Height())

	var clock pio.Clock
	fmt.Println("\nscan width -> records, simulated latency")
	for _, width := range []uint64{100, 1_000, 10_000, 100_000} {
		lo := uint64(n/2) * 4
		hi := lo + width*4
		start := clock.Now()
		recs, done, err := idx.RangeSearch(start, lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		clock.Advance(done)
		fmt.Printf("  %7d keys -> %7d records in %8.3fms\n",
			width, len(recs), float64(done-start)/1e6)
	}

	// Aggregate over a scan: total "revenue" in an id range.
	lo, hi := uint64(100_000)*4, uint64(150_000)*4
	out, done, err := idx.RangeSearch(clock.Now(), lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	var sum uint64
	for _, r := range out {
		sum += r.Value
	}
	fmt.Printf("\naggregate over [%d,%d): %d rows, sum=%d\n", lo, hi, len(out), sum)

	st := idx.Stats()
	fmt.Printf("psync reads issued: %d (each carrying up to PioMax=%d leaf requests)\n",
		st.PsyncReads, opts.PioMax)
}
