// Recovery: demonstrate the PIO B-tree's crash-recovery scheme
// (Section 3.4): logical redo logs per buffered update, flush event logs
// bracketing every OPQ flush, and flush undo logs for incomplete flushes.
// The example commits work, crashes the volatile state (OPQ, LSMap,
// buffer pool), recovers from the WAL, and verifies nothing was lost.
package main

import (
	"fmt"
	"log"

	pio "repro"
)

func main() {
	dev := pio.NewDevice(pio.P300)
	opts := pio.DefaultOptions()
	opts.WAL = true
	idx, err := pio.Open(dev, opts)
	if err != nil {
		log.Fatal(err)
	}

	var clock pio.Clock

	// Phase 1: inserts that get flushed to the tree (completed flush).
	for i := uint64(0); i < 2000; i++ {
		done, err := idx.Insert(clock.Now(), pio.Record{Key: i, Value: i * 7})
		if err != nil {
			log.Fatal(err)
		}
		clock.Advance(done)
	}
	done, err := idx.Flush(clock.Now())
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	fmt.Printf("phase 1: 2000 inserts flushed to the tree (%.3fs simulated)\n", clock.Elapsed())

	// Phase 2: committed-but-unflushed work. The next Flush makes the
	// logical redo logs durable (WAL rule) and consumes the entries; then
	// a further batch of inserts stays in the OPQ with forced logs, and a
	// final batch is appended WITHOUT a commit point — that uncommitted
	// tail is legitimately lost at the crash (no-steal policy).
	for i := uint64(2000); i < 2500; i++ {
		done, err := idx.Insert(clock.Now(), pio.Record{Key: i, Value: i * 7})
		if err != nil {
			log.Fatal(err)
		}
		clock.Advance(done)
	}
	done, err = idx.Flush(clock.Now()) // commit point: forces the WAL
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	for i := uint64(2500); i < 2600; i++ {
		done, err := idx.Insert(clock.Now(), pio.Record{Key: i, Value: i * 7})
		if err != nil {
			log.Fatal(err)
		}
		clock.Advance(done)
	}
	fmt.Printf("phase 2: %d uncommitted operations pending in the OPQ\n", idx.Pending())

	// Crash: OPQ, LSMap and buffer pool vanish; the SSD contents and the
	// forced WAL records survive.
	idx.Crash()
	fmt.Println("crash! volatile state lost")

	rep, done, err := idx.Recover(clock.Now())
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	fmt.Printf("recovery: %d flushes undone (%d pages restored), %d entries redone, %d skipped as already flushed\n",
		rep.UndoneFlushes, rep.UndoPagesApplied, rep.RedoneEntries, rep.SkippedEntries)

	// Verify: every committed key must be visible.
	missing := 0
	for i := uint64(0); i < 2500; i++ {
		_, ok, d, err := idx.Search(clock.Now(), i)
		if err != nil {
			log.Fatal(err)
		}
		clock.Advance(d)
		if !ok {
			missing++
		}
	}
	fmt.Printf("verification: %d/2500 committed keys missing after recovery\n", missing)
	if missing > 0 {
		log.Fatal("data loss detected")
	}
	if err := idx.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered index is consistent")
}
