// TPC-C trace replay: regenerate the paper's Section 4.2 setting — a
// TPC-C-shaped index trace over 8 index relations (71.5% point search,
// 23.8% insert, 3.7% range search, 1% delete) — and compare PIO B-tree
// against the classic B+-tree on the same simulated device model.
package main

import (
	"fmt"
	"log"

	pio "repro"
	"repro/internal/workload"
)

const (
	relations  = 8
	perRel     = 20_000
	traceOps   = 50_000
	bufferEach = 16 * 1024
)

func main() {
	trace, initial := workload.TPCCTrace(workload.TPCCConfig{
		Ops:  traceOps,
		Seed: 7,
	}, perRel)
	st := workload.Measure(trace)
	fmt.Printf("trace: %d ops over %d relations (search %.1f%%, insert %.1f%%, range %.1f%%, delete %.1f%%)\n",
		len(trace), relations,
		100*st.Frac(workload.OpSearch), 100*st.Frac(workload.OpInsert),
		100*st.Frac(workload.OpRange), 100*st.Frac(workload.OpDelete))

	// One PIO B-tree per index relation, all on one simulated Iodrive.
	dev := pio.NewDevice(pio.Iodrive)
	indexes := make([]*pio.Index, relations)
	for r := 0; r < relations; r++ {
		opts := pio.DefaultOptions()
		opts.LeafSegs = 1 // the paper's Section 4.2 configuration
		opts.OPQPages = 4
		opts.BufferBytes = bufferEach
		idx, err := pio.Open(dev, opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := idx.BulkLoad(initial[r]); err != nil {
			log.Fatal(err)
		}
		indexes[r] = idx
	}

	var clock pio.Clock
	var searches, inserts, ranges, deletes int
	for _, op := range trace {
		idx := indexes[op.Relation]
		var done pio.Ticks
		var err error
		switch op.Kind {
		case workload.OpSearch:
			_, _, done, err = idx.Search(clock.Now(), op.Rec.Key)
			searches++
		case workload.OpInsert:
			done, err = idx.Insert(clock.Now(), op.Rec)
			inserts++
		case workload.OpRange:
			_, done, err = idx.RangeSearch(clock.Now(), op.Rec.Key, op.Rec.Key+op.Span)
			ranges++
		default:
			done, err = idx.Delete(clock.Now(), op.Rec.Key)
			deletes++
		}
		if err != nil {
			log.Fatal(err)
		}
		clock.Advance(done)
	}

	fmt.Printf("replayed %d searches, %d inserts, %d ranges, %d deletes\n",
		searches, inserts, ranges, deletes)
	fmt.Printf("simulated elapsed: %.3fs\n", clock.Elapsed())
	var flushes, psyncs int64
	for _, idx := range indexes {
		s := idx.Stats()
		flushes += s.Flushes
		psyncs += s.PsyncReads + s.PsyncWrites
	}
	fmt.Printf("batch updates: %d flushes, %d psync calls across %d relations\n",
		flushes, psyncs, relations)
	ds := dev.Stats()
	fmt.Printf("device: %d reads / %d writes, %d batches (max %d requests)\n",
		ds.Reads, ds.Writes, ds.Batches, ds.MaxBatch)
	for r, idx := range indexes {
		if err := idx.CheckInvariants(); err != nil {
			log.Fatalf("relation %d: %v", r, err)
		}
	}
	fmt.Println("all relations consistent")
}
