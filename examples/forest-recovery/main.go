// Forest recovery: demonstrate crash-safe sharding. The forest attaches
// one WAL per shard and the flush coordinator runs a two-phase group
// commit: one ganged force makes every member's FlushStart/undo records
// durable before the data writes, a second commits their FlushEnds — two
// blocking log submissions per group instead of two per shard.
//
// The example commits three classes of work, crashes, recovers with
// Forest.Recover, and verifies the durable prefix survived exactly:
//
//  1. flushed entries (consumed by a committed group flush);
//  2. committed-but-unflushed entries (redo records made durable by an
//     explicit Sync group commit, redone into the OPQs);
//  3. an uncommitted tail (never forced — legitimately lost, no-steal).
package main

import (
	"fmt"
	"log"

	pio "repro"
)

const (
	shards  = 4
	stride  = 1 << 20
	flushed = 400 // per shard, phase 1
	synced  = 30  // per shard, phase 2
	lost    = 10  // per shard, phase 3
)

func key(shard, j int) pio.Key { return pio.Key(shard)*stride + pio.Key(j) }

func main() {
	dev := pio.NewDevice(pio.P300)
	opts := pio.DefaultForestOptions()
	opts.WAL = true
	opts.Shards = shards
	// Range-partition so every shard sees all three phases.
	opts.RangeBounds = make([]pio.Key, shards-1)
	for i := range opts.RangeBounds {
		opts.RangeBounds[i] = pio.Key(i+1) * stride
	}
	fr, err := pio.OpenForest(dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	var clock pio.Clock
	insert := func(shard, j int) {
		k := key(shard, j)
		done, err := fr.Insert(clock.Now(), pio.Record{Key: k, Value: uint64(k) * 3})
		if err != nil {
			log.Fatal(err)
		}
		clock.Advance(done)
	}

	// Phase 1: enough inserts on every shard that the coordinator runs
	// group flushes (each one a two-phase group commit), then one explicit
	// flush to settle the queues into committed flushes.
	for j := 0; j < flushed; j++ {
		for s := 0; s < shards; s++ {
			insert(s, j)
		}
	}
	done, err := fr.Flush(clock.Now())
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	st := fr.Stats()
	fmt.Printf("phase 1: %d inserts flushed; %d group flushes, %d ganged log forces (%.3fs simulated)\n",
		shards*flushed, st.GroupFlushes, st.LogGangSubmits, clock.Elapsed())

	// Phase 2: buffered work committed by one ganged Sync — the redo
	// records of all four shards ride a single blocking submission.
	for j := 0; j < synced; j++ {
		for s := 0; s < shards; s++ {
			insert(s, flushed+j)
		}
	}
	done, err = fr.Sync(clock.Now())
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	fmt.Printf("phase 2: %d operations committed in the OPQs by one group commit\n", shards*synced)

	// Phase 3: an uncommitted tail, never forced.
	for j := 0; j < lost; j++ {
		for s := 0; s < shards; s++ {
			insert(s, flushed+synced+j)
		}
	}
	fmt.Printf("phase 3: %d uncommitted operations pending\n", shards*lost)

	// Crash: OPQs, LSMaps, buffer pools and unforced log tails vanish.
	fr.Crash()
	fmt.Println("crash! volatile state lost on every shard")

	rep, done, err := fr.Recover(clock.Now())
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	fmt.Printf("recovery: %d flushes undone (%d pages restored), %d entries redone, %d skipped as flushed\n",
		rep.Total.UndoneFlushes, rep.Total.UndoPagesApplied, rep.Total.RedoneEntries, rep.Total.SkippedEntries)

	// Verify the durable prefix: phases 1-2 present, phase 3 gone.
	missing, ghosts := 0, 0
	for s := 0; s < shards; s++ {
		for j := 0; j < flushed+synced+lost; j++ {
			k := key(s, j)
			_, ok, d, err := fr.Search(clock.Now(), k)
			if err != nil {
				log.Fatal(err)
			}
			clock.Advance(d)
			if j < flushed+synced && !ok {
				missing++
			}
			if j >= flushed+synced && ok {
				ghosts++
			}
		}
	}
	fmt.Printf("verification: %d committed keys missing, %d uncommitted keys resurrected\n", missing, ghosts)
	if missing > 0 || ghosts > 0 {
		log.Fatal("recovery restored the wrong prefix")
	}
	if err := fr.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered forest is consistent on every shard")
}
