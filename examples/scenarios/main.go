// Scenarios: walk through the adaptive multi-tenant scenario engine.
//
// A scenario is a phased traffic program played against a live forest on
// one continuous virtual timeline: tenants with different stripes, mixes
// and skews share the per-phase op budget, and an adaptation thread
// periodically rebalances hot shards (Forest.AutoRebalance) and re-runs
// the paper's eq.-(10) tuner on the observed insert ratio, applying the
// retuned OPQ budget to the running forest (Forest.ApplyOPQBudget).
//
// This example first runs a small custom scenario built from scratch —
// a two-phase hotspot flip with a crash-restart — then replays the named
// CI suite (diurnal, skewdrift, burstcrash) at a reduced scale and
// prints each per-phase trajectory table.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flashsim"
	"repro/internal/scenario"
	"repro/internal/vtime"
)

func main() {
	// --- 1. A custom scenario from scratch ------------------------------
	//
	// Two tenants split the key domain. In phase one, "left" dominates;
	// in phase two the roles flip AND the forest crash-restarts first, so
	// the flipped traffic lands on a WAL-recovered forest. The engine
	// verifies recovery preserved every committed key.
	custom := scenario.Scenario{
		Name:    "flip",
		Title:   "Hotspot flip across a crash-restart",
		Stripes: 2,
		Adapt: scenario.Adapt{
			Interval: 5 * vtime.Millisecond,
			Policy:   core.RebalancePolicy{MinOps: 100, HotFactor: 1.5},
			Retune:   true,
		},
		Phases: []scenario.Phase{
			{Name: "left-heavy", Tenants: []scenario.Tenant{
				{Name: "left", Stripe: 0, Weight: 9, InsertRatio: 0.6, ZipfS: 1.2},
				{Name: "right", Stripe: 1, Weight: 1, InsertRatio: 0.1},
			}},
			{Name: "right-heavy", CrashRestart: true, Tenants: []scenario.Tenant{
				{Name: "left", Stripe: 0, Weight: 1, InsertRatio: 0.1},
				{Name: "right", Stripe: 1, Weight: 9, InsertRatio: 0.6, ZipfS: 1.2},
			}},
		},
	}
	cfg := scenario.Config{
		Device:         flashsim.Iodrive(),
		InitialEntries: 12_000,
		OpsPerPhase:    1_200,
		MemBytes:       8 * 1024,
		Seed:           7,
	}
	res, err := scenario.Run(custom, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom scenario %q: %d phases, makespan %.1fms\n",
		res.Scenario, len(res.Phases), res.End.Millis())
	for _, pr := range res.Phases {
		fmt.Printf("  %-12s %5d ops  %6.1f kops/s  p99 %8.1fus  %d migrations",
			pr.Name, pr.Ops, pr.KopsPerSec, pr.P99US, pr.Migrations)
		if pr.RedoneEntries > 0 {
			fmt.Printf("  (recovered: %d WAL entries replayed)", pr.RedoneEntries)
		}
		fmt.Println()
	}
	fmt.Printf("  durability: %d keys expected, %d found after crash-restart\n\n",
		res.ExpectedKeys, res.FinalKeys)
	if res.FinalKeys != res.ExpectedKeys {
		log.Fatal("scenario lost keys")
	}

	// --- 2. The named CI suite ------------------------------------------
	//
	// The same three scenarios CI gates (ci/baselines/BENCH_scenario_*),
	// rendered through the bench table the gate consumes. Deterministic:
	// rerunning this example prints byte-identical tables.
	s := bench.QuickScale()
	for _, sc := range scenario.All() {
		tables, err := bench.ScenarioBench(sc, s)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
}
