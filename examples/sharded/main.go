// Sharded: drive a mixed insert/search/range workload from many real
// goroutines against PIO forests of growing shard count on one
// multi-channel device. The forest is range-partitioned and each worker
// owns a contiguous key stripe (the partition-by-tenant layout), so a
// shard's OPQ flush only ever stalls the workers whose stripes live
// there. Each goroutine owns a private virtual timeline; the makespan is
// the latest completion.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	pio "repro"
)

func main() {
	var (
		workers = flag.Int("workers", 16, "concurrent client goroutines")
		ops     = flag.Int("ops", 2_000, "operations per worker")
		n       = flag.Int("n", 200_000, "bulk-loaded records")
	)
	flag.Parse()

	fmt.Printf("mixed workload: %d workers x %d ops, N=%d, device iodrive (16 channels)\n\n",
		*workers, *ops, *n)
	fmt.Println("shards -> makespan, flushes, merged flush groups, vlock wait")
	for _, shards := range []int{1, 2, 4, 8} {
		run(shards, *workers, *ops, *n)
	}
}

func run(shards, workers, opsPerWorker, n int) {
	dev := pio.NewDevice(pio.Iodrive)
	opts := pio.DefaultForestOptions()
	opts.Shards = shards
	// Range-partition the loaded key domain [0, n*16) into equal stripes.
	opts.RangeBounds = nil
	if shards > 1 {
		opts.RangeBounds = make([]pio.Key, shards-1)
		for j := range opts.RangeBounds {
			opts.RangeBounds[j] = pio.Key(j+1) * pio.Key(n/shards) * 16
		}
	}
	// Weak scaling: grow the global OPQ and buffer budgets with the shard
	// count so every shard keeps the single-tree resources (the scale-out
	// configuration; the fixed-budget tradeoff is measured by the `forest`
	// experiment in internal/bench).
	opts.OPQPages = 4 * shards // DefaultOptions' 4-page OPQ per shard
	opts.BufferBytes = 64 * 1024 * shards
	fr, err := pio.OpenForest(dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	recs := make([]pio.Record, n)
	for i := range recs {
		recs[i] = pio.Record{Key: uint64(i)*16 + 8, Value: uint64(i)}
	}
	if err := fr.BulkLoad(recs); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	makespans := make([]pio.Ticks, workers)
	stripe := n / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var clock pio.Clock
			lo := w * stripe
			for i := 0; i < opsPerWorker; i++ {
				var done pio.Ticks
				var err error
				switch i % 4 {
				case 0, 1: // 50% inserts of fresh in-stripe keys
					k := uint64(lo+i%stripe)*16 + 1
					done, err = fr.Insert(clock.Now(), pio.Record{Key: k, Value: uint64(i)})
				case 2: // 25% point searches of loaded in-stripe keys
					k := uint64(lo+(i*7)%stripe)*16 + 8
					_, _, done, err = fr.Search(clock.Now(), k)
				default: // 25% short in-stripe range scans
					rlo := uint64(lo+(i*13)%stripe) * 16
					_, done, err = fr.RangeSearch(clock.Now(), rlo, rlo+512)
				}
				if err != nil {
					log.Fatal(err)
				}
				clock.Advance(done)
			}
			makespans[w] = clock.Now()
		}(w)
	}
	wg.Wait()

	var makespan pio.Ticks
	for _, m := range makespans {
		if m > makespan {
			makespan = m
		}
	}
	if err := fr.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	st := fr.Stats()
	fmt.Printf("  %2d  -> %8.2fms  flushes %4d  gangs %3d (%.1f shards/group)  vlock wait %6.2fms\n",
		shards, makespan.Millis(), st.Tree.Flushes, st.GangSubmits,
		float64(st.GroupedShards)/float64(max64(st.GroupFlushes, 1)),
		st.VLockContended.Millis())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
