// Quickstart: build a PIO B-tree on a simulated flash SSD, insert,
// search, range-scan and delete, and print the simulated time and device
// activity.
package main

import (
	"fmt"
	"log"

	pio "repro"
)

func main() {
	// A simulated Micron P300 (one of the paper's three main devices).
	dev := pio.NewDevice(pio.P300)
	idx, err := pio.Open(dev, pio.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	var clock pio.Clock

	// Insert 100k records. Updates are buffered in the Operation Queue and
	// batch-flushed via psync I/O, so most inserts complete instantly.
	for i := uint64(0); i < 100_000; i++ {
		done, err := idx.Insert(clock.Now(), pio.Record{Key: i * 10, Value: i})
		if err != nil {
			log.Fatal(err)
		}
		clock.Advance(done)
	}
	fmt.Printf("inserted 100k records in %.3fs simulated (height %d, %d still queued)\n",
		clock.Elapsed(), idx.Height(), idx.Pending())

	// Point search.
	v, ok, done, err := idx.Search(clock.Now(), 500_000)
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	fmt.Printf("search(500000) = %d, found=%v\n", v, ok)

	// Batched multi-path search: one psync call per tree level resolves
	// all keys at once.
	keys := make([]pio.Key, 64)
	for i := range keys {
		keys[i] = uint64(i) * 10_000
	}
	got, done, err := idx.SearchMany(clock.Now(), keys)
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	fmt.Printf("MPSearch resolved %d/%d keys in one batch\n", len(got), len(keys))

	// Parallel range search (prange): all leaves of the range are read in
	// one psync batch instead of chasing the leaf chain.
	recs, done, err := idx.RangeSearch(clock.Now(), 100_000, 120_000)
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	fmt.Printf("prange [100000,120000) -> %d records\n", len(recs))

	// Delete and verify.
	done, err = idx.Delete(clock.Now(), 500_000)
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	_, ok, done, err = idx.Search(clock.Now(), 500_000)
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	fmt.Printf("after delete, found=%v\n", ok)

	// Flush everything and show the stats.
	done, err = idx.Checkpoint(clock.Now())
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	st := idx.Stats()
	ds := dev.Stats()
	fmt.Printf("totals: %.3fs simulated, %d batch flushes, %d psync reads, %d psync writes\n",
		clock.Elapsed(), st.Flushes, st.PsyncReads, st.PsyncWrites)
	fmt.Printf("device: %d reads, %d writes, largest batch %d requests\n",
		ds.Reads, ds.Writes, ds.MaxBatch)
	if err := idx.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants OK")
}
