// Rebalance: demonstrate online shard rebalancing. A range-partitioned
// forest serves a skewed tenant whose stripe holds most of the keys and
// absorbs all the traffic; the per-shard load stats expose the hotspot,
// and AutoRebalance splits the hot shard at its median key toward the
// coldest shard — streaming the key range in bounded chunks while
// searches and inserts keep flowing, with every protocol step
// (MigrationStart, per-chunk KeyMoved, MigrationEnd) committed through
// the WAL group-commit path.
//
// The example then crashes the forest in the middle of a SECOND
// migration and shows Forest.Recover resuming it from the durable
// frontier: no key is lost or duplicated, and the routing table comes
// back consistent.
package main

import (
	"fmt"
	"log"

	pio "repro"
)

const (
	shards = 4
	hotN   = 6000 // keys in the dominant tenant's stripe
	coldN  = 500  // keys per cold stripe
)

func main() {
	dev := pio.NewDevice(pio.Iodrive)
	opts := pio.DefaultForestOptions()
	opts.WAL = true
	opts.Shards = shards
	opts.MigrationChunk = 256
	// Stripe 0 carries the dominant tenant, the rest are small.
	total := hotN + (shards-1)*coldN
	opts.RangeBounds = make([]pio.Key, shards-1)
	for i := range opts.RangeBounds {
		opts.RangeBounds[i] = pio.Key(hotN+i*coldN) * 16
	}
	fr, err := pio.OpenForest(dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	recs := make([]pio.Record, total)
	for i := range recs {
		recs[i] = pio.Record{Key: pio.Key(i)*16 + 8, Value: pio.Value(i)}
	}
	if err := fr.BulkLoad(recs); err != nil {
		log.Fatal(err)
	}

	// Prime the load-delta baseline, then hammer the hot stripe only.
	var clock pio.Clock
	if _, _, _, _, err := fr.AutoRebalance(clock.Now(), pio.RebalancePolicy{}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		r := recs[i%hotN]
		_, _, done, err := fr.Search(clock.Now(), r.Key)
		if err != nil {
			log.Fatal(err)
		}
		clock.Advance(done)
	}
	st := fr.Stats()
	fmt.Println("per-shard load after the skewed burst (ops/keys):")
	for i, l := range st.ShardLoads {
		fmt.Printf("  shard %d: %5d ops, %5d keys\n", i, l.Ops, l.Keys)
	}

	// The policy sees the imbalance and splits the hot shard at its
	// median key toward the coldest shard — online.
	moved, from, to, done, err := fr.AutoRebalance(clock.Now(), pio.RebalancePolicy{MinOps: 1000, HotFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	st = fr.Stats()
	fmt.Printf("\nAutoRebalance: moved=%v shard %d -> %d (%d keys streamed, routing epoch %d)\n",
		moved, from, to, st.MigratedKeys, st.RoutingEpoch)
	for i, l := range st.ShardLoads {
		fmt.Printf("  shard %d: %5d keys\n", i, l.Keys)
	}

	// Keys keep resolving through the new routing.
	probe := recs[hotN*3/4]
	v, ok, done, err := fr.Search(clock.Now(), probe.Key)
	if err != nil || !ok || v != probe.Value {
		log.Fatalf("probe after split: %v %v %v", v, ok, err)
	}
	clock.Advance(done)

	// Now crash halfway through a second migration: merge the split-off
	// range back, but stop after the first chunk and pull the plug.
	lo, hi := pio.Key(hotN/2)*16, pio.Key(hotN)*16
	mig, done, err := fr.StartMigration(clock.Now(), lo, hi, to, from)
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	if _, done, err = mig.Step(clock.Now()); err != nil { // one durable chunk
		log.Fatal(err)
	}
	clock.Advance(done)
	fmt.Printf("\ncrash mid-migration (1 of several chunks durable, frontier in the WAL)...\n")
	fr.Crash()
	rep, done, err := fr.Recover(clock.Now())
	if err != nil {
		log.Fatal(err)
	}
	clock.Advance(done)
	fmt.Printf("Recover: resumed=%d rolledBack=%d keysMoved=%d keysPurged=%d\n",
		rep.ResumedMigrations, rep.RolledBackMigrations, rep.MigrationKeysMoved, rep.MigrationKeysPurged)

	// Every key is still there exactly once.
	if got := fr.Count(); got != int64(total) {
		log.Fatalf("count %d after recovery, want %d", got, total)
	}
	if err := fr.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d keys intact; routing rules: %d, epoch %d\n",
		total, len(fr.Routing().Rules()), fr.Routing().Epoch())
}
