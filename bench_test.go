package pio

// One testing.B benchmark per table/figure of the paper's evaluation.
// Each benchmark regenerates its figure through the internal/bench harness
// and reports headline metrics via b.ReportMetric, so `go test -bench=.`
// prints the series the paper plots. Absolute numbers are simulated time;
// the shapes (who wins, by what factor) are the reproduction target —
// see EXPERIMENTS.md for the paper-vs-measured record.

import (
	"strconv"
	"testing"

	"repro/internal/bench"
)

// benchScale keeps `go test -bench=.` fast while preserving the paper's
// N/M proportions; run cmd/pioexp for the full default scale.
func benchScale() bench.Scale {
	s := bench.QuickScale()
	s.InitialEntries = 50_000
	s.Ops = 5_000
	s.MemBytes = 16 * 1024
	return s
}

// runFig executes one registered experiment once per benchmark iteration.
func runFig(b *testing.B, id string) []bench.Table {
	b.Helper()
	var tables []bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = bench.Run(id, benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

// cell parses a numeric table cell.
func cell(b *testing.B, t bench.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell %d,%d = %q", row, col, t.Rows[row][col])
	}
	return v
}

// BenchmarkFig2LatencyVsIOSize regenerates Figure 2 (read/write latency vs
// I/O size on six devices) and reports the 4KB/2KB read-latency ratio on
// the P300 (paper shape: close to 1.0 thanks to striping).
func BenchmarkFig2LatencyVsIOSize(b *testing.B) {
	tables := runFig(b, "fig2")
	read := tables[0]
	b.ReportMetric(cell(b, read, 1, 2)/cell(b, read, 0, 2), "p300_4k_over_2k_read_latency")
}

// BenchmarkFig3BandwidthVsOutstd regenerates Figure 3(a,b) and reports the
// OutStd-64 over OutStd-1 read-bandwidth gain on the Iodrive (paper: >10x).
func BenchmarkFig3BandwidthVsOutstd(b *testing.B) {
	tables := runFig(b, "fig3")
	read := tables[0]
	last := len(read.Rows) - 1
	b.ReportMetric(cell(b, read, last, 1)/cell(b, read, 0, 1), "iodrive_bw_gain_1_to_64")
}

// BenchmarkFig3cInterleaved regenerates Figure 3(c) and reports the
// non-interleaved over interleaved bandwidth ratio on the P300 at the
// highest OutStd level (paper: 1.25-1.37x).
func BenchmarkFig3cInterleaved(b *testing.B) {
	tables := runFig(b, "fig3c")
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, last, 3)/cell(b, t, last, 4), "p300_noninterleaved_over_interleaved")
}

// BenchmarkFig4PsyncVsThreads regenerates Figure 4(a,b) and reports the
// psync-over-threads bandwidth ratio on a shared file at the highest level
// (paper: threads collapse to the OutStd-2 level).
func BenchmarkFig4PsyncVsThreads(b *testing.B) {
	tables := runFig(b, "fig4")
	shared := tables[0]
	last := len(shared.Rows) - 1
	b.ReportMetric(cell(b, shared, last, 3)/cell(b, shared, last, 4), "p300_sharedfile_psync_over_threads")
}

// BenchmarkFig4cContextSwitches regenerates Figure 4(c) and reports the
// thread-over-psync context-switch ratio at OutStd 32 (paper: ~32x).
func BenchmarkFig4cContextSwitches(b *testing.B) {
	tables := runFig(b, "fig4c")
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, last, 2)/cell(b, t, last, 1), "ctxswitch_threads_over_psync")
}

// BenchmarkFig9SearchVsBuffer regenerates Figure 9 (point-search time vs
// buffer size) and reports the PIO speedup at the largest buffer on the
// first device (paper: 1.36-1.5x).
func BenchmarkFig9SearchVsBuffer(b *testing.B) {
	tables := runFig(b, "fig9")
	t := tables[0]
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "pio_search_speedup")
}

// BenchmarkFig10RangeSearch regenerates Figure 10 (range-search latency vs
// key range) and reports the prange speedup at the widest range (paper:
// up to ~5x).
func BenchmarkFig10RangeSearch(b *testing.B) {
	tables := runFig(b, "fig10")
	t := tables[0]
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "prange_speedup_widest")
}

// BenchmarkFig11OPQSweep regenerates Figure 11 (insert/search time vs OPQ
// size) and reports the insert speedup of OPQ=1 page over the B+-tree
// (paper: 4.3-8.2x).
func BenchmarkFig11OPQSweep(b *testing.B) {
	tables := runFig(b, "fig11")
	t := tables[0]
	var btIns, opq1 float64
	for r := range t.Rows {
		switch t.Rows[r][0] {
		case "btree":
			btIns = cell(b, t, r, 1)
		case "1":
			opq1 = cell(b, t, r, 1)
		}
	}
	if opq1 > 0 {
		b.ReportMetric(btIns/opq1, "insert_speedup_opq1")
	}
}

// BenchmarkFig12MixedWorkloads regenerates Figure 12 (four indexes, five
// insert/search ratios) and reports PIO's total speedup over the B+-tree
// at 90/10 (paper: up to ~11x).
func BenchmarkFig12MixedWorkloads(b *testing.B) {
	tables := runFig(b, "fig12")
	t := tables[0]
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 9), "pio_total_speedup_90_10")
}

// BenchmarkFig13aTPCCTrace regenerates Figure 13(a) (TPC-C trace, single
// process) and reports PIO's total speedup on the first device (paper:
// 1.25-1.49x).
func BenchmarkFig13aTPCCTrace(b *testing.B) {
	tables := runFig(b, "fig13a")
	t := tables[0]
	b.ReportMetric(cell(b, t, 1, 7), "pio_tpcc_speedup")
}

// BenchmarkFig13bConcurrent regenerates Figure 13(b) (TPC-C, 1..16
// simulated threads, concurrent PIO vs B-link) and reports the speedup at
// 16 threads on the first device (paper: 1.17-1.49x).
func BenchmarkFig13bConcurrent(b *testing.B) {
	tables := runFig(b, "fig13b")
	t := tables[0]
	// Rows: device x threads; find the first device's threads=16 row.
	for r := range t.Rows {
		if t.Rows[r][1] == "16" {
			b.ReportMetric(cell(b, t, r, 4), "pio_over_blink_16threads")
			break
		}
	}
}

// BenchmarkNodeSizeSweep regenerates the Section 3.2.1 node-size study
// and reports the measured-optimal node size in pages on the first device.
func BenchmarkNodeSizeSweep(b *testing.B) {
	tables := runFig(b, "nodesize")
	t := tables[0]
	bestPages, bestCost := 0.0, 0.0
	for r := range t.Rows {
		c := cell(b, t, r, 2)
		if bestPages == 0 || c < bestCost {
			bestPages, bestCost = cell(b, t, r, 0), c
		}
	}
	b.ReportMetric(bestPages, "measured_optimal_node_pages")
}

// BenchmarkTuneAutoConfig regenerates the Section 3.6 self-tuning table.
func BenchmarkTuneAutoConfig(b *testing.B) {
	tables := runFig(b, "tune")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, 2), "L_opt_first_row")
}

// BenchmarkAblationPsync regenerates the psync/LSMap/PioMax ablations and
// reports the insert slowdown with psync disabled.
func BenchmarkAblationPsync(b *testing.B) {
	tables := runFig(b, "ablation")
	t := tables[0]
	base := cell(b, t, 0, 1)
	off := cell(b, t, 1, 1)
	if base > 0 {
		b.ReportMetric(off/base, "psync_off_insert_slowdown")
	}
}

// BenchmarkPointSearch measures the simulated cost of one PIO point search
// on a bulk-loaded tree (microbenchmark of the public API).
func BenchmarkPointSearch(b *testing.B) {
	dev := NewDevice(P300)
	idx, err := Open(dev, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]Record, 100000)
	for i := range recs {
		recs[i] = Record{Key: uint64(i) * 2, Value: uint64(i)}
	}
	if err := idx.BulkLoad(recs); err != nil {
		b.Fatal(err)
	}
	var clock Clock
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, done, err := idx.Search(clock.Now(), uint64(i%100000)*2)
		if err != nil {
			b.Fatal(err)
		}
		clock.Advance(done)
	}
	b.ReportMetric(clock.Elapsed()/float64(b.N)*1e6, "sim_µs/op")
}

// BenchmarkInsert measures the simulated amortized insert cost (OPQ append
// plus its share of batch updates). The key space wraps so the on-disk
// footprint stays bounded however far b.N scales.
func BenchmarkInsert(b *testing.B) {
	dev := NewDevice(P300)
	opts := DefaultOptions()
	opts.CapacityHint = 256 << 20
	idx, err := Open(dev, opts)
	if err != nil {
		b.Fatal(err)
	}
	var clock Clock
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := idx.Insert(clock.Now(), Record{Key: uint64(i % 1_000_000), Value: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		clock.Advance(done)
	}
	b.ReportMetric(clock.Elapsed()/float64(b.N)*1e6, "sim_µs/op")
}
