// Package pio is the public façade of this reproduction of "B+-tree Index
// Optimization by Exploiting Internal Parallelism of Flash-based Solid
// State Drives" (Roh, Park, Kim, Shin, Lee — PVLDB 5(4), 2011).
//
// It exposes:
//
//   - the PIO B-tree (the paper's contribution): batched multi-path
//     search, parallel range search, Operation-Queue-buffered updates with
//     psync batch flushes, asymmetric append-only leaves, WAL-based crash
//     recovery, and eq.-(10) self-tuning;
//   - the simulated flash SSD substrate the evaluation runs on (device
//     profiles fitted to the paper's six drives);
//   - the comparison indexes (B+-tree, BFTL, FD-tree, B-link tree) behind
//     the same interface.
//
// All operations are timed in simulated ticks: every method takes the
// caller's current virtual time and returns the completion time, so
// experiments are deterministic and hardware-independent. Use Clock for
// convenience when a single timeline suffices.
//
// Quick start:
//
//	dev := pio.NewDevice(pio.P300)
//	idx, err := pio.Open(dev, pio.DefaultOptions())
//	...
//	done, err := idx.Insert(now, pio.Record{Key: 42, Value: 1000})
//	v, ok, done, err := idx.Search(done, 42)
package pio

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faultio"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// Ticks is simulated time in nanoseconds.
type Ticks = vtime.Ticks

// Record is an index record: a key and a data-page pointer.
type Record = kv.Record

// Key and Value alias the record components.
type (
	Key   = kv.Key
	Value = kv.Value
)

// Profile selects a simulated SSD model.
type Profile string

// The six device profiles benchmarked in the paper.
const (
	Iodrive Profile = "iodrive"
	P300    Profile = "p300"
	F120    Profile = "f120"
	X25E    Profile = "x25e"
	X25M    Profile = "x25m"
	Vertex2 Profile = "vertex2"
)

// Device is a simulated flash SSD plus a file space on it.
type Device struct {
	dev    *flashsim.Device
	space  *ssdio.Space
	nextID int
}

// NewDevice creates a fresh simulated SSD of the given profile. Unknown
// profiles panic (they are compile-time constants in practice); use
// NewDeviceNamed for dynamic names.
func NewDevice(p Profile) *Device {
	d, err := NewDeviceNamed(string(p))
	if err != nil {
		panic(err)
	}
	return d
}

// NewDeviceNamed creates a device from a profile name.
func NewDeviceNamed(name string) (*Device, error) {
	cfg, err := flashsim.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	dev, err := flashsim.NewDevice(cfg)
	if err != nil {
		return nil, err
	}
	return &Device{dev: dev, space: ssdio.NewSpace(dev)}, nil
}

// Stats returns device-level counters.
func (d *Device) Stats() flashsim.Stats { return d.dev.Stats() }

// FaultPlane is a compiled fault-injection program installed on a device;
// see Device.InjectFaults.
type FaultPlane = faultio.Plane

// InjectFaults compiles a declarative fault program (see faultio.Parse
// for the grammar, e.g. "transient call=gang p=0.01; permanent
// file=pio-1-shard-2 from=5ms") and installs it on the device's I/O
// plane. Failed submission units never touch file contents, so the
// durable state equals a crash-before-write and WAL recovery reasoning
// applies unchanged. Decisions are deterministic in (seed, file, call,
// vtime, request shape): reruns are byte-reproducible. Returns the plane
// for Stats and Revive.
func (d *Device) InjectFaults(program string, seed uint64) (*FaultPlane, error) {
	prog, err := faultio.Parse(program)
	if err != nil {
		return nil, err
	}
	prog.Seed = seed
	pl := faultio.New(prog)
	d.space.SetInjector(pl)
	return pl, nil
}

// ClearFaults removes the device's fault injector; I/O behaves — and
// costs — exactly as if the hook never existed.
func (d *Device) ClearFaults() { d.space.SetInjector(nil) }

// Options configure a PIO B-tree index.
type Options struct {
	// PageSize is the internal node / leaf segment size in bytes.
	PageSize int
	// LeafSegs is L, the leaf size in segments.
	LeafSegs int
	// OPQPages is O, the Operation Queue budget in pages.
	OPQPages int
	// PioMax bounds requests per psync call.
	PioMax int
	// SPeriod is the OPQ sort period.
	SPeriod int
	// BCnt bounds entries per batch-update flush (<= 0: whole queue).
	BCnt int
	// BufferBytes is the internal-node buffer pool budget.
	BufferBytes int
	// WAL enables write-ahead logging and crash recovery.
	WAL bool
	// CapacityHint sizes the backing file (bytes); default 64MB.
	CapacityHint int64
	// Retry bounds the transient-I/O-fault retry loop (zero value =
	// defaults: 4 retries, 50µs base backoff doubling to 2ms).
	Retry RetryPolicy
}

// RetryPolicy bounds the transient-fault retry loop; see core.RetryPolicy.
type RetryPolicy = core.RetryPolicy

// HealPolicy paces quarantined-shard auto-heal probing; see
// core.HealPolicy.
type HealPolicy = core.HealPolicy

// EvacuationPolicy bounds how long a quarantined shard may stay degraded
// before its range is migrated to healthy shards; see
// core.EvacuationPolicy.
type EvacuationPolicy = core.EvacuationPolicy

// DefaultOptions mirror the paper's Section 4.1 setup at repository scale.
func DefaultOptions() Options {
	return Options{
		PageSize:    2048,
		LeafSegs:    4,
		OPQPages:    4,
		PioMax:      64,
		SPeriod:     5000,
		BCnt:        5000,
		BufferBytes: 64 * 1024,
	}
}

// Index is a PIO B-tree on a simulated SSD.
type Index struct {
	tree *core.Tree
	log  *wal.Log
	opts Options
}

// Open creates a fresh PIO B-tree on dev.
func Open(dev *Device, opts Options) (*Index, error) {
	if opts.PageSize == 0 {
		opts = DefaultOptions()
	}
	cap := opts.CapacityHint
	if cap <= 0 {
		cap = 64 << 20
	}
	dev.nextID++
	f, err := dev.space.Create(fmt.Sprintf("pio-%d", dev.nextID), cap)
	if err != nil {
		return nil, err
	}
	pf, err := pagefile.New(f, opts.PageSize)
	if err != nil {
		return nil, err
	}
	tree, err := core.New(pf, core.Config{
		PageSize:    opts.PageSize,
		LeafSegs:    opts.LeafSegs,
		OPQPages:    opts.OPQPages,
		PioMax:      opts.PioMax,
		SPeriod:     opts.SPeriod,
		BCnt:        opts.BCnt,
		BufferBytes: opts.BufferBytes,
		Retry:       opts.Retry,
	})
	if err != nil {
		return nil, err
	}
	dev.space.SetStuckTimeout(opts.Retry.StuckDeadline())
	idx := &Index{tree: tree, opts: opts}
	if opts.WAL {
		wf, err := dev.space.Create(fmt.Sprintf("pio-wal-%d", dev.nextID), 16<<20)
		if err != nil {
			return nil, err
		}
		idx.log, err = wal.NewLog(wf, opts.PageSize)
		if err != nil {
			return nil, err
		}
		tree.AttachWAL(idx.log)
	}
	return idx, nil
}

// BulkLoad populates an empty index from key-sorted records without
// simulated cost (initial load).
func (ix *Index) BulkLoad(recs []Record) error { return ix.tree.BulkLoad(recs) }

// Insert buffers an index-insert; completion is immediate unless the OPQ
// fills and a batch update runs.
func (ix *Index) Insert(at Ticks, r Record) (Ticks, error) { return ix.tree.Insert(at, r) }

// Delete buffers an index-delete.
func (ix *Index) Delete(at Ticks, k Key) (Ticks, error) { return ix.tree.Delete(at, k) }

// Update buffers an index-update (pointer replacement).
func (ix *Index) Update(at Ticks, r Record) (Ticks, error) { return ix.tree.Update(at, r) }

// Search performs a point search (OPQ first, then the tree).
func (ix *Index) Search(at Ticks, k Key) (Value, bool, Ticks, error) {
	return ix.tree.Search(at, k)
}

// SearchMany resolves a batch of keys with MPSearch (one psync call per
// tree level).
func (ix *Index) SearchMany(at Ticks, keys []Key) (map[Key]Value, Ticks, error) {
	return ix.tree.SearchMany(at, keys)
}

// RangeSearch runs the parallel range search over [lo, hi).
func (ix *Index) RangeSearch(at Ticks, lo, hi Key) ([]Record, Ticks, error) {
	return ix.tree.RangeSearch(at, lo, hi)
}

// Flush forces one batch update of up to BCnt queued operations.
func (ix *Index) Flush(at Ticks) (Ticks, error) { return ix.tree.FlushBatch(at, ix.opts.BCnt) }

// Checkpoint flushes the whole OPQ (and logs a checkpoint when WAL is on).
func (ix *Index) Checkpoint(at Ticks) (Ticks, error) { return ix.tree.Checkpoint(at) }

// Count returns the number of live records.
func (ix *Index) Count() int64 { return ix.tree.Count() }

// Height returns the tree height in levels.
func (ix *Index) Height() int { return ix.tree.Height() }

// Pending returns the number of buffered update operations in the OPQ.
func (ix *Index) Pending() int { return ix.tree.OPQLen() }

// Stats returns PIO B-tree counters (flushes, psync calls, splits...).
func (ix *Index) Stats() core.Stats { return ix.tree.Stats() }

// CheckInvariants validates the on-disk structure (testing/debugging).
func (ix *Index) CheckInvariants() error { return ix.tree.CheckInvariants() }

// Crash simulates a crash (volatile state lost; device contents remain).
// Only meaningful with WAL enabled; follow with Recover.
func (ix *Index) Crash() { ix.tree.CrashVolatileState() }

// Recover replays the WAL per the paper's Section 3.4 and returns a
// report of undone flushes and redone entries.
func (ix *Index) Recover(at Ticks) (core.RecoveryReport, Ticks, error) {
	return ix.tree.Recover(at)
}

// Concurrent wraps the index for simulated multi-threaded use.
func (ix *Index) Concurrent() *core.Concurrent { return core.NewConcurrent(ix.tree) }

// ForestOptions configure a sharded PIO forest (OpenForest).
type ForestOptions struct {
	// Options are the per-tree knobs; OPQPages and BufferBytes are GLOBAL
	// budgets that the forest splits evenly across shards. WAL attaches
	// one write-ahead log per shard and turns the coordinator's group
	// flushes into two-phase group commits (one ganged log force before
	// the data writes, one after).
	Options
	// Shards is the number of partitions (default 4).
	Shards int
	// RangeBounds, when non-nil, selects range partitioning with these
	// ascending split keys (len must be Shards-1): shard i covers
	// [RangeBounds[i-1], RangeBounds[i]). Nil hash-partitions the keys.
	RangeBounds []Key
	// RipeFraction is the OPQ fill ratio at which a shard joins a group
	// flush triggered by another shard (default 0.5).
	RipeFraction float64
	// DisableLogGang forces each group-flush member's log serially instead
	// of ganging the forces (the per-shard baseline the recovery bench
	// compares against).
	DisableLogGang bool
	// MigrationChunk bounds the keys streamed per online-rebalancing
	// chunk (default 256).
	MigrationChunk int
	// DisableLogTruncation keeps the full WAL history; by default a
	// forest checkpoint truncates each log's dead head.
	DisableLogTruncation bool
	// Heal paces the auto-heal prober for quarantined shards (zero value
	// = enabled with defaults; set Disabled for manual Heal only).
	Heal HealPolicy
	// Evacuation bounds how long a shard may stay quarantined before
	// AutoRebalance migrates its range to healthy shards (zero value =
	// enabled with the default deadline).
	Evacuation EvacuationPolicy
}

// RebalancePolicy drives Forest.AutoRebalance off the per-shard load
// stats.
type RebalancePolicy = core.RebalancePolicy

// Migration is an in-flight online key-range move; see
// Forest.StartMigration.
type Migration = core.Migration

// MoveRule is one committed routing-table override; see
// core.RebalancingPartitioner.
type MoveRule = core.MoveRule

// DefaultForestOptions are DefaultOptions spread over 4 shards, with the
// global OPQ budget scaled so each shard keeps the single-tree queue
// depth.
func DefaultForestOptions() ForestOptions {
	o := DefaultOptions()
	o.OPQPages *= 4
	return ForestOptions{Options: o, Shards: 4}
}

// Forest is a sharded PIO B-tree: keys are partitioned across independent
// PIO trees on one device, each with its own Operation Queue and flush
// lock, so a batch flush on one shard never stalls operations on the
// others, and ripe shards flush together through a single concatenated
// psync submission. Unlike Index, all Forest methods are safe for
// concurrent goroutine use.
type Forest struct {
	f    *core.Forest
	opts ForestOptions
}

// OpenForest creates a fresh sharded PIO forest on dev.
func OpenForest(dev *Device, opts ForestOptions) (*Forest, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	if opts.PageSize == 0 {
		// Only the tree knobs default; caller-set forest fields
		// (RangeBounds, RipeFraction, Shards) and the non-tuning Options
		// (WAL, CapacityHint) are preserved. The global OPQ budget scales
		// with the shard count so every shard keeps the single-tree queue
		// depth.
		useWAL, capHint := opts.WAL, opts.CapacityHint
		opts.Options = DefaultOptions()
		opts.WAL, opts.CapacityHint = useWAL, capHint
		opts.OPQPages *= opts.Shards
	}
	var part core.Partitioner
	if opts.RangeBounds != nil {
		if len(opts.RangeBounds) != opts.Shards-1 {
			return nil, fmt.Errorf("pio: %d range bounds for %d shards, want %d",
				len(opts.RangeBounds), opts.Shards, opts.Shards-1)
		}
		part = core.RangePartitioner{Bounds: opts.RangeBounds}
	}
	cap := opts.CapacityHint
	if cap <= 0 {
		cap = 64 << 20
	}
	perShard := cap/int64(opts.Shards) + 1<<20
	dev.nextID++
	pfs := make([]*pagefile.PageFile, opts.Shards)
	for i := range pfs {
		f, err := dev.space.Create(fmt.Sprintf("pio-%d-shard-%d", dev.nextID, i), perShard)
		if err != nil {
			return nil, err
		}
		pfs[i], err = pagefile.New(f, opts.PageSize)
		if err != nil {
			return nil, err
		}
	}
	var logs []*wal.Log
	if opts.WAL {
		logs = make([]*wal.Log, opts.Shards)
		for i := range logs {
			wf, err := dev.space.Create(fmt.Sprintf("pio-%d-wal-%d", dev.nextID, i), 16<<20)
			if err != nil {
				return nil, err
			}
			logs[i], err = wal.NewLog(wf, opts.PageSize)
			if err != nil {
				return nil, err
			}
		}
	}
	fr, err := core.NewForest(pfs, core.ForestConfig{
		Partitioner:  part,
		RipeFraction: opts.RipeFraction,
		Shard: core.Config{
			PageSize:    opts.PageSize,
			LeafSegs:    opts.LeafSegs,
			OPQPages:    opts.OPQPages,
			PioMax:      opts.PioMax,
			SPeriod:     opts.SPeriod,
			BCnt:        opts.BCnt,
			BufferBytes: opts.BufferBytes,
			Retry:       opts.Retry,
		},
		Logs:                 logs,
		DisableLogGang:       opts.DisableLogGang,
		MigrationChunk:       opts.MigrationChunk,
		DisableLogTruncation: opts.DisableLogTruncation,
		Heal:                 opts.Heal,
		Evacuation:           opts.Evacuation,
	})
	if err != nil {
		return nil, err
	}
	dev.space.SetStuckTimeout(opts.Retry.StuckDeadline())
	return &Forest{f: fr, opts: opts}, nil
}

// BulkLoad populates an empty forest from key-sorted records without
// simulated cost (initial load).
func (fx *Forest) BulkLoad(recs []Record) error { return fx.f.BulkLoad(recs) }

// Insert buffers an index-insert on the owning shard; a full shard OPQ
// triggers a coordinated group flush.
func (fx *Forest) Insert(at Ticks, r Record) (Ticks, error) { return fx.f.Insert(at, r) }

// Delete buffers an index-delete.
func (fx *Forest) Delete(at Ticks, k Key) (Ticks, error) { return fx.f.Delete(at, k) }

// Update buffers an index-update.
func (fx *Forest) Update(at Ticks, r Record) (Ticks, error) { return fx.f.Update(at, r) }

// Search performs a point search on the owning shard; flushes on other
// shards do not delay it.
func (fx *Forest) Search(at Ticks, k Key) (Value, bool, Ticks, error) {
	return fx.f.Search(at, k)
}

// SearchMany resolves a batch of keys with one MPSearch per involved
// shard, all descending in parallel in virtual time.
func (fx *Forest) SearchMany(at Ticks, keys []Key) (map[Key]Value, Ticks, error) {
	return fx.f.SearchMany(at, keys)
}

// RangeSearch merges the parallel range search over every shard that may
// hold [lo, hi).
func (fx *Forest) RangeSearch(at Ticks, lo, hi Key) ([]Record, Ticks, error) {
	return fx.f.RangeSearch(at, lo, hi)
}

// Flush forces one coordinated group flush seeded by the fullest shard.
func (fx *Forest) Flush(at Ticks) (Ticks, error) { return fx.f.Flush(at) }

// Checkpoint drains every shard's OPQ.
func (fx *Forest) Checkpoint(at Ticks) (Ticks, error) { return fx.f.Checkpoint(at) }

// Count returns the number of live records across all shards.
func (fx *Forest) Count() int64 { return fx.f.Count() }

// Height returns the tallest shard height.
func (fx *Forest) Height() int { return fx.f.Height() }

// Pending returns the total number of OPQ-buffered operations.
func (fx *Forest) Pending() int { return fx.f.Pending() }

// Shards returns the partition count.
func (fx *Forest) Shards() int { return fx.f.ShardCount() }

// Stats aggregates per-shard counters and flush-coordinator activity.
func (fx *Forest) Stats() core.ForestStats { return fx.f.Stats() }

// CheckInvariants validates every shard's on-disk structure and key
// placement (testing/debugging).
func (fx *Forest) CheckInvariants() error { return fx.f.CheckInvariants() }

// Sync is an explicit commit point: one ganged force makes the redo
// records of every buffered operation durable across all shard logs in a
// single blocking submission. A no-op without WAL.
func (fx *Forest) Sync(at Ticks) (Ticks, error) { return fx.f.Sync(at) }

// SplitShard carves shard i at boundary while the forest keeps serving:
// every key >= boundary that routes to i migrates in bounded chunks to
// the least-loaded other shard (returned). The routing flip commits
// through the WAL group-commit path; a crash mid-move is resumed or
// rolled back by Recover.
func (fx *Forest) SplitShard(at Ticks, i int, boundary Key) (int, Ticks, error) {
	return fx.f.SplitShard(at, i, boundary)
}

// MergeShards migrates every key routed to shard j into shard i while
// serving, leaving j empty — a natural destination for a later split.
func (fx *Forest) MergeShards(at Ticks, i, j int) (Ticks, error) {
	return fx.f.MergeShards(at, i, j)
}

// StartMigration begins moving the keys of [lo, hi) that route to shard
// src onto shard dst and returns the in-flight move; drive it with
// Step to interleave chunks with foreground work. SplitShard and
// MergeShards wrap this and run to completion.
func (fx *Forest) StartMigration(at Ticks, lo, hi Key, src, dst int) (*Migration, Ticks, error) {
	return fx.f.StartMigration(at, lo, hi, src, dst)
}

// AutoRebalance splits the hottest shard at its approximate median key
// when the per-shard load stats show it absorbing disproportionate
// traffic since the last call. Returns whether a migration ran and the
// shard pair.
func (fx *Forest) AutoRebalance(at Ticks, pol RebalancePolicy) (moved bool, from, to int, done Ticks, err error) {
	return fx.f.AutoRebalance(at, pol)
}

// Routing exposes the forest's routing table (epoch, committed move
// rules, in-flight migration).
func (fx *Forest) Routing() *core.RebalancingPartitioner { return fx.f.Routing() }

// ErrShardQuarantined rejects writes addressed to a quarantined shard;
// match with errors.Is. ErrInjected tags every fault the injection
// plane produced, so callers can tell injected failures from organic
// ones in mixed tests.
var (
	ErrShardQuarantined = core.ErrShardQuarantined
	ErrInjected         = faultio.ErrInjected
)

// Quarantined returns the indexes of shards currently in read-only
// degraded mode (writes rejected with ErrShardQuarantined; reads
// served from the last committed state).
func (fx *Forest) Quarantined() []int { return fx.f.Quarantined() }

// Heal re-admits a quarantined shard: its log tail is forced, the shard
// is rewound to the durable snapshot and the committed log replayed —
// the crash-recovery procedure, minus the crash. Fails (and leaves the
// shard fully offline) while the device keeps erroring; after the fault
// clears (or FaultPlane.Revive) it restores full service.
func (fx *Forest) Heal(at Ticks, shard int) (Ticks, error) { return fx.f.Heal(at, shard) }

// Crash simulates a whole-forest crash: every shard's volatile state
// (OPQ, LSMap, buffer pool, unforced log tails) is lost; the simulated
// SSD contents and the forced WAL records remain. Only meaningful with
// WAL enabled; follow with Recover.
func (fx *Forest) Crash() { fx.f.Crash() }

// Recover replays every shard's WAL per the paper's Section 3.4 and
// returns the aggregated per-shard report.
func (fx *Forest) Recover(at Ticks) (core.ForestRecoveryReport, Ticks, error) {
	return fx.f.Recover(at)
}

// Clock is a convenience single timeline for applications that do not
// track virtual time themselves.
type Clock struct{ now Ticks }

// Now returns the clock's current simulated time.
func (c *Clock) Now() Ticks { return c.now }

// Advance moves the clock to t if later.
func (c *Clock) Advance(t Ticks) { c.now = vtime.Max(c.now, t) }

// Elapsed converts the clock to seconds of simulated time.
func (c *Clock) Elapsed() float64 { return c.now.Seconds() }
