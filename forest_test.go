package pio

import (
	"sync"
	"testing"
)

func TestForestFacadeFlow(t *testing.T) {
	dev := NewDevice(Iodrive)
	fr, err := OpenForest(dev, DefaultForestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Shards() != 4 {
		t.Fatalf("shards %d", fr.Shards())
	}
	recs := make([]Record, 3000)
	for i := range recs {
		recs[i] = Record{Key: Key(i * 4), Value: Value(i)}
	}
	if err := fr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	var clock Clock
	for i := uint64(0); i < 5000; i++ {
		done, err := fr.Insert(clock.Now(), Record{Key: 100000 + i*2 + 1, Value: i})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(done)
	}
	v, ok, done, err := fr.Search(clock.Now(), 4000)
	if err != nil || !ok || v != 1000 {
		t.Fatalf("Search: %v %v %v", v, ok, err)
	}
	clock.Advance(done)
	rs, done, err := fr.RangeSearch(clock.Now(), 400, 800)
	if err != nil || len(rs) != 100 {
		t.Fatalf("Range: %d %v", len(rs), err)
	}
	clock.Advance(done)
	got, done, err := fr.SearchMany(clock.Now(), []Key{0, 4, 8, 7777777})
	if err != nil || len(got) != 3 {
		t.Fatalf("SearchMany: %v %v", got, err)
	}
	clock.Advance(done)
	done, err = fr.Checkpoint(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Pending() != 0 {
		t.Fatalf("pending %d after checkpoint", fr.Pending())
	}
	if fr.Count() != 8000 {
		t.Fatalf("count %d", fr.Count())
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := fr.Stats()
	if st.Shards != 4 || st.Tree.Flushes == 0 {
		t.Fatalf("stats: %+v", st)
	}
	_ = done
}

func TestForestFacadeGoroutines(t *testing.T) {
	dev := NewDevice(P300)
	opts := DefaultForestOptions()
	opts.Shards = 3
	opts.OPQPages = 3
	fr, err := OpenForest(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var clock Clock
			base := Key(w) * 1_000_000
			for i := uint64(0); i < 500; i++ {
				done, err := fr.Insert(clock.Now(), Record{Key: base + Key(i), Value: i})
				if err != nil {
					t.Error(err)
					return
				}
				clock.Advance(done)
				if i%5 == 0 {
					_, _, done, err := fr.Search(clock.Now(), base+Key(i))
					if err != nil {
						t.Error(err)
						return
					}
					clock.Advance(done)
				}
			}
		}(w)
	}
	wg.Wait()
	if fr.Count() != 6*500 {
		t.Fatalf("count %d, want %d", fr.Count(), 6*500)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForestRangePartition(t *testing.T) {
	dev := NewDevice(F120)
	opts := DefaultForestOptions()
	opts.Shards = 2
	opts.RangeBounds = []Key{1000}
	fr, err := OpenForest(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var clock Clock
	for i := uint64(0); i < 2000; i++ {
		done, err := fr.Insert(clock.Now(), Record{Key: Key(i), Value: i})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(done)
	}
	rs, _, err := fr.RangeSearch(clock.Now(), 990, 1010)
	if err != nil || len(rs) != 20 {
		t.Fatalf("cross-boundary range: %d %v", len(rs), err)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Bad bounds length rejected.
	bad := DefaultForestOptions()
	bad.Shards = 3
	bad.RangeBounds = []Key{1}
	if _, err := OpenForest(dev, bad); err == nil {
		t.Fatal("accepted wrong bounds length")
	}
	// Unsorted bounds rejected.
	bad = DefaultForestOptions()
	bad.Shards = 3
	bad.RangeBounds = []Key{500, 100}
	if _, err := OpenForest(dev, bad); err == nil {
		t.Fatal("accepted unsorted bounds")
	}
	// Duplicate bounds rejected.
	bad = DefaultForestOptions()
	bad.Shards = 3
	bad.RangeBounds = []Key{500, 500}
	if _, err := OpenForest(dev, bad); err == nil {
		t.Fatal("accepted duplicate bounds")
	}
}

// TestForestWALZeroValueOptions: requesting WAL with otherwise zero-value
// options must not silently drop durability when the tree knobs default.
func TestForestWALZeroValueOptions(t *testing.T) {
	dev := NewDevice(P300)
	fr, err := OpenForest(dev, ForestOptions{Options: Options{WAL: true}})
	if err != nil {
		t.Fatal(err)
	}
	var clock Clock
	for i := uint64(0); i < 200; i++ {
		done, err := fr.Insert(clock.Now(), Record{Key: i, Value: i})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(done)
	}
	done, err := fr.Sync(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	fr.Crash()
	rep, _, err := fr.Recover(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.RedoneEntries != 200 {
		t.Fatalf("redone %d, want 200 (WAL dropped by defaulting?)", rep.Total.RedoneEntries)
	}
	if got := fr.Count(); got != 200 {
		t.Fatalf("count %d, want 200", got)
	}
}

// TestForestWALCrashRecovery drives the façade's durability path: flushed
// work, Sync-committed buffered work, and an uncommitted tail, then
// Crash + Recover.
func TestForestWALCrashRecovery(t *testing.T) {
	dev := NewDevice(P300)
	opts := DefaultForestOptions()
	opts.WAL = true
	fr, err := OpenForest(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var clock Clock
	insert := func(k Key) {
		done, err := fr.Insert(clock.Now(), Record{Key: k, Value: uint64(k) + 7})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(done)
	}
	for i := 0; i < 1000; i++ {
		insert(Key(i))
	}
	done, err := fr.Flush(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	for i := 1000; i < 1100; i++ {
		insert(Key(i))
	}
	done, err = fr.Sync(clock.Now()) // commit the buffered tail
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	for i := 1100; i < 1150; i++ {
		insert(Key(i)) // uncommitted: lost at the crash
	}

	fr.Crash()
	rep, done, err := fr.Recover(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	if rep.Total.RedoneEntries == 0 {
		t.Fatalf("no entries redone: %+v", rep.Total)
	}
	for i := 0; i < 1150; i++ {
		v, ok, d, err := fr.Search(clock.Now(), Key(i))
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(d)
		if i < 1100 && (!ok || v != uint64(i)+7) {
			t.Fatalf("committed key %d lost: %v %v", i, v, ok)
		}
		if i >= 1100 && ok {
			t.Fatalf("uncommitted key %d resurrected", i)
		}
	}
	if got := fr.Count(); got != 1100 {
		t.Fatalf("count %d, want 1100", got)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := fr.Stats()
	if st.LogSubmits == 0 {
		t.Fatal("no log submissions recorded")
	}
}

// TestForestRebalanceFacade exercises the public online-rebalancing API:
// split under live WAL, recovery keeps the flipped routing, merge
// empties a shard, and AutoRebalance reacts to a hotspot.
func TestForestRebalanceFacade(t *testing.T) {
	dev := NewDevice(P300)
	opts := DefaultForestOptions()
	opts.WAL = true
	opts.Shards = 4
	opts.RangeBounds = []Key{1 << 20, 2 << 20, 3 << 20}
	fr, err := OpenForest(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var clock Clock
	const perShard = 200
	for j := 0; j < perShard; j++ {
		for s := uint64(0); s < 4; s++ {
			k := s<<20 + uint64(j)
			done, err := fr.Insert(clock.Now(), Record{Key: k, Value: k + 1})
			if err != nil {
				t.Fatal(err)
			}
			clock.Advance(done)
		}
	}
	done, err := fr.Checkpoint(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)

	// Split shard 0's upper half away.
	dst, done, err := fr.SplitShard(clock.Now(), 0, perShard/2)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	st := fr.Stats()
	if st.Migrations != 1 || st.MigratedKeys != perShard/2 {
		t.Fatalf("stats after split: %+v", st)
	}
	if len(st.ShardLoads) != 4 {
		t.Fatalf("shard loads: %v", st.ShardLoads)
	}
	if got := fr.Routing().Shard(perShard/2 + 1); got != dst {
		t.Fatalf("split key routes to %d, want %d", got, dst)
	}

	// Crash + recover: the committed flip survives.
	fr.Crash()
	if _, done, err = fr.Recover(clock.Now()); err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	if got := fr.Routing().Shard(perShard/2 + 1); got != dst {
		t.Fatalf("post-recovery routing %d, want %d", got, dst)
	}
	if got, want := fr.Count(), int64(4*perShard); got != want {
		t.Fatalf("count %d, want %d", got, want)
	}
	v, ok, done, err := fr.Search(clock.Now(), perShard/2+1)
	if err != nil || !ok || v != uint64(perShard/2+2) {
		t.Fatalf("moved key: %v %v %v", v, ok, err)
	}
	clock.Advance(done)

	// Merge it back; the emptied donor keeps serving.
	done, err = fr.MergeShards(clock.Now(), 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(done)
	if got := fr.Routing().Shard(perShard/2 + 1); got != 0 {
		t.Fatalf("merged key routes to %d, want 0", got)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, want := fr.Count(), int64(4*perShard); got != want {
		t.Fatalf("count after merge %d, want %d", got, want)
	}
}
