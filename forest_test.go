package pio

import (
	"sync"
	"testing"
)

func TestForestFacadeFlow(t *testing.T) {
	dev := NewDevice(Iodrive)
	fr, err := OpenForest(dev, DefaultForestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Shards() != 4 {
		t.Fatalf("shards %d", fr.Shards())
	}
	recs := make([]Record, 3000)
	for i := range recs {
		recs[i] = Record{Key: Key(i * 4), Value: Value(i)}
	}
	if err := fr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	var clock Clock
	for i := uint64(0); i < 5000; i++ {
		done, err := fr.Insert(clock.Now(), Record{Key: 100000 + i*2 + 1, Value: i})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(done)
	}
	v, ok, done, err := fr.Search(clock.Now(), 4000)
	if err != nil || !ok || v != 1000 {
		t.Fatalf("Search: %v %v %v", v, ok, err)
	}
	clock.Advance(done)
	rs, done, err := fr.RangeSearch(clock.Now(), 400, 800)
	if err != nil || len(rs) != 100 {
		t.Fatalf("Range: %d %v", len(rs), err)
	}
	clock.Advance(done)
	got, done, err := fr.SearchMany(clock.Now(), []Key{0, 4, 8, 7777777})
	if err != nil || len(got) != 3 {
		t.Fatalf("SearchMany: %v %v", got, err)
	}
	clock.Advance(done)
	done, err = fr.Checkpoint(clock.Now())
	if err != nil {
		t.Fatal(err)
	}
	if fr.Pending() != 0 {
		t.Fatalf("pending %d after checkpoint", fr.Pending())
	}
	if fr.Count() != 8000 {
		t.Fatalf("count %d", fr.Count())
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := fr.Stats()
	if st.Shards != 4 || st.Tree.Flushes == 0 {
		t.Fatalf("stats: %+v", st)
	}
	_ = done
}

func TestForestFacadeGoroutines(t *testing.T) {
	dev := NewDevice(P300)
	opts := DefaultForestOptions()
	opts.Shards = 3
	opts.OPQPages = 3
	fr, err := OpenForest(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var clock Clock
			base := Key(w) * 1_000_000
			for i := uint64(0); i < 500; i++ {
				done, err := fr.Insert(clock.Now(), Record{Key: base + Key(i), Value: i})
				if err != nil {
					t.Error(err)
					return
				}
				clock.Advance(done)
				if i%5 == 0 {
					_, _, done, err := fr.Search(clock.Now(), base+Key(i))
					if err != nil {
						t.Error(err)
						return
					}
					clock.Advance(done)
				}
			}
		}(w)
	}
	wg.Wait()
	if fr.Count() != 6*500 {
		t.Fatalf("count %d, want %d", fr.Count(), 6*500)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForestRangePartition(t *testing.T) {
	dev := NewDevice(F120)
	opts := DefaultForestOptions()
	opts.Shards = 2
	opts.RangeBounds = []Key{1000}
	fr, err := OpenForest(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var clock Clock
	for i := uint64(0); i < 2000; i++ {
		done, err := fr.Insert(clock.Now(), Record{Key: Key(i), Value: i})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(done)
	}
	rs, _, err := fr.RangeSearch(clock.Now(), 990, 1010)
	if err != nil || len(rs) != 20 {
		t.Fatalf("cross-boundary range: %d %v", len(rs), err)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Bad bounds length rejected.
	bad := DefaultForestOptions()
	bad.Shards = 3
	bad.RangeBounds = []Key{1}
	if _, err := OpenForest(dev, bad); err == nil {
		t.Fatal("accepted wrong bounds length")
	}
	// WAL rejected.
	w := DefaultForestOptions()
	w.WAL = true
	if _, err := OpenForest(dev, w); err == nil {
		t.Fatal("accepted WAL forest")
	}
	// ... also when the rest of the options are left to default.
	if _, err := OpenForest(dev, ForestOptions{Options: Options{WAL: true}}); err == nil {
		t.Fatal("accepted WAL forest via zero-value options")
	}
}
