// Command piotune demonstrates the PIO B-tree self-tuning of the paper's
// Section 3.6: it micro-benchmarks a simulated device to obtain Pr, Pw,
// Pr(L), P'r and P'w, then reports the optimal leaf size L_opt and OPQ
// size O_opt (eq. 10) and the utility/cost B+-tree node size for
// comparison, for a given workload mix.
//
// Usage:
//
//	piotune -ssd p300 -n 200000 -mem 16384 -insert-ratio 0.7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/costmodel"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/vtime"
)

func main() {
	var (
		ssd      = flag.String("ssd", "p300", "device profile")
		n        = flag.Int("n", 200000, "index entries")
		mem      = flag.Int("mem", 16384, "memory budget (bytes)")
		ratio    = flag.Float64("insert-ratio", 0.5, "insert fraction of the workload")
		pageSize = flag.Int("page", 2048, "page size (bytes)")
	)
	flag.Parse()

	cfg, err := flashsim.ProfileByName(*ssd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "piotune: %v\n", err)
		os.Exit(1)
	}
	dev := flashsim.MustDevice(cfg)
	fmt.Printf("calibrating %s (page %dB)...\n", cfg.Name, *pageSize)
	d := costmodel.Calibrate(dev, *pageSize, 16, 64, 16)
	fmt.Printf("  Pr(1)=%v Pr(4)=%v Pr(8)=%v\n", d.Pr(1), d.Pr(4), d.Pr(8))
	fmt.Printf("  Pw(1)=%v Pw(4)=%v Pw(8)=%v\n", d.Pw(1), d.Pw(4), d.Pw(8))
	fmt.Printf("  P'r=%v P'w=%v (psync-amortized per page)\n", d.PrPsync, d.PwPsync)

	params := costmodel.TreeParams{
		N:                 float64(*n),
		F:                 float64(*pageSize / kv.RecordSize),
		U:                 0.7,
		Ri:                *ratio,
		Rs:                1 - *ratio,
		M:                 float64(*mem / *pageSize),
		OPQEntriesPerPage: float64(*pageSize / kv.EntrySize),
	}
	maxO := *mem / *pageSize
	if maxO < 1 {
		maxO = 1
	}
	res, err := costmodel.TuneLeafOPQ(params, d, 5000, 16, maxO)
	if err != nil {
		fmt.Fprintf(os.Stderr, "piotune: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nworkload: insert ratio %.2f, N=%d, memory %dB\n", *ratio, *n, *mem)
	fmt.Printf("  PIO B-tree: L_opt=%d segments (%dB leaves), O_opt=%d pages, modelled %.0fµs/op\n",
		res.L, res.L**pageSize, res.O, res.Cost/float64(vtime.Microsecond))

	nodePages, err := costmodel.TuneNodeSize(params, d, float64(*pageSize/kv.RecordSize), 16)
	if err != nil {
		fmt.Fprintf(os.Stderr, "piotune: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  B+-tree:    node size %d pages (%dB) via extended utility/cost\n",
		nodePages, nodePages**pageSize)
}
