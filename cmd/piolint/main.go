// Command piolint runs the repository's custom invariant analyzers
// (guardedby, walorder, determinism, snapshotmut, lockorder, ioerr) over
// the given package patterns and exits non-zero if any diagnostic is
// reported.
//
// It is a self-contained driver in the shape of a go/analysis
// multichecker: packages are loaded and type-checked from source with
// imports satisfied from `go list -export` data, so it needs nothing
// outside the standard library and the go tool. All loaded packages form
// one whole-program index, which the interprocedural analyzers
// (lockorder, ioerr, guardedby's inferred contracts) share.
//
// Usage:
//
//	go run ./cmd/piolint ./...
//	go run ./cmd/piolint -only guardedby,walorder ./internal/core/...
//	go run ./cmd/piolint -json ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// jsonDiag is the -json wire form of one diagnostic, one object per line.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON objects, one per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: piolint [-only a,b] [-json] [packages]\n\nanalyzers:\n")
		for _, a := range lint.All {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := lint.All
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		analyzers = nil
		for _, a := range lint.All {
			if want[a.Name] {
				analyzers = append(analyzers, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "piolint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "piolint:", err)
		os.Exit(2)
	}

	prog := lint.NewProgram(pkgs)
	enc := json.NewEncoder(os.Stdout)
	failed := false
	for _, pkg := range pkgs {
		// The lint testdata fixtures deliberately contain violations; a
		// whole-repo run must not trip over its own test corpus.
		if strings.Contains(pkg.Path, "lint/testdata/") {
			continue
		}
		diags, err := lint.RunAnalyzers(prog, pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piolint: %s: %v\n", pkg.Path, err)
			os.Exit(2)
		}
		for _, d := range diags {
			if *asJSON {
				enc.Encode(jsonDiag{
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Column:   d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
			} else {
				fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
			}
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
