// Command benchgate enforces the CI bench-trend gate: it compares the
// metrics of a fresh pioexp JSON artifact against a checked-in baseline
// and fails when any metric regressed beyond the tolerance.
//
// Metrics are higher-is-better scalars (throughput); simulated time is
// deterministic, so the comparison is machine-independent. Metrics
// present in only one file are reported but do not fail the gate (they
// signal a baseline refresh, not a regression).
//
// Usage:
//
//	benchgate -current artifacts/BENCH_rebalance.json \
//	          -baseline ci/baselines/BENCH_rebalance.json [-tolerance 0.20]
//
// To refresh a baseline after an intentional perf change:
//
//	go run ./cmd/pioexp -exp rebalance -quick -json ci/baselines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// table mirrors bench.Table's JSON shape (only what the gate needs).
type table struct {
	ID      string
	Metrics map[string]float64
}

func load(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tables []table
	if err := json.Unmarshal(b, &tables); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	for _, t := range tables {
		for k, v := range t.Metrics {
			out[t.ID+"/"+k] = v
		}
	}
	return out, nil
}

func main() {
	var (
		current   = flag.String("current", "", "fresh pioexp JSON artifact")
		baseline  = flag.String("baseline", "", "checked-in baseline JSON")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional regression per metric")
	)
	flag.Parse()
	if *current == "" || *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current and -baseline are required")
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := 0
	compared := 0
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			fmt.Printf("MISSING  %-55s baseline=%.3f (refresh the baseline?)\n", k, b)
			continue
		}
		compared++
		if b <= 0 {
			fmt.Printf("SKIP     %-55s baseline=%.3f\n", k, b)
			continue
		}
		change := c/b - 1
		status := "OK      "
		if c < b*(1-*tolerance) {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("%s %-55s baseline=%.3f current=%.3f (%+.1f%%)\n", status, k, b, c, change*100)
	}
	for k, c := range cur {
		if _, ok := base[k]; !ok {
			fmt.Printf("NEW      %-55s current=%.3f (add to baseline)\n", k, c)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no overlapping metrics — wrong files?")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d metric(s) regressed more than %.0f%%\n", failed, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d metric(s) within %.0f%% of baseline\n", compared, *tolerance*100)
}
