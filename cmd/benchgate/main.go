// Command benchgate enforces the CI bench-trend gate: it compares the
// metrics of a fresh pioexp JSON artifact against a checked-in baseline
// and fails when any metric regressed beyond its tolerance.
//
// Metrics default to higher-is-better (throughput); per-metric -tol
// rules loosen the tolerance or flip the direction for noisier or
// lower-is-better metrics (latency percentiles). Simulated time is
// deterministic, so the comparison is machine-independent. Metrics
// present in only one file warn but do not fail the gate (they signal a
// baseline refresh, not a regression).
//
// Usage:
//
//	benchgate -current artifacts/BENCH_rebalance.json \
//	          -baseline ci/baselines/BENCH_rebalance.json \
//	          [-tolerance 0.20] [-tol p99_us=0.50:lower] [-tol kops=0.25]
//
// A -tol rule is "substring=frac[:lower]": it applies to every metric
// key containing the substring (first match wins); ":lower" marks the
// metric lower-is-better, so it regresses upward. When the
// GITHUB_STEP_SUMMARY environment variable points at a writable file
// (as it does in GitHub Actions), benchgate appends a markdown
// comparison table to it.
//
// To refresh a baseline after an intentional perf change:
//
//	go run ./cmd/pioexp -exp rebalance -quick -json ci/baselines
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint(*m) }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func main() {
	var (
		current   = flag.String("current", "", "fresh pioexp JSON artifact")
		baseline  = flag.String("baseline", "", "checked-in baseline JSON")
		tolerance = flag.Float64("tolerance", 0.20, "default allowed fractional regression per metric")
		tolRules  multiFlag
	)
	flag.Var(&tolRules, "tol", "per-metric tolerance rule substring=frac[:lower] (repeatable; first match wins)")
	flag.Parse()
	if *current == "" || *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current and -baseline are required")
		os.Exit(2)
	}
	rules, err := parseRules(tolRules)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	rep := compare(base, cur, rules, *tolerance)
	for _, f := range rep.Findings {
		switch f.Status {
		case "NEW", "MISSING":
			// GitHub Actions renders ::warning:: lines as annotations, so
			// one-sided metrics are loud without failing the gate.
			fmt.Printf("::warning title=benchgate %s metric::%s %s\n", f.Status, f.Key, f.Note)
			fmt.Printf("%-9s %-55s baseline=%s current=%s %s\n", f.Status, f.Key, fmtVal(f.Base), fmtVal(f.Cur), f.Note)
		default:
			fmt.Printf("%-9s %-55s baseline=%s current=%s (%s) %s\n",
				f.Status, f.Key, fmtVal(f.Base), fmtVal(f.Cur), fmtChange(f.Change), f.Note)
		}
	}
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		title := fmt.Sprintf("benchgate: %s", filepath.Base(*current))
		if f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			fmt.Fprintln(f, rep.Markdown(title))
			f.Close()
		} else {
			fmt.Fprintln(os.Stderr, "benchgate: cannot append step summary:", err)
		}
	}
	if rep.Compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no overlapping metrics — wrong files?")
		os.Exit(2)
	}
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d metric(s) regressed or invalid\n", rep.Failed)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d metric(s) within tolerance of baseline\n", rep.Compared)
}
