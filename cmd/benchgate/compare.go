package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// table mirrors bench.Table's JSON shape (only what the gate needs).
type table struct {
	ID      string
	Metrics map[string]float64
}

// load flattens a pioexp JSON artifact into "tableID/metric" -> value.
func load(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tables []table
	if err := json.Unmarshal(b, &tables); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	for _, t := range tables {
		for k, v := range t.Metrics {
			out[t.ID+"/"+k] = v
		}
	}
	return out, nil
}

// Rule is one per-metric tolerance override. Keys are matched by
// substring; the first matching rule wins. Lower flips the direction:
// most metrics are higher-is-better (throughput), but latency and
// duration metrics regress UPWARD, and they are noisier, so they
// typically carry both a looser Frac and Lower.
type Rule struct {
	// Substring selects metric keys ("tableID/metric") containing it.
	Substring string
	// Frac is the allowed fractional regression (0.5 = 50%).
	Frac float64
	// Lower marks the metric lower-is-better.
	Lower bool
}

// parseRules parses -tol specs of the form "substring=frac[:lower]".
func parseRules(specs []string) ([]Rule, error) {
	rules := make([]Rule, 0, len(specs))
	for _, spec := range specs {
		sub, rest, ok := strings.Cut(spec, "=")
		if !ok || sub == "" {
			return nil, fmt.Errorf("benchgate: bad tolerance rule %q (want substring=frac[:lower])", spec)
		}
		fracStr, dir, hasDir := strings.Cut(rest, ":")
		frac, err := strconv.ParseFloat(fracStr, 64)
		if err != nil || frac < 0 {
			return nil, fmt.Errorf("benchgate: bad tolerance fraction in rule %q", spec)
		}
		r := Rule{Substring: sub, Frac: frac}
		if hasDir {
			if dir != "lower" {
				return nil, fmt.Errorf("benchgate: bad direction %q in rule %q (only \"lower\")", dir, spec)
			}
			r.Lower = true
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// ruleFor returns the tolerance and direction applying to a metric key.
func ruleFor(key string, rules []Rule, def float64) (frac float64, lower bool) {
	for _, r := range rules {
		if strings.Contains(key, r.Substring) {
			return r.Frac, r.Lower
		}
	}
	return def, false
}

// Finding is one metric's comparison outcome.
type Finding struct {
	Key    string
	Status string // OK, REGRESSED, INVALID, SKIP, MISSING, NEW
	// Base/Cur are the two values (NaN when absent).
	Base, Cur float64
	// Change is the fractional change, NaN when undefined.
	Change float64
	Note   string
}

// Report is a whole gate run.
type Report struct {
	Findings []Finding
	// Compared counts metrics present in both files; Failed those that
	// regressed or were invalid; New/Missing count one-sided metrics.
	Compared, Failed, New, Missing int
}

// compare gates current against baseline. A metric regresses when it
// moves beyond its tolerance in the bad direction (down for throughput,
// up for lower-is-better metrics). Non-finite current values are
// failures: a NaN throughput is a broken experiment, not a slow one.
// One-sided metrics (NEW/MISSING) never fail the gate — they signal a
// baseline refresh — but they are surfaced as warnings, not silence.
func compare(base, cur map[string]float64, rules []Rule, def float64) *Report {
	rep := &Report{}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			rep.Missing++
			rep.Findings = append(rep.Findings, Finding{
				Key: k, Status: "MISSING", Base: b, Cur: math.NaN(), Change: math.NaN(),
				Note: "in baseline only — refresh the baseline?",
			})
			continue
		}
		rep.Compared++
		frac, lower := ruleFor(k, rules, def)
		f := Finding{Key: k, Base: b, Cur: c, Change: math.NaN()}
		switch {
		case math.IsNaN(c) || math.IsInf(c, 0) || math.IsNaN(b) || math.IsInf(b, 0):
			f.Status = "INVALID"
			f.Note = "non-finite value"
			rep.Failed++
		case b == 0:
			// No meaningful relative change; a zero baseline gates only
			// on direction (a lower-is-better metric may stay at zero).
			if lower && c > 0 {
				f.Status = "REGRESSED"
				f.Note = fmt.Sprintf("rose from zero baseline (tol %.0f%%, lower better)", frac*100)
				rep.Failed++
			} else {
				f.Status = "SKIP"
				f.Note = "zero baseline"
			}
		case b < 0:
			f.Status = "SKIP"
			f.Note = "negative baseline"
		default:
			f.Change = c/b - 1
			bad := c < b*(1-frac)
			if lower {
				bad = c > b*(1+frac)
			}
			if bad {
				f.Status = "REGRESSED"
				dir := "higher"
				if lower {
					dir = "lower"
				}
				f.Note = fmt.Sprintf("beyond %.0f%% tolerance (%s is better)", frac*100, dir)
				rep.Failed++
			} else {
				f.Status = "OK"
			}
		}
		rep.Findings = append(rep.Findings, f)
	}
	newKeys := make([]string, 0)
	for k := range cur {
		if _, ok := base[k]; !ok {
			newKeys = append(newKeys, k)
		}
	}
	sort.Strings(newKeys)
	for _, k := range newKeys {
		rep.New++
		rep.Findings = append(rep.Findings, Finding{
			Key: k, Status: "NEW", Base: math.NaN(), Cur: cur[k], Change: math.NaN(),
			Note: "in current only — add to baseline",
		})
	}
	return rep
}

// fmtVal renders a metric value for the reports ("-" when absent).
func fmtVal(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

func fmtChange(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", v*100)
}

// Markdown renders the report as a GitHub-flavored comparison table for
// $GITHUB_STEP_SUMMARY.
func (rep *Report) Markdown(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	fmt.Fprintf(&b, "| Metric | Baseline | Current | Change | Status |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---|\n")
	for _, f := range rep.Findings {
		status := f.Status
		switch f.Status {
		case "REGRESSED", "INVALID":
			status = "❌ " + status
		case "OK":
			status = "✅ OK"
		case "NEW", "MISSING":
			status = "⚠️ " + status
		}
		note := ""
		if f.Note != "" {
			note = " — " + f.Note
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s%s |\n",
			f.Key, fmtVal(f.Base), fmtVal(f.Cur), fmtChange(f.Change), status, note)
	}
	fmt.Fprintf(&b, "\n%d compared, %d failed, %d new, %d missing\n",
		rep.Compared, rep.Failed, rep.New, rep.Missing)
	return b.String()
}
