package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func findingByKey(t *testing.T, rep *Report, key string) Finding {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Key == key {
			return f
		}
	}
	t.Fatalf("no finding for %s in %+v", key, rep.Findings)
	return Finding{}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("load accepted a missing file")
	}
}

func TestLoadMalformedFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(p); err == nil {
		t.Fatal("load accepted malformed JSON")
	}
}

func TestLoadFlattensKeys(t *testing.T) {
	p := filepath.Join(t.TempDir(), "ok.json")
	body := `[{"ID":"t1","Metrics":{"a":1.5}},{"ID":"t2","Metrics":{"a":2.5}}]`
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	if m["t1/a"] != 1.5 || m["t2/a"] != 2.5 {
		t.Fatalf("flattened wrong: %v", m)
	}
}

func TestCompareOKAndRegression(t *testing.T) {
	base := map[string]float64{"t/fast": 100, "t/slow": 100}
	cur := map[string]float64{"t/fast": 95, "t/slow": 70}
	rep := compare(base, cur, nil, 0.20)
	if f := findingByKey(t, rep, "t/fast"); f.Status != "OK" {
		t.Fatalf("5%% drop flagged: %+v", f)
	}
	if f := findingByKey(t, rep, "t/slow"); f.Status != "REGRESSED" {
		t.Fatalf("30%% drop not flagged: %+v", f)
	}
	if rep.Failed != 1 || rep.Compared != 2 {
		t.Fatalf("counts wrong: %+v", rep)
	}
}

func TestCompareNaNFails(t *testing.T) {
	base := map[string]float64{"t/m": 10}
	cur := map[string]float64{"t/m": math.NaN()}
	rep := compare(base, cur, nil, 0.20)
	if f := findingByKey(t, rep, "t/m"); f.Status != "INVALID" {
		t.Fatalf("NaN current not INVALID: %+v", f)
	}
	if rep.Failed != 1 {
		t.Fatalf("NaN did not fail the gate: %+v", rep)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := map[string]float64{"t/zero": 0, "t/stall_count": 0}
	cur := map[string]float64{"t/zero": 5, "t/stall_count": 3}
	rules, err := parseRules([]string{"stall=0.0:lower"})
	if err != nil {
		t.Fatal(err)
	}
	rep := compare(base, cur, rules, 0.20)
	// Higher-is-better from a zero baseline cannot regress: skip.
	if f := findingByKey(t, rep, "t/zero"); f.Status != "SKIP" {
		t.Fatalf("zero baseline not skipped: %+v", f)
	}
	// Lower-is-better rising from zero is a regression.
	if f := findingByKey(t, rep, "t/stall_count"); f.Status != "REGRESSED" {
		t.Fatalf("lower-better rise from zero not flagged: %+v", f)
	}
}

// TestCompareExtraBaselineMetrics checks that metrics present only in the
// baseline warn (MISSING) without failing the gate, and metrics present
// only in the candidate warn (NEW) instead of silently passing.
func TestCompareExtraBaselineMetrics(t *testing.T) {
	base := map[string]float64{"t/kept": 10, "t/removed": 10}
	cur := map[string]float64{"t/kept": 10, "t/added": 3}
	rep := compare(base, cur, nil, 0.20)
	if f := findingByKey(t, rep, "t/removed"); f.Status != "MISSING" {
		t.Fatalf("baseline-only metric: %+v", f)
	}
	if f := findingByKey(t, rep, "t/added"); f.Status != "NEW" {
		t.Fatalf("candidate-only metric: %+v", f)
	}
	if rep.Failed != 0 || rep.New != 1 || rep.Missing != 1 || rep.Compared != 1 {
		t.Fatalf("counts wrong: %+v", rep)
	}
}

func TestToleranceRules(t *testing.T) {
	rules, err := parseRules([]string{"p99_us=0.50:lower", "kops=0.10"})
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]float64{
		"t/a_p99_us": 100, // lower better, 50% headroom
		"t/b_kops":   100, // higher better, tight 10%
		"t/other":    100, // default 20%
	}
	cur := map[string]float64{
		"t/a_p99_us": 140, // +40% latency: within the 50% rule
		"t/b_kops":   85,  // -15%: beyond the 10% rule
		"t/other":    85,  // -15%: within the 20% default
	}
	rep := compare(base, cur, rules, 0.20)
	if f := findingByKey(t, rep, "t/a_p99_us"); f.Status != "OK" {
		t.Fatalf("latency within loose lower-better rule flagged: %+v", f)
	}
	if f := findingByKey(t, rep, "t/b_kops"); f.Status != "REGRESSED" {
		t.Fatalf("throughput beyond tight rule not flagged: %+v", f)
	}
	if f := findingByKey(t, rep, "t/other"); f.Status != "OK" {
		t.Fatalf("default tolerance not applied: %+v", f)
	}
	// Direction flip: latency shooting past its tolerance fails.
	cur["t/a_p99_us"] = 200
	rep = compare(base, cur, rules, 0.20)
	if f := findingByKey(t, rep, "t/a_p99_us"); f.Status != "REGRESSED" {
		t.Fatalf("latency doubling not flagged: %+v", f)
	}
	// A latency IMPROVEMENT (large drop) must not be flagged.
	cur["t/a_p99_us"] = 10
	rep = compare(base, cur, rules, 0.20)
	if f := findingByKey(t, rep, "t/a_p99_us"); f.Status != "OK" {
		t.Fatalf("latency improvement flagged: %+v", f)
	}
}

func TestParseRulesRejectsBadSpecs(t *testing.T) {
	for _, bad := range []string{"nofrac", "=0.2", "x=abc", "x=-0.1", "x=0.2:upper"} {
		if _, err := parseRules([]string{bad}); err == nil {
			t.Errorf("parseRules accepted %q", bad)
		}
	}
}

func TestMarkdownSummary(t *testing.T) {
	base := map[string]float64{"t/good": 100, "t/bad": 100}
	cur := map[string]float64{"t/good": 100, "t/bad": 10, "t/new": 1}
	rep := compare(base, cur, nil, 0.20)
	md := rep.Markdown("benchgate: BENCH_t.json")
	for _, want := range []string{"| Metric |", "`t/bad`", "❌ REGRESSED", "⚠️ NEW", "1 failed"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
