// Command ssdbench runs the device micro-benchmarks of the paper's
// Section 2 (Figures 2-4) against the simulated SSD profiles: latency vs
// I/O size, bandwidth vs outstanding level, interleaved vs non-interleaved
// mixes, and psync I/O vs parallel processing.
//
// Usage:
//
//	ssdbench             # all device benchmarks
//	ssdbench -fig 3      # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "", "figure to run: 2, 3, 3c, 4, 4c (default all)")
	flag.Parse()

	ids := []string{"fig2", "fig3", "fig3c", "fig4", "fig4c"}
	if *fig != "" {
		ids = []string{"fig" + *fig}
	}
	s := bench.DefaultScale()
	for _, id := range ids {
		tables, err := bench.Run(id, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssdbench: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
}
