// Command pioexp regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	pioexp -list
//	pioexp -exp fig9 [-n 200000] [-ops 20000] [-mem 16384] [-csv]
//	pioexp -exp all -quick
//
// Output rows mirror the series the paper plots; all times are simulated.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (or 'all')")
		list    = flag.Bool("list", false, "list experiment ids")
		n       = flag.Int("n", 0, "initial entries (default: scale preset)")
		ops     = flag.Int("ops", 0, "operations per run (default: scale preset)")
		mem     = flag.Int("mem", 0, "memory budget bytes (default: scale preset)")
		seed    = flag.Int64("seed", 42, "workload seed")
		quick   = flag.Bool("quick", false, "use the quick (smoke-test) scale")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonDir = flag.String("json", "", "also write each experiment's tables as BENCH_<id>.json into this directory (CI bench artifacts)")
		shards  = flag.Int("shards", 0, "forest shard count (default: sweep a preset ladder)")
		threads = flag.Int("threads", 0, "simulated threads for concurrency experiments (default: preset)")
		faults  = flag.String("faults", "", "fault program for experiments that support injection, e.g. 'transient call=psync p=0.002'")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:", strings.Join(bench.IDs(), " "))
		if *exp == "" {
			os.Exit(0)
		}
	}
	s := bench.DefaultScale()
	if *quick {
		s = bench.QuickScale()
	}
	if *n > 0 {
		s.InitialEntries = *n
	}
	if *ops > 0 {
		s.Ops = *ops
	}
	if *mem > 0 {
		s.MemBytes = *mem
	}
	s.Seed = *seed
	if *shards > 0 {
		s.Shards = *shards
	}
	if *threads > 0 {
		s.Threads = *threads
	}
	s.Faults = *faults

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		tables, err := bench.Run(id, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pioexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, id, tables); err != nil {
				fmt.Fprintf(os.Stderr, "pioexp: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
}

// writeJSON dumps an experiment's tables (rows, notes, and the metrics
// the CI bench-trend gate compares) as BENCH_<id>.json. The byte-stable
// marshaling means two runs of a deterministic experiment produce
// byte-identical files, which CI verifies with a plain cmp.
func writeJSON(dir, id string, tables []bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := bench.MarshalStable(tables)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
