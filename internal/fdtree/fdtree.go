// Package fdtree implements the FD-tree baseline (Li, He, Yang, Luo, Yi,
// "Tree indexing on solid state drives", PVLDB 2010), the flashSSD-aware
// index the paper compares against in Section 4.1.4.
//
// An FD-tree is a logarithmic method: a small in-memory head tree L0
// absorbs updates; disk levels L1..Lk are sorted runs, each SizeRatio
// times larger than the previous; a full level merges into the next with
// large sequential I/O (friendly to package-level parallelism). Deletes
// insert filter entries (tombstones) that annihilate matching records
// during merges. Point searches probe one page per level (fences/fractional
// cascading modelled by an in-memory sparse page index per run, whose
// memory footprint is part of the index's RAM budget as in the original
// design). The paper's characterization: insert performance close to PIO
// B-tree, point search worse than B+-tree because the effective height is
// larger ("the FD-tree index height is usually higher than B+-tree
// height").
package fdtree

import (
	"fmt"
	"sort"

	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/vtime"
)

// Config parameterizes an FD-tree.
type Config struct {
	// PageSize is the run page size in bytes.
	PageSize int
	// HeadPages is the head tree (L0) budget in pages.
	HeadPages int
	// SizeRatio is k, the capacity ratio between adjacent levels
	// (default 8 when zero).
	SizeRatio int
	// MergeChunkPages is the sequential I/O unit during merges
	// (default 64 pages when zero).
	MergeChunkPages int
	// CPUPerNode is CPU time charged per probed page.
	CPUPerNode vtime.Ticks
}

func (c *Config) ratio() int {
	if c.SizeRatio <= 0 {
		return 8
	}
	return c.SizeRatio
}

func (c *Config) chunk() int {
	if c.MergeChunkPages <= 0 {
		return 64
	}
	return c.MergeChunkPages
}

// entry is a run entry: a record plus the tombstone flag.
type entry struct {
	rec  kv.Record
	dead bool // filter entry (delete)
}

// entrySize is the on-disk entry footprint.
const entrySize = kv.RecordSize + 1

// level is one sorted disk run.
type level struct {
	first  pagefile.PageID
	pages  int
	count  int
	fences []kv.Key // first key of each page (sparse index)
}

// Tree is an FD-tree over a pagefile.
type Tree struct {
	cfg    Config
	pf     *pagefile.PageFile
	head   []entry // L0, key-sorted, newest wins on duplicates via replace
	levels []*level
	count  int64
	stats  Stats
}

// Stats counts FD-tree activity.
type Stats struct {
	Merges     int64
	MergedIn   int64 // entries moved during merges
	LevelReads int64 // point-search page probes
}

// New creates an empty FD-tree.
func New(pf *pagefile.PageFile, cfg Config) (*Tree, error) {
	if cfg.HeadPages < 1 {
		return nil, fmt.Errorf("fdtree: HeadPages must be >= 1, got %d", cfg.HeadPages)
	}
	if cfg.PageSize/entrySize < 4 {
		return nil, fmt.Errorf("fdtree: page size %d too small", cfg.PageSize)
	}
	return &Tree{cfg: cfg, pf: pf}, nil
}

// entriesPerPage returns run entries per page.
func (t *Tree) entriesPerPage() int { return t.cfg.PageSize / entrySize }

// headCap returns L0's entry capacity.
func (t *Tree) headCap() int { return t.cfg.HeadPages * t.entriesPerPage() }

// levelCap returns level i's entry capacity (1-based disk levels).
func (t *Tree) levelCap(i int) int {
	c := t.headCap()
	for j := 0; j < i; j++ {
		c *= t.cfg.ratio()
	}
	return c
}

// Count returns the number of live records.
func (t *Tree) Count() int64 { return t.count }

// Levels returns the number of disk levels (the search height beyond L0).
func (t *Tree) Levels() int { return len(t.levels) }

// Stats returns a snapshot of the counters.
func (t *Tree) Stats() Stats { return t.stats }

// headInsert places e into the sorted head, replacing an existing entry
// with the same key (newest wins within L0).
func (t *Tree) headInsert(e entry) {
	i := sort.Search(len(t.head), func(i int) bool { return t.head[i].rec.Key >= e.rec.Key })
	if i < len(t.head) && t.head[i].rec.Key == e.rec.Key {
		t.head[i] = e
		return
	}
	t.head = append(t.head, entry{})
	copy(t.head[i+1:], t.head[i:])
	t.head[i] = e
}

// Insert adds record r.
func (t *Tree) Insert(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	// Inserting over an existing key is an update; liveness bookkeeping
	// happens lazily at merge time, so count tracks net inserts.
	t.headInsert(entry{rec: r})
	t.count++
	if len(t.head) >= t.headCap() {
		return t.mergeDown(at)
	}
	return at + t.cfg.CPUPerNode, nil
}

// Delete inserts a filter entry for key k.
func (t *Tree) Delete(at vtime.Ticks, k kv.Key) (vtime.Ticks, error) {
	t.headInsert(entry{rec: kv.Record{Key: k}, dead: true})
	t.count--
	if len(t.head) >= t.headCap() {
		return t.mergeDown(at)
	}
	return at + t.cfg.CPUPerNode, nil
}

// Update replaces the pointer of key k.
func (t *Tree) Update(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	t.headInsert(entry{rec: r})
	if len(t.head) >= t.headCap() {
		return t.mergeDown(at)
	}
	return at + t.cfg.CPUPerNode, nil
}

// Search looks up key k: L0 first, then one fence-guided page probe per
// disk level, newest level wins.
func (t *Tree) Search(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error) {
	i := sort.Search(len(t.head), func(i int) bool { return t.head[i].rec.Key >= k })
	if i < len(t.head) && t.head[i].rec.Key == k {
		e := t.head[i]
		at += t.cfg.CPUPerNode
		return e.rec.Value, !e.dead, at, nil
	}
	buf := make([]byte, t.cfg.PageSize)
	for _, lv := range t.levels {
		if lv.count == 0 {
			continue
		}
		p := sort.Search(len(lv.fences), func(i int) bool { return lv.fences[i] > k })
		if p == 0 {
			continue // k below the run's first key
		}
		p--
		var err error
		at, err = t.pf.ReadPage(at, lv.first+pagefile.PageID(p), buf)
		if err != nil {
			return 0, false, at, err
		}
		t.stats.LevelReads++
		at += t.cfg.CPUPerNode
		es := decodePage(buf, t.pageCount(lv, p))
		j := sort.Search(len(es), func(i int) bool { return es[i].rec.Key >= k })
		if j < len(es) && es[j].rec.Key == k {
			return es[j].rec.Value, !es[j].dead, at, nil
		}
	}
	return 0, false, at, nil
}

// pageCount returns the number of entries on page p of a run.
func (t *Tree) pageCount(lv *level, p int) int {
	epp := t.entriesPerPage()
	if (p+1)*epp <= lv.count {
		return epp
	}
	return lv.count - p*epp
}

// RangeSearch returns live records with lo <= key < hi: the head overlay
// plus, per level, one sequential run read covering the key range.
func (t *Tree) RangeSearch(at vtime.Ticks, lo, hi kv.Key) ([]kv.Record, vtime.Ticks, error) {
	if hi <= lo {
		return nil, at, nil
	}
	// Collect per-source sorted entry streams, newest source first.
	var streams [][]entry
	var headPart []entry
	i := sort.Search(len(t.head), func(i int) bool { return t.head[i].rec.Key >= lo })
	for ; i < len(t.head) && t.head[i].rec.Key < hi; i++ {
		headPart = append(headPart, t.head[i])
	}
	streams = append(streams, headPart)
	for _, lv := range t.levels {
		if lv.count == 0 {
			streams = append(streams, nil)
			continue
		}
		p0 := sort.Search(len(lv.fences), func(i int) bool { return lv.fences[i] > lo })
		if p0 > 0 {
			p0--
		}
		p1 := sort.Search(len(lv.fences), func(i int) bool { return lv.fences[i] >= hi })
		if p1 >= lv.pages {
			p1 = lv.pages - 1
		}
		n := p1 - p0 + 1
		buf := make([]byte, n*t.cfg.PageSize)
		var err error
		at, err = t.pf.ReadRun(at, lv.first+pagefile.PageID(p0), n, buf)
		if err != nil {
			return nil, at, err
		}
		var part []entry
		for p := p0; p <= p1; p++ {
			es := decodePage(buf[(p-p0)*t.cfg.PageSize:(p-p0+1)*t.cfg.PageSize], t.pageCount(lv, p))
			for _, e := range es {
				if e.rec.Key >= lo && e.rec.Key < hi {
					part = append(part, e)
				}
			}
		}
		streams = append(streams, part)
	}
	// Resolve newest-first.
	resolved := map[kv.Key]entry{}
	for si := len(streams) - 1; si >= 0; si-- { // oldest first, newer overwrite
		for _, e := range streams[si] {
			resolved[e.rec.Key] = e
		}
	}
	var out []kv.Record
	for _, e := range resolved {
		if !e.dead {
			out = append(out, e.rec)
		}
	}
	kv.SortRecords(out)
	return out, at, nil
}

// mergeDown merges L0 (and any full deeper levels) into the first level
// with room, rewriting runs sequentially in large chunks.
func (t *Tree) mergeDown(at vtime.Ticks) (vtime.Ticks, error) {
	// Find the deepest level j such that levels 1..j are all full; the
	// merge target is j+1.
	target := 0 // disk level index in t.levels to merge into (0-based)
	for target < len(t.levels) && t.levels[target].count >= t.levelCap(target+1) {
		target++
	}
	// Gather streams: head plus levels[0..target], newest first.
	streams := [][]entry{t.head}
	var readTime vtime.Ticks = at
	var err error
	for i := 0; i <= target && i < len(t.levels); i++ {
		var es []entry
		es, readTime, err = t.readRunAll(readTime, t.levels[i])
		if err != nil {
			return readTime, err
		}
		streams = append(streams, es)
	}
	at = readTime
	isDeepest := target >= len(t.levels)-1
	merged := mergeStreams(streams, isDeepest)
	t.stats.Merges++
	t.stats.MergedIn += int64(len(merged))

	// Write the merged run as the new level target (0-based), clearing the
	// shallower ones.
	lv, at2, err := t.writeRun(at, merged)
	if err != nil {
		return at2, err
	}
	at = at2
	for i := 0; i <= target && i < len(t.levels); i++ {
		t.freeRun(t.levels[i])
		t.levels[i] = &level{}
	}
	if target < len(t.levels) {
		t.levels[target] = lv
	} else {
		t.levels = append(t.levels, lv)
	}
	t.head = t.head[:0]
	return at, nil
}

// readRunAll reads a whole run with chunked sequential I/O.
func (t *Tree) readRunAll(at vtime.Ticks, lv *level) ([]entry, vtime.Ticks, error) {
	if lv.count == 0 {
		return nil, at, nil
	}
	out := make([]entry, 0, lv.count)
	chunk := t.cfg.chunk()
	for p := 0; p < lv.pages; p += chunk {
		n := chunk
		if p+n > lv.pages {
			n = lv.pages - p
		}
		buf := make([]byte, n*t.cfg.PageSize)
		var err error
		at, err = t.pf.ReadRun(at, lv.first+pagefile.PageID(p), n, buf)
		if err != nil {
			return nil, at, err
		}
		for q := 0; q < n; q++ {
			out = append(out, decodePage(buf[q*t.cfg.PageSize:(q+1)*t.cfg.PageSize], t.pageCount(lv, p+q))...)
		}
	}
	return out, at, nil
}

// writeRun lays out entries as a fresh sorted run with chunked writes.
func (t *Tree) writeRun(at vtime.Ticks, es []entry) (*level, vtime.Ticks, error) {
	epp := t.entriesPerPage()
	pages := (len(es) + epp - 1) / epp
	if pages == 0 {
		pages = 1
	}
	first := t.pf.AllocRun(pages)
	lv := &level{first: first, pages: pages, count: len(es)}
	chunk := t.cfg.chunk()
	for p := 0; p < pages; p += chunk {
		n := chunk
		if p+n > pages {
			n = pages - p
		}
		buf := make([]byte, n*t.cfg.PageSize)
		for q := 0; q < n; q++ {
			lo := (p + q) * epp
			hi := lo + epp
			if hi > len(es) {
				hi = len(es)
			}
			if lo < len(es) {
				encodePage(buf[q*t.cfg.PageSize:(q+1)*t.cfg.PageSize], es[lo:hi])
			}
		}
		var err error
		at, err = t.pf.WriteRun(at, first+pagefile.PageID(p), n, buf)
		if err != nil {
			return nil, at, err
		}
	}
	for p := 0; p < pages; p++ {
		lo := p * epp
		if lo < len(es) {
			lv.fences = append(lv.fences, es[lo].rec.Key)
		}
	}
	return lv, at, nil
}

func (t *Tree) freeRun(lv *level) {
	for p := 0; p < lv.pages; p++ {
		t.pf.Free(lv.first + pagefile.PageID(p))
	}
}

// mergeStreams merges newest-first sorted streams into one sorted run;
// duplicates resolve to the newest entry; tombstones are dropped at the
// deepest level.
func mergeStreams(streams [][]entry, dropTombstones bool) []entry {
	idx := make([]int, len(streams))
	var out []entry
	for {
		best := -1
		var bestKey kv.Key
		for s := range streams {
			if idx[s] >= len(streams[s]) {
				continue
			}
			k := streams[s][idx[s]].rec.Key
			if best == -1 || k < bestKey {
				best, bestKey = s, k
			}
		}
		if best == -1 {
			return out
		}
		// Take the newest stream's entry among those sharing bestKey.
		winner := entry{}
		found := false
		for s := range streams { // streams[0] is newest
			if idx[s] < len(streams[s]) && streams[s][idx[s]].rec.Key == bestKey {
				if !found {
					winner = streams[s][idx[s]]
					found = true
				}
				idx[s]++
			}
		}
		if winner.dead && dropTombstones {
			continue
		}
		out = append(out, winner)
	}
}

func encodePage(buf []byte, es []entry) {
	off := 0
	for _, e := range es {
		kv.PutRecord(buf[off:], e.rec)
		if e.dead {
			buf[off+kv.RecordSize] = 1
		}
		off += entrySize
	}
}

func decodePage(buf []byte, n int) []entry {
	out := make([]entry, n)
	off := 0
	for i := 0; i < n; i++ {
		out[i] = entry{rec: kv.GetRecord(buf[off:]), dead: buf[off+kv.RecordSize] == 1}
		off += entrySize
	}
	return out
}

// BulkLoad builds the tree by placing all records in one deep run.
func (t *Tree) BulkLoad(recs []kv.Record) error {
	if t.count != 0 || len(t.head) > 0 || len(t.levels) > 0 {
		return fmt.Errorf("fdtree: bulk load into non-empty tree")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Key >= recs[i].Key {
			return fmt.Errorf("fdtree: bulk load input not strictly sorted at %d", i)
		}
	}
	if len(recs) == 0 {
		return nil
	}
	// Find the level whose capacity fits the data.
	depth := 1
	for t.levelCap(depth) < len(recs) {
		depth++
	}
	es := make([]entry, len(recs))
	for i, r := range recs {
		es[i] = entry{rec: r}
	}
	lv, _, err := t.writeRunNoCost(es)
	if err != nil {
		return err
	}
	for i := 1; i < depth; i++ {
		t.levels = append(t.levels, &level{})
	}
	t.levels = append(t.levels, lv)
	t.count = int64(len(recs))
	return nil
}

// writeRunNoCost lays out a run bypassing simulated time (setup only).
func (t *Tree) writeRunNoCost(es []entry) (*level, vtime.Ticks, error) {
	epp := t.entriesPerPage()
	pages := (len(es) + epp - 1) / epp
	if pages == 0 {
		pages = 1
	}
	first := t.pf.AllocRun(pages)
	lv := &level{first: first, pages: pages, count: len(es)}
	buf := make([]byte, t.cfg.PageSize)
	for p := 0; p < pages; p++ {
		for i := range buf {
			buf[i] = 0
		}
		lo := p * epp
		hi := lo + epp
		if hi > len(es) {
			hi = len(es)
		}
		if lo < len(es) {
			encodePage(buf, es[lo:hi])
			lv.fences = append(lv.fences, es[lo].rec.Key)
		}
		if err := t.pf.WritePageNoCost(first+pagefile.PageID(p), buf); err != nil {
			return nil, 0, err
		}
	}
	return lv, 0, nil
}
