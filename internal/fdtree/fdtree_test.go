package fdtree

import (
	"math/rand"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

func newTree(t *testing.T, headPages int) *Tree {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	f, err := ssdio.NewSpace(dev).Create("fd", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pagefile.New(f, 2048)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pf, Config{PageSize: 2048, HeadPages: headPages, SizeRatio: 4})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestValidation(t *testing.T) {
	dev := flashsim.MustDevice(flashsim.P300())
	f, _ := ssdio.NewSpace(dev).Create("v", 1<<16)
	pf, _ := pagefile.New(f, 2048)
	if _, err := New(pf, Config{PageSize: 2048, HeadPages: 0}); err == nil {
		t.Fatal("zero head accepted")
	}
	if _, err := New(pf, Config{PageSize: 32, HeadPages: 1}); err == nil {
		t.Fatal("tiny page accepted")
	}
}

func TestInsertSearchWithMerges(t *testing.T) {
	tr := newTree(t, 1)
	var at vtime.Ticks
	var err error
	const n = 5000
	for i := 0; i < n; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i * 3), Value: uint64(i)})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Stats().Merges == 0 {
		t.Fatal("no merges happened")
	}
	if tr.Levels() < 2 {
		t.Fatalf("levels = %d", tr.Levels())
	}
	for i := 0; i < n; i += 173 {
		v, found, at2, err := tr.Search(at, uint64(i*3))
		if err != nil || !found || v != uint64(i) {
			t.Fatalf("Search(%d) = %v,%v,%v", i*3, v, found, err)
		}
		at = at2
		_, found, at, err = tr.Search(at, uint64(i*3+1))
		if err != nil || found {
			t.Fatalf("found absent key %d", i*3+1)
		}
	}
}

func TestDeleteTombstones(t *testing.T) {
	tr := newTree(t, 1)
	var at vtime.Ticks
	var err error
	for i := 0; i < 2000; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Delete odd keys; some tombstones stay in shallow levels, some merge.
	for i := 1; i < 2000; i += 2 {
		at, err = tr.Delete(at, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i += 97 {
		_, found, at2, err := tr.Search(at, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		at = at2
		if i%2 == 0 && !found {
			t.Fatalf("even key %d missing", i)
		}
		if i%2 == 1 && found {
			t.Fatalf("deleted key %d found", i)
		}
	}
	if tr.Count() != 1000 {
		t.Fatalf("count = %d", tr.Count())
	}
}

func TestUpdateNewestWins(t *testing.T) {
	tr := newTree(t, 1)
	var at vtime.Ticks
	var err error
	for i := 0; i < 1500; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	at, err = tr.Update(at, kv.Record{Key: 700, Value: 42})
	if err != nil {
		t.Fatal(err)
	}
	v, found, _, err := tr.Search(at, 700)
	if err != nil || !found || v != 42 {
		t.Fatalf("after update: %v %v %v", v, found, err)
	}
}

func TestRangeSearch(t *testing.T) {
	tr := newTree(t, 1)
	var at vtime.Ticks
	var err error
	model := map[kv.Key]kv.Value{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(3000))
		if rng.Intn(5) == 0 {
			at, err = tr.Delete(at, k)
			delete(model, k)
		} else {
			at, err = tr.Insert(at, kv.Record{Key: k, Value: uint64(i)})
			model[k] = uint64(i)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tr.RangeSearch(at, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for k := range model {
		if k >= 1000 && k < 2000 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range %d records, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key >= got[i].Key {
			t.Fatal("range unsorted")
		}
	}
	for _, r := range got {
		if model[r.Key] != r.Value {
			t.Fatalf("key %d value %d want %d", r.Key, r.Value, model[r.Key])
		}
	}
	if out, _, err := tr.RangeSearch(at, 5, 5); err != nil || out != nil {
		t.Fatal("empty range misbehaved")
	}
}

func TestBulkLoad(t *testing.T) {
	tr := newTree(t, 1)
	recs := make([]kv.Record, 20000)
	for i := range recs {
		recs[i] = kv.Record{Key: uint64(i) * 2, Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 20000 {
		t.Fatalf("count = %d", tr.Count())
	}
	for _, i := range []int{0, 10000, 19999} {
		v, found, _, err := tr.Search(0, recs[i].Key)
		if err != nil || !found || v != recs[i].Value {
			t.Fatalf("Search(%d): %v %v %v", recs[i].Key, v, found, err)
		}
	}
	if err := tr.BulkLoad(recs); err == nil {
		t.Fatal("double bulk load accepted")
	}
	if err := newTree(t, 1).BulkLoad([]kv.Record{{Key: 3}, {Key: 1}}); err == nil {
		t.Fatal("unsorted bulk load accepted")
	}
}

func TestInsertAfterBulkLoadMergesInto(t *testing.T) {
	tr := newTree(t, 1)
	recs := make([]kv.Record, 8000)
	for i := range recs {
		recs[i] = kv.Record{Key: uint64(i) * 10, Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	var at vtime.Ticks
	var err error
	for i := 0; i < 3000; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i)*10 + 5, Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Both old and new keys visible.
	v, found, at, err := tr.Search(at, 500*10)
	if err != nil || !found || v != 500 {
		t.Fatalf("old key: %v %v %v", v, found, err)
	}
	v, found, _, err = tr.Search(at, 500*10+5)
	if err != nil || !found || v != 500 {
		t.Fatalf("new key: %v %v %v", v, found, err)
	}
}

func TestPointSearchCostGrowsWithLevels(t *testing.T) {
	// More levels => more page probes per search (the FD-tree handicap).
	// Random keys keep every level's key range overlapping the whole
	// space, so a point search must probe each non-empty level.
	tr := newTree(t, 1)
	var at vtime.Ticks
	var err error
	rng := rand.New(rand.NewSource(21))
	keys := rng.Perm(6100) // not a cascade multiple: shallow levels stay populated
	for i, k := range keys {
		at, err = tr.Insert(at, kv.Record{Key: uint64(k) * 2, Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	nonEmpty := 0
	for _, lv := range tr.levels {
		if lv.count > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Skipf("workload left only %d non-empty levels", nonEmpty)
	}
	before := tr.Stats().LevelReads
	const searches = 50
	for i := 0; i < searches; i++ {
		// Absent odd keys force a probe of every populated level.
		_, found, at2, err := tr.Search(at, uint64(keys[i*101%len(keys)])*2+1)
		if err != nil || found {
			t.Fatalf("absent key found: %v %v", found, err)
		}
		at = at2
	}
	probes := float64(tr.Stats().LevelReads-before) / searches
	if probes < 1.2 {
		t.Fatalf("FD-tree probes/search = %.2f, expected > 1.2 with %d non-empty levels", probes, nonEmpty)
	}
}
