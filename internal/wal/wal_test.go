package wal

import (
	"testing"
	"testing/quick"

	"repro/internal/flashsim"
	"repro/internal/ssdio"
)

func newLog(t *testing.T) *Log {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	f, err := ssdio.NewSpace(dev).Create("wal", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLog(f, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindLogicalRedo, KindFlushStart, KindFlushEnd, KindFlushUndo, KindCommit, KindCheckpoint, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
}

func TestAppendForceRead(t *testing.T) {
	l := newLog(t)
	lsn1 := l.Append(Record{Kind: KindLogicalRedo, TxID: 1, Relation: 2, Op: OpInsert, Key: 10, Value: 100})
	lsn2 := l.Append(Record{Kind: KindFlushStart, FlushID: 7, KeyLo: 1, KeyHi: 50})
	if lsn2 != lsn1+1 {
		t.Fatalf("LSNs not sequential: %d %d", lsn1, lsn2)
	}
	if l.DurableLSN() != 0 {
		t.Fatal("records durable before Force")
	}
	done, err := l.Force(0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("force cost no time")
	}
	if l.DurableLSN() != lsn2 {
		t.Fatalf("durable LSN %d, want %d", l.DurableLSN(), lsn2)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records", len(recs))
	}
	r := recs[0]
	if r.Kind != KindLogicalRedo || r.TxID != 1 || r.Relation != 2 || r.Op != OpInsert || r.Key != 10 || r.Value != 100 {
		t.Fatalf("record mismatch: %+v", r)
	}
	if recs[1].FlushID != 7 || recs[1].KeyLo != 1 || recs[1].KeyHi != 50 {
		t.Fatalf("record mismatch: %+v", recs[1])
	}
}

func TestForceEmptyTailFree(t *testing.T) {
	l := newLog(t)
	done, err := l.Force(42)
	if err != nil || done != 42 {
		t.Fatalf("empty force: %v %v", done, err)
	}
}

func TestCrashDropsTail(t *testing.T) {
	l := newLog(t)
	l.Append(Record{Kind: KindLogicalRedo, Key: 1})
	if _, err := l.Force(0); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindLogicalRedo, Key: 2})
	l.Crash()
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != 1 {
		t.Fatalf("after crash: %+v", recs)
	}
	// LSNs continue from the durable point.
	lsn := l.Append(Record{Kind: KindLogicalRedo, Key: 3})
	if lsn != 2 {
		t.Fatalf("post-crash LSN %d, want 2", lsn)
	}
}

func TestUndoInfoRoundTrip(t *testing.T) {
	l := newLog(t)
	undo := make([]byte, 1024)
	for i := range undo {
		undo[i] = byte(i)
	}
	l.Append(Record{Kind: KindFlushUndo, NodeID: -5, UndoInfo: undo})
	if _, err := l.Force(0); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].NodeID != -5 || len(recs[0].UndoInfo) != 1024 {
		t.Fatalf("undo record: %+v", recs[0])
	}
	for i, b := range recs[0].UndoInfo {
		if b != byte(i) {
			t.Fatalf("undo byte %d = %d", i, b)
		}
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(kind uint8, tx uint64, rel uint32, op uint8, key, val, fid, lo, hi uint64, node int64, undo []byte) bool {
		if len(undo) > 4096 {
			undo = undo[:4096]
		}
		in := Record{
			LSN: 1, Kind: Kind(kind%6 + 1), TxID: tx, Relation: rel,
			Op: OpType(op), Key: key, Value: val, FlushID: fid,
			KeyLo: lo, KeyHi: hi, NodeID: node,
		}
		if len(undo) > 0 {
			in.UndoInfo = undo
		}
		wire := in.marshal(nil)
		out, n, err := unmarshal(wire)
		if err != nil || n != len(wire) {
			return false
		}
		if out.Kind != in.Kind || out.TxID != in.TxID || out.Relation != in.Relation ||
			out.Op != in.Op || out.Key != in.Key || out.Value != in.Value ||
			out.FlushID != in.FlushID || out.KeyLo != in.KeyLo || out.KeyHi != in.KeyHi ||
			out.NodeID != in.NodeID || len(out.UndoInfo) != len(in.UndoInfo) {
			return false
		}
		for i := range in.UndoInfo {
			if out.UndoInfo[i] != in.UndoInfo[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptCRCDetected(t *testing.T) {
	r := Record{LSN: 1, Kind: KindCommit}
	wire := r.marshal(nil)
	wire[9] ^= 0xFF // flip a body byte
	if _, _, err := unmarshal(wire); err == nil {
		t.Fatal("corrupt record accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	r := Record{LSN: 1, Kind: KindCommit}
	wire := r.marshal(nil)
	if _, _, err := unmarshal(wire[:5]); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, _, err := unmarshal(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func TestNewLogValidation(t *testing.T) {
	dev := flashsim.MustDevice(flashsim.P300())
	f, _ := ssdio.NewSpace(dev).Create("w2", 4096)
	if _, err := NewLog(f, 0); err == nil {
		t.Fatal("zero page size accepted")
	}
}
