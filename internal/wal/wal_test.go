package wal

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/flashsim"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

func newLog(t *testing.T) *Log {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	f, err := ssdio.NewSpace(dev).Create("wal", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLog(f, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindLogicalRedo, KindFlushStart, KindFlushEnd, KindFlushUndo, KindCommit, KindCheckpoint, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
}

func TestAppendForceRead(t *testing.T) {
	l := newLog(t)
	lsn1 := l.Append(Record{Kind: KindLogicalRedo, TxID: 1, Relation: 2, Op: OpInsert, Key: 10, Value: 100})
	lsn2 := l.Append(Record{Kind: KindFlushStart, FlushID: 7, KeyLo: 1, KeyHi: 50})
	if lsn2 != lsn1+1 {
		t.Fatalf("LSNs not sequential: %d %d", lsn1, lsn2)
	}
	if l.DurableLSN() != 0 {
		t.Fatal("records durable before Force")
	}
	done, err := l.Force(0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("force cost no time")
	}
	if l.DurableLSN() != lsn2 {
		t.Fatalf("durable LSN %d, want %d", l.DurableLSN(), lsn2)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records", len(recs))
	}
	r := recs[0]
	if r.Kind != KindLogicalRedo || r.TxID != 1 || r.Relation != 2 || r.Op != OpInsert || r.Key != 10 || r.Value != 100 {
		t.Fatalf("record mismatch: %+v", r)
	}
	if recs[1].FlushID != 7 || recs[1].KeyLo != 1 || recs[1].KeyHi != 50 {
		t.Fatalf("record mismatch: %+v", recs[1])
	}
}

func TestForceEmptyTailFree(t *testing.T) {
	l := newLog(t)
	done, err := l.Force(42)
	if err != nil || done != 42 {
		t.Fatalf("empty force: %v %v", done, err)
	}
}

func TestCrashDropsTail(t *testing.T) {
	l := newLog(t)
	l.Append(Record{Kind: KindLogicalRedo, Key: 1})
	if _, err := l.Force(0); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindLogicalRedo, Key: 2})
	l.Crash()
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != 1 {
		t.Fatalf("after crash: %+v", recs)
	}
	// LSNs continue from the durable point.
	lsn := l.Append(Record{Kind: KindLogicalRedo, Key: 3})
	if lsn != 2 {
		t.Fatalf("post-crash LSN %d, want 2", lsn)
	}
}

func TestUndoInfoRoundTrip(t *testing.T) {
	l := newLog(t)
	undo := make([]byte, 1024)
	for i := range undo {
		undo[i] = byte(i)
	}
	l.Append(Record{Kind: KindFlushUndo, NodeID: -5, UndoInfo: undo})
	if _, err := l.Force(0); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].NodeID != -5 || len(recs[0].UndoInfo) != 1024 {
		t.Fatalf("undo record: %+v", recs[0])
	}
	for i, b := range recs[0].UndoInfo {
		if b != byte(i) {
			t.Fatalf("undo byte %d = %d", i, b)
		}
	}
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(kind uint8, tx uint64, rel uint32, op uint8, key, val, fid, lo, hi uint64, node int64, undo []byte) bool {
		if len(undo) > 4096 {
			undo = undo[:4096]
		}
		in := Record{
			LSN: 1, Kind: Kind(kind%6 + 1), TxID: tx, Relation: rel,
			Op: OpType(op), Key: key, Value: val, FlushID: fid,
			KeyLo: lo, KeyHi: hi, NodeID: node,
		}
		if len(undo) > 0 {
			in.UndoInfo = undo
		}
		wire := in.marshal(nil)
		out, n, err := unmarshal(wire)
		if err != nil || n != len(wire) {
			return false
		}
		if out.Kind != in.Kind || out.TxID != in.TxID || out.Relation != in.Relation ||
			out.Op != in.Op || out.Key != in.Key || out.Value != in.Value ||
			out.FlushID != in.FlushID || out.KeyLo != in.KeyLo || out.KeyHi != in.KeyHi ||
			out.NodeID != in.NodeID || len(out.UndoInfo) != len(in.UndoInfo) {
			return false
		}
		for i := range in.UndoInfo {
			if out.UndoInfo[i] != in.UndoInfo[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptCRCDetected(t *testing.T) {
	r := Record{LSN: 1, Kind: KindCommit}
	wire := r.marshal(nil)
	wire[9] ^= 0xFF // flip a body byte
	if _, _, err := unmarshal(wire); err == nil {
		t.Fatal("corrupt record accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	r := Record{LSN: 1, Kind: KindCommit}
	wire := r.marshal(nil)
	if _, _, err := unmarshal(wire[:5]); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, _, err := unmarshal(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func TestNewLogValidation(t *testing.T) {
	dev := flashsim.MustDevice(flashsim.P300())
	f, _ := ssdio.NewSpace(dev).Create("w2", 4096)
	if _, err := NewLog(f, 0); err == nil {
		t.Fatal("zero page size accepted")
	}
}

// TestForceAlignment is the regression test for the unaligned-durable-
// offset bug: every force must issue exactly one page-aligned device
// write (aligned offset AND size), carrying the partial last page
// forward, and the full record stream must still decode.
func TestForceAlignment(t *testing.T) {
	const pageSize = 512
	dev := flashsim.MustDevice(flashsim.P300())
	f, err := ssdio.NewSpace(dev).Create("wal", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLog(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	l.TraceForces = true
	total := 0
	var at vtime.Ticks
	for i := 0; i < 20; i++ {
		// Odd-sized records (growing undo payloads) so forces end
		// mid-page almost every time.
		undo := make([]byte, 37*i%300)
		l.Append(Record{Kind: KindFlushUndo, NodeID: int64(i), UndoInfo: undo})
		total++
		if i%3 == 0 {
			l.Append(Record{Kind: KindLogicalRedo, Key: uint64(i), Value: uint64(i)})
			total++
		}
		done, err := l.Force(at)
		if err != nil {
			t.Fatal(err)
		}
		at = done
	}
	if len(l.ForceTrace) != 20 {
		t.Fatalf("traced %d forces, want 20", len(l.ForceTrace))
	}
	prevEnd := int64(0)
	for i, sp := range l.ForceTrace {
		if sp.Off%pageSize != 0 {
			t.Fatalf("force %d offset %d not page-aligned", i, sp.Off)
		}
		if sp.Len%pageSize != 0 || sp.Len == 0 {
			t.Fatalf("force %d length %d not a positive page multiple", i, sp.Len)
		}
		// A force may rewrite the carried partial page, but never a fully
		// durable one: its start is at most one page before the previous end.
		if i > 0 && sp.Off < prevEnd-pageSize {
			t.Fatalf("force %d offset %d rewrites fully durable pages (prev end %d)", i, sp.Off, prevEnd)
		}
		if sp.Off > prevEnd {
			t.Fatalf("force %d offset %d leaves a gap (prev end %d)", i, sp.Off, prevEnd)
		}
		prevEnd = sp.Off + sp.Len
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != total {
		t.Fatalf("decoded %d records, want %d", len(recs), total)
	}
}

// TestForcePartialPageCarried: two sub-page forces land in the same page;
// the second must rewrite it from the page boundary, not append at an
// unaligned offset, and both records must survive.
func TestForcePartialPageCarried(t *testing.T) {
	l := newLog(t)
	l.TraceForces = true
	l.Append(Record{Kind: KindLogicalRedo, Key: 1, Value: 10})
	if _, err := l.Force(0); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindLogicalRedo, Key: 2, Value: 20})
	if _, err := l.Force(0); err != nil {
		t.Fatal(err)
	}
	if len(l.ForceTrace) != 2 {
		t.Fatalf("traced %d forces", len(l.ForceTrace))
	}
	if l.ForceTrace[0].Off != 0 || l.ForceTrace[1].Off != 0 {
		t.Fatalf("sub-page forces must both start at 0: %+v", l.ForceTrace)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != 1 || recs[1].Key != 2 {
		t.Fatalf("records after carried force: %+v", recs)
	}
}

// TestForceGroupGang: several logs on one device are forced durable by a
// single gang submission; duplicates and empty tails are skipped.
func TestForceGroupGang(t *testing.T) {
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	logs := make([]*Log, 4)
	for i := range logs {
		f, err := space.Create(fmt.Sprintf("wal%d", i), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		logs[i], err = NewLog(f, 4096)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Logs 0..2 get records; log 3 stays empty. Log 0 passed twice.
	for i := 0; i < 3; i++ {
		logs[i].Append(Record{Kind: KindLogicalRedo, Relation: uint32(i), Key: uint64(i)})
	}
	done, n, err := ForceGroup(0, []*Log{logs[0], logs[1], logs[0], logs[2], nil, logs[3]})
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("gang force cost no time")
	}
	if n != 3 {
		t.Fatalf("gang forced %d logs, want 3", n)
	}
	for i := 0; i < 3; i++ {
		if logs[i].DurableLSN() != 1 {
			t.Fatalf("log %d durable LSN %d, want 1", i, logs[i].DurableLSN())
		}
		if logs[i].GangForces != 1 || logs[i].ForceWrites != 0 {
			t.Fatalf("log %d gang=%d force=%d, want 1/0", i, logs[i].GangForces, logs[i].ForceWrites)
		}
		recs, err := logs[i].Records()
		if err != nil || len(recs) != 1 || recs[0].Relation != uint32(i) {
			t.Fatalf("log %d records: %v %v", i, recs, err)
		}
	}
	if logs[3].GangForces != 0 {
		t.Fatal("empty log charged a gang force")
	}
	// Empty gang is free and reports zero submissions.
	if d, n, err := ForceGroup(42, []*Log{logs[3], nil}); err != nil || d != 42 || n != 0 {
		t.Fatalf("empty gang: %v %v %v", d, n, err)
	}
}

// TestRecordsTornTail: a force interrupted by a crash leaves a truncated
// or corrupted tail; Records must return the intact prefix instead of
// failing the whole recovery.
func TestRecordsTornTail(t *testing.T) {
	build := func(t *testing.T) *Log {
		l := newLog(t)
		for i := 0; i < 5; i++ {
			l.Append(Record{Kind: KindLogicalRedo, Key: uint64(i), Value: uint64(i * 10)})
		}
		if _, err := l.Force(0); err != nil {
			t.Fatal(err)
		}
		return l
	}
	// Byte offset where record i starts (records are identically sized).
	recOff := func(l *Log, i int) int64 {
		return int64(i) * (l.durable / 5)
	}
	cases := []struct {
		name string
		tear func(t *testing.T, l *Log)
		want int
	}{
		{
			name: "corrupt CRC of last record",
			tear: func(t *testing.T, l *Log) {
				corruptAt(t, l, recOff(l, 4)+12) // a body byte of record 4
			},
			want: 4,
		},
		{
			name: "corrupt CRC mid-log cuts there",
			tear: func(t *testing.T, l *Log) {
				corruptAt(t, l, recOff(l, 2)+12)
			},
			want: 2,
		},
		{
			name: "zeroed tail page (truncated force)",
			tear: func(t *testing.T, l *Log) {
				zeroFrom(t, l, recOff(l, 3))
			},
			want: 3,
		},
		{
			name: "garbage length header",
			tear: func(t *testing.T, l *Log) {
				garbageAt(t, l, recOff(l, 4)) // clobber record 4's length field
			},
			want: 4,
		},
		{
			name: "intact log unaffected",
			tear: func(t *testing.T, l *Log) {},
			want: 5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := build(t)
			tc.tear(t, l)
			recs, err := l.Records()
			if err != nil {
				t.Fatalf("torn tail errored the scan: %v", err)
			}
			if len(recs) != tc.want {
				t.Fatalf("got %d records, want %d", len(recs), tc.want)
			}
			for i, r := range recs {
				if r.Key != uint64(i) || r.Value != uint64(i*10) {
					t.Fatalf("intact prefix corrupted at %d: %+v", i, r)
				}
			}
		})
	}
}

func corruptAt(t *testing.T, l *Log, off int64) {
	t.Helper()
	b := []byte{0xFF}
	if err := l.f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if err := l.f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func zeroFrom(t *testing.T, l *Log, off int64) {
	t.Helper()
	if err := l.f.WriteAt(make([]byte, l.durable-off), off); err != nil {
		t.Fatal(err)
	}
}

func garbageAt(t *testing.T, l *Log, off int64) {
	t.Helper()
	if err := l.f.WriteAt([]byte{0xDE, 0xAD, 0xBE, 0xEF}, off); err != nil {
		t.Fatal(err)
	}
}

// TestTruncateHead: head truncation drops exactly the records below the
// cut LSN, Records scans only the surviving suffix, and the log keeps
// appending and forcing correctly afterwards.
func TestTruncateHead(t *testing.T) {
	l := newLog(t)
	var lsns []uint64
	for i := 0; i < 10; i++ {
		lsns = append(lsns, l.Append(Record{Kind: KindLogicalRedo, Key: uint64(i), Value: uint64(i * 10)}))
	}
	if _, err := l.Force(0); err != nil {
		t.Fatal(err)
	}
	pre := l.LiveBytes()
	cut, err := l.TruncateHead(lsns[4])
	if err != nil {
		t.Fatal(err)
	}
	if cut <= 0 {
		t.Fatal("truncation reclaimed nothing")
	}
	if got := l.TruncatedBytes(); got != cut {
		t.Fatalf("TruncatedBytes %d, want %d", got, cut)
	}
	if got := l.LiveBytes(); got != pre-cut {
		t.Fatalf("LiveBytes %d, want %d", got, pre-cut)
	}
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || recs[0].LSN != lsns[4] || recs[0].Key != 4 {
		t.Fatalf("surviving records: %d, head %+v", len(recs), recs[0])
	}
	// Idempotent: re-truncating at the same LSN drops nothing more.
	if cut2, err := l.TruncateHead(lsns[4]); err != nil || cut2 != 0 {
		t.Fatalf("re-truncate: cut=%d err=%v", cut2, err)
	}
	// The log keeps working: append, force, read back across the head.
	l.Append(Record{Kind: KindCheckpoint, Relation: 3})
	if _, err := l.Force(0); err != nil {
		t.Fatal(err)
	}
	recs, err = l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 || recs[6].Kind != KindCheckpoint {
		t.Fatalf("after post-truncation append: %d records, tail %v", len(recs), recs[len(recs)-1].Kind)
	}
	// Truncating past everything durable empties the scan window.
	if _, err := l.TruncateHead(recs[6].LSN + 1); err != nil {
		t.Fatal(err)
	}
	if recs, err = l.Records(); err != nil || len(recs) != 0 {
		t.Fatalf("full truncation left %d records (err %v)", len(recs), err)
	}
	if got := l.LiveBytes(); got != 0 {
		t.Fatalf("LiveBytes %d after full truncation", got)
	}
}

// TestTruncateHeadCrashSurvives: records surviving truncation still
// recover after a crash (head and durable interplay).
func TestTruncateHeadCrashSurvives(t *testing.T) {
	l := newLog(t)
	for i := 0; i < 6; i++ {
		l.Append(Record{Kind: KindLogicalRedo, Key: uint64(i)})
	}
	if _, err := l.Force(0); err != nil {
		t.Fatal(err)
	}
	ck := l.Append(Record{Kind: KindCheckpoint})
	if _, err := l.Force(0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.TruncateHead(ck); err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindLogicalRedo, Key: 100}) // volatile tail
	l.Crash()
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != KindCheckpoint {
		t.Fatalf("post-crash scan: %d records, head %v", len(recs), recs[0].Kind)
	}
}
