package wal

import (
	"bytes"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/ssdio"
)

// fuzzSeedLog builds a small marshaled log covering every record family
// the crash matrix exercises.
func fuzzSeedLog() []byte {
	var buf []byte
	recs := []Record{
		{Kind: KindLogicalRedo, LSN: 1, TxID: 7, Relation: 1, Op: OpInsert, Key: 10, Value: 70},
		{Kind: KindFlushStart, LSN: 2, Relation: 1, FlushID: 3, KeyLo: 0, KeyHi: 100},
		{Kind: KindFlushUndo, LSN: 3, FlushID: 3, NodeID: 42, UndoInfo: []byte{1, 2, 3, 4}},
		{Kind: KindKeyMoved, LSN: 4, FlushID: 9, KeyLo: 5, KeyHi: 9},
		{Kind: KindFlushEnd, LSN: 5, Relation: 1, FlushID: 3, KeyLo: 0, KeyHi: 100},
	}
	for i := range recs {
		buf = recs[i].marshal(buf)
	}
	return buf
}

// FuzzRecords feeds arbitrary bytes to the log scanner used by crash
// recovery. The invariants under test are the torn-tail contract:
// scanning never panics, stops cleanly at the first undecodable byte
// (whatever garbage follows), and every record it does return
// round-trips bit-exactly through marshal — i.e. the recovered prefix is
// exactly the data the WAL acknowledged.
func FuzzRecords(f *testing.F) {
	seed := fuzzSeedLog()
	f.Add(seed)
	// Crash-matrix cuts: a force can tear at any byte, so seed the corpus
	// with the log cut inside the length prefix, the CRC, the body, and at
	// record boundaries.
	for _, cut := range []int{0, 1, 4, 7, 8, 9, recordHeaderSize, len(seed) / 2, len(seed) - 1} {
		f.Add(append([]byte(nil), seed[:cut]...))
	}
	flip := append([]byte(nil), seed...)
	flip[12] ^= 0xff // corrupt the first body byte: CRC must reject it
	f.Add(flip)
	zero := append([]byte(nil), seed...)
	zero[0], zero[1], zero[2], zero[3] = 0, 0, 0, 0 // zero length = clean end
	f.Add(zero)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direct scan of the raw bytes, mirroring Records' loop.
		var consumed int
		rest := data
		for len(rest) > 0 {
			r, n, err := unmarshal(rest)
			if err != nil {
				break
			}
			if n <= 8 || n > len(rest) {
				t.Fatalf("unmarshal consumed %d of %d bytes", n, len(rest))
			}
			if got := r.marshal(nil); !bytes.Equal(got, rest[:n]) {
				t.Fatalf("record does not round-trip: %d byte record remarshals to %d bytes", n, len(got))
			}
			consumed += n
			rest = rest[n:]
		}
		if consumed > len(data) {
			t.Fatalf("scanner consumed %d bytes of a %d byte log", consumed, len(data))
		}

		// End-to-end: the same bytes as the durable content of a Log on a
		// simulated device must yield the same record sequence.
		dev := flashsim.MustDevice(flashsim.P300())
		file, err := ssdio.NewSpace(dev).Create("wal", int64(len(data))+1)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := file.WriteAt(data, 0); err != nil {
			t.Fatalf("write: %v", err)
		}
		l := &Log{f: file, pageSize: 4096, nextLSN: 1, durable: int64(len(data))}
		recs, err := l.Records()
		if err != nil {
			t.Fatalf("Records: %v", err)
		}
		want := consumed
		var got int
		for i := range recs {
			got += len(recs[i].marshal(nil))
		}
		if got != want {
			t.Fatalf("Records decoded %d bytes, raw scan decoded %d", got, want)
		}
	})
}
