// Package wal implements write-ahead logging for the PIO B-tree's crash
// recovery scheme (Section 3.4 and Table 2 of the paper).
//
// The paper's OPQ keeps committed index records only in memory, so it
// extends ARIES-style logging with three PIO-specific record kinds:
//
//   - logical redo log  <Ti, Ri, op-type, index record>: one per OPQ
//     append; redone after a crash for entries that were never flushed;
//   - flush event log   <Ti, Ri, FlushStart/FlushEnd, key range>: brackets
//     every OPQ flush so recovery can tell completed flushes (whose redo
//     logs must be skipped — logical redo is not idempotent) from
//     incomplete ones (which must be undone);
//   - flush undo log    <Ri, node id, undo info>: one per node updated by a
//     flush, replayed backwards to roll an incomplete flush off the tree.
//
// Records are length-prefixed, CRC-checked, and appended to a simulated
// SSD file; Force writes the in-memory tail with sequential page writes
// and returns the new durable LSN.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/flashsim"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// Kind enumerates the log record types of Table 2 plus the generic
// transaction-control records every WAL needs.
type Kind uint8

const (
	// KindLogicalRedo is a logical redo log for one OPQ entry.
	KindLogicalRedo Kind = iota + 1
	// KindFlushStart opens an OPQ flush (key range recorded).
	KindFlushStart
	// KindFlushEnd closes an OPQ flush (same key range as its start).
	KindFlushEnd
	// KindFlushUndo records physical undo info for one node updated during
	// a flush.
	KindFlushUndo
	// KindCommit marks a transaction committed.
	KindCommit
	// KindCheckpoint marks a checkpoint (OPQ fully flushed).
	KindCheckpoint
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLogicalRedo:
		return "logical-redo"
	case KindFlushStart:
		return "flush-start"
	case KindFlushEnd:
		return "flush-end"
	case KindFlushUndo:
		return "flush-undo"
	case KindCommit:
		return "commit"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// OpType is the update-operation type carried by a logical redo record,
// matching the OPQ entry flags of Section 3.1.3 (i: insert, d: delete,
// u: update).
type OpType uint8

const (
	// OpInsert is an index-insert.
	OpInsert OpType = 'i'
	// OpDelete is an index-delete.
	OpDelete OpType = 'd'
	// OpUpdate is an index-update.
	OpUpdate OpType = 'u'
)

// Record is one WAL record. Fields beyond Kind are used selectively per
// kind; unused fields are zero.
type Record struct {
	LSN      uint64
	Kind     Kind
	TxID     uint64
	Relation uint32 // index relation id (Ri)

	// Logical redo payload.
	Op    OpType
	Key   uint64
	Value uint64

	// Flush event payload: [KeyLo, KeyHi] is the flushed key range;
	// FlushID pairs start/end records.
	FlushID      uint64
	KeyLo, KeyHi uint64

	// Flush undo payload: the pre-image of one updated node.
	NodeID   int64
	UndoInfo []byte
}

const recordHeaderSize = 1 + 8 + 8 + 4 + 1 + 8 + 8 + 8 + 8 + 8 + 8 + 4 // kind..nodeid + undolen

// marshal appends the record's wire form (length, crc, body) to dst.
func (r *Record) marshal(dst []byte) []byte {
	body := make([]byte, 0, recordHeaderSize+len(r.UndoInfo))
	body = append(body, byte(r.Kind))
	body = binary.LittleEndian.AppendUint64(body, r.LSN)
	body = binary.LittleEndian.AppendUint64(body, r.TxID)
	body = binary.LittleEndian.AppendUint32(body, r.Relation)
	body = append(body, byte(r.Op))
	body = binary.LittleEndian.AppendUint64(body, r.Key)
	body = binary.LittleEndian.AppendUint64(body, r.Value)
	body = binary.LittleEndian.AppendUint64(body, r.FlushID)
	body = binary.LittleEndian.AppendUint64(body, r.KeyLo)
	body = binary.LittleEndian.AppendUint64(body, r.KeyHi)
	body = binary.LittleEndian.AppendUint64(body, uint64(r.NodeID))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(r.UndoInfo)))
	body = append(body, r.UndoInfo...)

	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	return append(dst, body...)
}

// errTruncated reports the clean end of the log.
var errTruncated = errors.New("wal: truncated record")

// unmarshal decodes one record from b, returning the record and the number
// of bytes consumed. A zero length or short buffer yields errTruncated
// (normal end of log); a CRC mismatch is a hard error.
func unmarshal(b []byte) (Record, int, error) {
	if len(b) < 8 {
		return Record{}, 0, errTruncated
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n < recordHeaderSize {
		return Record{}, 0, errTruncated
	}
	crc := binary.LittleEndian.Uint32(b[4:])
	if len(b) < 8+int(n) {
		return Record{}, 0, errTruncated
	}
	body := b[8 : 8+n]
	if crc32.ChecksumIEEE(body) != crc {
		return Record{}, 0, fmt.Errorf("wal: CRC mismatch")
	}
	var r Record
	r.Kind = Kind(body[0])
	r.LSN = binary.LittleEndian.Uint64(body[1:])
	r.TxID = binary.LittleEndian.Uint64(body[9:])
	r.Relation = binary.LittleEndian.Uint32(body[17:])
	r.Op = OpType(body[21])
	r.Key = binary.LittleEndian.Uint64(body[22:])
	r.Value = binary.LittleEndian.Uint64(body[30:])
	r.FlushID = binary.LittleEndian.Uint64(body[38:])
	r.KeyLo = binary.LittleEndian.Uint64(body[46:])
	r.KeyHi = binary.LittleEndian.Uint64(body[54:])
	r.NodeID = int64(binary.LittleEndian.Uint64(body[62:]))
	ul := binary.LittleEndian.Uint32(body[70:])
	if int(ul) != len(body)-recordHeaderSize {
		return Record{}, 0, fmt.Errorf("wal: bad undo length %d", ul)
	}
	if ul > 0 {
		r.UndoInfo = append([]byte(nil), body[recordHeaderSize:]...)
	}
	return r, 8 + int(n), nil
}

// Log is a write-ahead log on a simulated SSD file. Appends accumulate in
// an in-memory tail; Force makes them durable with sequential writes.
type Log struct {
	f        *ssdio.File
	pageSize int

	nextLSN    uint64
	durableOff int64  // bytes of the file that are durable
	tail       []byte // appended but not yet forced
	forced     uint64 // LSN up to which records are durable (exclusive next)

	// ForceWrites counts device writes issued by Force, for experiments.
	ForceWrites int64
}

// NewLog creates a WAL on file f using the given force-write granularity
// (typically the index page size).
func NewLog(f *ssdio.File, pageSize int) (*Log, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("wal: page size must be positive, got %d", pageSize)
	}
	return &Log{f: f, pageSize: pageSize, nextLSN: 1}, nil
}

// Append adds a record to the in-memory tail and returns its LSN. The
// record is not durable until Force.
func (l *Log) Append(r Record) uint64 {
	r.LSN = l.nextLSN
	l.nextLSN++
	l.tail = r.marshal(l.tail)
	return r.LSN
}

// DurableLSN returns the highest LSN guaranteed durable.
func (l *Log) DurableLSN() uint64 { return l.forced }

// Force writes the tail to the device (sequential, page-rounded) at
// virtual time at and returns the completion time. After Force returns,
// every appended record is durable: the WAL rule both of Section 3.4's
// conditions rely on.
func (l *Log) Force(at vtime.Ticks) (vtime.Ticks, error) {
	if len(l.tail) == 0 {
		return at, nil
	}
	n := (len(l.tail) + l.pageSize - 1) / l.pageSize * l.pageSize
	buf := make([]byte, n)
	copy(buf, l.tail)
	l.f.EnsureSize(l.durableOff + int64(n))
	done, err := l.f.Sync(at, ssdio.Req{Op: flashsim.Write, Off: l.durableOff, Buf: buf})
	if err != nil {
		return at, err
	}
	l.ForceWrites++
	l.durableOff += int64(len(l.tail))
	l.tail = l.tail[:0]
	l.forced = l.nextLSN - 1
	return done, nil
}

// Records decodes every durable record, in append order. Used by recovery
// (the in-memory tail is, by definition, lost in a crash).
func (l *Log) Records() ([]Record, error) {
	buf := make([]byte, l.durableOff)
	if l.durableOff > 0 {
		if err := l.f.ReadAt(buf, 0); err != nil {
			return nil, err
		}
	}
	var out []Record
	for len(buf) > 0 {
		r, n, err := unmarshal(buf)
		if err != nil {
			if errors.Is(err, errTruncated) {
				break
			}
			return nil, err
		}
		out = append(out, r)
		buf = buf[n:]
	}
	return out, nil
}

// Crash discards the volatile tail, simulating the loss of unforced
// records at a system crash.
func (l *Log) Crash() {
	l.tail = l.tail[:0]
	l.nextLSN = l.forced + 1
}
