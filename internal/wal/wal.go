// Package wal implements write-ahead logging for the PIO B-tree's crash
// recovery scheme (Section 3.4 and Table 2 of the paper).
//
// The paper's OPQ keeps committed index records only in memory, so it
// extends ARIES-style logging with three PIO-specific record kinds:
//
//   - logical redo log  <Ti, Ri, op-type, index record>: one per OPQ
//     append; redone after a crash for entries that were never flushed;
//   - flush event log   <Ti, Ri, FlushStart/FlushEnd, key range>: brackets
//     every OPQ flush so recovery can tell completed flushes (whose redo
//     logs must be skipped — logical redo is not idempotent) from
//     incomplete ones (which must be undone);
//   - flush undo log    <Ri, node id, undo info>: one per node updated by a
//     flush, replayed backwards to roll an incomplete flush off the tree.
//
// Records are length-prefixed, CRC-checked, and appended to a simulated
// SSD file; Force writes the in-memory tail with sequential page writes
// and returns the new durable LSN.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/flashsim"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// Kind enumerates the log record types of Table 2 plus the generic
// transaction-control records every WAL needs.
type Kind uint8

const (
	// KindLogicalRedo is a logical redo log for one OPQ entry.
	KindLogicalRedo Kind = iota + 1
	// KindFlushStart opens an OPQ flush (key range recorded).
	KindFlushStart
	// KindFlushEnd closes an OPQ flush (same key range as its start).
	KindFlushEnd
	// KindFlushUndo records physical undo info for one node updated during
	// a flush.
	KindFlushUndo
	// KindCommit marks a transaction committed.
	KindCommit
	// KindCheckpoint marks a checkpoint (OPQ fully flushed).
	KindCheckpoint
	// KindMigrationStart opens an online shard migration: keys in
	// [KeyLo, KeyHi) move from shard Key to shard Value (forest-level
	// record; FlushID carries the migration id).
	KindMigrationStart
	// KindKeyMoved commits one migration chunk: the keys in [KeyLo, KeyHi)
	// are durably copied to the destination and the routing frontier
	// advances to KeyHi. Appended to the source shard's log only after the
	// destination's copies were forced.
	KindKeyMoved
	// KindMigrationEnd closes a migration: Op 'c' commits the routing-table
	// flip, Op 'a' records a rollback.
	KindMigrationEnd
	// KindRoutingSnapshot persists the forest routing table (UndoInfo holds
	// the encoded rule list), so log head truncation never strands the
	// routing state reconstruction.
	KindRoutingSnapshot
	// KindHealProbe is a no-op record a Heal appends before forcing the
	// tail, so re-admitting a quarantined shard always exercises the log
	// device's WRITE path (a rolled-back tail may be empty, and forcing
	// an empty tail issues no I/O — a read-only device would "pass").
	// Every replay scan ignores it.
	KindHealProbe
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLogicalRedo:
		return "logical-redo"
	case KindFlushStart:
		return "flush-start"
	case KindFlushEnd:
		return "flush-end"
	case KindFlushUndo:
		return "flush-undo"
	case KindCommit:
		return "commit"
	case KindCheckpoint:
		return "checkpoint"
	case KindMigrationStart:
		return "migration-start"
	case KindKeyMoved:
		return "key-moved"
	case KindMigrationEnd:
		return "migration-end"
	case KindRoutingSnapshot:
		return "routing-snapshot"
	case KindHealProbe:
		return "heal-probe"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// OpType is the update-operation type carried by a logical redo record,
// matching the OPQ entry flags of Section 3.1.3 (i: insert, d: delete,
// u: update).
type OpType uint8

const (
	// OpInsert is an index-insert.
	OpInsert OpType = 'i'
	// OpDelete is an index-delete.
	OpDelete OpType = 'd'
	// OpUpdate is an index-update.
	OpUpdate OpType = 'u'
)

// Record is one WAL record. Fields beyond Kind are used selectively per
// kind; unused fields are zero.
type Record struct {
	LSN      uint64
	Kind     Kind
	TxID     uint64
	Relation uint32 // index relation id (Ri)

	// Logical redo payload.
	Op    OpType
	Key   uint64
	Value uint64

	// Flush event payload: [KeyLo, KeyHi] is the flushed key range;
	// FlushID pairs start/end records.
	FlushID      uint64
	KeyLo, KeyHi uint64

	// Flush undo payload: the pre-image of one updated node.
	NodeID   int64
	UndoInfo []byte
}

const recordHeaderSize = 1 + 8 + 8 + 4 + 1 + 8 + 8 + 8 + 8 + 8 + 8 + 4 // kind..nodeid + undolen

// marshal appends the record's wire form (length, crc, body) to dst.
func (r *Record) marshal(dst []byte) []byte {
	body := make([]byte, 0, recordHeaderSize+len(r.UndoInfo))
	body = append(body, byte(r.Kind))
	body = binary.LittleEndian.AppendUint64(body, r.LSN)
	body = binary.LittleEndian.AppendUint64(body, r.TxID)
	body = binary.LittleEndian.AppendUint32(body, r.Relation)
	body = append(body, byte(r.Op))
	body = binary.LittleEndian.AppendUint64(body, r.Key)
	body = binary.LittleEndian.AppendUint64(body, r.Value)
	body = binary.LittleEndian.AppendUint64(body, r.FlushID)
	body = binary.LittleEndian.AppendUint64(body, r.KeyLo)
	body = binary.LittleEndian.AppendUint64(body, r.KeyHi)
	body = binary.LittleEndian.AppendUint64(body, uint64(r.NodeID))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(r.UndoInfo)))
	body = append(body, r.UndoInfo...)

	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	return append(dst, body...)
}

// errTruncated reports the clean end of the log.
var errTruncated = errors.New("wal: truncated record")

// unmarshal decodes one record from b, returning the record and the number
// of bytes consumed. A zero length or short buffer yields errTruncated
// (normal end of log); a CRC mismatch is a hard error.
func unmarshal(b []byte) (Record, int, error) {
	if len(b) < 8 {
		return Record{}, 0, errTruncated
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n < recordHeaderSize {
		return Record{}, 0, errTruncated
	}
	crc := binary.LittleEndian.Uint32(b[4:])
	if len(b) < 8+int(n) {
		return Record{}, 0, errTruncated
	}
	body := b[8 : 8+n]
	if crc32.ChecksumIEEE(body) != crc {
		return Record{}, 0, fmt.Errorf("wal: CRC mismatch")
	}
	var r Record
	r.Kind = Kind(body[0])
	r.LSN = binary.LittleEndian.Uint64(body[1:])
	r.TxID = binary.LittleEndian.Uint64(body[9:])
	r.Relation = binary.LittleEndian.Uint32(body[17:])
	r.Op = OpType(body[21])
	r.Key = binary.LittleEndian.Uint64(body[22:])
	r.Value = binary.LittleEndian.Uint64(body[30:])
	r.FlushID = binary.LittleEndian.Uint64(body[38:])
	r.KeyLo = binary.LittleEndian.Uint64(body[46:])
	r.KeyHi = binary.LittleEndian.Uint64(body[54:])
	r.NodeID = int64(binary.LittleEndian.Uint64(body[62:]))
	ul := binary.LittleEndian.Uint32(body[70:])
	if int(ul) != len(body)-recordHeaderSize {
		return Record{}, 0, fmt.Errorf("wal: bad undo length %d", ul)
	}
	if ul > 0 {
		r.UndoInfo = append([]byte(nil), body[recordHeaderSize:]...)
	}
	return r, 8 + int(n), nil
}

// Log is a write-ahead log on a simulated SSD file. Appends accumulate in
// an in-memory tail; Force makes them durable with sequential writes.
//
// An internal mutex serializes every method — Force and ForceGroup hold
// it across the simulated device write — so a forest's shards may
// multiplex one shared log and appends may race forces (an append lands
// wholly before or wholly after any force). Concurrent ForceGroup calls
// whose log sets overlap must acquire them in a consistent order (the
// forest coordinator always passes logs in ascending shard order).
type Log struct {
	f        *ssdio.File
	pageSize int

	mu      sync.Mutex
	nextLSN uint64 // guarded by mu
	head    int64  // byte offset of the live log head (record boundary); guarded by mu
	durable int64  // durable log-content bytes (end offset); guarded by mu
	partial []byte // durable content of the trailing, partially filled page; guarded by mu
	tail    []byte // appended but not yet forced; guarded by mu
	forced  uint64 // LSN up to which records are durable (exclusive next); guarded by mu

	// truncated accumulates the bytes dropped by TruncateHead (guarded by mu).
	truncated int64

	// ForceWrites counts blocking device submissions issued by Force (one
	// per non-empty call); participations in a ForceGroup gang count on
	// GangForces instead, since the gang is a single shared submission.
	ForceWrites int64
	// GangForces counts ForceGroup gangs this log contributed a write to.
	GangForces int64

	// TraceForces, when set, records every force's device-write extent in
	// ForceTrace (testing: alignment regression checks).
	TraceForces bool
	ForceTrace  []ForceSpan
}

// ForceSpan is the file extent of one force's device write.
type ForceSpan struct{ Off, Len int64 }

// NewLog creates a WAL on file f using the given force-write granularity
// (typically the index page size).
func NewLog(f *ssdio.File, pageSize int) (*Log, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("wal: page size must be positive, got %d", pageSize)
	}
	return &Log{f: f, pageSize: pageSize, nextLSN: 1}, nil
}

// Append adds a record to the in-memory tail and returns its LSN. The
// record is not durable until Force.
func (l *Log) Append(r Record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.nextLSN
	l.nextLSN++
	l.tail = r.marshal(l.tail)
	return r.LSN
}

// DurableLSN returns the highest LSN guaranteed durable.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forced
}

// ForceStats returns the submission counters under the log's mutex, for
// readers that may race in-flight forces (single-threaded code may read
// the ForceWrites/GangForces fields directly).
func (l *Log) ForceStats() (forceWrites, gangForces int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ForceWrites, l.GangForces
}

// pendingReq builds the page-aligned device write that would make the
// tail durable: it starts at the last page boundary at or below the
// durable length (carrying the already-durable bytes of a partially
// filled last page) and is rounded up to whole pages, so successive
// forces never issue unaligned or overlapping-with-padding writes and the
// cost accounting matches the paper's sequential page-write model.
// Returns ok=false when there is nothing to force. The caller holds l.mu
// (piolint infers and enforces this contract at every call site).
func (l *Log) pendingReq() (ssdio.Req, bool) {
	if len(l.tail) == 0 {
		return ssdio.Req{}, false
	}
	off := l.durable - int64(len(l.partial))
	content := len(l.partial) + len(l.tail)
	n := (content + l.pageSize - 1) / l.pageSize * l.pageSize
	buf := make([]byte, n)
	copy(buf, l.partial)
	copy(buf[len(l.partial):], l.tail)
	l.f.EnsureSize(off + int64(n))
	return ssdio.Req{Op: flashsim.Write, Off: off, Buf: buf}, true
}

// commitForce advances the durable state after the device accepted the
// write previously built by pendingReq; the caller holds l.mu (inferred
// contract).
func (l *Log) commitForce(req ssdio.Req) {
	content := len(l.partial) + len(l.tail)
	l.durable += int64(len(l.tail))
	if rem := int(l.durable % int64(l.pageSize)); rem > 0 {
		l.partial = append(l.partial[:0], req.Buf[content-rem:content]...)
	} else {
		l.partial = l.partial[:0]
	}
	l.tail = l.tail[:0]
	l.forced = l.nextLSN - 1
	if l.TraceForces {
		l.ForceTrace = append(l.ForceTrace, ForceSpan{Off: req.Off, Len: int64(len(req.Buf))})
	}
}

// Force writes the tail to the device (sequential, page-aligned) at
// virtual time at and returns the completion time. After Force returns,
// every appended record is durable: the WAL rule both of Section 3.4's
// conditions rely on. The log's mutex is held across the simulated
// device write, so records appended by racing shards land either wholly
// before or wholly after this force.
func (l *Log) Force(at vtime.Ticks) (vtime.Ticks, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	req, ok := l.pendingReq()
	if !ok {
		return at, nil
	}
	done, err := l.f.Sync(at, req)
	if err != nil {
		return at, err
	}
	l.ForceWrites++
	l.commitForce(req)
	return done, nil
}

// Unforced reports whether the log's tail holds appended-but-unforced
// bytes (a not-yet-issued or failed force). Group-flush error handling
// uses it to attribute a partial gang failure to exactly the members
// whose records did not land — ForceGroup commits every member whose
// write reached the device, so a surviving unforced tail marks a member
// that failed.
func (l *Log) Unforced() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.tail) > 0
}

// ForceGroup makes the tails of several logs durable in ONE blocking
// device submission, via ssdio.PsyncGang: the group-commit primitive.
// Where N per-shard Force calls cost N serial blocking writes, the gang
// costs one submission whose member writes overlap on the device's
// channels — the paper's eq.-(10) batching applied to the log plane.
// Nil logs, duplicates, and logs with empty tails are skipped; all log
// files must live on one ssdio.Space (one device). The int result is the
// number of logs actually forced: 0 means no device submission was
// issued at all.
//
//lint:lockorder-multi wal.Log.mu gang members are acquired in the caller-supplied ascending shard order
func ForceGroup(at vtime.Ticks, logs []*Log) (vtime.Ticks, int, error) {
	// Hold every member's mutex across the whole gang so racing appends
	// land wholly before or after it (callers already serialize gangs that
	// share logs, so the acquisition order cannot deadlock).
	var members []*Log
	var reqs []ssdio.Req
	seen := make(map[*Log]bool, len(logs))
	unlock := func() {
		for _, l := range members {
			l.mu.Unlock()
		}
	}
	for _, l := range logs {
		if l == nil || seen[l] {
			continue
		}
		seen[l] = true
		l.mu.Lock()
		req, ok := l.pendingReq()
		if !ok {
			l.mu.Unlock()
			continue
		}
		members = append(members, l)
		reqs = append(reqs, req)
	}
	if len(members) == 0 {
		return at, 0, nil
	}
	defer unlock()
	batches := make([]ssdio.GangBatch, len(members))
	for i, l := range members {
		batches[i] = ssdio.GangBatch{F: l.f, Reqs: []ssdio.Req{reqs[i]}}
	}
	done, err := ssdio.PsyncGang(at, batches)
	if err != nil {
		// A partial gang (injected faults) landed some member writes:
		// commit those members' durable state — their bytes ARE on the
		// device — so a retried ForceGroup naturally skips them (their
		// tails are empty) and resubmits only the failed logs.
		var pge *ssdio.PartialGangError
		if errors.As(err, &pge) {
			failed := make(map[int]bool, len(pge.Faults))
			for _, f := range pge.Faults {
				failed[f.Batch] = true
			}
			n := 0
			for i, l := range members {
				if failed[i] {
					continue
				}
				n++
				l.GangForces++
				//lint:ignore guardedby every member's mu was acquired in the collection loop and is released by the deferred unlock
				l.commitForce(reqs[i])
			}
			return done, n, err
		}
		return at, 0, err
	}
	for i, l := range members {
		l.GangForces++
		//lint:ignore guardedby every member's mu was acquired in the collection loop and is released by the deferred unlock
		l.commitForce(reqs[i])
	}
	return done, len(members), nil
}

// TruncateHead drops every durable record with LSN < beforeLSN from the
// log head, stopping early at the first surviving record (log order is
// LSN order). Records() and recovery then scan only the surviving
// suffix. The caller must guarantee the dropped prefix is dead: every
// shard recovering from this log has a durable checkpoint at or past
// beforeLSN, and no migration protocol still needs its control records
// (the forest checkpoint enforces both). Returns the bytes reclaimed.
//
// The truncation is a head-pointer move, not a device rewrite: the
// simulated file keeps its contents, matching a real implementation that
// recycles whole head extents lazily.
func (l *Log) TruncateHead(beforeLSN uint64) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.durable <= l.head {
		return 0, nil
	}
	buf := make([]byte, l.durable-l.head)
	if err := l.f.ReadAt(buf, l.head); err != nil {
		return 0, err
	}
	var cut int64
	for len(buf) > 0 {
		r, n, err := unmarshal(buf)
		if err != nil || r.LSN >= beforeLSN {
			break
		}
		cut += int64(n)
		buf = buf[n:]
	}
	l.head += cut
	l.truncated += cut
	return cut, nil
}

// TruncatedBytes returns the total bytes reclaimed by TruncateHead.
func (l *Log) TruncatedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// LiveBytes returns the durable log bytes between the truncated head and
// the durable end (what recovery would scan).
func (l *Log) LiveBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable - l.head
}

// Records decodes every durable record past the truncated head, in append
// order. Used by recovery (the in-memory tail is, by definition, lost in
// a crash).
//
// A torn tail — a truncated or CRC-corrupt record left by a force that
// was interrupted by the crash — ends the scan at the last intact record
// instead of failing the whole recovery: the WAL rule guarantees nothing
// at or past the tear was ever acknowledged as durable, so the intact
// prefix IS the recoverable log.
func (l *Log) Records() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := make([]byte, l.durable-l.head)
	if len(buf) > 0 {
		if err := l.f.ReadAt(buf, l.head); err != nil {
			return nil, err
		}
	}
	var out []Record
	for len(buf) > 0 {
		r, n, err := unmarshal(buf)
		if err != nil {
			// errTruncated is the clean end of the log; any other decode
			// failure is a torn record, cutting the durable prefix here.
			break
		}
		out = append(out, r)
		buf = buf[n:]
	}
	return out, nil
}

// RecordsTimed decodes the durable records like Records, but charges the
// replay's read I/O on the vtime clock: the live byte range is read as
// one psync call of page-granular requests, the shape a batched recovery
// scan issues on a real device. Recovery and quarantine replay use it so
// recovery phases stop looking free at scale.
func (l *Log) RecordsTimed(at vtime.Ticks) ([]Record, vtime.Ticks, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.durable - l.head
	if n <= 0 {
		return nil, at, nil
	}
	buf := make([]byte, n)
	var reqs []ssdio.Req
	for off := int64(0); off < n; off += int64(l.pageSize) {
		end := off + int64(l.pageSize)
		if end > n {
			end = n
		}
		reqs = append(reqs, ssdio.Req{Op: flashsim.Read, Off: l.head + off, Buf: buf[off:end]})
	}
	at, err := l.f.Psync(at, reqs)
	if err != nil {
		return nil, at, err
	}
	var out []Record
	for len(buf) > 0 {
		r, rn, err := unmarshal(buf)
		if err != nil {
			// Torn tail: the intact prefix is the recoverable log (see
			// Records).
			break
		}
		out = append(out, r)
		buf = buf[rn:]
	}
	return out, at, nil
}

// Crash discards the volatile tail, simulating the loss of unforced
// records at a system crash.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tail = l.tail[:0]
	l.nextLSN = l.forced + 1
}
