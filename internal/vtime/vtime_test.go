package vtime

import "testing"

func TestTicksUnits(t *testing.T) {
	if Microsecond != 1000 || Millisecond != 1000*1000 || Second != 1000*1000*1000 {
		t.Fatalf("unit constants wrong: %d %d %d", Microsecond, Millisecond, Second)
	}
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis = %v, want 1.5", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds = %v, want 2", got)
	}
	if got := (3 * Microsecond).Micros(); got != 3 {
		t.Errorf("Micros = %v, want 3", got)
	}
}

func TestTicksString(t *testing.T) {
	cases := []struct {
		in   Ticks
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
}

func TestClock(t *testing.T) {
	c := NewClock(10)
	if c.Now() != 10 {
		t.Fatalf("Now = %d, want 10", c.Now())
	}
	c.Advance(5)
	if c.Now() != 15 {
		t.Fatalf("after Advance, Now = %d, want 15", c.Now())
	}
	c.AdvanceTo(12) // earlier: no-op
	if c.Now() != 15 {
		t.Fatalf("AdvanceTo(12) moved clock backwards to %d", c.Now())
	}
	c.AdvanceTo(20)
	if c.Now() != 20 {
		t.Fatalf("AdvanceTo(20) = %d", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	new(Clock).Advance(-1)
}

func TestMutexUncontended(t *testing.T) {
	var m Mutex
	got := m.Acquire(100)
	if got != 100 {
		t.Fatalf("uncontended Acquire = %d, want 100", got)
	}
	m.Release(150)
	if m.Waits != 0 {
		t.Errorf("Waits = %d, want 0", m.Waits)
	}
}

func TestMutexContended(t *testing.T) {
	var m Mutex
	m.Acquire(0)
	m.Release(100)
	got := m.Acquire(40)
	if got != 100 {
		t.Fatalf("contended Acquire = %d, want 100", got)
	}
	if m.Waits != 1 || m.Contended != 60 {
		t.Errorf("Waits=%d Contended=%d, want 1, 60", m.Waits, m.Contended)
	}
	// Release earlier than freeAt must not move the time line backwards.
	m.Release(100)
	m.Release(50)
	if m.FreeAt() != 100 {
		t.Errorf("FreeAt = %d, want 100", m.FreeAt())
	}
}

func TestSchedulerSmallestClockFirst(t *testing.T) {
	var order []int
	mk := func(id int, start Ticks, step Ticks, n int) *Thread {
		th := &Thread{ID: id}
		th.Clock.AdvanceTo(start)
		remaining := n
		th.Step = func(t *Thread) bool {
			order = append(order, t.ID)
			t.Clock.Advance(step)
			remaining--
			return remaining > 0
		}
		return th
	}
	// Thread 0 at t=0 with 10-tick steps, thread 1 at t=5 with 10-tick steps.
	a := mk(0, 0, 10, 3)
	b := mk(1, 5, 10, 3)
	s := NewScheduler(0, a, b)
	end := s.Run()
	want := []int{0, 1, 0, 1, 0, 1}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != 35 {
		t.Errorf("makespan = %d, want 35", end)
	}
}

func TestSchedulerContextSwitchCost(t *testing.T) {
	mk := func(id int, n int) *Thread {
		th := &Thread{ID: id}
		remaining := n
		th.Step = func(t *Thread) bool {
			t.Clock.Advance(10)
			remaining--
			return remaining > 0
		}
		return th
	}
	a, b := mk(0, 5), mk(1, 5)
	s := NewScheduler(3, a, b)
	s.Run()
	if s.TotalCtxSwitches() == 0 {
		t.Fatal("expected context switches with two interleaved threads")
	}
	if a.Clock.Now() <= 50 && b.Clock.Now() <= 50 {
		t.Errorf("context switch cost not charged: a=%d b=%d", a.Clock.Now(), b.Clock.Now())
	}
}

func TestSchedulerSingleThreadNoSwitches(t *testing.T) {
	n := 10
	th := &Thread{Step: func(t *Thread) bool {
		t.Clock.Advance(1)
		n--
		return n > 0
	}}
	s := NewScheduler(5, th)
	end := s.Run()
	if end != 10 {
		t.Fatalf("makespan = %d, want 10", end)
	}
	if s.TotalCtxSwitches() != 0 {
		t.Fatalf("single thread had %d context switches", s.TotalCtxSwitches())
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() Ticks {
		mk := func(id, n int) *Thread {
			th := &Thread{ID: id}
			remaining := n
			th.Step = func(t *Thread) bool {
				t.Clock.Advance(Ticks(1 + id))
				remaining--
				return remaining > 0
			}
			return th
		}
		s := NewScheduler(2, mk(0, 100), mk(1, 80), mk(2, 60))
		return s.Run()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic makespan: %d vs %d", got, first)
		}
	}
}
