package vtime

import "container/heap"

// Thread is one simulated thread of execution managed by a Scheduler. Its
// Step function performs the thread's next unit of work (typically one
// index operation), advancing the thread's clock by however long the work
// took in virtual time, and reports whether more work remains.
type Thread struct {
	// ID identifies the thread in stats (0-based).
	ID int
	// Clock is the thread's local virtual clock.
	Clock Clock
	// Step runs the next work item. It must advance t.Clock itself and
	// return false when the thread has no more work.
	Step func(t *Thread) bool
	// CtxSwitches counts simulated context switches charged to the thread.
	CtxSwitches int64

	done bool
	idx  int // heap index
}

// Scheduler runs a set of simulated threads deterministically: at every
// step the thread with the smallest local clock runs next. This emulates an
// ideal multi-core (or time-sliced single-core) execution in virtual time
// and makes contention via vtime.Mutex meaningful and reproducible.
type Scheduler struct {
	threads []*Thread
	// CtxSwitchCost is charged to a thread's clock every time the scheduler
	// switches to a different thread than the previously running one,
	// modelling the direct cost of a context switch.
	CtxSwitchCost Ticks

	lastRun *Thread
}

// NewScheduler creates a scheduler over the given threads.
func NewScheduler(ctxSwitchCost Ticks, threads ...*Thread) *Scheduler {
	return &Scheduler{threads: threads, CtxSwitchCost: ctxSwitchCost}
}

// threadHeap orders threads by local clock (ties by ID for determinism).
type threadHeap []*Thread

func (h threadHeap) Len() int { return len(h) }
func (h threadHeap) Less(i, j int) bool {
	if h[i].Clock.Now() != h[j].Clock.Now() {
		return h[i].Clock.Now() < h[j].Clock.Now()
	}
	return h[i].ID < h[j].ID
}
func (h threadHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *threadHeap) Push(x any) {
	t := x.(*Thread)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *threadHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// Run executes all threads to completion and returns the makespan: the
// largest final clock value across threads, i.e. the simulated elapsed time
// of the whole parallel execution (all threads start at their current
// clock values).
func (s *Scheduler) Run() Ticks {
	h := make(threadHeap, 0, len(s.threads))
	for _, t := range s.threads {
		if !t.done {
			heap.Push(&h, t)
		}
	}
	for h.Len() > 0 {
		t := h[0]
		// The dispatcher has committed to t; if it differs from the thread
		// that ran last, the switch cost delays t's work. Charging after
		// selection (rather than re-selecting) guarantees progress.
		if s.lastRun != nil && s.lastRun != t && s.CtxSwitchCost > 0 {
			t.Clock.Advance(s.CtxSwitchCost)
			t.CtxSwitches++
		}
		s.lastRun = t
		if !t.Step(t) {
			t.done = true
			heap.Pop(&h)
			continue
		}
		heap.Fix(&h, 0)
	}
	var end Ticks
	for _, t := range s.threads {
		end = Max(end, t.Clock.Now())
	}
	return end
}

// TotalCtxSwitches sums context switches across all threads.
func (s *Scheduler) TotalCtxSwitches() int64 {
	var n int64
	for _, t := range s.threads {
		n += t.CtxSwitches
	}
	return n
}
