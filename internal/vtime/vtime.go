// Package vtime provides the virtual-time substrate used by the whole
// reproduction: tick arithmetic, per-agent clocks, virtual mutexes, and a
// deterministic smallest-time-first scheduler that emulates multi-threaded
// execution on simulated hardware.
//
// All device latencies, index operation times and experiment results in
// this repository are expressed in Ticks (simulated nanoseconds). Using a
// virtual clock instead of wall-clock time makes every benchmark
// deterministic and lets a single-core machine reproduce the shape of the
// paper's multi-device, multi-thread measurements.
package vtime

import "fmt"

// Ticks is a point in (or span of) virtual time, in simulated nanoseconds.
type Ticks int64

// Common durations.
const (
	Nanosecond  Ticks = 1
	Microsecond Ticks = 1000 * Nanosecond
	Millisecond Ticks = 1000 * Microsecond
	Second      Ticks = 1000 * Millisecond
)

// Micros reports t as floating-point microseconds, the unit used by the
// paper's latency figures.
func (t Ticks) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Ticks) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as floating-point seconds, the unit used by the
// paper's elapsed-time figures.
func (t Ticks) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the tick count with an adaptive unit.
func (t Ticks) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Max returns the later of a and b.
func Max(a, b Ticks) Ticks {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Ticks) Ticks {
	if a < b {
		return a
	}
	return b
}

// Clock is a single agent's (process's or simulated thread's) local view of
// virtual time. The zero Clock starts at time zero and is ready to use.
type Clock struct {
	now Ticks
}

// NewClock returns a clock positioned at start.
func NewClock(start Ticks) *Clock { return &Clock{now: start} }

// Now reports the clock's current time.
func (c *Clock) Now() Ticks { return c.now }

// Advance moves the clock forward by d, which must be non-negative.
func (c *Clock) Advance(d Ticks) Ticks {
	if d < 0 {
		panic("vtime: negative advance")
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock to t if t is later than the current time.
func (c *Clock) AdvanceTo(t Ticks) Ticks {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Mutex is a virtual-time mutex: acquiring it at time t completes at
// max(t, free) + hold, where free is when the previous holder released it.
// It models lock contention between simulated threads without any real
// blocking, which keeps the simulation deterministic.
type Mutex struct {
	freeAt Ticks
	// Waits counts acquisitions that had to wait, Contended the total
	// virtual time spent waiting; both are exported for experiment stats.
	Waits     int64
	Contended Ticks
}

// Acquire reserves the mutex for a holder arriving at time at; it returns
// the time at which the holder owns the lock. The holder must call Release
// with its own release time.
func (m *Mutex) Acquire(at Ticks) Ticks {
	if m.freeAt > at {
		m.Waits++
		m.Contended += m.freeAt - at
		return m.freeAt
	}
	return at
}

// Release marks the mutex free at time at. Out-of-order releases (earlier
// than a later reservation) are ignored so the mutex time line only moves
// forward.
func (m *Mutex) Release(at Ticks) {
	if at > m.freeAt {
		m.freeAt = at
	}
}

// FreeAt reports when the mutex becomes free.
func (m *Mutex) FreeAt() Ticks { return m.freeAt }
