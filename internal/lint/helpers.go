package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// exprKey canonicalizes a selector chain ("s.mu", "f.shards[si].mu") for
// matching lock expressions against guarded accesses. Purely syntactic:
// two textually equal chains are assumed to denote the same object within
// one function, which is the precision a lock-tracking lint needs.
func exprKey(e ast.Expr) string {
	return types.ExprString(e)
}

// funcOf resolves the called function or method of call, or nil.
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleeName returns the bare name of the called function or method,
// resolving syntactically when type information is absent.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isMutexType reports whether t (or its pointee) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isLockableType reports whether t is a concrete mutex or a locker
// interface: sync.Locker, or any interface carrying both Lock and Unlock
// (so code generic over its lock strategy is still tracked).
func isLockableType(t types.Type) bool {
	if isMutexType(t) {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	var hasLock, hasUnlock bool
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Lock":
			hasLock = true
		case "Unlock":
			hasUnlock = true
		}
	}
	return hasLock && hasUnlock
}

// isAtomicType reports whether t (or its pointee) is a sync/atomic
// wrapper type (Pointer[T], Bool, Int64, ...).
func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// namedType returns the named type of t, unwrapping one pointer level.
func namedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isVtimeTicks reports whether t is the vtime.Ticks virtual clock type.
func isVtimeTicks(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Ticks" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/vtime")
}

// terminates reports whether the statement list ends in a control-flow
// exit (return, break, continue, goto, panic), so a branch ending there
// never merges back into the fallthrough path.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// scopedTo builds a package filter matching any of the given import paths
// exactly, or any lint testdata package of the given analyzer (so the
// analyzer's own fixture packages fall inside its scope).
func scopedTo(analyzer string, paths ...string) func(pkgPath string) bool {
	return func(pkgPath string) bool {
		for _, p := range paths {
			if pkgPath == p {
				return true
			}
		}
		return strings.Contains(pkgPath, "lint/testdata/src/"+analyzer)
	}
}
