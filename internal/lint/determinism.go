package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism forbids nondeterminism sources in the vtime-simulated
// packages (internal/core, internal/bench, internal/flashsim,
// internal/vtime), whose BENCH_*.json trajectories must be bit-for-bit
// reproducible for the CI bench-trend gate to mean anything:
//
//   - wall-clock reads (time.Now/Since/Until): all timing must come from
//     the virtual clock;
//   - the global math/rand generator (rand.Intn, rand.Float64, ...):
//     its state is shared process-wide, so any concurrent draw reorders
//     every later draw. Experiments must thread a seeded *rand.Rand
//     (rand.New/NewSource/NewZipf are the allowed constructors);
//   - map-iteration-order dependence: appending to an outer slice inside
//     a `for ... range m` over a map (unless the slice is sorted
//     afterwards in the same function), and calls carrying vtime.Ticks
//     inside such a loop (each iteration would advance the virtual
//     timeline in random order).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global math/rand, and map-iteration-order dependence in vtime-simulated packages",
	Run:  runDeterminism,
}

var determinismScope = scopedTo("determinism",
	"repro/internal/core",
	"repro/internal/bench",
	"repro/internal/flashsim",
	"repro/internal/faultio",
	"repro/internal/scenario",
	"repro/internal/vtime",
)

// allowedRandConstructors build isolated generators and are fine.
var allowedRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

var forbiddenTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(pass *Pass) error {
	if !determinismScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondeterministicCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkNondeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := funcOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil { // methods on *rand.Rand etc. are fine
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a vtime-simulated package; all timing must come from the virtual clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand %s draws from process-shared state; thread a seeded *rand.Rand from the experiment config instead", fn.Name())
		}
	}
}

// checkMapRanges flags map-iteration-order-dependent writes in fn.
func checkMapRanges(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fn, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if !isAppendCall(n.Rhs[i]) {
					continue
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil || obj.Pos() >= rng.Pos() {
					continue // slice local to the loop
				}
				if sortedAfter(pass, fn, rng, obj) {
					continue
				}
				pass.Reportf(n.Pos(),
					"append to %s inside map iteration is order-dependent; sort %s afterwards or iterate a sorted key slice", id.Name, id.Name)
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				tv, ok := pass.TypesInfo.Types[arg]
				if ok && isVtimeTicks(tv.Type) {
					pass.Reportf(n.Pos(),
						"virtual-time call inside map iteration advances the vtime timeline in nondeterministic order; iterate a sorted key slice")
					break
				}
			}
		}
		return true
	})
}

func isAppendCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// sortedAfter reports whether obj is passed to a sorting call after the
// range loop, anywhere later in the function: sort.*/slices.Sort* with
// the slice as an argument, or any function whose name contains "Sort"
// (kv.SortRecords and friends).
func sortedAfter(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	if fn := funcOf(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if path == "sort" || path == "slices" {
			return true
		}
	}
	return strings.Contains(calleeName(call), "Sort")
}
