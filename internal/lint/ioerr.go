package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// IOErr enforces the I/O-plane error contract: every error produced by an
// ssdio, wal, or pagefile entry point must flow to a return, a panic, or
// an explicit sink such as Forest.Crash — never be silently dropped. The
// eq.-(10)-tuned gang force is only a commit point if every Psync error
// reaches the caller.
//
// Source functions are found interprocedurally: any function in the I/O
// packages with an error result is a base source (as is anything marked
// `//lint:iosource`), and any function whose results include an error and
// which calls a source is itself a source — so a helper wrapping
// wal.Log.Force in fmt.Errorf("%w") or errors.Join is tracked two frames
// above the syscall. At every call site of a source the analyzer flags:
//
//   - the call as a bare statement (the whole result set ignored)
//   - an error result assigned to _
//   - go/defer on a source call, whose error no one can observe
//
// Passing the error onward (return, argument, errors.Join, t.Fatal,
// Forest.Crash) is consumption — as is binding it to a fresh variable,
// since the compiler's unused-variable check then forces a read.
// Intentional drops need a `//lint:ignore ioerr <reason>` on the line.
var IOErr = &Analyzer{
	Name: "ioerr",
	Doc:  "check that I/O-plane errors (ssdio, wal, pagefile) are never silently dropped",
	Run:  runIOErr,
}

// ioSourcePkgs are the packages whose error-returning functions form the
// base of the source set.
var ioSourcePkgs = map[string]bool{
	"repro/internal/ssdio":    true,
	"repro/internal/wal":      true,
	"repro/internal/pagefile": true,
	"repro/internal/faultio":  true,
}

// ioErrState caches the program-wide source set, keyed by function ID.
type ioErrState struct {
	source map[string]bool
}

// ioSources computes (once) the transitive I/O-error source set.
func (prog *Program) ioSources() *ioErrState {
	if prog.ioState != nil {
		return prog.ioState
	}
	st := &ioErrState{source: make(map[string]bool)}
	prog.ioState = st
	ids := prog.sortedFuncIDs()
	for _, id := range ids {
		node := prog.Funcs[id]
		if len(errorResultIndexes(node.Obj)) == 0 {
			continue
		}
		if ioSourcePkgs[node.Pkg.Path] || isIOSourceDirective(node.Decl.Doc) {
			st.source[id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			if st.source[id] {
				continue
			}
			node := prog.Funcs[id]
			if len(errorResultIndexes(node.Obj)) == 0 {
				continue
			}
			for _, c := range node.Calls {
				if st.source[c.CalleeID] {
					st.source[id] = true
					changed = true
					break
				}
			}
		}
	}
	return st
}

// errorResultIndexes returns the positions of fn's results typed error.
func errorResultIndexes(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			idx = append(idx, i)
		}
	}
	return idx
}

func runIOErr(pass *Pass) error {
	st := pass.Prog.ioSources()
	if len(st.source) == 0 {
		return nil
	}
	c := &ioErrChecker{pass: pass, st: st}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, c.check)
		}
	}
	return nil
}

type ioErrChecker struct {
	pass *Pass
	st   *ioErrState
}

// sourceCall resolves call to a source function, or nil.
func (c *ioErrChecker) sourceCall(e ast.Expr) *types.Func {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := funcOf(c.pass.TypesInfo, call)
	if fn == nil || !c.st.source[funcID(fn)] {
		return nil
	}
	return fn
}

func (c *ioErrChecker) check(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if fn := c.sourceCall(n.X); fn != nil {
			c.pass.Reportf(n.Pos(),
				"error result of %s ignored; I/O-plane errors must reach a return, panic, or crash sink",
				ioCallName(fn))
		}
	case *ast.GoStmt:
		if fn := c.sourceCall(n.Call); fn != nil {
			c.pass.Reportf(n.Pos(),
				"error from %s dropped by go statement; no caller can observe it", ioCallName(fn))
		}
	case *ast.DeferStmt:
		if fn := c.sourceCall(n.Call); fn != nil {
			c.pass.Reportf(n.Pos(),
				"error from %s dropped by defer; wrap it in a closure that consumes the error", ioCallName(fn))
		}
	case *ast.AssignStmt:
		c.checkAssign(n)
	}
	return true
}

func (c *ioErrChecker) checkAssign(as *ast.AssignStmt) {
	// Tuple form: err positions line up with the callee's result list.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		fn := c.sourceCall(as.Rhs[0])
		if fn == nil {
			return
		}
		for _, i := range errorResultIndexes(fn) {
			if i < len(as.Lhs) {
				c.checkErrDest(as.Lhs[i], fn)
			}
		}
		return
	}
	// 1:1 assignments: only single-result error calls can appear.
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		fn := c.sourceCall(rhs)
		if fn == nil {
			continue
		}
		if idx := errorResultIndexes(fn); len(idx) == 1 && idx[0] == 0 &&
			fn.Type().(*types.Signature).Results().Len() == 1 {
			c.checkErrDest(as.Lhs[i], fn)
		}
	}
}

// checkErrDest flags an error result landing in the blank identifier.
// Binding to any real variable is consumption: the compiler's
// unused-variable check then guarantees a syntactic read.
func (c *ioErrChecker) checkErrDest(dest ast.Expr, fn *types.Func) {
	id, ok := ast.Unparen(dest).(*ast.Ident)
	if !ok || id.Name != "_" {
		return
	}
	c.pass.Reportf(id.Pos(),
		"error result of %s discarded with _; propagate it or justify with //lint:ignore ioerr",
		ioCallName(fn))
}

// ioCallName renders fn compactly for diagnostics: Type.Method or
// pkg.Func.
func ioCallName(fn *types.Func) string {
	full := fn.FullName()
	// Strip the package path qualifier for readability:
	// "(*repro/internal/wal.Log).Force" -> "wal.Log.Force".
	full = strings.NewReplacer("(", "", ")", "", "*", "").Replace(full)
	if i := strings.LastIndex(full, "/"); i >= 0 {
		full = full[i+1:]
	}
	return full
}
