package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path string
	Name string
	Dir  string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the patterns with the go tool and type-checks every
// matched (non-dependency) package from source. Imports — including the
// standard library — are satisfied from compiler export data produced by
// `go list -export`, so loading needs no network and no third-party
// packages. Test files are not loaded: the analyzers check the invariants
// of production code.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var targets []*listedPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pp := p
			targets = append(targets, &pp)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter satisfies imports from the export data files `go list
// -export` wrote into the build cache.
type exportImporter struct {
	gc      types.ImporterFrom
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := imp.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (go list -export did not produce it)", path)
		}
		return os.Open(file)
	}
	imp.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return imp
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.gc.ImportFrom(path, dir, mode)
}

// typeCheck parses and type-checks one listed package from source.
func typeCheck(t *listedPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{
		Importer: newExportImporter(fset, exports),
	}
	tpkg, err := cfg.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		Path:      t.ImportPath,
		Name:      t.Name,
		Dir:       t.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
