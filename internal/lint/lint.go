// Package lint is a suite of custom static analyzers that machine-check
// the forest's prose invariants: mutex guards on hot struct fields
// (guardedby), the WAL protocol's force-before-publish discipline
// (walorder), the determinism rules of the vtime-simulated packages
// (determinism), and the immutability of published routing snapshots
// (snapshotmut).
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic — but is self-contained on the standard library: packages
// are parsed from source and type-checked against export data produced
// by `go list -export`, so the suite builds with zero third-party
// dependencies.
//
// Diagnostics can be suppressed with an escape hatch comment on the
// flagged line or the line above it:
//
//	//lint:ignore <analyzer> <reason>
//
// and guardedby accepts a caller-holds-the-lock contract on a function's
// doc comment:
//
//	//lint:holds <field>
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc describes the invariant the analyzer enforces.
	Doc string
	// Run reports the analyzer's findings on one package via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package. Prog is
// the whole-program index shared by every pass of one run; the
// interprocedural analyzers cache their summaries on it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Prog      *Program

	pkgRef *Package
	diags  *[]Diagnostic
}

// pkg returns the loaded package this pass analyzes.
func (p *Pass) pkg() *Package { return p.pkgRef }

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the standard file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the full analyzer suite in the order piolint runs it.
var All = []*Analyzer{GuardedBy, WALOrder, Determinism, SnapshotMut, LockOrder, IOErr}

// RunAnalyzers executes the analyzers over pkg — with prog supplying the
// whole-program context the interprocedural analyzers need — and returns
// their findings, with //lint:ignore-suppressed diagnostics already
// filtered out and the rest sorted by position.
func RunAnalyzers(prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Prog:      prog,
			pkgRef:    pkg,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	ignores := collectIgnores(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if !ignores.suppresses(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}
