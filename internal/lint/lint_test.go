package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expectation parsed from a fixture's `// want` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("`([^`]+)`")

// testAnalyzer runs one analyzer over its fixture package under
// internal/lint/testdata/src/<name> and diffs the diagnostics against the
// fixture's `// want` annotations, analysistest style: every want must be
// matched by a diagnostic on its line, and every diagnostic must be
// expected.
func testAnalyzer(t *testing.T, a *Analyzer) {
	t.Helper()
	testFixture(t, a, "repro/internal/lint/testdata/src/"+a.Name)
}

// testFixture runs one analyzer over the fixture package at the given
// import path, with the whole-program index built from just that package.
func testFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	pkgs, err := Load(path)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := RunAnalyzers(NewProgram(pkgs), pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, pkg)

	for _, d := range diags {
		if w := matchWant(wants, d.Pos.Filename, d.Pos.Line, d.Message); w != nil {
			w.hit = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.re)
		}
	}
}

func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(c.Text[idx:], -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q (expected backquoted regexp)",
						pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func matchWant(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

func TestGuardedBy(t *testing.T)   { testAnalyzer(t, GuardedBy) }
func TestWALOrder(t *testing.T)    { testAnalyzer(t, WALOrder) }
func TestDeterminism(t *testing.T) { testAnalyzer(t, Determinism) }
func TestSnapshotMut(t *testing.T) { testAnalyzer(t, SnapshotMut) }
func TestLockOrder(t *testing.T)   { testAnalyzer(t, LockOrder) }
func TestIOErr(t *testing.T)       { testAnalyzer(t, IOErr) }

// TestLockOrderCycleInjection is the negative control for the CI gate: a
// fixture whose call graph contains a deliberate lock-order inversion
// (and therefore a cycle) must fail the lint run.
func TestLockOrderCycleInjection(t *testing.T) {
	testFixture(t, LockOrder, "repro/internal/lint/testdata/src/lockordercycle")
}

// TestRepoIsClean is the in-process form of the CI gate: the full
// analyzer suite over the production packages must report nothing.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := Load("repro/...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "lint/testdata/") {
			continue
		}
		diags, err := RunAnalyzers(prog, pkg, All)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestIgnoreRequiresReason pins the escape hatch's contract: a bare
// //lint:ignore without a reason does not suppress anything.
func TestIgnoreRequiresReason(t *testing.T) {
	if name, ok := parseIgnore("//lint:ignore guardedby"); ok {
		t.Fatalf("reasonless ignore parsed as %q, want rejection", name)
	}
	if _, ok := parseIgnore("//lint:ignore guardedby held by construction"); !ok {
		t.Fatalf("well-formed ignore rejected")
	}
}
