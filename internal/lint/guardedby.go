package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy flags reads and writes of struct fields annotated
//
//	// guarded by <mutexField>
//
// that are reachable without the named mutex held. The per-function check
// tracks Lock/RLock/Unlock/RUnlock calls (and deferred unlocks, which
// imply the lock is currently held) over each function body in source
// order, cloning the lock set into branches so a lock taken inside an
// `if` or loop never leaks past it. TryLock/TryRLock acquire only on the
// true branch, and Lock/Unlock through a locker interface (sync.Locker or
// any interface with Lock/Unlock) is tracked like a concrete mutex.
//
// Caller contracts are INFERRED through the program engine: an unexported
// method that touches a guarded receiver field without locking internally
// is taken to require the lock on entry, and every call site is checked
// instead — requirements propagate up call chains of the same receiver.
// Exported functions are API boundaries and must either lock internally
// or declare an explicit `//lint:holds <field>` contract in their doc
// comment. Remaining false positives (locks threaded through aliases the
// analyzer cannot see) are suppressed per line with
// `//lint:ignore guardedby <reason>`.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "check that fields annotated '// guarded by <mu>' are only accessed with the mutex held",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo records one annotated field and its guard's field name.
type guardInfo struct {
	structName string
	guard      string
}

// holdsContract is one function's caller-holds-the-lock contract: the
// guard fields (relative to the receiver identifier) that must be held at
// every call site. Explicit contracts come from //lint:holds directives;
// inferred ones from the program engine's summary pass.
type holdsContract struct {
	recv     string
	fields   []string
	inferred bool
}

func (c *holdsContract) origin() string {
	if c.inferred {
		return "inferred caller contract"
	}
	return "//lint:holds"
}

func (c *holdsContract) has(field string) bool {
	for _, f := range c.fields {
		if f == field {
			return true
		}
	}
	return false
}

// entryHeld is the lock set a function may assume on entry per its
// contract.
func (c *holdsContract) entryHeld() map[string]bool {
	held := make(map[string]bool)
	if c == nil {
		return held
	}
	for _, fld := range c.fields {
		held[holdKey(c.recv, fld)] = true
	}
	return held
}

// guardContracts builds the program-wide contract table: explicit
// //lint:holds directives on any function, plus inferred requirements for
// unexported methods, iterated to a fixpoint so a helper calling a
// lock-requiring helper on the same receiver inherits the requirement.
func (prog *Program) guardContracts() map[string]*holdsContract {
	if prog.contracts != nil {
		return prog.contracts
	}
	contracts := make(map[string]*holdsContract)
	prog.contracts = contracts
	guardsByPkg := make(map[*Package]map[types.Object]guardInfo, len(prog.Pkgs))
	anyGuards := false
	for _, pkg := range prog.Pkgs {
		g := collectGuards(pkg)
		guardsByPkg[pkg] = g
		if len(g) > 0 {
			anyGuards = true
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fields := holdsDirectives(fd.Doc)
				if len(fields) == 0 {
					continue
				}
				if obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					contracts[funcID(obj)] = &holdsContract{recv: recvName(fd), fields: fields}
				}
			}
		}
	}
	if !anyGuards {
		return contracts
	}
	ids := prog.sortedFuncIDs()
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, id := range ids {
			node := prog.Funcs[id]
			fd := node.Decl
			recv := recvName(fd)
			if recv == "" || node.Obj.Exported() {
				continue
			}
			require := make(map[string]bool)
			w := &guardWalker{
				info:      node.Pkg.TypesInfo,
				guards:    guardsByPkg[node.Pkg],
				contracts: contracts,
				recv:      recv,
				require:   require,
			}
			w.stmts(fd.Body.List, contracts[id].entryHeld())
			for fld := range require {
				c := contracts[id]
				if c == nil {
					c = &holdsContract{recv: recv, inferred: true}
					contracts[id] = c
				}
				if !c.has(fld) {
					c.fields = append(c.fields, fld)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return contracts
}

func runGuardedBy(pass *Pass) error {
	contracts := pass.Prog.guardContracts()
	guards := collectGuards(pass.pkg())
	if len(guards) == 0 && len(contracts) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := &guardWalker{
				info:      pass.TypesInfo,
				report:    pass.Reportf,
				guards:    guards,
				contracts: contracts,
			}
			var held map[string]bool
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				held = contracts[funcID(obj)].entryHeld()
			} else {
				held = make(map[string]bool)
			}
			g.stmts(fd.Body.List, held)
		}
	}
	return nil
}

// collectGuards maps annotated field objects to their guard info. The
// annotation is any field doc or line comment containing "guarded by
// <ident>".
func collectGuards(pkg *Package) map[types.Object]guardInfo {
	guards := make(map[types.Object]guardInfo)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := fieldGuard(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guardInfo{structName: ts.Name.Name, guard: guard}
					}
				}
			}
			return true
		})
	}
	return guards
}

func fieldGuard(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// holdKey joins a receiver/base expression and a guard field name into a
// lock-set key; directives already containing a dot name the base
// explicitly.
func holdKey(base, field string) string {
	if strings.Contains(field, ".") || base == "" {
		return field
	}
	return base + "." + field
}

// guardWalker tracks the held-lock set through one function body. With
// report set it emits diagnostics (the per-package check); with require
// set it instead records which receiver guards the function needs on
// entry (the contract-inference pass).
type guardWalker struct {
	info      *types.Info
	report    func(pos token.Pos, format string, args ...any)
	guards    map[types.Object]guardInfo
	contracts map[string]*holdsContract

	// recv and require are set in inference mode only.
	recv    string
	require map[string]bool
}

func cloneSet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersect removes from dst every lock not held in src: locks acquired
// inside a branch do not survive it, unlocks inside a branch do.
func intersect(dst, src map[string]bool) {
	for k := range dst {
		if !src[k] {
			delete(dst, k)
		}
	}
}

func (g *guardWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		g.stmt(s, held)
	}
}

func (g *guardWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		g.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		g.scan(s.Cond, held)
		body := cloneSet(held)
		// TryLock acquires only on the true branch; a negated TryLock
		// that diverts (early return) leaves the lock held on the
		// fallthrough path.
		negKey := ""
		if key, ok := tryLockKey(g.info, s.Cond); ok {
			body[key] = true
		} else if neg, isNeg := notExpr(s.Cond); isNeg {
			if key, ok := tryLockKey(g.info, neg); ok {
				negKey = key
			}
		}
		g.stmts(s.Body.List, body)
		switch {
		case s.Else != nil:
			els := cloneSet(held)
			g.stmt(s.Else, els)
			switch {
			case terminates(s.Body.List):
				intersect(held, els)
			case elseTerminates(s.Else):
				intersect(held, body)
			default:
				intersect(held, body)
				intersect(held, els)
			}
		case terminates(s.Body.List):
			// The branch diverts; the fallthrough path keeps its locks.
			if negKey != "" {
				held[negKey] = true
			}
		default:
			intersect(held, body)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		if s.Cond != nil {
			g.scan(s.Cond, held)
		}
		body := cloneSet(held)
		g.stmts(s.Body.List, body)
		if s.Post != nil {
			g.stmt(s.Post, body)
		}
		intersect(held, body)
	case *ast.RangeStmt:
		g.scan(s.X, held)
		body := cloneSet(held)
		g.stmts(s.Body.List, body)
		intersect(held, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		if s.Tag != nil {
			g.scan(s.Tag, held)
		}
		g.caseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		g.stmt(s.Assign, held)
		g.caseBodies(s.Body, held)
	case *ast.SelectStmt:
		g.caseBodies(s.Body, held)
	case *ast.LabeledStmt:
		g.stmt(s.Stmt, held)
	case *ast.DeferStmt:
		// A deferred unlock implies the lock is held from here to the end
		// of the function (no one defers an unlock of a mutex they do not
		// hold); deferred closures are scanned for the same pattern.
		for _, key := range deferredUnlocks(g.info, s.Call) {
			held[key] = true
		}
		if _, _, isLockOp := lockOp(g.info, s.Call); !isLockOp {
			g.scan(s.Call, held)
		}
	case *ast.ExprStmt:
		g.scan(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			g.scan(e, held)
		}
		for _, e := range s.Lhs {
			g.scan(e, held)
		}
	case *ast.IncDecStmt:
		g.scan(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			g.scan(e, held)
		}
	case *ast.GoStmt:
		// A spawned goroutine runs at an unknown time: scan its body with
		// an empty lock set.
		g.scan(s.Call, make(map[string]bool))
	case *ast.SendStmt:
		g.scan(s.Chan, held)
		g.scan(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						g.scan(v, held)
					}
				}
			}
		}
	}
}

func elseTerminates(s ast.Stmt) bool {
	if b, ok := s.(*ast.BlockStmt); ok {
		return terminates(b.List)
	}
	return false
}

func (g *guardWalker) caseBodies(body *ast.BlockStmt, held map[string]bool) {
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				g.scan(e, held)
			}
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		}
		clause := cloneSet(held)
		g.stmts(list, clause)
		if !terminates(list) {
			intersect(held, clause)
		}
	}
}

// scan walks an expression in evaluation order, updating the lock set at
// Lock/Unlock calls and reporting guarded-field accesses made without
// their mutex.
func (g *guardWalker) scan(e ast.Expr, held map[string]bool) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if key, locked, ok := lockOp(g.info, e); ok {
			if sel, isSel := ast.Unparen(e.Fun).(*ast.SelectorExpr); isSel {
				g.scan(sel.X, held) // the mutex chain may itself contain calls
			}
			if locked {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		for _, a := range e.Args {
			g.scan(a, held)
		}
		g.scan(e.Fun, held)
		g.checkHoldsContract(e, held)
	case *ast.SelectorExpr:
		g.scan(e.X, held)
		g.checkAccess(e, held)
	case *ast.FuncLit:
		// Closures in these packages run inline (deferred cleanups, loop
		// bodies passed to helpers); analyze with the current lock set.
		g.stmts(e.Body.List, cloneSet(held))
	case *ast.BinaryExpr:
		g.scan(e.X, held)
		g.scan(e.Y, held)
	case *ast.UnaryExpr:
		g.scan(e.X, held)
	case *ast.StarExpr:
		g.scan(e.X, held)
	case *ast.ParenExpr:
		g.scan(e.X, held)
	case *ast.IndexExpr:
		g.scan(e.X, held)
		g.scan(e.Index, held)
	case *ast.SliceExpr:
		g.scan(e.X, held)
		g.scan(e.Low, held)
		g.scan(e.High, held)
		g.scan(e.Max, held)
	case *ast.TypeAssertExpr:
		g.scan(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				g.scan(kv.Value, held)
				continue
			}
			g.scan(el, held)
		}
	case *ast.KeyValueExpr:
		g.scan(e.Value, held)
	}
}

// checkAccess reports sel if it reads or writes an annotated field
// without its guard held; in inference mode a receiver-based access
// becomes an entry requirement instead.
func (g *guardWalker) checkAccess(sel *ast.SelectorExpr, held map[string]bool) {
	s, ok := g.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	info, ok := g.guards[s.Obj()]
	if !ok {
		return
	}
	base := exprKey(sel.X)
	need := holdKey(base, info.guard)
	if held[need] {
		return
	}
	if g.require != nil {
		if base == g.recv {
			g.require[info.guard] = true
		}
		return
	}
	g.report(sel.Sel.Pos(),
		"%s.%s accessed without holding %s (field guarded by %q)",
		info.structName, sel.Sel.Name, need, info.guard)
}

// checkHoldsContract reports call sites of contract-carrying functions
// (explicit //lint:holds or inferred) whose required locks are not held;
// in inference mode an uncovered same-receiver requirement propagates to
// the caller's own contract.
func (g *guardWalker) checkHoldsContract(call *ast.CallExpr, held map[string]bool) {
	fn := funcOf(g.info, call)
	if fn == nil {
		return
	}
	c, ok := g.contracts[funcID(fn)]
	if !ok {
		return
	}
	base := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		base = exprKey(sel.X)
	}
	for _, fld := range c.fields {
		need := holdKey(base, fld)
		if held[need] {
			continue
		}
		if g.require != nil {
			if base == g.recv {
				g.require[fld] = true
			}
			continue
		}
		g.report(call.Pos(),
			"call to %s requires %s held (%s %s)", fn.Name(), need, c.origin(), fld)
	}
}

// lockOp recognizes m.Lock()/m.RLock()/m.Unlock()/m.RUnlock() on a
// sync.Mutex, sync.RWMutex, or locker interface and returns the
// canonical mutex key.
func lockOp(info *types.Info, call *ast.CallExpr) (key string, locked, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	var isLock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isLock = true
	case "Unlock", "RUnlock":
		isLock = false
	default:
		return "", false, false
	}
	tv, okType := info.Types[sel.X]
	if !okType || !isLockableType(tv.Type) {
		return "", false, false
	}
	return exprKey(sel.X), isLock, true
}

// tryLockKey recognizes m.TryLock()/m.TryRLock() and returns the mutex
// key (the lock is held only where the call evaluated true).
func tryLockKey(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "TryLock" && sel.Sel.Name != "TryRLock") {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isLockableType(tv.Type) {
		return "", false
	}
	return exprKey(sel.X), true
}

// notExpr unwraps a boolean negation.
func notExpr(e ast.Expr) (ast.Expr, bool) {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.NOT {
		return u.X, true
	}
	return nil, false
}

// deferredUnlocks returns the mutex keys unlocked by a deferred call:
// either a direct m.Unlock() or a closure containing unlock calls.
func deferredUnlocks(info *types.Info, call *ast.CallExpr) []string {
	if key, locked, ok := lockOp(info, call); ok && !locked {
		return []string{key}
	}
	fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var keys []string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if key, locked, ok := lockOp(info, c); ok && !locked {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}
