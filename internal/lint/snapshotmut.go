package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SnapshotMut enforces the copy-on-write discipline of published
// snapshots in internal/core. Routing tables travel lock-free through
// atomic.Pointer, so a snapshot must be immutable the moment it is
// published: mutating it afterwards races with every concurrent reader.
// Types carrying a `//lint:immutable` directive on their declaration are
// checked structurally:
//
//   - a field write through a pointer to an immutable type is flagged,
//     unless the pointer was allocated in the same function and has not
//     yet escaped (composite-literal construction before publish is the
//     legitimate pattern);
//   - a field write into a slice/array element of immutable type is
//     flagged (elements are shared with whoever holds the slice);
//   - writes through a value copy (`next := *rt; next.mig = ...`) are the
//     sanctioned copy-on-write idiom and pass.
//
// Independently of annotations, a variable that flows through an atomic
// publish point — returned by .Load(), or passed to .Store() or
// publish() — is treated as escaped, and later field writes through it
// are flagged.
var SnapshotMut = &Analyzer{
	Name: "snapshotmut",
	Doc:  "flag mutation of published routing snapshots and //lint:immutable values",
	Run:  runSnapshotMut,
}

var snapshotMutScope = scopedTo("snapshotmut", "repro/internal/core")

func runSnapshotMut(pass *Pass) error {
	if !snapshotMutScope(pass.Pkg.Path()) {
		return nil
	}
	immutable := collectImmutable(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &snapWalker{
				pass:        pass,
				immutable:   immutable,
				constructed: make(map[types.Object]bool),
				escaped:     make(map[types.Object]string),
				reported:    make(map[token.Pos]bool),
			}
			w.walk(fd.Body)
		}
	}
	return nil
}

// collectImmutable gathers the named types whose declarations carry a
// //lint:immutable directive.
func collectImmutable(pass *Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declMarked := hasImmutableDirective(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !declMarked && !hasImmutableDirective(ts.Doc) && !hasImmutableDirective(ts.Comment) {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

func hasImmutableDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//lint:immutable") {
			return true
		}
	}
	return false
}

// snapWalker scans one function body in source order, tracking which
// locals are freshly constructed (mutation still legitimate) and which
// have escaped through an atomic publish point.
type snapWalker struct {
	pass        *Pass
	immutable   map[*types.TypeName]bool
	constructed map[types.Object]bool
	escaped     map[types.Object]string
	reported    map[token.Pos]bool
}

func (w *snapWalker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.IncDecStmt:
			w.checkWrite(n.X, n.Pos())
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

func (w *snapWalker) assign(s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			w.trackRHS(lhs, s.Rhs[i])
		}
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			w.checkWrite(sel, s.Pos())
		}
	}
}

// trackRHS records construction (`x := &T{}` / `new(T)`) and atomic-load
// escapes (`rt := p.cur.Load()`).
func (w *snapWalker) trackRHS(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := w.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = w.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.UnaryExpr:
		if rhs.Op == token.AND {
			if _, ok := rhs.X.(*ast.CompositeLit); ok {
				w.constructed[obj] = true
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "new" {
			w.constructed[obj] = true
			return
		}
		if w.isAtomicMethod(rhs, "Load") {
			w.escaped[obj] = "loaded from the published snapshot"
		}
	}
}

// call marks arguments of atomic Store / publish as escaped.
func (w *snapWalker) call(call *ast.CallExpr) {
	escape := ""
	if w.isAtomicMethod(call, "Store") || w.isAtomicMethod(call, "CompareAndSwap") {
		escape = "published via atomic Store"
	} else if calleeName(call) == "publish" {
		escape = "published via publish"
	}
	if escape == "" {
		return
	}
	for _, arg := range call.Args {
		e := ast.Unparen(arg)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
				w.escaped[obj] = escape
				delete(w.constructed, obj)
			}
		}
	}
}

// isAtomicMethod reports whether call invokes the named method on a
// sync/atomic wrapper value.
func (w *snapWalker) isAtomicMethod(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := w.pass.TypesInfo.Types[sel.X]
	return ok && isAtomicType(tv.Type)
}

// checkWrite flags a field write `base.f = ...` (or base.f++) that
// mutates shared immutable state.
func (w *snapWalker) checkWrite(lhs ast.Expr, pos token.Pos) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || w.reported[pos] {
		return
	}
	base := ast.Unparen(sel.X)

	// Flow rule: the root variable of the access chain has escaped
	// through an atomic publish point.
	if root := rootIdent(base); root != nil {
		if obj := identObj(w.pass.TypesInfo, root); obj != nil {
			if reason, ok := w.escaped[obj]; ok {
				w.report(pos, "write to %s mutates a snapshot %s; copy it (next := *%s) and publish the copy instead",
					exprKey(sel), reason, root.Name)
				return
			}
		}
	}

	// Structural rule: writing through a pointer to (or a shared element
	// of) an immutable type.
	tv, ok := w.pass.TypesInfo.Types[base]
	if !ok {
		return
	}
	switch bt := tv.Type.Underlying().(type) {
	case *types.Pointer:
		if !w.isImmutable(bt.Elem()) {
			return
		}
		// Freshly constructed, not yet escaped: still legitimate.
		if id, ok := base.(*ast.Ident); ok {
			if obj := identObj(w.pass.TypesInfo, id); obj != nil && w.constructed[obj] {
				return
			}
		}
		w.report(pos, "write to %s mutates %s through a shared pointer; snapshots are immutable once published — mutate a copy",
			exprKey(sel), typeLabel(bt.Elem()))
	default:
		// Element of a shared slice/array: s[i].f = ...
		if ix, ok := base.(*ast.IndexExpr); ok {
			if itv, ok := w.pass.TypesInfo.Types[ix.X]; ok {
				switch ct := itv.Type.Underlying().(type) {
				case *types.Slice:
					if w.isImmutable(ct.Elem()) {
						w.report(pos, "write to %s mutates an element of a shared %s slice; rebuild the slice instead",
							exprKey(sel), typeLabel(ct.Elem()))
					}
				case *types.Array:
					if w.isImmutable(ct.Elem()) {
						w.report(pos, "write to %s mutates an element of a shared %s array; rebuild it instead",
							exprKey(sel), typeLabel(ct.Elem()))
					}
				}
			}
		}
	}
}

func (w *snapWalker) isImmutable(t types.Type) bool {
	named := namedType(t)
	return named != nil && w.immutable[named.Obj()]
}

func (w *snapWalker) report(pos token.Pos, format string, args ...interface{}) {
	w.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}

func typeLabel(t types.Type) string {
	if named := namedType(t); named != nil {
		return named.Obj().Name()
	}
	return t.String()
}

// rootIdent returns the leftmost identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
