package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// LockOrder derives the static lock-acquisition graph of the whole
// program and checks it against the declared hierarchy:
//
//	//lint:lockorder core.Forest.migMu < core.forestShard.mu < wal.Log.mu
//
// Mutex identity is the lock CLASS — "pkg.Type.field" for struct-field
// mutexes, "pkg.var" for package-level ones — so every forestShard's mu
// is one node in the graph. An edge A -> B is recorded whenever an
// instance of B is acquired while an instance of A is held, either
// directly in one function body or through a call chain: per-function
// summaries (transitively acquired classes, locks still held at exit,
// caller-held locks released) are iterated to a fixpoint, so a shard
// mutex taken inside lockPair is known to be held across the migration
// copy loop two frames above it.
//
// Diagnostics fire for (a) an acquisition contradicting the declared
// partial order, (b) a cross-class acquisition covered by no declaration,
// (c) two instances of one class held together without a
// `//lint:lockorder-multi <class> <reason>` declaration documenting the
// canonical instance order, and (d) any cycle in the observed graph.
// TryLock never blocks, so it creates no inbound ordering edge — only
// the held-set consequences of a successful acquisition.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "check the program's lock-acquisition graph against the declared //lint:lockorder hierarchy",
	Run:  runLockOrder,
}

// lockOrderScope: the concurrency planes where ordering matters, plus the
// analyzer's own fixtures.
var lockOrderScope = scopedTo("lockorder",
	"repro/internal/core",
	"repro/internal/wal",
	"repro/internal/ssdio",
	"repro/internal/pagefile",
	"repro/internal/faultio",
)

// lockOrderState is the cached whole-program result: diagnostics keyed by
// the package that owns their position.
type lockOrderState struct {
	diags []lockDiag
}

type lockDiag struct {
	pkgPath string
	pos     token.Pos
	msg     string
}

// lockSummary is one function's contribution to the acquisition graph.
type lockSummary struct {
	node *FuncNode
	// acquires: lock classes this function acquires directly.
	acquires map[string]bool
	// trans: classes acquired by this function or anything it
	// (synchronously) calls — the fixpoint over acquires.
	trans map[string]bool
	// edges: held-class -> acquired-class pairs observed in this body.
	edges []rawLockEdge
	// calls: resolved call sites (async ones excluded from trans).
	calls []heldCall
	// exitHeld: classes locked here and still held when returning
	// (lockPair); exitUnlocked: caller-held classes released here
	// (unlockPair).
	exitHeld     map[string]bool
	exitUnlocked map[string]bool
}

type rawLockEdge struct {
	from, to string
	pos      token.Pos
}

type heldCall struct {
	calleeID string
	async    bool
}

func runLockOrder(pass *Pass) error {
	st := pass.Prog.lockOrderResults()
	path := pass.pkg().Path
	if !lockOrderScope(path) {
		return nil
	}
	for _, d := range st.diags {
		if d.pkgPath == path {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
	return nil
}

// lockDecls is the merged //lint:lockorder partial order.
type lockDecls struct {
	next     map[string]map[string]bool // direct A < B constraints
	multi    map[string]bool
	declared map[string]bool
}

func collectLockOrderDecls(prog *Program) *lockDecls {
	d := &lockDecls{
		next:     make(map[string]map[string]bool),
		multi:    make(map[string]bool),
		declared: make(map[string]bool),
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if chain := parseLockOrder(c.Text); chain != nil {
						for i := 0; i+1 < len(chain); i++ {
							a, b := chain[i], chain[i+1]
							if d.next[a] == nil {
								d.next[a] = make(map[string]bool)
							}
							d.next[a][b] = true
							d.declared[a], d.declared[b] = true, true
						}
					}
					if class, ok := parseLockOrderMulti(c.Text); ok {
						d.multi[class] = true
						d.declared[class] = true
					}
				}
			}
		}
	}
	return d
}

// transClosure computes reachability over adj.
func transClosure(adj map[string]map[string]bool) map[string]map[string]bool {
	reach := make(map[string]map[string]bool, len(adj))
	var nodes []string
	seen := make(map[string]bool)
	for a, bs := range adj {
		if !seen[a] {
			seen[a] = true
			nodes = append(nodes, a)
		}
		for b := range bs {
			if !seen[b] {
				seen[b] = true
				nodes = append(nodes, b)
			}
		}
	}
	for _, n := range nodes {
		r := make(map[string]bool)
		var dfs func(string)
		dfs = func(x string) {
			for y := range adj[x] {
				if !r[y] {
					r[y] = true
					dfs(y)
				}
			}
		}
		dfs(n)
		reach[n] = r
	}
	return reach
}

// lockOrderResults builds (once) the whole-program acquisition graph and
// its diagnostics. The per-function walk runs several rounds: round N
// consumes round N-1's summaries at call sites, so held-across-call and
// released-by-callee effects propagate up chains until the edge set is
// stable.
func (prog *Program) lockOrderResults() *lockOrderState {
	if prog.lockState != nil {
		return prog.lockState
	}
	st := &lockOrderState{}
	prog.lockState = st

	decl := collectLockOrderDecls(prog)
	ids := prog.sortedFuncIDs()

	var sums map[string]*lockSummary
	prevPrint := ""
	for iter := 0; iter < 6; iter++ {
		sums = walkAllLocks(prog, ids, sums)
		lockTransFixpoint(ids, sums)
		print := lockFingerprint(ids, sums)
		if print == prevPrint {
			break
		}
		prevPrint = print
	}

	// Final edge set, deduped by (from, to) at the first position in
	// deterministic (package, file, offset) order.
	type edgeRec struct {
		from, to string
		pos      token.Pos
		pkg      *Package
	}
	var all []edgeRec
	for _, id := range ids {
		s := sums[id]
		if !lockOrderScope(s.node.Pkg.Path) {
			continue
		}
		for _, e := range s.edges {
			all = append(all, edgeRec{e.from, e.to, e.pos, s.node.Pkg})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a := all[i].pkg.Fset.Position(all[i].pos)
		b := all[j].pkg.Fset.Position(all[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	type edgeKey struct{ from, to string }
	unique := make(map[edgeKey]edgeRec)
	var order []edgeKey
	for _, e := range all {
		k := edgeKey{e.from, e.to}
		if _, ok := unique[k]; !ok {
			unique[k] = e
			order = append(order, k)
		}
	}

	reach := transClosure(decl.next)
	for _, k := range order {
		e := unique[k]
		switch {
		case k.from == k.to:
			if !decl.multi[k.from] {
				st.report(e.pkg, e.pos,
					"two %s instances held at once; declare '//lint:lockorder-multi %s <reason>' if instances are acquired in a canonical order",
					k.from, k.from)
			}
		case reach[k.from][k.to]:
			// Covered by the declared hierarchy.
		case reach[k.to][k.from]:
			st.report(e.pkg, e.pos,
				"lock order inversion: %s acquired while %s is held, but the declared hierarchy says %s < %s",
				k.to, k.from, k.to, k.from)
		default:
			st.report(e.pkg, e.pos,
				"lock acquisition %s -> %s is not covered by any //lint:lockorder declaration",
				k.from, k.to)
		}
	}

	// Cycle detection over the observed graph (self-edges excluded; they
	// are the multi check above).
	adj := make(map[string]map[string]bool)
	for _, k := range order {
		if k.from == k.to {
			continue
		}
		if adj[k.from] == nil {
			adj[k.from] = make(map[string]bool)
		}
		adj[k.from][k.to] = true
	}
	obsReach := transClosure(adj)
	var nodes []string
	for n := range obsReach {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	inCycle := make(map[string]bool)
	for _, n := range nodes {
		if inCycle[n] || !obsReach[n][n] {
			continue
		}
		comp := []string{n}
		inCycle[n] = true
		for _, m := range nodes {
			if m != n && obsReach[n][m] && obsReach[m][n] {
				comp = append(comp, m)
				inCycle[m] = true
			}
		}
		sort.Strings(comp)
		// Anchor the report at the first recorded edge inside the cycle.
		for _, k := range order {
			if k.from == k.to || !contains(comp, k.from) || !contains(comp, k.to) {
				continue
			}
			e := unique[k]
			st.report(e.pkg, e.pos, "lock-order cycle among {%s}", strings.Join(comp, ", "))
			break
		}
	}
	return st
}

func (st *lockOrderState) report(pkg *Package, pos token.Pos, format string, args ...any) {
	st.diags = append(st.diags, lockDiag{
		pkgPath: pkg.Path,
		pos:     pos,
		msg:     fmt.Sprintf(format, args...),
	})
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func walkAllLocks(prog *Program, ids []string, prev map[string]*lockSummary) map[string]*lockSummary {
	sums := make(map[string]*lockSummary, len(ids))
	for _, id := range ids {
		node := prog.Funcs[id]
		w := &lockWalker{
			pkg:  node.Pkg,
			prev: prev,
			sum: &lockSummary{
				node:         node,
				acquires:     make(map[string]bool),
				exitHeld:     make(map[string]bool),
				exitUnlocked: make(map[string]bool),
			},
			deferred: make(map[string]bool),
		}
		held := make(map[string]string)
		w.stmts(node.Decl.Body.List, held)
		for key, class := range held {
			if class != "" && !w.deferred[key] {
				w.sum.exitHeld[class] = true
			}
		}
		sums[id] = w.sum
	}
	return sums
}

func lockTransFixpoint(ids []string, sums map[string]*lockSummary) {
	for _, id := range ids {
		s := sums[id]
		s.trans = make(map[string]bool, len(s.acquires))
		for c := range s.acquires {
			s.trans[c] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			s := sums[id]
			for _, c := range s.calls {
				if c.async {
					continue
				}
				cs := sums[c.calleeID]
				if cs == nil {
					continue
				}
				for cls := range cs.trans {
					if !s.trans[cls] {
						s.trans[cls] = true
						changed = true
					}
				}
			}
		}
	}
}

// lockFingerprint summarizes the mutable parts of the summaries so the
// outer walk loop can detect convergence.
func lockFingerprint(ids []string, sums map[string]*lockSummary) string {
	var b strings.Builder
	for _, id := range ids {
		s := sums[id]
		b.WriteString(id)
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(s.edges)))
		b.WriteByte('|')
		b.WriteString(strings.Join(sortedKeys(s.trans), ","))
		b.WriteByte('|')
		b.WriteString(strings.Join(sortedKeys(s.exitHeld), ","))
		b.WriteByte('|')
		b.WriteString(strings.Join(sortedKeys(s.exitUnlocked), ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mutexCallOperand recognizes a mutex method call and returns its operand
// and kind: "lock" (blocking acquire), "unlock", or "try" (non-blocking
// acquire — creates no ordering edge).
func mutexCallOperand(pkg *Package, call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return nil, ""
	}
	var kind string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	case "TryLock", "TryRLock":
		kind = "try"
	default:
		return nil, ""
	}
	tv, ok := pkg.TypesInfo.Types[sel.X]
	if !ok || !isLockableType(tv.Type) {
		return nil, ""
	}
	return sel.X, kind
}

// lockWalker tracks held lock instances (key -> class) through one
// function body in source order, branch-cloned like guardWalker.
type lockWalker struct {
	pkg        *Package
	sum        *lockSummary
	prev       map[string]*lockSummary
	deferred   map[string]bool
	asyncDepth int
}

func cloneLockSet(s map[string]string) map[string]string {
	c := make(map[string]string, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func intersectLockSet(dst, src map[string]string) {
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
}

func heldClasses(held map[string]string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range held {
		if c != "" && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// acquire records a blocking acquisition: edges from every held class to
// the new class, then the instance joins the held set.
func (w *lockWalker) acquire(key, class string, pos token.Pos, held map[string]string) {
	if class != "" {
		for _, from := range heldClasses(held) {
			w.sum.edges = append(w.sum.edges, rawLockEdge{from: from, to: class, pos: pos})
		}
		w.sum.acquires[class] = true
	}
	held[key] = class
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[string]string) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		body := cloneLockSet(held)
		negKey, negClass := "", ""
		if op, ok := tryLockOperand(w.pkg, s.Cond); ok {
			body[exprKey(op)] = lockClass(w.pkg, op)
			if c := lockClass(w.pkg, op); c != "" {
				w.sum.acquires[c] = true
			}
		} else if neg, isNeg := notExpr(s.Cond); isNeg {
			if op, ok := tryLockOperand(w.pkg, neg); ok {
				negKey, negClass = exprKey(op), lockClass(w.pkg, op)
			}
		}
		w.stmts(s.Body.List, body)
		switch {
		case s.Else != nil:
			els := cloneLockSet(held)
			w.stmt(s.Else, els)
			switch {
			case terminates(s.Body.List):
				intersectLockSet(held, els)
			case elseTerminates(s.Else):
				intersectLockSet(held, body)
			default:
				intersectLockSet(held, body)
				intersectLockSet(held, els)
			}
		case terminates(s.Body.List):
			if negKey != "" {
				held[negKey] = negClass
				if negClass != "" {
					w.sum.acquires[negClass] = true
				}
			}
		default:
			intersectLockSet(held, body)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scan(s.Cond, held)
		}
		body := cloneLockSet(held)
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		intersectLockSet(held, body)
	case *ast.RangeStmt:
		w.scan(s.X, held)
		body := cloneLockSet(held)
		w.stmts(s.Body.List, body)
		intersectLockSet(held, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scan(s.Tag, held)
		}
		w.caseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		w.caseBodies(s.Body, held)
	case *ast.SelectStmt:
		w.caseBodies(s.Body, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeferStmt:
		ops := deferredUnlockOperands(w.pkg, s.Call)
		for _, op := range ops {
			key := exprKey(op)
			w.deferred[key] = true
			if _, ok := held[key]; !ok {
				held[key] = lockClass(w.pkg, op)
			}
		}
		if len(ops) == 0 {
			w.scan(s.Call, held)
		}
	case *ast.ExprStmt:
		w.scan(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, held)
		}
		for _, e := range s.Lhs {
			w.scan(e, held)
		}
	case *ast.IncDecStmt:
		w.scan(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e, held)
		}
	case *ast.GoStmt:
		w.asyncDepth++
		w.scan(s.Call, make(map[string]string))
		w.asyncDepth--
	case *ast.SendStmt:
		w.scan(s.Chan, held)
		w.scan(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scan(v, held)
					}
				}
			}
		}
	}
}

func (w *lockWalker) caseBodies(body *ast.BlockStmt, held map[string]string) {
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scan(e, held)
			}
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		}
		clause := cloneLockSet(held)
		w.stmts(list, clause)
		if !terminates(list) {
			intersectLockSet(held, clause)
		}
	}
}

func (w *lockWalker) scan(e ast.Expr, held map[string]string) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if op, kind := mutexCallOperand(w.pkg, e); op != nil {
			w.scan(op, held)
			key := exprKey(op)
			switch kind {
			case "lock":
				w.acquire(key, lockClass(w.pkg, op), e.Pos(), held)
			case "unlock":
				if _, ok := held[key]; !ok {
					if c := lockClass(w.pkg, op); c != "" {
						w.sum.exitUnlocked[c] = true
					}
				}
				delete(held, key)
			case "try":
				// Handled at the enclosing if; a bare TryLock whose
				// result is unused acquires nothing we can track.
			}
			return
		}
		for _, a := range e.Args {
			w.scan(a, held)
		}
		w.scan(e.Fun, held)
		w.applyCall(e, held)
	case *ast.FuncLit:
		w.stmts(e.Body.List, cloneLockSet(held))
	case *ast.SelectorExpr:
		w.scan(e.X, held)
	case *ast.BinaryExpr:
		w.scan(e.X, held)
		w.scan(e.Y, held)
	case *ast.UnaryExpr:
		w.scan(e.X, held)
	case *ast.StarExpr:
		w.scan(e.X, held)
	case *ast.ParenExpr:
		w.scan(e.X, held)
	case *ast.IndexExpr:
		w.scan(e.X, held)
		w.scan(e.Index, held)
	case *ast.SliceExpr:
		w.scan(e.X, held)
		w.scan(e.Low, held)
		w.scan(e.High, held)
		w.scan(e.Max, held)
	case *ast.TypeAssertExpr:
		w.scan(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.scan(kv.Value, held)
				continue
			}
			w.scan(el, held)
		}
	case *ast.KeyValueExpr:
		w.scan(e.Value, held)
	}
}

// applyCall records the call for the transitive fixpoint and, when a
// summary from the previous round is available, materializes its effects:
// edges from every held class to everything the callee acquires, plus the
// callee's net lock/unlock effect on the caller's held set.
func (w *lockWalker) applyCall(call *ast.CallExpr, held map[string]string) {
	fn := funcOf(w.pkg.TypesInfo, call)
	if fn == nil {
		return
	}
	id := funcID(fn)
	async := w.asyncDepth > 0
	w.sum.calls = append(w.sum.calls, heldCall{calleeID: id, async: async})
	if async || w.prev == nil {
		return
	}
	ps := w.prev[id]
	if ps == nil {
		return
	}
	for _, from := range heldClasses(held) {
		for _, to := range sortedKeys(ps.trans) {
			w.sum.edges = append(w.sum.edges, rawLockEdge{from: from, to: to, pos: call.Pos()})
		}
	}
	for _, c := range sortedKeys(ps.exitUnlocked) {
		for k, v := range held {
			if v == c {
				delete(held, k)
			}
		}
	}
	for _, c := range sortedKeys(ps.exitHeld) {
		held["·"+c+"@"+strconv.Itoa(int(call.Pos()))] = c
		w.sum.acquires[c] = true
	}
}

// tryLockOperand recognizes m.TryLock()/m.TryRLock() used as a condition.
func tryLockOperand(pkg *Package, e ast.Expr) (ast.Expr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	op, kind := mutexCallOperand(pkg, call)
	if kind != "try" {
		return nil, false
	}
	return op, true
}

// deferredUnlockOperands returns the mutex operands unlocked by a
// deferred call — direct m.Unlock() or unlocks inside a deferred closure.
func deferredUnlockOperands(pkg *Package, call *ast.CallExpr) []ast.Expr {
	if op, kind := mutexCallOperand(pkg, call); kind == "unlock" {
		return []ast.Expr{op}
	}
	fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var ops []ast.Expr
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if op, kind := mutexCallOperand(pkg, c); kind == "unlock" {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}
