package lint

import (
	"go/ast"
	"strings"
)

// ignoreSet maps file -> line -> analyzer names suppressed at that line.
type ignoreSet map[string]map[int]map[string]bool

// collectIgnores gathers every //lint:ignore directive of the package. A
// directive suppresses matching diagnostics on its own line and on the
// line directly below it (the staticcheck convention: the directive sits
// right above, or at the end of, the offending line).
func collectIgnores(pkg *Package) ignoreSet {
	set := make(ignoreSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = make(map[string]bool)
					}
					lines[ln][name] = true
				}
			}
		}
	}
	return set
}

// parseIgnore recognizes "//lint:ignore <analyzer> <reason>"; the reason
// is mandatory, so every suppression documents why the invariant holds
// anyway.
func parseIgnore(text string) (analyzer string, ok bool) {
	rest, found := strings.CutPrefix(text, "//lint:ignore ")
	if !found {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // analyzer + at least one reason word
		return "", false
	}
	return fields[0], true
}

func (s ignoreSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][d.Analyzer]
}

// parseLockOrder recognizes a lock-hierarchy declaration
//
//	//lint:lockorder A < B < C
//
// and returns the chain of lock classes in ascending acquisition order.
// Multiple declarations merge into one partial order; a class may appear
// in several chains.
func parseLockOrder(text string) []string {
	rest, found := strings.CutPrefix(text, "//lint:lockorder ")
	if !found || strings.HasPrefix(rest, "-multi") {
		return nil
	}
	var chain []string
	for _, part := range strings.Split(rest, "<") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil
		}
		chain = append(chain, part)
	}
	if len(chain) < 2 {
		return nil
	}
	return chain
}

// parseLockOrderMulti recognizes
//
//	//lint:lockorder-multi <class> <reason>
//
// declaring that several instances of one lock class are legitimately
// held at once (always acquired in a canonical instance order, which the
// reason documents), so a self-edge on that class is not a deadlock.
func parseLockOrderMulti(text string) (class string, ok bool) {
	rest, found := strings.CutPrefix(text, "//lint:lockorder-multi ")
	if !found {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // class + at least one reason word
		return "", false
	}
	return fields[0], true
}

// isIOSourceDirective recognizes "//lint:iosource" on a function's doc
// comment, marking it an I/O-plane error source for the ioerr analyzer —
// used by fixture packages and future entry points outside the canonical
// ssdio/wal/pagefile paths.
func isIOSourceDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//lint:iosource" || strings.HasPrefix(c.Text, "//lint:iosource ") {
			return true
		}
	}
	return false
}

// holdsDirectives extracts the //lint:holds directives of a function's
// doc comment: the guard fields (by name) the caller contractually holds
// on entry, e.g. "//lint:holds mu".
func holdsDirectives(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		rest, found := strings.CutPrefix(c.Text, "//lint:holds ")
		if !found {
			continue
		}
		out = append(out, strings.Fields(rest)...)
	}
	return out
}
