package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WALOrder flags violations of the forest's WAL protocol in
// internal/core. The protocol (documented at the top of
// internal/core/rebalance.go and in the flush coordinator) demands:
//
//   - a KeyMoved record may only be appended after a Force of the
//     destination log (KeyMoved durable implies the chunk's copies are
//     durable), so appending it without a dominating Force/ForceGroup/
//     forceLogs call earlier in the function is flagged;
//   - FlushEnd, MigrationEnd, and KeyMoved records are commit points:
//     after appending one, the function must force the log (directly,
//     via the ganged forceLogs, or as a force method value threaded
//     through a retry helper like retryIO(at, log.Force)) before
//     returning;
//   - a routing snapshot or frontier must not be published (publish /
//     atomic Store) while such a record is appended but not yet forced —
//     readers would act on routing the log cannot yet justify.
//
// The check is a source-order protocol scan per function: force calls
// set/clear state as encountered, so conditionally-forced paths are
// accepted (any-path semantics); it is a linter for ordering mistakes,
// not a proof of durability.
var WALOrder = &Analyzer{
	Name: "walorder",
	Doc:  "check force-before-publish ordering of WAL protocol records in internal/core",
	Run:  runWALOrder,
}

var walorderScope = scopedTo("walorder", "repro/internal/core")

// trackedKinds are the WAL record kinds whose append is a protocol
// commit point.
var trackedKinds = map[string]bool{
	"KindKeyMoved":     true,
	"KindFlushEnd":     true,
	"KindMigrationEnd": true,
}

// forceCallees are the calls that make appended records durable.
var forceCallees = map[string]bool{
	"Force":      true,
	"ForceGroup": true,
	"forceLogs":  true,
}

// publishCallees are the calls that publish routing state to readers.
var publishCallees = map[string]bool{
	"publish": true,
	"Store":   true,
}

func runWALOrder(pass *Pass) error {
	if !walorderScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walWalker{
				pass:     pass,
				recKinds: make(map[types.Object]string),
			}
			w.walk(fd.Body)
			for _, p := range w.pending {
				pass.Reportf(p.pos,
					"%s appended but not forced before the function returns (the WAL protocol requires a Force/ForceGroup after this commit record)",
					p.kind)
			}
		}
	}
	return nil
}

// walWalker scans one function body in source order.
type walWalker struct {
	pass      *Pass
	forceSeen bool
	pending   []walPending
	// recKinds tracks `rec := wal.Record{Kind: ...}` assignments so a
	// later Append(rec) resolves the record's kind.
	recKinds map[types.Object]string
}

type walPending struct {
	pos  token.Pos
	kind string
}

func (w *walWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.recordAssign(n)
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// recordAssign remembers the kind of record composite literals bound to
// identifiers, so Append(identifier) calls resolve their kind.
func (w *walWalker) recordAssign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		kind := compositeKind(s.Rhs[i])
		if kind == "" {
			continue
		}
		obj := w.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = w.pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			w.recKinds[obj] = kind
		}
	}
}

// compositeKind extracts the tracked Kind of a Record composite literal.
func compositeKind(e ast.Expr) string {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return ""
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Kind" {
			continue
		}
		name := ""
		switch v := ast.Unparen(kv.Value).(type) {
		case *ast.Ident:
			name = v.Name
		case *ast.SelectorExpr:
			name = v.Sel.Name
		}
		if trackedKinds[name] {
			return name
		}
	}
	return ""
}

func (w *walWalker) call(call *ast.CallExpr) {
	name := calleeName(call)
	switch {
	case forceCallees[name] || w.wrappedForce(call):
		w.forceSeen = true
		w.pending = w.pending[:0]
	case name == "Append" && len(call.Args) >= 1:
		kind := w.appendKind(call.Args[0])
		if kind == "" {
			return
		}
		if kind == "KindKeyMoved" && !w.forceSeen {
			w.pass.Reportf(call.Pos(),
				"KeyMoved appended without a dominating Force of the destination log (the chunk's copies must be durable first)")
		}
		w.pending = append(w.pending, walPending{pos: call.Pos(), kind: kind})
	case publishCallees[name]:
		for _, p := range w.pending {
			w.pass.Reportf(call.Pos(),
				"routing state published while %s is appended but not forced (force the log before publishing)", p.kind)
		}
	}
}

// wrappedForce recognizes a force threaded through a retry helper —
// retryIO(at, log.Force) passes the force as a method value the helper
// invokes (possibly several times; WAL forces resubmit the whole
// unforced tail, so a retried force is still a force).
func (w *walWalker) wrappedForce(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if sel, ok := ast.Unparen(a).(*ast.SelectorExpr); ok && forceCallees[sel.Sel.Name] {
			return true
		}
	}
	return false
}

func (w *walWalker) appendKind(arg ast.Expr) string {
	if kind := compositeKind(arg); kind != "" {
		return kind
	}
	if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
		if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
			return w.recKinds[obj]
		}
	}
	return ""
}
