package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Program is the whole-program view behind the interprocedural analyzers
// (lockorder, ioerr, and guardedby's inferred caller contracts): every
// loaded package's functions, keyed by a stable cross-package ID, with
// their statically resolved call sites. Each package is type-checked
// against export data, so a *types.Func seen at a call site in one
// package is a different object from the defining package's — the string
// ID (types.Func.FullName, which is deterministic from package path,
// receiver and name) is what links them.
//
// Interprocedural summaries are computed lazily on first use and cached;
// the driver runs single-threaded, so no locking is needed.
type Program struct {
	Pkgs  []*Package
	Funcs map[string]*FuncNode

	lockState *lockOrderState           // lazily built by lockorder
	ioState   *ioErrState               // lazily built by ioerr
	contracts map[string]*holdsContract // lazily built by guardedby (explicit + inferred)
}

// FuncNode is one declared function or method of the program.
type FuncNode struct {
	ID   string
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
	// Calls lists the statically resolvable call sites in body order.
	Calls []CallSite
}

// CallSite is one resolved static call inside a function body.
type CallSite struct {
	Call     *ast.CallExpr
	CalleeID string
	Pos      token.Pos
}

// funcID returns the stable cross-package identifier of fn — its
// FullName, e.g. "(*repro/internal/wal.Log).Force" or
// "repro/internal/core.splitBudget".
func funcID(fn *types.Func) string {
	return fn.FullName()
}

// NewProgram indexes the loaded packages' functions and call sites.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs, Funcs: make(map[string]*FuncNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{ID: funcID(obj), Pkg: pkg, Decl: fd, Obj: obj}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := funcOf(pkg.TypesInfo, call); callee != nil {
						node.Calls = append(node.Calls, CallSite{
							Call: call, CalleeID: funcID(callee), Pos: call.Pos(),
						})
					}
					return true
				})
				prog.Funcs[node.ID] = node
			}
		}
	}
	return prog
}

// sortedFuncIDs returns the program's function IDs in deterministic order,
// so fixpoint iterations and diagnostics never depend on map order.
func (prog *Program) sortedFuncIDs() []string {
	ids := make([]string, 0, len(prog.Funcs))
	for id := range prog.Funcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// recvName returns the receiver identifier of fd ("" for plain functions
// and anonymous receivers).
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// lockClass canonicalizes the mutex operand of a Lock/Unlock call into a
// program-wide lock CLASS. A struct field becomes "pkg.Type.field" (every
// instance of Forest.migMu is one class), a package-level variable becomes
// "pkg.var". Locals and unresolvable chains return "" — they have no
// cross-function ordering identity.
func lockClass(pkg *Package, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named := namedType(sel.Recv()); named != nil {
				obj := named.Obj()
				if obj.Pkg() != nil {
					return obj.Pkg().Name() + "." + obj.Name() + "." + e.Sel.Name
				}
			}
			return ""
		}
		// Qualified package-level var (pkg.mu).
		if obj, ok := pkg.TypesInfo.Uses[e.Sel].(*types.Var); ok && isPkgLevel(obj) {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := pkg.TypesInfo.Uses[e].(*types.Var); ok && isPkgLevel(obj) {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return ""
}

// isPkgLevel reports whether v is a package-level variable.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
