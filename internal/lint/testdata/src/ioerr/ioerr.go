// Package ioerr is the golden-test fixture for the ioerr analyzer: each
// `// want` comment marks a line the analyzer must flag with a message
// matching the backquoted regexp. The //lint:iosource directives stand
// in for the real ssdio/wal/pagefile entry points, which are sources by
// package path.
package ioerr

import (
	"errors"
	"fmt"
)

// readBlock is an I/O-plane entry point for this fixture.
//
//lint:iosource
func readBlock(off int64) ([]byte, error) {
	if off < 0 {
		return nil, errors.New("negative offset")
	}
	return make([]byte, 8), nil
}

// syncAll is an I/O-plane entry point for this fixture.
//
//lint:iosource
func syncAll() error {
	return nil
}

// readChecked wraps readBlock; having an error result and calling a
// source makes it a DERIVED source — drops of its error are flagged too.
func readChecked(off int64) ([]byte, error) {
	b, err := readBlock(off)
	if err != nil {
		return nil, fmt.Errorf("checked read: %w", err)
	}
	return b, nil
}

func ignoredStatement() {
	syncAll() // want `error result of ioerr\.syncAll ignored`
}

func ignoredDerivedWrapper() {
	readChecked(0) // want `error result of ioerr\.readChecked ignored`
}

func blankSingle() {
	_ = syncAll() // want `error result of ioerr\.syncAll discarded with _`
}

func blankInTuple() []byte {
	b, _ := readBlock(0) // want `error result of ioerr\.readBlock discarded with _`
	return b
}

func droppedByGo() {
	go syncAll() // want `error from ioerr\.syncAll dropped by go statement`
}

func droppedByDefer() {
	defer syncAll() // want `error from ioerr\.syncAll dropped by defer`
}

// propagated returns the error: consumption, no diagnostic.
func propagated() error {
	return syncAll()
}

// joined feeds both errors into errors.Join: consumption.
func joined() error {
	err1 := syncAll()
	err2 := syncAll()
	return errors.Join(err1, err2)
}

// panicked consumes the error by panicking with it.
func panicked() {
	if err := syncAll(); err != nil {
		panic(err)
	}
}

// crashSink models Forest.Crash: the error flows into a sink argument.
func crashSink(record func(error)) {
	if err := syncAll(); err != nil {
		record(err)
	}
}

// justified documents an intentional drop with the escape hatch.
func justified() {
	//lint:ignore ioerr fixture for the suppression path; best-effort prefetch
	syncAll()
}
