// Package snapshotmut is the golden-test fixture for the snapshotmut
// analyzer: copy-on-write discipline for atomically published snapshots.
package snapshotmut

import "sync/atomic"

// table mirrors core's routing snapshot.
//
//lint:immutable
type table struct {
	epoch uint64
	rules []rule
	mig   *mig
}

//lint:immutable
type rule struct{ lo, hi uint64 }

//lint:immutable
type mig struct{ frontier uint64 }

type part struct{ cur atomic.Pointer[table] }

// publish bumps the epoch on its private value copy before storing it:
// the sanctioned pattern.
func (p *part) publish(next table) {
	next.epoch = p.cur.Load().epoch + 1
	p.cur.Store(&next)
}

func copyOnWrite(p *part) {
	rt := p.cur.Load()
	next := *rt
	next.epoch = 7
	next.mig = nil
	p.cur.Store(&next)
}

func constructThenStore(p *part) {
	next := &table{}
	next.epoch = 1
	p.cur.Store(next)
}

func mutateLoaded(p *part) {
	rt := p.cur.Load()
	rt.epoch++ // want `mutates a snapshot loaded from the published snapshot`
}

func mutateAfterStore(p *part) {
	next := &table{}
	next.epoch = 1
	p.cur.Store(next)
	next.epoch = 2 // want `mutates a snapshot published via atomic Store`
}

func mutateAfterPublish(p *part) {
	rt := p.cur.Load()
	next := *rt
	next.epoch = 1
	p.publish(next)
	next.mig = nil // want `mutates a snapshot published via publish`
}

func mutateThroughPointer(m *mig) {
	m.frontier = 3 // want `mutates mig through a shared pointer`
}

func mutateSharedElement(t *table) {
	t.rules[0].lo = 9 // want `mutates an element of a shared rule slice`
}

func valueCopyOfElement(t *table) rule {
	r := t.rules[0]
	r.lo = 9
	return r
}

func escapeHatch(m *mig) {
	//lint:ignore snapshotmut fixture for the suppression path
	m.frontier = 4
}
