// Package lockorder is the golden-test fixture for the lockorder
// analyzer: each `// want` comment marks a line the analyzer must flag
// with a message matching the backquoted regexp.
//
// The declared hierarchy for this fixture:
//
//lint:lockorder lockorder.pair.a < lockorder.pair.b
//lint:lockorder lockorder.pair.b < lockorder.pair.c
//lint:lockorder lockorder.inv.x < lockorder.inv.y
//lint:lockorder lockorder.chain.hi < lockorder.chain.lo
//lint:lockorder lockorder.nest.outer < lockorder.nest.inner
//lint:lockorder-multi lockorder.multiSet.m instances are acquired in ascending index order
package lockorder

import "sync"

type pair struct {
	a, b, c sync.Mutex
}

// goodNesting follows the declared chain; a -> c is covered by
// transitivity.
func goodNesting(p *pair) {
	p.a.Lock()
	p.b.Lock()
	p.c.Lock()
	p.c.Unlock()
	p.b.Unlock()
	p.a.Unlock()
}

type inv struct {
	x, y sync.Mutex
}

// inverted acquires against the declared x < y order.
func inverted(i *inv) {
	i.y.Lock()
	i.x.Lock() // want `lock order inversion: lockorder\.inv\.x acquired while lockorder\.inv\.y is held`
	i.x.Unlock()
	i.y.Unlock()
}

type solo struct {
	m, n sync.Mutex
}

// uncovered nests two mutexes no declaration mentions.
func uncovered(s *solo) {
	s.m.Lock()
	s.n.Lock() // want `lock acquisition lockorder\.solo\.m -> lockorder\.solo\.n is not covered by any //lint:lockorder declaration`
	s.n.Unlock()
	s.m.Unlock()
}

type cell struct {
	mu sync.Mutex
}

// twoCells holds two instances of an undeclared-multi class at once.
func twoCells(a, b *cell) {
	a.mu.Lock()
	b.mu.Lock() // want `two lockorder\.cell\.mu instances held at once`
	b.mu.Unlock()
	a.mu.Unlock()
}

type multiSet struct {
	m sync.Mutex
}

// twoMulti is the same shape as twoCells, but the class is declared
// lockorder-multi, so it is clean.
func twoMulti(a, b *multiSet) {
	a.m.Lock()
	b.m.Lock()
	b.m.Unlock()
	a.m.Unlock()
}

type chain struct {
	hi, lo sync.Mutex
}

// lockLo returns with lo held — the lockPair shape. The summary's
// exit-held set carries the lock into the caller.
func lockLo(c *chain) {
	c.lo.Lock()
}

// heldAcrossCall acquires hi while lo is still held from the helper:
// an inversion visible only interprocedurally.
func heldAcrossCall(c *chain) {
	lockLo(c)
	c.hi.Lock() // want `lock order inversion: lockorder\.chain\.hi acquired while lockorder\.chain\.lo is held`
	c.hi.Unlock()
	c.lo.Unlock()
}

type nest struct {
	outer, inner sync.Mutex
}

func acquireInner(n *nest) {
	n.inner.Lock()
	n.inner.Unlock()
}

// outerThenCall creates the outer -> inner edge through a call; it is
// covered by the declaration, so no diagnostic.
func outerThenCall(n *nest) {
	n.outer.Lock()
	acquireInner(n)
	n.outer.Unlock()
}

type opt struct {
	m, t sync.Mutex
}

// tryNeverBlocks: TryLock cannot deadlock, so it creates no ordering
// edge even though m is held — no diagnostic despite no declaration.
func tryNeverBlocks(o *opt) {
	o.m.Lock()
	if o.t.TryLock() {
		o.t.Unlock()
	}
	o.m.Unlock()
}

type spawned struct {
	m, n sync.Mutex
}

// goroutineIsolated: the spawned goroutine holds nothing from its
// spawner, so no m -> n edge exists.
func goroutineIsolated(s *spawned) {
	s.m.Lock()
	go func() {
		s.n.Lock()
		s.n.Unlock()
	}()
	s.m.Unlock()
}
