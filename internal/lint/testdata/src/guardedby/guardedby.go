// Package guardedby is the golden-test fixture for the guardedby
// analyzer: each `// want` comment marks a line the analyzer must flag
// with a message matching the backquoted regexp.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func lockedWrite(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func deferredRead(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func bareWrite(c *counter) {
	c.n++ // want `counter\.n accessed without holding c\.mu`
}

func lockDoesNotLeakFromBranch(c *counter, b bool) {
	if b {
		c.mu.Lock()
		c.n = 1
		c.mu.Unlock()
	}
	c.n = 2 // want `counter\.n accessed without holding c\.mu`
}

func readAfterUnlock(c *counter) int {
	c.mu.Lock()
	c.n = 3
	c.mu.Unlock()
	return c.n // want `counter\.n accessed without holding c\.mu`
}

func earlyReturnKeepsLock(c *counter, b bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b {
		return
	}
	c.n++
}

func goroutineStartsUnlocked(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `counter\.n accessed without holding c\.mu`
	}()
}

// bump requires the caller to hold the lock.
//
//lint:holds mu
func (c *counter) bump() {
	c.n++
}

func contractCallSites(c *counter) {
	c.bump() // want `call to bump requires c\.mu held`
	c.mu.Lock()
	c.bump()
	c.mu.Unlock()
}

func escapeHatch(c *counter) {
	//lint:ignore guardedby fixture for the suppression path
	c.n++
}

func tryLockGuardsTrueBranchOnly(c *counter) {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
	}
	c.n++ // want `counter\.n accessed without holding c\.mu`
}

func negatedTryLockEarlyReturn(c *counter) {
	if !c.mu.TryLock() {
		return
	}
	defer c.mu.Unlock()
	c.n++
}

// lockerBox guards a field with an interface-typed lock (sync.Locker),
// which the analyzer must track like a concrete mutex.
type lockerBox struct {
	l sync.Locker
	v int // guarded by l
}

func lockerInterfaceTracked(b *lockerBox) {
	b.l.Lock()
	b.v++
	b.l.Unlock()
	b.v++ // want `lockerBox\.v accessed without holding b\.l`
}

// bumpQuietly has no //lint:holds directive: the engine must INFER that
// callers hold c.mu from the unguarded field access below.
func (c *counter) bumpQuietly() {
	c.n++
}

// bumpChain inherits bumpQuietly's inferred requirement through the
// same-receiver call chain.
func (c *counter) bumpChain() {
	c.bumpQuietly()
	c.bumpQuietly()
}

func inferredContractCallSites(c *counter) {
	c.bumpChain() // want `call to bumpChain requires c\.mu held \(inferred caller contract mu\)`
	c.mu.Lock()
	c.bumpChain()
	c.mu.Unlock()
}
