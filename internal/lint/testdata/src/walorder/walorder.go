// Package walorder is the golden-test fixture for the walorder
// analyzer. The shapes mirror internal/core's protocol sites: Append of
// a commit-point record kind, Force/ForceGroup durability calls, and
// publish/Store routing publications.
package walorder

type Kind uint8

const (
	KindFlushEnd Kind = iota + 1
	KindKeyMoved
	KindMigrationEnd
	KindCommit
)

type Record struct {
	Kind Kind
	Key  uint64
}

type log struct{ lsn uint64 }

func (l *log) Append(r Record) uint64 { l.lsn++; return l.lsn }
func (l *log) Force(at int64) int64   { return at }

type table struct{ epoch uint64 }

type part struct{ cur *table }

func (p *part) publish(t table) { p.cur = &t }

// goodChunk follows the migration protocol: force the destination, then
// commit KeyMoved, force it, and only then publish the frontier.
func goodChunk(src, dst *log, p *part, at int64) {
	at = dst.Force(at)
	src.Append(Record{Kind: KindKeyMoved})
	at = src.Force(at)
	p.publish(table{epoch: 1})
}

func keyMovedBeforeForce(src *log, at int64) {
	src.Append(Record{Kind: KindKeyMoved}) // want `KeyMoved appended without a dominating Force`
	src.Force(at)
}

func publishWhilePending(l *log, p *part, at int64) {
	rec := Record{Kind: KindFlushEnd}
	l.Append(rec)
	p.publish(table{epoch: 2}) // want `routing state published while KindFlushEnd is appended but not forced`
	l.Force(at)
}

func unforcedAtReturn(l *log, at int64) {
	l.Force(at)
	l.Append(Record{Kind: KindMigrationEnd}) // want `KindMigrationEnd appended but not forced before the function returns`
}

// untrackedKindsAreFree: only commit-point kinds participate in the
// protocol; plain commits need no trailing force here.
func untrackedKindsAreFree(l *log) {
	l.Append(Record{Kind: KindCommit})
}

func boundRecordResolved(l *log, p *part, at int64) {
	end := Record{Kind: KindMigrationEnd}
	l.Append(end)
	l.Force(at)
	p.publish(table{epoch: 3})
}

func retryIO(at int64, op func(int64) int64) int64 { return op(at) }

// retryWrappedForce: a force threaded through a retry helper as a
// method value still counts as a force for the protocol scan.
func retryWrappedForce(src, dst *log, p *part, at int64) {
	at = retryIO(at, dst.Force)
	src.Append(Record{Kind: KindKeyMoved})
	at = retryIO(at, src.Force)
	p.publish(table{epoch: 4})
}

func retryWrappedNonForce(l *log, at int64) {
	retryIO(at, nil)
	l.Append(Record{Kind: KindKeyMoved}) // want `KeyMoved appended without a dominating Force`
	l.Force(at)
}

func escapeHatch(l *log, at int64) {
	//lint:ignore walorder fixture for the suppression path
	l.Append(Record{Kind: KindKeyMoved})
	l.Force(at)
}
