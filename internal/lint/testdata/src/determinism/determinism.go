// Package determinism is the golden-test fixture for the determinism
// analyzer: wall-clock reads, global math/rand draws, and
// map-iteration-order-dependent writes.
package determinism

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/vtime"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func formattingIsFine(t0 time.Time) string {
	return t0.Format(time.RFC3339)
}

func globalDraw() int {
	return rand.Intn(10) // want `global math/rand Intn draws from process-shared state`
}

func seededDrawIsFine(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func collectKeys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `append to out inside map iteration is order-dependent`
	}
	return out
}

func collectKeysSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func loopLocalIsFine(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

type clock struct{ now vtime.Ticks }

func (c *clock) advance(t vtime.Ticks) {
	if t > c.now {
		c.now = t
	}
}

func advanceInMapOrder(m map[int]vtime.Ticks, c *clock) {
	for _, t := range m {
		c.advance(t) // want `virtual-time call inside map iteration`
	}
}

func escapeHatch() int64 {
	//lint:ignore determinism fixture for the suppression path
	return time.Now().UnixNano()
}
