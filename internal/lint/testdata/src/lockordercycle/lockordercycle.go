// Package lockordercycle injects a deliberate lock-order cycle: two
// functions acquire the same two mutex classes in opposite orders. The
// analyzer must report both the inversion against the declared order and
// the resulting cycle — this fixture is the negative control proving the
// CI gate would catch a seeded inversion.
//
//lint:lockorder lockordercycle.res.first < lockordercycle.res.second
package lockordercycle

import "sync"

type res struct {
	first, second sync.Mutex
}

func forward(r *res) {
	r.first.Lock()
	r.second.Lock() // want `lock-order cycle among \{lockordercycle\.res\.first, lockordercycle\.res\.second\}`
	r.second.Unlock()
	r.first.Unlock()
}

func backward(r *res) {
	r.second.Lock()
	r.first.Lock() // want `lock order inversion: lockordercycle\.res\.first acquired while lockordercycle\.res\.second is held`
	r.first.Unlock()
	r.second.Unlock()
}
