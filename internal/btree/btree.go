package btree

import (
	"fmt"

	"repro/internal/bufferpool"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/vtime"
)

// Config parameterizes a B+-tree.
type Config struct {
	// NodeSize is the node size in bytes (power of two, >= 512). It is
	// also the pagefile page size, so a node is always one device request.
	NodeSize int
	// BufferBytes is the buffer pool size in bytes; the pool holds
	// BufferBytes/NodeSize node frames (>= 1).
	BufferBytes int
	// CPUPerNode is the CPU time charged per node visited (binary search,
	// pointer chasing); calibrated so CPU is a minor but non-zero cost.
	CPUPerNode vtime.Ticks
	// FillFactor is the bulk-load node utilization (the paper's U);
	// defaults to 0.7 when zero.
	FillFactor float64
}

func (c *Config) fill() float64 {
	if c.FillFactor <= 0 || c.FillFactor > 1 {
		return 0.7
	}
	return c.FillFactor
}

// Tree is a disk B+-tree over a pagefile. Not safe for concurrent use.
type Tree struct {
	cfg    Config
	pf     *pagefile.PageFile
	pool   *bufferpool.Pool
	root   pagefile.PageID
	height int // number of levels; 1 = root is a leaf
	count  int64
	buf    []byte // scratch for encode
}

// New creates an empty B+-tree (a single empty leaf as root).
func New(pf *pagefile.PageFile, cfg Config) (*Tree, error) {
	if pf.PageSize() != cfg.NodeSize {
		return nil, fmt.Errorf("btree: pagefile page size %d != node size %d", pf.PageSize(), cfg.NodeSize)
	}
	if maxLeafRecs(cfg.NodeSize) < 4 || maxInternalKeys(cfg.NodeSize) < 4 {
		return nil, fmt.Errorf("btree: node size %d too small", cfg.NodeSize)
	}
	frames := cfg.BufferBytes / cfg.NodeSize
	if frames < 1 {
		frames = 1
	}
	pool, err := bufferpool.New(pf, frames, bufferpool.WriteBack)
	if err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, pf: pf, pool: pool, buf: make([]byte, cfg.NodeSize)}
	rootID := pf.Alloc()
	root := &node{id: rootID, leaf: true, next: pagefile.InvalidPage}
	if err := t.writeNodeNoCost(root); err != nil {
		return nil, err
	}
	t.root = rootID
	t.height = 1
	return t, nil
}

// Count returns the number of records in the tree.
func (t *Tree) Count() int64 { return t.count }

// Height returns the number of levels (the paper's H).
func (t *Tree) Height() int { return t.height }

// Pool exposes the buffer pool for stats.
func (t *Tree) Pool() *bufferpool.Pool { return t.pool }

// Fanout returns the maximum number of child pointers per internal node
// (the paper's F).
func (t *Tree) Fanout() int { return maxInternalKeys(t.cfg.NodeSize) + 1 }

// LeafCapacity returns the record capacity of a leaf.
func (t *Tree) LeafCapacity() int { return maxLeafRecs(t.cfg.NodeSize) }

// readNode fetches and decodes a node through the buffer pool, charging
// per-node CPU time.
func (t *Tree) readNode(at vtime.Ticks, id pagefile.PageID) (*node, vtime.Ticks, error) {
	data, at, err := t.pool.Get(at, id)
	if err != nil {
		return nil, at, err
	}
	n, err := decode(id, data)
	if err != nil {
		return nil, at, err
	}
	return n, at + t.cfg.CPUPerNode, nil
}

// writeNode stores a node through the buffer pool (write-back).
func (t *Tree) writeNode(at vtime.Ticks, n *node) (vtime.Ticks, error) {
	if err := n.encode(t.buf); err != nil {
		return at, err
	}
	return t.pool.Put(at, n.id, t.buf)
}

// writeNodeNoCost stores a node bypassing timing, for construction.
func (t *Tree) writeNodeNoCost(n *node) error {
	if err := n.encode(t.buf); err != nil {
		return err
	}
	t.pool.Invalidate(n.id)
	return t.pf.WritePageNoCost(n.id, t.buf)
}

// Search looks up key k, returning its value and whether it was found.
func (t *Tree) Search(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error) {
	n, at, err := t.readNode(at, t.root)
	if err != nil {
		return 0, false, at, err
	}
	for !n.leaf {
		n, at, err = t.readNode(at, n.children[n.childIndex(k)])
		if err != nil {
			return 0, false, at, err
		}
	}
	i := kv.SearchRecords(n.recs, k)
	if i < len(n.recs) && n.recs[i].Key == k {
		return n.recs[i].Value, true, at, nil
	}
	return 0, false, at, nil
}

// RangeSearch returns all records with lo <= key < hi in key order,
// walking the leaf chain one node at a time (the "traditional method" of
// Section 3.1.2).
func (t *Tree) RangeSearch(at vtime.Ticks, lo, hi kv.Key) ([]kv.Record, vtime.Ticks, error) {
	if hi <= lo {
		return nil, at, nil
	}
	n, at, err := t.readNode(at, t.root)
	if err != nil {
		return nil, at, err
	}
	for !n.leaf {
		n, at, err = t.readNode(at, n.children[n.childIndex(lo)])
		if err != nil {
			return nil, at, err
		}
	}
	var out []kv.Record
	for {
		for i := kv.SearchRecords(n.recs, lo); i < len(n.recs); i++ {
			if n.recs[i].Key >= hi {
				return out, at, nil
			}
			out = append(out, n.recs[i])
		}
		if n.next == pagefile.InvalidPage {
			return out, at, nil
		}
		n, at, err = t.readNode(at, n.next)
		if err != nil {
			return nil, at, err
		}
	}
}

// pathEntry remembers one step of a root-to-leaf descent.
type pathEntry struct {
	n   *node
	idx int // child index taken
}

// descend walks from the root to the leaf covering k, recording the path.
func (t *Tree) descend(at vtime.Ticks, k kv.Key) ([]pathEntry, *node, vtime.Ticks, error) {
	var path []pathEntry
	n, at, err := t.readNode(at, t.root)
	if err != nil {
		return nil, nil, at, err
	}
	for !n.leaf {
		i := n.childIndex(k)
		path = append(path, pathEntry{n: n, idx: i})
		n, at, err = t.readNode(at, n.children[i])
		if err != nil {
			return nil, nil, at, err
		}
	}
	return path, n, at, nil
}

// Insert adds (or overwrites) record r.
func (t *Tree) Insert(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	path, leaf, at, err := t.descend(at, r.Key)
	if err != nil {
		return at, err
	}
	i := kv.SearchRecords(leaf.recs, r.Key)
	if i < len(leaf.recs) && leaf.recs[i].Key == r.Key {
		leaf.recs[i] = r
		return t.writeNode(at, leaf)
	}
	leaf.recs = append(leaf.recs, kv.Record{})
	copy(leaf.recs[i+1:], leaf.recs[i:])
	leaf.recs[i] = r
	t.count++
	if len(leaf.recs) <= maxLeafRecs(t.cfg.NodeSize) {
		return t.writeNode(at, leaf)
	}
	return t.splitLeaf(at, path, leaf)
}

// splitLeaf splits an overfull leaf and propagates the fence key upward.
func (t *Tree) splitLeaf(at vtime.Ticks, path []pathEntry, leaf *node) (vtime.Ticks, error) {
	mid := len(leaf.recs) / 2
	right := &node{id: t.pf.Alloc(), leaf: true, next: leaf.next}
	right.recs = append(right.recs, leaf.recs[mid:]...)
	leaf.recs = leaf.recs[:mid]
	leaf.next = right.id
	fence := right.recs[0].Key
	var err error
	if at, err = t.writeNode(at, leaf); err != nil {
		return at, err
	}
	if at, err = t.writeNode(at, right); err != nil {
		return at, err
	}
	return t.insertFence(at, path, fence, right.id)
}

// insertFence inserts a (fence key, right child) pair into the parent,
// splitting internal nodes as needed up to the root.
func (t *Tree) insertFence(at vtime.Ticks, path []pathEntry, fence kv.Key, rightID pagefile.PageID) (vtime.Ticks, error) {
	var err error
	for len(path) > 0 {
		pe := path[len(path)-1]
		path = path[:len(path)-1]
		p, idx := pe.n, pe.idx
		p.keys = append(p.keys, 0)
		copy(p.keys[idx+1:], p.keys[idx:])
		p.keys[idx] = fence
		p.children = append(p.children, pagefile.InvalidPage)
		copy(p.children[idx+2:], p.children[idx+1:])
		p.children[idx+1] = rightID
		if len(p.keys) <= maxInternalKeys(t.cfg.NodeSize) {
			return t.writeNode(at, p)
		}
		// Split the internal node: middle key moves up.
		mid := len(p.keys) / 2
		upKey := p.keys[mid]
		right := &node{id: t.pf.Alloc(), level: p.level}
		right.keys = append(right.keys, p.keys[mid+1:]...)
		right.children = append(right.children, p.children[mid+1:]...)
		p.keys = p.keys[:mid]
		p.children = p.children[:mid+1]
		if at, err = t.writeNode(at, p); err != nil {
			return at, err
		}
		if at, err = t.writeNode(at, right); err != nil {
			return at, err
		}
		fence, rightID = upKey, right.id
	}
	// Root split: grow the tree.
	newRoot := &node{id: t.pf.Alloc(), level: t.height}
	newRoot.keys = []kv.Key{fence}
	newRoot.children = []pagefile.PageID{t.root, rightID}
	t.root = newRoot.id
	t.height++
	return t.writeNode(at, newRoot)
}

// Update replaces the value of an existing key; it reports whether the key
// was present.
func (t *Tree) Update(at vtime.Ticks, r kv.Record) (bool, vtime.Ticks, error) {
	_, leaf, at, err := t.descend(at, r.Key)
	if err != nil {
		return false, at, err
	}
	i := kv.SearchRecords(leaf.recs, r.Key)
	if i >= len(leaf.recs) || leaf.recs[i].Key != r.Key {
		return false, at, nil
	}
	leaf.recs[i] = r
	at, err = t.writeNode(at, leaf)
	return true, at, err
}

// Delete removes key k; it reports whether the key was present.
func (t *Tree) Delete(at vtime.Ticks, k kv.Key) (bool, vtime.Ticks, error) {
	path, leaf, at, err := t.descend(at, k)
	if err != nil {
		return false, at, err
	}
	i := kv.SearchRecords(leaf.recs, k)
	if i >= len(leaf.recs) || leaf.recs[i].Key != k {
		return false, at, nil
	}
	leaf.recs = append(leaf.recs[:i], leaf.recs[i+1:]...)
	t.count--
	min := maxLeafRecs(t.cfg.NodeSize) / 2
	if len(leaf.recs) >= min || len(path) == 0 {
		at, err = t.writeNode(at, leaf)
		return true, at, err
	}
	at, err = t.fixLeafUnderflow(at, path, leaf)
	return true, at, err
}

// fixLeafUnderflow redistributes from or merges with a sibling leaf.
func (t *Tree) fixLeafUnderflow(at vtime.Ticks, path []pathEntry, leaf *node) (vtime.Ticks, error) {
	pe := path[len(path)-1]
	p, idx := pe.n, pe.idx
	min := maxLeafRecs(t.cfg.NodeSize) / 2
	var err error

	// Try borrowing from the right sibling, then the left.
	if idx+1 < len(p.children) {
		var sib *node
		sib, at, err = t.readNode(at, p.children[idx+1])
		if err != nil {
			return at, err
		}
		if len(sib.recs) > min {
			leaf.recs = append(leaf.recs, sib.recs[0])
			sib.recs = sib.recs[1:]
			p.keys[idx] = sib.recs[0].Key
			return t.writeNodes(at, leaf, sib, p)
		}
		// Merge leaf <- sib.
		leaf.recs = append(leaf.recs, sib.recs...)
		leaf.next = sib.next
		t.pf.Free(sib.id)
		t.pool.Invalidate(sib.id)
		if at, err = t.writeNode(at, leaf); err != nil {
			return at, err
		}
		return t.removeFence(at, path, idx)
	}
	// leaf is the rightmost child: use the left sibling.
	var sib *node
	sib, at, err = t.readNode(at, p.children[idx-1])
	if err != nil {
		return at, err
	}
	if len(sib.recs) > min {
		last := sib.recs[len(sib.recs)-1]
		sib.recs = sib.recs[:len(sib.recs)-1]
		leaf.recs = append([]kv.Record{last}, leaf.recs...)
		p.keys[idx-1] = last.Key
		return t.writeNodes(at, leaf, sib, p)
	}
	// Merge sib <- leaf.
	sib.recs = append(sib.recs, leaf.recs...)
	sib.next = leaf.next
	t.pf.Free(leaf.id)
	t.pool.Invalidate(leaf.id)
	if at, err = t.writeNode(at, sib); err != nil {
		return at, err
	}
	return t.removeFence(at, path, idx-1)
}

// removeFence removes keys[keyIdx] and children[keyIdx+1] from the node at
// the top of path, fixing internal underflow recursively.
func (t *Tree) removeFence(at vtime.Ticks, path []pathEntry, keyIdx int) (vtime.Ticks, error) {
	pe := path[len(path)-1]
	path = path[:len(path)-1]
	p := pe.n
	p.keys = append(p.keys[:keyIdx], p.keys[keyIdx+1:]...)
	p.children = append(p.children[:keyIdx+1], p.children[keyIdx+2:]...)

	if p.id == t.root {
		if len(p.keys) == 0 && t.height > 1 {
			// Shrink the tree.
			t.pf.Free(p.id)
			t.pool.Invalidate(p.id)
			t.root = p.children[0]
			t.height--
			return at, nil
		}
		return t.writeNode(at, p)
	}
	min := maxInternalKeys(t.cfg.NodeSize) / 2
	if len(p.keys) >= min {
		return t.writeNode(at, p)
	}
	return t.fixInternalUnderflow(at, path, p)
}

// fixInternalUnderflow redistributes or merges internal node p with a
// sibling through its parent (the next entry on path).
func (t *Tree) fixInternalUnderflow(at vtime.Ticks, path []pathEntry, p *node) (vtime.Ticks, error) {
	ppe := path[len(path)-1]
	gp, idx := ppe.n, ppe.idx
	min := maxInternalKeys(t.cfg.NodeSize) / 2
	var err error

	if idx+1 < len(gp.children) {
		var sib *node
		sib, at, err = t.readNode(at, gp.children[idx+1])
		if err != nil {
			return at, err
		}
		if len(sib.keys) > min {
			// Rotate left through the separator.
			p.keys = append(p.keys, gp.keys[idx])
			p.children = append(p.children, sib.children[0])
			gp.keys[idx] = sib.keys[0]
			sib.keys = sib.keys[1:]
			sib.children = sib.children[1:]
			return t.writeNodes(at, p, sib, gp)
		}
		// Merge p <- separator <- sib.
		p.keys = append(p.keys, gp.keys[idx])
		p.keys = append(p.keys, sib.keys...)
		p.children = append(p.children, sib.children...)
		t.pf.Free(sib.id)
		t.pool.Invalidate(sib.id)
		if at, err = t.writeNode(at, p); err != nil {
			return at, err
		}
		return t.removeFence(at, path, idx)
	}
	var sib *node
	sib, at, err = t.readNode(at, gp.children[idx-1])
	if err != nil {
		return at, err
	}
	if len(sib.keys) > min {
		// Rotate right through the separator.
		p.keys = append([]kv.Key{gp.keys[idx-1]}, p.keys...)
		p.children = append([]pagefile.PageID{sib.children[len(sib.children)-1]}, p.children...)
		gp.keys[idx-1] = sib.keys[len(sib.keys)-1]
		sib.keys = sib.keys[:len(sib.keys)-1]
		sib.children = sib.children[:len(sib.children)-1]
		return t.writeNodes(at, p, sib, gp)
	}
	// Merge sib <- separator <- p.
	sib.keys = append(sib.keys, gp.keys[idx-1])
	sib.keys = append(sib.keys, p.keys...)
	sib.children = append(sib.children, p.children...)
	t.pf.Free(p.id)
	t.pool.Invalidate(p.id)
	if at, err = t.writeNode(at, sib); err != nil {
		return at, err
	}
	return t.removeFence(at, path, idx-1)
}

// writeNodes writes several nodes in sequence.
func (t *Tree) writeNodes(at vtime.Ticks, ns ...*node) (vtime.Ticks, error) {
	var err error
	for _, n := range ns {
		if at, err = t.writeNode(at, n); err != nil {
			return at, err
		}
	}
	return at, nil
}

// BulkLoad builds the tree from key-sorted records with the configured
// fill factor, bypassing simulated I/O cost (experiment setup, matching
// the paper's "initially built ... by using a bulk loader").
func (t *Tree) BulkLoad(recs []kv.Record) error {
	if t.count != 0 {
		return fmt.Errorf("btree: bulk load into non-empty tree")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Key >= recs[i].Key {
			return fmt.Errorf("btree: bulk load input not strictly sorted at %d", i)
		}
	}
	if len(recs) == 0 {
		return nil
	}
	leafCap := int(float64(maxLeafRecs(t.cfg.NodeSize)) * t.cfg.fill())
	if leafCap < 1 {
		leafCap = 1
	}
	// Build leaf level.
	type built struct {
		id    pagefile.PageID
		first kv.Key
	}
	var level []built
	var prev *node
	for i := 0; i < len(recs); i += leafCap {
		end := i + leafCap
		if end > len(recs) {
			end = len(recs)
		}
		n := &node{id: t.pf.Alloc(), leaf: true, next: pagefile.InvalidPage}
		n.recs = append(n.recs, recs[i:end]...)
		if prev != nil {
			prev.next = n.id
			if err := t.writeNodeNoCost(prev); err != nil {
				return err
			}
		}
		level = append(level, built{id: n.id, first: n.recs[0].Key})
		prev = n
	}
	if err := t.writeNodeNoCost(prev); err != nil {
		return err
	}
	// Free the placeholder root leaf.
	t.pf.Free(t.root)
	t.pool.Invalidate(t.root)

	// Build internal levels.
	keyCap := int(float64(maxInternalKeys(t.cfg.NodeSize)) * t.cfg.fill())
	if keyCap < 2 {
		keyCap = 2
	}
	height := 1
	for len(level) > 1 {
		var next []built
		childCap := keyCap + 1
		for i := 0; i < len(level); i += childCap {
			end := i + childCap
			if end > len(level) {
				end = len(level)
			}
			// Avoid a dangling single-child node at the tail.
			if end == len(level)-1 {
				end = len(level)
			}
			group := level[i:end]
			n := &node{id: t.pf.Alloc(), level: height}
			n.children = make([]pagefile.PageID, 0, len(group))
			for j, b := range group {
				n.children = append(n.children, b.id)
				if j > 0 {
					n.keys = append(n.keys, b.first)
				}
			}
			if err := t.writeNodeNoCost(n); err != nil {
				return err
			}
			next = append(next, built{id: n.id, first: group[0].first})
			i = end - childCap // loop's i += childCap will land on end
		}
		level = next
		height++
	}
	t.root = level[0].id
	t.height = height
	t.count = int64(len(recs))
	return nil
}

// CheckInvariants verifies structural invariants (sorted keys, fence
// consistency, leaf chain order, counts) and returns the first violation.
// It bypasses timing and the buffer pool.
func (t *Tree) CheckInvariants() error {
	var total int64
	var walk func(id pagefile.PageID, level int, lo, hi kv.Key, hasLo, hasHi bool) error
	buf := make([]byte, t.cfg.NodeSize)
	readRaw := func(id pagefile.PageID) (*node, error) {
		// Prefer the buffered (possibly dirty) copy.
		if t.pool.Contains(id) {
			data, _, err := t.pool.Get(0, id)
			if err != nil {
				return nil, err
			}
			return decode(id, data)
		}
		if err := t.pf.ReadPageNoCost(id, buf); err != nil {
			return nil, err
		}
		return decode(id, buf)
	}
	walk = func(id pagefile.PageID, level int, lo, hi kv.Key, hasLo, hasHi bool) error {
		n, err := readRaw(id)
		if err != nil {
			return err
		}
		if n.leaf {
			if level != 0 {
				return fmt.Errorf("btree: leaf %d at level %d", id, level)
			}
			for i, r := range n.recs {
				if i > 0 && n.recs[i-1].Key >= r.Key {
					return fmt.Errorf("btree: leaf %d unsorted at %d", id, i)
				}
				if hasLo && r.Key < lo {
					return fmt.Errorf("btree: leaf %d key %d < lower bound %d", id, r.Key, lo)
				}
				if hasHi && r.Key >= hi {
					return fmt.Errorf("btree: leaf %d key %d >= upper bound %d", id, r.Key, hi)
				}
			}
			total += int64(len(n.recs))
			return nil
		}
		if n.level != level {
			return fmt.Errorf("btree: node %d level %d, want %d", id, n.level, level)
		}
		for i := range n.keys {
			if i > 0 && n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("btree: internal %d unsorted at %d", id, i)
			}
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			cHasLo, cHasHi := hasLo, hasHi
			if i > 0 {
				clo, cHasLo = n.keys[i-1], true
			}
			if i < len(n.keys) {
				chi, cHasHi = n.keys[i], true
			}
			if err := walk(c, level-1, clo, chi, cHasLo, cHasHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height-1, 0, 0, false, false); err != nil {
		return err
	}
	if total != t.count {
		return fmt.Errorf("btree: count mismatch: walked %d, tracked %d", total, t.count)
	}
	return nil
}
