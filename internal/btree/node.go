// Package btree implements the baseline disk B+-tree the paper compares
// against: fixed-size nodes (possibly spanning several flash pages, sized
// by the utility/cost measure of eq. (3)), synchronous one-node-at-a-time
// I/O through an LRU buffer pool, sorted leaves linked for range scans.
package btree

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kv"
	"repro/internal/pagefile"
)

// node kinds.
const (
	kindInternal byte = 1
	kindLeaf     byte = 2
)

// headerSize is the on-disk node header: kind(1) level(1) count(2)
// next(8) pad(4).
const headerSize = 16

// node is the in-memory form of one B+-tree node.
type node struct {
	id    pagefile.PageID
	leaf  bool
	level int // leaf = 0

	// Internal nodes: len(children) == len(keys)+1; subtree children[i]
	// holds keys in [keys[i-1], keys[i]) with the usual sentinel bounds
	// (K0 = -inf, KF = +inf), matching the paper's Figure 5.
	keys     []kv.Key
	children []pagefile.PageID

	// Leaves: sorted records plus the right-sibling link.
	recs []kv.Record
	next pagefile.PageID
}

// maxLeafRecs returns the leaf record capacity for a node of size bytes.
func maxLeafRecs(nodeSize int) int { return (nodeSize - headerSize) / kv.RecordSize }

// maxInternalKeys returns the separator-key capacity for a node of size
// bytes (children capacity is one more: the paper's fanout F).
func maxInternalKeys(nodeSize int) int { return (nodeSize - headerSize - 8) / 16 }

// encode serializes n into buf (len(buf) = nodeSize).
func (n *node) encode(buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		if len(n.recs) > maxLeafRecs(len(buf)) {
			return fmt.Errorf("btree: leaf %d overflow: %d recs", n.id, len(n.recs))
		}
		buf[0] = kindLeaf
		buf[1] = 0
		binary.LittleEndian.PutUint16(buf[2:], uint16(len(n.recs)))
		binary.LittleEndian.PutUint64(buf[4:], uint64(n.next))
		off := headerSize
		for _, r := range n.recs {
			kv.PutRecord(buf[off:], r)
			off += kv.RecordSize
		}
		return nil
	}
	if len(n.keys) > maxInternalKeys(len(buf)) {
		return fmt.Errorf("btree: internal %d overflow: %d keys", n.id, len(n.keys))
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("btree: internal %d: %d keys but %d children", n.id, len(n.keys), len(n.children))
	}
	buf[0] = kindInternal
	buf[1] = byte(n.level)
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(n.keys)))
	off := headerSize
	for _, k := range n.keys {
		binary.LittleEndian.PutUint64(buf[off:], k)
		off += 8
	}
	for _, c := range n.children {
		binary.LittleEndian.PutUint64(buf[off:], uint64(c))
		off += 8
	}
	return nil
}

// decode parses buf into a fresh node with the given id.
func decode(id pagefile.PageID, buf []byte) (*node, error) {
	n := &node{id: id}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	switch buf[0] {
	case kindLeaf:
		n.leaf = true
		n.next = pagefile.PageID(binary.LittleEndian.Uint64(buf[4:]))
		if count > maxLeafRecs(len(buf)) {
			return nil, fmt.Errorf("btree: corrupt leaf %d: count %d", id, count)
		}
		n.recs = make([]kv.Record, count)
		off := headerSize
		for i := range n.recs {
			n.recs[i] = kv.GetRecord(buf[off:])
			off += kv.RecordSize
		}
	case kindInternal:
		n.level = int(buf[1])
		if count > maxInternalKeys(len(buf)) {
			return nil, fmt.Errorf("btree: corrupt internal %d: count %d", id, count)
		}
		n.keys = make([]kv.Key, count)
		n.children = make([]pagefile.PageID, count+1)
		off := headerSize
		for i := range n.keys {
			n.keys[i] = binary.LittleEndian.Uint64(buf[off:])
			off += 8
		}
		for i := range n.children {
			n.children[i] = pagefile.PageID(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	default:
		return nil, fmt.Errorf("btree: corrupt node %d: kind %d", id, buf[0])
	}
	return n, nil
}

// childIndex returns i such that children[i] covers key k: the first i
// with k < keys[i], matching the paper's CheckSearchNeeded predicate
// K[i-1] <= s < K[i].
func (n *node) childIndex(k kv.Key) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if k < n.keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
