package btree

import (
	"math/rand"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

func newTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	f, err := ssdio.NewSpace(dev).Create("bt", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pagefile.New(f, cfg.NodeSize)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func cfg1k() Config { return Config{NodeSize: 1024, BufferBytes: 16 * 1024} }

func TestEmptySearch(t *testing.T) {
	tr := newTree(t, cfg1k())
	_, found, _, err := tr.Search(0, 1)
	if err != nil || found {
		t.Fatalf("empty search: %v %v", found, err)
	}
}

func TestInsertSearchDeleteRandom(t *testing.T) {
	tr := newTree(t, cfg1k())
	rng := rand.New(rand.NewSource(3))
	model := map[kv.Key]kv.Value{}
	var at vtime.Ticks
	var err error
	for i := 0; i < 8000; i++ {
		k := uint64(rng.Intn(2500))
		switch rng.Intn(3) {
		case 0, 1:
			at, err = tr.Insert(at, kv.Record{Key: k, Value: uint64(i)})
			if _, dup := model[k]; !dup {
				// count grows only on fresh keys
			}
			model[k] = uint64(i)
		case 2:
			var ok bool
			ok, at, err = tr.Delete(at, k)
			_, want := model[k]
			if err == nil && ok != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, ok, want)
			}
			delete(model, k)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != int64(len(model)) {
		t.Fatalf("count %d != model %d", tr.Count(), len(model))
	}
	for k, v := range model {
		got, found, _, err := tr.Search(0, k)
		if err != nil || !found || got != v {
			t.Fatalf("Search(%d) = %d,%v,%v want %d", k, got, found, err, v)
		}
	}
}

func TestDeleteToEmptyAndShrink(t *testing.T) {
	tr := newTree(t, cfg1k())
	var at vtime.Ticks
	var err error
	const n = 3000
	for i := 0; i < n; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	grown := tr.Height()
	if grown < 2 {
		t.Fatalf("height %d", grown)
	}
	for i := 0; i < n; i++ {
		ok, at2, err := tr.Delete(at, uint64(i))
		if err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", i, ok, err)
		}
		at = at2
	}
	if tr.Count() != 0 {
		t.Fatalf("count %d after deleting all", tr.Count())
	}
	if tr.Height() >= grown {
		t.Fatalf("tree did not shrink: %d -> %d", grown, tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reinsert works after full drain.
	if at, err = tr.Insert(at, kv.Record{Key: 42, Value: 1}); err != nil {
		t.Fatal(err)
	}
	v, found, _, err := tr.Search(at, 42)
	if err != nil || !found || v != 1 {
		t.Fatalf("post-drain search: %v %v %v", v, found, err)
	}
}

func TestRangeSearchLeafChain(t *testing.T) {
	tr := newTree(t, cfg1k())
	recs := make([]kv.Record, 5000)
	for i := range recs {
		recs[i] = kv.Record{Key: uint64(i * 2), Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	got, _, err := tr.RangeSearch(0, 1000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range recs {
		if r.Key >= 1000 && r.Key < 3000 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range %d records, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key >= got[i].Key {
			t.Fatal("range unsorted")
		}
	}
	if out, _, err := tr.RangeSearch(0, 30, 30); err != nil || out != nil {
		t.Fatalf("empty range: %v %v", out, err)
	}
}

func TestBulkLoadInvariantsAndCount(t *testing.T) {
	tr := newTree(t, cfg1k())
	recs := make([]kv.Record, 30000)
	for i := range recs {
		recs[i] = kv.Record{Key: uint64(i)*3 + 1, Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 30000 || tr.Height() < 3 {
		t.Fatalf("count=%d height=%d", tr.Count(), tr.Height())
	}
	// Spot checks.
	for _, i := range []int{0, 1, 14999, 29999} {
		v, found, _, err := tr.Search(0, recs[i].Key)
		if err != nil || !found || v != recs[i].Value {
			t.Fatalf("Search(%d): %v %v %v", recs[i].Key, v, found, err)
		}
	}
	if err := tr.BulkLoad(recs); err == nil {
		t.Fatal("bulk load into non-empty tree accepted")
	}
}

func TestUpdate(t *testing.T) {
	tr := newTree(t, cfg1k())
	at, err := tr.Insert(0, kv.Record{Key: 10, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok, at, err := tr.Update(at, kv.Record{Key: 10, Value: 2})
	if err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}
	v, found, at, err := tr.Search(at, 10)
	if err != nil || !found || v != 2 {
		t.Fatalf("after update: %v %v %v", v, found, err)
	}
	ok, _, err = tr.Update(at, kv.Record{Key: 11, Value: 3})
	if err != nil || ok {
		t.Fatalf("update of absent key: %v %v", ok, err)
	}
}

func TestMultiPageNodes(t *testing.T) {
	cfg := Config{NodeSize: 4096, BufferBytes: 64 * 1024}
	tr := newTree(t, cfg)
	var at vtime.Ticks
	var err error
	for i := 0; i < 2000; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Fanout() <= 64 {
		t.Fatalf("fanout %d too small for 4KB nodes", tr.Fanout())
	}
}

func TestNewValidation(t *testing.T) {
	dev := flashsim.MustDevice(flashsim.P300())
	f, _ := ssdio.NewSpace(dev).Create("v", 1<<16)
	pf, _ := pagefile.New(f, 1024)
	if _, err := New(pf, Config{NodeSize: 2048, BufferBytes: 1024}); err == nil {
		t.Fatal("node/page size mismatch accepted")
	}
	pf64, _ := pagefile.New(f, 64)
	_ = pf64
	if _, err := New(pf, Config{NodeSize: 64, BufferBytes: 1024}); err == nil {
		t.Fatal("tiny node size accepted")
	}
}

func TestSearchCostReflectsBufferSize(t *testing.T) {
	// With a bigger buffer, repeated random searches must be faster.
	run := func(bufBytes int) vtime.Ticks {
		cfg := Config{NodeSize: 1024, BufferBytes: bufBytes}
		tr := newTree(t, cfg)
		recs := make([]kv.Record, 20000)
		for i := range recs {
			recs[i] = kv.Record{Key: uint64(i), Value: uint64(i)}
		}
		if err := tr.BulkLoad(recs); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		var at vtime.Ticks
		for i := 0; i < 500; i++ {
			_, _, at2, err := tr.Search(at, uint64(rng.Intn(20000)))
			if err != nil {
				t.Fatal(err)
			}
			at = at2
		}
		return at
	}
	small := run(4 * 1024)
	big := run(256 * 1024)
	if big >= small {
		t.Fatalf("bigger buffer not faster: %v vs %v", big, small)
	}
}
