package flashsim

import (
	"fmt"
	"sync"

	"repro/internal/vtime"
)

// Op is the I/O direction of a request.
type Op uint8

const (
	// Read transfers data device -> host.
	Read Op = iota
	// Write transfers data host -> device.
	Write
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Request is one I/O command against the device's logical address space.
// Offset and Size are in bytes; Size must be positive. Offsets need not be
// aligned to the flash page size, but index substrates always issue
// page-aligned I/O.
type Request struct {
	Op     Op
	Offset int64
	Size   int
}

// Result describes the completion of one request within a batch.
type Result struct {
	// Start is when the command was issued to the device.
	Start vtime.Ticks
	// Done is when the command fully completed (data transferred and, for
	// writes, programmed).
	Done vtime.Ticks
}

// Latency is the request's service time.
func (r Result) Latency() vtime.Ticks { return r.Done - r.Start }

// Device is one simulated flash SSD. All methods are safe for concurrent
// use; internally a single mutex orders resource reservations, which is
// also the determinism boundary for simulated-thread experiments (callers
// that need determinism submit from the vtime scheduler, which is already
// sequential).
type Device struct {
	cfg Config

	mu       sync.Mutex
	channels []vtime.Ticks   // channel bus busy-until
	packages [][]vtime.Ticks // [channel][package] busy-until
	hostBus  vtime.Ticks     // host interface busy-until
	hostDir  Op              // last host bus direction
	hostUsed bool            // any transfer yet

	ncq []vtime.Ticks // completion times of the last NCQDepth requests (ring)
	nq  int           // ring cursor

	wear  [][]int64 // [channel][package] program counts (wear accounting)
	aging Aging
	stats Stats
}

// Aging models the write-path degradation of a worn or nearly-full drive:
// programs slow down (worn cells need more ISPP pulses and stronger ECC)
// and the firmware's garbage collector periodically steals a package to
// relocate a victim block, stalling foreground programs behind it. The
// zero value is a fresh drive.
type Aging struct {
	// ProgramFactor scales CellProgramLatency; values <= 1 leave the
	// program time unchanged.
	ProgramFactor float64
	// GCEvery, when positive, triggers a garbage-collection stall on a
	// package after every GCEvery page programs on that package.
	GCEvery int64
	// GCStall is the duration the victim package is busy relocating data
	// per triggered collection.
	GCStall vtime.Ticks
}

// SetAging installs an aging profile on the live device; subsequent
// writes pay the configured degradation. Scenario harnesses use it to
// age a device mid-run without disturbing its reservation timelines.
func (d *Device) SetAging(a Aging) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.aging = a
}

// Aging returns the device's current aging profile.
func (d *Device) Aging() Aging {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.aging
}

// programLatency is the effective page-program time under the current
// aging profile. Caller holds d.mu.
func (d *Device) programLatency() vtime.Ticks {
	lat := d.cfg.CellProgramLatency
	if d.aging.ProgramFactor > 1 {
		lat = vtime.Ticks(float64(lat) * d.aging.ProgramFactor)
	}
	return lat
}

// NewDevice builds a device from cfg; it panics only on programmer error
// (invalid configuration), reported via error instead.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg}
	d.channels = make([]vtime.Ticks, cfg.Channels)
	d.packages = make([][]vtime.Ticks, cfg.Channels)
	for i := range d.packages {
		d.packages[i] = make([]vtime.Ticks, cfg.PackagesPerChannel)
	}
	d.ncq = make([]vtime.Ticks, cfg.NCQDepth)
	d.wear = make([][]int64, cfg.Channels)
	for i := range d.wear {
		d.wear[i] = make([]int64, cfg.PackagesPerChannel)
	}
	return d, nil
}

// MustDevice is NewDevice for tests and examples with known-good profiles.
func MustDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device's configuration.
func (d *Device) Config() Config { return d.cfg }

// locate maps a flash page number to its (channel, package) pair.
// Consecutive pages span channels first (channel-level striping), then the
// packages of each channel (package-level striping), per Section 2.1.
func (d *Device) locate(fpn int64) (ch, pkg int) {
	ch = int(fpn % int64(d.cfg.Channels))
	pkg = int((fpn / int64(d.cfg.Channels)) % int64(d.cfg.PackagesPerChannel))
	return ch, pkg
}

// hostTransfer reserves the host bus for n bytes starting no earlier than
// at, charging the direction-switch penalty when the bus turns around.
// Caller holds d.mu.
func (d *Device) hostTransfer(at vtime.Ticks, op Op, n int) (start, done vtime.Ticks) {
	start = vtime.Max(at, d.hostBus)
	if d.hostUsed && d.hostDir != op {
		start += d.cfg.DirSwitchPenalty
		d.stats.DirSwitches++
	}
	done = start + vtime.Ticks(float64(n)*d.cfg.HostNsPerByte)
	d.hostBus = done
	d.hostDir = op
	d.hostUsed = true
	return start, done
}

// servePage executes one flash-page-sized piece of a request and returns
// its completion time. Caller holds d.mu.
func (d *Device) servePage(at vtime.Ticks, op Op, fpn int64, n int) vtime.Ticks {
	ch, pkg := d.locate(fpn)
	chCost := vtime.Ticks(float64(n) * d.cfg.ChannelNsPerByte)
	switch op {
	case Read:
		// Sense the cell, then move data over the channel, then over the
		// host interface. The package is held until its data has left the
		// channel (page register occupied).
		cellStart := vtime.Max(at, d.packages[ch][pkg])
		cellDone := cellStart + d.cfg.CellReadLatency
		chStart := vtime.Max(cellDone, d.channels[ch])
		chDone := chStart + chCost
		d.channels[ch] = chDone
		d.packages[ch][pkg] = chDone
		_, hostDone := d.hostTransfer(chDone, Read, n)
		d.stats.PagesRead++
		return hostDone
	case Write:
		// Move data over the host interface, then the channel, then program
		// the cell. The channel is released as soon as the transfer ends,
		// so other packages of the gang can receive data while this one
		// programs: the write-interleaving technique of Section 2.1.
		_, hostDone := d.hostTransfer(at, Write, n)
		chStart := vtime.Max(hostDone, vtime.Max(d.channels[ch], d.packages[ch][pkg]))
		chDone := chStart + chCost
		d.channels[ch] = chDone
		progDone := chDone + d.programLatency()
		d.wear[ch][pkg]++
		// GC pressure: after every GCEvery programs the package stalls to
		// relocate a victim block before the next request can use it.
		if d.aging.GCEvery > 0 && d.wear[ch][pkg]%d.aging.GCEvery == 0 {
			progDone += d.aging.GCStall
			d.stats.GCStalls++
			d.stats.GCStallTime += d.aging.GCStall
		}
		d.packages[ch][pkg] = progDone
		d.stats.PagesProgrammed++
		return progDone
	default:
		panic(fmt.Sprintf("flashsim: invalid op %d", op))
	}
}

// serve executes one whole request arriving at time at. Caller holds d.mu.
func (d *Device) serve(at vtime.Ticks, req Request) Result {
	if req.Size <= 0 {
		panic(fmt.Sprintf("flashsim: request size must be positive, got %d", req.Size))
	}
	if req.Offset < 0 {
		panic(fmt.Sprintf("flashsim: negative offset %d", req.Offset))
	}
	// NCQ window: this request cannot start before the request NCQDepth
	// positions earlier has completed.
	start := vtime.Max(at, d.ncq[d.nq])

	fps := int64(d.cfg.FlashPageSize)
	first := req.Offset / fps
	last := (req.Offset + int64(req.Size) - 1) / fps
	done := start
	for fpn := first; fpn <= last; fpn++ {
		// Bytes of the request on this flash page.
		pageStart := fpn * fps
		pageEnd := pageStart + fps
		reqEnd := req.Offset + int64(req.Size)
		n := int(minI64(pageEnd, reqEnd) - maxI64(pageStart, req.Offset))
		if c := d.servePage(start, req.Op, fpn, n); c > done {
			done = c
		}
	}
	done += d.cfg.CmdOverhead
	d.ncq[d.nq] = done
	d.nq = (d.nq + 1) % len(d.ncq)

	if req.Op == Read {
		d.stats.Reads++
		d.stats.BytesRead += int64(req.Size)
		d.stats.ReadTime += done - start
	} else {
		d.stats.Writes++
		d.stats.BytesWritten += int64(req.Size)
		d.stats.WriteTime += done - start
	}
	return Result{Start: start, Done: done}
}

// Submit issues a batch of requests at virtual time at, back to back with
// the configured submission gap, and returns the per-request results plus
// the completion time of the whole batch (the psync I/O semantics of
// Section 2.3: "delivers the set of I/Os ... and retrieves request results
// at once"). A batch of one models plain synchronous I/O.
func (d *Device) Submit(at vtime.Ticks, reqs []Request) ([]Result, vtime.Ticks) {
	if len(reqs) == 0 {
		return nil, at
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	results := make([]Result, len(reqs))
	batchDone := at
	for i, r := range reqs {
		issue := at + vtime.Ticks(i)*d.cfg.SubmitGap
		results[i] = d.serve(issue, r)
		if results[i].Done > batchDone {
			batchDone = results[i].Done
		}
	}
	d.stats.Batches++
	if len(reqs) > d.stats.MaxBatch {
		d.stats.MaxBatch = len(reqs)
	}
	return results, batchDone
}

// SubmitOne is a convenience wrapper for a single synchronous request.
func (d *Device) SubmitOne(at vtime.Ticks, req Request) Result {
	res, _ := d.Submit(at, []Request{req})
	return res[0]
}

// Wear reports the program-count distribution across the flash array:
// minimum, maximum and mean page programs per package. Even wear is the
// signature of striping working; a hot package signals a layout problem.
func (d *Device) Wear() (min, max int64, mean float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	first := true
	var total int64
	for _, row := range d.wear {
		for _, w := range row {
			if first || w < min {
				min = w
			}
			if first || w > max {
				max = w
			}
			first = false
			total += w
		}
	}
	n := d.cfg.TotalPackages()
	if n > 0 {
		mean = float64(total) / float64(n)
	}
	return min, max, mean
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the device counters (resource time lines are kept).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Stats aggregates device activity for experiment reporting.
type Stats struct {
	Reads, Writes   int64
	BytesRead       int64
	BytesWritten    int64
	ReadTime        vtime.Ticks // summed request latencies
	WriteTime       vtime.Ticks
	PagesRead       int64
	PagesProgrammed int64
	DirSwitches     int64
	Batches         int64
	MaxBatch        int
	// GCStalls counts aging-triggered garbage collections; GCStallTime is
	// the package-busy time they added (see Aging).
	GCStalls    int64
	GCStallTime vtime.Ticks
}

// TotalOps returns the number of completed requests.
func (s Stats) TotalOps() int64 { return s.Reads + s.Writes }

// String summarizes the counters on one line.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d bytesR=%d bytesW=%d batches=%d maxBatch=%d dirSwitches=%d",
		s.Reads, s.Writes, s.BytesRead, s.BytesWritten, s.Batches, s.MaxBatch, s.DirSwitches)
}
