package flashsim

import (
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func kb(n int) int { return n * 1024 }

func TestValidate(t *testing.T) {
	for _, cfg := range Profiles() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", cfg.Name, err)
		}
	}
	bad := Iodrive()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
	bad = Iodrive()
	bad.FlashPageSize = 3000
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	bad = Iodrive()
	bad.NCQDepth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero NCQ depth accepted")
	}
	if _, err := NewDevice(bad); err == nil {
		t.Error("NewDevice accepted invalid config")
	}
}

func TestProfileByName(t *testing.T) {
	c, err := ProfileByName("p300")
	if err != nil || c.Name != "p300" {
		t.Fatalf("ProfileByName(p300) = %v, %v", c.Name, err)
	}
	if _, err := ProfileByName("nosuch"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestLocateStriping(t *testing.T) {
	d := MustDevice(P300())
	m := d.cfg.Channels
	// Consecutive flash pages must span channels first.
	seen := map[int]bool{}
	for fpn := int64(0); fpn < int64(m); fpn++ {
		ch, _ := d.locate(fpn)
		if seen[ch] {
			t.Fatalf("channel %d reused within first %d pages", ch, m)
		}
		seen[ch] = true
	}
	// Page m must wrap to channel 0, next package.
	ch, pkg := d.locate(int64(m))
	if ch != 0 || pkg != 1 {
		t.Fatalf("locate(%d) = (%d,%d), want (0,1)", m, ch, pkg)
	}
}

func TestSingleReadLatencyComposition(t *testing.T) {
	cfg := P300()
	d := MustDevice(cfg)
	res := d.SubmitOne(0, Request{Op: Read, Offset: 0, Size: cfg.FlashPageSize})
	want := cfg.CellReadLatency +
		vtime.Ticks(float64(cfg.FlashPageSize)*cfg.ChannelNsPerByte) +
		vtime.Ticks(float64(cfg.FlashPageSize)*cfg.HostNsPerByte) +
		cfg.CmdOverhead
	if res.Latency() != want {
		t.Fatalf("read latency = %v, want %v", res.Latency(), want)
	}
}

func TestSingleWriteLatencyComposition(t *testing.T) {
	cfg := P300()
	d := MustDevice(cfg)
	res := d.SubmitOne(0, Request{Op: Write, Offset: 0, Size: cfg.FlashPageSize})
	want := vtime.Ticks(float64(cfg.FlashPageSize)*cfg.HostNsPerByte) +
		vtime.Ticks(float64(cfg.FlashPageSize)*cfg.ChannelNsPerByte) +
		cfg.CellProgramLatency +
		cfg.CmdOverhead
	if res.Latency() != want {
		t.Fatalf("write latency = %v, want %v", res.Latency(), want)
	}
}

// TestPackageLevelParallelism reproduces the core observation behind
// Figure 2: doubling the I/O size from one flash page to two must cost far
// less than double the latency, because the second page lands on another
// channel.
func TestPackageLevelParallelism(t *testing.T) {
	for _, cfg := range Profiles() {
		d := MustDevice(cfg)
		small := d.SubmitOne(0, Request{Op: Read, Offset: 0, Size: cfg.FlashPageSize}).Latency()
		d2 := MustDevice(cfg)
		big := d2.SubmitOne(0, Request{Op: Read, Offset: 0, Size: 2 * cfg.FlashPageSize}).Latency()
		if big >= 2*small {
			t.Errorf("%s: 2-page read %v not sublinear vs 1-page %v", cfg.Name, big, small)
		}
		// It must still cost something more (host bus serializes transfers).
		if big < small {
			t.Errorf("%s: 2-page read %v cheaper than 1-page %v", cfg.Name, big, small)
		}
	}
}

// TestChannelLevelParallelism reproduces Figure 3: submitting 32
// outstanding 4KB reads must yield far more bandwidth than one at a time.
func TestChannelLevelParallelism(t *testing.T) {
	for _, cfg := range []Config{Iodrive(), P300(), F120()} {
		reqSize := kb(4)
		n := 256
		mkReqs := func() []Request {
			reqs := make([]Request, n)
			for i := range reqs {
				// Spread across the address space pseudo-randomly.
				reqs[i] = Request{Op: Read, Offset: int64((i*2654435761 + 17) % (1 << 22) * int(4096)), Size: reqSize}
			}
			return reqs
		}
		// One at a time.
		d1 := MustDevice(cfg)
		var now vtime.Ticks
		for _, r := range mkReqs() {
			res := d1.SubmitOne(now, r)
			now = res.Done
		}
		serial := now
		// 32 at a time.
		d2 := MustDevice(cfg)
		now = 0
		reqs := mkReqs()
		for i := 0; i < n; i += 32 {
			_, done := d2.Submit(now, reqs[i:i+32])
			now = done
		}
		parallel := now
		gain := float64(serial) / float64(parallel)
		if gain < 6 {
			t.Errorf("%s: OutStd-32 gain %.1fx, want >= 6x (serial=%v parallel=%v)",
				cfg.Name, gain, serial, parallel)
		}
		if gain > float64(cfg.TotalPackages())*2 {
			t.Errorf("%s: gain %.1fx implausibly exceeds 2*m*n", cfg.Name, gain)
		}
	}
}

// TestInterleavePenalty reproduces Figure 3(c): an R,W,R,W... pattern must
// be slower than n reads followed by n writes at the same OutStd level.
func TestInterleavePenalty(t *testing.T) {
	for _, cfg := range []Config{Iodrive(), P300(), F120()} {
		const depth = 32
		const rounds = 16
		run := func(interleaved bool) vtime.Ticks {
			d := MustDevice(cfg)
			var now vtime.Ticks
			seed := 12345
			for r := 0; r < rounds; r++ {
				reqs := make([]Request, depth)
				for i := range reqs {
					seed = seed*1103515245 + 12345
					off := int64((seed>>8)&0xFFFFF) * 4096
					op := Read
					if interleaved {
						if i%2 == 1 {
							op = Write
						}
					} else if i >= depth/2 {
						op = Write
					}
					reqs[i] = Request{Op: op, Offset: off, Size: kb(4)}
				}
				_, done := d.Submit(now, reqs)
				now = done
			}
			return now
		}
		inter := run(true)
		noninter := run(false)
		ratio := float64(inter) / float64(noninter)
		if ratio < 1.05 {
			t.Errorf("%s: interleaved/non-interleaved = %.3f, want > 1.05", cfg.Name, ratio)
		}
		if ratio > 2.5 {
			t.Errorf("%s: interleave penalty %.2fx implausibly large", cfg.Name, ratio)
		}
	}
}

func TestNCQDepthLimitsParallelism(t *testing.T) {
	cfg := P300()
	cfg.NCQDepth = 4
	shallow := MustDevice(cfg)
	cfg2 := P300()
	cfg2.NCQDepth = 64
	deep := MustDevice(cfg2)
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Op: Read, Offset: int64(i) * 4096, Size: 4096}
	}
	_, shallowDone := shallow.Submit(0, reqs)
	_, deepDone := deep.Submit(0, reqs)
	if shallowDone <= deepDone {
		t.Fatalf("NCQ depth 4 (%v) not slower than depth 64 (%v)", shallowDone, deepDone)
	}
}

func TestSubmitEmptyBatch(t *testing.T) {
	d := MustDevice(F120())
	res, done := d.Submit(42, nil)
	if res != nil || done != 42 {
		t.Fatalf("empty batch: res=%v done=%v", res, done)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := MustDevice(F120())
	d.SubmitOne(0, Request{Op: Read, Offset: 0, Size: kb(8)})
	d.SubmitOne(0, Request{Op: Write, Offset: 0, Size: kb(4)})
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("ops = %d/%d, want 1/1", s.Reads, s.Writes)
	}
	if s.BytesRead != int64(kb(8)) || s.BytesWritten != int64(kb(4)) {
		t.Fatalf("bytes = %d/%d", s.BytesRead, s.BytesWritten)
	}
	if s.TotalOps() != 2 {
		t.Fatalf("TotalOps = %d", s.TotalOps())
	}
	if s.String() == "" {
		t.Fatal("empty Stats.String")
	}
	d.ResetStats()
	if d.Stats().TotalOps() != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

// Property: request completion must never precede submission, and later
// submissions on an idle device must never complete earlier than an
// identical earlier one (monotonicity of the resource time lines).
func TestQuickLatencyPositive(t *testing.T) {
	cfg := P300()
	d := MustDevice(cfg)
	var now vtime.Ticks
	f := func(off uint32, sz uint16, isWrite bool) bool {
		size := int(sz)%kb(64) + 1
		op := Read
		if isWrite {
			op = Write
		}
		res := d.SubmitOne(now, Request{Op: op, Offset: int64(off), Size: size})
		ok := res.Done > res.Start && res.Start >= now
		now = res.Done
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch completion equals the max of member completions.
func TestQuickBatchDoneIsMax(t *testing.T) {
	d := MustDevice(Iodrive())
	f := func(seeds []uint32) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 64 {
			seeds = seeds[:64]
		}
		reqs := make([]Request, len(seeds))
		for i, s := range seeds {
			op := Read
			if s%3 == 0 {
				op = Write
			}
			reqs[i] = Request{Op: op, Offset: int64(s%1024) * 4096, Size: int(s%8+1) * 2048}
		}
		res, done := d.Submit(0, reqs)
		var max vtime.Ticks
		for _, r := range res {
			if r.Done > max {
				max = r.Done
			}
		}
		return done == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op.String wrong")
	}
}

// TestWearEvenUnderStripedWrites: round-robin striping must spread page
// programs evenly across the package array.
func TestWearEvenUnderStripedWrites(t *testing.T) {
	cfg := P300()
	d := MustDevice(cfg)
	// Write every flash page of a region twice the array size.
	pages := cfg.TotalPackages() * 8
	var now vtime.Ticks
	for i := 0; i < pages; i++ {
		res := d.SubmitOne(now, Request{Op: Write, Offset: int64(i) * int64(cfg.FlashPageSize), Size: cfg.FlashPageSize})
		now = res.Done
	}
	min, max, mean := d.Wear()
	if min != max {
		t.Fatalf("uneven wear under striped writes: min=%d max=%d", min, max)
	}
	if mean != 8 {
		t.Fatalf("mean wear %.1f, want 8", mean)
	}
}

// TestWearHotspot: hammering one page concentrates wear on one package.
func TestWearHotspot(t *testing.T) {
	d := MustDevice(F120())
	var now vtime.Ticks
	for i := 0; i < 100; i++ {
		res := d.SubmitOne(now, Request{Op: Write, Offset: 0, Size: 4096})
		now = res.Done
	}
	min, max, _ := d.Wear()
	if max < 100 || min != 0 {
		t.Fatalf("hotspot not visible: min=%d max=%d", min, max)
	}
}

func TestAgingSlowsWrites(t *testing.T) {
	fresh := MustDevice(P300())
	aged := MustDevice(P300())
	aged.SetAging(Aging{ProgramFactor: 3.0})
	req := Request{Op: Write, Offset: 0, Size: aged.cfg.FlashPageSize}
	f := fresh.SubmitOne(0, req)
	a := aged.SubmitOne(0, req)
	wantExtra := vtime.Ticks(float64(aged.cfg.CellProgramLatency)*3.0) - aged.cfg.CellProgramLatency
	if a.Latency()-f.Latency() != wantExtra {
		t.Fatalf("aged write latency %v, fresh %v, want delta %v", a.Latency(), f.Latency(), wantExtra)
	}
	// Reads are unaffected by program-time aging.
	req.Op = Read
	fr := fresh.SubmitOne(f.Done, req)
	ar := aged.SubmitOne(a.Done, req)
	if fr.Latency() != ar.Latency() {
		t.Fatalf("aging changed read latency: fresh %v aged %v", fr.Latency(), ar.Latency())
	}
	if got := aged.Aging().ProgramFactor; got != 3.0 {
		t.Fatalf("Aging() = %v, want 3.0", got)
	}
}

func TestAgingGCStalls(t *testing.T) {
	d := MustDevice(P300())
	d.SetAging(Aging{GCEvery: 2, GCStall: vtime.Millisecond})
	now := vtime.Ticks(0)
	// 8 single-page writes to the same flash page hit one package; every
	// second program triggers a collection.
	for i := 0; i < 8; i++ {
		res := d.SubmitOne(now, Request{Op: Write, Offset: 0, Size: d.cfg.FlashPageSize})
		now = res.Done
	}
	st := d.Stats()
	if st.GCStalls != 4 {
		t.Fatalf("GCStalls = %d, want 4", st.GCStalls)
	}
	if st.GCStallTime != 4*vtime.Millisecond {
		t.Fatalf("GCStallTime = %v, want 4ms", st.GCStallTime)
	}
	// The stall is visible as added latency on the triggering requests.
	clean := MustDevice(P300())
	cnow := vtime.Ticks(0)
	for i := 0; i < 8; i++ {
		res := clean.SubmitOne(cnow, Request{Op: Write, Offset: 0, Size: clean.cfg.FlashPageSize})
		cnow = res.Done
	}
	if now-cnow != 4*vtime.Millisecond {
		t.Fatalf("aged makespan delta = %v, want 4ms", now-cnow)
	}
}
