// Package flashsim is a discrete-event simulator of a flash-based SSD with
// internal parallelism, the hardware substrate of the PIO B-tree paper
// (Roh et al., PVLDB 5(4), 2011).
//
// The simulated device has the architecture of the paper's Figure 1: a host
// interface, m channels, and n flash packages ganged on each channel. Three
// resource tiers are modelled with busy-until reservation in virtual time:
//
//   - the host interface bus (shared by all transfers; its bandwidth is the
//     device's saturation bandwidth and its direction-switch penalty is the
//     source of the mingled read/write degradation of Figure 3(c)),
//   - each channel's data bus (transfers between controller and packages),
//   - each flash package (page-read sensing and page-program time; the
//     channel is released while a package programs, which reproduces the
//     write-interleaving benefit of package-level parallelism).
//
// Logical pages are striped round-robin across channels first, then across
// the packages of a channel, so both a single large request (package-level
// parallelism, Figure 2) and many concurrent small requests (channel-level
// parallelism, Figure 3) spread over the array.
//
// All times are vtime.Ticks (simulated nanoseconds); the simulator is
// deterministic and needs no real concurrency.
package flashsim

import (
	"fmt"
	"sort"

	"repro/internal/vtime"
)

// Config describes one simulated SSD. The exported fields mirror the
// architectural parameters of the paper's Section 2.
type Config struct {
	// Name labels the device in experiment output (e.g. "P300").
	Name string

	// Channels is m, the number of independent channel buses.
	Channels int
	// PackagesPerChannel is n, the gang size per channel.
	PackagesPerChannel int

	// FlashPageSize is the flash page (striping unit) in bytes.
	FlashPageSize int

	// CellReadLatency is the time to sense one flash page into the package
	// page register.
	CellReadLatency vtime.Ticks
	// CellProgramLatency is the time to program one flash page from the
	// page register into the array.
	CellProgramLatency vtime.Ticks

	// ChannelBytesPerTick⁻¹: time to move one byte over a channel bus.
	ChannelNsPerByte float64
	// HostNsPerByte: time to move one byte over the host interface. The
	// reciprocal is the device's saturation bandwidth.
	HostNsPerByte float64

	// CmdOverhead is per-request latency (driver, host interface protocol,
	// controller firmware). It is additive latency, not a throughput
	// limiter, matching NCQ-style pipelined command processing.
	CmdOverhead vtime.Ticks

	// SubmitGap is the per-request spacing when a batch of commands is
	// issued back to back (the "very narrow time span" of Section 2.2).
	SubmitGap vtime.Ticks

	// DirSwitchPenalty is charged on the host bus whenever the transfer
	// direction flips between read and write (Figure 3(c) interference).
	DirSwitchPenalty vtime.Ticks

	// NCQDepth caps the number of requests the device works on at once;
	// request i in a burst cannot start before request i-NCQDepth finished.
	NCQDepth int
}

// Validate reports a descriptive error for an unusable configuration.
func (c *Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("flashsim: %s: Channels must be positive, got %d", c.Name, c.Channels)
	case c.PackagesPerChannel <= 0:
		return fmt.Errorf("flashsim: %s: PackagesPerChannel must be positive, got %d", c.Name, c.PackagesPerChannel)
	case c.FlashPageSize <= 0 || c.FlashPageSize&(c.FlashPageSize-1) != 0:
		return fmt.Errorf("flashsim: %s: FlashPageSize must be a positive power of two, got %d", c.Name, c.FlashPageSize)
	case c.CellReadLatency < 0 || c.CellProgramLatency < 0:
		return fmt.Errorf("flashsim: %s: negative cell latency", c.Name)
	case c.ChannelNsPerByte < 0 || c.HostNsPerByte < 0:
		return fmt.Errorf("flashsim: %s: negative transfer rate", c.Name)
	case c.NCQDepth <= 0:
		return fmt.Errorf("flashsim: %s: NCQDepth must be positive, got %d", c.Name, c.NCQDepth)
	}
	return nil
}

// TotalPackages returns m×n, the upper bound of the parallelism gain
// (Section 2.1: "the performance gain can be up to m×n times").
func (c *Config) TotalPackages() int { return c.Channels * c.PackagesPerChannel }

// Profiles returns the built-in device profiles, one per SSD benchmarked in
// the paper (Section 2.1 lists Iodrive, P300, F120, Intel X25-E, Intel
// X25-M, OCZ Vertex2). Parameters are fitted so the simulated Figures 2-4
// reproduce the paper's curve shapes: 4KB latency close to (or below) 2KB
// latency, >10x bandwidth growth from OutStd 1 to 64, and a 1.2-1.4x
// non-interleaved over interleaved advantage at high OutStd levels.
func Profiles() []Config {
	return []Config{
		Iodrive(), P300(), F120(), X25E(), X25M(), Vertex2(),
	}
}

// ProfileByName returns the named profile (case-sensitive) or an error
// listing the valid names.
func ProfileByName(name string) (Config, error) {
	for _, c := range Profiles() {
		if c.Name == name {
			return c, nil
		}
	}
	names := make([]string, 0, 6)
	for _, c := range Profiles() {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return Config{}, fmt.Errorf("flashsim: unknown profile %q (have %v)", name, names)
}

// Iodrive models the Fusion-io ioDrive: PCI-E host interface, the widest
// internal array and the lowest per-command overhead of the six devices.
func Iodrive() Config {
	return Config{
		Name:               "iodrive",
		Channels:           16,
		PackagesPerChannel: 4,
		FlashPageSize:      2048,
		CellReadLatency:    28 * vtime.Microsecond,
		CellProgramLatency: 220 * vtime.Microsecond,
		ChannelNsPerByte:   2.0,
		HostNsPerByte:      3.4, // ~290 MB/s saturation
		CmdOverhead:        55 * vtime.Microsecond,
		SubmitGap:          250 * vtime.Nanosecond,
		DirSwitchPenalty:   4 * vtime.Microsecond,
		NCQDepth:           64,
	}
}

// P300 models the Micron RealSSD P300: SATA-III enterprise SLC drive.
func P300() Config {
	return Config{
		Name:               "p300",
		Channels:           8,
		PackagesPerChannel: 4,
		FlashPageSize:      4096,
		CellReadLatency:    35 * vtime.Microsecond,
		CellProgramLatency: 250 * vtime.Microsecond,
		ChannelNsPerByte:   2.5,
		HostNsPerByte:      3.8, // ~260 MB/s saturation
		CmdOverhead:        85 * vtime.Microsecond,
		SubmitGap:          400 * vtime.Nanosecond,
		DirSwitchPenalty:   6 * vtime.Microsecond,
		NCQDepth:           32,
	}
}

// F120 models the Corsair Force F120: SATA-II consumer MLC drive
// (SandForce controller), the slowest of the paper's three main devices.
func F120() Config {
	return Config{
		Name:               "f120",
		Channels:           8,
		PackagesPerChannel: 2,
		FlashPageSize:      4096,
		CellReadLatency:    60 * vtime.Microsecond,
		CellProgramLatency: 600 * vtime.Microsecond,
		ChannelNsPerByte:   3.5,
		HostNsPerByte:      5.2, // ~190 MB/s saturation
		CmdOverhead:        110 * vtime.Microsecond,
		SubmitGap:          400 * vtime.Nanosecond,
		DirSwitchPenalty:   10 * vtime.Microsecond,
		NCQDepth:           32,
	}
}

// X25E models the Intel X25-E: SATA-II enterprise SLC (50nm) drive.
func X25E() Config {
	return Config{
		Name:               "x25e",
		Channels:           10,
		PackagesPerChannel: 2,
		FlashPageSize:      4096,
		CellReadLatency:    45 * vtime.Microsecond,
		CellProgramLatency: 280 * vtime.Microsecond,
		ChannelNsPerByte:   3.0,
		HostNsPerByte:      4.4, // ~225 MB/s saturation
		CmdOverhead:        95 * vtime.Microsecond,
		SubmitGap:          400 * vtime.Nanosecond,
		DirSwitchPenalty:   8 * vtime.Microsecond,
		NCQDepth:           32,
	}
}

// X25M models the Intel X25-M: SATA-II mainstream MLC (35nm) drive.
func X25M() Config {
	return Config{
		Name:               "x25m",
		Channels:           10,
		PackagesPerChannel: 2,
		FlashPageSize:      4096,
		CellReadLatency:    55 * vtime.Microsecond,
		CellProgramLatency: 500 * vtime.Microsecond,
		ChannelNsPerByte:   3.0,
		HostNsPerByte:      4.8, // ~210 MB/s saturation
		CmdOverhead:        100 * vtime.Microsecond,
		SubmitGap:          400 * vtime.Nanosecond,
		DirSwitchPenalty:   9 * vtime.Microsecond,
		NCQDepth:           32,
	}
}

// Vertex2 models the OCZ Vertex2: SATA-II consumer MLC (25/35nm) drive.
func Vertex2() Config {
	return Config{
		Name:               "vertex2",
		Channels:           8,
		PackagesPerChannel: 2,
		FlashPageSize:      4096,
		CellReadLatency:    65 * vtime.Microsecond,
		CellProgramLatency: 650 * vtime.Microsecond,
		ChannelNsPerByte:   3.5,
		HostNsPerByte:      5.6, // ~180 MB/s saturation
		CmdOverhead:        120 * vtime.Microsecond,
		SubmitGap:          400 * vtime.Nanosecond,
		DirSwitchPenalty:   10 * vtime.Microsecond,
		NCQDepth:           32,
	}
}
