// Package kv defines the index record vocabulary shared by every index in
// this repository: 64-bit keys, 64-bit record pointers (data page ids, per
// the paper's "pointer to the data record page"), and the update-operation
// flags of the paper's OPQ entries.
package kv

import (
	"encoding/binary"
	"sort"
)

// Key is an index key value.
type Key = uint64

// Value is an index record's payload: a pointer to the data record page.
type Value = uint64

// Record is an index record: key value plus data page pointer.
type Record struct {
	Key   Key
	Value Value
}

// Op is the type flag of an update operation (Section 3.1.3: "i: insert,
// d: delete, u: update").
type Op uint8

const (
	// OpInsert inserts an index record.
	OpInsert Op = 'i'
	// OpDelete deletes the record with the given key.
	OpDelete Op = 'd'
	// OpUpdate replaces the record's pointer for the given key.
	OpUpdate Op = 'u'
)

// String names the op like the paper's flags.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "i"
	case OpDelete:
		return "d"
	case OpUpdate:
		return "u"
	default:
		return "?"
	}
}

// Entry is an OPQ-style entry: an index record plus an operation flag.
// It is the unit stored in the Operation Queue and appended to PIO B-tree
// leaf segments.
type Entry struct {
	Rec Record
	Op  Op
}

// EntrySize is the encoded size of an Entry: key + value + op flag,
// padded to 17 bytes.
const EntrySize = 8 + 8 + 1

// PutEntry encodes e at b[:EntrySize].
func PutEntry(b []byte, e Entry) {
	binary.LittleEndian.PutUint64(b, e.Rec.Key)
	binary.LittleEndian.PutUint64(b[8:], e.Rec.Value)
	b[16] = byte(e.Op)
}

// GetEntry decodes an Entry from b[:EntrySize].
func GetEntry(b []byte) Entry {
	return Entry{
		Rec: Record{
			Key:   binary.LittleEndian.Uint64(b),
			Value: binary.LittleEndian.Uint64(b[8:]),
		},
		Op: Op(b[16]),
	}
}

// RecordSize is the encoded size of a plain Record.
const RecordSize = 8 + 8

// PutRecord encodes r at b[:RecordSize].
func PutRecord(b []byte, r Record) {
	binary.LittleEndian.PutUint64(b, r.Key)
	binary.LittleEndian.PutUint64(b[8:], r.Value)
}

// GetRecord decodes a Record from b[:RecordSize].
func GetRecord(b []byte) Record {
	return Record{
		Key:   binary.LittleEndian.Uint64(b),
		Value: binary.LittleEndian.Uint64(b[8:]),
	}
}

// SortRecords orders records ascending by key (stable on equal keys).
func SortRecords(rs []Record) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Key < rs[j].Key })
}

// SortEntries orders entries ascending by key, preserving the relative
// order of operations on the same key (the conflicting-order requirement
// of Section 3.4 within one batch).
func SortEntries(es []Entry) {
	sort.SliceStable(es, func(i, j int) bool { return es[i].Rec.Key < es[j].Rec.Key })
}

// SearchRecords returns the position of the first record with key >= k.
func SearchRecords(rs []Record, k Key) int {
	return sort.Search(len(rs), func(i int) bool { return rs[i].Key >= k })
}

// MergeEntries merges two key-sorted entry slices into one sorted slice,
// preserving order between equal keys (a's entries are older and come
// first) — the OPQ sorted-region merge of Section 3.1.3.
func MergeEntries(a, b []Entry) []Entry {
	out := make([]Entry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Rec.Key <= b[j].Rec.Key {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
