package kv

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if OpInsert.String() != "i" || OpDelete.String() != "d" || OpUpdate.String() != "u" {
		t.Fatal("op strings wrong")
	}
	if Op(0).String() != "?" {
		t.Fatal("unknown op string wrong")
	}
}

func TestEntryRoundTrip(t *testing.T) {
	f := func(k, v uint64, op uint8) bool {
		ops := []Op{OpInsert, OpDelete, OpUpdate}
		in := Entry{Rec: Record{Key: k, Value: v}, Op: ops[int(op)%3]}
		buf := make([]byte, EntrySize)
		PutEntry(buf, in)
		return GetEntry(buf) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	f := func(k, v uint64) bool {
		in := Record{Key: k, Value: v}
		buf := make([]byte, RecordSize)
		PutRecord(buf, in)
		return GetRecord(buf) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortRecordsStable(t *testing.T) {
	rs := []Record{{Key: 3, Value: 1}, {Key: 1, Value: 2}, {Key: 3, Value: 3}, {Key: 2, Value: 4}}
	SortRecords(rs)
	want := []Record{{Key: 1, Value: 2}, {Key: 2, Value: 4}, {Key: 3, Value: 1}, {Key: 3, Value: 3}}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("rs[%d] = %+v, want %+v", i, rs[i], want[i])
		}
	}
}

func TestSortEntriesPreservesArrivalOrderPerKey(t *testing.T) {
	es := []Entry{
		{Rec: Record{Key: 5, Value: 1}, Op: OpInsert},
		{Rec: Record{Key: 5, Value: 0}, Op: OpDelete},
		{Rec: Record{Key: 2, Value: 9}, Op: OpInsert},
		{Rec: Record{Key: 5, Value: 2}, Op: OpInsert},
	}
	SortEntries(es)
	if es[0].Rec.Key != 2 {
		t.Fatal("not sorted")
	}
	// For key 5: insert, delete, insert in that arrival order.
	if es[1].Op != OpInsert || es[2].Op != OpDelete || es[3].Op != OpInsert || es[3].Rec.Value != 2 {
		t.Fatalf("arrival order broken: %+v", es)
	}
}

func TestSearchRecords(t *testing.T) {
	rs := []Record{{Key: 10}, {Key: 20}, {Key: 30}}
	cases := []struct {
		k    Key
		want int
	}{{5, 0}, {10, 0}, {15, 1}, {30, 2}, {31, 3}}
	for _, c := range cases {
		if got := SearchRecords(rs, c.k); got != c.want {
			t.Errorf("SearchRecords(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestMergeEntries(t *testing.T) {
	a := []Entry{{Rec: Record{Key: 1, Value: 1}}, {Rec: Record{Key: 5, Value: 1}}}
	b := []Entry{{Rec: Record{Key: 1, Value: 2}}, {Rec: Record{Key: 3, Value: 2}}}
	m := MergeEntries(a, b)
	if len(m) != 4 {
		t.Fatalf("len = %d", len(m))
	}
	// Keys sorted; a's (older) key-1 entry before b's.
	if m[0].Rec != (Record{Key: 1, Value: 1}) || m[1].Rec != (Record{Key: 1, Value: 2}) {
		t.Fatalf("tie order broken: %+v", m[:2])
	}
	if m[2].Rec.Key != 3 || m[3].Rec.Key != 5 {
		t.Fatalf("order broken: %+v", m)
	}
}

// Property: MergeEntries output is sorted and has the combined length.
func TestQuickMergeEntries(t *testing.T) {
	f := func(ka, kb []uint16) bool {
		a := make([]Entry, len(ka))
		for i, k := range ka {
			a[i] = Entry{Rec: Record{Key: uint64(k)}}
		}
		b := make([]Entry, len(kb))
		for i, k := range kb {
			b[i] = Entry{Rec: Record{Key: uint64(k)}}
		}
		SortEntries(a)
		SortEntries(b)
		m := MergeEntries(a, b)
		if len(m) != len(a)+len(b) {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i-1].Rec.Key > m[i].Rec.Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
