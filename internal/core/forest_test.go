package core

import (
	"fmt"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// newTestForest builds a forest of n shards on a fresh simulated device.
func newTestForest(t *testing.T, n int, cfg Config, part Partitioner) *Forest {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	pfs := make([]*pagefile.PageFile, n)
	for i := range pfs {
		f, err := space.Create(fmt.Sprintf("shard%d", i), 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		pfs[i], err = pagefile.New(f, cfg.PageSize)
		if err != nil {
			t.Fatal(err)
		}
	}
	fr, err := NewForest(pfs, ForestConfig{Partitioner: part, Shard: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

// forestCfg is smallCfg with a global OPQ/buffer budget worth splitting.
func forestCfg() Config {
	c := smallCfg()
	c.OPQPages = 4
	c.BufferBytes = 32 * 1024
	return c
}

func TestForestMatchesModel(t *testing.T) {
	fr := newTestForest(t, 4, forestCfg(), nil)
	model := map[kv.Key]kv.Value{}
	var recs []kv.Record
	for i := 0; i < 500; i++ {
		k := kv.Key(i*16 + 8)
		recs = append(recs, kv.Record{Key: k, Value: kv.Value(i)})
		model[k] = kv.Value(i)
	}
	if err := fr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	var now vtime.Ticks
	var err error
	// Mixed inserts, updates and deletes driven from one timeline. The
	// workload is disciplined as the tree's count tracking requires:
	// inserts are fresh keys, updates target live never-deleted keys, and
	// each deleted key is deleted exactly once.
	deleted := 0
	for i := 0; i < 2000; i++ {
		switch i % 4 {
		case 0, 1:
			k := kv.Key(i*16 + 1)
			now, err = fr.Insert(now, kv.Record{Key: k, Value: kv.Value(i)})
			model[k] = kv.Value(i)
		case 2:
			k := kv.Key((300+i%200)*16 + 8)
			now, err = fr.Update(now, kv.Record{Key: k, Value: kv.Value(i + 7)})
			model[k] = kv.Value(i + 7)
		default:
			if deleted < 300 {
				k := kv.Key(deleted*16 + 8)
				now, err = fr.Delete(now, k)
				delete(model, k)
				deleted++
			}
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	now, err = fr.Checkpoint(now)
	if err != nil {
		t.Fatal(err)
	}
	if p := fr.Pending(); p != 0 {
		t.Fatalf("pending after checkpoint: %d", p)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, want := range model {
		v, ok, _, err := fr.Search(now, k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != want {
			t.Fatalf("key %d: got (%d,%v), want (%d,true)", k, v, ok, want)
		}
	}
	// Deleted keys absent.
	if _, ok, _, _ := fr.Search(now, kv.Key(0*16+8)); ok {
		t.Fatal("deleted key still found")
	}
	if got := fr.Count(); got != int64(len(model)) {
		t.Fatalf("count %d, want %d", got, len(model))
	}
}

func TestForestRangeAndSearchMany(t *testing.T) {
	for _, part := range []Partitioner{
		nil, // hash
		RangePartitioner{Bounds: []kv.Key{4000, 8000, 12000}},
	} {
		fr := newTestForest(t, 4, forestCfg(), part)
		var recs []kv.Record
		for i := 0; i < 1000; i++ {
			recs = append(recs, kv.Record{Key: kv.Key(i * 16), Value: kv.Value(i)})
		}
		if err := fr.BulkLoad(recs); err != nil {
			t.Fatal(err)
		}
		var now vtime.Ticks
		var err error
		for i := 1000; i < 1200; i++ {
			now, err = fr.Insert(now, kv.Record{Key: kv.Key(i * 16), Value: kv.Value(i)})
			if err != nil {
				t.Fatal(err)
			}
		}
		// Range spanning shard boundaries, half on disk, half in OPQs.
		lo, hi := kv.Key(15800), kv.Key(16400)
		got, now, err := fr.RangeSearch(now, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var want []kv.Record
		for i := 0; i < 1200; i++ {
			k := kv.Key(i * 16)
			if k >= lo && k < hi {
				want = append(want, kv.Record{Key: k, Value: kv.Value(i)})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range: got %d records, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range[%d]: got %v, want %v", i, got[i], want[i])
			}
		}
		// SearchMany across shards.
		keys := []kv.Key{0, 16 * 500, 16 * 1100, 16*1199 + 1}
		m, _, err := fr.SearchMany(now, keys)
		if err != nil {
			t.Fatal(err)
		}
		if len(m) != 3 {
			t.Fatalf("searchmany found %d keys, want 3", len(m))
		}
		if m[16*500] != 500 || m[16*1100] != 1100 {
			t.Fatalf("searchmany wrong values: %v", m)
		}
	}
}

// TestForestSingleShardMatchesConcurrent checks that a one-shard forest
// reproduces the Concurrent wrapper's virtual timings exactly: the forest
// generalizes the paper's scheme and must not change the single-partition
// baseline.
func TestForestSingleShardMatchesConcurrent(t *testing.T) {
	cfg := forestCfg()

	tr := newTestTree(t, cfg)
	cc := NewConcurrent(tr)
	fr := newTestForest(t, 1, cfg, nil)

	var recs []kv.Record
	for i := 0; i < 400; i++ {
		recs = append(recs, kv.Record{Key: kv.Key(i*16 + 8), Value: kv.Value(i)})
	}
	if err := cc.Tree().BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := fr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}

	var tc, tf vtime.Ticks
	for i := 0; i < 1500; i++ {
		var err1, err2 error
		if i%3 == 0 {
			_, _, tc2, e1 := cc.Search(tc, kv.Key((i%400)*16+8))
			_, _, tf2, e2 := fr.Search(tf, kv.Key((i%400)*16+8))
			tc, tf, err1, err2 = tc2, tf2, e1, e2
		} else {
			r := kv.Record{Key: kv.Key(i*16 + 1), Value: kv.Value(i)}
			tc, err1 = cc.Insert(tc, r)
			tf, err2 = fr.Insert(tf, r)
		}
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if tc != tf {
			t.Fatalf("op %d: concurrent at %d, single-shard forest at %d", i, tc, tf)
		}
	}
}

// TestForestGroupFlushMerges drives enough inserts to fill several shard
// OPQs and checks the coordinator actually merged flushes into gang
// submissions.
func TestForestGroupFlushMerges(t *testing.T) {
	cfg := forestCfg()
	cfg.OPQPages = 4 // global; 1 page per shard
	fr := newTestForest(t, 4, cfg, nil)
	var recs []kv.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, kv.Record{Key: kv.Key(i*16 + 8), Value: kv.Value(i)})
	}
	if err := fr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	var now vtime.Ticks
	var err error
	for i := 0; i < 4000; i++ {
		now, err = fr.Insert(now, kv.Record{Key: kv.Key(i*16 + 3), Value: kv.Value(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := fr.Stats()
	if st.GroupFlushes == 0 {
		t.Fatal("no group flushes")
	}
	if st.GangSubmits == 0 {
		t.Fatal("no merged gang submissions: shards never flushed together")
	}
	if st.GroupedShards <= st.GroupFlushes {
		t.Fatalf("no merging: %d shards over %d group flushes", st.GroupedShards, st.GroupFlushes)
	}
	if st.Tree.GangedWrites == 0 {
		t.Fatal("no write batches were deferred into gangs")
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRangePartitionerRouting(t *testing.T) {
	p := RangePartitioner{Bounds: []kv.Key{100, 200}}
	if p.Shards() != 3 {
		t.Fatalf("shards %d", p.Shards())
	}
	cases := map[kv.Key]int{0: 0, 99: 0, 100: 1, 199: 1, 200: 2, 1 << 40: 2}
	for k, want := range cases {
		if got := p.Shard(k); got != want {
			t.Fatalf("shard(%d) = %d, want %d", k, got, want)
		}
	}
	if got := p.RangeShards(50, 150); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("rangeshards(50,150) = %v", got)
	}
	if got := p.RangeShards(120, 121); len(got) != 1 || got[0] != 1 {
		t.Fatalf("rangeshards(120,121) = %v", got)
	}
	if got := p.RangeShards(10, 10); got != nil {
		t.Fatalf("empty range gave %v", got)
	}
}

func TestForestRejectsBadConfig(t *testing.T) {
	cfg := forestCfg()
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	f, _ := space.Create("s0", 1<<20)
	pf, _ := pagefile.New(f, cfg.PageSize)
	if _, err := NewForest(nil, ForestConfig{Shard: cfg}); err == nil {
		t.Fatal("accepted zero shards")
	}
	if _, err := NewForest([]*pagefile.PageFile{pf}, ForestConfig{
		Partitioner: HashPartitioner{N: 2}, Shard: cfg,
	}); err == nil {
		t.Fatal("accepted mismatched partitioner")
	}
	if _, err := NewForest([]*pagefile.PageFile{pf}, ForestConfig{
		Partitioner: RangePartitioner{}, Shard: cfg,
	}); err != nil {
		t.Fatalf("single-shard range partitioner rejected: %v", err)
	}
}

// TestValidatePartitioner covers the shard-configuration validation: a
// HashPartitioner with N <= 0 would divide by zero on the first Shard
// call, and RangePartitioner bounds must be strictly ascending.
func TestValidatePartitioner(t *testing.T) {
	if err := ValidatePartitioner(HashPartitioner{N: 0}, 0); err == nil {
		t.Fatal("HashPartitioner{N:0} accepted")
	}
	if err := ValidatePartitioner(HashPartitioner{N: -3}, -3); err == nil {
		t.Fatal("HashPartitioner{N:-3} accepted")
	}
	if err := ValidatePartitioner(HashPartitioner{N: 4}, 4); err != nil {
		t.Fatalf("valid hash partitioner rejected: %v", err)
	}
	if err := ValidatePartitioner(RangePartitioner{Bounds: []kv.Key{10, 10}}, 3); err == nil {
		t.Fatal("duplicate range bounds accepted")
	}
	if err := ValidatePartitioner(RangePartitioner{Bounds: []kv.Key{20, 10}}, 3); err == nil {
		t.Fatal("descending range bounds accepted")
	}
	if err := ValidatePartitioner(RangePartitioner{Bounds: []kv.Key{10, 20}}, 3); err != nil {
		t.Fatalf("valid range partitioner rejected: %v", err)
	}
}

// TestForestRejectsBadRangeBounds: NewForest must reject unsorted and
// duplicate RangePartitioner bounds with a clear error.
func TestForestRejectsBadRangeBounds(t *testing.T) {
	cfg := forestCfg()
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	pfs := make([]*pagefile.PageFile, 3)
	for i := range pfs {
		f, _ := space.Create(fmt.Sprintf("s%d", i), 1<<20)
		pfs[i], _ = pagefile.New(f, cfg.PageSize)
	}
	for _, bounds := range [][]kv.Key{{50, 50}, {100, 50}} {
		if _, err := NewForest(pfs, ForestConfig{
			Partitioner: RangePartitioner{Bounds: bounds}, Shard: cfg,
		}); err == nil {
			t.Fatalf("bounds %v accepted", bounds)
		}
	}
}

// TestForestRejectsBadLogs: the WAL attachment must be none, one shared
// log, or exactly one per shard — and never nil entries.
func TestForestRejectsBadLogs(t *testing.T) {
	cfg := forestCfg()
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	pfs := make([]*pagefile.PageFile, 3)
	for i := range pfs {
		f, _ := space.Create(fmt.Sprintf("s%d", i), 1<<20)
		pfs[i], _ = pagefile.New(f, cfg.PageSize)
	}
	wf, _ := space.Create("wal", 1<<20)
	l, err := wal.NewLog(wf, cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewForest(pfs, ForestConfig{Shard: cfg, Logs: []*wal.Log{l, l}}); err == nil {
		t.Fatal("accepted 2 logs for 3 shards")
	}
	if _, err := NewForest(pfs, ForestConfig{Shard: cfg, Logs: []*wal.Log{l, nil, l}}); err == nil {
		t.Fatal("accepted nil log entry")
	}
	// One shared log multiplexed by Relation is valid.
	if _, err := NewForest(pfs, ForestConfig{Shard: cfg, Logs: []*wal.Log{l}}); err != nil {
		t.Fatalf("shared log rejected: %v", err)
	}
}

func TestForestApplyOPQBudget(t *testing.T) {
	fr := newTestForest(t, 4, forestCfg(), nil)
	var recs []kv.Record
	for i := 0; i < 400; i++ {
		recs = append(recs, kv.Record{Key: kv.Key(i*16 + 8), Value: kv.Value(i)})
	}
	if err := fr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	perShardBefore := fr.Stats().ShardLoads[0].OPQPages
	if perShardBefore != 1 {
		t.Fatalf("initial per-shard OPQ pages = %d, want 1 (4 pages / 4 shards)", perShardBefore)
	}
	var now vtime.Ticks
	var err error
	// Queue some updates so a shrink has something to flush.
	for i := 0; i < 200; i++ {
		now, err = fr.Insert(now, kv.Record{Key: kv.Key(i*16 + 1), Value: kv.Value(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Grow: 16 global pages -> 4 per shard.
	now, resized, skipped, err := fr.ApplyOPQBudget(now, 16)
	if err != nil || resized != 4 || skipped != 0 {
		t.Fatalf("grow: resized=%d skipped=%d err=%v", resized, skipped, err)
	}
	for i, l := range fr.Stats().ShardLoads {
		if l.OPQPages != 4 {
			t.Fatalf("shard %d OPQPages = %d after grow, want 4", i, l.OPQPages)
		}
	}
	// More traffic fills the larger queues, then shrink back to 1 page per
	// shard: the queues must be flushed down, not truncated.
	for i := 200; i < 400; i++ {
		now, err = fr.Insert(now, kv.Record{Key: kv.Key(i*16 + 1), Value: kv.Value(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	countBefore := fr.Count()
	now, resized, skipped, err = fr.ApplyOPQBudget(now, 4)
	if err != nil || resized != 4 || skipped != 0 {
		t.Fatalf("shrink: resized=%d skipped=%d err=%v", resized, skipped, err)
	}
	_ = now
	if got := fr.Count(); got != countBefore {
		t.Fatalf("shrink lost keys: count %d -> %d", countBefore, got)
	}
	for i, l := range fr.Stats().ShardLoads {
		if l.OPQPages != 1 {
			t.Fatalf("shard %d OPQPages = %d after shrink, want 1", i, l.OPQPages)
		}
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Invalid budget rejected.
	if _, _, _, err := fr.ApplyOPQBudget(now, 0); err == nil {
		t.Fatal("zero-page budget accepted")
	}
}
