package core

import (
	"sort"

	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// psyncReadPages reads the given pages in one psync call (or a sequence of
// sync reads when the psync ablation is on).
func (t *Tree) psyncReadPages(at vtime.Ticks, ids []pagefile.PageID, bufs [][]byte) (vtime.Ticks, error) {
	if len(ids) == 0 {
		return at, nil
	}
	t.stats.PsyncReads++
	if t.cfg.DisablePsync {
		var err error
		for i, id := range ids {
			id, buf := id, bufs[i]
			at, err = t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
				return t.pf.ReadPage(at, id, buf)
			})
			if err != nil {
				return at, err
			}
		}
		return at, nil
	}
	// Reads are idempotent and a failed submission fills no buffers, so
	// resubmitting the whole batch is safe.
	return t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
		return t.pf.PsyncRead(at, ids, bufs)
	})
}

// psyncWritePages writes the given pages in one psync call (or serially
// under the ablation). When the tree flushes as part of a forest group,
// the writes are deferred into the group's shared gang instead.
func (t *Tree) psyncWritePages(at vtime.Ticks, ids []pagefile.PageID, bufs [][]byte) (vtime.Ticks, error) {
	if len(ids) == 0 {
		return at, nil
	}
	if t.gang != nil && !t.cfg.DisablePsync {
		runs := make([]pagefile.RunReq, len(ids))
		for i, id := range ids {
			runs[i] = pagefile.RunReq{First: id, N: 1, Buf: bufs[i], Write: true}
		}
		t.stats.GangedWrites++
		return at, t.gang.add(t.pf, runs)
	}
	t.stats.PsyncWrites++
	if t.cfg.DisablePsync {
		var err error
		for i, id := range ids {
			id, buf := id, bufs[i]
			at, err = t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
				return t.pf.WritePage(at, id, buf)
			})
			if err != nil {
				return at, err
			}
		}
		return at, nil
	}
	// A failed submission applied nothing, so the resubmission writes the
	// same pages from the same buffers — idempotent by construction.
	return t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
		return t.pf.PsyncWrite(at, ids, bufs)
	})
}

// readInternalBatch fetches a set of internal nodes: buffered nodes come
// from the pool, misses are read with one psync call and inserted clean.
func (t *Tree) readInternalBatch(at vtime.Ticks, ids []pagefile.PageID) (map[pagefile.PageID]*internalNode, vtime.Ticks, error) {
	out := make(map[pagefile.PageID]*internalNode, len(ids))
	var missIDs []pagefile.PageID
	var missBufs [][]byte
	for _, id := range ids {
		if _, done := out[id]; done {
			continue
		}
		if t.pool.Contains(id) {
			data, at2, err := t.poolGet(at, id)
			if err != nil {
				return nil, at2, err
			}
			at = at2
			n, err := decodeInternal(id, data)
			if err != nil {
				return nil, at, err
			}
			out[id] = n
			continue
		}
		missIDs = append(missIDs, id)
		missBufs = append(missBufs, make([]byte, t.cfg.PageSize))
	}
	// Read misses PioMax at a time.
	pm := t.cfg.pioMax()
	var err error
	for i := 0; i < len(missIDs); i += pm {
		end := i + pm
		if end > len(missIDs) {
			end = len(missIDs)
		}
		at, err = t.psyncReadPages(at, missIDs[i:end], missBufs[i:end])
		if err != nil {
			return nil, at, err
		}
	}
	for i, id := range missIDs {
		n, err := decodeInternal(id, missBufs[i])
		if err != nil {
			return nil, at, err
		}
		out[id] = n
		t.pool.InsertClean(id, missBufs[i])
	}
	at += vtime.Ticks(len(ids)) * t.cfg.CPUPerNode
	return out, at, nil
}

// readLeafBatch reads whole leaves (segments [0, lastLS]) via psync. Each
// leaf is one multi-page request, so a psync batch of leaves exercises
// both channel-level (many requests) and package-level (large requests)
// parallelism at once.
func (t *Tree) readLeafBatch(at vtime.Ticks, ids []pagefile.PageID) (map[pagefile.PageID]*leafNode, vtime.Ticks, error) {
	out := make(map[pagefile.PageID]*leafNode, len(ids))
	uniq := ids[:0:0]
	for _, id := range ids {
		if _, ok := out[id]; !ok {
			out[id] = nil
			uniq = append(uniq, id)
		}
	}
	if t.cfg.LeafSegs == 1 {
		// Single-page leaves flow through the pool: hits are free, misses
		// are batched via psync and inserted clean.
		var missIDs []pagefile.PageID
		var missBufs [][]byte
		for _, id := range uniq {
			if t.pool.Contains(id) {
				data, at2, err := t.poolGet(at, id)
				if err != nil {
					return nil, at2, err
				}
				at = at2
				l, err := decodeLeaf(id, data, t.cfg.PageSize, 1)
				if err != nil {
					return nil, at, err
				}
				out[id] = l
				continue
			}
			missIDs = append(missIDs, id)
			missBufs = append(missBufs, make([]byte, t.cfg.PageSize))
		}
		pm := t.cfg.pioMax()
		var err error
		for i := 0; i < len(missIDs); i += pm {
			end := i + pm
			if end > len(missIDs) {
				end = len(missIDs)
			}
			at, err = t.psyncReadPages(at, missIDs[i:end], missBufs[i:end])
			if err != nil {
				return nil, at, err
			}
		}
		for i, id := range missIDs {
			l, err := decodeLeaf(id, missBufs[i], t.cfg.PageSize, 1)
			if err != nil {
				return nil, at, err
			}
			out[id] = l
			t.pool.InsertClean(id, missBufs[i])
		}
		at += vtime.Ticks(len(uniq)) * t.cfg.CPUPerNode
		return out, at, nil
	}
	pm := t.cfg.pioMax()
	for i := 0; i < len(uniq); i += pm {
		end := i + pm
		if end > len(uniq) {
			end = len(uniq)
		}
		chunk := uniq[i:end]
		bufs := make([][]byte, len(chunk))
		reqIDs := make([]pagefile.PageID, len(chunk))
		upto := make([]int, len(chunk))
		for j, id := range chunk {
			u, _ := t.lastLSOf(id)
			upto[j] = u
			bufs[j] = make([]byte, (u+1)*t.cfg.PageSize)
			reqIDs[j] = id
		}
		// A leaf read is one run request; emulate a psync batch of runs.
		var err error
		at, err = t.psyncReadRuns(at, reqIDs, upto, bufs)
		if err != nil {
			return nil, at, err
		}
		for j, id := range chunk {
			l, err := t.decodePartialLeaf(id, bufs[j], upto[j]+1)
			if err != nil {
				return nil, at, err
			}
			out[id] = l
		}
	}
	at += vtime.Ticks(len(uniq)) * t.cfg.CPUPerNode
	return out, at, nil
}

// psyncReadRuns issues one psync batch where request j covers
// (upto[j]+1) consecutive pages starting at ids[j].
func (t *Tree) psyncReadRuns(at vtime.Ticks, ids []pagefile.PageID, upto []int, bufs [][]byte) (vtime.Ticks, error) {
	if len(ids) == 0 {
		return at, nil
	}
	t.stats.PsyncReads++
	var err error
	if t.cfg.DisablePsync {
		for j, id := range ids {
			j, id := j, id
			at, err = t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
				return t.pf.ReadRun(at, id, upto[j]+1, bufs[j])
			})
			if err != nil {
				return at, err
			}
		}
		return at, nil
	}
	// Split each run into its own request within one batch: the pagefile
	// psync API is page-granular, so expose runs as single big requests by
	// using the underlying file directly.
	reqs := make([]pagefile.RunReq, len(ids))
	for j, id := range ids {
		reqs[j] = pagefile.RunReq{First: id, N: upto[j] + 1, Buf: bufs[j], Write: false}
	}
	return t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
		return t.pf.PsyncRuns(at, reqs)
	})
}

// psyncWriteRuns is the write counterpart of psyncReadRuns. Forest group
// flushes defer the runs into the shared gang (one merged submission at
// the end of the group) instead of submitting here.
func (t *Tree) psyncWriteRuns(at vtime.Ticks, reqs []pagefile.RunReq) (vtime.Ticks, error) {
	if len(reqs) == 0 {
		return at, nil
	}
	if t.gang != nil && !t.cfg.DisablePsync {
		t.stats.GangedWrites++
		return at, t.gang.add(t.pf, reqs)
	}
	t.stats.PsyncWrites++
	var err error
	if t.cfg.DisablePsync {
		for _, r := range reqs {
			r := r
			at, err = t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
				return t.pf.WriteRun(at, r.First, r.N, r.Buf)
			})
			if err != nil {
				return at, err
			}
		}
		return at, nil
	}
	return t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
		return t.pf.PsyncRuns(at, reqs)
	})
}

// SearchMany is the paper's MPSearch (Algorithm 1): it resolves a set of
// search keys with one psync read per level, bounded by PioMax. Results
// are keyed by search key. The OPQ is consulted first for each key.
func (t *Tree) SearchMany(at vtime.Ticks, keys []kv.Key) (map[kv.Key]kv.Value, vtime.Ticks, error) {
	t.stats.SearchOps += int64(len(keys))
	found := make(map[kv.Key]kv.Value, len(keys))
	var rest []kv.Key
	for _, k := range keys {
		if e, ok := t.opq.Lookup(k); ok {
			t.stats.OPQShortcuts++
			if e.Op != kv.OpDelete {
				found[k] = e.Rec.Value
			}
			continue
		}
		rest = append(rest, k)
	}
	if len(rest) == 0 {
		return found, at, nil
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })

	// Descend level by level. Work items pair a node id with the key range
	// (slice of rest) routed to it.
	type item struct {
		id   pagefile.PageID
		keys []kv.Key
	}
	frontier := []item{{id: t.root, keys: rest}}
	for lvl := t.height - 1; lvl > 0; lvl-- {
		ids := make([]pagefile.PageID, len(frontier))
		for i, it := range frontier {
			ids[i] = it.id
		}
		nodes, at2, err := t.readInternalBatch(at, ids)
		if err != nil {
			return nil, at2, err
		}
		at = at2
		var next []item
		for _, it := range frontier {
			n := nodes[it.id]
			// Partition it.keys among n's children (keys are sorted).
			i := 0
			for i < len(it.keys) {
				ci := n.childIndex(it.keys[i])
				j := i + 1
				for j < len(it.keys) && n.childIndex(it.keys[j]) == ci {
					j++
				}
				next = append(next, item{id: n.children[ci], keys: it.keys[i:j]})
				i = j
			}
		}
		frontier = next
	}
	// Leaf level: read all target leaves via psync.
	leafIDs := make([]pagefile.PageID, len(frontier))
	for i, it := range frontier {
		leafIDs[i] = it.id
	}
	leaves, at, err := t.readLeafBatch(at, leafIDs)
	if err != nil {
		return nil, at, err
	}
	for _, it := range frontier {
		l := leaves[it.id]
		for _, k := range it.keys {
			if e, ok := l.lookup(k); ok && e.Op != kv.OpDelete {
				found[k] = e.Rec.Value
			}
		}
	}
	return found, at, nil
}

// RangeSearch is the paper's prange search (Section 3.1.2): internal
// levels are traversed level by level, then every leaf overlapping the
// range is read in parallel via psync. OPQ entries overlay the result.
func (t *Tree) RangeSearch(at vtime.Ticks, lo, hi kv.Key) ([]kv.Record, vtime.Ticks, error) {
	t.stats.RangeOps++
	if hi <= lo {
		return nil, at, nil
	}
	frontier := []pagefile.PageID{t.root}
	for lvl := t.height - 1; lvl > 0; lvl-- {
		nodes, at2, err := t.readInternalBatch(at, frontier)
		if err != nil {
			return nil, at2, err
		}
		at = at2
		var next []pagefile.PageID
		for _, id := range frontier {
			n := nodes[id]
			first := n.childIndex(lo)
			// hi is exclusive: the child covering hi-1 is the last needed.
			last := n.childIndex(hi - 1)
			for c := first; c <= last; c++ {
				next = append(next, n.children[c])
			}
		}
		frontier = next
	}
	leaves, at, err := t.readLeafBatch(at, frontier)
	if err != nil {
		return nil, at, err
	}
	var recs []kv.Record
	for _, id := range frontier {
		for _, r := range leaves[id].liveRecords() {
			if r.Key >= lo && r.Key < hi {
				recs = append(recs, r)
			}
		}
	}
	kv.SortRecords(recs)
	// Overlay queued updates (newer than anything on disk): replay the
	// OPQ entries in arrival order onto the disk image — the newest
	// operation per key wins, whether it inserts, updates, or deletes.
	overlay := t.opq.Range(lo, hi)
	if len(overlay) > 0 {
		state := make(map[kv.Key]kv.Value, len(recs))
		dead := make(map[kv.Key]bool)
		for _, r := range recs {
			state[r.Key] = r.Value
		}
		for _, e := range overlay {
			switch e.Op {
			case kv.OpDelete:
				delete(state, e.Rec.Key)
				dead[e.Rec.Key] = true
			case kv.OpInsert, kv.OpUpdate:
				state[e.Rec.Key] = e.Rec.Value
				delete(dead, e.Rec.Key)
			}
		}
		out := make([]kv.Record, 0, len(state))
		for k, v := range state {
			out = append(out, kv.Record{Key: k, Value: v})
		}
		kv.SortRecords(out)
		recs = out
	}
	return recs, at, nil
}

// fenceRec is a fence-key record propagated to a parent after a leaf or
// internal split (the paper's Kf).
type fenceRec struct {
	key   kv.Key
	child pagefile.PageID
}

// FlushBatch runs one batch update (Algorithm 2/3) over up to bcnt OPQ
// entries (<= 0 processes the whole queue). It is the paper's OPQ flush
// operation, bracketed by flush event logs when a WAL is attached.
func (t *Tree) FlushBatch(at vtime.Ticks, bcnt int) (vtime.Ticks, error) {
	batch := t.opq.TakeBatch(bcnt)
	if len(batch) == 0 {
		return at, nil
	}
	t.stats.Flushes++
	var err error
	var flushID uint64
	if t.log != nil {
		t.flushID++
		flushID = t.flushID
		t.log.Append(wal.Record{
			Kind:     wal.KindFlushStart,
			Relation: t.cfg.Relation,
			FlushID:  flushID,
			KeyLo:    batch[0].Rec.Key,
			KeyHi:    batch[len(batch)-1].Rec.Key,
		})
		// WAL rule: the flush-start record and all logical logs of the
		// chosen entries must be durable before any node write.
		at, err = t.forceWAL(at)
		if err != nil {
			return at, err
		}
	}
	if t.height == 1 {
		// Root is a leaf.
		fences, at2, err := t.flushLeaves(at, []leafGroup{{id: t.root, entries: batch}})
		if err != nil {
			return at2, err
		}
		at = at2
		var rootFences []fenceRec
		for _, fs := range fences {
			rootFences = append(rootFences, fs...)
		}
		at, err = t.growRoot(at, t.root, 0, rootFences)
		if err != nil {
			return at, err
		}
	} else {
		fences, at2, err := t.bupdate(at, t.root, t.height-1, batch)
		if err != nil {
			return at2, err
		}
		at = at2
		at, err = t.growRoot(at, t.root, t.height-1, fences)
		if err != nil {
			return at, err
		}
	}
	if t.log != nil {
		end := wal.Record{
			Kind:     wal.KindFlushEnd,
			Relation: t.cfg.Relation,
			FlushID:  flushID,
			KeyLo:    batch[0].Rec.Key,
			KeyHi:    batch[len(batch)-1].Rec.Key,
		}
		if t.walGang != nil {
			// Group commit: the FlushEnd must not become durable before the
			// group's data writes, which are themselves deferred into the
			// coordinator's gang. Hand the record to the coordinator, which
			// appends and gang-forces it after the data submission.
			t.walGang.deferEnd(t.log, end)
		} else {
			t.log.Append(end)
			// A retried force resubmits the whole unforced tail, so the
			// FlushEnd still reaches the device after the data writes.
			at, err = t.retryIO(at, t.log.Force)
			if err != nil {
				return at, err
			}
		}
	}
	if t.walGang == nil {
		// Inline commit: the FlushEnd is durable, so this is a commit
		// point for the quarantine rollback baseline. Group commits reach
		// theirs when the coordinator's phase-2 force lands.
		t.commitDurableMeta()
	}
	return at, nil
}

// growRoot absorbs fence records produced by the root node, growing the
// tree as many levels as necessary.
func (t *Tree) growRoot(at vtime.Ticks, oldRoot pagefile.PageID, rootLevel int, fences []fenceRec) (vtime.Ticks, error) {
	var err error
	for len(fences) > 0 {
		n := &internalNode{id: t.pf.Alloc(), level: rootLevel + 1}
		n.children = append(n.children, oldRoot)
		for _, f := range fences {
			n.keys = append(n.keys, f.key)
			n.children = append(n.children, f.child)
		}
		if len(n.keys) > maxInternalKeys(t.cfg.PageSize) {
			var up []fenceRec
			n, up, err = t.splitInternalMulti(n)
			if err != nil {
				return at, err
			}
			at, err = t.writeInternalBatch(at, []*internalNode{n})
			if err != nil {
				return at, err
			}
			oldRoot, rootLevel, fences = n.id, n.level, up
			t.root = n.id
			t.height = rootLevel + 1
			continue
		}
		at, err = t.writeInternalBatch(at, []*internalNode{n})
		if err != nil {
			return at, err
		}
		t.root = n.id
		t.height = n.level + 1
		return at, nil
	}
	return at, nil
}

// leafGroup routes a key-sorted entry slice to one leaf.
type leafGroup struct {
	id      pagefile.PageID
	entries []kv.Entry
}

// bupdate descends from node id at the given level, routing the key-sorted
// batch to children, recursing in PioMax-bounded groups, applying returned
// fence records, splitting as needed, and writing updated internal nodes
// via psync. It returns the fence records for the caller's level.
func (t *Tree) bupdate(at vtime.Ticks, id pagefile.PageID, level int, batch []kv.Entry) ([]fenceRec, vtime.Ticks, error) {
	nodes, at, err := t.readInternalBatch(at, []pagefile.PageID{id})
	if err != nil {
		return nil, at, err
	}
	n := nodes[id]

	// Partition batch among children.
	type childWork struct {
		idx     int
		id      pagefile.PageID
		entries []kv.Entry
	}
	var work []childWork
	i := 0
	for i < len(batch) {
		ci := n.childIndex(batch[i].Rec.Key)
		j := i + 1
		for j < len(batch) && n.childIndex(batch[j].Rec.Key) == ci {
			j++
		}
		work = append(work, childWork{idx: ci, id: n.children[ci], entries: batch[i:j]})
		i = j
	}

	// Process children and collect fences per child index.
	fencesByChild := make(map[int][]fenceRec)
	if level == 1 {
		// Children are leaves: flush them in PioMax-bounded groups.
		pm := t.cfg.pioMax()
		for i := 0; i < len(work); i += pm {
			end := i + pm
			if end > len(work) {
				end = len(work)
			}
			groups := make([]leafGroup, 0, end-i)
			for _, w := range work[i:end] {
				groups = append(groups, leafGroup{id: w.id, entries: w.entries})
			}
			fences, at2, err := t.flushLeaves(at, groups)
			if err != nil {
				return nil, at2, err
			}
			at = at2
			// flushLeaves returns fences tagged by group order.
			for gi, fs := range fences {
				w := work[i+gi]
				fencesByChild[w.idx] = append(fencesByChild[w.idx], fs...)
			}
		}
	} else {
		for _, w := range work {
			fs, at2, err := t.bupdate(at, w.id, level-1, w.entries)
			if err != nil {
				return nil, at2, err
			}
			at = at2
			fencesByChild[w.idx] = append(fencesByChild[w.idx], fs...)
		}
	}
	if len(fencesByChild) == 0 {
		return nil, at, nil
	}

	// Apply fence records: insert (key, child) pairs after each split
	// child, in child order.
	newKeys := make([]kv.Key, 0, len(n.keys)+len(fencesByChild))
	newChildren := make([]pagefile.PageID, 0, len(n.children)+len(fencesByChild))
	for ci, child := range n.children {
		if ci > 0 {
			newKeys = append(newKeys, n.keys[ci-1])
		}
		newChildren = append(newChildren, child)
		for _, f := range fencesByChild[ci] {
			newKeys = append(newKeys, f.key)
			newChildren = append(newChildren, f.child)
		}
	}
	n.keys, n.children = newKeys, newChildren

	var up []fenceRec
	if len(n.keys) > maxInternalKeys(t.cfg.PageSize) {
		var err error
		n, up, err = t.splitInternalMulti(n)
		if err != nil {
			return nil, at, err
		}
	}
	at, err = t.writeInternalBatch(at, []*internalNode{n})
	if err != nil {
		return nil, at, err
	}
	return up, at, nil
}

// splitInternalMulti splits an overfull internal node into chunks of at
// most the key capacity, writes the new right siblings, and returns the
// revised node plus the fence records for the parent. The separator key
// between chunks moves up, B+-tree style.
func (t *Tree) splitInternalMulti(n *internalNode) (*internalNode, []fenceRec, error) {
	maxKeys := maxInternalKeys(t.cfg.PageSize)
	half := maxKeys / 2
	var fences []fenceRec
	var rights []*internalNode
	for len(n.keys) > maxKeys {
		// Keep `half` keys in n; key[half] moves up; rest goes right.
		upKey := n.keys[half]
		right := &internalNode{id: t.pf.Alloc(), level: n.level}
		right.keys = append(right.keys, n.keys[half+1:]...)
		right.children = append(right.children, n.children[half+1:]...)
		n.keys = n.keys[:half]
		n.children = n.children[:half+1]
		fences = append(fences, fenceRec{key: upKey, child: right.id})
		rights = append(rights, right)
		// Continue splitting the right part if still overfull.
		if len(right.keys) > maxKeys {
			n2 := right
			// Swap: iterate on right as the node being reduced; n is done.
			// To keep code simple, recurse.
			sub, subF, err := t.splitInternalMulti(n2)
			if err != nil {
				return nil, nil, err
			}
			rights[len(rights)-1] = sub
			fences = append(fences, subF...)
			break
		}
	}
	// Write the new right siblings (timed, via psync with the node itself
	// written by the caller).
	for _, r := range rights {
		buf := make([]byte, t.cfg.PageSize)
		if err := r.encode(buf); err != nil {
			return nil, nil, err
		}
		t.pendingInternal = append(t.pendingInternal, pendingPage{id: r.id, buf: buf})
	}
	return n, fences, nil
}

// pendingPage is an internal-node page queued for the next psync write.
type pendingPage struct {
	id  pagefile.PageID
	buf []byte
}

// writeInternalBatch writes the given internal nodes plus any pending
// split siblings in one psync call, logging undo images first when a WAL
// is attached, and refreshes the buffer pool copies.
func (t *Tree) writeInternalBatch(at vtime.Ticks, ns []*internalNode) (vtime.Ticks, error) {
	pages := make([]pendingPage, 0, len(ns)+len(t.pendingInternal))
	for _, n := range ns {
		buf := make([]byte, t.cfg.PageSize)
		if err := n.encode(buf); err != nil {
			return at, err
		}
		pages = append(pages, pendingPage{id: n.id, buf: buf})
	}
	pages = append(pages, t.pendingInternal...)
	t.pendingInternal = t.pendingInternal[:0]

	var err error
	if t.log != nil {
		at, err = t.logUndoImages(at, pages)
		if err != nil {
			return at, err
		}
	}
	ids := make([]pagefile.PageID, len(pages))
	bufs := make([][]byte, len(pages))
	for i, p := range pages {
		ids[i] = p.id
		bufs[i] = p.buf
	}
	at, err = t.psyncWritePages(at, ids, bufs)
	if err != nil {
		return at, err
	}
	for _, p := range pages {
		t.pool.InsertClean(p.id, p.buf)
	}
	return at, nil
}

// logUndoImages appends a flush undo log (pre-image) for every page about
// to be overwritten and forces the WAL (write-ahead rule).
func (t *Tree) logUndoImages(at vtime.Ticks, pages []pendingPage) (vtime.Ticks, error) {
	for _, p := range pages {
		pre := make([]byte, t.cfg.PageSize)
		if err := t.pf.ReadPageNoCost(p.id, pre); err != nil {
			// A freshly allocated page has no pre-image worth keeping, but
			// ReadPageNoCost succeeds for any allocated page; real errors
			// propagate.
			return at, err
		}
		t.log.Append(wal.Record{
			Kind:     wal.KindFlushUndo,
			Relation: t.cfg.Relation,
			FlushID:  t.flushID,
			NodeID:   int64(p.id),
			UndoInfo: pre,
		})
	}
	return t.forceWAL(at)
}
