// Fault handling of the I/O plane: error classification, bounded retry
// with vtime-charged exponential backoff, and the shard-quarantine
// sentinel. The paper's model assumes the device either completes a
// psync gang or the machine crashes; this layer is what lets the forest
// operate through the third case — a device that returns errors and
// keeps running.
package core

import (
	"errors"

	"repro/internal/vtime"
)

// ErrShardQuarantined rejects writes addressed to a shard operating in
// read-only degraded mode after retry exhaustion or a permanent device
// failure. Reads keep being served from the shard's committed state;
// Forest.Heal re-admits the shard after a successful recovery replay.
var ErrShardQuarantined = errors.New("core: shard quarantined (read-only degraded mode)")

// IsTransientIO classifies an I/O error: transient failures (injected
// transient EIO, stuck-op timeouts, all-transient partial gangs) may
// succeed on retry; everything else — permanent device failures,
// validation errors, unknown errors — is treated as permanent, the
// conservative default.
func IsTransientIO(err error) bool {
	var t interface{ TransientIO() bool }
	return errors.As(err, &t) && t.TransientIO()
}

// IsIOFault reports whether err originated in the I/O plane — it carries
// the TransientIO marker, whatever its classification. The coordinator
// uses this to tell device failures (contained by shard quarantine) from
// validation or encoding errors (escalated to the forest damaged mark).
func IsIOFault(err error) bool {
	var t interface{ TransientIO() bool }
	return errors.As(err, &t)
}

// IsWatchdogTimeout reports whether err is (or wraps) a stuck-I/O
// watchdog firing — an op the I/O plane abandoned at its vtime deadline
// instead of hanging. Watchdog timeouts are transient (the device may
// answer a resubmission) and additionally counted on their own stat, so
// operators can tell a hanging device from an erroring one.
func IsWatchdogTimeout(err error) bool {
	var t interface{ WatchdogTimeout() bool }
	return errors.As(err, &t) && t.WatchdogTimeout()
}

// RetryPolicy bounds the transient-fault retry loop. The zero value means
// "defaults" (4 retries, 50µs base backoff doubling up to 2ms), so every
// existing Config gets resilience without opting in; set Disabled to get
// the pre-fault-plane fail-fast behaviour.
type RetryPolicy struct {
	// Disabled turns retry off entirely.
	Disabled bool
	// MaxRetries is the number of re-attempts after the first failure
	// (<= 0 means the default).
	MaxRetries int
	// BaseBackoff is the wait charged before the first retry; it doubles
	// per attempt up to MaxBackoff (0 means the defaults).
	BaseBackoff vtime.Ticks
	MaxBackoff  vtime.Ticks
	// StuckTimeout is the stuck-I/O watchdog deadline: an engine I/O that
	// would hang (a stuck fault, a device-wide stall window) longer than
	// this is abandoned at the deadline with a transient timeout error and
	// fed into the same retry/quarantine state machine as any other
	// transient fault. Zero means the default (5ms); negative disarms the
	// watchdog, letting hangs run their course as latency. The deadline is
	// armed on the I/O plane via ssdio.Space.SetStuckTimeout by whoever
	// assembles the stack (the pio facade, the scenario engine, tests) —
	// StuckDeadline resolves the effective value.
	StuckTimeout vtime.Ticks
}

// Default retry bounds: four attempts spanning ~50µs..800µs of backoff,
// comfortably above the device's GC-stall latencies but far below a
// scenario phase. The default watchdog deadline sits below faultio's
// 10ms default stuck hang, so stuck ops trip the watchdog out of the
// box.
const (
	defaultMaxRetries   = 4
	defaultBaseBackoff  = 50 * vtime.Microsecond
	defaultMaxBackoff   = 2 * vtime.Millisecond
	defaultStuckTimeout = 5 * vtime.Millisecond
)

// StuckDeadline resolves the effective stuck-I/O watchdog deadline:
// the configured StuckTimeout, the package default when zero, or 0
// (disarmed) when negative.
func (p RetryPolicy) StuckDeadline() vtime.Ticks {
	switch {
	case p.StuckTimeout < 0:
		return 0
	case p.StuckTimeout == 0:
		return defaultStuckTimeout
	default:
		return p.StuckTimeout
	}
}

// norm resolves the zero-value defaults.
func (p RetryPolicy) norm() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = defaultMaxRetries
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = defaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = defaultMaxBackoff
	}
	return p
}

// backoff returns the wait before retry attempt (0-based), exponential
// with a cap.
func (p RetryPolicy) backoff(attempt int) vtime.Ticks {
	b := p.BaseBackoff
	for i := 0; i < attempt && b < p.MaxBackoff; i++ {
		b *= 2
	}
	if b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	return b
}

// retryStats counts retry activity; Tree and Forest each embed one.
type retryStats struct {
	// IORetries counts re-attempted submissions after a transient fault.
	IORetries int64
	// IORetryBackoff is the total vtime charged waiting between attempts.
	IORetryBackoff vtime.Ticks
	// IORetriesExhausted counts transient faults that survived every
	// retry (the events that escalate to quarantine).
	IORetriesExhausted int64
	// WatchdogTimeouts counts stuck-I/O watchdog firings: hanging ops
	// abandoned at their vtime deadline (a subset of the transient
	// failures above).
	WatchdogTimeouts int64
}

func (s *retryStats) add(o retryStats) {
	s.IORetries += o.IORetries
	s.IORetryBackoff += o.IORetryBackoff
	s.IORetriesExhausted += o.IORetriesExhausted
	s.WatchdogTimeouts += o.WatchdogTimeouts
}

// countWatchdog classifies one failed attempt's error onto the watchdog
// counter.
func countWatchdog(ctr *retryStats, err error) {
	if err != nil && ctr != nil && IsWatchdogTimeout(err) {
		ctr.WatchdogTimeouts++
	}
}

// retryTimedIO runs a timed I/O operation, re-attempting transient
// failures with exponential backoff charged on the vtime clock (the
// retry loop blocks the submitter exactly as a real one would). The op
// is invoked with the virtual time at which its submission may start;
// failed submissions must not have applied contents (the ssdio fault
// plane guarantees this), so resubmission is safe. Permanent errors
// return immediately.
func retryTimedIO(pol RetryPolicy, ctr *retryStats, at vtime.Ticks, op func(vtime.Ticks) (vtime.Ticks, error)) (vtime.Ticks, error) {
	done, err := op(at)
	countWatchdog(ctr, err)
	if err == nil || pol.Disabled {
		return done, err
	}
	pol = pol.norm()
	for attempt := 0; err != nil && IsTransientIO(err) && attempt < pol.MaxRetries; attempt++ {
		wait := pol.backoff(attempt)
		if ctr != nil {
			ctr.IORetries++
			ctr.IORetryBackoff += wait
		}
		done, err = op(done + wait)
		countWatchdog(ctr, err)
	}
	if err != nil && IsTransientIO(err) && ctr != nil {
		ctr.IORetriesExhausted++
	}
	return done, err
}
