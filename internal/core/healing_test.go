package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// The healing suite drives the self-healing control plane end to end on
// the fault-matrix harness: auto-heal probing re-admits a shard once a
// transient outage clears, auto-evacuation retires a shard whose device
// never comes back, the stuck-I/O watchdog bounds hung submissions, and
// every flow is byte-deterministic and crash-consistent.

// fmDrivePolicy disables the load-based rebalancer so AutoRebalance
// polls exercise only the self-healing paths (probe, heal, evacuate).
func fmDrivePolicy() RebalancePolicy {
	return RebalancePolicy{MinOps: 1 << 40, HotFactor: 100}
}

// fmDriveUntil polls AutoRebalance on a fixed cadence until stop
// reports true, failing the test if it never does.
func fmDriveUntil(t *testing.T, fr *Forest, now vtime.Ticks, step vtime.Ticks, pol RebalancePolicy, stop func() bool) vtime.Ticks {
	t.Helper()
	for i := 0; i < 256; i++ {
		if stop() {
			return now
		}
		now += step
		_, _, _, d, err := fr.AutoRebalance(now, pol)
		if err != nil {
			t.Fatalf("AutoRebalance: %v", err)
		}
		now = vtime.Max(now, d)
	}
	t.Fatalf("condition never reached after 256 polls (now=%v)", now)
	return now
}

// runAutoHealFlow quarantines shard 0 behind a transient WAL outage and
// lets the prober re-admit it: probes inside the fault window reach the
// device (reads are never failed) but the Heal replay's force-tail
// fails, doubling the probe gap; the first probe past the window heals.
// No committed or acknowledged key may be lost.
func runAutoHealFlow(t *testing.T) (ForestStats, int64) {
	t.Helper()
	fr, space := newFaultForest(t, RetryPolicy{Disabled: true})
	at := fmBaseline(t, fr)
	fmInstall(t, space, fmt.Sprintf("transient file=wal0 until=%dns", at+10*vtime.Millisecond))

	accepted, werr, done := fmTriggerFlush(t, fr, at)
	if !errors.Is(werr, ErrShardQuarantined) {
		t.Fatalf("trigger write error = %v, want ErrShardQuarantined", werr)
	}
	if q := fr.Quarantined(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("Quarantined() = %v, want [0]", q)
	}

	now := fmDriveUntil(t, fr, done, 250*vtime.Microsecond, fmDrivePolicy(), func() bool {
		return len(fr.Quarantined()) == 0
	})
	st := fr.Stats()
	if st.AutoHeals != 1 {
		t.Fatalf("AutoHeals = %d, want 1", st.AutoHeals)
	}
	if st.HealProbes < 2 {
		t.Fatalf("HealProbes = %d, want >= 2 (failed probes inside the window, then the healing one)", st.HealProbes)
	}
	if st.Evacuations != 0 || st.EvacuatedShards != 0 {
		t.Fatalf("healed shard must not evacuate: %+v", st)
	}

	// Zero lost keys: the heal forced the WAL tail, so even the inserts
	// acknowledged into it right before the quarantine are durable.
	now = fmCheckKeys(t, fr, now, fmShardKeys(0))
	now = fmCheckKeys(t, fr, now, fmShardKeys(1))
	now = fmCheckKeys(t, fr, now, accepted)

	// The healed shard serves writes again.
	k := kv.Key(990)
	now, err := fr.Insert(now, kv.Record{Key: k, Value: fmVal(k)})
	if err != nil {
		t.Fatalf("post-heal insert: %v", err)
	}
	now = fmCheckKeys(t, fr, now, []kv.Key{k})
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return fr.Stats(), fr.Count()
}

func TestForestAutoHealTransient(t *testing.T) {
	st1, n1 := runAutoHealFlow(t)
	st2, n2 := runAutoHealFlow(t)
	if !reflect.DeepEqual(st1, st2) || n1 != n2 {
		t.Fatalf("auto-heal flow not deterministic:\n run1: %+v count=%d\n run2: %+v count=%d", st1, n1, st2, n2)
	}
}

// runAutoEvacFlow kills shard 1's WAL permanently: probes keep passing
// (reads work) but the Heal replay never does, so the evacuation
// deadline trips and AutoRebalance migrates the shard's committed range
// onto shard 0. Every committed key stays served; the acknowledged
// inserts whose redo sat in the dead WAL's unforced tail are lost —
// like unsynced writes in a crash — absent, never wrong. The evacuated
// state survives both the record path (crash before checkpoint) and the
// snapshot path (crash after checkpoint) of recovery.
func runAutoEvacFlow(t *testing.T) (ForestStats, int64) {
	t.Helper()
	fr, space := newFaultForestCfg(t, RetryPolicy{Disabled: true},
		HealPolicy{}, EvacuationPolicy{After: 2 * vtime.Millisecond})
	at := fmBaseline(t, fr)
	fmInstall(t, space, "readonly file=wal1")

	accepted, werr, done := fmTriggerFlush(t, fr, at)
	if werr != nil && !errors.Is(werr, ErrShardQuarantined) {
		t.Fatalf("trigger write error = %v", werr)
	}
	if q := fr.Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("Quarantined() = %v, want [1]", q)
	}
	// Degraded reads stay on while quarantined.
	done = fmCheckKeys(t, fr, done, fmShardKeys(1))

	now := fmDriveUntil(t, fr, done, 500*vtime.Microsecond, fmDrivePolicy(), func() bool {
		return fr.Stats().Evacuations == 1
	})
	st := fr.Stats()
	if st.EvacuatedShards != 1 || st.EvacuatedChunks < 1 {
		t.Fatalf("evacuation stats: %+v", st)
	}
	if st.AutoHeals != 0 {
		t.Fatalf("a dead device must not heal: AutoHeals = %d", st.AutoHeals)
	}
	if st.HealProbes == 0 {
		t.Fatal("the prober should have run before the evacuation deadline")
	}
	if st.QuarantinedShards != 0 {
		t.Fatalf("evacuated shard still counted quarantined: %+v", st)
	}
	if q := fr.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined() = %v after evacuation, want empty", q)
	}

	checkServed := func(now vtime.Ticks) vtime.Ticks {
		t.Helper()
		now = fmCheckKeys(t, fr, now, fmShardKeys(0))
		now = fmCheckKeys(t, fr, now, fmShardKeys(1))
		for _, k := range accepted {
			if k < fmStride {
				now = fmCheckKeys(t, fr, now, []kv.Key{k})
				continue
			}
			// Tail inserts acknowledged into the dead WAL: lost, not wrong.
			_, ok, d, err := fr.Search(now, k)
			if err != nil {
				t.Fatalf("Search(%d): %v", k, err)
			}
			if ok {
				t.Fatalf("tail key %d resurrected without its redo ever being durable", k)
			}
			now = d
		}
		// The evacuated range routes to the destination.
		if s := fr.Routing().Shard(fmStride + 999); s != 0 {
			t.Fatalf("evacuated range routes to shard %d, want 0", s)
		}
		return now
	}
	now = checkServed(now)

	// The retired shard cannot heal — its physical copies are stale.
	if _, err := fr.Heal(now, 1); err == nil {
		t.Fatal("Heal on an evacuated shard must fail")
	}

	// Record path: crash before any checkpoint; Recover replays the
	// evacuation's Start/KeyMoved/End from the destination's log.
	fr.Crash()
	_, now, err := fr.Recover(now)
	if err != nil {
		t.Fatalf("Recover (record path): %v", err)
	}
	if st := fr.Stats(); st.EvacuatedShards != 1 {
		t.Fatalf("evacuation lost across crash (record path): %+v", st)
	}
	now = checkServed(now)

	// Snapshot path: checkpoint persists the routing snapshot (evac mask
	// included), then crash again.
	now, err = fr.Checkpoint(now)
	if err != nil {
		t.Fatalf("Checkpoint with an evacuated shard: %v", err)
	}
	fr.Crash()
	_, now, err = fr.Recover(now)
	if err != nil {
		t.Fatalf("Recover (snapshot path): %v", err)
	}
	if st := fr.Stats(); st.EvacuatedShards != 1 {
		t.Fatalf("evacuation lost across crash (snapshot path): %+v", st)
	}
	now = checkServed(now)

	// Writes to the evacuated range land on the destination.
	k := fmStride + 999
	now, err = fr.Insert(now, kv.Record{Key: k, Value: fmVal(k)})
	if err != nil {
		t.Fatalf("post-evacuation insert: %v", err)
	}
	now = fmCheckKeys(t, fr, now, []kv.Key{k})
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return fr.Stats(), fr.Count()
}

func TestForestAutoEvacuatePermanent(t *testing.T) {
	st1, n1 := runAutoEvacFlow(t)
	st2, n2 := runAutoEvacFlow(t)
	if !reflect.DeepEqual(st1, st2) || n1 != n2 {
		t.Fatalf("auto-evacuation flow not deterministic:\n run1: %+v count=%d\n run2: %+v count=%d", st1, n1, st2, n2)
	}
}

// TestForestWatchdogStuckGang: a gang member that hangs far past the
// stuck deadline is abandoned by the watchdog at the deadline and
// classified transient, so the flush coordinator retries instead of
// hanging. Disarmed, the same program just waits out the hang — the
// watchdog counter stays zero either way the flush completes.
func TestForestWatchdogStuckGang(t *testing.T) {
	run := func(armed bool) ForestStats {
		fr, space := newFaultForest(t, RetryPolicy{})
		if armed {
			space.SetStuckTimeout(RetryPolicy{}.StuckDeadline())
		}
		at := fmBaseline(t, fr)
		fmInstall(t, space, fmt.Sprintf("stuck call=gang file=shard0 until=%dns", at+8*vtime.Millisecond))
		accepted, werr, done := fmTriggerFlush(t, fr, at)
		if werr != nil {
			t.Fatalf("armed=%v: flush should be retried to success, got %v", armed, werr)
		}
		if q := fr.Quarantined(); len(q) != 0 {
			t.Fatalf("armed=%v: stuck I/O must not quarantine: %v", armed, q)
		}
		if done > at+60*vtime.Millisecond {
			t.Fatalf("armed=%v: flush took unbounded time: %v -> %v", armed, at, done)
		}
		done = fmCheckKeys(t, fr, done, fmShardKeys(0))
		done = fmCheckKeys(t, fr, done, fmShardKeys(1))
		fmCheckKeys(t, fr, done, accepted)
		if err := fr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return fr.Stats()
	}
	armed := run(true)
	if armed.WatchdogTimeouts < 1 {
		t.Fatalf("armed: WatchdogTimeouts = %d, want >= 1", armed.WatchdogTimeouts)
	}
	if armed.IORetries < 1 {
		t.Fatalf("armed: the abandoned submission must be retried, IORetries = %d", armed.IORetries)
	}
	disarmed := run(false)
	if disarmed.WatchdogTimeouts != 0 {
		t.Fatalf("disarmed: WatchdogTimeouts = %d, want 0", disarmed.WatchdogTimeouts)
	}
	// Determinism of the armed flow.
	if again := run(true); !reflect.DeepEqual(armed, again) {
		t.Fatalf("watchdog flow not deterministic:\n run1: %+v\n run2: %+v", armed, again)
	}
}

// TestForestWatchdogStallPulse: a device-wide correlated stall (a GC
// pause) hangs every in-flight submission with no error at all. The
// watchdog abandons each at the deadline; retries land later in the
// pulse until the remaining stall fits under the deadline and the I/O
// rides it out. The flush completes with bounded per-submission waits
// and no quarantine.
func TestForestWatchdogStallPulse(t *testing.T) {
	fr, space := newFaultForest(t, RetryPolicy{})
	space.SetStuckTimeout(RetryPolicy{}.StuckDeadline())
	at := fmBaseline(t, fr)
	fmInstall(t, space, fmt.Sprintf("stall delay=20ms every=60ms from=%dns", at))
	accepted, werr, done := fmTriggerFlush(t, fr, at)
	if werr != nil {
		t.Fatalf("stalled flush should ride out the pulse, got %v", werr)
	}
	st := fr.Stats()
	if st.WatchdogTimeouts < 1 {
		t.Fatalf("WatchdogTimeouts = %d, want >= 1 (submissions hung mid-pulse)", st.WatchdogTimeouts)
	}
	if q := fr.Quarantined(); len(q) != 0 {
		t.Fatalf("a stall must not quarantine: %v", q)
	}
	done = fmCheckKeys(t, fr, done, fmShardKeys(0))
	done = fmCheckKeys(t, fr, done, fmShardKeys(1))
	fmCheckKeys(t, fr, done, accepted)
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHealIdempotentHealthy: Heal on a healthy shard is a no-op at zero
// cost, out-of-range shards are rejected, and nothing counts as an
// auto-heal.
func TestHealIdempotentHealthy(t *testing.T) {
	fr, _ := newFaultForest(t, RetryPolicy{})
	at := fmBaseline(t, fr)
	for i := 0; i < 2; i++ {
		done, err := fr.Heal(at, 0)
		if err != nil || done != at {
			t.Fatalf("Heal #%d on healthy shard: done=%v err=%v, want no-op", i, done, err)
		}
	}
	if _, err := fr.Heal(at, -1); err == nil {
		t.Fatal("Heal(-1) must fail")
	}
	if _, err := fr.Heal(at, fmShards); err == nil {
		t.Fatalf("Heal(%d) must fail", fmShards)
	}
	if st := fr.Stats(); st.AutoHeals != 0 || st.HealProbes != 0 {
		t.Fatalf("manual no-op heals counted as prober activity: %+v", st)
	}
}

// TestHealRefailStaysQuarantined: Heal against a still-dead device
// fails without changing the shard's state — quarantined, reads on —
// however often it is retried; once the device recovers, Heal succeeds
// and is idempotent from then on, with the forced tail fully durable.
func TestHealRefailStaysQuarantined(t *testing.T) {
	fr, space := newFaultForestCfg(t, RetryPolicy{Disabled: true},
		HealPolicy{Disabled: true}, EvacuationPolicy{Disabled: true})
	at := fmBaseline(t, fr)
	fmInstall(t, space, "readonly file=wal0")
	accepted, werr, now := fmTriggerFlush(t, fr, at)
	if !errors.Is(werr, ErrShardQuarantined) {
		t.Fatalf("trigger write error = %v, want ErrShardQuarantined", werr)
	}
	for i := 0; i < 3; i++ {
		if _, err := fr.Heal(now, 0); err == nil {
			t.Fatalf("Heal #%d against a dead device must fail", i)
		}
		if q := fr.Quarantined(); len(q) != 1 || q[0] != 0 {
			t.Fatalf("failed heal #%d changed quarantine state: %v", i, q)
		}
		now = fmCheckKeys(t, fr, now, fmShardKeys(0)) // reads stay on
	}
	space.SetInjector(nil) // the device comes back
	now2, err := fr.Heal(now, 0)
	if err != nil {
		t.Fatalf("Heal after recovery: %v", err)
	}
	if _, err := fr.Heal(now2, 0); err != nil {
		t.Fatalf("second Heal must be a no-op: %v", err)
	}
	if q := fr.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined() = %v after heal", q)
	}
	now2 = fmCheckKeys(t, fr, now2, fmShardKeys(0))
	now2 = fmCheckKeys(t, fr, now2, fmShardKeys(1))
	now2 = fmCheckKeys(t, fr, now2, accepted)
	k := kv.Key(991)
	if now2, err = fr.Insert(now2, kv.Record{Key: k, Value: fmVal(k)}); err != nil {
		t.Fatalf("post-heal insert: %v", err)
	}
	fmCheckKeys(t, fr, now2, []kv.Key{k})
	if st := fr.Stats(); st.AutoHeals != 0 {
		t.Fatalf("manual heal counted as auto-heal: %+v", st)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEvacuationCrashResumeInPlace parks an evacuation mid-stream with
// a one-tick drain budget, crashes, and recovers in place: the durable
// frontier resumes the evacuation during Recover, and the parked
// (now stale) AutoRebalance handle must not poison later polls.
func TestEvacuationCrashResumeInPlace(t *testing.T) {
	fr, space := newFaultForestCfg(t, RetryPolicy{Disabled: true},
		HealPolicy{}, EvacuationPolicy{After: 2 * vtime.Millisecond})
	at := fmBaseline(t, fr)
	fmInstall(t, space, "readonly file=wal1")
	_, werr, done := fmTriggerFlush(t, fr, at)
	if werr != nil && !errors.Is(werr, ErrShardQuarantined) {
		t.Fatalf("trigger write error = %v", werr)
	}
	pol := fmDrivePolicy()
	pol.DrainBudget = 1 // one chunk per poll: the evacuation parks in flight
	// Crash only after the second chunk streamed: its phase-1 force made
	// the first chunk's KeyMoved durable, so recovery finds a durable
	// frontier to resume from (one chunk in, the frontier record is still
	// an unforced tail and recovery would — correctly — roll back).
	now := fmDriveUntil(t, fr, done, 500*vtime.Microsecond, pol, func() bool {
		st := fr.Stats()
		return st.MigrationActive && st.EvacuatedChunks >= 2
	})
	if fr.Stats().Evacuations != 0 {
		t.Fatal("evacuation finished before the crash could land mid-stream")
	}
	fr.Crash()
	rep, now, err := fr.Recover(now)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.ResumedMigrations != 1 {
		t.Fatalf("expected the evacuation to resume from its durable frontier: %+v", rep)
	}
	st := fr.Stats()
	if st.EvacuatedShards != 1 {
		t.Fatalf("resume did not retire the source: %+v", st)
	}
	if q := fr.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined() = %v", q)
	}
	now = fmCheckKeys(t, fr, now, fmShardKeys(0))
	now = fmCheckKeys(t, fr, now, fmShardKeys(1))
	// The stale parked handle must be gone: the next poll is clean.
	if _, _, _, _, err := fr.AutoRebalance(now+vtime.Millisecond, fmDrivePolicy()); err != nil {
		t.Fatalf("poll after crash-resume: %v", err)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEvacuationCrashMatrix cuts a committed evacuation's WAL — all of
// whose records ride the destination's log — at every protocol boundary,
// rebuilds the forest from the durable images captured at quarantine
// time, and verifies Recover resolves the evacuation consistently:
// rolled back entirely with the source still live, resumed from the
// frontier, or already complete.
func TestEvacuationCrashMatrix(t *testing.T) {
	for _, cut := range []migCut{cutPreStart, cutPreKeyMoved, cutAfterChunk, cutPreEnd, cutComplete} {
		t.Run(cut.String(), func(t *testing.T) { runEvacuationCrashScenario(t, cut) })
	}
}

func runEvacuationCrashScenario(t *testing.T, cut migCut) {
	retry := RetryPolicy{Disabled: true}
	evacPol := EvacuationPolicy{After: 2 * vtime.Millisecond}
	// A roomier OPQ budget (2 pages = 120 entries per shard) keeps the
	// destination from flushing while the evacuation's 100 copies stream
	// into it: the rebuilt images below restore the quarantine-time data
	// files, so an interleaved FlushEnd in the kept log prefix would make
	// replay skip copies those images never got. Small enough that the
	// trigger's 10 shard-1 inserts still make it ripe (threshold 6).
	const evacOPQPages = 4
	fr, space, pfs, logs := newFaultForestFull(t, retry, HealPolicy{}, evacPol, evacOPQPages)
	at := fmBaseline(t, fr)
	fmInstall(t, space, "readonly file=wal1")
	accepted, werr, done := fmTriggerFlush(t, fr, at)
	if werr != nil && !errors.Is(werr, ErrShardQuarantined) {
		t.Fatalf("trigger write error = %v", werr)
	}
	if q := fr.Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("Quarantined() = %v, want [1]", q)
	}

	// Durable image at quarantine time: the group flush's shard-0 work is
	// committed, the dead WAL's tail was never forced.
	preFiles := make([][]byte, fmShards)
	pages := make([]int64, fmShards)
	for i, pf := range pfs {
		preFiles[i] = pf.File().Snapshot()
		pages[i] = pf.NumPages()
	}
	preMeta := fr.SnapshotMeta()

	fmDriveUntil(t, fr, done, 500*vtime.Microsecond, fmDrivePolicy(), func() bool {
		return fr.Stats().Evacuations == 1
	})

	// Every evacuation record rides the destination's (shard 0's) log;
	// the source's durable log still ends at the baseline.
	dstRecs, err := logs[0].Records()
	if err != nil {
		t.Fatal(err)
	}
	srcRecs, err := logs[1].Records()
	if err != nil {
		t.Fatal(err)
	}
	switch cut {
	case cutPreStart:
		dstRecs = cutBeforeKind(dstRecs, wal.KindMigrationStart, 0)
	case cutPreKeyMoved:
		// The first chunk's copies were forced in the same batch as its
		// KeyMoved; tearing the KeyMoved off leaves copies the rollback
		// must purge from the destination.
		dstRecs = cutBeforeKind(dstRecs, wal.KindKeyMoved, 0)
	case cutAfterChunk:
		dstRecs = cutAfterKind(dstRecs, wal.KindKeyMoved, 0)
	case cutPreEnd:
		dstRecs = cutBeforeKind(dstRecs, wal.KindMigrationEnd, 0)
	case cutComplete:
	}

	// Rebuild on a fresh, healthy device from the quarantine-time images
	// plus the cut logs.
	dev2 := flashsim.MustDevice(flashsim.P300())
	space2 := ssdio.NewSpace(dev2)
	cfg := smallCfg()
	cfg.OPQPages = evacOPQPages
	cfg.BufferBytes = 32 * 1024
	cfg.Retry = retry
	pfs2 := make([]*pagefile.PageFile, fmShards)
	logs2 := make([]*wal.Log, fmShards)
	for i := 0; i < fmShards; i++ {
		f, err := space2.Create(fmt.Sprintf("shard%d", i), 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		f.Restore(preFiles[i])
		if pfs2[i], err = pagefile.New(f, cfg.PageSize); err != nil {
			t.Fatal(err)
		}
		for pfs2[i].NumPages() < pages[i] {
			pfs2[i].Alloc()
		}
		wf, err := space2.Create(fmt.Sprintf("wal%d", i), 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if logs2[i], err = wal.NewLog(wf, cfg.PageSize); err != nil {
			t.Fatal(err)
		}
		recs := dstRecs
		if i == 1 {
			recs = srcRecs
		}
		for _, r := range recs {
			logs2[i].Append(r)
		}
		if _, err := logs2[i].Force(0); err != nil {
			t.Fatal(err)
		}
	}
	fr2, err := NewForest(pfs2, ForestConfig{
		Partitioner:    RangePartitioner{Bounds: []kv.Key{fmStride}},
		RipeFraction:   0.05,
		Shard:          cfg,
		Logs:           logs2,
		MigrationChunk: fmChunkSize,
		Evacuation:     evacPol,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr2.RestoreMeta(preMeta); err != nil {
		t.Fatal(err)
	}
	rep, at2, err := fr2.Recover(0)
	if err != nil {
		t.Fatal(err)
	}

	rules := fr2.Routing().Rules()
	st := fr2.Stats()
	switch cut {
	case cutPreStart:
		if rep.ResumedMigrations != 0 || rep.RolledBackMigrations != 0 || len(rules) != 0 || st.EvacuatedShards != 0 {
			t.Fatalf("preStart resolved something: %+v rules=%v evac=%d", rep, rules, st.EvacuatedShards)
		}
	case cutPreKeyMoved:
		if rep.RolledBackMigrations != 1 || len(rules) != 0 || st.EvacuatedShards != 0 {
			t.Fatalf("preKeyMoved: %+v rules=%v evac=%d", rep, rules, st.EvacuatedShards)
		}
	case cutAfterChunk, cutPreEnd:
		if rep.ResumedMigrations != 1 || len(rules) != 1 || st.EvacuatedShards != 1 {
			t.Fatalf("%v: %+v rules=%v evac=%d", cut, rep, rules, st.EvacuatedShards)
		}
	case cutComplete:
		if rep.ResumedMigrations != 0 || rep.RolledBackMigrations != 0 || len(rules) != 1 || st.EvacuatedShards != 1 {
			t.Fatalf("complete: %+v rules=%v evac=%d", rep, rules, st.EvacuatedShards)
		}
	}

	// Whatever the cut: every durable key is served exactly once — the
	// baseline of both shards plus the flush-committed shard-0 inserts —
	// and the dead WAL's tail inserts stay lost.
	now := fmCheckKeys(t, fr2, at2, fmShardKeys(0))
	now = fmCheckKeys(t, fr2, now, fmShardKeys(1))
	var durable int64
	for _, k := range accepted {
		if k < fmStride {
			now = fmCheckKeys(t, fr2, now, []kv.Key{k})
			durable++
			continue
		}
		_, ok, d, err := fr2.Search(now, k)
		if err != nil {
			t.Fatalf("Search(%d): %v", k, err)
		}
		if ok {
			t.Fatalf("tail key %d resurrected from a never-forced WAL", k)
		}
		now = d
	}
	if want := int64(2*fmPerShard) + durable; fr2.Count() != want {
		t.Fatalf("Count() = %d, want %d", fr2.Count(), want)
	}
	if len(rules) == 1 {
		// The evacuated range routes to the destination.
		if s := fr2.Routing().Shard(fmStride + 999); s != 0 {
			t.Fatalf("evacuated range routes to shard %d, want 0", s)
		}
		if _, err := fr2.Heal(now, 1); err == nil {
			t.Fatal("Heal on the evacuated source must fail")
		}
	}
	if err := fr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationStartIntoDeadShardContained reproduces the shape of the
// blackout scenario's bench-scale failure: the destination picked for a
// fresh migration has a silently dead (read-only) WAL device — cold
// since its last force, so it is still healthy when the migration is
// planned — and the MigrationStart gang force is the first write to hit
// it. The start must be contained exactly like a group flush: the
// destination quarantined via tail attribution, the refusal surfaced as
// ErrShardQuarantined rather than a raw partial-gang fault, the routing
// untouched, and the evacuation deadline must then rescue the range
// while the heal prober keeps failing on the write probe.
func TestMigrationStartIntoDeadShardContained(t *testing.T) {
	fr, space := newFaultForestCfg(t, RetryPolicy{},
		HealPolicy{}, EvacuationPolicy{After: 2 * vtime.Millisecond})
	at := fmBaseline(t, fr)
	fmInstall(t, space, "readonly file=wal1")

	epoch := fr.Stats().RoutingEpoch
	m, done, err := fr.StartMigration(at, 50, fmStride, 0, 1)
	if m != nil || err == nil {
		t.Fatalf("StartMigration into dead shard = (%v, %v), want contained refusal", m, err)
	}
	if !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("StartMigration error = %v, want ErrShardQuarantined", err)
	}
	st := fr.Stats()
	if st.MigrationAborts != 1 {
		t.Fatalf("MigrationAborts = %d, want 1", st.MigrationAborts)
	}
	if got := fr.Quarantined(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Quarantined() = %v, want [1]", got)
	}
	if st.RoutingEpoch != epoch {
		t.Fatalf("routing epoch moved %d -> %d on an aborted start", epoch, st.RoutingEpoch)
	}

	// The next AutoRebalance poll (still inside the evacuation grace
	// window) reports the standoff as "no move", never as an error, and
	// both shards' committed keys stay served: the quarantined shard is
	// degraded, not offline.
	moved, _, _, done, err := fr.AutoRebalance(done, fmDrivePolicy())
	if err != nil || moved {
		t.Fatalf("AutoRebalance after contained abort = (%v, %v), want clean no-op", moved, err)
	}
	done = fmCheckKeys(t, fr, done, fmShardKeys(0))
	done = fmCheckKeys(t, fr, done, fmShardKeys(1))

	// The evacuation deadline retires the dead shard. Reads against the
	// device still succeed, so every probe reaches it — but the heal
	// probe record forces a genuine write, which a read-only device must
	// fail: no flapping re-admission before the rescue.
	done = fmDriveUntil(t, fr, done, vtime.Millisecond, fmDrivePolicy(), func() bool {
		return fr.Stats().Evacuations == 1
	})
	st = fr.Stats()
	if st.AutoHeals != 0 {
		t.Fatalf("AutoHeals = %d, want 0: a read-only device must fail the write probe", st.AutoHeals)
	}
	if st.HealProbes == 0 {
		t.Fatal("HealProbes = 0, want probing before the evacuation deadline")
	}
	if q := fr.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined() = %v after evacuation, want none", q)
	}
	done = fmCheckKeys(t, fr, done, fmShardKeys(0))
	_ = fmCheckKeys(t, fr, done, fmShardKeys(1))
	if fr.Count() != int64(2*fmPerShard) {
		t.Fatalf("Count() = %d, want %d", fr.Count(), 2*fmPerShard)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
