package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// rebalForestCfg: 4 range-partitioned shards with roomy OPQs, so a
// migration's copies and purge tombstones stay queued (no incidental
// flushes) and the crash harness can reason about durable state exactly.
func rebalForestCfg() ForestConfig {
	c := smallCfg()
	c.OPQPages = 4 * crashShards
	c.BufferBytes = 32 * 1024
	bounds := make([]kv.Key, crashShards-1)
	for i := range bounds {
		bounds[i] = kv.Key(i+1) * crashStride
	}
	return ForestConfig{
		Partitioner:    RangePartitioner{Bounds: bounds},
		RipeFraction:   0.05,
		Shard:          c,
		MigrationChunk: 16,
	}
}

const rebalPerShard = 60

// loadRebalForest bulk-inserts rebalPerShard keys per shard and
// checkpoints, yielding a fully durable baseline.
func loadRebalForest(t *testing.T, fr *Forest) vtime.Ticks {
	t.Helper()
	var at vtime.Ticks
	var err error
	for j := 0; j < rebalPerShard; j++ {
		for s := 0; s < crashShards; s++ {
			k := phase1Key(s, j)
			at, err = fr.Insert(at, kv.Record{Key: k, Value: crashVal(k)})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	at, err = fr.Checkpoint(at)
	if err != nil {
		t.Fatal(err)
	}
	return at
}

// verifyAllKeys asserts every phase-1 key is present with its value.
func verifyAllKeys(t *testing.T, fr *Forest, at vtime.Ticks) vtime.Ticks {
	t.Helper()
	for s := 0; s < crashShards; s++ {
		for j := 0; j < rebalPerShard; j++ {
			k := phase1Key(s, j)
			v, ok, d, err := fr.Search(at, k)
			if err != nil || !ok || v != crashVal(k) {
				t.Fatalf("key %d: v=%d ok=%v err=%v", k, v, ok, err)
			}
			at = d
		}
	}
	if got, want := fr.Count(), int64(crashShards*rebalPerShard); got != want {
		t.Fatalf("count %d, want %d", got, want)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return at
}

// TestSplitShardMovesKeys: a committed split moves the upper half of a
// shard to the coldest destination and routing follows.
func TestSplitShardMovesKeys(t *testing.T) {
	fr, _, _ := newCrashForest(t, rebalForestCfg())
	at := loadRebalForest(t, fr)

	boundary := phase1Key(0, rebalPerShard/2)
	dst, at, err := fr.SplitShard(at, 0, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if dst == 0 {
		t.Fatalf("split destination is the source shard")
	}
	// Moved: shard 0's keys >= boundary. The destination tree must hold
	// them; routing must point there.
	moved := 0
	for j := rebalPerShard / 2; j < rebalPerShard; j++ {
		k := phase1Key(0, j)
		if got := fr.Routing().Shard(k); got != dst {
			t.Fatalf("key %d routes to %d, want %d", k, got, dst)
		}
		moved++
	}
	for j := 0; j < rebalPerShard/2; j++ {
		if k := phase1Key(0, j); fr.Routing().Shard(k) != 0 {
			t.Fatalf("key %d moved but is below the boundary", k)
		}
	}
	st := fr.Stats()
	if st.Migrations != 1 || st.MigratedKeys != int64(moved) {
		t.Fatalf("stats: %d migrations, %d keys; want 1, %d", st.Migrations, st.MigratedKeys, moved)
	}
	if st.MigrationActive {
		t.Fatal("migration still marked active after commit")
	}
	at = verifyAllKeys(t, fr, at)

	// Range search across the split range merges both shards, no dups.
	recs, _, err := fr.RangeSearch(at, phase1Key(0, 0), phase1Key(0, rebalPerShard))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != rebalPerShard {
		t.Fatalf("range search found %d records, want %d", len(recs), rebalPerShard)
	}
}

// TestMergeShardsAndResplit: merging empties the source; a later split
// picks the emptied shard as its destination.
func TestMergeShardsAndResplit(t *testing.T) {
	fr, _, _ := newCrashForest(t, rebalForestCfg())
	at := loadRebalForest(t, fr)

	at, err := fr.MergeShards(at, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := fr.ShardTree(1).Count(); n != 0 {
		t.Fatalf("merged-away shard still holds %d keys", n)
	}
	at = verifyAllKeys(t, fr, at)

	// Shard 0 now carries two stripes; split it at the stripe boundary —
	// the emptied shard 1 must be chosen as destination.
	dst, at, err := fr.SplitShard(at, 0, crashStride)
	if err != nil {
		t.Fatal(err)
	}
	if dst != 1 {
		t.Fatalf("split chose shard %d, want the emptied shard 1", dst)
	}
	verifyAllKeys(t, fr, at)
}

// TestOnlineSplitUnderTraffic drives inserts and searches from many
// goroutines while a split migrates a hot range, then checks nothing was
// lost or duplicated. Run under -race in CI.
func TestOnlineSplitUnderTraffic(t *testing.T) {
	fr, _, _ := newCrashForest(t, rebalForestCfg())
	at := loadRebalForest(t, fr)

	const workers = 6
	const opsPerWorker = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var now vtime.Ticks
			shard := w % crashShards
			for i := 0; i < opsPerWorker; i++ {
				k := kv.Key(shard)*crashStride + 5000 + kv.Key(w*opsPerWorker+i)
				var err error
				if i%3 == 0 {
					_, _, now, err = fr.Search(now, k)
				} else {
					now, err = fr.Insert(now, kv.Record{Key: k, Value: crashVal(k)})
				}
				if err != nil {
					panic(err)
				}
			}
		}(w)
	}
	// Concurrently split shard 0 at its stripe midpoint.
	boundary := kv.Key(5000 + workers*opsPerWorker/2)
	if _, _, err := fr.SplitShard(at, 0, boundary); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every inserted key must be found exactly once through routing.
	var now vtime.Ticks
	for w := 0; w < workers; w++ {
		shard := w % crashShards
		for i := 0; i < opsPerWorker; i++ {
			if i%3 == 0 {
				continue
			}
			k := kv.Key(shard)*crashStride + 5000 + kv.Key(w*opsPerWorker+i)
			v, ok, d, err := fr.Search(now, k)
			if err != nil || !ok || v != crashVal(k) {
				t.Fatalf("key %d after online split: v=%d ok=%v err=%v", k, v, ok, err)
			}
			now = d
		}
	}
}

// TestAutoRebalanceSplitsHotspot: a hotspot shard absorbing most traffic
// triggers an automatic split at its median key.
func TestAutoRebalanceSplitsHotspot(t *testing.T) {
	fr, _, _ := newCrashForest(t, rebalForestCfg())
	at := loadRebalForest(t, fr)

	// Prime the policy's delta baseline.
	if moved, _, _, _, err := fr.AutoRebalance(at, RebalancePolicy{MinOps: 100}); err != nil || moved {
		t.Fatalf("premature rebalance: moved=%v err=%v", moved, err)
	}
	// Hammer shard 0 only.
	var err error
	for i := 0; i < 400; i++ {
		k := phase1Key(0, i%rebalPerShard)
		_, _, at, err = fr.Search(at, k)
		if err != nil {
			t.Fatal(err)
		}
	}
	moved, from, to, at, err := fr.AutoRebalance(at, RebalancePolicy{MinOps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !moved || from != 0 {
		t.Fatalf("auto rebalance: moved=%v from=%d to=%d", moved, from, to)
	}
	if fr.Stats().Migrations != 1 {
		t.Fatalf("expected one committed migration, got %d", fr.Stats().Migrations)
	}
	verifyAllKeys(t, fr, at)
}

// migCut selects where the injected crash lands relative to a
// migration's WAL record sequence.
type migCut int

const (
	// cutPreStart: the MigrationStart force never completed — no
	// migration is visible in the durable log.
	cutPreStart migCut = iota
	// cutPreKeyMoved: the destination holds the first chunk's copies
	// (they were forced), but the source's KeyMoved record was lost — the
	// move must roll back.
	cutPreKeyMoved
	// cutMidKeyMoved: the first chunk's KeyMoved is durable but its
	// source deletes were torn off the same force — the move resumes from
	// the frontier and re-purges the stale source copies.
	cutMidKeyMoved
	// cutAfterChunk: a clean crash right after the first chunk committed.
	cutAfterChunk
	// cutPreEnd: every chunk committed, MigrationEnd lost — the resume
	// path re-commits the flip.
	cutPreEnd
	// cutComplete: the whole migration is durable.
	cutComplete
)

func (c migCut) String() string {
	return [...]string{"preStart", "preKeyMoved", "midKeyMoved", "afterChunk", "preEnd", "complete"}[c]
}

// cutBeforeKind truncates recs just before the idx-th record of the
// given kind (idx counts from 0).
func cutBeforeKind(recs []wal.Record, kind wal.Kind, idx int) []wal.Record {
	seen := 0
	for i, r := range recs {
		if r.Kind == kind {
			if seen == idx {
				return recs[:i]
			}
			seen++
		}
	}
	return recs
}

// cutAfterKind truncates recs just after the idx-th record of the kind.
func cutAfterKind(recs []wal.Record, kind wal.Kind, idx int) []wal.Record {
	seen := 0
	for i, r := range recs {
		if r.Kind == kind {
			if seen == idx {
				return recs[:i+1]
			}
			seen++
		}
	}
	return recs
}

// TestMigrationCrashMatrix cuts a split's WAL at every protocol boundary
// — before MigrationStart, around the first KeyMoved, and before
// MigrationEnd — rebuilds the forest from the durable prefix, and
// verifies Recover restores a consistent routing table with no lost or
// duplicated keys.
func TestMigrationCrashMatrix(t *testing.T) {
	for _, cut := range []migCut{cutPreStart, cutPreKeyMoved, cutMidKeyMoved, cutAfterChunk, cutPreEnd, cutComplete} {
		t.Run(cut.String(), func(t *testing.T) { runMigrationCrashScenario(t, cut) })
	}
}

func runMigrationCrashScenario(t *testing.T, cut migCut) {
	cfg := rebalForestCfg()
	fr, logs, pfs := newCrashForest(t, cfg)
	at := loadRebalForest(t, fr)

	// The durable pre-migration baseline: everything checkpointed.
	preFiles := make([][]byte, crashShards)
	pages := make([]int64, crashShards)
	for i, pf := range pfs {
		preFiles[i] = pf.File().Snapshot()
		pages[i] = pf.NumPages()
	}
	preMeta := fr.SnapshotMeta()

	// Split shard 0 at its midpoint toward some destination; drive the
	// chunks by hand so the crash can land between protocol records. With
	// 30 keys moving and 16-key chunks there are exactly 2 chunks.
	boundary := phase1Key(0, rebalPerShard/2)
	m, now, err := fr.StartMigration(at, boundary, MaxMigrationKey, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	switch cut {
	case cutPreStart, cutPreKeyMoved, cutMidKeyMoved, cutAfterChunk:
		steps = 1 // first chunk only
	default:
		for {
			done, d, err := m.Step(now)
			if err != nil {
				t.Fatal(err)
			}
			now = d
			if done {
				break
			}
		}
	}
	for i := 0; i < steps; i++ {
		if _, now, err = m.Step(now); err != nil {
			t.Fatal(err)
		}
	}

	// Capture the durable log images and cut them per the scenario.
	srcRecs, err := logs[0].Records()
	if err != nil {
		t.Fatal(err)
	}
	dstRecs, err := logs[1].Records()
	if err != nil {
		t.Fatal(err)
	}
	switch cut {
	case cutPreStart:
		srcRecs = cutBeforeKind(srcRecs, wal.KindMigrationStart, 0)
		dstRecs = cutBeforeKind(dstRecs, wal.KindMigrationStart, 0)
	case cutPreKeyMoved:
		srcRecs = cutBeforeKind(srcRecs, wal.KindKeyMoved, 0)
	case cutMidKeyMoved:
		// KeyMoved durable, the same force's trailing deletes torn off.
		srcRecs = cutAfterKind(srcRecs, wal.KindKeyMoved, 0)
	case cutAfterChunk:
		// Everything the first chunk forced survives.
	case cutPreEnd:
		srcRecs = cutBeforeKind(srcRecs, wal.KindMigrationEnd, 0)
		dstRecs = cutBeforeKind(dstRecs, wal.KindMigrationEnd, 0)
	case cutComplete:
	}

	// Rebuild on a fresh device: pre-migration data files (no flush ran
	// during the migration — the copies and tombstones were still queued)
	// plus the cut logs, then recover.
	dev2 := flashsim.MustDevice(flashsim.P300())
	space2 := ssdio.NewSpace(dev2)
	pfs2 := make([]*pagefile.PageFile, crashShards)
	logs2 := make([]*wal.Log, crashShards)
	for i := 0; i < crashShards; i++ {
		f, err := space2.Create(fmt.Sprintf("shard%d", i), 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		f.Restore(preFiles[i])
		pfs2[i], err = pagefile.New(f, cfg.Shard.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		for pfs2[i].NumPages() < pages[i] {
			pfs2[i].Alloc()
		}
		wf, err := space2.Create(fmt.Sprintf("wal%d", i), 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		logs2[i], err = wal.NewLog(wf, cfg.Shard.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		recs := []wal.Record(nil)
		switch i {
		case 0:
			recs = srcRecs
		case 1:
			recs = dstRecs
		default:
			if recs, err = logs[i].Records(); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range recs {
			logs2[i].Append(r)
		}
		if _, err := logs2[i].Force(0); err != nil {
			t.Fatal(err)
		}
	}
	cfg2 := rebalForestCfg()
	cfg2.Logs = logs2
	fr2, err := NewForest(pfs2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr2.RestoreMeta(preMeta); err != nil {
		t.Fatal(err)
	}
	rep, at2, err := fr2.Recover(0)
	if err != nil {
		t.Fatal(err)
	}

	// Shape of the resolution per scenario.
	rules := fr2.Routing().Rules()
	switch cut {
	case cutPreStart:
		if rep.ResumedMigrations != 0 || rep.RolledBackMigrations != 0 || len(rules) != 0 {
			t.Fatalf("preStart resolved something: %+v rules=%v", rep, rules)
		}
	case cutPreKeyMoved:
		if rep.RolledBackMigrations != 1 || len(rules) != 0 {
			t.Fatalf("preKeyMoved: %+v rules=%v", rep, rules)
		}
	case cutMidKeyMoved, cutAfterChunk, cutPreEnd:
		if rep.ResumedMigrations != 1 || len(rules) != 1 {
			t.Fatalf("%v: %+v rules=%v", cut, rep, rules)
		}
	case cutComplete:
		if rep.ResumedMigrations != 0 || rep.RolledBackMigrations != 0 || len(rules) != 1 {
			t.Fatalf("complete: %+v rules=%v", rep, rules)
		}
	}
	// Whatever the cut, the recovered forest holds exactly the loaded
	// keys — none lost, none duplicated — and routing resolves them.
	verifyAllKeys(t, fr2, at2)

	// Resolved scenarios must place the moved range on the destination.
	if len(rules) == 1 {
		for j := rebalPerShard / 2; j < rebalPerShard; j++ {
			k := phase1Key(0, j)
			if got := fr2.Routing().Shard(k); got != 1 {
				t.Fatalf("key %d routes to %d after recovery, want 1", k, got)
			}
		}
		if n := fr2.ShardTree(0).Count(); n != rebalPerShard/2 {
			t.Fatalf("source still holds %d keys, want %d", n, rebalPerShard/2)
		}
	}
}

// TestMigrationRecoverInPlace crashes mid-migration without rebuilding:
// the volatile frontier is lost, Recover resumes from the durable one.
func TestMigrationRecoverInPlace(t *testing.T) {
	fr, _, _ := newCrashForest(t, rebalForestCfg())
	at := loadRebalForest(t, fr)

	boundary := phase1Key(0, rebalPerShard/2)
	m, now, err := fr.StartMigration(at, boundary, MaxMigrationKey, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, now, err = m.Step(now); err != nil { // one chunk committed
		t.Fatal(err)
	}
	fr.Crash()
	rep, at2, err := fr.Recover(now)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumedMigrations != 1 {
		t.Fatalf("expected an in-place resume, got %+v", rep)
	}
	verifyAllKeys(t, fr, at2)
	if len(fr.Routing().Rules()) != 1 {
		t.Fatalf("routing rules after resume: %v", fr.Routing().Rules())
	}
}

// TestRebalancingPartitionerRangeShards covers the wrapper's RangeShards
// edge cases over both base partitioners: empty range, lo==hi,
// boundary-equal keys, and rule/migration widening.
func TestRebalancingPartitionerRangeShards(t *testing.T) {
	rng := RangePartitioner{Bounds: []kv.Key{100, 200}}
	p, err := NewRebalancingPartitioner(rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.RangeShards(50, 50); got != nil {
		t.Fatalf("lo==hi must be empty, got %v", got)
	}
	if got := p.RangeShards(80, 50); got != nil {
		t.Fatalf("inverted range must be empty, got %v", got)
	}
	// A boundary-equal lo lands in the upper shard; hi is exclusive, so
	// [100, 200) touches only shard 1.
	if got := p.RangeShards(100, 200); len(got) != 1 || got[0] != 1 {
		t.Fatalf("[100,200) = %v, want [1]", got)
	}
	if got := p.RangeShards(99, 101); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("[99,101) = %v, want [0 1]", got)
	}
	// A committed rule widens overlapping ranges to its target.
	p.cur.Store(&routing{base: rng, slots: 3,
		rules: []MoveRule{{Lo: 150, Hi: 180, From: 1, To: 2, ID: 1}}})
	if got := p.RangeShards(150, 160); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ruled range = %v, want [1 2]", got)
	}
	if got := p.Shard(155); got != 2 {
		t.Fatalf("ruled key routes to %d, want 2", got)
	}
	if got := p.Shard(180); got != 1 {
		t.Fatalf("rule hi is exclusive; key 180 routes to %d, want 1", got)
	}
	// An in-flight migration widens too, but only routes below the
	// frontier.
	p.cur.Store(&routing{base: rng, slots: 3,
		mig: &migRoute{id: 2, lo: 0, hi: 100, src: 0, dst: 2, frontier: 40}})
	if got := p.RangeShards(0, 100); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("migrating range = %v, want [0 2]", got)
	}
	if got := p.Shard(39); got != 2 {
		t.Fatalf("below-frontier key routes to %d, want 2", got)
	}
	if got := p.Shard(40); got != 0 {
		t.Fatalf("frontier key routes to %d, want 0 (frontier exclusive)", got)
	}

	// Hash base: a range never prunes, and the wrapper passes it through.
	hp, err := NewRebalancingPartitioner(HashPartitioner{N: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := hp.RangeShards(7, 7); got != nil {
		t.Fatalf("hash lo==hi must be empty, got %v", got)
	}
	if got := hp.RangeShards(7, 8); len(got) != 3 {
		t.Fatalf("hash single-key range = %v, want all shards", got)
	}
}

// TestValidateRebalancingPartitioner covers ValidatePartitioner on the
// wrapper: base validation still applies and bad rules are rejected.
func TestValidateRebalancingPartitioner(t *testing.T) {
	good, err := NewRebalancingPartitioner(RangePartitioner{Bounds: []kv.Key{10}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePartitioner(good, 2); err != nil {
		t.Fatalf("valid wrapper rejected: %v", err)
	}
	if err := ValidatePartitioner(good, 3); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	if _, err := NewRebalancingPartitioner(HashPartitioner{N: 2}, 3); err == nil {
		t.Fatal("base/slot mismatch accepted")
	}
	if _, err := NewRebalancingPartitioner(good, 2); err == nil {
		t.Fatal("nested wrapper accepted")
	}
	bad, _ := NewRebalancingPartitioner(RangePartitioner{Bounds: []kv.Key{10}}, 2)
	bad.cur.Store(&routing{base: RangePartitioner{Bounds: []kv.Key{10}}, slots: 2,
		rules: []MoveRule{{Lo: 5, Hi: 5, From: 0, To: 1}}})
	if err := ValidatePartitioner(bad, 2); err == nil {
		t.Fatal("empty-range rule accepted")
	}
	bad.cur.Store(&routing{base: RangePartitioner{Bounds: []kv.Key{10}}, slots: 2,
		rules: []MoveRule{{Lo: 0, Hi: 5, From: 0, To: 7}}})
	if err := ValidatePartitioner(bad, 2); err == nil {
		t.Fatal("out-of-range rule target accepted")
	}
	// The unsorted-bounds check still fires through the wrapper.
	wrapped, _ := NewRebalancingPartitioner(RangePartitioner{Bounds: []kv.Key{20, 10}}, 3)
	if err := ValidatePartitioner(wrapped, 3); err == nil {
		t.Fatal("unsorted base bounds accepted through the wrapper")
	}
}

// TestRoutingMetaRoundTrip checks the snapshot encoding recovery relies
// on.
func TestRoutingMetaRoundTrip(t *testing.T) {
	in := RoutingMeta{Epoch: 7, MaxCommitted: 3, Rules: []MoveRule{
		{Lo: 10, Hi: 20, From: 0, To: 2, ID: 2},
		{Lo: 0, Hi: MaxMigrationKey, From: 3, To: 1, ID: 3},
	}}
	out, err := decodeRoutingMeta(encodeRoutingMeta(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != in.Epoch || out.MaxCommitted != in.MaxCommitted || len(out.Rules) != len(in.Rules) {
		t.Fatalf("round trip: %+v", out)
	}
	for i := range in.Rules {
		if out.Rules[i] != in.Rules[i] {
			t.Fatalf("rule %d: %+v != %+v", i, out.Rules[i], in.Rules[i])
		}
	}
	if _, err := decodeRoutingMeta([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
}

// TestCheckpointTruncatesLogs: the forest checkpoint truncates each
// log's head past the dead prefix, recovery still works, and truncation
// is skipped while a migration is in flight.
func TestCheckpointTruncatesLogs(t *testing.T) {
	fr, logs, _ := newCrashForest(t, rebalForestCfg())
	at := loadRebalForest(t, fr) // includes a checkpoint

	st := fr.Stats()
	if st.LogTruncatedBytes == 0 {
		t.Fatal("checkpoint truncated nothing")
	}
	for i, l := range logs {
		recs, err := l.Records()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 || recs[0].Kind != wal.KindCheckpoint {
			t.Fatalf("log %d head after truncation starts with %v, want the checkpoint", i, recs[:min(len(recs), 3)])
		}
	}
	// Post-truncation crash recovery restores the checkpointed state.
	var err error
	k := phase1Key(0, 0)
	at, err = fr.Insert(at, kv.Record{Key: k + 500000, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	at, err = fr.Sync(at)
	if err != nil {
		t.Fatal(err)
	}
	pre := fr.Count()
	fr.Crash()
	if _, _, err := fr.Recover(at); err != nil {
		t.Fatal(err)
	}
	if got := fr.Count(); got != pre {
		t.Fatalf("count %d after post-truncation recovery, want %d", got, pre)
	}

	// While a migration is in flight, a checkpoint must keep its records.
	trunc := fr.Stats().LogTruncatedBytes
	m, now, err := fr.StartMigration(at, phase1Key(0, rebalPerShard/2), MaxMigrationKey, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, now, err = m.Step(now); err != nil {
		t.Fatal(err)
	}
	if now, err = fr.Checkpoint(now); err != nil {
		t.Fatal(err)
	}
	if got := fr.Stats().LogTruncatedBytes; got != trunc {
		t.Fatalf("checkpoint truncated %d bytes during a migration", got-trunc)
	}
	recs, err := logs[0].Records()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Kind == wal.KindMigrationStart {
			found = true
		}
	}
	if !found {
		t.Fatal("MigrationStart truncated away mid-migration")
	}
	// Finish the move; the next checkpoint truncates again.
	if now, err = m.Drain(now); err != nil {
		t.Fatal(err)
	}
	if _, err = fr.Checkpoint(now); err != nil {
		t.Fatal(err)
	}
	if got := fr.Stats().LogTruncatedBytes; got <= trunc {
		t.Fatalf("post-migration checkpoint truncated nothing (still %d)", got)
	}
}

// TestMigrationSharedLog: a migration on a forest whose shards multiplex
// ONE log — Start/KeyMoved/End records interleave with both shards'
// redo streams — commits, crashes mid-move, and recovers by resume.
func TestMigrationSharedLog(t *testing.T) {
	cfg := rebalForestCfg()
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	pfs := make([]*pagefile.PageFile, crashShards)
	for i := range pfs {
		f, err := space.Create(fmt.Sprintf("shard%d", i), 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		pfs[i], err = pagefile.New(f, cfg.Shard.PageSize)
		if err != nil {
			t.Fatal(err)
		}
	}
	wf, err := space.Create("wal", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := wal.NewLog(wf, cfg.Shard.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logs = []*wal.Log{shared}
	fr, err := NewForest(pfs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := loadRebalForest(t, fr)

	// A committed split survives an in-place crash+recover.
	boundary := phase1Key(0, rebalPerShard/2)
	dst, at, err := fr.SplitShard(at, 0, boundary)
	if err != nil {
		t.Fatal(err)
	}
	fr.Crash()
	if _, at, err = fr.Recover(at); err != nil {
		t.Fatal(err)
	}
	if got := fr.Routing().Shard(phase1Key(0, rebalPerShard-1)); got != dst {
		t.Fatalf("split key routes to %d after shared-log recovery, want %d", got, dst)
	}
	at = verifyAllKeys(t, fr, at)

	// Crash mid-merge (one chunk durable) and resume through the shared
	// log.
	m, now, err := fr.StartMigration(at, 0, MaxMigrationKey, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, now, err = m.Step(now); err != nil {
		t.Fatal(err)
	}
	fr.Crash()
	rep, at2, err := fr.Recover(now)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumedMigrations != 1 {
		t.Fatalf("shared-log resume: %+v", rep)
	}
	verifyAllKeys(t, fr, at2)
}

// TestMigrationHashBase: migrating a key range out of a hash-partitioned
// shard, where the destination natively holds its own keys inside the
// migrating range — the recovery purge must not touch them.
func TestMigrationHashBase(t *testing.T) {
	cfg := rebalForestCfg()
	cfg.Partitioner = HashPartitioner{N: crashShards}
	fr, _, _ := newCrashForest(t, cfg)
	const n = 400
	var at vtime.Ticks
	var err error
	for k := kv.Key(1); k <= n; k++ {
		at, err = fr.Insert(at, kv.Record{Key: k, Value: crashVal(k)})
		if err != nil {
			t.Fatal(err)
		}
	}
	at, err = fr.Checkpoint(at)
	if err != nil {
		t.Fatal(err)
	}

	// Move shard 2's slice of [1, n/2) onto shard 3; crash after one
	// chunk; recovery resumes and must keep shard 3's native keys.
	m, now, err := fr.StartMigration(at, 1, n/2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, now, err = m.Step(now); err != nil {
		t.Fatal(err)
	}
	fr.Crash()
	rep, at2, err := fr.Recover(now)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumedMigrations != 1 {
		t.Fatalf("hash-base resume: %+v", rep)
	}
	for k := kv.Key(1); k <= n; k++ {
		v, ok, d, err := fr.Search(at2, k)
		if err != nil || !ok || v != crashVal(k) {
			t.Fatalf("key %d after hash-base migration recovery: %v %v %v", k, v, ok, err)
		}
		at2 = d
	}
	if got := fr.Count(); got != n {
		t.Fatalf("count %d, want %d", got, n)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Migrated keys route to 3; shard 2 no longer owns anything in the
	// moved range.
	base := HashPartitioner{N: crashShards}
	for k := kv.Key(1); k < n/2; k++ {
		if base.Shard(k) == 2 {
			if got := fr.Routing().Shard(k); got != 3 {
				t.Fatalf("moved key %d routes to %d, want 3", k, got)
			}
		}
	}
}

// TestStaleMigrationHandleAfterCrash: a Migration handle that survived a
// crash (whose Recover resolved the move) must error on Step, not panic
// or corrupt routing.
func TestStaleMigrationHandleAfterCrash(t *testing.T) {
	fr, _, _ := newCrashForest(t, rebalForestCfg())
	at := loadRebalForest(t, fr)
	m, now, err := fr.StartMigration(at, phase1Key(0, rebalPerShard/2), MaxMigrationKey, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, now, err = m.Step(now); err != nil {
		t.Fatal(err)
	}
	fr.Crash()
	if _, at, err = fr.Recover(now); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Step(at); err == nil {
		t.Fatal("stale handle Step succeeded after crash+recover")
	}
	if _, err := m.Drain(at); err == nil {
		t.Fatal("stale handle Drain succeeded after crash+recover")
	}
	// The resolved forest keeps serving and can start a fresh migration.
	at = verifyAllKeys(t, fr, at)
	if _, err = fr.MergeShards(at, 0, 1); err != nil {
		t.Fatal(err)
	}
}
