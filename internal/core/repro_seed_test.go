package core

import (
	"math/rand"
	"testing"

	"repro/internal/kv"
	"repro/internal/vtime"
)

// TestReproSeedRangeModel pins the quick-found regression seed for the
// prange-vs-model property.
func TestReproSeedRangeModel(t *testing.T) {
	seed := int64(-730848311996065736)
	cfg := smallCfg()
	cfg.BCnt = 32
	tr := newQuickTree(cfg)
	if tr == nil {
		t.Fatal("setup failed")
	}
	rng := rand.New(rand.NewSource(seed))
	model := make(map[kv.Key]kv.Value)
	var at vtime.Ticks
	var err error
	for i := 0; i < 800; i++ {
		k := uint64(rng.Intn(300))
		if rng.Intn(4) == 0 {
			if _, ok := model[k]; ok {
				at, err = tr.Delete(at, k)
				delete(model, k)
			}
		} else {
			at, err = tr.Insert(at, kv.Record{Key: k, Value: uint64(i)})
			model[k] = uint64(i)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	lo := uint64(rng.Intn(150))
	hi := lo + uint64(rng.Intn(150)) + 1
	got, _, err := tr.RangeSearch(at, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for k := range model {
		if k >= lo && k < hi {
			want++
		}
	}
	if len(got) != want {
		// Diagnose: which keys diverge?
		gotSet := map[kv.Key]kv.Value{}
		for _, r := range got {
			gotSet[r.Key] = r.Value
		}
		for k, v := range model {
			if k >= lo && k < hi {
				if gv, ok := gotSet[k]; !ok {
					sv, sok, _, _ := tr.Search(0, k)
					t.Logf("missing key %d (model v=%d); point search = %d,%v", k, v, sv, sok)
				} else if gv != v {
					t.Logf("key %d value %d, want %d", k, gv, v)
				}
			}
		}
		for k := range gotSet {
			if _, ok := model[k]; !ok {
				t.Logf("extra key %d", k)
			}
		}
		t.Fatalf("range [%d,%d): got %d want %d (opq=%d)", lo, hi, len(got), want, tr.OPQLen())
	}
	for i := range got {
		if got[i].Value != model[got[i].Key] {
			t.Fatalf("value mismatch at %d", got[i].Key)
		}
	}
}
