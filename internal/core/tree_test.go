package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// newTestTree builds a PIO B-tree on a fresh simulated device.
func newTestTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	f, err := space.Create("idx", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pagefile.New(f, cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func smallCfg() Config {
	return Config{
		PageSize:    1024,
		LeafSegs:    4,
		OPQPages:    1,
		PioMax:      8,
		SPeriod:     16,
		BCnt:        0, // flush everything
		BufferBytes: 16 * 1024,
	}
}

func TestEmptyTreeSearch(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	_, found, _, err := tr.Search(0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("found key in empty tree")
	}
}

func TestInsertSearchViaOPQ(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	at, err := tr.Insert(0, kv.Record{Key: 7, Value: 70})
	if err != nil {
		t.Fatal(err)
	}
	v, found, _, err := tr.Search(at, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !found || v != 70 {
		t.Fatalf("Search(7) = %d,%v", v, found)
	}
	if tr.Stats().OPQShortcuts == 0 {
		t.Fatal("search did not hit the OPQ")
	}
}

func TestDeleteViaOPQMasksLeafEntry(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	var at, prev vtime.Ticks
	_ = prev
	a, err := tr.Insert(0, kv.Record{Key: 5, Value: 50})
	if err != nil {
		t.Fatal(err)
	}
	a, err = tr.FlushBatch(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Key now on disk only.
	v, found, a, err := tr.Search(a, 5)
	if err != nil || !found || v != 50 {
		t.Fatalf("after flush: %d,%v,%v", v, found, err)
	}
	a, err = tr.Delete(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, found, a, err = tr.Search(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("deleted key still found (OPQ delete not masking)")
	}
	// And after flushing the delete too.
	a, err = tr.FlushBatch(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, found, _, err = tr.Search(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("deleted key found after flush")
	}
	_ = at
}

func TestManyInsertsWithFlushes(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	rng := rand.New(rand.NewSource(1))
	keys := rng.Perm(5000)
	var at vtime.Ticks
	var err error
	for _, k := range keys {
		at, err = tr.Insert(at, kv.Record{Key: uint64(k)*2 + 1, Value: uint64(k)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err = tr.Checkpoint(at); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 5000 {
		t.Fatalf("count = %d, want 5000", tr.Count())
	}
	// Every key must be findable; absent keys must not be.
	for i := 0; i < 5000; i += 97 {
		v, found, _, err := tr.Search(0, uint64(i)*2+1)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != uint64(i) {
			t.Fatalf("Search(%d) = %d,%v", i*2+1, v, found)
		}
		_, found, _, err = tr.Search(0, uint64(i)*2)
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatalf("found absent key %d", i*2)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("tree did not grow: height %d", tr.Height())
	}
	if tr.Stats().Flushes == 0 || tr.Stats().LeafSplits == 0 {
		t.Fatalf("stats: %+v", tr.Stats())
	}
}

func TestBulkLoadAndSearch(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	recs := seqRecords(20000)
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 20000 {
		t.Fatalf("count = %d", tr.Count())
	}
	for _, i := range []int{0, 1, 999, 10000, 19999} {
		v, found, _, err := tr.Search(0, recs[i].Key)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != recs[i].Value {
			t.Fatalf("Search(%d) = %d,%v want %d", recs[i].Key, v, found, recs[i].Value)
		}
	}
}

func seqRecords(n int) []kv.Record {
	recs := make([]kv.Record, n)
	for i := range recs {
		recs[i] = kv.Record{Key: uint64(i)*10 + 5, Value: uint64(i)}
	}
	return recs
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	if err := tr.BulkLoad([]kv.Record{{Key: 2}, {Key: 1}}); err == nil {
		t.Fatal("unsorted bulk load accepted")
	}
	if err := tr.BulkLoad([]kv.Record{{Key: 2}, {Key: 2}}); err == nil {
		t.Fatal("duplicate bulk load accepted")
	}
}

func TestUpdateChangesValue(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	recs := seqRecords(1000)
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	at, err := tr.Update(0, kv.Record{Key: recs[500].Key, Value: 9999})
	if err != nil {
		t.Fatal(err)
	}
	v, found, at, err := tr.Search(at, recs[500].Key)
	if err != nil || !found || v != 9999 {
		t.Fatalf("after update: %d,%v,%v", v, found, err)
	}
	at, err = tr.FlushBatch(at, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, found, _, err = tr.Search(at, recs[500].Key)
	if err != nil || !found || v != 9999 {
		t.Fatalf("after flush: %d,%v,%v", v, found, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchMany(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	recs := seqRecords(10000)
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	keys := make([]kv.Key, 0, 200)
	want := make(map[kv.Key]kv.Value)
	for i := 0; i < 200; i++ {
		r := recs[i*50]
		keys = append(keys, r.Key)
		want[r.Key] = r.Value
	}
	keys = append(keys, 1) // absent
	got, _, err := tr.SearchMany(0, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("SearchMany[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestSearchManyUsesFewerPsyncCallsThanKeys(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	if err := tr.BulkLoad(seqRecords(30000)); err != nil {
		t.Fatal(err)
	}
	before := tr.Stats().PsyncReads
	keys := make([]kv.Key, 64)
	for i := range keys {
		keys[i] = uint64(i*400)*10 + 5
	}
	if _, _, err := tr.SearchMany(0, keys); err != nil {
		t.Fatal(err)
	}
	calls := tr.Stats().PsyncReads - before
	// MPSearch should need about one psync call per level, far fewer than
	// one per key.
	if calls > int64(tr.Height()*4) {
		t.Fatalf("MPSearch used %d psync calls for %d keys (height %d)", calls, len(keys), tr.Height())
	}
}

func TestRangeSearch(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	recs := seqRecords(10000)
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	lo, hi := recs[1000].Key, recs[2000].Key
	got, _, err := tr.RangeSearch(0, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("range returned %d records, want 1000", len(got))
	}
	for i, r := range got {
		if r != recs[1000+i] {
			t.Fatalf("range[%d] = %+v, want %+v", i, r, recs[1000+i])
		}
	}
}

func TestRangeSearchOverlaysOPQ(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	recs := seqRecords(5000)
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	// Queue a delete, an update, and a brand-new insert inside the range.
	at, err := tr.Delete(0, recs[100].Key)
	if err != nil {
		t.Fatal(err)
	}
	at, err = tr.Update(at, kv.Record{Key: recs[101].Key, Value: 777})
	if err != nil {
		t.Fatal(err)
	}
	newKey := recs[101].Key + 1 // between 101 and 102 (keys are 10 apart)
	at, err = tr.Insert(at, kv.Record{Key: newKey, Value: 888})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tr.RangeSearch(at, recs[100].Key, recs[103].Key)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: 101 (updated), newKey, 102.
	if len(got) != 3 {
		t.Fatalf("range = %+v, want 3 records", got)
	}
	if got[0].Key != recs[101].Key || got[0].Value != 777 {
		t.Fatalf("got[0] = %+v", got[0])
	}
	if got[1].Key != newKey || got[1].Value != 888 {
		t.Fatalf("got[1] = %+v", got[1])
	}
	if got[2].Key != recs[102].Key {
		t.Fatalf("got[2] = %+v", got[2])
	}
}

func TestMixedWorkloadAgainstModel(t *testing.T) {
	cfg := smallCfg()
	cfg.BCnt = 50
	tr := newTestTree(t, cfg)
	model := make(map[kv.Key]kv.Value)
	rng := rand.New(rand.NewSource(7))
	var at vtime.Ticks
	var err error
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert/overwrite
			v := uint64(i)
			if _, exists := model[k]; exists {
				at, err = tr.Update(at, kv.Record{Key: k, Value: v})
			} else {
				at, err = tr.Insert(at, kv.Record{Key: k, Value: v})
			}
			model[k] = v
		case 6, 7: // delete
			if _, exists := model[k]; exists {
				at, err = tr.Delete(at, k)
				delete(model, k)
			}
		default: // search
			v, found, at2, serr := tr.Search(at, k)
			at, err = at2, serr
			wantV, wantFound := model[k]
			if serr == nil && (found != wantFound || (found && v != wantV)) {
				t.Fatalf("op %d: Search(%d) = %d,%v want %d,%v", i, k, v, found, wantV, wantFound)
			}
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if _, err := tr.Checkpoint(at); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != int64(len(model)) {
		t.Fatalf("count %d != model %d", tr.Count(), len(model))
	}
	// Full verification against the model.
	for k, v := range model {
		got, found, _, err := tr.Search(0, k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || got != v {
			t.Fatalf("final Search(%d) = %d,%v want %d,true", k, got, found, v)
		}
	}
}

func TestRangeAfterMixedOps(t *testing.T) {
	cfg := smallCfg()
	cfg.BCnt = 64
	tr := newTestTree(t, cfg)
	model := make(map[kv.Key]kv.Value)
	rng := rand.New(rand.NewSource(11))
	var at vtime.Ticks
	var err error
	for i := 0; i < 8000; i++ {
		k := uint64(rng.Intn(2000))
		if rng.Intn(4) == 0 {
			at, err = tr.Delete(at, k)
			delete(model, k)
		} else {
			at, err = tr.Insert(at, kv.Record{Key: k, Value: uint64(i)})
			model[k] = uint64(i)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tr.RangeSearch(at, 500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for k := range model {
		if k >= 500 && k < 1500 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range size %d, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key >= got[i].Key {
			t.Fatalf("range unsorted at %d", i)
		}
	}
	for _, r := range got {
		if model[r.Key] != r.Value {
			t.Fatalf("range[%d] value %d, want %d", r.Key, r.Value, model[r.Key])
		}
	}
}

func TestLeafSegmentEncodeDecodeRoundTrip(t *testing.T) {
	f := func(keys []uint64, sorted uint8) bool {
		if len(keys) > 100 {
			keys = keys[:100]
		}
		const ps = 1024
		l := &leafNode{id: 0, segs: 4, next: pagefile.InvalidPage}
		for i, k := range keys {
			op := kv.OpInsert
			if i%5 == 4 {
				op = kv.OpDelete
			}
			l.entries = append(l.entries, kv.Entry{Rec: kv.Record{Key: k, Value: k * 3}, Op: op})
		}
		if int(sorted) <= len(l.entries) {
			l.sorted = int(sorted)
		}
		buf := make([]byte, 4*ps)
		if err := l.encodeAll(buf, ps); err != nil {
			return len(l.entries) > leafCap(ps, 4) // overflow is the only allowed failure
		}
		got, err := decodeLeaf(0, buf, ps, 4)
		if err != nil {
			return false
		}
		if got.sorted != l.sorted || got.next != l.next || len(got.entries) != len(l.entries) {
			return false
		}
		for i := range got.entries {
			if got.entries[i] != l.entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInternalNodeEncodeDecodeRoundTrip(t *testing.T) {
	f := func(keys []uint64) bool {
		const ps = 1024
		if len(keys) == 0 {
			return true
		}
		if len(keys) > maxInternalKeys(ps) {
			keys = keys[:maxInternalKeys(ps)]
		}
		// Internal keys must be sorted and unique for childIndex sanity,
		// but encode/decode itself has no such requirement.
		n := &internalNode{id: 3, level: 2, keys: keys}
		for i := 0; i <= len(keys); i++ {
			n.children = append(n.children, pagefile.PageID(i*7))
		}
		buf := make([]byte, ps)
		if err := n.encode(buf); err != nil {
			return false
		}
		got, err := decodeInternal(3, buf)
		if err != nil || got.level != 2 || len(got.keys) != len(keys) {
			return false
		}
		for i := range keys {
			if got.keys[i] != keys[i] {
				return false
			}
		}
		for i := range n.children {
			if got.children[i] != n.children[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkCancelsInsertDeletePairs(t *testing.T) {
	l := &leafNode{id: 0, segs: 2}
	l.entries = []kv.Entry{
		{Rec: kv.Record{Key: 1, Value: 10}, Op: kv.OpInsert},
		{Rec: kv.Record{Key: 2, Value: 20}, Op: kv.OpInsert},
	}
	l.sorted = 2
	l.entries = append(l.entries,
		kv.Entry{Rec: kv.Record{Key: 1}, Op: kv.OpDelete},
		kv.Entry{Rec: kv.Record{Key: 3, Value: 30}, Op: kv.OpInsert},
		kv.Entry{Rec: kv.Record{Key: 2, Value: 99}, Op: kv.OpUpdate},
	)
	l.shrink()
	if l.sorted != len(l.entries) || len(l.entries) != 2 {
		t.Fatalf("shrink left %d entries (sorted %d)", len(l.entries), l.sorted)
	}
	if l.entries[0].Rec != (kv.Record{Key: 2, Value: 99}) {
		t.Fatalf("entries[0] = %+v", l.entries[0])
	}
	if l.entries[1].Rec != (kv.Record{Key: 3, Value: 30}) {
		t.Fatalf("entries[1] = %+v", l.entries[1])
	}
}

func TestDisablePsyncStillCorrect(t *testing.T) {
	cfg := smallCfg()
	cfg.DisablePsync = true
	tr := newTestTree(t, cfg)
	var at vtime.Ticks
	var err error
	for i := 0; i < 2000; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Checkpoint(at); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDisableLSMapStillCorrect(t *testing.T) {
	cfg := smallCfg()
	cfg.DisableLSMap = true
	tr := newTestTree(t, cfg)
	var at vtime.Ticks
	var err error
	for i := 0; i < 2000; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i * 3), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Checkpoint(at); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	v, found, _, err := tr.Search(0, 300)
	if err != nil || !found || v != 100 {
		t.Fatalf("Search(300) = %d,%v,%v", v, found, err)
	}
}

func TestSortedLeavesAblationCorrect(t *testing.T) {
	cfg := smallCfg()
	cfg.SortedLeaves = true
	cfg.BCnt = 64
	tr := newTestTree(t, cfg)
	model := make(map[kv.Key]kv.Value)
	rng := rand.New(rand.NewSource(23))
	var at vtime.Ticks
	var err error
	for i := 0; i < 6000; i++ {
		k := uint64(rng.Intn(1500))
		_, exists := model[k]
		switch {
		case rng.Intn(4) == 0:
			if exists {
				at, err = tr.Delete(at, k)
				delete(model, k)
			}
		case exists:
			at, err = tr.Update(at, kv.Record{Key: k, Value: uint64(i)})
			model[k] = uint64(i)
		default:
			at, err = tr.Insert(at, kv.Record{Key: k, Value: uint64(i)})
			model[k] = uint64(i)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Checkpoint(at); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range model {
		got, found, _, err := tr.Search(0, k)
		if err != nil || !found || got != v {
			t.Fatalf("Search(%d) = %d,%v,%v want %d", k, got, found, err, v)
		}
	}
}

func TestSortedLeavesSlowerInserts(t *testing.T) {
	run := func(sorted bool) vtime.Ticks {
		cfg := smallCfg()
		cfg.SortedLeaves = sorted
		tr := newTestTree(t, cfg)
		if err := tr.BulkLoad(seqRecords(20000)); err != nil {
			t.Fatal(err)
		}
		var at vtime.Ticks
		var err error
		for i := 0; i < 3000; i++ {
			at, err = tr.Insert(at, kv.Record{Key: uint64(i)*10 + 7, Value: 1})
			if err != nil {
				t.Fatal(err)
			}
		}
		at, err = tr.Checkpoint(at)
		if err != nil {
			t.Fatal(err)
		}
		return at
	}
	appendOnly := run(false)
	sortedRewrite := run(true)
	if sortedRewrite <= appendOnly {
		t.Fatalf("sorted-leaf rewrites (%v) not slower than append-only (%v)", sortedRewrite, appendOnly)
	}
}

func TestLeafSegsOneIsValid(t *testing.T) {
	cfg := smallCfg()
	cfg.LeafSegs = 1
	tr := newTestTree(t, cfg)
	var at vtime.Ticks
	var err error
	for i := 0; i < 3000; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Checkpoint(at); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	dev := flashsim.MustDevice(flashsim.F120())
	space := ssdio.NewSpace(dev)
	f, _ := space.Create("x", 1<<20)
	pf, _ := pagefile.New(f, 1024)
	bad := smallCfg()
	bad.LeafSegs = 0
	if _, err := New(pf, bad); err == nil {
		t.Fatal("LeafSegs=0 accepted")
	}
	bad = smallCfg()
	bad.OPQPages = 0
	if _, err := New(pf, bad); err == nil {
		t.Fatal("OPQPages=0 accepted")
	}
	bad = smallCfg()
	bad.PageSize = 2048 // mismatch with pagefile
	if _, err := New(pf, bad); err == nil {
		t.Fatal("page size mismatch accepted")
	}
}
