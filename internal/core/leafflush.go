package core

import (
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// flushLeaves applies one PioMax-bounded group of per-leaf entry batches
// (the leaf level of Algorithm 2, with the Algorithm 3 updateNode: append
// to the last LS, shrink when full, split when still full). It returns,
// per group in input order, the fence records produced for the parent.
//
// I/O plan per group:
//  1. one psync batch reading the last LS of every leaf (LSMap hit: one
//     page; miss: the back half of the leaf, the paper's fallback);
//  2. for leaves whose append would overflow, a second psync batch reading
//     the remaining front segments so the shrink sees the whole leaf;
//  3. one psync batch writing the touched segments (appends: the last LS
//     and any newly opened segment; shrinks/splits: whole leaves).
func (t *Tree) flushLeaves(at vtime.Ticks, groups []leafGroup) ([][]fenceRec, vtime.Ticks, error) {
	ps := t.cfg.PageSize

	// Phase 1: read the tail of every leaf.
	type leafState struct {
		group    int
		id       pagefile.PageID
		firstSeg int // first segment actually read
		leaf     *leafNode
		entries  []kv.Entry
	}
	states := make([]*leafState, len(groups))
	ids := make([]pagefile.PageID, len(groups))
	firstSegs := make([]int, len(groups))
	uptos := make([]int, len(groups))
	bufs := make([][]byte, len(groups))
	for i, g := range groups {
		lastLS, hit := t.lastLSOf(g.id)
		first := lastLS
		if !hit {
			// LSMap miss: read the whole leaf.
			first = 0
			lastLS = t.cfg.LeafSegs - 1
		}
		states[i] = &leafState{group: i, id: g.id, firstSeg: first, entries: g.entries}
		ids[i] = g.id + pagefile.PageID(first)
		firstSegs[i] = first
		uptos[i] = lastLS - first
		bufs[i] = make([]byte, (lastLS-first+1)*ps)
	}
	at, err := t.psyncReadRuns(at, ids, uptos, bufs)
	if err != nil {
		return nil, at, err
	}

	// Decode the tails: reconstruct a partial leaf view. Entries before
	// firstSeg are unknown but their count is implied (segments fill in
	// order, so segments < lastSeg are full).
	for i, st := range states {
		tail, err := decodeTail(st.id, bufs[i], ps, t.cfg.LeafSegs, st.firstSeg)
		if err != nil {
			return nil, at, err
		}
		st.leaf = tail
	}

	// Phase 2: identify leaves that need their front segments (append
	// would overflow => shrink path needs the full leaf; also LSMap-miss
	// leaves whose base region extends before the back half are needed
	// for nothing else — appends never touch the front). Under the
	// sorted-leaves ablation every updated leaf is rewritten in full, so
	// every partial view is upgraded.
	var frontIDs []pagefile.PageID
	var frontUpto []int
	var frontBufs [][]byte
	var frontStates []*leafState
	for _, st := range states {
		total := st.leaf.totalCount(ps)
		if (t.cfg.SortedLeaves || total+len(st.entries) > t.LeafCapacity()) && st.firstSeg > 0 {
			frontIDs = append(frontIDs, st.id)
			frontUpto = append(frontUpto, st.firstSeg-1)
			frontBufs = append(frontBufs, make([]byte, st.firstSeg*ps))
			frontStates = append(frontStates, st)
		}
	}
	if len(frontIDs) > 0 {
		at, err = t.psyncReadRuns(at, frontIDs, frontUpto, frontBufs)
		if err != nil {
			return nil, at, err
		}
		for i, st := range frontStates {
			if err := st.leaf.fillFront(frontBufs[i], ps, st.firstSeg); err != nil {
				return nil, at, err
			}
			st.firstSeg = 0
		}
	}

	// Phase 3: apply entries and build the write set.
	fences := make([][]fenceRec, len(groups))
	var writes []pagefile.RunReq
	var undoPages []pendingPage
	for _, st := range states {
		total := st.leaf.totalCount(ps)
		if !t.cfg.SortedLeaves && total+len(st.entries) <= t.LeafCapacity() {
			// Append-only path (Algorithm 3 line 4): entries go to the
			// last LS; only the touched segments are written.
			w, err := t.appendToLeaf(st.leaf, st.entries)
			if err != nil {
				return nil, at, err
			}
			writes = append(writes, w...)
			t.stats.LeafAppends++
			continue
		}
		// Shrink path: the leaf is full; we hold the whole leaf now
		// (firstSeg forced to 0 in phase 2 for multi-segment leaves;
		// single-segment leaves are always whole).
		fs, w, err := t.shrinkAndSplit(st.leaf, st.entries)
		if err != nil {
			return nil, at, err
		}
		fences[st.group] = append(fences[st.group], fs...)
		writes = append(writes, w...)
	}

	// WAL: undo images of every page about to be overwritten.
	if t.log != nil {
		for _, w := range writes {
			for s := 0; s < w.N; s++ {
				pre := make([]byte, ps)
				if err := t.pf.ReadPageNoCost(w.First+pagefile.PageID(s), pre); err != nil {
					return nil, at, err
				}
				undoPages = append(undoPages, pendingPage{id: w.First + pagefile.PageID(s), buf: pre})
			}
		}
		for _, p := range undoPages {
			t.log.Append(wal.Record{
				Kind:     wal.KindFlushUndo,
				Relation: t.cfg.Relation,
				FlushID:  t.flushID,
				NodeID:   int64(p.id),
				UndoInfo: p.buf,
			})
		}
		at, err = t.forceWAL(at)
		if err != nil {
			return nil, at, err
		}
	}

	at, err = t.psyncWriteRuns(at, writes)
	if err != nil {
		return nil, at, err
	}
	// Keep the pool coherent for single-page leaves: refresh (or install)
	// the written pages as clean frames.
	if t.cfg.LeafSegs == 1 {
		for _, w := range writes {
			t.pool.InsertClean(w.First, w.Buf)
		}
	}
	return fences, at, nil
}

// appendToLeaf appends entries to the leaf's log and returns the page
// writes covering the touched segments. The leaf view may be partial
// (segments before firstSeg unknown); appends never need them.
func (t *Tree) appendToLeaf(l *leafNode, entries []kv.Entry) ([]pagefile.RunReq, error) {
	ps := t.cfg.PageSize
	startIdx := l.totalCount(ps)
	firstTouched := segOf(ps, startIdx)
	l.appendEntries(entries)
	endIdx := l.totalCount(ps) - 1
	lastTouched := segOf(ps, endIdx)
	nseg := lastTouched - firstTouched + 1
	buf := make([]byte, nseg*ps)
	for s := firstTouched; s <= lastTouched; s++ {
		if err := l.encodeSeg(buf[(s-firstTouched)*ps:(s-firstTouched+1)*ps], s); err != nil {
			return nil, err
		}
	}
	writes := []pagefile.RunReq{{
		First: l.id + pagefile.PageID(firstTouched),
		N:     nseg,
		Buf:   buf,
		Write: true,
	}}
	t.lsmap.Set(int64(l.id), lastTouched)
	return writes, nil
}

// shrinkAndSplit rebuilds a full leaf from its live records and, if still
// overfull, splits it into sibling leaves. It returns the parent fence
// records and the whole-leaf writes.
func (t *Tree) shrinkAndSplit(l *leafNode, entries []kv.Entry) ([]fenceRec, []pagefile.RunReq, error) {
	ps := t.cfg.PageSize
	l.entries = append(l.entries, entries...)
	l.shrink()
	t.stats.Shrinks++

	half := t.LeafCapacity() / 2
	if half < 1 {
		half = 1
	}
	var fences []fenceRec
	var writes []pagefile.RunReq
	if len(l.entries) <= t.LeafCapacity() {
		writes = append(writes, t.wholeLeafWrite(l)...)
		t.lsmap.Set(int64(l.id), l.lastSeg(ps))
		return nil, writes, nil
	}
	// Split into chunks of `half` entries (multi-split for huge batches).
	all := l.entries
	l.entries = append([]kv.Entry(nil), all[:half]...)
	l.sorted = len(l.entries)
	rest := all[half:]
	involved := []*leafNode{l}
	prev := l
	for len(rest) > 0 {
		n := half
		if n > len(rest) {
			n = len(rest)
		}
		sib := &leafNode{id: t.allocLeaf(), segs: t.cfg.LeafSegs}
		sib.entries = append(sib.entries, rest[:n]...)
		sib.sorted = len(sib.entries)
		rest = rest[n:]
		sib.next = prev.next
		prev.next = sib.id
		fences = append(fences, fenceRec{key: sib.minKey(), child: sib.id})
		t.stats.LeafSplits++
		involved = append(involved, sib)
		prev = sib
	}
	for _, n := range involved {
		writes = append(writes, t.wholeLeafWrite(n)...)
		t.lsmap.Set(int64(n.id), n.lastSeg(ps))
	}
	return fences, writes, nil
}

// wholeLeafWrite encodes all segments of a leaf as one run write.
func (t *Tree) wholeLeafWrite(l *leafNode) []pagefile.RunReq {
	ps := t.cfg.PageSize
	buf := make([]byte, l.segs*ps)
	if err := l.encodeAll(buf, ps); err != nil {
		// encodeAll fails only on programmer error (overflow already
		// prevented by the split loop).
		panic(err)
	}
	return []pagefile.RunReq{{First: l.id, N: l.segs, Buf: buf, Write: true}}
}
