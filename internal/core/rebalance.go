package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/kv"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// This file implements online shard rebalancing: migrating a key range
// between two live PIO trees of a Forest while reads and writes keep
// flowing.
//
// Routing is an immutable snapshot swapped atomically: the base Range or
// Hash partitioner, an ordered list of committed MoveRules, and at most
// one in-flight migration. The migration carries a FRONTIER: keys in
// [lo, frontier) already live on the destination shard and route there,
// keys in [frontier, hi) still route to the source. Every key therefore
// has exactly one authoritative shard at every instant — lookups
// "dual-route" by consulting the migration map on top of the base table,
// and no write can be lost to a stale copy or a resurrected delete.
//
// The migration streams keys in bounded chunks under the source shard's
// virtual lock. One chunk commits with the WAL discipline
//
//	copy chunk to dst (redo records append to dst's log)
//	FORCE dst log                        -- copies durable first
//	append KeyMoved[chunk] to src log
//	delete chunk keys from src (redo deletes append to src's log)
//	FORCE src log                        -- frontier advance durable
//	publish frontier = chunk end
//
// so at any crash point the durable KeyMoved frontier never points at
// keys the destination could have lost: KeyMoved durable implies the
// chunk's copies are durable, and the source's deletes durable implies
// KeyMoved durable (log prefix order). Forest.Recover resumes a
// half-done migration from the durable frontier, or rolls it back when
// no chunk ever committed. The final routing-table flip commits through
// the same ganged group-commit force the flush coordinator uses.

// MoveRule reroutes keys in [Lo, Hi) that the routing so far assigns to
// shard From onto shard To. Rules apply in commit order, so a later rule
// observes the rerouting of earlier ones.
//
//lint:immutable
type MoveRule struct {
	Lo, Hi   kv.Key
	From, To int
	// ID is the committing migration's id (monotone across the forest).
	ID uint64
}

// migRoute is the in-flight migration's routing state inside a snapshot.
//
//lint:immutable
type migRoute struct {
	id       uint64
	lo, hi   kv.Key
	src, dst int
	frontier kv.Key // keys in [lo, frontier) already live on dst
}

// routing is one immutable routing-table snapshot: readers resolve
// shards through it lock-free, so a published snapshot is never mutated
// — writers copy it, adjust the copy, and publish the copy.
//
//lint:immutable
type routing struct {
	base  Partitioner
	slots int
	rules []MoveRule
	epoch uint64
	// maxCommitted is the highest migration id already committed or
	// rolled back; recovery replays only migration records above it.
	maxCommitted uint64
	mig          *migRoute
	// evac is the bitmask of evacuated shards: their whole range was
	// migrated onto healthy shards by a quarantine evacuation, but their
	// devices rejected the source-side deletes, so the stale physical
	// copies they retain must be skipped by every multi-shard sweep. Part
	// of the durable routing snapshot (the rules alone cannot express
	// "and don't read the source").
	evac uint64
}

// route resolves the authoritative shard of key k.
func (rt *routing) route(k kv.Key) int {
	s := rt.base.Shard(k)
	for _, r := range rt.rules {
		if s == r.From && k >= r.Lo && k < r.Hi {
			s = r.To
		}
	}
	if m := rt.mig; m != nil && s == m.src && k >= m.lo && k < m.frontier {
		s = m.dst
	}
	return s
}

// RebalancingPartitioner wraps Range or Hash routing with the committed
// move rules and the in-flight migration map of online rebalancing. All
// methods are safe for concurrent use: readers load one immutable
// snapshot, migrations publish new ones.
type RebalancingPartitioner struct {
	cur atomic.Pointer[routing]
}

// NewRebalancingPartitioner wraps base, which must cover exactly slots
// shards and must not itself be a rebalancing wrapper.
func NewRebalancingPartitioner(base Partitioner, slots int) (*RebalancingPartitioner, error) {
	if base == nil {
		return nil, fmt.Errorf("core: rebalancing partitioner needs a base partitioner")
	}
	if _, ok := base.(*RebalancingPartitioner); ok {
		return nil, fmt.Errorf("core: rebalancing partitioner cannot wrap another rebalancing partitioner")
	}
	if base.Shards() != slots {
		return nil, fmt.Errorf("core: rebalancing base covers %d shards, forest has %d", base.Shards(), slots)
	}
	p := &RebalancingPartitioner{}
	p.cur.Store(&routing{base: base, slots: slots})
	return p, nil
}

// Shards returns the physical shard count.
func (p *RebalancingPartitioner) Shards() int { return p.cur.Load().slots }

// Shard resolves the authoritative shard of k: base routing, then the
// committed move rules, then the in-flight migration frontier.
func (p *RebalancingPartitioner) Shard(k kv.Key) int { return p.cur.Load().route(k) }

// RangeShards returns an ascending superset of the shards that may hold
// keys in [lo, hi): the base set, widened by every overlapping rule and
// the in-flight migration.
func (p *RebalancingPartitioner) RangeShards(lo, hi kv.Key) []int {
	if hi <= lo {
		return nil
	}
	rt := p.cur.Load()
	in := make(map[int]bool)
	for _, s := range rt.base.RangeShards(lo, hi) {
		in[s] = true
	}
	for _, r := range rt.rules {
		if r.Lo < hi && lo < r.Hi && in[r.From] {
			in[r.To] = true
		}
	}
	if m := rt.mig; m != nil && m.lo < hi && lo < m.hi && in[m.src] {
		in[m.dst] = true
	}
	out := make([]int, 0, len(in))
	for s := range in {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Base returns the wrapped partitioner.
func (p *RebalancingPartitioner) Base() Partitioner { return p.cur.Load().base }

// Epoch returns the routing-table version, bumped on every published
// change (migration start, frontier advance, commit, recovery rebuild).
func (p *RebalancingPartitioner) Epoch() uint64 { return p.cur.Load().epoch }

// Rules returns a copy of the committed move rules in commit order.
func (p *RebalancingPartitioner) Rules() []MoveRule {
	rt := p.cur.Load()
	out := make([]MoveRule, len(rt.rules))
	copy(out, rt.rules)
	return out
}

// IsEvacuated reports whether shard i's range has been evacuated onto
// healthy shards (see routing.evac).
func (p *RebalancingPartitioner) IsEvacuated(i int) bool {
	return i >= 0 && i < 64 && p.cur.Load().evac&(1<<uint(i)) != 0
}

// EvacuatedMask returns the evacuated-shard bitmask.
func (p *RebalancingPartitioner) EvacuatedMask() uint64 { return p.cur.Load().evac }

// Migrating reports the in-flight migration's source and destination.
func (p *RebalancingPartitioner) Migrating() (src, dst int, active bool) {
	if m := p.cur.Load().mig; m != nil {
		return m.src, m.dst, true
	}
	return 0, 0, false
}

// publish installs next as the current snapshot with a bumped epoch.
func (p *RebalancingPartitioner) publish(next routing) {
	next.epoch = p.cur.Load().epoch + 1
	p.cur.Store(&next)
}

// RoutingMeta is the durable form of the routing table: what a DBMS
// catalog would persist alongside the per-shard Meta, and what the
// KindRoutingSnapshot WAL record carries.
type RoutingMeta struct {
	Epoch        uint64
	MaxCommitted uint64
	// Evacuated is the evacuated-shard bitmask (see routing.evac).
	Evacuated uint64
	Rules     []MoveRule
}

// RoutingSnapshot captures the committed routing state (the in-flight
// migration is volatile and reconstructed from the WAL).
func (p *RebalancingPartitioner) RoutingSnapshot() RoutingMeta {
	rt := p.cur.Load()
	rules := make([]MoveRule, len(rt.rules))
	copy(rules, rt.rules)
	return RoutingMeta{Epoch: rt.epoch, MaxCommitted: rt.maxCommitted, Evacuated: rt.evac, Rules: rules}
}

// RestoreRouting resets the committed routing state from a snapshot
// (crash harnesses restore the durable catalog, then call Recover).
func (p *RebalancingPartitioner) RestoreRouting(m RoutingMeta) {
	rt := p.cur.Load()
	rules := make([]MoveRule, len(m.Rules))
	copy(rules, m.Rules)
	p.cur.Store(&routing{
		base: rt.base, slots: rt.slots,
		rules: rules, epoch: m.Epoch, maxCommitted: m.MaxCommitted, evac: m.Evacuated,
	})
}

// encodeRoutingMeta serializes a routing snapshot for the
// KindRoutingSnapshot WAL record payload: a 28-byte header (epoch,
// max-committed, evacuated mask, rule count) followed by 32 bytes per
// rule. The pre-evacuation format had a 20-byte header; the decoder
// distinguishes the two by payload length (the formats differ by 8 mod
// 32, so no payload parses as both).
func encodeRoutingMeta(m RoutingMeta) []byte {
	b := make([]byte, 0, 28+len(m.Rules)*32)
	b = binary.LittleEndian.AppendUint64(b, m.Epoch)
	b = binary.LittleEndian.AppendUint64(b, m.MaxCommitted)
	b = binary.LittleEndian.AppendUint64(b, m.Evacuated)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Rules)))
	for _, r := range m.Rules {
		b = binary.LittleEndian.AppendUint64(b, r.Lo)
		b = binary.LittleEndian.AppendUint64(b, r.Hi)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.From))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.To))
		b = binary.LittleEndian.AppendUint64(b, r.ID)
	}
	return b
}

// decodeRoutingMeta parses a KindRoutingSnapshot payload.
func decodeRoutingMeta(b []byte) (RoutingMeta, error) {
	var m RoutingMeta
	if len(b) < 20 {
		return m, fmt.Errorf("core: routing snapshot too short (%d bytes)", len(b))
	}
	m.Epoch = binary.LittleEndian.Uint64(b)
	m.MaxCommitted = binary.LittleEndian.Uint64(b[8:])
	var n int
	switch {
	case (len(b)-20)%32 == 0:
		// Legacy 20-byte header without the evacuated mask.
		n = int(binary.LittleEndian.Uint32(b[16:]))
		b = b[20:]
	case len(b) >= 28 && (len(b)-28)%32 == 0:
		m.Evacuated = binary.LittleEndian.Uint64(b[16:])
		n = int(binary.LittleEndian.Uint32(b[24:]))
		b = b[28:]
	default:
		return m, fmt.Errorf("core: routing snapshot has unrecognized payload length %d", len(b))
	}
	if len(b) != n*32 {
		return m, fmt.Errorf("core: routing snapshot rule payload %d bytes, want %d", len(b), n*32)
	}
	m.Rules = make([]MoveRule, n)
	for i := range m.Rules {
		m.Rules[i] = MoveRule{
			Lo:   binary.LittleEndian.Uint64(b),
			Hi:   binary.LittleEndian.Uint64(b[8:]),
			From: int(binary.LittleEndian.Uint32(b[16:])),
			To:   int(binary.LittleEndian.Uint32(b[20:])),
			ID:   binary.LittleEndian.Uint64(b[24:]),
		}
		b = b[32:]
	}
	return m, nil
}

// validateRules rejects rule lists that would misroute.
func validateRules(rules []MoveRule, slots int) error {
	for i, r := range rules {
		if r.Lo >= r.Hi {
			return fmt.Errorf("core: move rule %d has empty range [%d, %d)", i, r.Lo, r.Hi)
		}
		if r.From < 0 || r.From >= slots || r.To < 0 || r.To >= slots {
			return fmt.Errorf("core: move rule %d targets shard %d->%d outside [0,%d)", i, r.From, r.To, slots)
		}
		if r.From == r.To {
			return fmt.Errorf("core: move rule %d moves shard %d onto itself", i, r.From)
		}
	}
	return nil
}

// MaxMigrationKey is the exclusive upper bound used by SplitShard and
// MergeShards to cover a shard's whole upper key space. The single key
// ^uint64(0) itself is never migrated (half-open ranges throughout).
const MaxMigrationKey = ^kv.Key(0)

// Migration is one in-flight key-range move between two live shards.
// Obtain one with Forest.StartMigration and drive it with Step — each
// step moves one bounded chunk, so the caller chooses the interleaving
// with foreground traffic. SplitShard and MergeShards drive a migration
// to completion in one call.
type Migration struct {
	f        *Forest
	id       uint64
	lo, hi   kv.Key
	src, dst int
	// bounds are the planned chunk boundaries: chunk i covers
	// [bounds[i], bounds[i+1]).
	bounds []kv.Key
	idx    int
	moved  int64
	done   bool
	// evac marks a quarantine evacuation: the source is quarantined by
	// construction, all migration records ride the destination's log, and
	// the source side is never written (no deletes, no forces) — its
	// device may never accept another write.
	evac bool
}

// Done reports whether the migration has committed.
func (m *Migration) Done() bool { return m.done }

// Moved returns the number of keys migrated so far.
func (m *Migration) Moved() int64 { return m.moved }

// Range returns the migrating key range and the shard pair.
func (m *Migration) Range() (lo, hi kv.Key, src, dst int) {
	return m.lo, m.hi, m.src, m.dst
}

// migrationLogs returns the distinct logs of the shard pair (nil entries
// dropped; one entry when the shards share a log).
func (f *Forest) migrationLogs(src, dst int) []*wal.Log {
	var logs []*wal.Log
	if l := f.shards[src].tree.log; l != nil {
		logs = append(logs, l)
	}
	if l := f.shards[dst].tree.log; l != nil && (len(logs) == 0 || l != logs[0]) {
		logs = append(logs, l)
	}
	return logs
}

// StartMigration begins moving the keys of [lo, hi) that currently route
// to shard src onto shard dst. It plans the chunk schedule from a timed
// range scan of the source, makes the MigrationStart record durable
// through the ganged force, and publishes the migration into the routing
// table with frontier = lo. At most one migration may be in flight.
func (f *Forest) StartMigration(at vtime.Ticks, lo, hi kv.Key, src, dst int) (*Migration, vtime.Ticks, error) {
	if err := f.checkDamaged(); err != nil {
		return nil, at, err
	}
	n := len(f.shards)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, at, fmt.Errorf("core: migration shards %d->%d outside [0,%d)", src, dst, n)
	}
	if src == dst {
		return nil, at, fmt.Errorf("core: migration source and destination are both shard %d", src)
	}
	if hi <= lo {
		return nil, at, fmt.Errorf("core: migration range [%d, %d) is empty", lo, hi)
	}
	for _, si := range []int{src, dst} {
		s := f.shards[si]
		s.mu.Lock()
		q, qe := s.quarantined, s.qErr
		s.mu.Unlock()
		if q {
			// A quarantined shard can neither stream chunks nor absorb
			// copies; Heal it first.
			return nil, at, shardQuarantinedErr(si, qe)
		}
	}
	if !f.rebalanceActive.CompareAndSwap(false, true) {
		return nil, at, fmt.Errorf("core: a migration is already in flight")
	}
	m, done, err := f.startMigrationLocked(at, lo, hi, src, dst)
	if err != nil {
		f.rebalanceActive.Store(false)
		return nil, done, err
	}
	return m, done, nil
}

func (f *Forest) startMigrationLocked(at vtime.Ticks, lo, hi kv.Key, src, dst int) (*Migration, vtime.Ticks, error) {
	f.migMu.Lock()
	defer f.migMu.Unlock()
	// Both shards are locked (ascending index order, the same discipline
	// as lockPair): the start-record force below may have to quarantine
	// the destination when its log device fails the gang.
	plo, phi := src, dst
	if plo > phi {
		plo, phi = phi, plo
	}
	f.shards[plo].mu.Lock()
	defer f.shards[plo].mu.Unlock()
	f.shards[phi].mu.Lock()
	defer f.shards[phi].mu.Unlock()
	s := f.shards[src]

	// Plan the chunk schedule: a timed scan of the source range yields the
	// key population; every chunk-th key becomes a boundary. Keys inserted
	// mid-migration fall inside an existing chunk range and are picked up
	// when that chunk streams.
	start := s.vlock.Acquire(at)
	recs, done, err := s.tree.RangeSearch(start, lo, hi)
	if err != nil {
		s.vlock.Release(done)
		return nil, done, err
	}
	chunk := f.migChunk
	bounds := []kv.Key{lo}
	for i := chunk; i < len(recs); i += chunk {
		if k := recs[i].Key; k > bounds[len(bounds)-1] && k < hi {
			bounds = append(bounds, k)
		}
	}
	bounds = append(bounds, hi)

	m := &Migration{f: f, id: f.nextMigrationID(), lo: lo, hi: hi, src: src, dst: dst, bounds: bounds}
	if logs := f.migrationLogs(src, dst); len(logs) > 0 {
		for _, si := range []int{src, dst} {
			if l := f.shards[si].tree.log; l != nil {
				l.Append(wal.Record{
					Kind: wal.KindMigrationStart, Relation: f.shards[si].tree.cfg.Relation,
					FlushID: m.id, KeyLo: lo, KeyHi: hi, Key: uint64(src), Value: uint64(dst),
				})
			}
		}
		// The start record commits through the same ganged force as the
		// flush coordinator's group commit.
		done, err = f.forceLogs(done, logs)
		if err != nil {
			if IsIOFault(err) {
				// Contain like the flush coordinator's phase 1: a member
				// whose log still holds an unforced tail is exactly a member
				// whose start record is not durable — its device is failing.
				// Quarantine it (the rollback drops the stranded append),
				// close the never-published migration with abort records,
				// and surface the refusal as a quarantine, not a raw fault.
				failing := -1
				for _, si := range []int{src, dst} {
					sh := f.shards[si]
					if sh.tree.log != nil && sh.tree.log.Unforced() {
						done = f.quarantineShard(done, sh, err)
						if failing < 0 {
							failing = si
						}
					}
				}
				if failing >= 0 && f.damaged.Load() == nil {
					for _, si := range []int{src, dst} {
						if l := f.shards[si].tree.log; l != nil {
							l.Append(wal.Record{
								Kind: wal.KindMigrationEnd, Relation: f.shards[si].tree.cfg.Relation,
								FlushID: m.id, KeyLo: lo, KeyHi: hi,
								Key: uint64(src), Value: uint64(dst), Op: wal.OpType('a'),
							})
						}
					}
					if d, ferr := f.forceLogs(done, logs); ferr == nil {
						done = d
					}
					// A failed force is fine: the Ends stay in the tails and
					// either a Heal forces them or crash recovery rolls the
					// open migration back — the routing was never touched.
					f.migrationAborts.Add(1)
					s.vlock.Release(done)
					return nil, done, shardQuarantinedErr(failing, err)
				}
			}
			s.vlock.Release(done)
			return nil, done, err
		}
	}
	rt := f.rpart.cur.Load()
	next := *rt
	next.mig = &migRoute{id: m.id, lo: lo, hi: hi, src: src, dst: dst, frontier: lo}
	f.rpart.publish(next)
	s.vlock.Release(done)
	return m, done, nil
}

// nextMigrationID hands out forest-unique migration ids above everything
// committed or observed so far.
func (f *Forest) nextMigrationID() uint64 {
	for {
		cur := f.migIDSeq.Load()
		next := cur + 1
		if rt := f.rpart.cur.Load(); rt.maxCommitted >= cur {
			next = rt.maxCommitted + 1
		}
		if f.migIDSeq.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// Step advances the migration by one unit: each call streams one chunk
// (copying its keys to the destination and committing the frontier
// advance per the chunk WAL discipline); once every chunk has streamed,
// one final call commits the routing flip. Returns whether the
// migration is done. The forest keeps serving during and between steps;
// only the chunk's shard pair is locked while a step runs.
func (m *Migration) Step(at vtime.Ticks) (bool, vtime.Ticks, error) {
	if m.done {
		return true, at, nil
	}
	f := m.f
	if err := f.checkDamaged(); err != nil {
		return false, at, err
	}
	if m.idx < len(m.bounds)-1 {
		done, err := f.migrateChunk(at, m)
		if err != nil {
			return false, done, err
		}
		m.idx++
		return false, done, nil
	}
	done, err := f.commitMigration(at, m)
	if err != nil {
		return false, done, err
	}
	m.done = true
	return true, done, nil
}

// checkMigrationLive rejects steps on a stale Migration handle: a Crash
// (and the Recover that resolves the move from its durable records)
// drops the in-flight migration from the routing table, so the handle's
// id no longer matches and continuing would corrupt routing.
func (f *Forest) checkMigrationLive(m *Migration) error {
	if mig := f.rpart.cur.Load().mig; mig == nil || mig.id != m.id {
		return fmt.Errorf("core: migration %d is no longer in flight (a crash or recovery resolved it); discard this handle", m.id)
	}
	return nil
}

// lockPair locks the two shards in ascending index order (the same
// discipline as the flush coordinator, so the two can never deadlock).
func (f *Forest) lockPair(a, b int) func() {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	f.shards[lo].mu.Lock()
	f.shards[hi].mu.Lock()
	return func() {
		f.shards[hi].mu.Unlock()
		f.shards[lo].mu.Unlock()
	}
}

// migrateChunk moves one chunk [bounds[idx], bounds[idx+1]) under the
// source shard's virtual lock, following the chunk WAL discipline
// documented at the top of this file.
func (f *Forest) migrateChunk(at vtime.Ticks, m *Migration) (vtime.Ticks, error) {
	f.migMu.Lock()
	defer f.migMu.Unlock()
	unlock := f.lockPair(m.src, m.dst)
	defer unlock()
	if err := f.checkMigrationLive(m); err != nil {
		return at, err
	}
	src, dst := f.shards[m.src], f.shards[m.dst]
	a, b := m.bounds[m.idx], m.bounds[m.idx+1]

	start := src.vlock.Acquire(at)
	defer func() { src.vlock.Release(start) }()
	// fail resolves a mid-chunk I/O failure by aborting the migration at
	// the durable frontier with both shards quarantined (an evacuation
	// aborts one-sided: only the destination just failed); non-I/O errors
	// keep escalating to the forest damaged mark.
	fail := func(now vtime.Ticks, recs []kv.Record, undoSrc bool, err error) (vtime.Ticks, error) {
		if IsIOFault(err) && len(f.migrationLogs(m.src, m.dst)) > 0 {
			if m.evac {
				return f.failEvacuation(now, m, recs, err)
			}
			return f.failMigration(now, m, recs, undoSrc, err)
		}
		f.setDamaged(err)
		return now, err
	}
	recs, now, err := src.tree.RangeSearch(start, a, b)
	if err != nil {
		start = now
		now, err = fail(now, nil, false, err)
		start = vtime.Max(start, now)
		return now, err
	}
	// Copy to the destination: redo records append to dst's log; a full
	// destination OPQ flushes through the ordinary tree path.
	opq := dst.vopq.Acquire(now)
	for _, r := range recs {
		opq, err = dst.tree.Insert(opq, r)
		if err != nil {
			dst.vopq.Release(opq)
			now, err = fail(opq, recs, false, err)
			start = vtime.Max(opq, now)
			return now, err
		}
	}
	dst.vopq.Release(opq)
	now = opq
	// Chunk phase 1: the copies must be durable before the frontier
	// record can be. A lost dst tail after a durable KeyMoved would strand
	// keys the source is about to delete.
	if dst.tree.log != nil {
		now, err = dst.tree.retryIO(now, dst.tree.log.Force)
		if err != nil {
			now, err = fail(now, recs, false, err)
			start = vtime.Max(start, now)
			return now, err
		}
	}
	// Chunk phase 2: frontier record first, then the source deletes — the
	// log prefix order then guarantees any durable delete is covered by a
	// durable KeyMoved (and thus by durable copies). An evacuation's
	// frontier record rides the DESTINATION's log instead (the source's
	// device no longer accepts writes) and the source keeps its copies:
	// the record is appended after the copies' force above, so whenever
	// it becomes durable (the next chunk's force, or the commit force)
	// the copies-durable-before-KeyMoved invariant still holds. Recovery
	// re-streams an un-recorded chunk harmlessly — the resume path purges
	// destination remnants above the frontier first.
	if m.evac {
		if dst.tree.log != nil {
			dst.tree.log.Append(wal.Record{
				Kind: wal.KindKeyMoved, Relation: dst.tree.cfg.Relation,
				FlushID: m.id, KeyLo: a, KeyHi: b, Key: uint64(m.src), Value: uint64(m.dst),
			})
		}
		f.evacChunks.Add(1)
	} else {
		if src.tree.log != nil {
			src.tree.log.Append(wal.Record{
				Kind: wal.KindKeyMoved, Relation: src.tree.cfg.Relation,
				FlushID: m.id, KeyLo: a, KeyHi: b, Key: uint64(m.src), Value: uint64(m.dst),
			})
		}
		for _, r := range recs {
			now, err = src.tree.Delete(now, r.Key)
			if err != nil {
				now, err = fail(now, recs, true, err)
				start = vtime.Max(start, now)
				return now, err
			}
		}
		if src.tree.log != nil {
			now, err = src.tree.retryIO(now, src.tree.log.Force)
			if err != nil {
				now, err = fail(now, recs, true, err)
				start = vtime.Max(start, now)
				return now, err
			}
		}
	}
	// Publish the frontier advance: keys in [lo, b) now route to dst.
	rt := f.rpart.cur.Load()
	next := *rt
	mig := *rt.mig
	mig.frontier = b
	next.mig = &mig
	f.rpart.publish(next)
	m.moved += int64(len(recs))
	f.keysMigrated.Add(int64(len(recs)))
	start = now
	return now, nil
}

// failMigration aborts the in-flight migration after an I/O failure
// mid-chunk. Caller holds migMu and both shard locks. The resolution
// must stay consistent under BOTH durable outcomes of the shards' log
// tails — a tail that is never forced (the durable log shows the last
// published frontier F and an open migration, which crash recovery
// resolves), and a tail a later Heal forces in full (the failing chunk's
// copies, KeyMoved and deletes become durable in order). So:
//
//  1. both trees roll back to their committed state and quarantine
//     (their devices just exhausted retries);
//  2. compensation records are appended BEHIND the chunk's records:
//     redo-deletes on dst purge the chunk copies (and, in memory, the
//     durable copies the rollback just resurrected), and redo-inserts on
//     src revive the chunk keys when its deletes were already appended —
//     whenever the tails do become durable, the chunk nets to zero;
//  3. a MigrationEnd commits exactly the committed prefix [lo, F)
//     ('a' aborts outright when no chunk ever committed), and
//     recoverRouting takes a 'c' rule's range from the End record, so a
//     durable-but-superseded KeyMoved cannot widen it;
//  4. the routing publishes the partial rule and drops the migration.
func (f *Forest) failMigration(at vtime.Ticks, m *Migration, recs []kv.Record, undoSrc bool, cause error) (vtime.Ticks, error) {
	src, dst := f.shards[m.src], f.shards[m.dst]
	rt := f.rpart.cur.Load()
	frontier := m.lo
	if rt.mig != nil && rt.mig.id == m.id {
		frontier = rt.mig.frontier
	}
	done := f.quarantineShard(at, src, cause)
	done = f.quarantineShard(done, dst, cause)
	if f.damaged.Load() != nil {
		return done, cause
	}
	// Purge the chunk's copies from the destination. tree.Delete both
	// removes any durable copy the rollback resurrected from memory and
	// appends the covering redo-delete to dst's tail; keys whose copy
	// never landed get a harmless tombstone. A failing purge means stale
	// copies may survive on an unquarantinable path — escalate.
	if dst.tree.log != nil {
		for _, r := range recs {
			var err error
			done, err = dst.tree.Delete(done, r.Key)
			if err != nil {
				f.setDamaged(fmt.Errorf("core: migration %d abort purge failed: %w (original fault: %v)", m.id, err, cause))
				return done, cause
			}
		}
	}
	// The source's chunk deletes (appended, never durable — a durable
	// delete would have published the frontier) are compensated with
	// plain redo-inserts behind them; in memory the rollback already
	// restored the keys.
	if undoSrc && src.tree.log != nil {
		for _, r := range recs {
			src.tree.log.Append(wal.Record{
				Kind: wal.KindLogicalRedo, Relation: src.tree.cfg.Relation,
				Key: r.Key, Value: r.Value, Op: wal.OpType(kv.OpInsert),
			})
		}
	}
	op := wal.OpType('a')
	endLo, endHi := m.lo, m.hi
	if frontier > m.lo {
		op, endHi = wal.OpType('c'), frontier
	}
	for _, si := range []int{m.src, m.dst} {
		if l := f.shards[si].tree.log; l != nil {
			l.Append(wal.Record{
				Kind: wal.KindMigrationEnd, Relation: f.shards[si].tree.cfg.Relation,
				FlushID: m.id, KeyLo: endLo, KeyHi: endHi,
				Key: uint64(m.src), Value: uint64(m.dst), Op: op,
			})
		}
	}
	if logs := f.migrationLogs(m.src, m.dst); len(logs) > 0 {
		if d, err := f.forceLogs(done, logs); err == nil {
			done = d
		}
		// A failed force is fine: the End stays in the tails, the durable
		// log keeps the migration open at frontier F, and either a Heal
		// (forces the tails, compensations included) or a crash recovery
		// (resolves from the durable frontier) converges to this state.
	}
	next := *rt
	next.mig = nil
	next.maxCommitted = m.id
	if frontier > m.lo {
		next.rules = append(append([]MoveRule(nil), rt.rules...),
			MoveRule{Lo: m.lo, Hi: frontier, From: m.src, To: m.dst, ID: m.id})
		f.migrations.Add(1)
	}
	f.rpart.publish(next)
	f.migrationAborts.Add(1)
	f.rebalanceActive.Store(false)
	return done, fmt.Errorf("core: migration %d aborted at frontier %d, shards %d/%d quarantined: %w",
		m.id, frontier, m.src, m.dst, cause)
}

// commitMigration makes the routing flip durable (MigrationEnd through
// the ganged force) and publishes the committed rule.
func (f *Forest) commitMigration(at vtime.Ticks, m *Migration) (vtime.Ticks, error) {
	f.migMu.Lock()
	defer f.migMu.Unlock()
	unlock := f.lockPair(m.src, m.dst)
	defer unlock()
	if err := f.checkMigrationLive(m); err != nil {
		return at, err
	}
	if m.evac {
		return f.commitEvacuation(at, m)
	}
	done := at
	if logs := f.migrationLogs(m.src, m.dst); len(logs) > 0 {
		for _, si := range []int{m.src, m.dst} {
			if l := f.shards[si].tree.log; l != nil {
				l.Append(wal.Record{
					Kind: wal.KindMigrationEnd, Relation: f.shards[si].tree.cfg.Relation,
					FlushID: m.id, KeyLo: m.lo, KeyHi: m.hi,
					Key: uint64(m.src), Value: uint64(m.dst), Op: wal.OpType('c'),
				})
			}
		}
		var err error
		done, err = f.forceLogs(done, logs)
		if err != nil {
			if !IsIOFault(err) {
				f.setDamaged(err)
				return done, err
			}
			// Every chunk is durably committed; only the End force failed.
			// The rule may publish regardless: the Ends stay in the tails
			// (a Heal forces them; a crash resolves the open migration from
			// the durable frontier = hi, re-streaming an empty remainder to
			// the same outcome). The log devices are failing, though —
			// quarantine the pair.
			done = f.quarantineShard(done, f.shards[m.src], err)
			done = f.quarantineShard(done, f.shards[m.dst], err)
		}
	}
	rt := f.rpart.cur.Load()
	next := *rt
	next.rules = append(append([]MoveRule(nil), rt.rules...),
		MoveRule{Lo: m.lo, Hi: m.hi, From: m.src, To: m.dst, ID: m.id})
	next.maxCommitted = m.id
	next.mig = nil
	f.rpart.publish(next)
	f.migrations.Add(1)
	f.rebalanceActive.Store(false)
	return done, nil
}

// SplitShard carves shard i at boundary: every key >= boundary that
// currently routes to i migrates to the least-loaded other shard, which
// is returned. The migration runs to completion before returning; use
// StartMigration/Step to interleave chunks with foreground work.
func (f *Forest) SplitShard(at vtime.Ticks, i int, boundary kv.Key) (int, vtime.Ticks, error) {
	dst, err := f.coldestShard(i)
	if err != nil {
		return -1, at, err
	}
	m, done, err := f.StartMigration(at, boundary, MaxMigrationKey, i, dst)
	if err != nil {
		return -1, done, err
	}
	done, err = m.Drain(done)
	return dst, done, err
}

// MergeShards migrates every key routed to shard j into shard i, leaving
// j empty (and a natural destination for a later split). The migration
// runs to completion before returning.
func (f *Forest) MergeShards(at vtime.Ticks, i, j int) (vtime.Ticks, error) {
	if i == j {
		return at, fmt.Errorf("core: cannot merge shard %d into itself", i)
	}
	m, done, err := f.StartMigration(at, 0, MaxMigrationKey, j, i)
	if err != nil {
		return done, err
	}
	return m.Drain(done)
}

// Drain steps the migration to completion and returns the commit time.
func (m *Migration) Drain(at vtime.Ticks) (vtime.Ticks, error) {
	for {
		done, next, err := m.Step(at)
		if err != nil {
			return next, err
		}
		at = next
		if done {
			return at, nil
		}
	}
}

// DrainUntil steps the migration until it commits or the virtual clock
// reaches deadline, whichever comes first. Chunks are atomic: the last
// one may overshoot the deadline, but no new chunk starts past it. The
// bool reports whether the migration committed.
func (m *Migration) DrainUntil(at, deadline vtime.Ticks) (bool, vtime.Ticks, error) {
	for {
		done, next, err := m.Step(at)
		if err != nil {
			return false, next, err
		}
		at = next
		if done {
			return true, at, nil
		}
		if at >= deadline {
			return false, at, nil
		}
	}
}

// coldestShard picks the shard (other than excluded) holding the fewest
// keys, preferring emptied merge targets as split destinations.
func (f *Forest) coldestShard(exclude int) (int, error) {
	best, bestKeys := -1, int64(0)
	for i, s := range f.shards {
		if i == exclude {
			continue
		}
		s.mu.Lock()
		n, q := s.tree.Count(), s.quarantined
		s.mu.Unlock()
		if q {
			// A quarantined shard rejects the migration's inserts.
			continue
		}
		if best < 0 || n < bestKeys {
			best, bestKeys = i, n
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("core: forest has no destination shard to rebalance onto")
	}
	return best, nil
}

// RebalancePolicy drives Forest.AutoRebalance off the per-shard load
// stats.
type RebalancePolicy struct {
	// MinOps is the minimum routed operations the hottest shard must have
	// absorbed since the last AutoRebalance call (default 1000).
	MinOps int64
	// HotFactor is the hottest/mean load ratio that triggers a split
	// (default 2.0).
	HotFactor float64
	// DrainBudget bounds the virtual time one AutoRebalance call may
	// spend draining its migration; 0 drains to completion. A move that
	// exceeds the budget stays in flight and later calls resume it, so a
	// stuck (or fault-injected) migration cannot freeze the poller.
	DrainBudget vtime.Ticks
}

// containedRebalanceErr reports whether a migration failure was already
// contained by the fault plane: the failing shards are quarantined (or
// the move was refused because one is) and the routing table is resolved
// at a consistent state. The autonomous poll loop treats such a failure
// as "no move this tick" — degraded mode is the heal/evacuation
// machinery's job, not its caller's — while unattributable failures
// (forest damaged) keep propagating.
func (f *Forest) containedRebalanceErr(err error) bool {
	if err == nil || f.damaged.Load() != nil {
		return false
	}
	return errors.Is(err, ErrShardQuarantined) || IsIOFault(err)
}

// AutoRebalance inspects the per-shard load deltas since its last call
// and, when one shard absorbs disproportionate traffic, splits it at its
// approximate median key toward the coldest shard. Returns whether a
// migration ran and the shard pair.
func (f *Forest) AutoRebalance(at vtime.Ticks, pol RebalancePolicy) (moved bool, from, to int, done vtime.Ticks, err error) {
	if pol.MinOps <= 0 {
		pol.MinOps = 1000
	}
	if pol.HotFactor <= 1 {
		pol.HotFactor = 2.0
	}
	// Self-healing first: probe quarantined shards (a heal needs no
	// evacuation, and a healed shard is a rebalance candidate again).
	at = f.healTick(at)
	// A move left in flight by an earlier budget-bounded poll is resumed
	// before any new one is considered.
	f.autoMu.Lock()
	pending := f.autoMig
	f.autoMu.Unlock()
	if pending != nil {
		finished, done, err := f.drainBudgeted(pending, at, pol.DrainBudget)
		if finished || err != nil {
			f.autoMu.Lock()
			f.autoMig = nil
			f.autoMu.Unlock()
		}
		if f.containedRebalanceErr(err) {
			err = nil
		}
		_, _, psrc, pdst := pending.Range()
		return finished, psrc, pdst, done, err
	}
	// A shard past its evacuation deadline outranks hotspot splitting:
	// its range is unavailable for writes until it moves.
	if ev, evDone, evErr := f.startDueEvacuation(at); ev != nil || evErr != nil {
		if evErr != nil {
			if f.containedRebalanceErr(evErr) {
				evErr = nil
			}
			return false, -1, -1, evDone, evErr
		}
		finished, done, err := f.drainBudgeted(ev, evDone, pol.DrainBudget)
		_, _, esrc, edst := ev.Range()
		if err != nil {
			if f.containedRebalanceErr(err) {
				err = nil
			}
			return false, esrc, edst, done, err
		}
		if !finished {
			f.autoMu.Lock()
			f.autoMig = ev
			f.autoMu.Unlock()
		}
		return finished, esrc, edst, done, nil
	}
	n := len(f.shards)
	deltas := make([]int64, n)
	var total int64
	f.autoMu.Lock()
	if len(f.lastOps) != n {
		f.lastOps = make([]int64, n)
	}
	for i, s := range f.shards {
		s.mu.Lock()
		ops := s.ops
		s.mu.Unlock()
		deltas[i] = ops - f.lastOps[i]
		f.lastOps[i] = ops
		total += deltas[i]
	}
	f.autoMu.Unlock()
	hot := 0
	for i := 1; i < n; i++ {
		if deltas[i] > deltas[hot] {
			hot = i
		}
	}
	mean := float64(total) / float64(n)
	if deltas[hot] < pol.MinOps || float64(deltas[hot]) <= pol.HotFactor*mean {
		return false, -1, -1, at, nil
	}
	s := f.shards[hot]
	s.mu.Lock()
	q := s.quarantined
	boundary, ok := s.tree.ApproxMedianKey()
	s.mu.Unlock()
	if q || !ok {
		// A quarantined hot shard can't stream keys out (its reads may be
		// fine, but the migration must delete from it); leave it for Heal.
		return false, -1, -1, at, nil
	}
	dst, err := f.coldestShard(hot)
	if err != nil {
		// Every other shard is quarantined: there is nowhere to split to
		// until one heals — non-fatal for the poll loop.
		return false, hot, -1, at, nil
	}
	m, done, err := f.StartMigration(at, boundary, MaxMigrationKey, hot, dst)
	if err != nil {
		if f.containedRebalanceErr(err) {
			err = nil
		}
		return false, hot, dst, done, err
	}
	finished, done, err := f.drainBudgeted(m, done, pol.DrainBudget)
	if err != nil {
		if f.containedRebalanceErr(err) {
			err = nil
		}
		return false, hot, dst, done, err
	}
	if !finished {
		f.autoMu.Lock()
		f.autoMig = m
		f.autoMu.Unlock()
	}
	return finished, hot, dst, done, nil
}

// drainBudgeted drains m fully when budget is zero, else for at most
// budget ticks of virtual time.
func (f *Forest) drainBudgeted(m *Migration, at, budget vtime.Ticks) (bool, vtime.Ticks, error) {
	if budget <= 0 {
		done, err := m.Drain(at)
		return err == nil, done, err
	}
	return m.DrainUntil(at, at+budget)
}

// migrationEvent accumulates one migration's durable records during the
// recovery scan.
type migrationEvent struct {
	id       uint64
	lo, hi   kv.Key
	src, dst int
	started  bool
	frontier kv.Key
	end      byte // 'c' committed, 'e' evacuated, 'a' aborted, 0 open
	// endLo/endHi are the End record's range: a live abort commits only
	// the prefix streamed before the fault, so the committed rule must
	// come from the End record, not the Start record.
	endLo, endHi kv.Key
	// evac marks a quarantine evacuation (Start record Op 'e'): records
	// live only in the destination's log and the source is never written.
	evac bool
}

// recoverRouting rebuilds the routing table from the durable log and
// resolves any half-done migration: committed moves re-apply their rule,
// a move with at least one durable chunk resumes from the frontier, and
// a move that never committed a chunk rolls back. Runs after the
// per-shard replay, which has already rebuilt both trees' contents from
// their redo records.
func (f *Forest) recoverRouting(at vtime.Ticks, rep *ForestRecoveryReport) (vtime.Ticks, error) {
	// Scan every distinct log once; dedupe records that land in both the
	// source and destination logs (or twice in a shared log).
	snap := f.rpart.RoutingSnapshot()
	events := make(map[uint64]*migrationEvent)
	for _, l := range f.logs {
		recs, err := l.Records()
		if err != nil {
			return at, err
		}
		for _, r := range recs {
			switch r.Kind {
			case wal.KindRoutingSnapshot:
				m, err := decodeRoutingMeta(r.UndoInfo)
				if err != nil {
					return at, err
				}
				if m.MaxCommitted > snap.MaxCommitted {
					snap = m
				}
			case wal.KindMigrationStart, wal.KindKeyMoved, wal.KindMigrationEnd:
				ev := events[r.FlushID]
				if ev == nil {
					ev = &migrationEvent{id: r.FlushID}
					events[r.FlushID] = ev
				}
				switch r.Kind {
				case wal.KindMigrationStart:
					ev.started = true
					ev.lo, ev.hi = r.KeyLo, r.KeyHi
					ev.src, ev.dst = int(r.Key), int(r.Value)
					if byte(r.Op) == 'e' {
						ev.evac = true
					}
					if ev.frontier < r.KeyLo {
						ev.frontier = r.KeyLo
					}
				case wal.KindKeyMoved:
					if r.KeyHi > ev.frontier {
						ev.frontier = r.KeyHi
					}
				case wal.KindMigrationEnd:
					ev.end = byte(r.Op)
					ev.endLo, ev.endHi = r.KeyLo, r.KeyHi
					if ev.end == 'e' {
						ev.evac = true
					}
				}
			}
		}
	}
	if err := validateRules(snap.Rules, len(f.shards)); err != nil {
		return at, err
	}
	rules := snap.Rules
	maxCommitted := snap.MaxCommitted
	evacMask := snap.Evacuated
	// The in-memory routing may already be ahead of the durable snapshot
	// (in-place recovery): committed rules are only ever published after
	// their MigrationEnd was forced, so preferring the higher
	// maxCommitted source is safe either way.
	if cur := f.rpart.cur.Load(); cur.maxCommitted > maxCommitted {
		rules = append([]MoveRule(nil), cur.rules...)
		maxCommitted = cur.maxCommitted
		evacMask = cur.evac
	}
	ids := make([]uint64, 0, len(events))
	for id := range events {
		if id > maxCommitted {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var err error
	for _, id := range ids {
		ev := events[id]
		if !ev.started {
			continue
		}
		switch ev.end {
		case 'c':
			rules = append(rules, MoveRule{Lo: ev.endLo, Hi: ev.endHi, From: ev.src, To: ev.dst, ID: ev.id})
			maxCommitted = ev.id
		case 'e':
			rules = append(rules, MoveRule{Lo: ev.endLo, Hi: ev.endHi, From: ev.src, To: ev.dst, ID: ev.id})
			evacMask |= 1 << uint(ev.src)
			maxCommitted = ev.id
		case 'a':
			maxCommitted = ev.id
		default:
			var evacuated bool
			rules, evacuated, at, err = f.resolveMigration(at, ev, rules, rep)
			if err != nil {
				return at, err
			}
			if evacuated {
				evacMask |= 1 << uint(ev.src)
			}
			maxCommitted = ev.id
		}
	}
	rt := f.rpart.cur.Load()
	f.rpart.publish(routing{
		base: rt.base, slots: rt.slots,
		rules: rules, maxCommitted: maxCommitted, evac: evacMask,
	})
	if seq := f.migIDSeq.Load(); seq < maxCommitted {
		f.migIDSeq.Store(maxCommitted)
	}
	f.rebalanceActive.Store(false)
	return at, nil
}

// resolveMigration finishes a migration the crash interrupted. The
// durable frontier partitions the range: [lo, frontier) is authoritative
// on dst (stale source copies are purged), [frontier, hi) on src
// (uncommitted destination remnants are purged). With no durable chunk
// the move rolls back; otherwise the remainder is re-streamed and the
// flip committed. All I/O is timed — it is part of the recovery cost.
//
// Evacuations (Start record Op 'e') follow the same frontier logic but
// never touch the source: no stale-copy purge below the frontier (the
// routing evac bit hides those copies), no source deletes, no records on
// the source's log — the source device may be unable to write. A resumed
// evacuation commits with End 'e' and the returned evacuated flag tells
// recoverRouting to set the source's evac bit.
func (f *Forest) resolveMigration(at vtime.Ticks, ev *migrationEvent, rules []MoveRule, rep *ForestRecoveryReport) ([]MoveRule, bool, vtime.Ticks, error) {
	n := len(f.shards)
	if ev.src < 0 || ev.src >= n || ev.dst < 0 || ev.dst >= n || ev.src == ev.dst {
		return rules, false, at, fmt.Errorf("core: migration %d recovers invalid shard pair %d->%d", ev.id, ev.src, ev.dst)
	}
	unlock := f.lockPair(ev.src, ev.dst)
	defer unlock()
	src, dst := f.shards[ev.src], f.shards[ev.dst]
	// routeSoFar resolves routing as of the rules committed before this
	// migration — the authority the purge filters check against.
	routeSoFar := func(k kv.Key) int {
		rt := routing{base: f.rpart.cur.Load().base, rules: rules}
		return rt.route(k)
	}

	var recs []kv.Record
	done := at
	var err error
	if !ev.evac {
		// Purge stale source copies below the frontier: their deletes were
		// in the crashed chunk's (or purge's) volatile tail. Evacuations
		// skip this — the source is never written and its stale copies are
		// hidden by the routing evac bit instead.
		recs, done, err = src.tree.RangeSearch(at, ev.lo, ev.frontier)
		if err != nil {
			return rules, false, done, err
		}
		for _, r := range recs {
			done, err = src.tree.Delete(done, r.Key)
			if err != nil {
				return rules, false, done, err
			}
			rep.MigrationKeysPurged++
		}
	}
	// Purge uncommitted destination remnants at or above the frontier —
	// but only keys the pre-migration routing assigns to the source; under
	// hash routing the destination legitimately holds its own keys inside
	// the migrating range.
	recs, done, err = dst.tree.RangeSearch(done, ev.frontier, ev.hi)
	if err != nil {
		return rules, false, done, err
	}
	for _, r := range recs {
		if routeSoFar(r.Key) != ev.src {
			continue
		}
		done, err = dst.tree.Delete(done, r.Key)
		if err != nil {
			return rules, false, done, err
		}
		rep.MigrationKeysPurged++
	}
	// Evacuation records ride the destination's log only; a plain
	// migration logs its end on both sides.
	logs := f.migrationLogs(ev.src, ev.dst)
	endShards := []int{ev.src, ev.dst}
	if ev.evac {
		endShards = []int{ev.dst}
		logs = nil
		if dst.tree.log != nil {
			logs = []*wal.Log{dst.tree.log}
		}
	}
	if ev.frontier <= ev.lo {
		// No chunk ever committed: roll the move back entirely. An aborted
		// evacuation leaves the source live (no evac bit) — if the device
		// is still dead, the next write re-quarantines it and the
		// evacuation deadline fires again.
		for _, si := range endShards {
			if l := f.shards[si].tree.log; l != nil {
				l.Append(wal.Record{
					Kind: wal.KindMigrationEnd, Relation: f.shards[si].tree.cfg.Relation,
					FlushID: ev.id, KeyLo: ev.lo, KeyHi: ev.hi,
					Key: uint64(ev.src), Value: uint64(ev.dst), Op: wal.OpType('a'),
				})
			}
		}
		if len(logs) > 0 {
			done, err = f.forceLogs(done, logs)
			if err != nil {
				return rules, false, done, err
			}
		}
		rep.RolledBackMigrations++
		return rules, false, done, nil
	}
	// At least one chunk committed: resume. Re-stream [frontier, hi) as
	// one recovery chunk with the usual discipline, then commit the flip.
	recs, done, err = src.tree.RangeSearch(done, ev.frontier, ev.hi)
	if err != nil {
		return rules, false, done, err
	}
	for _, r := range recs {
		done, err = dst.tree.Insert(done, r)
		if err != nil {
			return rules, false, done, err
		}
		rep.MigrationKeysMoved++
	}
	if dst.tree.log != nil {
		done, err = dst.tree.log.Force(done)
		if err != nil {
			return rules, false, done, err
		}
	}
	if ev.evac {
		if dst.tree.log != nil && len(recs) > 0 {
			dst.tree.log.Append(wal.Record{
				Kind: wal.KindKeyMoved, Relation: dst.tree.cfg.Relation,
				FlushID: ev.id, KeyLo: ev.frontier, KeyHi: ev.hi,
				Key: uint64(ev.src), Value: uint64(ev.dst),
			})
		}
	} else {
		if src.tree.log != nil && len(recs) > 0 {
			src.tree.log.Append(wal.Record{
				Kind: wal.KindKeyMoved, Relation: src.tree.cfg.Relation,
				FlushID: ev.id, KeyLo: ev.frontier, KeyHi: ev.hi,
				Key: uint64(ev.src), Value: uint64(ev.dst),
			})
		}
		for _, r := range recs {
			done, err = src.tree.Delete(done, r.Key)
			if err != nil {
				return rules, false, done, err
			}
		}
	}
	endOp := byte('c')
	if ev.evac {
		endOp = 'e'
	}
	for _, si := range endShards {
		if l := f.shards[si].tree.log; l != nil {
			l.Append(wal.Record{
				Kind: wal.KindMigrationEnd, Relation: f.shards[si].tree.cfg.Relation,
				FlushID: ev.id, KeyLo: ev.lo, KeyHi: ev.hi,
				Key: uint64(ev.src), Value: uint64(ev.dst), Op: wal.OpType(endOp),
			})
		}
	}
	if len(logs) > 0 {
		done, err = f.forceLogs(done, logs)
		if err != nil {
			return rules, false, done, err
		}
	}
	rules = append(rules, MoveRule{Lo: ev.lo, Hi: ev.hi, From: ev.src, To: ev.dst, ID: ev.id})
	rep.ResumedMigrations++
	return rules, ev.evac, done, nil
}
