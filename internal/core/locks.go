// Lock hierarchy of the forest's concurrency planes.
//
// The declarations below are machine-checked by piolint's lockorder
// analyzer: it derives the whole-program lock-acquisition graph (through
// call chains, including locks held across Migration steps and the flush
// coordinator) and fails CI on any acquisition that inverts or escapes
// this partial order.
//
// The order reflects the write path top-down: the migration gate is
// taken before any shard, a shard's mutex is held while its WAL appends
// and forces run, the WAL holds its mutex across the simulated device
// write, and the ssdio file mutex nests directly above the flashsim
// device mutex at the very bottom.
//
// Two lock classes are legitimately multi-held; their instances are
// always acquired in a canonical order:
//
// The fault injector rules on every submission unit before the file
// mutex is taken, so faultio.Plane.mu sits between the WAL and the I/O
// plane and is never held while any other lock is acquired.
//
//lint:lockorder core.Forest.migMu < core.forestShard.mu < wal.Log.mu < ssdio.File.mu < flashsim.Device.mu
//lint:lockorder core.Forest.autoMu < core.forestShard.mu
//lint:lockorder core.Concurrent.mu < wal.Log.mu
//lint:lockorder wal.Log.mu < faultio.Plane.mu
//lint:lockorder-multi core.forestShard.mu shard pairs and flush groups lock shards in ascending shard-index order
package core
