// Package core implements the paper's primary contribution: the PIO B-tree
// (Parallel I/O B-tree, Section 3), a B+-tree variant whose algorithms are
// rebuilt around psync I/O so the index exploits the internal parallelism
// of flash SSDs:
//
//   - MPSearch descends the tree level by level, reading all needed nodes
//     of a level in one psync call bounded by PioMax (Algorithm 1);
//   - updates are buffered in the Operation Queue (OPQ) and batch-applied
//     by bupdate, which reads and writes leaf pages via psync (Algorithm 2);
//   - leaves are asymmetric: L Leaf Segments (LS) of one page each with an
//     append-only entry log, so an update touches a single page; the LSMap
//     caches each leaf's last-LS id; shrink cancels insert/delete pairs
//     before splits (Section 3.2.2, Algorithm 3);
//   - prange search reads the leaves of a key range in parallel instead of
//     chasing the leaf chain (Section 3.1.2);
//   - node sizes are chosen by the cost model of Section 3.2.1/3.6.
package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kv"
	"repro/internal/pagefile"
)

// node kinds on disk.
const (
	kindInternal byte = 1
	kindLeafSeg  byte = 3
)

// internalHeaderSize is the header of an internal node page:
// kind(1) level(1) count(2) pad(12).
const internalHeaderSize = 16

// segHeaderSize is the header of every leaf segment page: kind(1)
// segIdx(1) count(2) sortedCount(4) next(8). sortedCount and next are
// meaningful only in segment 0.
const segHeaderSize = 16

// internalNode is the in-memory form of a PIO B-tree internal node
// (identical to a classic B+-tree internal node, Figure 5).
type internalNode struct {
	id       pagefile.PageID
	level    int
	keys     []kv.Key
	children []pagefile.PageID
}

// maxInternalKeys is the separator capacity of an internal node page.
func maxInternalKeys(pageSize int) int { return (pageSize - internalHeaderSize - 8) / 16 }

func (n *internalNode) encode(buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	if len(n.keys) > maxInternalKeys(len(buf)) {
		return fmt.Errorf("core: internal %d overflow: %d keys", n.id, len(n.keys))
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("core: internal %d: %d keys, %d children", n.id, len(n.keys), len(n.children))
	}
	buf[0] = kindInternal
	buf[1] = byte(n.level)
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(n.keys)))
	off := internalHeaderSize
	for _, k := range n.keys {
		binary.LittleEndian.PutUint64(buf[off:], k)
		off += 8
	}
	for _, c := range n.children {
		binary.LittleEndian.PutUint64(buf[off:], uint64(c))
		off += 8
	}
	return nil
}

func decodeInternal(id pagefile.PageID, buf []byte) (*internalNode, error) {
	if buf[0] != kindInternal {
		return nil, fmt.Errorf("core: page %d is not an internal node (kind %d)", id, buf[0])
	}
	n := &internalNode{id: id, level: int(buf[1])}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	if count > maxInternalKeys(len(buf)) {
		return nil, fmt.Errorf("core: corrupt internal %d: count %d", id, count)
	}
	n.keys = make([]kv.Key, count)
	n.children = make([]pagefile.PageID, count+1)
	off := internalHeaderSize
	for i := range n.keys {
		n.keys[i] = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	for i := range n.children {
		n.children[i] = pagefile.PageID(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return n, nil
}

// childIndex is the paper's CheckSearchNeeded predicate: the child i such
// that K[i-1] <= k < K[i].
func (n *internalNode) childIndex(k kv.Key) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if k < n.keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// leafNode is the in-memory form of an asymmetric PIO B-tree leaf: L
// segments of one page each holding an append-only log of OPQ-style
// entries. entries[:sorted] is the key-sorted base region produced by the
// last shrink (all inserts); entries[sorted:] is the appended tail in
// arrival order (any op type).
//
// A leafNode may be a partial view holding only the entries from segment
// firstSeg onward (the update path reads just the leaf tail). Segments
// before firstSeg are implied full — entries fill segments in order — so
// the total entry count is still known. sorted and next are meaningful
// only when firstSeg == 0 (full view).
type leafNode struct {
	id       pagefile.PageID // first segment's page id; segments are consecutive
	segs     int             // L
	firstSeg int             // 0 for a full view
	next     pagefile.PageID // right sibling (leaf chain)
	sorted   int
	entries  []kv.Entry // entries from segment firstSeg onward
}

// segCap is the entry capacity of one leaf segment page.
func segCap(pageSize int) int { return (pageSize - segHeaderSize) / kv.EntrySize }

// leafCap is the total entry capacity of a leaf with the given shape.
func leafCap(pageSize, segs int) int { return segs * segCap(pageSize) }

// segOf returns the segment index holding entry i.
func segOf(pageSize, i int) int { return i / segCap(pageSize) }

// totalCount returns the leaf's total entry count, including the implied
// full segments before firstSeg.
func (l *leafNode) totalCount(pageSize int) int {
	return l.firstSeg*segCap(pageSize) + len(l.entries)
}

// encodeSeg serializes segment s of the leaf into buf (one page). The
// segment must be within the view (s >= firstSeg); segment 0 metadata is
// only written from a full view.
func (l *leafNode) encodeSeg(buf []byte, s int) error {
	if s < l.firstSeg || s >= l.segs {
		return fmt.Errorf("core: leaf %d: segment %d outside view [%d,%d)", l.id, s, l.firstSeg, l.segs)
	}
	for i := range buf {
		buf[i] = 0
	}
	cap1 := segCap(len(buf))
	lo := s*cap1 - l.firstSeg*cap1
	hi := lo + cap1
	if hi > len(l.entries) {
		hi = len(l.entries)
	}
	n := 0
	if hi > lo {
		n = hi - lo
	}
	buf[0] = kindLeafSeg
	buf[1] = byte(s)
	binary.LittleEndian.PutUint16(buf[2:], uint16(n))
	if s == 0 {
		binary.LittleEndian.PutUint32(buf[4:], uint32(l.sorted))
		binary.LittleEndian.PutUint64(buf[8:], uint64(l.next))
	}
	off := segHeaderSize
	for i := lo; i < lo+n; i++ {
		kv.PutEntry(buf[off:], l.entries[i])
		off += kv.EntrySize
	}
	return nil
}

// encodeAll serializes the whole leaf into buf (segs pages); requires a
// full view.
func (l *leafNode) encodeAll(buf []byte, pageSize int) error {
	if l.firstSeg != 0 {
		return fmt.Errorf("core: leaf %d: encodeAll on partial view from seg %d", l.id, l.firstSeg)
	}
	if len(buf) != l.segs*pageSize {
		return fmt.Errorf("core: leaf %d: buffer %d bytes, want %d", l.id, len(buf), l.segs*pageSize)
	}
	for s := 0; s < l.segs; s++ {
		if err := l.encodeSeg(buf[s*pageSize:(s+1)*pageSize], s); err != nil {
			return err
		}
	}
	return nil
}

// decodeTail parses a partial leaf view from buf, which holds the
// consecutive segments starting at firstSeg. Decoding stops at the first
// non-full segment (later segments are empty by the append invariant).
func decodeTail(id pagefile.PageID, buf []byte, pageSize, segs, firstSeg int) (*leafNode, error) {
	n := len(buf) / pageSize
	l := &leafNode{id: id, segs: segs, firstSeg: firstSeg}
	for s := 0; s < n; s++ {
		page := buf[s*pageSize : (s+1)*pageSize]
		if page[0] != kindLeafSeg {
			return nil, fmt.Errorf("core: leaf %d seg %d: bad kind %d", id, firstSeg+s, page[0])
		}
		cnt := int(binary.LittleEndian.Uint16(page[2:]))
		if cnt > segCap(pageSize) {
			return nil, fmt.Errorf("core: leaf %d seg %d: count %d", id, firstSeg+s, cnt)
		}
		if firstSeg+s == 0 {
			l.sorted = int(binary.LittleEndian.Uint32(page[4:]))
			l.next = pagefile.PageID(binary.LittleEndian.Uint64(page[8:]))
		}
		off := segHeaderSize
		for i := 0; i < cnt; i++ {
			l.entries = append(l.entries, kv.GetEntry(page[off:]))
			off += kv.EntrySize
		}
		if cnt < segCap(pageSize) {
			break
		}
	}
	return l, nil
}

// fillFront upgrades a partial view to a full view using buf, the
// contents of segments [0, firstSeg).
func (l *leafNode) fillFront(buf []byte, pageSize, firstSeg int) error {
	if l.firstSeg != firstSeg {
		return fmt.Errorf("core: leaf %d: fillFront mismatch %d != %d", l.id, l.firstSeg, firstSeg)
	}
	if l.firstSeg == 0 {
		return nil
	}
	front := make([]kv.Entry, 0, firstSeg*segCap(pageSize))
	for s := 0; s < firstSeg; s++ {
		page := buf[s*pageSize : (s+1)*pageSize]
		if page[0] != kindLeafSeg {
			return fmt.Errorf("core: leaf %d seg %d: bad kind %d", l.id, s, page[0])
		}
		cnt := int(binary.LittleEndian.Uint16(page[2:]))
		if cnt != segCap(pageSize) {
			return fmt.Errorf("core: leaf %d seg %d: front segment not full (%d)", l.id, s, cnt)
		}
		if s == 0 {
			l.sorted = int(binary.LittleEndian.Uint32(page[4:]))
			l.next = pagefile.PageID(binary.LittleEndian.Uint64(page[8:]))
		}
		off := segHeaderSize
		for i := 0; i < cnt; i++ {
			front = append(front, kv.GetEntry(page[off:]))
			off += kv.EntrySize
		}
	}
	l.entries = append(front, l.entries...)
	l.firstSeg = 0
	return nil
}

// decodeLeaf parses a whole leaf from buf (segs consecutive pages).
func decodeLeaf(id pagefile.PageID, buf []byte, pageSize, segs int) (*leafNode, error) {
	if len(buf) != segs*pageSize {
		return nil, fmt.Errorf("core: leaf %d: buffer %d bytes, want %d", id, len(buf), segs*pageSize)
	}
	l := &leafNode{id: id, segs: segs}
	for s := 0; s < segs; s++ {
		page := buf[s*pageSize : (s+1)*pageSize]
		if page[0] != kindLeafSeg {
			return nil, fmt.Errorf("core: leaf %d seg %d: bad kind %d", id, s, page[0])
		}
		n := int(binary.LittleEndian.Uint16(page[2:]))
		if n > segCap(pageSize) {
			return nil, fmt.Errorf("core: leaf %d seg %d: count %d", id, s, n)
		}
		if s == 0 {
			l.sorted = int(binary.LittleEndian.Uint32(page[4:]))
			l.next = pagefile.PageID(binary.LittleEndian.Uint64(page[8:]))
		}
		off := segHeaderSize
		for i := 0; i < n; i++ {
			l.entries = append(l.entries, kv.GetEntry(page[off:]))
			off += kv.EntrySize
		}
		if n < segCap(pageSize) {
			break // later segments are empty
		}
	}
	if l.sorted > len(l.entries) {
		return nil, fmt.Errorf("core: leaf %d: sorted %d > entries %d", id, l.sorted, len(l.entries))
	}
	return l, nil
}

// lastSeg returns the segment index holding the newest entry (0 for an
// empty leaf): the last LS cached in the LSMap.
func (l *leafNode) lastSeg(pageSize int) int {
	n := l.totalCount(pageSize)
	if n == 0 {
		return 0
	}
	return segOf(pageSize, n-1)
}

// appendEntries extends the leaf's log.
func (l *leafNode) appendEntries(entries []kv.Entry) {
	l.entries = append(l.entries, entries...)
}

// lookup returns the newest entry for key k and whether any entry exists:
// the appended tail is scanned newest-first, then the sorted base region.
func (l *leafNode) lookup(k kv.Key) (kv.Entry, bool) {
	for i := len(l.entries) - 1; i >= l.sorted; i-- {
		if l.entries[i].Rec.Key == k {
			return l.entries[i], true
		}
	}
	// Binary search the base region; take the last of an equal-key run.
	lo, hi := 0, l.sorted
	for lo < hi {
		mid := (lo + hi) / 2
		if l.entries[mid].Rec.Key <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && l.entries[lo-1].Rec.Key == k {
		return l.entries[lo-1], true
	}
	return kv.Entry{}, false
}

// liveRecords resolves the leaf's log into the current sorted set of live
// records (base region plus tail, deletes and updates applied). It is the
// read half of the shrink operation and of range scans.
func (l *leafNode) liveRecords() []kv.Record {
	if len(l.entries) == l.sorted {
		// Fast path: base region only, already sorted, all inserts.
		out := make([]kv.Record, l.sorted)
		for i, e := range l.entries[:l.sorted] {
			out[i] = e.Rec
		}
		return out
	}
	// Replay the log in arrival order onto the base region. Order tracking
	// is separate from liveness: a delete followed by a re-insert of the
	// same key must not list the key twice.
	m := make(map[kv.Key]kv.Value, len(l.entries))
	inOrder := make(map[kv.Key]bool, len(l.entries))
	order := make([]kv.Key, 0, len(l.entries))
	note := func(k kv.Key) {
		if !inOrder[k] {
			inOrder[k] = true
			order = append(order, k)
		}
	}
	for _, e := range l.entries[:l.sorted] {
		note(e.Rec.Key)
		m[e.Rec.Key] = e.Rec.Value
	}
	for _, e := range l.entries[l.sorted:] {
		switch e.Op {
		case kv.OpInsert, kv.OpUpdate:
			note(e.Rec.Key)
			m[e.Rec.Key] = e.Rec.Value
		case kv.OpDelete:
			delete(m, e.Rec.Key)
		}
	}
	out := make([]kv.Record, 0, len(m))
	for _, k := range order {
		if v, ok := m[k]; ok {
			out = append(out, kv.Record{Key: k, Value: v})
		}
	}
	kv.SortRecords(out)
	return out
}

// shrink rebuilds the leaf from its live records: the paper's shrink
// operation (Section 3.2.2) — index-delete operations cancel index-insert
// operations with the same records, then the survivors are sorted into a
// fresh base region.
func (l *leafNode) shrink() {
	recs := l.liveRecords()
	l.entries = l.entries[:0]
	for _, r := range recs {
		l.entries = append(l.entries, kv.Entry{Rec: r, Op: kv.OpInsert})
	}
	l.sorted = len(l.entries)
}

// minKey returns the smallest live key (only valid for a shrunk leaf with
// at least one entry).
func (l *leafNode) minKey() kv.Key {
	if l.sorted == 0 {
		return 0
	}
	return l.entries[0].Rec.Key
}
