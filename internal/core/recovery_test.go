package core

import (
	"testing"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// newWALTree builds a PIO B-tree with a WAL on the same simulated device.
func newWALTree(t *testing.T, cfg Config) (*Tree, *wal.Log) {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	f, err := space.Create("idx", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pagefile.New(f, cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := space.Create("wal", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.NewLog(wf, cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	tr.AttachWAL(l)
	return tr, l
}

func TestRecoverWithoutWALFails(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	if _, _, err := tr.Recover(0); err == nil {
		t.Fatal("Recover without WAL accepted")
	}
}

// TestRecoverRedoUnflushedEntries: ops buffered in the OPQ (never flushed)
// must survive a crash via logical redo.
func TestRecoverRedoUnflushedEntries(t *testing.T) {
	cfg := smallCfg()
	tr, l := newWALTree(t, cfg)
	var at vtime.Ticks
	var err error
	for i := 0; i < 20; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i * 10)})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Commit point: the logical logs are forced.
	if at, err = l.Force(at); err != nil {
		t.Fatal(err)
	}
	meta := tr.Snapshot()

	tr.CrashVolatileState()
	tr.RestoreMeta(meta)
	rep, at, err := tr.Recover(at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoneEntries != 20 || rep.UndoneFlushes != 0 {
		t.Fatalf("report %+v, want 20 redone", rep)
	}
	for i := 0; i < 20; i++ {
		v, found, at2, err := tr.Search(at, uint64(i))
		if err != nil || !found || v != uint64(i*10) {
			t.Fatalf("after recovery Search(%d) = %d,%v,%v", i, v, found, err)
		}
		at = at2
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverSkipsCompletedFlush: entries consumed by a completed flush
// must NOT be redone (logical redo is not idempotent) — verified by count
// consistency.
func TestRecoverSkipsCompletedFlush(t *testing.T) {
	cfg := smallCfg()
	tr, l := newWALTree(t, cfg)
	var at vtime.Ticks
	var err error
	for i := 0; i < 50; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Flush everything (completed flush bracketed in the WAL).
	at, err = tr.FlushBatch(at, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A few more unflushed ops.
	for i := 50; i < 60; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if at, err = l.Force(at); err != nil {
		t.Fatal(err)
	}
	meta := tr.Snapshot()
	tr.CrashVolatileState()
	tr.RestoreMeta(meta)
	rep, at, err := tr.Recover(at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedEntries != 50 {
		t.Fatalf("skipped %d, want 50", rep.SkippedEntries)
	}
	if rep.RedoneEntries != 10 {
		t.Fatalf("redone %d, want 10", rep.RedoneEntries)
	}
	if tr.Count() != 60 {
		t.Fatalf("count after recovery %d, want 60", tr.Count())
	}
	for i := 0; i < 60; i++ {
		_, found, at2, err := tr.Search(at, uint64(i))
		if err != nil || !found {
			t.Fatalf("Search(%d) after recovery: %v %v", i, found, err)
		}
		at = at2
	}
}

// TestRecoverUndoIncompleteFlush: a crash mid-flush (after FlushStart and
// some node writes, before FlushEnd) must be rolled back by the flush undo
// logs, then the entries redone into the OPQ.
func TestRecoverUndoIncompleteFlush(t *testing.T) {
	cfg := smallCfg()
	tr, l := newWALTree(t, cfg)
	var at vtime.Ticks
	var err error
	for i := 0; i < 30; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i * 2), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if at, err = l.Force(at); err != nil {
		t.Fatal(err)
	}
	// Capture durable index state BEFORE the flush.
	preImage := tr.pf.File().Snapshot()
	meta := tr.Snapshot()

	// Run the flush fully (it logs FlushStart, undo images, FlushEnd)...
	if at, err = tr.FlushBatch(at, 0); err != nil {
		t.Fatal(err)
	}
	// ...then simulate the crash having hit BEFORE the FlushEnd became
	// durable: rebuild a log view without the trailing FlushEnd record.
	recs, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	hasEnd := false
	for _, r := range recs {
		if r.Kind == wal.KindFlushEnd {
			hasEnd = true
		}
	}
	if !hasEnd {
		t.Fatal("flush end record missing from durable log")
	}
	// Reconstruct: restore the index file to mid-flush state is not
	// possible (the flush wrote pages), so emulate the incomplete flush by
	// replaying the log WITHOUT the FlushEnd onto the post-flush disk:
	// recovery must restore the pre-images, returning the tree to the
	// pre-flush content, then redo the 30 inserts into the OPQ.
	dev2 := flashsim.MustDevice(flashsim.P300())
	space2 := ssdio.NewSpace(dev2)
	f2, err := space2.Create("idx", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Post-flush disk contents.
	f2.Restore(tr.pf.File().Snapshot())
	_ = preImage
	pf2, err := pagefile.New(f2, cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the allocator state by re-allocating the same page count.
	for pf2.NumPages() < tr.pf.NumPages() {
		pf2.Alloc()
	}
	tr2, err := New(pf2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wf2, err := space2.Create("wal", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := wal.NewLog(wf2, cfg.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Kind == wal.KindFlushEnd {
			continue // the crash ate the flush-end record
		}
		l2.Append(r)
	}
	if _, err := l2.Force(0); err != nil {
		t.Fatal(err)
	}
	tr2.AttachWAL(l2)
	tr2.RestoreMeta(meta) // pre-flush structural state
	rep, at2, err := tr2.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UndoneFlushes != 1 {
		t.Fatalf("undone flushes = %d, want 1", rep.UndoneFlushes)
	}
	if rep.UndoPagesApplied == 0 {
		t.Fatal("no undo pages applied")
	}
	if rep.RedoneEntries != 30 {
		t.Fatalf("redone %d, want 30", rep.RedoneEntries)
	}
	// All 30 keys must be visible (from the rebuilt OPQ).
	for i := 0; i < 30; i++ {
		v, found, at3, err := tr2.Search(at2, uint64(i*2))
		if err != nil || !found || v != uint64(i) {
			t.Fatalf("Search(%d) after undo+redo: %d,%v,%v", i*2, v, found, err)
		}
		at2 = at3
	}
	if tr2.Count() != 30 {
		t.Fatalf("count = %d, want 30", tr2.Count())
	}
}

// TestCheckpointClearsRedo: after a checkpoint, recovery has nothing to do.
func TestCheckpointClearsRedo(t *testing.T) {
	cfg := smallCfg()
	tr, l := newWALTree(t, cfg)
	var at vtime.Ticks
	var err error
	for i := 0; i < 40; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	at, err = tr.Checkpoint(at)
	if err != nil {
		t.Fatal(err)
	}
	meta := tr.Snapshot()
	tr.CrashVolatileState()
	tr.RestoreMeta(meta)
	rep, _, err := tr.Recover(at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoneEntries != 0 || rep.UndoneFlushes != 0 || rep.SkippedEntries != 0 {
		t.Fatalf("post-checkpoint recovery did work: %+v", rep)
	}
	if tr.Count() != 40 {
		t.Fatalf("count %d", tr.Count())
	}
	_ = l
}

func TestConcurrentWrapperBasics(t *testing.T) {
	tr := newTestTree(t, smallCfg())
	c := NewConcurrent(tr)
	var at vtime.Ticks
	var err error
	for i := 0; i < 500; i++ {
		at, err = c.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	v, found, at, err := c.Search(at, 250)
	if err != nil || !found || v != 250 {
		t.Fatalf("Search: %v %v %v", v, found, err)
	}
	recs, at, err := c.RangeSearch(at, 100, 110)
	if err != nil || len(recs) != 10 {
		t.Fatalf("Range: %d %v", len(recs), err)
	}
	at, err = c.Update(at, kv.Record{Key: 250, Value: 999})
	if err != nil {
		t.Fatal(err)
	}
	at, err = c.Delete(at, 251)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = c.Checkpoint(at); err != nil {
		t.Fatal(err)
	}
	if err := c.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	v, found, _, err = c.Search(0, 250)
	if err != nil || !found || v != 999 {
		t.Fatalf("after update: %v %v %v", v, found, err)
	}
	_, found, _, err = c.Search(0, 251)
	if err != nil || found {
		t.Fatalf("deleted key found: %v %v", found, err)
	}
}

// TestConcurrentFlushBlocksReaders: a flush holds the virtual index lock;
// a reader arriving mid-flush must start after the lock frees.
func TestConcurrentFlushBlocksReaders(t *testing.T) {
	cfg := smallCfg()
	cfg.OPQPages = 1
	tr := newTestTree(t, cfg)
	c := NewConcurrent(tr)
	var at vtime.Ticks
	var err error
	// Fill the OPQ exactly, then the next insert triggers a locked flush.
	capEntries := tr.opq.Cap()
	for i := 0; i < capEntries+1; i++ {
		at, err = c.Insert(at, kv.Record{Key: uint64(i), Value: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	waits, waited := c.VLockStats()
	_ = waits
	_ = waited
	// A reader at time 0 must be pushed past the flush horizon.
	_, _, done, err := c.Search(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("reader not delayed by flush lock")
	}
}
