package core

import (
	"fmt"

	"repro/internal/bufferpool"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// Config parameterizes a PIO B-tree.
type Config struct {
	// PageSize is the internal-node and Leaf Segment size in bytes (the
	// pagefile page size).
	PageSize int
	// LeafSegs is L, the leaf node size in segments (Section 3.2.2).
	LeafSegs int
	// OPQPages is O, the Operation Queue size in pages; its entry capacity
	// is OPQPages*PageSize/EntrySize.
	OPQPages int
	// PioMax bounds the number of I/Os per psync call (Section 3.1.1);
	// defaults to 64 when zero, the paper's setting.
	PioMax int
	// SPeriod is the OPQ sort period (paper default 5000).
	SPeriod int
	// BCnt bounds the entries processed by one batch update (paper default
	// 5000); <= 0 flushes the whole OPQ.
	BCnt int
	// BufferBytes is the internal-node buffer pool budget in bytes.
	BufferBytes int
	// CPUPerNode is CPU time charged per node examined.
	CPUPerNode vtime.Ticks
	// FillFactor is the bulk-load utilization (paper's U); default 0.7.
	FillFactor float64

	// DisableLSMap turns the last-LS cache off (ablation): update paths
	// then read the back half of each leaf, the paper's fallback.
	DisableLSMap bool
	// DisablePsync makes every batched read/write a sequence of sync I/Os
	// (ablation isolating the psync contribution).
	DisablePsync bool
	// SortedLeaves disables the append-only leaf optimization (ablation):
	// every leaf update reads the whole leaf, applies the operations into
	// the sorted base region, and rewrites the whole leaf — the classic
	// B+-tree behavior the paper's Section 3.2.2 replaces ("This
	// constraint makes on average a half of the entire leaf node updated
	// for every index-insert operation").
	SortedLeaves bool

	// Relation is the index relation id recorded in WAL records.
	Relation uint32

	// Retry bounds the transient-fault retry loop of every timed I/O
	// (see RetryPolicy; the zero value enables the defaults).
	Retry RetryPolicy
}

func (c *Config) fill() float64 {
	if c.FillFactor <= 0 || c.FillFactor > 1 {
		return 0.7
	}
	return c.FillFactor
}

func (c *Config) pioMax() int {
	if c.PioMax <= 0 {
		return 64
	}
	return c.PioMax
}

// LeafEntryEstimate returns the expected entries per leaf at the default
// fill factor, for sizing auxiliary structures (e.g. the LSMap budget).
func (c Config) LeafEntryEstimate() int {
	n := int(float64(leafCap(c.PageSize, c.LeafSegs)) * c.fill())
	if n < 1 {
		return 1
	}
	return n
}

// Tree is a PIO B-tree. Not safe for concurrent use; see Concurrent for
// the multi-thread wrapper of Section 4.2.
type Tree struct {
	cfg   Config
	pf    *pagefile.PageFile
	pool  *bufferpool.Pool // internal nodes only (clean frames)
	opq   *OPQ
	lsmap *LSMap

	root   pagefile.PageID
	height int // levels including the leaf level; 1 = root is a leaf
	count  int64

	// durableMeta is the structural state as of the last durable commit
	// point (creation, bulk load, inline flush commit, group-commit
	// phase 2, recovery). Quarantine rollback restores it before
	// replaying the durable log.
	durableMeta Meta

	log     *wal.Log // optional
	flushID uint64

	// gang, when non-nil, collects this tree's psync writes during a
	// forest group flush so the coordinator can submit every member's
	// writes as one cross-file psync call. Set only while the owning
	// forest shard is exclusively locked.
	gang *writeGang
	// walGang, when non-nil, defers this tree's log forces (and its
	// FlushEnd append) into the forest group's two-phase group commit:
	// the coordinator gang-forces every member log once before the data
	// gang (WAL rule) and once after (commit). Set alongside gang.
	walGang *logGang

	stats           Stats
	buf             []byte // page scratch
	pendingInternal []pendingPage
}

// Stats counts PIO B-tree activity.
type Stats struct {
	Flushes      int64 // batch-update passes
	Shrinks      int64
	LeafSplits   int64
	LeafAppends  int64
	PsyncReads   int64 // psync read calls
	PsyncWrites  int64
	GangedWrites int64 // write batches deferred into a forest gang
	SearchOps    int64
	UpdateOps    int64
	RangeOps     int64
	OPQShortcuts int64 // searches answered from the OPQ

	// Retry activity (IORetries, IORetryBackoff, IORetriesExhausted).
	retryStats
}

// New creates an empty PIO B-tree on pf.
func New(pf *pagefile.PageFile, cfg Config) (*Tree, error) {
	if pf.PageSize() != cfg.PageSize {
		return nil, fmt.Errorf("core: pagefile page size %d != config %d", pf.PageSize(), cfg.PageSize)
	}
	if cfg.LeafSegs < 1 || cfg.LeafSegs > 128 {
		return nil, fmt.Errorf("core: LeafSegs must be in [1,128], got %d", cfg.LeafSegs)
	}
	if maxInternalKeys(cfg.PageSize) < 4 || segCap(cfg.PageSize) < 4 {
		return nil, fmt.Errorf("core: page size %d too small", cfg.PageSize)
	}
	if cfg.OPQPages < 1 {
		return nil, fmt.Errorf("core: OPQPages must be >= 1, got %d", cfg.OPQPages)
	}
	frames := cfg.BufferBytes / cfg.PageSize
	if frames < 1 {
		frames = 1
	}
	pool, err := bufferpool.New(pf, frames, bufferpool.WriteThrough)
	if err != nil {
		return nil, err
	}
	opqCap := cfg.OPQPages * cfg.PageSize / kv.EntrySize
	opq, err := NewOPQ(opqCap, cfg.SPeriod)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:   cfg,
		pf:    pf,
		pool:  pool,
		opq:   opq,
		lsmap: NewLSMap(cfg.LeafSegs),
		buf:   make([]byte, cfg.PageSize),
	}
	// Empty tree: one empty leaf as root.
	leaf := &leafNode{id: t.allocLeaf(), segs: cfg.LeafSegs, next: pagefile.InvalidPage}
	if err := t.writeLeafNoCost(leaf); err != nil {
		return nil, err
	}
	t.root = leaf.id
	t.height = 1
	t.lsmap.Set(int64(leaf.id), 0)
	t.commitDurableMeta()
	return t, nil
}

// commitDurableMeta records the structural state at a durable commit
// point; quarantine rollback restores it (see rollbackToDurable).
func (t *Tree) commitDurableMeta() { t.durableMeta = t.Snapshot() }

// retryIO re-attempts a timed I/O op through the tree's retry policy,
// charging backoff on the vtime clock and counting into the tree stats.
func (t *Tree) retryIO(at vtime.Ticks, op func(vtime.Ticks) (vtime.Ticks, error)) (vtime.Ticks, error) {
	return retryTimedIO(t.cfg.Retry, &t.stats.retryStats, at, op)
}

// poolGet reads one page through the buffer pool, retrying transient
// device faults on miss fills (pool hits never fail).
func (t *Tree) poolGet(at vtime.Ticks, id pagefile.PageID) ([]byte, vtime.Ticks, error) {
	var data []byte
	at, err := t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
		var err error
		data, at, err = t.pool.Get(at, id)
		return at, err
	})
	return data, at, err
}

// AttachWAL enables write-ahead logging (Section 3.4) on the tree.
func (t *Tree) AttachWAL(l *wal.Log) { t.log = l }

// SetOPQPages resizes the operation queue to a new page budget — the
// online application of an eq.-(10) retune. The queue must hold no more
// entries than the new capacity; callers flush before shrinking. The new
// budget is volatile: a tree rebuilt for recovery starts from its
// configured pages again (the adaptation loop that chose the budget is
// expected to re-apply it).
func (t *Tree) SetOPQPages(pages int) error {
	if pages < 1 {
		return fmt.Errorf("core: OPQPages must be >= 1, got %d", pages)
	}
	if err := t.opq.SetCapacity(pages * t.cfg.PageSize / kv.EntrySize); err != nil {
		return err
	}
	t.cfg.OPQPages = pages
	return nil
}

// OPQPages returns the queue's current page budget.
func (t *Tree) OPQPages() int { return t.cfg.OPQPages }

// forceWAL makes the tree's appended log records durable. During a forest
// group flush the force is deferred instead: the log registers with the
// group's log gang, and the coordinator issues one ganged force for every
// member before any data write reaches the device. Inline forces retry
// transient faults; a retried force resubmits the whole unforced tail
// (pendingReq takes it wholesale), preserving WAL protocol order.
func (t *Tree) forceWAL(at vtime.Ticks) (vtime.Ticks, error) {
	if t.walGang != nil {
		t.walGang.need(t.log)
		return at, nil
	}
	return t.retryIO(at, t.log.Force)
}

// Count returns the number of live records (OPQ included).
func (t *Tree) Count() int64 { return t.count }

// Height returns the number of levels (the paper's H).
func (t *Tree) Height() int { return t.height }

// Stats returns a snapshot of the tree counters.
func (t *Tree) Stats() Stats { return t.stats }

// Pool exposes the internal-node buffer pool.
func (t *Tree) Pool() *bufferpool.Pool { return t.pool }

// OPQLen returns the number of queued update operations.
func (t *Tree) OPQLen() int { return t.opq.Len() }

// Fanout returns F, the max child pointers per internal node.
func (t *Tree) Fanout() int { return maxInternalKeys(t.cfg.PageSize) + 1 }

// LeafCapacity returns the entry capacity of one leaf.
func (t *Tree) LeafCapacity() int { return leafCap(t.cfg.PageSize, t.cfg.LeafSegs) }

// ApproxMedianKey returns a key that roughly halves the tree's key
// population: the middle separator of the root node, or the middle live
// record of a root leaf. AutoRebalance uses it to pick a split boundary
// without a full scan; the planning read has no simulated cost.
func (t *Tree) ApproxMedianKey() (kv.Key, bool) {
	if t.height == 1 {
		l, err := t.readWholeLeafNoCost(t.root)
		if err != nil {
			return 0, false
		}
		recs := l.liveRecords()
		if len(recs) == 0 {
			ents := t.opq.Entries()
			if len(ents) == 0 {
				return 0, false
			}
			return ents[len(ents)/2].Rec.Key, true
		}
		return recs[len(recs)/2].Key, true
	}
	buf := make([]byte, t.cfg.PageSize)
	if err := t.pf.ReadPageNoCost(t.root, buf); err != nil {
		return 0, false
	}
	n, err := decodeInternal(t.root, buf)
	if err != nil || len(n.keys) == 0 {
		return 0, false
	}
	return n.keys[len(n.keys)/2], true
}

// allocLeaf allocates LeafSegs consecutive pages and returns the first id.
func (t *Tree) allocLeaf() pagefile.PageID { return t.pf.AllocRun(t.cfg.LeafSegs) }

// writeLeafNoCost serializes a whole leaf without simulated cost.
func (t *Tree) writeLeafNoCost(l *leafNode) error {
	buf := make([]byte, l.segs*t.cfg.PageSize)
	if err := l.encodeAll(buf, t.cfg.PageSize); err != nil {
		return err
	}
	for s := 0; s < l.segs; s++ {
		if err := t.pf.WritePageNoCost(l.id+pagefile.PageID(s), buf[s*t.cfg.PageSize:(s+1)*t.cfg.PageSize]); err != nil {
			return err
		}
	}
	return nil
}

// readInternal fetches an internal node through the buffer pool.
func (t *Tree) readInternal(at vtime.Ticks, id pagefile.PageID) (*internalNode, vtime.Ticks, error) {
	data, at, err := t.poolGet(at, id)
	if err != nil {
		return nil, at, err
	}
	n, err := decodeInternal(id, data)
	if err != nil {
		return nil, at, err
	}
	return n, at + t.cfg.CPUPerNode, nil
}

// readLeafTimed reads segments [0, upto] of a leaf as one device request
// and decodes them. The partial decode is safe because appends fill
// segments in order and upto comes from the LSMap (or the full leaf size).
//
// Single-segment leaves (L=1, the paper's Section 4.2 configuration) are
// exactly one page and flow through the buffer pool like internal nodes —
// the pool simply holds whatever nodes fit, as the paper's "the rest of
// main memory space was allocated to the buffer pool" implies. Multi-
// segment leaves bypass the pool (their read cost is the Pr(L) term of
// the cost model).
func (t *Tree) readLeafTimed(at vtime.Ticks, id pagefile.PageID, upto int) (*leafNode, vtime.Ticks, error) {
	if t.cfg.LeafSegs == 1 {
		data, at, err := t.poolGet(at, id)
		if err != nil {
			return nil, at, err
		}
		l, err := decodeLeaf(id, data, t.cfg.PageSize, 1)
		return l, at + t.cfg.CPUPerNode, err
	}
	n := upto + 1
	buf := make([]byte, n*t.cfg.PageSize)
	at, err := t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
		return t.pf.ReadRun(at, id, n, buf)
	})
	if err != nil {
		return nil, at, err
	}
	l, err := t.decodePartialLeaf(id, buf, n)
	return l, at + t.cfg.CPUPerNode, err
}

// decodePartialLeaf decodes a leaf from its first n segments, treating the
// unread tail segments as empty.
func (t *Tree) decodePartialLeaf(id pagefile.PageID, buf []byte, n int) (*leafNode, error) {
	full := make([]byte, t.cfg.LeafSegs*t.cfg.PageSize)
	copy(full, buf[:n*t.cfg.PageSize])
	// Zero-fill the tail segments as valid empty segments.
	for s := n; s < t.cfg.LeafSegs; s++ {
		page := full[s*t.cfg.PageSize:]
		page[0] = kindLeafSeg
		page[1] = byte(s)
	}
	return decodeLeaf(id, full, t.cfg.PageSize, t.cfg.LeafSegs)
}

// readWholeLeafNoCost reads a full leaf without timing (setup/validation).
func (t *Tree) readWholeLeafNoCost(id pagefile.PageID) (*leafNode, error) {
	buf := make([]byte, t.cfg.LeafSegs*t.cfg.PageSize)
	for s := 0; s < t.cfg.LeafSegs; s++ {
		if err := t.pf.ReadPageNoCost(id+pagefile.PageID(s), buf[s*t.cfg.PageSize:(s+1)*t.cfg.PageSize]); err != nil {
			return nil, err
		}
	}
	return decodeLeaf(id, buf, t.cfg.PageSize, t.cfg.LeafSegs)
}

// lastLSOf returns the segment index to read from for leaf id: the LSMap
// hit gives the exact last LS; a miss (or disabled map) falls back to the
// paper's half-node bound.
func (t *Tree) lastLSOf(id pagefile.PageID) (int, bool) {
	if t.cfg.DisableLSMap {
		return t.cfg.LeafSegs - 1, false
	}
	return t.lsmap.Get(int64(id))
}

// Search looks up key k. The OPQ is inspected first (Section 3.3: "the
// search procedures inspect if there are update operations with the key
// values they are looking for"), then the tree is descended, internal
// nodes through the buffer pool and the leaf with one multi-page read.
func (t *Tree) Search(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error) {
	t.stats.SearchOps++
	if e, ok := t.opq.Lookup(k); ok {
		t.stats.OPQShortcuts++
		at += t.cfg.CPUPerNode
		switch e.Op {
		case kv.OpDelete:
			return 0, false, at, nil
		default:
			return e.Rec.Value, true, at, nil
		}
	}
	id := t.root
	var err error
	for lvl := t.height - 1; lvl > 0; lvl-- {
		var n *internalNode
		n, at, err = t.readInternal(at, id)
		if err != nil {
			return 0, false, at, err
		}
		id = n.children[n.childIndex(k)]
	}
	upto, _ := t.lastLSOf(id)
	leaf, at, err := t.readLeafTimed(at, id, upto)
	if err != nil {
		return 0, false, at, err
	}
	e, ok := leaf.lookup(k)
	if !ok || e.Op == kv.OpDelete {
		return 0, false, at, nil
	}
	return e.Rec.Value, true, at, nil
}

// Insert buffers an index-insert in the OPQ; the operation completes
// immediately unless the queue is full, in which case it pays for one
// batch update (the paper's lengthened-latency compromise).
func (t *Tree) Insert(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	return t.enqueue(at, kv.Entry{Rec: r, Op: kv.OpInsert})
}

// Delete buffers an index-delete.
func (t *Tree) Delete(at vtime.Ticks, k kv.Key) (vtime.Ticks, error) {
	return t.enqueue(at, kv.Entry{Rec: kv.Record{Key: k}, Op: kv.OpDelete})
}

// Update buffers an index-update (replacing the data pointer of a key).
func (t *Tree) Update(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	return t.enqueue(at, kv.Entry{Rec: r, Op: kv.OpUpdate})
}

func (t *Tree) enqueue(at vtime.Ticks, e kv.Entry) (vtime.Ticks, error) {
	t.stats.UpdateOps++
	var err error
	if t.opq.Full() {
		at, err = t.FlushBatch(at, t.cfg.BCnt)
		if err != nil {
			return at, err
		}
	}
	if t.log != nil {
		t.log.Append(wal.Record{
			Kind:     wal.KindLogicalRedo,
			Relation: t.cfg.Relation,
			Op:       wal.OpType(e.Op),
			Key:      e.Rec.Key,
			Value:    e.Rec.Value,
		})
	}
	if err := t.opq.Append(e); err != nil {
		return at, err
	}
	switch e.Op {
	case kv.OpInsert:
		t.count++
	case kv.OpDelete:
		t.count--
	}
	// The OPQ append cost is one main-memory page access.
	return at + t.cfg.CPUPerNode, nil
}

// Checkpoint flushes the whole OPQ and logs a checkpoint record
// (Section 3.4: "PIO B-tree also flushes all the OPQ entries ... when the
// DBMS system needs to checkpoint").
func (t *Tree) Checkpoint(at vtime.Ticks) (vtime.Ticks, error) {
	at, err := t.drain(at)
	if err != nil {
		return at, err
	}
	if t.log != nil {
		t.log.Append(wal.Record{Kind: wal.KindCheckpoint, Relation: t.cfg.Relation})
		at, err = t.retryIO(at, t.log.Force)
	}
	return at, err
}

// drain flushes the whole OPQ without logging a checkpoint record (the
// forest checkpoint drains every shard this way, then gang-forces one
// checkpoint record per shard log).
func (t *Tree) drain(at vtime.Ticks) (vtime.Ticks, error) {
	var err error
	for t.opq.Len() > 0 {
		at, err = t.FlushBatch(at, 0)
		if err != nil {
			return at, err
		}
	}
	return at, nil
}

// BulkLoad builds the tree from key-sorted records at the configured fill
// factor without simulated cost (experiment setup).
func (t *Tree) BulkLoad(recs []kv.Record) error {
	if t.count != 0 || t.opq.Len() != 0 {
		return fmt.Errorf("core: bulk load into non-empty tree")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Key >= recs[i].Key {
			return fmt.Errorf("core: bulk load input not strictly sorted at %d", i)
		}
	}
	if len(recs) == 0 {
		return nil
	}
	perLeaf := int(float64(t.LeafCapacity()) * t.cfg.fill())
	if perLeaf < 1 {
		perLeaf = 1
	}
	type built struct {
		id    pagefile.PageID
		first kv.Key
	}
	var level []built
	var prev *leafNode
	for i := 0; i < len(recs); i += perLeaf {
		end := i + perLeaf
		if end > len(recs) {
			end = len(recs)
		}
		l := &leafNode{id: t.allocLeaf(), segs: t.cfg.LeafSegs, next: pagefile.InvalidPage}
		for _, r := range recs[i:end] {
			l.entries = append(l.entries, kv.Entry{Rec: r, Op: kv.OpInsert})
		}
		l.sorted = len(l.entries)
		if prev != nil {
			prev.next = l.id
			if err := t.writeLeafNoCost(prev); err != nil {
				return err
			}
		}
		t.lsmap.Set(int64(l.id), l.lastSeg(t.cfg.PageSize))
		level = append(level, built{id: l.id, first: l.entries[0].Rec.Key})
		prev = l
	}
	if err := t.writeLeafNoCost(prev); err != nil {
		return err
	}

	keyCap := int(float64(maxInternalKeys(t.cfg.PageSize)) * t.cfg.fill())
	if keyCap < 2 {
		keyCap = 2
	}
	height := 1
	for len(level) > 1 {
		var next []built
		childCap := keyCap + 1
		for i := 0; i < len(level); {
			end := i + childCap
			if end >= len(level)-1 {
				end = len(level)
			}
			group := level[i:end]
			n := &internalNode{id: t.pf.Alloc(), level: height}
			for j, b := range group {
				n.children = append(n.children, b.id)
				if j > 0 {
					n.keys = append(n.keys, b.first)
				}
			}
			if err := n.encode(t.buf); err != nil {
				return err
			}
			if err := t.pf.WritePageNoCost(n.id, t.buf); err != nil {
				return err
			}
			next = append(next, built{id: n.id, first: group[0].first})
			i = end
		}
		level = next
		height++
	}
	t.root = level[0].id
	t.height = height
	t.count = int64(len(recs))
	t.commitDurableMeta()
	return nil
}

// CheckInvariants walks the whole tree without timing and verifies
// structural invariants: internal keys sorted, children in range, leaf
// base regions sorted, leaf chain ordered, live count consistent with the
// tracked count.
func (t *Tree) CheckInvariants() error {
	var liveTotal int64
	var walk func(id pagefile.PageID, level int, lo, hi kv.Key, hasLo, hasHi bool) error
	walk = func(id pagefile.PageID, level int, lo, hi kv.Key, hasLo, hasHi bool) error {
		if level == 0 {
			l, err := t.readWholeLeafNoCost(id)
			if err != nil {
				return err
			}
			for i := 1; i < l.sorted; i++ {
				if l.entries[i-1].Rec.Key > l.entries[i].Rec.Key {
					return fmt.Errorf("core: leaf %d base region unsorted at %d", id, i)
				}
			}
			for _, r := range l.liveRecords() {
				if hasLo && r.Key < lo {
					return fmt.Errorf("core: leaf %d key %d below bound %d", id, r.Key, lo)
				}
				if hasHi && r.Key >= hi {
					return fmt.Errorf("core: leaf %d key %d above bound %d", id, r.Key, hi)
				}
				liveTotal++
			}
			return nil
		}
		buf := make([]byte, t.cfg.PageSize)
		if err := t.pf.ReadPageNoCost(id, buf); err != nil {
			return err
		}
		n, err := decodeInternal(id, buf)
		if err != nil {
			return err
		}
		if n.level != level {
			return fmt.Errorf("core: node %d level %d, want %d", id, n.level, level)
		}
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("core: internal %d unsorted at %d", id, i)
			}
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			cHasLo, cHasHi := hasLo, hasHi
			if i > 0 {
				clo, cHasLo = n.keys[i-1], true
			}
			if i < len(n.keys) {
				chi, cHasHi = n.keys[i], true
			}
			if err := walk(c, level-1, clo, chi, cHasLo, cHasHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height-1, 0, 0, false, false); err != nil {
		return err
	}
	// Overlay the OPQ to compute the logical count.
	logical := liveTotal
	for _, e := range t.opq.Entries() {
		switch e.Op {
		case kv.OpInsert:
			logical++
		case kv.OpDelete:
			logical--
		}
	}
	if logical != t.count {
		return fmt.Errorf("core: count mismatch: logical %d, tracked %d", logical, t.count)
	}
	return nil
}
