package core

import (
	"sync"

	"repro/internal/kv"
	"repro/internal/vtime"
)

// Concurrent wraps a Tree with the paper's simple concurrency scheme
// (Section 4): searches run concurrently; the OPQ append is an instant
// in-memory operation; the whole index is exclusively locked for every OPQ
// flush ("PIO B-tree exclusively locks the entire index for every OPQ
// flush operation"); the OPQ is exclusively locked during its periodic
// sort. Because PIO B-tree has no dirty buffers, concurrent readers never
// interleave reads with writes except during a flush.
//
// Two locking planes exist:
//
//   - a real sync.Mutex making the wrapper safe for concurrent goroutine
//     use. It is plain mutual exclusion — Tree mutates shared state
//     (stats, buffer-pool LRU, LSMap counters) on every path including
//     searches, so even readers must serialize in real time;
//   - a vtime.Mutex pair reflecting the paper's critical sections in
//     virtual time (readers share the index, flushes exclude everyone),
//     which is what the experiments measure.
type Concurrent struct {
	mu   sync.Mutex
	tree *Tree // guarded by mu

	// vlock models the index-exclusive lock in virtual time.
	vlock vtime.Mutex
	// vopq models the OPQ sort lock in virtual time.
	vopq vtime.Mutex
}

// NewConcurrent wraps tree.
func NewConcurrent(tree *Tree) *Concurrent { return &Concurrent{tree: tree} }

// Tree returns the wrapped tree. The caller must ensure no concurrent
// operations are in flight before using it (e.g. after joining all
// workers); acquiring the wrapper lock here establishes the
// happens-before edge with every completed operation.
func (c *Concurrent) Tree() *Tree {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree
}

// VLockStats reports (waits, waited-ticks) on the virtual index lock. It
// is safe to poll mid-workload.
func (c *Concurrent) VLockStats() (int64, vtime.Ticks) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vlock.Waits, c.vlock.Contended
}

// Search performs a concurrent point search. Readers share the index in
// virtual time; a flush in progress (virtual lock held) delays them.
func (c *Concurrent) Search(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Readers do not take the virtual exclusive lock, but they cannot
	// start below the lock's horizon while a flush holds it.
	start := vtime.Max(at, c.vlock.FreeAt())
	return c.tree.Search(start, k)
}

// RangeSearch performs a concurrent prange search.
func (c *Concurrent) RangeSearch(at vtime.Ticks, lo, hi kv.Key) ([]kv.Record, vtime.Ticks, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := vtime.Max(at, c.vlock.FreeAt())
	return c.tree.RangeSearch(start, lo, hi)
}

// Insert buffers an insert; a full OPQ triggers an exclusively locked
// flush.
func (c *Concurrent) Insert(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	return c.update(at, kv.Entry{Rec: r, Op: kv.OpInsert})
}

// Delete buffers a delete.
func (c *Concurrent) Delete(at vtime.Ticks, k kv.Key) (vtime.Ticks, error) {
	return c.update(at, kv.Entry{Rec: kv.Record{Key: k}, Op: kv.OpDelete})
}

// Update buffers an update.
func (c *Concurrent) Update(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	return c.update(at, kv.Entry{Rec: r, Op: kv.OpUpdate})
}

func (c *Concurrent) update(at vtime.Ticks, e kv.Entry) (vtime.Ticks, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tree.opq.Full() {
		// Exclusive index lock for the flush (single-threaded, per paper).
		start := c.vlock.Acquire(at)
		done, err := c.tree.FlushBatch(start, c.tree.cfg.BCnt)
		c.vlock.Release(done)
		if err != nil {
			return done, err
		}
		at = done
	}
	// OPQ appends serialize on the (short) OPQ lock; the periodic sort
	// inside Append lengthens the hold occasionally, exactly the paper's
	// "for every speriod, the entire OPQ is exclusively locked".
	start := c.vopq.Acquire(at)
	var err error
	var done vtime.Ticks
	switch e.Op {
	case kv.OpInsert:
		done, err = c.tree.Insert(start, e.Rec)
	case kv.OpDelete:
		done, err = c.tree.Delete(start, e.Rec.Key)
	default:
		done, err = c.tree.Update(start, e.Rec)
	}
	c.vopq.Release(done)
	return done, err
}

// Checkpoint flushes everything under the exclusive lock.
func (c *Concurrent) Checkpoint(at vtime.Ticks) (vtime.Ticks, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := c.vlock.Acquire(at)
	done, err := c.tree.Checkpoint(start)
	c.vlock.Release(done)
	return done, err
}
