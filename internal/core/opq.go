package core

import (
	"fmt"

	"repro/internal/kv"
)

// OPQ is the paper's Operation Queue (Section 3.1.3): an array-based
// in-memory structure holding the index records of buffered update
// operations. The region before sortedOffset is key-sorted; appends go to
// the unsorted tail; every speriod appends the tail is sorted and merged
// into the sorted region (merge-sort style), so in-OPQ searches are a
// binary search of the sorted region plus a linear scan of the short tail.
type OPQ struct {
	entries      []kv.Entry
	sortedOffset int
	capacity     int
	speriod      int
	sinceSort    int

	// Sorts counts merge passes, Appends total appends (stats).
	Sorts   int64
	Appends int64
}

// NewOPQ creates a queue holding at most capacity entries, sorting every
// speriod appends. speriod <= 0 disables periodic sorting (always linear
// tail).
func NewOPQ(capacity, speriod int) (*OPQ, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("core: OPQ capacity must be >= 1, got %d", capacity)
	}
	return &OPQ{
		entries:  make([]kv.Entry, 0, capacity),
		capacity: capacity,
		speriod:  speriod,
	}, nil
}

// Len returns the number of queued entries.
func (q *OPQ) Len() int { return len(q.entries) }

// Cap returns the queue capacity.
func (q *OPQ) Cap() int { return q.capacity }

// Full reports whether the next append would exceed capacity.
func (q *OPQ) Full() bool { return len(q.entries) >= q.capacity }

// Append adds an update operation to the tail ("merely appends it into the
// next slot ... without considering the orders between key values"). The
// caller must flush before appending to a full queue.
func (q *OPQ) Append(e kv.Entry) error {
	if q.Full() {
		return fmt.Errorf("core: OPQ full (%d entries)", len(q.entries))
	}
	q.entries = append(q.entries, e)
	q.Appends++
	q.sinceSort++
	if q.speriod > 0 && q.sinceSort >= q.speriod {
		q.Sort()
	}
	return nil
}

// Sort merges the unsorted tail into the sorted region, preserving arrival
// order between entries with equal keys (stability keeps the conflicting
// order of operations on the same key).
func (q *OPQ) Sort() {
	if q.sortedOffset == len(q.entries) {
		q.sinceSort = 0
		return
	}
	tail := make([]kv.Entry, len(q.entries)-q.sortedOffset)
	copy(tail, q.entries[q.sortedOffset:])
	kv.SortEntries(tail)
	merged := kv.MergeEntries(q.entries[:q.sortedOffset], tail)
	q.entries = q.entries[:0]
	q.entries = append(q.entries, merged...)
	q.sortedOffset = len(q.entries)
	q.sinceSort = 0
	q.Sorts++
}

// Lookup returns the newest queued entry for key k: the unsorted tail is
// scanned newest-first (later appends win), then the sorted region is
// binary searched taking the last entry of the equal-key run.
func (q *OPQ) Lookup(k kv.Key) (kv.Entry, bool) {
	for i := len(q.entries) - 1; i >= q.sortedOffset; i-- {
		if q.entries[i].Rec.Key == k {
			return q.entries[i], true
		}
	}
	lo, hi := 0, q.sortedOffset
	for lo < hi {
		mid := (lo + hi) / 2
		if q.entries[mid].Rec.Key <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && q.entries[lo-1].Rec.Key == k {
		return q.entries[lo-1], true
	}
	return kv.Entry{}, false
}

// Range returns all queued entries with lo <= key < hi in arrival order
// (needed to overlay the OPQ onto range-search results).
func (q *OPQ) Range(lo, hi kv.Key) []kv.Entry {
	var out []kv.Entry
	for _, e := range q.entries {
		if e.Rec.Key >= lo && e.Rec.Key < hi {
			out = append(out, e)
		}
	}
	return out
}

// TakeBatch removes and returns up to bcnt entries, key-sorted, for one
// batch-update pass (the paper's bcnt latency bound). bcnt <= 0 takes
// everything. The removed entries preserve per-key arrival order.
func (q *OPQ) TakeBatch(bcnt int) []kv.Entry {
	q.Sort()
	n := len(q.entries)
	if bcnt > 0 && bcnt < n {
		n = bcnt
	}
	batch := make([]kv.Entry, n)
	copy(batch, q.entries[:n])
	remaining := len(q.entries) - n
	copy(q.entries, q.entries[n:])
	q.entries = q.entries[:remaining]
	q.sortedOffset = remaining
	return batch
}

// Entries returns the queued entries in arrival-consistent order (sorted
// region first, then tail). The slice is a copy.
func (q *OPQ) Entries() []kv.Entry {
	out := make([]kv.Entry, len(q.entries))
	copy(out, q.entries)
	return out
}

// SetCapacity changes the queue's capacity. Shrinking below the current
// entry count is rejected — flush first. Growth takes effect lazily (the
// backing array grows on demand).
func (q *OPQ) SetCapacity(capacity int) error {
	if capacity < 1 {
		return fmt.Errorf("core: OPQ capacity must be >= 1, got %d", capacity)
	}
	if len(q.entries) > capacity {
		return fmt.Errorf("core: OPQ holds %d entries, cannot shrink to %d (flush first)", len(q.entries), capacity)
	}
	q.capacity = capacity
	return nil
}

// Reset discards all queued entries (used after crash recovery rebuilds
// the queue from the log).
func (q *OPQ) Reset() {
	q.entries = q.entries[:0]
	q.sortedOffset = 0
	q.sinceSort = 0
}

// LSMap is the paper's in-memory structure caching the last-LS id of
// every leaf (Section 3.2.2). The paper stores the id biased by -⌊L/2⌋
// because B+-tree leaves are at least half full; this implementation
// keeps the same one-byte-per-leaf footprint but stores the exact id,
// because PIO leaves here can transiently hold fewer entries (the empty
// initial root, lazily deleted leaves). On a miss the caller falls back
// to reading the whole leaf.
type LSMap struct {
	segs   int // L
	m      map[int64]uint8
	hits   int64
	misses int64
}

// NewLSMap creates an LSMap for leaves of L segments.
func NewLSMap(segs int) *LSMap {
	return &LSMap{segs: segs, m: make(map[int64]uint8)}
}

// Set records the last LS id for a leaf.
func (ls *LSMap) Set(leaf int64, lastLS int) {
	if lastLS < 0 {
		lastLS = 0
	}
	if lastLS >= ls.segs {
		lastLS = ls.segs - 1
	}
	ls.m[leaf] = uint8(lastLS)
}

// Get returns the cached last LS id for a leaf; ok is false on a miss
// (the caller then reads the whole leaf, segments [0, L-1]).
func (ls *LSMap) Get(leaf int64) (int, bool) {
	v, ok := ls.m[leaf]
	if ok {
		ls.hits++
		return int(v), true
	}
	ls.misses++
	return ls.segs - 1, false
}

// Delete forgets a leaf (after merges/frees).
func (ls *LSMap) Delete(leaf int64) { delete(ls.m, leaf) }

// Len returns the number of tracked leaves.
func (ls *LSMap) Len() int { return len(ls.m) }

// SizeBytes estimates the in-memory footprint charged against the buffer
// budget (1 byte per leaf in this representation).
func (ls *LSMap) SizeBytes() int { return len(ls.m) }

// Stats returns (hits, misses).
func (ls *LSMap) Stats() (int64, int64) { return ls.hits, ls.misses }
