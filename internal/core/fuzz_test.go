package core

import (
	"encoding/binary"
	"testing"

	"repro/internal/kv"
)

// fuzzRules decodes a MoveRule list from raw bytes (16 bytes per rule),
// clamped so it passes validateRules: the fuzzer explores rule-set
// shapes, not the validator's rejection paths.
func fuzzRules(raw []byte, slots int) []MoveRule {
	var rules []MoveRule
	for len(raw) >= 16 && len(rules) < 8 {
		lo := binary.LittleEndian.Uint64(raw)
		span := binary.LittleEndian.Uint32(raw[8:])
		from := int(raw[12]) % slots
		to := int(raw[13]) % slots
		raw = raw[16:]
		if to == from {
			to = (from + 1) % slots
		}
		hi := lo + uint64(span) + 1
		if hi <= lo { // wrapped
			continue
		}
		rules = append(rules, MoveRule{Lo: lo, Hi: hi, From: from, To: to, ID: uint64(len(rules) + 1)})
	}
	return rules
}

// FuzzRoute checks the routing invariant online rebalancing rests on:
// whatever committed move rules and in-flight frontier a
// RebalancingPartitioner carries, every key resolves to exactly one
// shard inside [0, slots), and RangeShards always returns an ascending,
// duplicate-free superset containing that shard.
func FuzzRoute(f *testing.F) {
	f.Add(uint64(10), uint64(0), uint64(100), []byte{})
	f.Add(uint64(5), uint64(0), uint64(9),
		[]byte{1, 0, 0, 0, 0, 0, 0, 0, 50, 0, 0, 0, 0, 1, 0, 0})
	f.Add(^uint64(0), ^uint64(0)-1, ^uint64(0), []byte{
		0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 2, 3, 0, 0,
		10, 0, 0, 0, 0, 0, 0, 0, 90, 0, 0, 0, 3, 2, 0, 0,
	})

	f.Fuzz(func(t *testing.T, key, lo, hi uint64, raw []byte) {
		slots := 2
		if len(raw) > 0 {
			slots = 2 + int(raw[0]%6)
		}
		for _, base := range []Partitioner{
			HashPartitioner{N: slots},
			rangePartitionerFor(slots),
		} {
			p, err := NewRebalancingPartitioner(base, slots)
			if err != nil {
				t.Fatalf("NewRebalancingPartitioner: %v", err)
			}
			rules := fuzzRules(raw, slots)
			if err := validateRules(rules, slots); err != nil {
				t.Fatalf("fuzzRules produced an invalid rule set: %v", err)
			}
			rt := *p.cur.Load()
			rt.rules = rules
			if len(raw) >= 2 && raw[1]%2 == 1 && hi > lo {
				// An in-flight migration with a mid-range frontier.
				src := int(raw[1]/2) % slots
				rt.mig = &migRoute{
					id: 99, lo: lo, hi: hi,
					src: src, dst: (src + 1) % slots,
					frontier: lo + (hi-lo)/2,
				}
			}
			p.publish(rt)

			checkRoute := func(k kv.Key) int {
				s := p.Shard(k)
				if s < 0 || s >= slots {
					t.Fatalf("key %d routed to shard %d outside [0,%d)", k, s, slots)
				}
				return s
			}
			checkRoute(key)
			if hi > lo {
				shards := p.RangeShards(lo, hi)
				for i := 1; i < len(shards); i++ {
					if shards[i] <= shards[i-1] {
						t.Fatalf("RangeShards(%d,%d) not strictly ascending: %v", lo, hi, shards)
					}
				}
				covered := make(map[int]bool, len(shards))
				for _, s := range shards {
					if s < 0 || s >= slots {
						t.Fatalf("RangeShards(%d,%d) contains shard %d outside [0,%d)", lo, hi, s, slots)
					}
					covered[s] = true
				}
				// Sample the range edges and midpoint: each sampled key's
				// owner must be in the superset.
				for _, k := range []kv.Key{lo, lo + (hi-lo)/2, hi - 1} {
					if s := checkRoute(k); !covered[s] {
						t.Fatalf("key %d routes to shard %d, missing from RangeShards(%d,%d)=%v", k, s, lo, hi, shards)
					}
				}
			}
			// Routing is deterministic: the same key resolves identically on
			// a second load of the same snapshot.
			if a, b := p.Shard(key), p.Shard(key); a != b {
				t.Fatalf("key %d routed to %d then %d on one snapshot", key, a, b)
			}
		}
	})
}

// rangePartitionerFor splits the key space into slots even spans.
func rangePartitionerFor(slots int) RangePartitioner {
	bounds := make([]kv.Key, slots-1)
	span := ^kv.Key(0) / kv.Key(slots)
	for i := range bounds {
		bounds[i] = kv.Key(i+1) * span
	}
	return RangePartitioner{Bounds: bounds}
}
