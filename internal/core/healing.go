// Self-healing control plane of the forest: auto-heal probing of
// quarantined shards and evacuation of shards whose device never comes
// back. The fault plane (resilience.go) CONTAINS a failure — retry,
// then quarantine; this file is what un-does the containment without an
// operator: a quarantined shard periodically probes its device and
// re-admits itself through the Heal path when the device answers, and a
// shard that stays dead past a deadline has its key range migrated onto
// healthy shards, so a permanently failed device degrades capacity
// instead of availability. Everything runs off the AutoRebalance poll
// and is scheduled purely in virtual time, so runs stay
// byte-deterministic.
package core

import (
	"fmt"

	"repro/internal/kv"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// HealPolicy drives the auto-heal prober. After quarantine, the shard
// issues a cheap probe I/O every ProbeInterval; each failed probe (or
// failed Heal replay) doubles the gap up to MaxProbeInterval. The zero
// value means "defaults", so every forest gets self-healing without
// opting in; set Disabled for the operator-driven Heal-only behaviour.
type HealPolicy struct {
	// Disabled turns the prober off; Forest.Heal remains available.
	Disabled bool
	// ProbeInterval is the delay from quarantine to the first probe,
	// doubling per failed probe (0 means the default, 500µs).
	ProbeInterval vtime.Ticks
	// MaxProbeInterval caps the exponential probe gap (0 means the
	// default, 8ms).
	MaxProbeInterval vtime.Ticks
}

// Default probe cadence: the first probe comes quickly (transient fault
// windows are short), the cap keeps a dead device from being hammered
// while staying well below the evacuation deadline.
const (
	defaultProbeInterval    = 500 * vtime.Microsecond
	defaultMaxProbeInterval = 8 * vtime.Millisecond
)

// norm resolves the zero-value defaults.
func (p HealPolicy) norm() HealPolicy {
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = defaultProbeInterval
	}
	if p.MaxProbeInterval <= 0 {
		p.MaxProbeInterval = defaultMaxProbeInterval
	}
	if p.MaxProbeInterval < p.ProbeInterval {
		p.MaxProbeInterval = p.ProbeInterval
	}
	return p
}

// EvacuationPolicy bounds how long a quarantined shard may stay
// un-healed before AutoRebalance migrates its range onto healthy shards.
type EvacuationPolicy struct {
	// Disabled turns auto-evacuation off: a dead shard stays quarantined
	// until Heal or Recover.
	Disabled bool
	// After is the vtime a shard may stay quarantined — measured from the
	// incident start, which survives intermediate heals that never reach
	// a durable flush — before its range is evacuated (0 means the
	// default, 25ms).
	After vtime.Ticks
}

// defaultEvacuateAfter leaves the prober several capped-gap attempts
// before the range is given up on.
const defaultEvacuateAfter = 25 * vtime.Millisecond

// norm resolves the zero-value default.
func (p EvacuationPolicy) norm() EvacuationPolicy {
	if p.After <= 0 {
		p.After = defaultEvacuateAfter
	}
	return p
}

// probe issues one cheap read of the shard's root page — the smallest
// I/O that proves the device answers at all. Caller holds s.mu.
func (s *forestShard) probe(at vtime.Ticks) (vtime.Ticks, error) {
	t := s.tree
	return t.pf.ReadRun(at, t.root, 1, make([]byte, t.cfg.PageSize))
}

// healTick is the auto-heal prober: every quarantined, non-evacuated
// shard whose probe deadline passed issues a probe read and, when the
// device answers, attempts the full Heal replay. A failed probe or
// replay doubles the shard's probe gap up to the policy cap. Shards are
// visited in ascending index order so concurrent schedules cannot
// reorder probe outcomes. Returns the completion time of the probes
// performed.
func (f *Forest) healTick(at vtime.Ticks) vtime.Ticks {
	if f.heal.Disabled {
		return at
	}
	done := at
	for si, s := range f.shards {
		if f.rpart.IsEvacuated(si) {
			continue
		}
		s.mu.Lock()
		//lint:ignore guardedby s.mu acquired above
		if !s.quarantined || s.nextProbeAt == 0 || at < s.nextProbeAt {
			s.mu.Unlock()
			continue
		}
		f.healProbes.Add(1)
		pd, err := s.probe(at)
		if err == nil {
			// The device answered the probe; the Heal replay (force the log
			// tail, roll back to durable, replay) is the real re-admission
			// test — a read-only device passes probes but fails here.
			pd, err = f.healLocked(pd, si, s)
			if err == nil {
				f.autoHeals.Add(1)
			}
		}
		if err != nil {
			s.probeGap *= 2
			if s.probeGap > f.heal.MaxProbeInterval {
				s.probeGap = f.heal.MaxProbeInterval
			}
			s.nextProbeAt = pd + s.probeGap
		}
		s.mu.Unlock()
		done = vtime.Max(done, pd)
	}
	return done
}

// healLocked is the body of Forest.Heal: caller holds s.mu and has
// checked that the shard is quarantined and not evacuated.
func (f *Forest) healLocked(at vtime.Ticks, shard int, s *forestShard) (vtime.Ticks, error) {
	// Force the shard's log tail first: an aborted migration leaves its
	// compensation records (and any stranded appends) in the unforced
	// tail, and the rollback replay below reads only durable records. If
	// the force still fails the device hasn't recovered — Heal fails, but
	// the shard is exactly as quarantined as before: its in-memory state
	// was not touched, so reads stay on.
	done := at
	if s.tree.log != nil {
		// The heal-probe record makes the force a genuine write even when
		// the rolled-back tail is empty: re-admission must prove the log
		// device accepts writes, not just reads — a read-only device
		// passes the probe read and would otherwise "heal" through an
		// empty tail, flap on the next flush, and never reach the
		// evacuation deadline's rescue. Replay scans ignore the record.
		s.tree.log.Append(wal.Record{Kind: wal.KindHealProbe, Relation: s.tree.cfg.Relation})
		var err error
		done, err = s.tree.retryIO(done, s.tree.log.Force)
		if err != nil {
			return done, fmt.Errorf("core: Heal shard %d: force tail: %w", shard, err)
		}
	}
	done, err := s.tree.rollbackToDurable(done)
	if err != nil {
		// A half-applied replay leaves memory incoherent: reads stay off
		// too until a replay goes through.
		s.qDirty = true
		return done, fmt.Errorf("core: Heal shard %d: %w", shard, err)
	}
	//lint:ignore guardedby caller holds s.mu (see contract above)
	s.quarantined, s.qDirty, s.qErr = false, false, nil
	s.nextProbeAt, s.probeGap = 0, 0
	// quarantinedAt stays: only a durable flush commit proves the device
	// is really back. A flapping device that heals and re-fails keeps its
	// original incident clock, so the evacuation deadline stays bounded.
	return done, nil
}

// startDueEvacuation scans for a shard past its evacuation deadline and
// starts the evacuation migration. A shard qualifies when it is
// quarantined with a coherent in-memory state (a dirty one has nothing
// trustworthy to stream), not yet evacuated, and its incident clock
// exceeded the policy deadline. Returns nil when nothing is due, no
// destination exists, or a migration is already in flight.
func (f *Forest) startDueEvacuation(at vtime.Ticks) (*Migration, vtime.Ticks, error) {
	if f.evac.Disabled {
		return nil, at, nil
	}
	for si, s := range f.shards {
		if si >= 64 || f.rpart.IsEvacuated(si) {
			// The evacuated set is a 64-bit mask in the durable routing
			// snapshot; forests beyond that (none realistic) heal only.
			continue
		}
		s.mu.Lock()
		due := s.quarantined && !s.qDirty && s.quarantinedAt > 0 &&
			at >= s.quarantinedAt+f.evac.After
		s.mu.Unlock()
		if !due {
			continue
		}
		if !f.rebalanceActive.CompareAndSwap(false, true) {
			return nil, at, nil // a migration is in flight; next poll retries
		}
		m, done, err := f.startEvacuation(at, si)
		if err != nil {
			f.rebalanceActive.Store(false)
			return nil, done, err
		}
		return m, done, nil
	}
	return nil, at, nil
}

// startEvacuation begins migrating the quarantined shard src's whole
// range onto the coldest healthy shard by replaying committed state
// through the migration protocol. It differs from StartMigration in
// exactly the ways a dead device forces: the source is quarantined by
// construction, and every migration record rides the DESTINATION's log
// (the source's device may never accept another write; recovery scans
// all logs and keys migration events by FlushID, so dst-only records
// recover fine). The Start and End records carry Op 'e' so recovery
// resolves the move with evacuation rules.
func (f *Forest) startEvacuation(at vtime.Ticks, src int) (*Migration, vtime.Ticks, error) {
	dst, err := f.coldestShard(src)
	if err != nil {
		// No healthy destination: stay quarantined rather than fail the
		// poll — capacity may come back (a heal) before the next tick.
		return nil, at, nil
	}
	f.migMu.Lock()
	defer f.migMu.Unlock()
	s := f.shards[src]
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore guardedby s.mu acquired above
	if !s.quarantined || s.qDirty {
		return nil, at, nil // healed (or degraded further) since the scan
	}

	// Plan the chunk schedule from the shard's committed state — the
	// rollback at quarantine time left the tree (and its OPQ) exactly
	// there, so a timed scan is both safe and complete.
	lo, hi := kv.Key(0), MaxMigrationKey
	start := s.vlock.Acquire(at)
	recs, done, err := s.tree.RangeSearch(start, lo, hi)
	if err != nil {
		s.vlock.Release(done)
		return nil, done, err
	}
	chunk := f.migChunk
	bounds := []kv.Key{lo}
	for i := chunk; i < len(recs); i += chunk {
		if k := recs[i].Key; k > bounds[len(bounds)-1] && k < hi {
			bounds = append(bounds, k)
		}
	}
	bounds = append(bounds, hi)

	m := &Migration{f: f, id: f.nextMigrationID(), lo: lo, hi: hi, src: src, dst: dst, bounds: bounds, evac: true}
	if l := f.shards[dst].tree.log; l != nil {
		l.Append(wal.Record{
			Kind: wal.KindMigrationStart, Relation: f.shards[dst].tree.cfg.Relation,
			FlushID: m.id, KeyLo: lo, KeyHi: hi,
			Key: uint64(src), Value: uint64(dst), Op: wal.OpType('e'),
		})
		done, err = f.forceLogs(done, []*wal.Log{l})
		if err != nil {
			s.vlock.Release(done)
			return nil, done, err
		}
	}
	rt := f.rpart.cur.Load()
	next := *rt
	next.mig = &migRoute{id: m.id, lo: lo, hi: hi, src: src, dst: dst, frontier: lo}
	f.rpart.publish(next)
	s.vlock.Release(done)
	return m, done, nil
}

// failEvacuation aborts an evacuation after an I/O failure mid-chunk.
// Caller holds migMu and both shard locks. The source never deleted
// anything, so the cleanup is one-sided: quarantine the failing
// destination, purge every copy the evacuation streamed onto it —
// durable committed chunks included, since without the evacuated mark
// the source would still be swept and the copies would double-count —
// and close the migration with an abort record. The source stays
// quarantined and non-evacuated; a later poll retries from scratch.
func (f *Forest) failEvacuation(at vtime.Ticks, m *Migration, recs []kv.Record, cause error) (vtime.Ticks, error) {
	dst := f.shards[m.dst]
	rt := f.rpart.cur.Load()
	frontier := m.lo
	if rt.mig != nil && rt.mig.id == m.id {
		frontier = rt.mig.frontier
	}
	done := f.quarantineShard(at, dst, cause)
	if f.damaged.Load() != nil {
		return done, cause
	}
	// routeSoFar is the committed-rules authority: destination keys the
	// pre-evacuation routing assigns to the source are evacuation copies;
	// everything else is the destination's own data.
	routeSoFar := func(k kv.Key) int {
		r := routing{base: rt.base, rules: rt.rules}
		return r.route(k)
	}
	if dst.tree.log != nil {
		purge, pd, err := dst.tree.RangeSearch(done, m.lo, frontier)
		done = pd
		if err == nil {
			for _, r := range purge {
				if routeSoFar(r.Key) != m.src {
					continue
				}
				done, err = dst.tree.Delete(done, r.Key)
				if err != nil {
					break
				}
			}
		}
		if err == nil {
			// The in-flight chunk's copies (not yet behind the frontier).
			for _, r := range recs {
				done, err = dst.tree.Delete(done, r.Key)
				if err != nil {
					break
				}
			}
		}
		if err != nil {
			f.setDamaged(fmt.Errorf("core: evacuation %d abort purge failed: %w (original fault: %v)", m.id, err, cause))
			return done, cause
		}
		dst.tree.log.Append(wal.Record{
			Kind: wal.KindMigrationEnd, Relation: dst.tree.cfg.Relation,
			FlushID: m.id, KeyLo: m.lo, KeyHi: m.hi,
			Key: uint64(m.src), Value: uint64(m.dst), Op: wal.OpType('a'),
		})
		if d, err := f.forceLogs(done, []*wal.Log{dst.tree.log}); err == nil {
			done = d
		}
		// A failed force is fine: the End stays in the tail and crash
		// recovery resolves the open evacuation from its durable frontier.
	}
	next := *rt
	next.mig = nil
	next.maxCommitted = m.id
	f.rpart.publish(next)
	f.migrationAborts.Add(1)
	f.rebalanceActive.Store(false)
	return done, fmt.Errorf("core: evacuation %d of shard %d aborted, destination %d quarantined: %w",
		m.id, m.src, m.dst, cause)
}

// commitEvacuation makes the evacuation's routing flip durable (End 'e'
// on the destination's log) and publishes the rerouting rule plus the
// source's evacuated mark: from here on sweeps skip the source's stale
// physical copies and the quarantine stops blocking log truncation.
// Caller holds migMu and both shard locks via commitMigration.
func (f *Forest) commitEvacuation(at vtime.Ticks, m *Migration) (vtime.Ticks, error) {
	done := at
	dst := f.shards[m.dst]
	if dst.tree.log != nil {
		dst.tree.log.Append(wal.Record{
			Kind: wal.KindMigrationEnd, Relation: dst.tree.cfg.Relation,
			FlushID: m.id, KeyLo: m.lo, KeyHi: m.hi,
			Key: uint64(m.src), Value: uint64(m.dst), Op: wal.OpType('e'),
		})
		var err error
		done, err = f.forceLogs(done, []*wal.Log{dst.tree.log})
		if err != nil {
			if !IsIOFault(err) {
				f.setDamaged(err)
				return done, err
			}
			// Every chunk is durably committed; only the End force failed.
			// The rule may publish regardless (a crash resolves the open
			// evacuation from its durable frontier = hi, converging to the
			// same state), but the destination's log device is failing —
			// quarantine it.
			done = f.quarantineShard(done, dst, err)
		}
	}
	rt := f.rpart.cur.Load()
	next := *rt
	next.rules = append(append([]MoveRule(nil), rt.rules...),
		MoveRule{Lo: m.lo, Hi: m.hi, From: m.src, To: m.dst, ID: m.id})
	next.maxCommitted = m.id
	next.mig = nil
	next.evac |= 1 << uint(m.src)
	f.rpart.publish(next)
	f.migrations.Add(1)
	f.evacuations.Add(1)
	// Keep the source quarantined (flushes, checkpoints and rebalancing
	// must keep skipping it) but record why, and stop the heal prober —
	// an evacuated shard has nothing left to re-admit.
	s := f.shards[m.src]
	//lint:ignore guardedby caller holds both shard locks via commitMigration's lockPair
	s.qErr = fmt.Errorf("core: shard %d evacuated to shard %d (migration %d)", m.src, m.dst, m.id)
	s.nextProbeAt, s.probeGap = 0, 0
	f.rebalanceActive.Store(false)
	return done, nil
}
