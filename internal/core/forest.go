package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// Partitioner assigns keys to the shards of a Forest.
type Partitioner interface {
	// Shards returns the number of partitions.
	Shards() int
	// Shard returns the shard index owning key k.
	Shard(k kv.Key) int
	// RangeShards returns the ascending shard indexes that may hold keys
	// in [lo, hi).
	RangeShards(lo, hi kv.Key) []int
}

// mix64 is the splitmix64 finalizer, a cheap full-avalanche hash used to
// spread keys uniformly across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashPartitioner spreads keys across N shards with a 64-bit mix. Range
// searches touch every shard.
type HashPartitioner struct{ N int }

// Shards returns N.
func (h HashPartitioner) Shards() int { return h.N }

// Shard hashes k into [0, N).
func (h HashPartitioner) Shard(k kv.Key) int { return int(mix64(k) % uint64(h.N)) }

// RangeShards returns every shard: a hash partition cannot prune ranges.
func (h HashPartitioner) RangeShards(lo, hi kv.Key) []int {
	out := make([]int, h.N)
	for i := range out {
		out[i] = i
	}
	return out
}

// RangePartitioner splits the key space at ascending boundary keys: shard
// i covers [Bounds[i-1], Bounds[i]) with open outer edges, so range
// searches touch only the overlapping shards.
type RangePartitioner struct{ Bounds []kv.Key }

// Shards returns len(Bounds)+1.
func (r RangePartitioner) Shards() int { return len(r.Bounds) + 1 }

// Shard binary-searches the boundary list.
func (r RangePartitioner) Shard(k kv.Key) int {
	return sort.Search(len(r.Bounds), func(i int) bool { return k < r.Bounds[i] })
}

// RangeShards returns the shards overlapping [lo, hi).
func (r RangePartitioner) RangeShards(lo, hi kv.Key) []int {
	if hi <= lo {
		return nil
	}
	first := r.Shard(lo)
	last := r.Shard(hi - 1)
	out := make([]int, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, i)
	}
	return out
}

// writeGang accumulates the deferred psync writes of one forest group
// flush, per page file in first-use order (kept deterministic), so the
// coordinator can concatenate every member's batch writes into a single
// psync submission.
type writeGang struct {
	order []*pagefile.PageFile
	reqs  map[*pagefile.PageFile][]ssdio.Req
}

func newWriteGang() *writeGang {
	return &writeGang{reqs: make(map[*pagefile.PageFile][]ssdio.Req)}
}

// add defers the given write runs of pf into the gang.
func (g *writeGang) add(pf *pagefile.PageFile, runs []pagefile.RunReq) error {
	rs, err := pf.GatherRuns(runs)
	if err != nil {
		return err
	}
	if _, ok := g.reqs[pf]; !ok {
		g.order = append(g.order, pf)
	}
	g.reqs[pf] = append(g.reqs[pf], rs...)
	return nil
}

// submit issues every collected write as one cross-file psync call and
// returns its completion time.
func (g *writeGang) submit(at vtime.Ticks) (vtime.Ticks, error) {
	if len(g.order) == 0 {
		return at, nil
	}
	batches := make([]ssdio.GangBatch, len(g.order))
	for i, pf := range g.order {
		batches[i] = ssdio.GangBatch{F: pf.File(), Reqs: g.reqs[pf]}
	}
	return ssdio.PsyncGang(at, batches)
}

// ForestConfig parameterizes a sharded PIO forest.
type ForestConfig struct {
	// Partitioner routes keys to shards; nil defaults to a HashPartitioner
	// over the number of page files passed to NewForest.
	Partitioner Partitioner
	// RipeFraction is the OPQ fill ratio at which a shard joins a group
	// flush triggered by another shard (0 < f <= 1; default 0.5). Lower
	// values merge more aggressively.
	RipeFraction float64
	// Shard is the per-shard tree configuration, except that OPQPages and
	// BufferBytes are GLOBAL budgets which the forest splits evenly across
	// shards (each shard keeps at least one OPQ page / one buffer frame),
	// extending the eq.-(10) tuning to the sharded setting.
	Shard Config
}

// forestShard pairs one PIO B-tree with its two locking planes: the real
// mutex makes the unsynchronized Tree safe for goroutine use (plain
// mutual exclusion — the simulator executes one operation at a time), and
// the virtual locks model the paper's concurrency scheme per shard
// (searches share the index; an OPQ flush excludes everything, but now
// only within its own shard).
type forestShard struct {
	mu    sync.Mutex
	tree  *Tree
	vlock vtime.Mutex // per-shard index-exclusive lock (flushes)
	vopq  vtime.Mutex // per-shard OPQ append/sort lock
}

// ripe reports whether the shard's OPQ is filled to the given fraction.
// Caller holds s.mu.
func (s *forestShard) ripe(frac float64) bool {
	n := s.tree.opq.Len()
	min := int(frac * float64(s.tree.opq.Cap()))
	if min < 1 {
		min = 1
	}
	return n >= min
}

// Forest is a sharded PIO B-tree: keys are partitioned across independent
// trees, each with its own OPQ and pagefile region, replacing the single
// whole-index exclusive flush lock with per-shard locks. A flush on one
// shard no longer blocks searches on any other. When several shards'
// OPQs are ripe at flush time, the coordinator flushes them as a group
// starting at the same virtual instant and concatenates their batch
// writes into a single psync submission — a second level of the paper's
// eq.-(10) batching that keeps the device's channels saturated.
//
// All methods are safe for concurrent goroutine use.
type Forest struct {
	part     Partitioner
	shards   []*forestShard
	ripeFrac float64

	groupFlushes  atomic.Int64
	groupedShards atomic.Int64
	gangSubmits   atomic.Int64
}

// ForestStats aggregates shard counters and coordinator activity.
type ForestStats struct {
	// Shards is the partition count.
	Shards int
	// Tree sums the per-shard tree counters.
	Tree Stats
	// GroupFlushes counts coordinator invocations, GroupedShards the
	// shards they flushed (GroupedShards/GroupFlushes = mean group size).
	GroupFlushes  int64
	GroupedShards int64
	// GangSubmits counts merged cross-shard psync submissions.
	GangSubmits int64
	// VLockWaits / VLockContended sum the per-shard virtual index-lock
	// contention.
	VLockWaits     int64
	VLockContended vtime.Ticks
	// Pending is the total number of OPQ-buffered operations.
	Pending int
}

// NewForest builds a forest of len(pfs) shards, one tree per page file.
// The page files must live on files of one ssdio.Space (one device) for
// group flushes to merge their submissions. cfg.Shard.OPQPages and
// cfg.Shard.BufferBytes are global budgets split evenly across shards.
func NewForest(pfs []*pagefile.PageFile, cfg ForestConfig) (*Forest, error) {
	n := len(pfs)
	if n < 1 {
		return nil, fmt.Errorf("core: forest needs at least one shard")
	}
	if cfg.Shard.PageSize <= 0 {
		return nil, fmt.Errorf("core: forest shard config needs a positive PageSize, got %d", cfg.Shard.PageSize)
	}
	part := cfg.Partitioner
	if part == nil {
		part = HashPartitioner{N: n}
	}
	if part.Shards() != n {
		return nil, fmt.Errorf("core: partitioner has %d shards, %d page files given", part.Shards(), n)
	}
	if rp, ok := part.(RangePartitioner); ok {
		for i := 1; i < len(rp.Bounds); i++ {
			if rp.Bounds[i-1] >= rp.Bounds[i] {
				return nil, fmt.Errorf("core: range partitioner bounds not ascending at %d", i)
			}
		}
	}
	ripe := cfg.RipeFraction
	if ripe <= 0 || ripe > 1 {
		ripe = 0.5
	}
	shardCfg := cfg.Shard
	shardCfg.OPQPages = splitBudget(cfg.Shard.OPQPages, n)
	shardCfg.BufferBytes = splitBudget(cfg.Shard.BufferBytes/cfg.Shard.PageSize, n) * cfg.Shard.PageSize
	f := &Forest{part: part, ripeFrac: ripe}
	for i, pf := range pfs {
		c := shardCfg
		c.Relation = cfg.Shard.Relation + uint32(i)
		tr, err := New(pf, c)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		f.shards = append(f.shards, &forestShard{tree: tr})
	}
	return f, nil
}

// splitBudget divides a global page budget across n shards, keeping at
// least one page per shard.
func splitBudget(global, n int) int {
	per := global / n
	if per < 1 {
		per = 1
	}
	return per
}

// ShardCount returns the number of shards.
func (f *Forest) ShardCount() int { return len(f.shards) }

// ShardTree returns shard i's tree for inspection. The caller must ensure
// no concurrent forest use (testing/validation only).
func (f *Forest) ShardTree(i int) *Tree {
	s := f.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree
}

// BulkLoad partitions key-sorted records across the shards and bulk-loads
// each (initial setup, no simulated cost).
func (f *Forest) BulkLoad(recs []kv.Record) error {
	parts := make([][]kv.Record, len(f.shards))
	for _, r := range recs {
		si := f.part.Shard(r.Key)
		parts[si] = append(parts[si], r)
	}
	for i, s := range f.shards {
		s.mu.Lock()
		err := s.tree.BulkLoad(parts[i])
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: forest shard %d: %w", i, err)
		}
	}
	return nil
}

// Search performs a point search on the owning shard. In virtual time,
// readers share the shard but cannot start below its flush lock horizon;
// flushes on other shards do not delay them at all.
func (f *Forest) Search(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error) {
	s := f.shards[f.part.Shard(k)]
	s.mu.Lock()
	defer s.mu.Unlock()
	start := vtime.Max(at, s.vlock.FreeAt())
	return s.tree.Search(start, k)
}

// SearchMany partitions the keys across shards and runs one MPSearch per
// involved shard, all starting at the caller's time (the shard descents
// proceed in parallel in virtual time); the result is the merged map and
// the latest completion.
func (f *Forest) SearchMany(at vtime.Ticks, keys []kv.Key) (map[kv.Key]kv.Value, vtime.Ticks, error) {
	byShard := make(map[int][]kv.Key)
	for _, k := range keys {
		si := f.part.Shard(k)
		byShard[si] = append(byShard[si], k)
	}
	out := make(map[kv.Key]kv.Value, len(keys))
	done := at
	for si := 0; si < len(f.shards); si++ {
		ks, ok := byShard[si]
		if !ok {
			continue
		}
		s := f.shards[si]
		s.mu.Lock()
		start := vtime.Max(at, s.vlock.FreeAt())
		m, d, err := s.tree.SearchMany(start, ks)
		s.mu.Unlock()
		if err != nil {
			return nil, d, err
		}
		for k, v := range m {
			out[k] = v
		}
		done = vtime.Max(done, d)
	}
	return out, done, nil
}

// RangeSearch runs the parallel range search on every shard that may hold
// [lo, hi) (all shards under hash partitioning, the overlapping ones
// under range partitioning) and merges the results in key order.
func (f *Forest) RangeSearch(at vtime.Ticks, lo, hi kv.Key) ([]kv.Record, vtime.Ticks, error) {
	var recs []kv.Record
	done := at
	for _, si := range f.part.RangeShards(lo, hi) {
		s := f.shards[si]
		s.mu.Lock()
		start := vtime.Max(at, s.vlock.FreeAt())
		rs, d, err := s.tree.RangeSearch(start, lo, hi)
		s.mu.Unlock()
		if err != nil {
			return nil, d, err
		}
		recs = append(recs, rs...)
		done = vtime.Max(done, d)
	}
	kv.SortRecords(recs)
	return recs, done, nil
}

// Insert buffers an index-insert on the owning shard; a full shard OPQ
// triggers a group flush.
func (f *Forest) Insert(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	return f.update(at, kv.Entry{Rec: r, Op: kv.OpInsert})
}

// Delete buffers an index-delete.
func (f *Forest) Delete(at vtime.Ticks, k kv.Key) (vtime.Ticks, error) {
	return f.update(at, kv.Entry{Rec: kv.Record{Key: k}, Op: kv.OpDelete})
}

// Update buffers an index-update.
func (f *Forest) Update(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	return f.update(at, kv.Entry{Rec: r, Op: kv.OpUpdate})
}

func (f *Forest) update(at vtime.Ticks, e kv.Entry) (vtime.Ticks, error) {
	si := f.part.Shard(e.Rec.Key)
	s := f.shards[si]
	for {
		s.mu.Lock()
		if !s.tree.opq.Full() {
			break
		}
		s.mu.Unlock()
		done, err := f.flushGroup(at, si)
		if err != nil {
			return done, err
		}
		at = done
	}
	// The short per-shard OPQ lock covers the append (and the occasional
	// periodic sort inside it), as in the single-tree scheme.
	start := s.vopq.Acquire(at)
	var done vtime.Ticks
	var err error
	switch e.Op {
	case kv.OpInsert:
		done, err = s.tree.Insert(start, e.Rec)
	case kv.OpDelete:
		done, err = s.tree.Delete(start, e.Rec.Key)
	default:
		done, err = s.tree.Update(start, e.Rec)
	}
	s.vopq.Release(done)
	s.mu.Unlock()
	return done, err
}

// flushGroup is the cross-shard flush coordinator. It collects the
// triggering shard plus every other shard whose OPQ is ripe, flushes them
// all starting at the same virtual instant (their reads contend on the
// shared device's channel timelines exactly as truly parallel flushes
// would), and submits every member's batch writes as ONE concatenated
// psync call. Each member's virtual flush lock is held from the group
// start to the merged-write completion, so only member shards' readers
// are delayed.
func (f *Forest) flushGroup(at vtime.Ticks, trigger int) (vtime.Ticks, error) {
	// Lock candidates in ascending shard order (deadlock-free against
	// concurrent group flushes).
	var group []*forestShard
	for i, s := range f.shards {
		s.mu.Lock()
		keep := false
		if i == trigger {
			keep = s.tree.opq.Len() > 0
		} else {
			keep = s.ripe(f.ripeFrac)
		}
		if keep {
			group = append(group, s)
		} else {
			s.mu.Unlock()
		}
	}
	if len(group) == 0 {
		// A racing group flush already drained the trigger shard.
		return at, nil
	}
	f.groupFlushes.Add(1)
	f.groupedShards.Add(int64(len(group)))

	unlock := func() {
		for _, s := range group {
			s.mu.Unlock()
		}
	}

	if len(group) == 1 {
		// Single member: flush exactly like the single-tree scheme (no
		// gang), so a one-shard forest reproduces Concurrent's timings.
		s := group[0]
		start := s.vlock.Acquire(at)
		done, err := s.tree.FlushBatch(start, s.tree.cfg.BCnt)
		s.vlock.Release(done)
		unlock()
		return done, err
	}

	gang := newWriteGang()
	front := at
	var flushErr error
	acquired := 0
	for _, s := range group {
		start := s.vlock.Acquire(at)
		acquired++
		s.tree.gang = gang
		done, err := s.tree.FlushBatch(start, s.tree.cfg.BCnt)
		s.tree.gang = nil
		front = vtime.Max(front, done)
		if err != nil {
			// Stop starting new flushes, but still submit the gang below:
			// members that already flushed have drained their OPQs and
			// updated their in-memory state, so their deferred writes must
			// reach the device.
			flushErr = err
			break
		}
	}
	done, err := gang.submit(front)
	if flushErr == nil {
		flushErr = err
	}
	f.gangSubmits.Add(1)
	// Only members whose flush actually started hold the virtual lock.
	for _, s := range group[:acquired] {
		s.vlock.Release(done)
	}
	unlock()
	return done, flushErr
}

// Flush forces a group flush seeded by the fullest shard (no-op when the
// whole forest is empty).
func (f *Forest) Flush(at vtime.Ticks) (vtime.Ticks, error) {
	best, bestLen := -1, 0
	for i, s := range f.shards {
		s.mu.Lock()
		n := s.tree.opq.Len()
		s.mu.Unlock()
		if n > bestLen {
			best, bestLen = i, n
		}
	}
	if best < 0 {
		return at, nil
	}
	return f.flushGroup(at, best)
}

// Checkpoint drains every shard's OPQ. The per-shard checkpoints start at
// the caller's time and proceed in parallel in virtual time.
func (f *Forest) Checkpoint(at vtime.Ticks) (vtime.Ticks, error) {
	done := at
	for _, s := range f.shards {
		s.mu.Lock()
		start := s.vlock.Acquire(at)
		d, err := s.tree.Checkpoint(start)
		s.vlock.Release(d)
		s.mu.Unlock()
		if err != nil {
			return d, err
		}
		done = vtime.Max(done, d)
	}
	return done, nil
}

// Count returns the number of live records across all shards.
func (f *Forest) Count() int64 {
	var n int64
	for _, s := range f.shards {
		s.mu.Lock()
		n += s.tree.Count()
		s.mu.Unlock()
	}
	return n
}

// Height returns the tallest shard height.
func (f *Forest) Height() int {
	h := 0
	for _, s := range f.shards {
		s.mu.Lock()
		if sh := s.tree.Height(); sh > h {
			h = sh
		}
		s.mu.Unlock()
	}
	return h
}

// Pending returns the total number of OPQ-buffered operations.
func (f *Forest) Pending() int {
	n := 0
	for _, s := range f.shards {
		s.mu.Lock()
		n += s.tree.OPQLen()
		s.mu.Unlock()
	}
	return n
}

// Stats aggregates shard tree counters and coordinator activity.
func (f *Forest) Stats() ForestStats {
	out := ForestStats{
		Shards:        len(f.shards),
		GroupFlushes:  f.groupFlushes.Load(),
		GroupedShards: f.groupedShards.Load(),
		GangSubmits:   f.gangSubmits.Load(),
	}
	for _, s := range f.shards {
		s.mu.Lock()
		st := s.tree.Stats()
		out.Tree.Flushes += st.Flushes
		out.Tree.Shrinks += st.Shrinks
		out.Tree.LeafSplits += st.LeafSplits
		out.Tree.LeafAppends += st.LeafAppends
		out.Tree.PsyncReads += st.PsyncReads
		out.Tree.PsyncWrites += st.PsyncWrites
		out.Tree.GangedWrites += st.GangedWrites
		out.Tree.SearchOps += st.SearchOps
		out.Tree.UpdateOps += st.UpdateOps
		out.Tree.RangeOps += st.RangeOps
		out.Tree.OPQShortcuts += st.OPQShortcuts
		out.VLockWaits += s.vlock.Waits
		out.VLockContended += s.vlock.Contended
		out.Pending += s.tree.OPQLen()
		s.mu.Unlock()
	}
	return out
}

// CheckInvariants validates every shard's on-disk structure and that each
// shard holds only keys the partitioner routes to it.
func (f *Forest) CheckInvariants() error {
	for i, s := range f.shards {
		s.mu.Lock()
		err := s.tree.CheckInvariants()
		if err == nil {
			for _, e := range s.tree.opq.Entries() {
				if f.part.Shard(e.Rec.Key) != i {
					err = fmt.Errorf("core: forest shard %d queues foreign key %d", i, e.Rec.Key)
					break
				}
			}
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
