package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// Partitioner assigns keys to the shards of a Forest.
type Partitioner interface {
	// Shards returns the number of partitions.
	Shards() int
	// Shard returns the shard index owning key k.
	Shard(k kv.Key) int
	// RangeShards returns the ascending shard indexes that may hold keys
	// in [lo, hi).
	RangeShards(lo, hi kv.Key) []int
}

// mix64 is the splitmix64 finalizer, a cheap full-avalanche hash used to
// spread keys uniformly across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashPartitioner spreads keys across N shards with a 64-bit mix. Range
// searches touch every shard.
type HashPartitioner struct{ N int }

// Shards returns N.
func (h HashPartitioner) Shards() int { return h.N }

// Shard hashes k into [0, N).
func (h HashPartitioner) Shard(k kv.Key) int { return int(mix64(k) % uint64(h.N)) }

// RangeShards returns every shard: a hash partition cannot prune ranges.
func (h HashPartitioner) RangeShards(lo, hi kv.Key) []int {
	out := make([]int, h.N)
	for i := range out {
		out[i] = i
	}
	return out
}

// RangePartitioner splits the key space at ascending boundary keys: shard
// i covers [Bounds[i-1], Bounds[i]) with open outer edges, so range
// searches touch only the overlapping shards.
type RangePartitioner struct{ Bounds []kv.Key }

// Shards returns len(Bounds)+1.
func (r RangePartitioner) Shards() int { return len(r.Bounds) + 1 }

// Shard binary-searches the boundary list.
func (r RangePartitioner) Shard(k kv.Key) int {
	return sort.Search(len(r.Bounds), func(i int) bool { return k < r.Bounds[i] })
}

// RangeShards returns the shards overlapping [lo, hi).
func (r RangePartitioner) RangeShards(lo, hi kv.Key) []int {
	if hi <= lo {
		return nil
	}
	first := r.Shard(lo)
	last := r.Shard(hi - 1)
	out := make([]int, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, i)
	}
	return out
}

// writeGang accumulates the deferred psync writes of one forest group
// flush, per page file in first-use order (kept deterministic), so the
// coordinator can concatenate every member's batch writes into a single
// psync submission.
type writeGang struct {
	order []*pagefile.PageFile
	reqs  map[*pagefile.PageFile][]ssdio.Req
}

func newWriteGang() *writeGang {
	return &writeGang{reqs: make(map[*pagefile.PageFile][]ssdio.Req)}
}

// add defers the given write runs of pf into the gang.
func (g *writeGang) add(pf *pagefile.PageFile, runs []pagefile.RunReq) error {
	rs, err := pf.GatherRuns(runs)
	if err != nil {
		return err
	}
	if _, ok := g.reqs[pf]; !ok {
		g.order = append(g.order, pf)
	}
	g.reqs[pf] = append(g.reqs[pf], rs...)
	return nil
}

// drop removes a member's deferred writes (its flush failed and the shard
// is rolling back — its pages must not reach the device).
func (g *writeGang) drop(pf *pagefile.PageFile) {
	if _, ok := g.reqs[pf]; !ok {
		return
	}
	delete(g.reqs, pf)
	order := g.order[:0]
	for _, p := range g.order {
		if p != pf {
			order = append(order, p)
		}
	}
	g.order = order
}

// submitSubset issues the selected batches (indexes into g.order) as one
// cross-file psync call. The fault-retry loop uses it to resubmit only
// the batches a partial gang failure left unapplied.
func (g *writeGang) submitSubset(at vtime.Ticks, idxs []int) (vtime.Ticks, error) {
	if len(idxs) == 0 {
		return at, nil
	}
	batches := make([]ssdio.GangBatch, len(idxs))
	for i, j := range idxs {
		pf := g.order[j]
		batches[i] = ssdio.GangBatch{F: pf.File(), Reqs: g.reqs[pf]}
	}
	return ssdio.PsyncGang(at, batches)
}

// logGang accumulates the WAL work of one forest group flush: which
// member logs need forcing (deduplicated, in first-registration order, so
// one shared log multiplexed by Relation registers once) and the FlushEnd
// records whose append must wait until the group's data writes are on the
// device.
type logGang struct {
	order []*wal.Log
	seen  map[*wal.Log]bool
	ends  []deferredEnd
}

// deferredEnd is one member's FlushEnd record, held back by the group
// commit until after the data gang submission.
type deferredEnd struct {
	log *wal.Log
	rec wal.Record
}

func newLogGang() *logGang {
	return &logGang{seen: make(map[*wal.Log]bool)}
}

// need registers l for the next ganged force.
func (g *logGang) need(l *wal.Log) {
	if !g.seen[l] {
		g.seen[l] = true
		g.order = append(g.order, l)
	}
}

// deferEnd holds back a member's FlushEnd record for the commit force.
func (g *logGang) deferEnd(l *wal.Log, r wal.Record) {
	g.need(l)
	g.ends = append(g.ends, deferredEnd{log: l, rec: r})
}

// ForestConfig parameterizes a sharded PIO forest.
type ForestConfig struct {
	// Partitioner routes keys to shards; nil defaults to a HashPartitioner
	// over the number of page files passed to NewForest.
	Partitioner Partitioner
	// RipeFraction is the OPQ fill ratio at which a shard joins a group
	// flush triggered by another shard (0 < f <= 1; default 0.5). Lower
	// values merge more aggressively.
	RipeFraction float64
	// Shard is the per-shard tree configuration, except that OPQPages and
	// BufferBytes are GLOBAL budgets which the forest splits evenly across
	// shards (each shard keeps at least one OPQ page / one buffer frame),
	// extending the eq.-(10) tuning to the sharded setting.
	Shard Config

	// Logs enables write-ahead logging: nil disables it, a single log is
	// shared by every shard (records multiplexed by Relation), and one log
	// per page file gives each shard its own. All log files must live on
	// the same ssdio.Space as the page files for group commit to gang
	// their forces.
	Logs []*wal.Log
	// DisableLogGang makes every group-flush member force its own log
	// serially (the per-shard baseline) instead of riding the coordinator's
	// two-phase ganged force; used by the recovery bench as the comparison
	// point.
	DisableLogGang bool

	// MigrationChunk bounds the keys streamed per online-rebalancing chunk
	// (default 256). Smaller chunks shorten the source-lock hold per step;
	// larger chunks amortize the per-chunk log forces.
	MigrationChunk int
	// DisableLogTruncation keeps the full log history: by default a forest
	// checkpoint truncates each log's head up to this round's first record
	// (everything before a durable checkpoint is dead for recovery).
	DisableLogTruncation bool

	// Heal drives the auto-heal prober over quarantined shards; the zero
	// value enables it with defaults (see HealPolicy).
	Heal HealPolicy
	// Evacuation bounds how long a quarantined shard may stay un-healed
	// before AutoRebalance migrates its range onto healthy shards; the
	// zero value enables it with defaults (see EvacuationPolicy).
	Evacuation EvacuationPolicy
}

// forestShard pairs one PIO B-tree with its two locking planes: the real
// mutex makes the unsynchronized Tree safe for goroutine use (plain
// mutual exclusion — the simulator executes one operation at a time), and
// the virtual locks model the paper's concurrency scheme per shard
// (searches share the index; an OPQ flush excludes everything, but now
// only within its own shard).
type forestShard struct {
	mu    sync.Mutex
	tree  *Tree
	vlock vtime.Mutex // per-shard index-exclusive lock (flushes)
	vopq  vtime.Mutex // per-shard OPQ append/sort lock

	// ops counts the operations routed to this shard (guarded by mu); the
	// per-shard load signal AutoRebalance splits hotspots on.
	ops int64

	// quarantined (guarded by mu) puts the shard in read-only degraded
	// mode after retry exhaustion or a permanent I/O failure: its tree has
	// been rolled back to the last committed state, reads keep being
	// served, writes fail with ErrShardQuarantined, and the shard is
	// excluded from group flushes, checkpoint drains and rebalancing until
	// Forest.Heal (or a full Recover) re-admits it. qErr records the
	// fault that triggered it. qDirty marks a quarantined shard whose
	// rollback replay itself failed (device still erroring): its in-memory
	// state is mid-replay, so reads are rejected too until Heal succeeds.
	quarantined bool
	qDirty      bool
	qErr        error

	// Self-healing prober state (guarded by mu). quarantinedAt is the
	// incident start: set when a healthy shard quarantines and cleared
	// only by a durable flush commit or a full Recover — NOT by Heal — so
	// a flapping device cannot reset its evacuation deadline by healing
	// briefly. nextProbeAt schedules the next auto-heal probe (0 = none);
	// probeGap is the current backoff between probes.
	quarantinedAt vtime.Ticks
	nextProbeAt   vtime.Ticks
	probeGap      vtime.Ticks
}

// ripe reports whether the shard's OPQ is filled to the given fraction.
// Caller holds s.mu.
func (s *forestShard) ripe(frac float64) bool {
	n := s.tree.opq.Len()
	min := int(frac * float64(s.tree.opq.Cap()))
	if min < 1 {
		min = 1
	}
	return n >= min
}

// Forest is a sharded PIO B-tree: keys are partitioned across independent
// trees, each with its own OPQ and pagefile region, replacing the single
// whole-index exclusive flush lock with per-shard locks. A flush on one
// shard no longer blocks searches on any other. When several shards'
// OPQs are ripe at flush time, the coordinator flushes them as a group
// starting at the same virtual instant and concatenates their batch
// writes into a single psync submission — a second level of the paper's
// eq.-(10) batching that keeps the device's channels saturated.
//
// All methods are safe for concurrent goroutine use.
type Forest struct {
	part     Partitioner
	shards   []*forestShard
	ripeFrac float64

	// rpart is the routing table behind part: every forest wraps its
	// configured partitioner in a RebalancingPartitioner so key ranges can
	// migrate between shards while serving.
	rpart *RebalancingPartitioner
	// migMu orders migration chunks (writers) against multi-shard sweeps
	// (readers): a chunk atomically moves keys between two shards, so a
	// sweep reading the shards one at a time must not straddle it.
	migMu           sync.RWMutex
	rebalanceActive atomic.Bool
	migIDSeq        atomic.Uint64
	migrations      atomic.Int64
	keysMigrated    atomic.Int64
	migChunk        int
	truncateLogs    bool
	autoMu          sync.Mutex
	// lastOps is the per-shard op count at the previous AutoRebalance
	// poll (guarded by autoMu).
	lastOps []int64
	// autoMig is an AutoRebalance migration still in flight after a
	// bounded drain ran out of budget; later polls resume it (guarded by
	// autoMu).
	autoMig *Migration

	// logs are the distinct attached WALs (empty without logging);
	// logGangEnabled selects ganged vs serial group-commit forces;
	// sharedLog is true when a log serves more than one shard, in which
	// case group flushes must hold every shard lock (appends to the shared
	// log from non-member shards would otherwise race the ganged force).
	logs           []*wal.Log
	logGangEnabled bool
	sharedLog      bool

	groupFlushes   atomic.Int64
	groupedShards  atomic.Int64
	gangSubmits    atomic.Int64
	logGangSubmits atomic.Int64

	// retry bounds the coordinator-level retry loops (data gang, ganged
	// log forces); the per-shard trees carry their own copy in cfg. The
	// atomic counters mirror retryStats for the coordinator's submissions.
	retry              RetryPolicy
	ioRetries          atomic.Int64
	ioRetryBackoff     atomic.Int64
	ioRetriesExhausted atomic.Int64
	watchdogTimeouts   atomic.Int64

	// Self-healing control plane: heal/evac are the normalized policies,
	// the counters mirror the prober's and the evacuator's activity.
	heal            HealPolicy
	evac            EvacuationPolicy
	healProbes      atomic.Int64
	autoHeals       atomic.Int64
	evacuations     atomic.Int64
	evacChunks      atomic.Int64
	migrationAborts atomic.Int64

	// damaged, once set, fails every mutating operation: a group commit
	// failed after members already updated their in-memory state, so
	// memory and disk no longer agree. Crash+Recover clears it. An atomic
	// keeps the per-operation check off the shard-independence hot path.
	damaged atomic.Pointer[error]
}

// setDamaged records the first unrecoverable group-commit failure.
func (f *Forest) setDamaged(err error) {
	if err == nil {
		err = fmt.Errorf("core: group commit failed")
	}
	f.damaged.CompareAndSwap(nil, &err)
}

// checkDamaged rejects mutating operations on a damaged forest.
func (f *Forest) checkDamaged() error {
	if p := f.damaged.Load(); p != nil {
		return fmt.Errorf("core: forest damaged by failed group commit (%w); Crash and Recover to restore consistency", *p)
	}
	return nil
}

// retryIO is retryTimedIO with the coordinator's policy and counters.
func (f *Forest) retryIO(at vtime.Ticks, op func(vtime.Ticks) (vtime.Ticks, error)) (vtime.Ticks, error) {
	var rs retryStats
	done, err := retryTimedIO(f.retry, &rs, at, op)
	f.ioRetries.Add(rs.IORetries)
	f.ioRetryBackoff.Add(int64(rs.IORetryBackoff))
	f.ioRetriesExhausted.Add(rs.IORetriesExhausted)
	f.watchdogTimeouts.Add(rs.WatchdogTimeouts)
	return done, err
}

// shardQuarantinedErr wraps ErrShardQuarantined with the shard index and
// the fault that triggered the quarantine.
func shardQuarantinedErr(si int, cause error) error {
	if cause != nil {
		return fmt.Errorf("core: shard %d: %w (cause: %v)", si, ErrShardQuarantined, cause)
	}
	return fmt.Errorf("core: shard %d: %w", si, ErrShardQuarantined)
}

// quarantineShard moves a shard into read-only degraded mode after an
// attributable I/O failure: roll the tree back to its last committed
// state (restore the durable snapshot, drop volatile state, replay the
// durable log — a shard-local crash recovery) and mark it quarantined.
// A shard without a WAL cannot roll back, and a rollback that itself
// fails leaves memory and disk divorced — both escalate to the
// forest-wide damaged mark. Caller holds s.mu; returns the rollback's
// completion time.
func (f *Forest) quarantineShard(at vtime.Ticks, s *forestShard, cause error) vtime.Ticks {
	//lint:ignore guardedby caller holds s.mu (see contract above)
	if s.quarantined {
		return at
	}
	if s.tree.log == nil {
		f.setDamaged(cause)
		return at
	}
	done, err := s.tree.rollbackToDurable(at)
	if err != nil {
		if !IsIOFault(err) {
			// The replay itself is broken (decode/validation): memory and
			// disk are divorced beyond shard-local containment.
			f.setDamaged(fmt.Errorf("core: quarantine rollback failed: %w (original fault: %v)", err, cause))
			return done
		}
		// The device is still failing (e.g. a permanently dead file): the
		// shard goes fully offline — reads rejected too, since its
		// in-memory state is mid-replay — but the rest of the forest keeps
		// serving. Heal re-runs the rollback once the device recovers.
		s.qDirty = true
		cause = fmt.Errorf("%v (rollback also failed: %v)", cause, err)
	}
	//lint:ignore guardedby caller holds s.mu (see contract above)
	s.quarantined = true
	s.qErr = cause
	// Start (or keep) the incident clock and schedule the first auto-heal
	// probe. quarantinedAt is sticky across heal/re-fail flaps; the probe
	// backoff restarts fresh for the new failure.
	//lint:ignore guardedby caller holds s.mu (see contract above)
	if s.quarantinedAt == 0 {
		//lint:ignore guardedby caller holds s.mu (see contract above)
		s.quarantinedAt = at
	}
	if !f.heal.Disabled {
		s.probeGap = f.heal.ProbeInterval
		s.nextProbeAt = done + s.probeGap
	}
	return done
}

// ForestStats aggregates shard counters and coordinator activity.
type ForestStats struct {
	// Shards is the partition count.
	Shards int
	// Tree sums the per-shard tree counters.
	Tree Stats
	// GroupFlushes counts coordinator invocations, GroupedShards the
	// shards they flushed (GroupedShards/GroupFlushes = mean group size).
	GroupFlushes  int64
	GroupedShards int64
	// GangSubmits counts merged cross-shard psync submissions.
	GangSubmits int64
	// LogGangSubmits counts ganged (group-commit) log-force submissions;
	// LogForceWrites counts per-log serial Force submissions; LogSubmits is
	// their sum — the total number of blocking log-plane submissions.
	LogGangSubmits int64
	LogForceWrites int64
	LogSubmits     int64
	// LogTruncatedBytes sums the log bytes reclaimed by checkpoint head
	// truncation across all attached logs.
	LogTruncatedBytes int64
	// RoutingEpoch is the routing-table version; Migrations counts
	// committed online rebalancing moves, MigratedKeys the keys they
	// streamed; MigrationActive reports a move in flight.
	RoutingEpoch    uint64
	Migrations      int64
	MigratedKeys    int64
	MigrationActive bool
	// ShardLoads holds shard i's load signal at index i — the input to
	// the AutoRebalance policy.
	ShardLoads []ShardLoad
	// VLockWaits / VLockContended sum the per-shard virtual index-lock
	// contention.
	VLockWaits     int64
	VLockContended vtime.Ticks
	// Pending is the total number of OPQ-buffered operations.
	Pending int
	// QuarantinedShards counts shards in read-only degraded mode;
	// IORetries / IORetryBackoff / IORetriesExhausted aggregate the
	// transient-fault retry activity of the shard trees and the flush
	// coordinator (gang and log-force resubmissions).
	QuarantinedShards  int
	IORetries          int64
	IORetryBackoff     vtime.Ticks
	IORetriesExhausted int64
	// WatchdogTimeouts counts stuck-I/O watchdog firings across the shard
	// trees and the flush coordinator — hanging submissions abandoned at
	// their vtime deadline instead of stalling the caller.
	WatchdogTimeouts int64
	// Self-healing control plane: HealProbes counts auto-heal probe I/Os
	// issued by quarantined shards, AutoHeals the probes whose Heal
	// replay re-admitted the shard. Evacuations counts committed
	// quarantine evacuations, EvacuatedChunks the chunks they streamed,
	// and EvacuatedShards the shards currently routing through an
	// evacuation rule (excluded from QuarantinedShards: their degraded
	// state no longer affects availability).
	HealProbes      int64
	AutoHeals       int64
	Evacuations     int64
	EvacuatedChunks int64
	EvacuatedShards int
	// MigrationAborts counts migrations (evacuations included) aborted by
	// an attributable I/O failure and resolved in place — the failing
	// shards quarantined, the routing left at the durable frontier.
	MigrationAborts int64
}

// ShardLoad is one shard's load signal.
type ShardLoad struct {
	// Ops counts the operations routed to the shard since open.
	Ops int64
	// Keys is the shard's live record count, Pending its queued updates.
	Keys    int64
	Pending int
	// OPQPages is the shard's current operation-queue page budget
	// (changes when ApplyOPQBudget installs a retuned split).
	OPQPages int
	// Quarantined reports read-only degraded mode; Evacuated reports that
	// the shard's range has been migrated onto healthy shards (an
	// evacuated shard stays quarantined but is skipped by sweeps).
	Quarantined bool
	Evacuated   bool
}

// NewForest builds a forest of len(pfs) shards, one tree per page file.
// The page files must live on files of one ssdio.Space (one device) for
// group flushes to merge their submissions. cfg.Shard.OPQPages and
// cfg.Shard.BufferBytes are global budgets split evenly across shards.
func NewForest(pfs []*pagefile.PageFile, cfg ForestConfig) (*Forest, error) {
	n := len(pfs)
	if n < 1 {
		return nil, fmt.Errorf("core: forest needs at least one shard")
	}
	if cfg.Shard.PageSize <= 0 {
		return nil, fmt.Errorf("core: forest shard config needs a positive PageSize, got %d", cfg.Shard.PageSize)
	}
	part := cfg.Partitioner
	if part == nil {
		part = HashPartitioner{N: n}
	}
	if err := ValidatePartitioner(part, n); err != nil {
		return nil, err
	}
	if len(cfg.Logs) != 0 && len(cfg.Logs) != 1 && len(cfg.Logs) != n {
		return nil, fmt.Errorf("core: forest got %d WAL logs, want 0 (none), 1 (shared) or %d (per shard)", len(cfg.Logs), n)
	}
	for i, l := range cfg.Logs {
		if l == nil {
			return nil, fmt.Errorf("core: forest WAL log %d is nil", i)
		}
	}
	ripe := cfg.RipeFraction
	if ripe <= 0 || ripe > 1 {
		ripe = 0.5
	}
	// Every forest routes through a RebalancingPartitioner so key ranges
	// can migrate between live shards; a plain Range/Hash partitioner is
	// wrapped with an empty rule set (identical routing until a split or
	// merge commits).
	rpart, isWrapped := part.(*RebalancingPartitioner)
	if !isWrapped {
		var err error
		rpart, err = NewRebalancingPartitioner(part, n)
		if err != nil {
			return nil, err
		}
	}
	chunk := cfg.MigrationChunk
	if chunk <= 0 {
		chunk = 256
	}
	shardCfg := cfg.Shard
	shardCfg.OPQPages = splitBudget(cfg.Shard.OPQPages, n)
	shardCfg.BufferBytes = splitBudget(cfg.Shard.BufferBytes/cfg.Shard.PageSize, n) * cfg.Shard.PageSize
	f := &Forest{
		part: rpart, rpart: rpart, ripeFrac: ripe,
		logGangEnabled: !cfg.DisableLogGang,
		migChunk:       chunk,
		truncateLogs:   !cfg.DisableLogTruncation,
		retry:          cfg.Shard.Retry,
		heal:           cfg.Heal.norm(),
		evac:           cfg.Evacuation.norm(),
	}
	seenLogs := make(map[*wal.Log]bool)
	for i, pf := range pfs {
		c := shardCfg
		c.Relation = cfg.Shard.Relation + uint32(i)
		tr, err := New(pf, c)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		if len(cfg.Logs) > 0 {
			l := cfg.Logs[0]
			if len(cfg.Logs) == n {
				l = cfg.Logs[i]
			}
			tr.AttachWAL(l)
			if !seenLogs[l] {
				seenLogs[l] = true
				f.logs = append(f.logs, l)
			}
		}
		f.shards = append(f.shards, &forestShard{tree: tr})
	}
	f.sharedLog = len(f.logs) > 0 && len(f.logs) < len(f.shards)
	return f, nil
}

// ValidatePartitioner rejects misconfigured partitioners before they can
// misroute or crash the forest: a HashPartitioner with N <= 0 divides by
// zero on its first Shard call, and a RangePartitioner with unsorted or
// duplicate bounds silently sends keys to the wrong shards.
func ValidatePartitioner(p Partitioner, shards int) error {
	if p.Shards() != shards {
		return fmt.Errorf("core: partitioner has %d shards, %d page files given", p.Shards(), shards)
	}
	switch pt := p.(type) {
	case *RebalancingPartitioner:
		rt := pt.cur.Load()
		if err := ValidatePartitioner(rt.base, shards); err != nil {
			return err
		}
		if err := validateRules(rt.rules, shards); err != nil {
			return err
		}
	case HashPartitioner:
		if pt.N <= 0 {
			return fmt.Errorf("core: hash partitioner N must be positive, got %d", pt.N)
		}
	case RangePartitioner:
		for i := 1; i < len(pt.Bounds); i++ {
			if pt.Bounds[i-1] == pt.Bounds[i] {
				return fmt.Errorf("core: range partitioner has duplicate bound %d at index %d", pt.Bounds[i], i)
			}
			if pt.Bounds[i-1] > pt.Bounds[i] {
				return fmt.Errorf("core: range partitioner bounds not ascending at index %d (%d > %d)", i, pt.Bounds[i-1], pt.Bounds[i])
			}
		}
	}
	return nil
}

// splitBudget divides a global page budget across n shards, keeping at
// least one page per shard.
func splitBudget(global, n int) int {
	per := global / n
	if per < 1 {
		per = 1
	}
	return per
}

// ShardCount returns the number of shards.
func (f *Forest) ShardCount() int { return len(f.shards) }

// Routing returns the forest's routing table — the rebalancing wrapper
// every forest installs over its configured partitioner.
func (f *Forest) Routing() *RebalancingPartitioner { return f.rpart }

// ShardTree returns shard i's tree for inspection. The caller must ensure
// no concurrent forest use (testing/validation only).
func (f *Forest) ShardTree(i int) *Tree {
	s := f.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree
}

// BulkLoad partitions key-sorted records across the shards and bulk-loads
// each (initial setup, no simulated cost).
func (f *Forest) BulkLoad(recs []kv.Record) error {
	parts := make([][]kv.Record, len(f.shards))
	for _, r := range recs {
		si := f.part.Shard(r.Key)
		parts[si] = append(parts[si], r)
	}
	for i, s := range f.shards {
		s.mu.Lock()
		err := s.tree.BulkLoad(parts[i])
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: forest shard %d: %w", i, err)
		}
	}
	return nil
}

// lockOwner locks and returns the shard that authoritatively owns k,
// rerouting after acquiring the lock: a migration chunk may advance the
// routing frontier between the route lookup and the lock. The frontier
// only moves while both affected shards are locked, so the recheck under
// the shard's own lock is stable — this is the lookup side of the
// migration map's dual routing.
func (f *Forest) lockOwner(k kv.Key) (int, *forestShard) {
	for {
		si := f.part.Shard(k)
		s := f.shards[si]
		s.mu.Lock()
		if f.part.Shard(k) == si {
			return si, s
		}
		s.mu.Unlock()
	}
}

// Search performs a point search on the owning shard. In virtual time,
// readers share the shard but cannot start below its flush lock horizon;
// flushes on other shards do not delay them at all.
func (f *Forest) Search(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error) {
	// Reads are rejected too: on a damaged forest the in-memory structure
	// may point at pages whose writes never reached the device.
	if err := f.checkDamaged(); err != nil {
		return 0, false, at, err
	}
	si, s := f.lockOwner(k)
	defer s.mu.Unlock()
	if s.qDirty {
		// Quarantined shards still serve reads from their committed state,
		// but a dirty one (rollback replay failed) has nothing coherent to
		// serve.
		return 0, false, at, shardQuarantinedErr(si, s.qErr)
	}
	s.ops++
	start := vtime.Max(at, s.vlock.FreeAt())
	return s.tree.Search(start, k)
}

// SearchMany partitions the keys across shards and runs one MPSearch per
// involved shard, all starting at the caller's time (the shard descents
// proceed in parallel in virtual time); the result is the merged map and
// the latest completion.
func (f *Forest) SearchMany(at vtime.Ticks, keys []kv.Key) (map[kv.Key]kv.Value, vtime.Ticks, error) {
	if err := f.checkDamaged(); err != nil {
		return nil, at, err
	}
	// A multi-shard sweep must not straddle a migration chunk, or a key
	// moving between two already-visited shards could be seen twice or
	// not at all. The read lock freezes the frontier for the sweep.
	f.migMu.RLock()
	defer f.migMu.RUnlock()
	byShard := make(map[int][]kv.Key)
	for _, k := range keys {
		si := f.part.Shard(k)
		byShard[si] = append(byShard[si], k)
	}
	out := make(map[kv.Key]kv.Value, len(keys))
	done := at
	for si := 0; si < len(f.shards); si++ {
		ks, ok := byShard[si]
		if !ok {
			continue
		}
		s := f.shards[si]
		s.mu.Lock()
		if s.qDirty {
			err := shardQuarantinedErr(si, s.qErr)
			s.mu.Unlock()
			return nil, at, err
		}
		s.ops += int64(len(ks))
		start := vtime.Max(at, s.vlock.FreeAt())
		m, d, err := s.tree.SearchMany(start, ks)
		s.mu.Unlock()
		if err != nil {
			return nil, d, err
		}
		for k, v := range m {
			out[k] = v
		}
		done = vtime.Max(done, d)
	}
	return out, done, nil
}

// RangeSearch runs the parallel range search on every shard that may hold
// [lo, hi) (all shards under hash partitioning, the overlapping ones
// under range partitioning) and merges the results in key order.
func (f *Forest) RangeSearch(at vtime.Ticks, lo, hi kv.Key) ([]kv.Record, vtime.Ticks, error) {
	if err := f.checkDamaged(); err != nil {
		return nil, at, err
	}
	// Freeze the migration frontier across the sweep (see SearchMany).
	f.migMu.RLock()
	defer f.migMu.RUnlock()
	var recs []kv.Record
	done := at
	for _, si := range f.part.RangeShards(lo, hi) {
		if f.rpart.IsEvacuated(si) {
			// An evacuated shard's committed copies live on its destination
			// now; the stale physical copies it retains (its device rejects
			// the deletes) must not surface twice.
			continue
		}
		s := f.shards[si]
		s.mu.Lock()
		if s.qDirty {
			err := shardQuarantinedErr(si, s.qErr)
			s.mu.Unlock()
			return nil, at, err
		}
		s.ops++
		start := vtime.Max(at, s.vlock.FreeAt())
		rs, d, err := s.tree.RangeSearch(start, lo, hi)
		s.mu.Unlock()
		if err != nil {
			return nil, d, err
		}
		recs = append(recs, rs...)
		done = vtime.Max(done, d)
	}
	kv.SortRecords(recs)
	return recs, done, nil
}

// Insert buffers an index-insert on the owning shard; a full shard OPQ
// triggers a group flush.
func (f *Forest) Insert(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	return f.update(at, kv.Entry{Rec: r, Op: kv.OpInsert})
}

// Delete buffers an index-delete.
func (f *Forest) Delete(at vtime.Ticks, k kv.Key) (vtime.Ticks, error) {
	return f.update(at, kv.Entry{Rec: kv.Record{Key: k}, Op: kv.OpDelete})
}

// Update buffers an index-update.
func (f *Forest) Update(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	return f.update(at, kv.Entry{Rec: r, Op: kv.OpUpdate})
}

func (f *Forest) update(at vtime.Ticks, e kv.Entry) (vtime.Ticks, error) {
	if err := f.checkDamaged(); err != nil {
		return at, err
	}
	var s *forestShard
	for {
		var si int
		si, s = f.lockOwner(e.Rec.Key)
		//lint:ignore guardedby lockOwner returned with s.mu held for this shard
		if s.quarantined {
			err := shardQuarantinedErr(si, s.qErr)
			s.mu.Unlock()
			return at, err
		}
		if !s.tree.opq.Full() {
			break
		}
		s.mu.Unlock()
		done, err := f.flushGroup(at, si)
		if err != nil {
			return done, err
		}
		at = done
	}
	//lint:ignore guardedby lockOwner returned with s.mu held for this shard
	s.ops++
	// The short per-shard OPQ lock covers the append (and the occasional
	// periodic sort inside it), as in the single-tree scheme.
	start := s.vopq.Acquire(at)
	var done vtime.Ticks
	var err error
	switch e.Op {
	case kv.OpInsert:
		done, err = s.tree.Insert(start, e.Rec)
	case kv.OpDelete:
		done, err = s.tree.Delete(start, e.Rec.Key)
	default:
		done, err = s.tree.Update(start, e.Rec)
	}
	s.vopq.Release(done)
	s.mu.Unlock()
	return done, err
}

// flushGroup is the cross-shard flush coordinator. It collects the
// triggering shard plus every other shard whose OPQ is ripe, flushes them
// all starting at the same virtual instant (their reads contend on the
// shared device's channel timelines exactly as truly parallel flushes
// would), and submits every member's batch writes as ONE concatenated
// psync call. Each member's virtual flush lock is held from the group
// start to the merged-write completion, so only member shards' readers
// are delayed.
func (f *Forest) flushGroup(at vtime.Ticks, trigger int) (vtime.Ticks, error) {
	// Lock candidates in ascending shard order (deadlock-free against
	// concurrent group flushes). With a shared log, non-member shards stay
	// locked too: their enqueue path appends to the same wal.Log the
	// coordinator is about to force.
	//
	// Mid-migration shards are excluded from gang membership: their
	// virtual locks are pinned by chunk streaming for long stretches (a
	// group holding them would stall every member behind the chunk), and
	// keeping a half-migrated range out of the group's deferred FlushEnd
	// commit keeps the migration's chunk commit points and the group's
	// flush commit points independent. A migrating shard whose own OPQ
	// fills still flushes — solo.
	msrc, mdst, mact := f.rpart.Migrating()
	migrating := func(i int) bool { return mact && (i == msrc || i == mdst) }
	var group, bystanders []*forestShard
	for i, s := range f.shards {
		s.mu.Lock()
		// Quarantined shards never join a flush: their OPQ holds replayed
		// (already durable) entries and their device may still be failing.
		// With a shared log they stay locked as bystanders like everyone
		// else — their tail appends stopped at quarantine time.
		keep := false
		if i == trigger {
			keep = !s.quarantined && s.tree.opq.Len() > 0
		} else if !migrating(i) && !migrating(trigger) {
			keep = !s.quarantined && s.ripe(f.ripeFrac)
		}
		switch {
		case keep:
			group = append(group, s)
		case f.sharedLog:
			bystanders = append(bystanders, s)
		default:
			s.mu.Unlock()
		}
	}
	unlock := func() {
		for _, s := range group {
			s.mu.Unlock()
		}
		for _, s := range bystanders {
			s.mu.Unlock()
		}
	}
	if len(group) == 0 {
		// A racing group flush already drained the trigger shard.
		unlock()
		return at, nil
	}
	f.groupFlushes.Add(1)
	f.groupedShards.Add(int64(len(group)))

	if len(group) == 1 {
		// Single member: flush exactly like the single-tree scheme (no
		// gang), so a one-shard forest reproduces Concurrent's timings.
		s := group[0]
		start := s.vlock.Acquire(at)
		done, err := s.tree.FlushBatch(start, s.tree.cfg.BCnt)
		if err != nil && IsIOFault(err) && s.tree.log != nil {
			// Retries inside the flush are exhausted (or the device failed
			// permanently): contain the failure to this shard and let the
			// rest of the forest keep serving.
			done = f.quarantineShard(done, s, err)
			if f.damaged.Load() == nil {
				err = nil
			}
		}
		s.vlock.Release(done)
		unlock()
		return done, err
	}

	gang := newWriteGang()
	lg := newLogGang()
	front := at
	var flushErr error // unattributable failure — escalates to damaged
	acquired := 0
	// quar collects members hit by attributable I/O failures; their
	// rollback replays run after phase 2, when this round's durable log
	// is as complete as it will get. flushed marks members whose data
	// made it through every phase (their durable meta advances).
	quar := make(map[*forestShard]error)
	flushed := make([]bool, len(group))
	for gi, s := range group {
		start := s.vlock.Acquire(at)
		acquired++
		s.tree.gang = gang
		if s.tree.log != nil && !s.tree.cfg.DisablePsync {
			// Log work is deferred into the two-phase group commit (the WAL
			// rule needs FlushEnd held back past the data gang);
			// logGangEnabled only selects ganged vs serial forcing. Under
			// the psync ablation the data writes are NOT deferred, so the
			// log forces must stay inline with them (no deferral).
			s.tree.walGang = lg
		}
		done, err := s.tree.FlushBatch(start, s.tree.cfg.BCnt)
		s.tree.gang, s.tree.walGang = nil, nil
		front = vtime.Max(front, done)
		if err != nil {
			// Stop starting new flushes. An I/O failure (read retries
			// exhausted, permanent device error) quarantines just this
			// member: its half-prepared deferred writes are dropped and its
			// tree rolls back below. Its log appends stay in the tail —
			// FlushStart without FlushEnd, which any replay undoes. Members
			// that already flushed still commit: their deferred writes must
			// reach the device.
			if IsIOFault(err) && s.tree.log != nil {
				quar[s] = err
				gang.drop(s.tree.pf)
			} else {
				flushErr = err
			}
			break
		}
		flushed[gi] = true
	}
	// Group commit phase 1 (prepare): force every member's FlushStart,
	// logical redo and flush undo records BEFORE any data write reaches
	// the device — the WAL rule, paid as one ganged submission (or N
	// serial forces under the per-shard baseline). Runs even after a
	// member error: completed members' undo records must cover their
	// deferred writes.
	prepared := true
	if len(lg.order) > 0 {
		done, err := f.forceLogs(front, lg.order)
		if err != nil {
			if IsIOFault(err) {
				// Attribute the failure: forceLogs commits every member whose
				// write landed (partial gangs included), so a log still
				// holding an unforced tail marks exactly the members whose
				// prepare records are not durable. Those members' data writes
				// may not go out — they roll back and quarantine — while
				// members with durable records carry on: their undo records
				// cover their deferred writes.
				anyForced := false
				for gi, s := range group[:acquired] {
					if s.tree.log != nil && s.tree.log.Unforced() {
						if _, ok := quar[s]; !ok {
							quar[s] = err
						}
						gang.drop(s.tree.pf)
						flushed[gi] = false
					} else {
						anyForced = true
					}
				}
				prepared = anyForced
			} else {
				// Without durable undo records no data write may go out.
				prepared = false
				if flushErr == nil {
					flushErr = err
				}
			}
		}
		front = done
	}
	done := front
	if prepared {
		var failed map[*pagefile.PageFile]error
		var fatal error
		done, failed, fatal = f.submitGang(front, gang)
		if fatal != nil {
			prepared = false
			if flushErr == nil {
				flushErr = fatal
			}
		}
		// Members whose batches never landed (retries exhausted or a
		// permanent fault) roll back; survivors carry on to phase 2 with
		// their data on the device.
		for gi, s := range group[:acquired] {
			if e, ok := failed[s.tree.pf]; ok {
				if _, ok2 := quar[s]; !ok2 {
					quar[s] = e
				}
				flushed[gi] = false
			}
		}
	}
	// Group commit phase 2: only after the data writes reached the device
	// may FlushEnd records become durable — a FlushEnd without its data
	// would make recovery skip redo records for pages that were never
	// written. Quarantined members' deferred ends are withheld for the
	// same reason: their data was dropped or never landed, so a durable
	// FlushEnd would lose it. A crash or error between the phases leaves
	// FlushStart without FlushEnd, which recovery undoes.
	if prepared && len(lg.ends) > 0 {
		quarRel := make(map[uint32]bool, len(quar))
		for s := range quar {
			quarRel[s.tree.cfg.Relation] = true
		}
		appended := false
		for _, e := range lg.ends {
			if quarRel[e.rec.Relation] {
				continue
			}
			e.log.Append(e.rec)
			appended = true
		}
		if appended {
			// Force only the logs survivors still append to: a quarantined
			// member's log (dead device, withheld end) would burn the whole
			// retry budget again for records phase 1 already gave up on. A
			// log shared with a surviving member stays in the force set.
			liveLogs := make(map[*wal.Log]bool, acquired)
			for _, s := range group[:acquired] {
				if _, ok := quar[s]; !ok && s.tree.log != nil {
					liveLogs[s.tree.log] = true
				}
			}
			live := make([]*wal.Log, 0, len(lg.order))
			for _, l := range lg.order {
				if liveLogs[l] {
					live = append(live, l)
				}
			}
			done2, err2 := f.forceLogs(done, live)
			if err2 != nil {
				if IsIOFault(err2) {
					// A survivor's memory says flushed, but its FlushEnd is
					// not durable: a replay would undo the flush. Roll back
					// exactly the members whose end-force did not land to the
					// state the log actually describes.
					for gi, s := range group[:acquired] {
						if flushed[gi] && s.tree.log != nil && s.tree.log.Unforced() {
							if _, ok := quar[s]; !ok {
								quar[s] = err2
							}
							flushed[gi] = false
						}
					}
				} else if flushErr == nil {
					flushErr = err2
				}
			}
			done = done2
		}
	}
	if flushErr != nil {
		// Unattributable failure: some member's in-memory state and the
		// disk no longer agree and no shard-local rollback can prove
		// otherwise. Poison the forest until Crash+Recover rebuilds a
		// consistent state from the durable log.
		f.setDamaged(flushErr)
	}
	for gi, s := range group[:acquired] {
		if flushed[gi] {
			// This member's flush is durable end to end: a new rollback
			// baseline — and proof the device is really back, so the
			// self-healing incident clock resets.
			s.tree.commitDurableMeta()
			//lint:ignore guardedby member flush lock s.mu held until release below
			s.quarantinedAt = 0
		}
	}
	// Rollback replays for the quarantined members, charged on the vtime
	// clock while their flush locks are still held (readers wait for the
	// rollback exactly as they would for the flush).
	for _, s := range group[:acquired] {
		if e, ok := quar[s]; ok {
			done = f.quarantineShard(done, s, e)
		}
	}
	// Only members whose flush actually started hold the virtual lock.
	for _, s := range group[:acquired] {
		s.vlock.Release(done)
	}
	unlock()
	return done, flushErr
}

// submitGang submits the group's merged data writes, retrying batches
// that failed transiently (a partial gang applies whole batches or none,
// so a resubmission never double-writes). Returns the page files whose
// batches never landed — mapped to their owning shards for quarantine —
// and a fatal error for unattributable whole-gang failures.
func (f *Forest) submitGang(at vtime.Ticks, gang *writeGang) (vtime.Ticks, map[*pagefile.PageFile]error, error) {
	pending := make([]int, len(gang.order))
	for i := range pending {
		pending[i] = i
	}
	failed := make(map[*pagefile.PageFile]error)
	pol := f.retry.norm()
	for attempt := 0; ; attempt++ {
		done, err := gang.submitSubset(at, pending)
		f.gangSubmits.Add(1)
		if err == nil {
			return done, failed, nil
		}
		var pge *ssdio.PartialGangError
		if errors.As(err, &pge) {
			// Landed batches are out of the picture; permanent per-batch
			// faults fail their owner immediately, transient ones retry.
			var next []int
			for _, flt := range pge.Faults {
				if IsWatchdogTimeout(flt.Err) {
					f.watchdogTimeouts.Add(1)
				}
				orig := pending[flt.Batch]
				if IsTransientIO(flt.Err) {
					next = append(next, orig)
				} else {
					failed[gang.order[orig]] = flt.Err
				}
			}
			pending = next
		} else {
			if IsWatchdogTimeout(err) {
				f.watchdogTimeouts.Add(1)
			}
			if !IsTransientIO(err) {
				return done, failed, err
			}
		}
		if len(pending) == 0 {
			return done, failed, nil
		}
		if f.retry.Disabled || attempt >= pol.MaxRetries {
			f.ioRetriesExhausted.Add(1)
			for _, j := range pending {
				failed[gang.order[j]] = err
			}
			return done, failed, nil
		}
		wait := pol.backoff(attempt)
		f.ioRetries.Add(1)
		f.ioRetryBackoff.Add(int64(wait))
		at = done + wait
	}
}

// forceLogs makes the registered member logs durable: one ganged
// submission under group commit, or serial per-log Force calls under the
// per-shard baseline (DisableLogGang).
func (f *Forest) forceLogs(at vtime.Ticks, logs []*wal.Log) (vtime.Ticks, error) {
	if f.logGangEnabled {
		// ForceGroup commits the members whose writes landed even on a
		// partial failure, so a retried call resubmits only the
		// still-unforced tails — the WAL append order is preserved.
		return f.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
			done, n, err := wal.ForceGroup(at, logs)
			if n > 0 {
				f.logGangSubmits.Add(1)
			}
			return done, err
		})
	}
	// Serial baseline: attempt every log even after an attributable fault
	// so each member's durable state reflects its own device, not its
	// position in the loop — the group-flush error handler attributes
	// failures per member via Unforced. Unattributable errors still abort.
	var firstFault error
	for _, l := range logs {
		var err error
		at, err = f.retryIO(at, l.Force)
		if err != nil {
			if !IsIOFault(err) {
				return at, err
			}
			if firstFault == nil {
				firstFault = err
			}
		}
	}
	return at, firstFault
}

// Flush forces a group flush seeded by the fullest shard (no-op when the
// whole forest is empty).
func (f *Forest) Flush(at vtime.Ticks) (vtime.Ticks, error) {
	if err := f.checkDamaged(); err != nil {
		return at, err
	}
	best, bestLen := -1, 0
	for i, s := range f.shards {
		s.mu.Lock()
		n := s.tree.opq.Len()
		if s.quarantined {
			n = 0 // cannot flush; its queue holds already-durable replays
		}
		s.mu.Unlock()
		if n > bestLen {
			best, bestLen = i, n
		}
	}
	if best < 0 {
		return at, nil
	}
	return f.flushGroup(at, best)
}

// Checkpoint drains every shard's OPQ. The per-shard drains start at the
// caller's time and proceed in parallel in virtual time. With WALs
// attached, a checkpoint record is appended per shard and the final
// forces are ganged into one blocking submission — the forest-wide
// checkpoint the recovery scan cuts at.
func (f *Forest) Checkpoint(at vtime.Ticks) (vtime.Ticks, error) {
	if err := f.checkDamaged(); err != nil {
		return at, err
	}
	// Freeze migration chunks for the sweep: the routing snapshot logged
	// below must match the drained state, and head truncation must not
	// race a chunk's log appends.
	f.migMu.RLock()
	defer f.migMu.RUnlock()
	// With a shared log, every shard lock is held for the whole
	// checkpoint (the same discipline as the group-flush coordinator) so
	// the ganged force cannot interleave a group commit in progress. With
	// per-shard logs the drain proceeds one shard at a time, as before:
	// the final ganged force is safe without shard locks because each
	// wal.Log serializes its force operations internally.
	if f.sharedLog {
		for _, s := range f.shards {
			s.mu.Lock()
		}
		defer func() {
			for _, s := range f.shards {
				s.mu.Unlock()
			}
		}()
	}
	done := at
	lg := newLogGang()
	// cut tracks, per log, the LSN of this round's first checkpoint
	// record: once the round is durable, everything before it is dead for
	// recovery (each shard's replay starts at its last checkpoint).
	cut := make(map[*wal.Log]uint64)
	anyQuarantined := false
	for si, s := range f.shards {
		if !f.sharedLog {
			s.mu.Lock()
		}
		//lint:ignore guardedby s.mu held above unless sharedLog, whose single-owner discipline serializes shard access
		if s.quarantined {
			// A quarantined shard cannot drain (its device may still be
			// failing) and logs no checkpoint record: its replay cursor
			// must stay where its last successful rollback left it. Only
			// non-evacuated quarantines block truncation below — an
			// evacuated shard's live state moved to healthy shards, and its
			// own log is never in this round's cut set, so holding every
			// log's history for it would leak log space forever.
			if !f.rpart.IsEvacuated(si) {
				anyQuarantined = true
			}
			if !f.sharedLog {
				s.mu.Unlock()
			}
			continue
		}
		start := s.vlock.Acquire(at)
		d, err := s.tree.drain(start)
		if err == nil && s.tree.log != nil {
			lsn := s.tree.log.Append(wal.Record{Kind: wal.KindCheckpoint, Relation: s.tree.cfg.Relation})
			if _, ok := cut[s.tree.log]; !ok {
				cut[s.tree.log] = lsn
			}
			lg.need(s.tree.log)
		}
		s.vlock.Release(d)
		if !f.sharedLog {
			s.mu.Unlock()
		}
		if err != nil {
			return d, err
		}
		done = vtime.Max(done, d)
	}
	if len(f.logs) > 0 {
		// Persist the routing table next to the checkpoint records (after
		// them, so truncation keeps it): head truncation must never strand
		// the routing reconstruction behind a dropped MigrationEnd.
		f.logs[0].Append(wal.Record{
			Kind:     wal.KindRoutingSnapshot,
			UndoInfo: encodeRoutingMeta(f.rpart.RoutingSnapshot()),
		})
		lg.need(f.logs[0])
	}
	if len(lg.order) > 0 {
		d, err := f.forceLogs(done, lg.order)
		if err != nil {
			return d, err
		}
		done = d
	}
	// Log head truncation (the logs otherwise grow forever): safe only
	// once the round is durable, and skipped while a migration is in
	// flight — its Start/KeyMoved records may predate this checkpoint and
	// recovery still needs them to resume or roll back the move — or while
	// any shard is quarantined: its Heal replay still reads records that
	// predate this round's checkpoint cut.
	if f.truncateLogs && !f.rebalanceActive.Load() && !anyQuarantined {
		for l, lsn := range cut {
			if _, err := l.TruncateHead(lsn); err != nil {
				return done, err
			}
		}
	}
	return done, nil
}

// Sync is an explicit commit point: it forces every attached log, making
// the redo records of all buffered (but not yet flushed) operations
// durable without paying for a flush — one ganged submission, or serial
// per-log forces under DisableLogGang. A no-op without WALs.
func (f *Forest) Sync(at vtime.Ticks) (vtime.Ticks, error) {
	if err := f.checkDamaged(); err != nil {
		return at, err
	}
	if len(f.logs) == 0 {
		return at, nil
	}
	// A shared log must not be forced mid-group-commit; the shard locks
	// exclude any coordinator. Per-shard logs need no shard locks: each
	// wal.Log serializes its force operations internally.
	if f.sharedLog {
		for _, s := range f.shards {
			s.mu.Lock()
		}
		defer func() {
			for _, s := range f.shards {
				s.mu.Unlock()
			}
		}()
	}
	// Skip logs that only quarantined shards use: forcing a tail onto a
	// dead device would fail the whole Sync for healthy shards' sake.
	logs := make([]*wal.Log, 0, len(f.logs))
	needed := make(map[*wal.Log]bool, len(f.logs))
	for _, s := range f.shards {
		if !f.sharedLog {
			s.mu.Lock()
		}
		//lint:ignore guardedby s.mu held above unless sharedLog, whose single-owner discipline serializes shard access
		if !s.quarantined {
			needed[s.tree.log] = true
		}
		if !f.sharedLog {
			s.mu.Unlock()
		}
	}
	for _, l := range f.logs {
		if needed[l] {
			logs = append(logs, l)
		}
	}
	if len(logs) == 0 {
		return at, nil
	}
	return f.forceLogs(at, logs)
}

// ForestRecoveryReport aggregates the per-shard recovery reports.
type ForestRecoveryReport struct {
	// Shards holds shard i's report at index i.
	Shards []RecoveryReport
	// Total sums the per-shard counters.
	Total RecoveryReport
	// ResumedMigrations counts half-done migrations rolled forward from
	// their durable frontier; RolledBackMigrations those with no durable
	// chunk, rolled back. MigrationKeysMoved counts keys re-streamed by
	// resumes, MigrationKeysPurged stale copies deleted on either side.
	ResumedMigrations    int
	RolledBackMigrations int
	MigrationKeysMoved   int
	MigrationKeysPurged  int
}

// Recover replays every shard's WAL per the paper's Section 3.4 (each
// shard filters the log by its Relation, so both the shared-log and the
// per-shard-log layouts recover correctly) and returns the aggregated
// report. Call after Crash (or on a freshly reconstructed forest whose
// files and logs hold the durable pre-crash state, with RestoreMeta
// applied).
func (f *Forest) Recover(at vtime.Ticks) (ForestRecoveryReport, vtime.Ticks, error) {
	rep := ForestRecoveryReport{Shards: make([]RecoveryReport, len(f.shards))}
	// A shared log is decoded once, not once per shard — and its scan I/O
	// is charged once, on the vtime clock, like any other read.
	var shared []wal.Record
	if f.sharedLog {
		var err error
		at, err = f.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
			var rerr error
			shared, at, rerr = f.logs[0].RecordsTimed(at)
			return at, rerr
		})
		if err != nil {
			return rep, at, err
		}
	}
	done := at
	for i, s := range f.shards {
		s.mu.Lock()
		var r RecoveryReport
		var d vtime.Ticks
		var err error
		if shared != nil {
			r, d, err = s.tree.recoverFrom(at, shared)
		} else {
			r, d, err = s.tree.Recover(at)
		}
		if err == nil {
			// A successful replay supersedes any quarantine: the shard is
			// re-admitted in exactly the durable state, with a fresh
			// self-healing incident clock.
			s.quarantined, s.qDirty, s.qErr = false, false, nil
			s.quarantinedAt, s.nextProbeAt, s.probeGap = 0, 0, 0
		}
		s.mu.Unlock()
		if err != nil {
			return rep, d, fmt.Errorf("core: forest shard %d: %w", i, err)
		}
		rep.Shards[i] = r
		rep.Total.UndoneFlushes += r.UndoneFlushes
		rep.Total.UndoPagesApplied += r.UndoPagesApplied
		rep.Total.RedoneEntries += r.RedoneEntries
		rep.Total.SkippedEntries += r.SkippedEntries
		done = vtime.Max(done, d)
	}
	// Rebuild the routing table from the durable migration records and
	// resume or roll back any half-done move (the per-shard replay above
	// already restored both trees' contents; this pass restores WHERE
	// keys live and finishes moving the in-flight range).
	done, err := f.recoverRouting(done, &rep)
	if err != nil {
		return rep, done, err
	}
	// The per-shard replay above re-admitted every shard; evacuated
	// shards must not come back as live members — their routing rules
	// moved the range away and their physical copies are stale. Re-mark
	// them quarantined (reads and writes keep skipping them).
	for i, s := range f.shards {
		if !f.rpart.IsEvacuated(i) {
			continue
		}
		s.mu.Lock()
		s.quarantined = true
		s.qErr = fmt.Errorf("core: shard %d evacuated", i)
		s.mu.Unlock()
	}
	// The durable log has been replayed into a consistent state; lift any
	// group-commit damage mark.
	f.damaged.Store(nil)
	return rep, done, nil
}

// Heal attempts to re-admit a quarantined shard: it re-runs the
// rollback replay (restore the durable snapshot, drop volatile state,
// replay the shard's durable log records), and on success lifts the
// quarantine — the shard serves writes again from exactly its committed
// state. If the device is still failing the replay fails and the shard
// stays quarantined; call again after the fault clears (or let the
// auto-heal prober keep trying). Idempotent: a no-op on a healthy
// shard. An evacuated shard cannot heal — its range now lives on
// healthy shards and its physical copies are stale.
func (f *Forest) Heal(at vtime.Ticks, shard int) (vtime.Ticks, error) {
	if err := f.checkDamaged(); err != nil {
		return at, err
	}
	if shard < 0 || shard >= len(f.shards) {
		return at, fmt.Errorf("core: Heal: no shard %d (forest has %d)", shard, len(f.shards))
	}
	if f.rpart.IsEvacuated(shard) {
		return at, fmt.Errorf("core: Heal: shard %d was evacuated; its range is served by healthy shards", shard)
	}
	s := f.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.quarantined {
		return at, nil
	}
	return f.healLocked(at, shard, s)
}

// Quarantined returns the indexes of shards currently in read-only
// degraded mode and awaiting a heal. Evacuated shards are excluded:
// their range is already served by healthy shards and Heal rejects them
// — they are retired, not degraded (ForestStats.EvacuatedShards counts
// them).
func (f *Forest) Quarantined() []int {
	var out []int
	for i, s := range f.shards {
		if f.rpart.IsEvacuated(i) {
			continue
		}
		s.mu.Lock()
		if s.quarantined {
			out = append(out, i)
		}
		s.mu.Unlock()
	}
	return out
}

// Crash simulates a whole-forest crash: every shard's volatile state
// (OPQ, LSMap, buffer pool, unforced log tail) vanishes; the simulated
// SSD contents and the forced WAL records remain.
func (f *Forest) Crash() {
	for _, s := range f.shards {
		s.mu.Lock()
		s.tree.CrashVolatileState()
		s.mu.Unlock()
	}
	// The in-flight migration's frontier is volatile state: Recover
	// reconstructs it from the durable KeyMoved records.
	if rt := f.rpart.cur.Load(); rt.mig != nil {
		next := *rt
		next.mig = nil
		f.rpart.publish(next)
	}
	// A budget-parked AutoRebalance migration handle is stale after a
	// crash (Recover resolves the move from its durable records); drop it
	// so the next poll does not surface a spurious stale-handle error.
	f.autoMu.Lock()
	f.autoMig = nil
	f.autoMu.Unlock()
	f.rebalanceActive.Store(false)
}

// SnapshotMeta captures every shard's structural state (what a DBMS
// catalog would persist), shard i at index i.
func (f *Forest) SnapshotMeta() []Meta {
	out := make([]Meta, len(f.shards))
	for i, s := range f.shards {
		s.mu.Lock()
		out[i] = s.tree.Snapshot()
		s.mu.Unlock()
	}
	return out
}

// RestoreMeta resets every shard's structural state from a SnapshotMeta
// capture (crash-recovery harnesses restore the durable snapshot, then
// call Recover).
func (f *Forest) RestoreMeta(ms []Meta) error {
	if len(ms) != len(f.shards) {
		return fmt.Errorf("core: restore meta for %d shards, forest has %d", len(ms), len(f.shards))
	}
	for i, s := range f.shards {
		s.mu.Lock()
		s.tree.RestoreMeta(ms[i])
		s.mu.Unlock()
	}
	return nil
}

// Count returns the number of live records across all shards.
func (f *Forest) Count() int64 {
	// A migration chunk moves keys between two shards atomically under
	// migMu; freeze it so the sweep neither double- nor under-counts.
	f.migMu.RLock()
	defer f.migMu.RUnlock()
	var n int64
	for i, s := range f.shards {
		if f.rpart.IsEvacuated(i) {
			// Stale physical copies on an evacuated shard; the live records
			// are counted on their destination.
			continue
		}
		s.mu.Lock()
		n += s.tree.Count()
		s.mu.Unlock()
	}
	return n
}

// Height returns the tallest shard height.
func (f *Forest) Height() int {
	h := 0
	for _, s := range f.shards {
		s.mu.Lock()
		if sh := s.tree.Height(); sh > h {
			h = sh
		}
		s.mu.Unlock()
	}
	return h
}

// Pending returns the total number of OPQ-buffered operations.
func (f *Forest) Pending() int {
	n := 0
	for _, s := range f.shards {
		s.mu.Lock()
		n += s.tree.OPQLen()
		s.mu.Unlock()
	}
	return n
}

// ApplyOPQBudget re-splits a new global OPQ page budget evenly across
// the shards — the online application of an eq.-(10) retune (TuneForest's
// GlobalO recomputed on observed loads). A shard whose queue holds more
// entries than its new capacity is flushed through the group coordinator
// first; a shard that still cannot shrink afterwards (e.g. one excluded
// from the group mid-migration) keeps its old capacity and counts as
// skipped. Returns the completion time of any flushes performed.
func (f *Forest) ApplyOPQBudget(at vtime.Ticks, globalPages int) (done vtime.Ticks, resized, skipped int, err error) {
	if err := f.checkDamaged(); err != nil {
		return at, 0, 0, err
	}
	if globalPages < 1 {
		return at, 0, 0, fmt.Errorf("core: OPQ budget must be >= 1 page, got %d", globalPages)
	}
	per := splitBudget(globalPages, len(f.shards))
	done = at
	for i, s := range f.shards {
		s.mu.Lock()
		needFlush := s.tree.OPQLen() > per*s.tree.cfg.PageSize/kv.EntrySize
		s.mu.Unlock()
		if needFlush {
			done, err = f.flushGroup(done, i)
			if err != nil {
				return done, resized, skipped, err
			}
		}
		s.mu.Lock()
		if s.tree.SetOPQPages(per) != nil {
			skipped++
		} else {
			resized++
		}
		s.mu.Unlock()
	}
	return done, resized, skipped, nil
}

// Stats aggregates shard tree counters and coordinator activity.
func (f *Forest) Stats() ForestStats {
	out := ForestStats{
		Shards:          len(f.shards),
		GroupFlushes:    f.groupFlushes.Load(),
		GroupedShards:   f.groupedShards.Load(),
		GangSubmits:     f.gangSubmits.Load(),
		RoutingEpoch:    f.rpart.Epoch(),
		Migrations:      f.migrations.Load(),
		MigratedKeys:    f.keysMigrated.Load(),
		MigrationActive: f.rebalanceActive.Load(),
		ShardLoads:      make([]ShardLoad, 0, len(f.shards)),
	}
	for i, s := range f.shards {
		evacuated := f.rpart.IsEvacuated(i)
		s.mu.Lock()
		out.ShardLoads = append(out.ShardLoads, ShardLoad{
			Ops:         s.ops,
			Keys:        s.tree.Count(),
			Pending:     s.tree.OPQLen(),
			OPQPages:    s.tree.OPQPages(),
			Quarantined: s.quarantined,
			Evacuated:   evacuated,
		})
		switch {
		case evacuated:
			out.EvacuatedShards++
		case s.quarantined:
			out.QuarantinedShards++
		}
		st := s.tree.Stats()
		out.Tree.Flushes += st.Flushes
		out.Tree.Shrinks += st.Shrinks
		out.Tree.LeafSplits += st.LeafSplits
		out.Tree.LeafAppends += st.LeafAppends
		out.Tree.PsyncReads += st.PsyncReads
		out.Tree.PsyncWrites += st.PsyncWrites
		out.Tree.GangedWrites += st.GangedWrites
		out.Tree.SearchOps += st.SearchOps
		out.Tree.UpdateOps += st.UpdateOps
		out.Tree.RangeOps += st.RangeOps
		out.Tree.OPQShortcuts += st.OPQShortcuts
		out.Tree.IORetries += st.IORetries
		out.Tree.IORetryBackoff += st.IORetryBackoff
		out.Tree.IORetriesExhausted += st.IORetriesExhausted
		out.Tree.WatchdogTimeouts += st.WatchdogTimeouts
		out.VLockWaits += s.vlock.Waits
		out.VLockContended += s.vlock.Contended
		out.Pending += s.tree.OPQLen()
		s.mu.Unlock()
	}
	// The coordinator's own retry activity (gang and ganged log-force
	// resubmissions) on top of the per-tree counters.
	out.IORetries = out.Tree.IORetries + f.ioRetries.Load()
	out.IORetryBackoff = out.Tree.IORetryBackoff + vtime.Ticks(f.ioRetryBackoff.Load())
	out.IORetriesExhausted = out.Tree.IORetriesExhausted + f.ioRetriesExhausted.Load()
	out.WatchdogTimeouts = out.Tree.WatchdogTimeouts + f.watchdogTimeouts.Load()
	out.HealProbes = f.healProbes.Load()
	out.AutoHeals = f.autoHeals.Load()
	out.Evacuations = f.evacuations.Load()
	out.EvacuatedChunks = f.evacChunks.Load()
	out.MigrationAborts = f.migrationAborts.Load()
	// Log-plane counters: each log guards its own counters (Sync and
	// Checkpoint may force per-shard logs without holding shard locks).
	out.LogGangSubmits = f.logGangSubmits.Load()
	for _, l := range f.logs {
		fw, _ := l.ForceStats()
		out.LogForceWrites += fw
		out.LogTruncatedBytes += l.TruncatedBytes()
	}
	out.LogSubmits = out.LogForceWrites + out.LogGangSubmits
	return out
}

// CheckInvariants validates every shard's on-disk structure and that each
// shard holds only keys the partitioner routes to it.
func (f *Forest) CheckInvariants() error {
	for i, s := range f.shards {
		if f.rpart.IsEvacuated(i) {
			// The shard's stale physical copies legitimately violate routing
			// (its device rejected the deletes); sweeps skip it entirely.
			continue
		}
		s.mu.Lock()
		err := s.tree.CheckInvariants()
		if err == nil {
			for _, e := range s.tree.opq.Entries() {
				if f.part.Shard(e.Rec.Key) == i {
					continue
				}
				// A foreign key whose newest queued operation is a delete is
				// legitimate: migration purges leave tombstones (and the
				// stale entries they shadow) in the queue until the next
				// flush annihilates them.
				if newest, ok := s.tree.opq.Lookup(e.Rec.Key); !ok || newest.Op != kv.OpDelete {
					err = fmt.Errorf("core: forest shard %d queues foreign key %d", i, e.Rec.Key)
					break
				}
			}
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
