package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kv"
)

func TestOPQValidation(t *testing.T) {
	if _, err := NewOPQ(0, 10); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestOPQAppendLookup(t *testing.T) {
	q, err := NewOPQ(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := q.Append(kv.Entry{Rec: kv.Record{Key: uint64(i), Value: uint64(i * 2)}, Op: kv.OpInsert}); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 50 {
		t.Fatalf("len = %d", q.Len())
	}
	e, ok := q.Lookup(25)
	if !ok || e.Rec.Value != 50 {
		t.Fatalf("Lookup(25) = %+v %v", e, ok)
	}
	if _, ok := q.Lookup(1000); ok {
		t.Fatal("found absent key")
	}
	// Sorting was triggered by speriod=8 several times.
	if q.Sorts == 0 {
		t.Fatal("no periodic sorts")
	}
}

func TestOPQFullRejectsAppend(t *testing.T) {
	q, _ := NewOPQ(2, 0)
	q.Append(kv.Entry{Rec: kv.Record{Key: 1}})
	q.Append(kv.Entry{Rec: kv.Record{Key: 2}})
	if !q.Full() {
		t.Fatal("queue not full")
	}
	if err := q.Append(kv.Entry{Rec: kv.Record{Key: 3}}); err == nil {
		t.Fatal("append to full queue accepted")
	}
}

// TestOPQLookupNewestWins: for the same key, the most recent append must
// win, whether it sits in the tail or the sorted region.
func TestOPQLookupNewestWins(t *testing.T) {
	q, _ := NewOPQ(100, 4)
	q.Append(kv.Entry{Rec: kv.Record{Key: 7, Value: 1}, Op: kv.OpInsert})
	q.Append(kv.Entry{Rec: kv.Record{Key: 7}, Op: kv.OpDelete})
	e, ok := q.Lookup(7)
	if !ok || e.Op != kv.OpDelete {
		t.Fatalf("Lookup = %+v, want delete", e)
	}
	// Force a sort: the merged region must still report the delete last.
	q.Sort()
	e, ok = q.Lookup(7)
	if !ok || e.Op != kv.OpDelete {
		t.Fatalf("after sort Lookup = %+v, want delete", e)
	}
	// Re-insert after the sort: tail beats sorted region.
	q.Append(kv.Entry{Rec: kv.Record{Key: 7, Value: 9}, Op: kv.OpInsert})
	e, ok = q.Lookup(7)
	if !ok || e.Op != kv.OpInsert || e.Rec.Value != 9 {
		t.Fatalf("tail lookup = %+v", e)
	}
}

func TestOPQRange(t *testing.T) {
	q, _ := NewOPQ(100, 0)
	for _, k := range []uint64{5, 15, 25, 35} {
		q.Append(kv.Entry{Rec: kv.Record{Key: k, Value: k}, Op: kv.OpInsert})
	}
	got := q.Range(10, 30)
	if len(got) != 2 || got[0].Rec.Key != 15 || got[1].Rec.Key != 25 {
		t.Fatalf("Range = %+v", got)
	}
}

func TestOPQTakeBatch(t *testing.T) {
	q, _ := NewOPQ(100, 0)
	keys := []uint64{30, 10, 20, 10, 40}
	for i, k := range keys {
		q.Append(kv.Entry{Rec: kv.Record{Key: k, Value: uint64(i)}, Op: kv.OpInsert})
	}
	batch := q.TakeBatch(3)
	if len(batch) != 3 {
		t.Fatalf("batch len %d", len(batch))
	}
	// Sorted ascending; the two key-10 entries keep arrival order.
	if batch[0].Rec.Key != 10 || batch[1].Rec.Key != 10 || batch[2].Rec.Key != 20 {
		t.Fatalf("batch = %+v", batch)
	}
	if batch[0].Rec.Value != 1 || batch[1].Rec.Value != 3 {
		t.Fatalf("arrival order lost: %+v", batch[:2])
	}
	if q.Len() != 2 {
		t.Fatalf("remaining %d", q.Len())
	}
	rest := q.TakeBatch(0)
	if len(rest) != 2 || rest[0].Rec.Key != 30 || rest[1].Rec.Key != 40 {
		t.Fatalf("rest = %+v", rest)
	}
	if q.Len() != 0 {
		t.Fatal("queue not drained")
	}
}

// Property: after any append sequence, TakeBatch(0) returns all entries
// key-sorted with per-key arrival order preserved.
func TestQuickOPQTakeBatchSorted(t *testing.T) {
	f := func(keys []uint8) bool {
		if len(keys) > 200 {
			keys = keys[:200]
		}
		q, _ := NewOPQ(256, 16)
		for i, k := range keys {
			if err := q.Append(kv.Entry{Rec: kv.Record{Key: uint64(k), Value: uint64(i)}, Op: kv.OpInsert}); err != nil {
				return false
			}
		}
		batch := q.TakeBatch(0)
		if len(batch) != len(keys) {
			return false
		}
		for i := 1; i < len(batch); i++ {
			if batch[i-1].Rec.Key > batch[i].Rec.Key {
				return false
			}
			// Equal keys: arrival (Value) order preserved.
			if batch[i-1].Rec.Key == batch[i].Rec.Key && batch[i-1].Rec.Value > batch[i].Rec.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: OPQ.Lookup always agrees with a naive scan-from-the-end model.
func TestQuickOPQLookupModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q, _ := NewOPQ(512, 7)
	var history []kv.Entry
	for i := 0; i < 500; i++ {
		e := kv.Entry{
			Rec: kv.Record{Key: uint64(rng.Intn(40)), Value: uint64(i)},
			Op:  []kv.Op{kv.OpInsert, kv.OpDelete, kv.OpUpdate}[rng.Intn(3)],
		}
		if err := q.Append(e); err != nil {
			t.Fatal(err)
		}
		history = append(history, e)
		// Check a random key against the model.
		k := uint64(rng.Intn(40))
		var want kv.Entry
		var wantOK bool
		for j := len(history) - 1; j >= 0; j-- {
			if history[j].Rec.Key == k {
				want, wantOK = history[j], true
				break
			}
		}
		got, ok := q.Lookup(k)
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("step %d: Lookup(%d) = %+v,%v want %+v,%v", i, k, got, ok, want, wantOK)
		}
	}
}

func TestLSMap(t *testing.T) {
	ls := NewLSMap(8)
	if _, ok := ls.Get(1); ok {
		t.Fatal("hit on empty map")
	}
	ls.Set(1, 5)
	got, ok := ls.Get(1)
	if !ok || got != 5 {
		t.Fatalf("Get = %d,%v", got, ok)
	}
	// Clamping.
	ls.Set(2, -3)
	if v, _ := ls.Get(2); v != 0 {
		t.Fatalf("negative clamp: %d", v)
	}
	ls.Set(3, 99)
	if v, _ := ls.Get(3); v != 7 {
		t.Fatalf("upper clamp: %d", v)
	}
	if ls.Len() != 3 {
		t.Fatalf("len %d", ls.Len())
	}
	if ls.SizeBytes() != 3 {
		t.Fatalf("size %d", ls.SizeBytes())
	}
	ls.Delete(1)
	if _, ok := ls.Get(1); ok {
		t.Fatal("deleted leaf still cached")
	}
	hits, misses := ls.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
	// Miss fallback must point at the last segment (whole-leaf read).
	if v, ok := ls.Get(42); ok || v != 7 {
		t.Fatalf("miss fallback = %d,%v", v, ok)
	}
}
