package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/kv"
	"repro/internal/vtime"
)

// hammer runs writers, readers, a checkpointer and a stats poller as real
// goroutines against an index façade, then verifies virtual-time
// monotonicity and that no update was lost. It is primarily a -race test:
// the simulated timings are interleaving-dependent, the data must not be.
type hammerIndex interface {
	Search(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error)
	Insert(at vtime.Ticks, r kv.Record) (vtime.Ticks, error)
	Delete(at vtime.Ticks, k kv.Key) (vtime.Ticks, error)
	Checkpoint(at vtime.Ticks) (vtime.Ticks, error)
	RangeSearch(at vtime.Ticks, lo, hi kv.Key) ([]kv.Record, vtime.Ticks, error)
}

func hammer(t *testing.T, idx hammerIndex, poll func(), loaded []kv.Record) {
	t.Helper()
	const (
		writers      = 4
		readers      = 3
		opsPerWorker = 300
	)
	var wg sync.WaitGroup
	var stop atomic.Bool
	errs := make(chan error, writers+readers+2)

	// Writers: disjoint fresh key ranges, one delete of a private loaded
	// key per 10 inserts. Each tracks its own virtual clock and asserts
	// completion times never run backwards.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var now vtime.Ticks
			base := kv.Key(1<<40) + kv.Key(w)<<20
			for i := 0; i < opsPerWorker; i++ {
				var done vtime.Ticks
				var err error
				if i%10 == 9 {
					// Delete a loaded key owned by this writer.
					k := loaded[(w*opsPerWorker+i)%len(loaded)].Key
					done, err = idx.Delete(now, k)
				} else {
					done, err = idx.Insert(now, kv.Record{Key: base + kv.Key(i), Value: kv.Value(i)})
				}
				if err != nil {
					errs <- err
					return
				}
				if done < now {
					t.Errorf("writer %d: virtual time ran backwards: %d -> %d", w, now, done)
					return
				}
				now = done
			}
		}(w)
	}

	// Readers: point and range searches over the loaded keys.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var now vtime.Ticks
			for i := 0; i < opsPerWorker; i++ {
				var done vtime.Ticks
				var err error
				if i%20 == 19 {
					lo := loaded[(r*31+i)%len(loaded)].Key
					_, done, err = idx.RangeSearch(now, lo, lo+256)
				} else {
					_, _, done, err = idx.Search(now, loaded[(r*17+i)%len(loaded)].Key)
				}
				if err != nil {
					errs <- err
					return
				}
				if done < now {
					t.Errorf("reader %d: virtual time ran backwards: %d -> %d", r, now, done)
					return
				}
				now = done
			}
		}(r)
	}

	// Checkpointer: periodic full flushes racing the workload.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var now vtime.Ticks
		for i := 0; i < 10; i++ {
			done, err := idx.Checkpoint(now)
			if err != nil {
				errs <- err
				return
			}
			now = done
		}
	}()

	// Stats poller: reads counters mid-workload (the racy seed accessors).
	// Not part of wg: it runs until the workers have drained.
	pollerDone := make(chan struct{})
	go func() {
		defer close(pollerDone)
		for !stop.Load() {
			poll()
		}
	}()

	go func() {
		wg.Wait()
		close(errs)
	}()
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	<-pollerDone

	// No lost updates: every writer's surviving inserts must be visible.
	done, err := idx.Checkpoint(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		base := kv.Key(1<<40) + kv.Key(w)<<20
		for i := 0; i < opsPerWorker; i++ {
			if i%10 == 9 {
				continue
			}
			v, ok, _, err := idx.Search(done, base+kv.Key(i))
			if err != nil {
				t.Fatal(err)
			}
			if !ok || v != kv.Value(i) {
				t.Fatalf("lost update: writer %d op %d (got %d,%v)", w, i, v, ok)
			}
		}
	}
}

func raceLoad(t *testing.T, n int) []kv.Record {
	t.Helper()
	recs := make([]kv.Record, n)
	for i := range recs {
		recs[i] = kv.Record{Key: kv.Key(i*16 + 8), Value: kv.Value(i)}
	}
	return recs
}

func TestConcurrentGoroutineRace(t *testing.T) {
	cfg := forestCfg()
	tr := newTestTree(t, cfg)
	recs := raceLoad(t, 2000)
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(tr)
	hammer(t, c, func() { c.VLockStats() }, recs)
	if err := c.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForestGoroutineRace(t *testing.T) {
	for _, shards := range []int{1, 4} {
		fr := newTestForest(t, shards, forestCfg(), nil)
		recs := raceLoad(t, 2000)
		if err := fr.BulkLoad(recs); err != nil {
			t.Fatal(err)
		}
		hammer(t, fr, func() {
			fr.Stats()
			fr.Pending()
			fr.Count()
		}, recs)
		if err := fr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
