package core

import (
	"fmt"

	"repro/internal/bufferpool"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// RecoveryReport summarizes what Recover did.
type RecoveryReport struct {
	// UndoneFlushes counts incomplete flushes rolled back.
	UndoneFlushes int
	// UndoPagesApplied counts node pre-images restored.
	UndoPagesApplied int
	// RedoneEntries counts logical redo records replayed into the OPQ.
	RedoneEntries int
	// SkippedEntries counts redo records covered by completed flushes.
	SkippedEntries int
}

// Recover implements the paper's crash-recovery procedure (Section 3.4)
// for this index relation:
//
//  1. scan the durable log; pair FlushStart/FlushEnd records;
//  2. undo phase (before redo, as the paper specifies): for every
//     incomplete flush, restore the pre-images from its flush undo logs in
//     reverse order;
//  3. redo phase: replay logical redo logs into the OPQ, skipping records
//     that fall inside the key range of a completed flush that followed
//     them (logical redo is not idempotent);
//  4. checkpoint records clear everything before them.
//
// The tree's in-memory OPQ is rebuilt; structural state (root, height) is
// taken from meta, which the caller persists separately (the experiments
// snapshot it; a full DBMS would keep it in the catalog).
func (t *Tree) Recover(at vtime.Ticks) (RecoveryReport, vtime.Ticks, error) {
	if t.log == nil {
		return RecoveryReport{}, at, fmt.Errorf("core: Recover called without a WAL attached")
	}
	recs, at, err := t.readDurableRecords(at)
	if err != nil {
		return RecoveryReport{}, at, err
	}
	return t.recoverFrom(at, recs)
}

// readDurableRecords scans the durable WAL with the read I/O charged on
// the vtime clock (recovery used to replay for free), retrying transient
// faults like any other read.
func (t *Tree) readDurableRecords(at vtime.Ticks) ([]wal.Record, vtime.Ticks, error) {
	var recs []wal.Record
	at, err := t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
		var rerr error
		recs, at, rerr = t.log.RecordsTimed(at)
		return at, rerr
	})
	return recs, at, err
}

// recoverFrom replays pre-decoded log records. Forest.Recover decodes a
// shared multiplexed log once and hands every shard the same slice,
// instead of re-reading and re-CRC-checking the whole log per shard.
func (t *Tree) recoverFrom(at vtime.Ticks, recs []wal.Record) (RecoveryReport, vtime.Ticks, error) {
	var rep RecoveryReport
	if t.log == nil {
		return rep, at, fmt.Errorf("core: Recover called without a WAL attached")
	}
	// Only this relation's records matter.
	var mine []wal.Record
	for _, r := range recs {
		if r.Relation == t.cfg.Relation {
			mine = append(mine, r)
		}
	}
	// Cut at the last checkpoint: everything before is fully flushed.
	start := 0
	for i, r := range mine {
		if r.Kind == wal.KindCheckpoint {
			start = i + 1
		}
	}
	mine = mine[start:]

	// Pair flushes.
	completed := map[uint64][2]kv.Key{} // flushID -> [lo,hi]
	started := map[uint64]bool{}
	for _, r := range mine {
		switch r.Kind {
		case wal.KindFlushStart:
			started[r.FlushID] = true
		case wal.KindFlushEnd:
			if started[r.FlushID] {
				completed[r.FlushID] = [2]kv.Key{r.KeyLo, r.KeyHi}
				delete(started, r.FlushID)
			}
		}
	}

	// Undo phase: roll back incomplete flushes (pre-images in reverse).
	for i := len(mine) - 1; i >= 0; i-- {
		r := mine[i]
		if r.Kind != wal.KindFlushUndo || !started[r.FlushID] {
			continue
		}
		if len(r.UndoInfo) != t.cfg.PageSize {
			return rep, at, fmt.Errorf("core: flush undo for page %d has %d bytes", r.NodeID, len(r.UndoInfo))
		}
		// One timed page write both restores the pre-image and charges the
		// undo's device cost. Pre-image writes are idempotent, so retrying
		// a transient fault is safe.
		var werr error
		at, werr = t.retryIO(at, func(at vtime.Ticks) (vtime.Ticks, error) {
			return t.pf.WritePage(at, pagefile.PageID(r.NodeID), r.UndoInfo)
		})
		if werr != nil {
			return rep, at, werr
		}
		t.pool.Invalidate(pagefile.PageID(r.NodeID))
		rep.UndoPagesApplied++
	}
	rep.UndoneFlushes = len(started)

	// Redo phase: rebuild the OPQ from logical redo logs. A record is
	// skipped when a completed flush that STARTED AFTER the record was
	// logged covers its key (the flush consumed it). A single backward
	// sweep accumulates the completed-flush key ranges lying ahead of
	// each position, so replay costs O(records x completed flushes)
	// instead of rescanning the log tail per redo record.
	type keyRange struct{ lo, hi kv.Key }
	skip := make([]bool, len(mine))
	var ahead []keyRange
	for i := len(mine) - 1; i >= 0; i-- {
		r := mine[i]
		switch r.Kind {
		case wal.KindLogicalRedo:
			for _, kr := range ahead {
				if r.Key >= kr.lo && r.Key <= kr.hi {
					skip[i] = true
					break
				}
			}
		case wal.KindFlushStart:
			if rng, ok := completed[r.FlushID]; ok {
				ahead = append(ahead, keyRange{lo: rng[0], hi: rng[1]})
			}
		}
	}
	budget := t.opq.Cap()
	t.opq.Reset()
	t.count = 0
	for i, r := range mine {
		if r.Kind != wal.KindLogicalRedo {
			continue
		}
		if skip[i] {
			rep.SkippedEntries++
			continue
		}
		e := kv.Entry{Rec: kv.Record{Key: r.Key, Value: r.Value}, Op: kv.Op(r.Op)}
		if t.opq.Full() {
			// A quarantined shard appends compensation records (migration
			// purges, stranded copies) to its tail but can never flush, so
			// the durable redo stream may legitimately exceed the OPQ
			// budget. Flushing mid-replay would let the new flush's key
			// range cover not-yet-replayed records and lose them on the
			// NEXT recovery, so grow the queue instead and drain it with a
			// regular flush once the replay is complete.
			grown, gerr := NewOPQ(t.opq.Cap()*2, t.cfg.SPeriod)
			if gerr != nil {
				return rep, at, gerr
			}
			for _, pe := range t.opq.Entries() {
				if gerr := grown.Append(pe); gerr != nil {
					return rep, at, gerr
				}
			}
			t.opq = grown
		}
		if err := t.opq.Append(e); err != nil {
			return rep, at, err
		}
		rep.RedoneEntries++
	}
	// Recompute the logical count from disk plus the rebuilt OPQ.
	if err := t.recountNoCost(); err != nil {
		return rep, at, err
	}
	if t.opq.Len() > budget {
		// Bring the queue back under its configured budget. This flush
		// consumes every replayed entry in its range, so the covered-skip
		// rule holds for it like for any foreground flush; on a failure
		// (the device is still faulty) the whole replay fails and the
		// caller keeps the shard offline.
		var ferr error
		at, ferr = t.FlushBatch(at, 0)
		if ferr != nil {
			return rep, at, ferr
		}
	}
	// The tree now reflects exactly the durable log: a new rollback
	// baseline for quarantine recovery.
	t.commitDurableMeta()
	return rep, at, nil
}

// recountNoCost recomputes t.count by walking the tree and overlaying the
// OPQ (recovery bookkeeping; no simulated I/O).
func (t *Tree) recountNoCost() error {
	var total int64
	var walk func(id pagefile.PageID, level int) error
	walk = func(id pagefile.PageID, level int) error {
		if level == 0 {
			l, err := t.readWholeLeafNoCost(id)
			if err != nil {
				return err
			}
			total += int64(len(l.liveRecords()))
			return nil
		}
		buf := make([]byte, t.cfg.PageSize)
		if err := t.pf.ReadPageNoCost(id, buf); err != nil {
			return err
		}
		n, err := decodeInternal(id, buf)
		if err != nil {
			return err
		}
		for _, c := range n.children {
			if err := walk(c, level-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height-1); err != nil {
		return err
	}
	for _, e := range t.opq.Entries() {
		switch e.Op {
		case kv.OpInsert:
			total++
		case kv.OpDelete:
			total--
		}
	}
	t.count = total
	return nil
}

// Meta captures the structural state that a DBMS catalog would persist.
type Meta struct {
	Root   pagefile.PageID
	Height int
	Count  int64
}

// Snapshot returns the current structural state.
func (t *Tree) Snapshot() Meta {
	return Meta{Root: t.root, Height: t.height, Count: t.count}
}

// RestoreMeta resets the structural state (crash-recovery tests restore
// the pre-crash durable snapshot, then call Recover).
func (t *Tree) RestoreMeta(m Meta) {
	t.root = m.Root
	t.height = m.Height
	t.count = m.Count
}

// CrashVolatileState simulates a crash: the OPQ, LSMap and buffer pool
// contents vanish; only the simulated SSD (pagefile + forced WAL) remains.
func (t *Tree) CrashVolatileState() {
	t.dropVolatile()
	if t.log != nil {
		t.log.Crash()
	}
}

// dropVolatile discards the tree's volatile state (OPQ, LSMap, pending
// internal updates, buffer pool) WITHOUT touching the WAL tail. Quarantine
// rollback uses this: on a shared multiplexed log the unforced tail still
// holds other shards' appends, so only a real crash may drop it.
func (t *Tree) dropVolatile() {
	if fresh, err := NewOPQ(t.opq.Cap(), t.cfg.SPeriod); err == nil {
		t.opq = fresh
	} else {
		t.opq.Reset()
	}
	t.lsmap = NewLSMap(t.cfg.LeafSegs)
	t.pendingInternal = nil
	if pool, err := bufferpool.New(t.pf, t.pool.Capacity(), bufferpool.WriteThrough); err == nil {
		t.pool = pool
	}
}

// rollbackToDurable rewinds the tree to its last committed state after an
// I/O failure mid-operation: restore the durable structural snapshot,
// discard all volatile state, then replay the durable log — the same
// procedure as crash recovery, minus the crash. At the moments this runs
// (retry exhaustion inside a flush or migration) the tree's own durable
// records describe exactly the committed state, so the replay converges.
func (t *Tree) rollbackToDurable(at vtime.Ticks) (vtime.Ticks, error) {
	if t.log == nil {
		return at, fmt.Errorf("core: rollbackToDurable requires a WAL")
	}
	t.RestoreMeta(t.durableMeta)
	t.dropVolatile()
	recs, at, err := t.readDurableRecords(at)
	if err != nil {
		return at, err
	}
	_, at, err = t.recoverFrom(at, recs)
	return at, err
}
