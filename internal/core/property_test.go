package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// TestQuickRandomOpSequences drives the PIO B-tree with randomized
// operation sequences derived from quick-generated seeds and verifies
// structural invariants and model agreement after each run. This is the
// repository's broadest property test: any seed that breaks an invariant
// is a one-line reproducer.
func TestQuickRandomOpSequences(t *testing.T) {
	f := func(seed int64, opqPages, leafSegs, bcnt uint8) bool {
		cfg := smallCfg()
		cfg.OPQPages = int(opqPages)%3 + 1
		cfg.LeafSegs = []int{1, 2, 4, 8}[int(leafSegs)%4]
		cfg.BCnt = []int{0, 16, 128}[int(bcnt)%3]
		tr := newQuickTree(cfg)
		if tr == nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := make(map[kv.Key]kv.Value)
		var at vtime.Ticks
		var err error
		for i := 0; i < 1500; i++ {
			k := uint64(rng.Intn(400))
			_, exists := model[k]
			switch {
			case rng.Intn(5) == 0 && exists:
				at, err = tr.Delete(at, k)
				delete(model, k)
			case exists:
				at, err = tr.Update(at, kv.Record{Key: k, Value: uint64(i)})
				model[k] = uint64(i)
			default:
				at, err = tr.Insert(at, kv.Record{Key: k, Value: uint64(i)})
				model[k] = uint64(i)
			}
			if err != nil {
				return false
			}
		}
		if _, err := tr.Checkpoint(at); err != nil {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("seed %d cfg %+v: %v", seed, cfg, err)
			return false
		}
		if tr.Count() != int64(len(model)) {
			return false
		}
		// Spot-verify a sample of model keys plus an absent key.
		for j := 0; j < 20; j++ {
			k := uint64(rng.Intn(400))
			v, found, at2, err := tr.Search(0, k)
			if err != nil {
				return false
			}
			at = at2
			want, wantOK := model[k]
			if found != wantOK || (found && v != want) {
				t.Logf("seed %d: Search(%d) = %d,%v want %d,%v", seed, k, v, found, want, wantOK)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// newQuickTree builds a tree swallowing setup errors (reported as a
// property failure by the caller).
func newQuickTree(cfg Config) *Tree {
	dev := flashsim.MustDevice(flashsim.P300())
	f, err := ssdio.NewSpace(dev).Create("idx", 1<<20)
	if err != nil {
		return nil
	}
	pf, err := pagefile.New(f, cfg.PageSize)
	if err != nil {
		return nil
	}
	tr, err := New(pf, cfg)
	if err != nil {
		return nil
	}
	return tr
}

// TestQuickRangeMatchesModel: prange over random state always equals the
// model's sorted filter.
func TestQuickRangeMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		cfg := smallCfg()
		cfg.BCnt = 32
		tr := newQuickTree(cfg)
		if tr == nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := make(map[kv.Key]kv.Value)
		var at vtime.Ticks
		var err error
		for i := 0; i < 800; i++ {
			k := uint64(rng.Intn(300))
			if rng.Intn(4) == 0 {
				if _, ok := model[k]; ok {
					at, err = tr.Delete(at, k)
					delete(model, k)
				}
			} else {
				at, err = tr.Insert(at, kv.Record{Key: k, Value: uint64(i)})
				model[k] = uint64(i)
			}
			if err != nil {
				return false
			}
		}
		lo := uint64(rng.Intn(150))
		hi := lo + uint64(rng.Intn(150)) + 1
		got, _, err := tr.RangeSearch(at, lo, hi)
		if err != nil {
			return false
		}
		want := 0
		for k := range model {
			if k >= lo && k < hi {
				want++
			}
		}
		if len(got) != want {
			t.Logf("seed %d range [%d,%d): got %d want %d", seed, lo, hi, len(got), want)
			return false
		}
		for i := range got {
			if got[i].Value != model[got[i].Key] {
				return false
			}
			if i > 0 && got[i-1].Key >= got[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
