package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// shardCrash selects how far one shard's durable state got before the
// injected crash of a group flush.
type shardCrash int

const (
	// crashComplete: the shard's FlushEnd reached the log — its flush
	// committed; recovery must skip its redo records.
	crashComplete shardCrash = iota
	// crashNoEnd: FlushStart and undo records durable, FlushEnd lost, the
	// data gang's writes applied — recovery must undo, then redo.
	crashNoEnd
	// crashNoEndNoData: as crashNoEnd but the crash also beat the data
	// gang, so the pages still hold pre-flush content.
	crashNoEndNoData
	// crashPreFlush: the crash beat the group's prepare force — only the
	// logical redo records are durable.
	crashPreFlush
	// crashLostTail: the phase-2 redo records never reached the commit
	// point; the entries are legitimately lost.
	crashLostTail
)

func (c shardCrash) String() string {
	switch c {
	case crashComplete:
		return "complete"
	case crashNoEnd:
		return "noEnd"
	case crashNoEndNoData:
		return "noEndNoData"
	case crashPreFlush:
		return "preFlush"
	default:
		return "lostTail"
	}
}

const (
	crashShards    = 4
	crashStride    = kv.Key(1) << 20
	phase1PerShard = 100
	phase2PerShard = 20
)

// crashForestCfg keeps each shard's OPQ at one page (~42 entries) so the
// phase-2 batches stay queued until the controlled group flush.
func crashForestCfg() ForestConfig {
	c := smallCfg()
	c.OPQPages = crashShards // one page per shard after the global split
	c.BufferBytes = 32 * 1024
	bounds := make([]kv.Key, crashShards-1)
	for i := range bounds {
		bounds[i] = kv.Key(i+1) * crashStride
	}
	return ForestConfig{
		Partitioner:  RangePartitioner{Bounds: bounds},
		RipeFraction: 0.05, // every non-empty shard joins the group flush
		Shard:        c,
	}
}

// newCrashForest builds a WAL-attached forest (one log per shard, all on
// one simulated device) from cfg.
func newCrashForest(t *testing.T, cfg ForestConfig) (*Forest, []*wal.Log, []*pagefile.PageFile) {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	pfs := make([]*pagefile.PageFile, crashShards)
	logs := make([]*wal.Log, crashShards)
	for i := range pfs {
		f, err := space.Create(fmt.Sprintf("shard%d", i), 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		pfs[i], err = pagefile.New(f, cfg.Shard.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		wf, err := space.Create(fmt.Sprintf("wal%d", i), 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		logs[i], err = wal.NewLog(wf, cfg.Shard.PageSize)
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg.Logs = logs
	fr, err := NewForest(pfs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fr, logs, pfs
}

func phase1Key(shard, j int) kv.Key { return kv.Key(shard)*crashStride + kv.Key(j) }
func phase2Key(shard, j int) kv.Key { return kv.Key(shard)*crashStride + 500 + kv.Key(j) }
func crashVal(k kv.Key) kv.Value    { return kv.Value(k*3 + 1) }

// cutRecords truncates one shard's durable log at the crash point the
// scenario prescribes. The controlled group flush's records are the
// log's tail: ... redo*, FlushStart, undo*, FlushEnd.
func cutRecords(t *testing.T, recs []wal.Record, c shardCrash) []wal.Record {
	t.Helper()
	lastOf := func(k wal.Kind) int {
		idx := -1
		for i, r := range recs {
			if r.Kind == k {
				idx = i
			}
		}
		return idx
	}
	switch c {
	case crashComplete:
		return recs
	case crashNoEnd, crashNoEndNoData:
		i := lastOf(wal.KindFlushEnd)
		if i < 0 {
			t.Fatal("no FlushEnd in durable log")
		}
		return recs[:i]
	case crashPreFlush:
		i := lastOf(wal.KindFlushStart)
		if i < 0 {
			t.Fatal("no FlushStart in durable log")
		}
		return recs[:i]
	default: // crashLostTail
		i := lastOf(wal.KindCheckpoint)
		if i < 0 {
			t.Fatal("no checkpoint in durable log")
		}
		return recs[:i+1]
	}
}

// TestForestCrashRecoveryMatrix injects crashes at arbitrary points of a
// multi-shard group flush — per shard: flush committed, FlushEnd lost
// with and without the data writes applied, prepare force lost, and
// redo-tail lost — and verifies Forest.Recover restores exactly the
// durable prefix on every shard.
func TestForestCrashRecoveryMatrix(t *testing.T) {
	scenarios := [][]shardCrash{
		{crashComplete, crashComplete, crashComplete, crashComplete},
		{crashNoEnd, crashNoEnd, crashNoEnd, crashNoEnd},
		{crashNoEndNoData, crashNoEndNoData, crashNoEndNoData, crashNoEndNoData},
		{crashPreFlush, crashPreFlush, crashPreFlush, crashPreFlush},
		{crashComplete, crashNoEnd, crashPreFlush, crashLostTail},
		{crashNoEnd, crashComplete, crashNoEndNoData, crashComplete},
		{crashLostTail, crashLostTail, crashComplete, crashNoEnd},
	}
	for _, sc := range scenarios {
		name := ""
		for i, c := range sc {
			if i > 0 {
				name += "-"
			}
			name += c.String()
		}
		t.Run(name, func(t *testing.T) { runForestCrashScenario(t, sc) })
	}
}

func runForestCrashScenario(t *testing.T, crashes []shardCrash) {
	cfg := crashForestCfg()
	fr, logs, pfs := newCrashForest(t, cfg)

	// Phase 1: load every shard and checkpoint (fully durable baseline).
	var at vtime.Ticks
	var err error
	for j := 0; j < phase1PerShard; j++ {
		for s := 0; s < crashShards; s++ {
			k := phase1Key(s, j)
			at, err = fr.Insert(at, kv.Record{Key: k, Value: crashVal(k)})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	at, err = fr.Checkpoint(at)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: queue a batch on every shard, then commit the redo records.
	for j := 0; j < phase2PerShard; j++ {
		for s := 0; s < crashShards; s++ {
			k := phase2Key(s, j)
			at, err = fr.Insert(at, kv.Record{Key: k, Value: crashVal(k)})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if at, _, err = wal.ForceGroup(at, logs); err != nil {
		t.Fatal(err)
	}

	// Capture the pre-flush durable state, run the group flush, capture
	// the post-flush state.
	preFiles := make([][]byte, crashShards)
	for i, pf := range pfs {
		preFiles[i] = pf.File().Snapshot()
	}
	preMeta := fr.SnapshotMeta()
	preStats := fr.Stats()
	if at, err = fr.Flush(at); err != nil {
		t.Fatal(err)
	}
	st := fr.Stats()
	if got := st.GroupedShards - preStats.GroupedShards; got != crashShards {
		t.Fatalf("group flush covered %d shards, want %d", got, crashShards)
	}
	if got := st.LogGangSubmits - preStats.LogGangSubmits; got != 2 {
		t.Fatalf("group commit issued %d ganged log forces, want 2 (prepare+commit)", got)
	}
	postFiles := make([][]byte, crashShards)
	pages := make([]int64, crashShards)
	for i, pf := range pfs {
		postFiles[i] = pf.File().Snapshot()
		pages[i] = pf.NumPages()
	}
	postMeta := fr.SnapshotMeta()
	fullRecs := make([][]wal.Record, crashShards)
	for i, l := range logs {
		if fullRecs[i], err = l.Records(); err != nil {
			t.Fatal(err)
		}
	}

	// Rebuild the post-crash forest on a fresh device from the durable
	// prefix each shard's scenario prescribes.
	dev2 := flashsim.MustDevice(flashsim.P300())
	space2 := ssdio.NewSpace(dev2)
	pfs2 := make([]*pagefile.PageFile, crashShards)
	logs2 := make([]*wal.Log, crashShards)
	meta2 := make([]Meta, crashShards)
	for i := 0; i < crashShards; i++ {
		data, meta := postFiles[i], postMeta[i]
		switch crashes[i] {
		case crashNoEnd:
			// Data writes hit the device, but the flush must be undone to
			// the pre-flush structural state.
			meta = preMeta[i]
		case crashNoEndNoData, crashPreFlush, crashLostTail:
			data, meta = preFiles[i], preMeta[i]
		}
		f, err := space2.Create(fmt.Sprintf("shard%d", i), 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		f.Restore(data)
		pfs2[i], err = pagefile.New(f, cfg.Shard.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		for pfs2[i].NumPages() < pages[i] {
			pfs2[i].Alloc()
		}
		wf, err := space2.Create(fmt.Sprintf("wal%d", i), 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		logs2[i], err = wal.NewLog(wf, cfg.Shard.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range cutRecords(t, fullRecs[i], crashes[i]) {
			logs2[i].Append(r)
		}
		if _, err := logs2[i].Force(0); err != nil {
			t.Fatal(err)
		}
		meta2[i] = meta
	}
	cfg2 := crashForestCfg()
	cfg2.Logs = logs2
	fr2, err := NewForest(pfs2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr2.RestoreMeta(meta2); err != nil {
		t.Fatal(err)
	}

	rep, at2, err := fr2.Recover(0)
	if err != nil {
		t.Fatal(err)
	}

	// Per-shard report shape.
	for i, c := range crashes {
		r := rep.Shards[i]
		switch c {
		case crashComplete:
			if r.SkippedEntries != phase2PerShard || r.RedoneEntries != 0 || r.UndoneFlushes != 0 {
				t.Fatalf("shard %d (%v): report %+v", i, c, r)
			}
		case crashNoEnd, crashNoEndNoData:
			if r.UndoneFlushes != 1 || r.RedoneEntries != phase2PerShard || r.UndoPagesApplied == 0 {
				t.Fatalf("shard %d (%v): report %+v", i, c, r)
			}
		case crashPreFlush:
			if r.UndoneFlushes != 0 || r.RedoneEntries != phase2PerShard {
				t.Fatalf("shard %d (%v): report %+v", i, c, r)
			}
		case crashLostTail:
			if r.UndoneFlushes != 0 || r.RedoneEntries != 0 || r.SkippedEntries != 0 {
				t.Fatalf("shard %d (%v): report %+v", i, c, r)
			}
		}
	}

	// The recovered forest must hold exactly the durable prefix: every
	// phase-1 key, the phase-2 keys of every shard except lostTail ones.
	expected := int64(0)
	for s := 0; s < crashShards; s++ {
		for j := 0; j < phase1PerShard; j++ {
			k := phase1Key(s, j)
			v, ok, d, err := fr2.Search(at2, k)
			if err != nil || !ok || v != crashVal(k) {
				t.Fatalf("shard %d phase-1 key %d: %v %v %v", s, k, v, ok, err)
			}
			at2 = d
			expected++
		}
		for j := 0; j < phase2PerShard; j++ {
			k := phase2Key(s, j)
			v, ok, d, err := fr2.Search(at2, k)
			if err != nil {
				t.Fatal(err)
			}
			at2 = d
			if crashes[s] == crashLostTail {
				if ok {
					t.Fatalf("shard %d uncommitted key %d survived the crash", s, k)
				}
			} else {
				if !ok || v != crashVal(k) {
					t.Fatalf("shard %d phase-2 key %d lost: %v %v", s, k, v, ok)
				}
				expected++
			}
		}
	}
	if got := fr2.Count(); got != expected {
		t.Fatalf("recovered count %d, want %d", got, expected)
	}
	if err := fr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestForestGroupCommitFewerSubmissions: at 4 shards the ganged log force
// must issue strictly fewer blocking log submissions than the per-shard
// baseline for the same workload.
func TestForestGroupCommitFewerSubmissions(t *testing.T) {
	run := func(disableGang bool) ForestStats {
		cfg := crashForestCfg()
		cfg.DisableLogGang = disableGang
		fr, _, _ := newCrashForest(t, cfg)
		var at vtime.Ticks
		var err error
		for j := 0; j < 200; j++ {
			for s := 0; s < crashShards; s++ {
				k := phase1Key(s, j)
				at, err = fr.Insert(at, kv.Record{Key: k, Value: crashVal(k)})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err = fr.Flush(at); err != nil {
			t.Fatal(err)
		}
		return fr.Stats()
	}
	ganged := run(false)
	baseline := run(true)
	if ganged.LogGangSubmits == 0 {
		t.Fatal("ganged mode issued no ganged log forces")
	}
	if baseline.LogGangSubmits != 0 {
		t.Fatalf("baseline issued %d ganged forces, want 0", baseline.LogGangSubmits)
	}
	if ganged.LogSubmits >= baseline.LogSubmits {
		t.Fatalf("ganged log submissions %d not fewer than per-shard baseline %d",
			ganged.LogSubmits, baseline.LogSubmits)
	}
}

// TestForestWALWithPsyncAblation: under DisablePsync the data writes are
// not deferred into the coordinator's gang, so the log forces must stay
// inline with them (no group-commit deferral); crash recovery must still
// restore the committed state.
func TestForestWALWithPsyncAblation(t *testing.T) {
	cfg := crashForestCfg()
	cfg.Shard.DisablePsync = true
	fr, logs, _ := newCrashForest(t, cfg)
	var at vtime.Ticks
	var err error
	for j := 0; j < phase1PerShard; j++ {
		for s := 0; s < crashShards; s++ {
			k := phase1Key(s, j)
			at, err = fr.Insert(at, kv.Record{Key: k, Value: crashVal(k)})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if at, err = fr.Sync(at); err != nil {
		t.Fatal(err)
	}
	// Every force so far must have been issued serially by the trees (the
	// coordinator defers nothing under the ablation) except the Sync gang.
	st := fr.Stats()
	if st.LogGangSubmits != 1 {
		t.Fatalf("psync-ablated forest issued %d deferred gang forces, want only Sync's 1", st.LogGangSubmits)
	}
	if st.LogForceWrites == 0 {
		t.Fatal("no serial log forces under the ablation")
	}
	pre := fr.Count()
	fr.Crash()
	if _, _, err := fr.Recover(at); err != nil {
		t.Fatal(err)
	}
	if got := fr.Count(); got != pre {
		t.Fatalf("count %d after recovery, want %d", got, pre)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = logs
}

// TestForestSharedLogHammerRace drives a forest whose shards multiplex
// ONE shared log from many goroutines: enqueue appends on non-member
// shards must not race the coordinator's group-commit forces (the
// coordinator holds bystander locks for shared logs). Run under -race.
func TestForestSharedLogHammerRace(t *testing.T) {
	cfg := crashForestCfg()
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	pfs := make([]*pagefile.PageFile, crashShards)
	for i := range pfs {
		f, err := space.Create(fmt.Sprintf("shard%d", i), 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		pfs[i], err = pagefile.New(f, cfg.Shard.PageSize)
		if err != nil {
			t.Fatal(err)
		}
	}
	wf, err := space.Create("wal", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := wal.NewLog(wf, cfg.Shard.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logs = []*wal.Log{shared}
	fr, err := NewForest(pfs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var at vtime.Ticks
			shard := w % crashShards
			for i := 0; i < 200; i++ {
				k := kv.Key(shard)*crashStride + kv.Key(w*1000+i)
				var err error
				at, err = fr.Insert(at, kv.Record{Key: k, Value: crashVal(k)})
				if err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := fr.Sync(0); err != nil {
		t.Fatal(err)
	}
	pre := fr.Count()
	fr.Crash()
	if _, _, err := fr.Recover(0); err != nil {
		t.Fatal(err)
	}
	if got := fr.Count(); got != pre {
		t.Fatalf("count %d after recovery, want %d", got, pre)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestForestWALHammerRace drives a WAL-attached forest from many real
// goroutines (group commits racing across shards), then crashes and
// recovers it. Run under -race in CI.
func TestForestWALHammerRace(t *testing.T) {
	cfg := crashForestCfg()
	fr, _, _ := newCrashForest(t, cfg)
	const workers = 8
	const opsPerWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var at vtime.Ticks
			var err error
			shard := w % crashShards
			for i := 0; i < opsPerWorker; i++ {
				k := kv.Key(shard)*crashStride + kv.Key(w*opsPerWorker+i)
				switch i % 3 {
				case 0, 1:
					at, err = fr.Insert(at, kv.Record{Key: k, Value: crashVal(k)})
				default:
					_, _, at, err = fr.Search(at, k)
				}
				if err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	// Commit everything in flight, crash, recover in place.
	at, err := fr.Checkpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	pre := fr.Count()
	fr.Crash()
	rep, _, err := fr.Recover(at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.RedoneEntries != 0 || rep.Total.UndoneFlushes != 0 {
		t.Fatalf("post-checkpoint recovery did work: %+v", rep.Total)
	}
	if got := fr.Count(); got != pre {
		t.Fatalf("count %d after recovery, want %d", got, pre)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
