package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/faultio"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/wal"
)

// The fault-matrix suite drives every I/O injection point — shard data
// psync/gang writes, WAL forces (serial, ganged, migration commits) and
// WAL replay reads — through the fault classes {transient-retried,
// transient-exhausted, permanent, partial-gang} and checks the
// containment contract: committed keys are never lost, degraded reads
// stay correct, writes to quarantined shards are rejected with
// ErrShardQuarantined, and Heal restores full service once the fault
// clears.

const (
	fmShards    = 2
	fmStride    = kv.Key(1000)
	fmPerShard  = 100
	fmChunkSize = 16
)

func fmVal(k kv.Key) kv.Value { return kv.Value(k*7 + 3) }

// newFaultForest builds a two-shard, range-partitioned, WAL-attached
// forest on one simulated device whose file names (shard0/shard1,
// wal0/wal1) the fault programs target.
func newFaultForest(t *testing.T, retry RetryPolicy) (*Forest, *ssdio.Space) {
	t.Helper()
	return newFaultForestCfg(t, retry, HealPolicy{}, EvacuationPolicy{})
}

// newFaultForestCfg is newFaultForest with explicit self-healing
// policies (the zero values mean "enabled with defaults"; the healing
// suite shortens the evacuation deadline so tests stay fast).
func newFaultForestCfg(t *testing.T, retry RetryPolicy, heal HealPolicy, evac EvacuationPolicy) (*Forest, *ssdio.Space) {
	t.Helper()
	fr, space, _, _ := newFaultForestFull(t, retry, heal, evac, fmShards)
	return fr, space
}

// newFaultForestFull also returns the page files and logs so crash
// tests can snapshot durable images and cut WAL records. opqPages sets
// the global OPQ budget (fmShards = one page per shard; crash-image
// tests raise it so no flush interleaves with the records they cut).
func newFaultForestFull(t *testing.T, retry RetryPolicy, heal HealPolicy, evac EvacuationPolicy, opqPages int) (*Forest, *ssdio.Space, []*pagefile.PageFile, []*wal.Log) {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	space := ssdio.NewSpace(dev)
	cfg := smallCfg()
	cfg.OPQPages = opqPages
	cfg.BufferBytes = 32 * 1024
	cfg.Retry = retry
	pfs := make([]*pagefile.PageFile, fmShards)
	logs := make([]*wal.Log, fmShards)
	for i := range pfs {
		df, err := space.Create(fmt.Sprintf("shard%d", i), 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		pfs[i], err = pagefile.New(df, cfg.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		wf, err := space.Create(fmt.Sprintf("wal%d", i), 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		logs[i], err = wal.NewLog(wf, cfg.PageSize)
		if err != nil {
			t.Fatal(err)
		}
	}
	fr, err := NewForest(pfs, ForestConfig{
		Partitioner:    RangePartitioner{Bounds: []kv.Key{fmStride}},
		RipeFraction:   0.05,
		Shard:          cfg,
		Logs:           logs,
		MigrationChunk: fmChunkSize,
		Heal:           heal,
		Evacuation:     evac,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fr, space, pfs, logs
}

// fmBaseline loads fmPerShard keys per shard and checkpoints: everything
// inserted here is committed (fully durable) before any fault program is
// installed.
func fmBaseline(t *testing.T, fr *Forest) vtime.Ticks {
	t.Helper()
	var at vtime.Ticks
	var err error
	for j := 0; j < fmPerShard; j++ {
		for s := 0; s < fmShards; s++ {
			k := kv.Key(s)*fmStride + kv.Key(j)
			at, err = fr.Insert(at, kv.Record{Key: k, Value: fmVal(k)})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	at, err = fr.Checkpoint(at)
	if err != nil {
		t.Fatal(err)
	}
	return at
}

// fmInstall compiles and installs a fault program on the forest's device.
func fmInstall(t *testing.T, space *ssdio.Space, program string) *faultio.Plane {
	t.Helper()
	prog, err := faultio.Parse(program)
	if err != nil {
		t.Fatal(err)
	}
	prog.Seed = 1
	pl := faultio.New(prog)
	space.SetInjector(pl)
	return pl
}

// fmCheckKeys asserts every key in keys resolves to fmVal(key).
func fmCheckKeys(t *testing.T, fr *Forest, at vtime.Ticks, keys []kv.Key) vtime.Ticks {
	t.Helper()
	for _, k := range keys {
		v, ok, done, err := fr.Search(at, k)
		if err != nil {
			t.Fatalf("Search(%d): %v", k, err)
		}
		if !ok || v != fmVal(k) {
			t.Fatalf("Search(%d) = (%d, %v), want (%d, true)", k, v, ok, fmVal(k))
		}
		at = done
	}
	return at
}

func fmShardKeys(s int) []kv.Key {
	keys := make([]kv.Key, fmPerShard)
	for j := range keys {
		keys[j] = kv.Key(s)*fmStride + kv.Key(j)
	}
	return keys
}

// fmTriggerFlush fills shard1 to ripeness and then shard0 until a group
// flush runs (extra keys start above the baseline block). It returns the
// keys whose Insert was ACCEPTED (nil error) and the first write error.
func fmTriggerFlush(t *testing.T, fr *Forest, at vtime.Ticks) (accepted []kv.Key, werr error, done vtime.Ticks) {
	t.Helper()
	base := fr.Stats().GroupFlushes
	for j := 0; j < 10; j++ {
		k := fmStride + 500 + kv.Key(j)
		var err error
		at, err = fr.Insert(at, kv.Record{Key: k, Value: fmVal(k)})
		if err != nil {
			return accepted, err, at
		}
		accepted = append(accepted, k)
	}
	for j := 0; j < 500; j++ {
		k := 500 + kv.Key(j)
		var err error
		at, err = fr.Insert(at, kv.Record{Key: k, Value: fmVal(k)})
		if err != nil {
			return accepted, err, at
		}
		accepted = append(accepted, k)
		if fr.Stats().GroupFlushes > base {
			return accepted, nil, at
		}
	}
	t.Fatal("no group flush triggered after 500 inserts")
	return nil, nil, at
}

// TestFaultMatrixTransientRetried covers the transient column: a fault
// window shorter than the first backoff at each injection point — data
// gang writes, ganged WAL forces, and a migration's serial WAL force —
// is absorbed by the retry loop with no quarantine and no lost update.
func TestFaultMatrixTransientRetried(t *testing.T) {
	// Backoff far above the fault window so the first retry of a faulted
	// submission is guaranteed to land outside it.
	retry := RetryPolicy{MaxRetries: 4, BaseBackoff: 20 * vtime.Millisecond, MaxBackoff: 80 * vtime.Millisecond}
	cases := []struct {
		name string
		rule string // window bound appended at install time
		run  func(t *testing.T, fr *Forest, at vtime.Ticks) vtime.Ticks
	}{
		{"data-gang", "transient call=gang file=shard*", func(t *testing.T, fr *Forest, at vtime.Ticks) vtime.Ticks {
			accepted, err, done := fmTriggerFlush(t, fr, at)
			if err != nil {
				t.Fatalf("flush under windowed fault: %v", err)
			}
			return fmCheckKeys(t, fr, done, accepted)
		}},
		{"wal-gang", "transient call=gang file=wal*", func(t *testing.T, fr *Forest, at vtime.Ticks) vtime.Ticks {
			accepted, err, done := fmTriggerFlush(t, fr, at)
			if err != nil {
				t.Fatalf("flush under windowed fault: %v", err)
			}
			return fmCheckKeys(t, fr, done, accepted)
		}},
		{"migration-force", "transient call=sync file=wal*", func(t *testing.T, fr *Forest, at vtime.Ticks) vtime.Ticks {
			m, done, err := fr.StartMigration(at, 0, 200, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			done, err = m.Drain(done)
			if err != nil {
				t.Fatalf("migration under windowed fault: %v", err)
			}
			return fmCheckKeys(t, fr, done, fmShardKeys(0))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr, space := newFaultForest(t, retry)
			at := fmBaseline(t, fr)
			window := at + 10*vtime.Millisecond
			fmInstall(t, space, fmt.Sprintf("%s until=%dns", tc.rule, window))
			at = tc.run(t, fr, at)
			st := fr.Stats()
			if st.IORetries == 0 {
				t.Fatal("fault window never hit: IORetries = 0")
			}
			if st.IORetriesExhausted != 0 {
				t.Fatalf("retries exhausted %d times under a sub-backoff window", st.IORetriesExhausted)
			}
			if q := fr.Quarantined(); len(q) != 0 {
				t.Fatalf("quarantined shards %v after a retried transient", q)
			}
			space.SetInjector(nil)
			if err := fr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFaultMatrixExhaustedQuarantine covers the exhausted column: an
// unbounded transient fault on shard0's data gang writes survives every
// retry, so the group flush quarantines shard0 while shard1 commits.
// Degraded reads serve both the committed baseline and the accepted
// (phase-1-durable) updates; writes are rejected; Heal restores service.
func TestFaultMatrixExhaustedQuarantine(t *testing.T) {
	fr, space := newFaultForest(t, RetryPolicy{})
	at := fmBaseline(t, fr)
	fmInstall(t, space, "transient call=gang file=shard0")

	accepted, werr, at := fmTriggerFlush(t, fr, at)
	if !errors.Is(werr, ErrShardQuarantined) {
		t.Fatalf("flush error = %v, want ErrShardQuarantined", werr)
	}
	st := fr.Stats()
	if st.IORetriesExhausted == 0 {
		t.Fatal("no exhausted retry recorded")
	}
	if q := fr.Quarantined(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("Quarantined() = %v, want [0]", q)
	}
	if st.QuarantinedShards != 1 || !st.ShardLoads[0].Quarantined {
		t.Fatalf("stats disagree: QuarantinedShards=%d loads=%+v", st.QuarantinedShards, st.ShardLoads)
	}

	// Degraded reads: the baseline AND every accepted pre-fault update are
	// readable — the accepted updates' redo records became durable in the
	// group commit's phase-1 force (wal0 is healthy), so the quarantine
	// rollback replayed them.
	at = fmCheckKeys(t, fr, at, fmShardKeys(0))
	at = fmCheckKeys(t, fr, at, fmShardKeys(1))
	at = fmCheckKeys(t, fr, at, accepted)
	recs, done, err := fr.RangeSearch(at, 0, fmStride)
	if err != nil {
		t.Fatal(err)
	}
	at = done
	shard0Accepted := 0
	for _, k := range accepted {
		if k < fmStride {
			shard0Accepted++
		}
	}
	if len(recs) != fmPerShard+shard0Accepted {
		t.Fatalf("degraded RangeSearch found %d records, want %d", len(recs), fmPerShard+shard0Accepted)
	}

	// Writes: shard0 rejected, shard1 still fully served.
	if _, err := fr.Insert(at, kv.Record{Key: 900, Value: 1}); !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("quarantined insert error = %v, want ErrShardQuarantined", err)
	}
	at, err = fr.Insert(at, kv.Record{Key: fmStride + 900, Value: fmVal(fmStride + 900)})
	if err != nil {
		t.Fatalf("healthy-shard insert: %v", err)
	}

	// Heal after the fault clears: full service, nothing lost.
	space.SetInjector(nil)
	at, err = fr.Heal(at, 0)
	if err != nil {
		t.Fatalf("Heal: %v", err)
	}
	if q := fr.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined() = %v after Heal", q)
	}
	at, err = fr.Insert(at, kv.Record{Key: 901, Value: fmVal(901)})
	if err != nil {
		t.Fatalf("post-Heal insert: %v", err)
	}
	at, err = fr.Checkpoint(at)
	if err != nil {
		t.Fatalf("post-Heal checkpoint: %v", err)
	}
	at = fmCheckKeys(t, fr, at, fmShardKeys(0))
	at = fmCheckKeys(t, fr, at, accepted)
	_ = fmCheckKeys(t, fr, at, []kv.Key{901})
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultMatrixPartialGang covers the partial-gang column: the gang's
// healthy member batches land and commit while the faulted member's
// batch is dropped and its shard quarantined — one device submission,
// two outcomes.
func TestFaultMatrixPartialGang(t *testing.T) {
	fr, space := newFaultForest(t, RetryPolicy{})
	at := fmBaseline(t, fr)
	fmInstall(t, space, "transient call=gang file=shard1")

	// Trigger with shard1 ripe so both shards share the data gang; the
	// trigger inserts route to shard0, whose batch lands.
	accepted, werr, at := fmTriggerFlush(t, fr, at)
	if werr != nil {
		// The flush was triggered by a shard0 insert; shard0 committed, so
		// the write that triggered the flush is not rejected.
		t.Fatalf("trigger insert error = %v", werr)
	}
	if q := fr.Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("Quarantined() = %v, want [1]", q)
	}
	// shard0's side of the gang committed: its accepted keys are readable
	// and writable; shard1 is read-only on its replayed state.
	at = fmCheckKeys(t, fr, at, accepted)
	at = fmCheckKeys(t, fr, at, fmShardKeys(1))
	if _, err := fr.Insert(at, kv.Record{Key: fmStride + 901, Value: 1}); !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("quarantined insert error = %v, want ErrShardQuarantined", err)
	}
	var err error
	at, err = fr.Insert(at, kv.Record{Key: 902, Value: fmVal(902)})
	if err != nil {
		t.Fatalf("healthy-shard insert: %v", err)
	}

	space.SetInjector(nil)
	at, err = fr.Heal(at, 1)
	if err != nil {
		t.Fatalf("Heal: %v", err)
	}
	at, err = fr.Checkpoint(at)
	if err != nil {
		t.Fatal(err)
	}
	_ = fmCheckKeys(t, fr, at, append(fmShardKeys(1), 902))
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultMatrixPermanentWAL covers the permanent column at the log
// plane: wal0 dies permanently, failing the group commit's phase-1
// force. ForceGroup commits the members whose writes landed, so the
// failure is attributed to shard0 alone — shard1's flush carries on and
// commits. shard0's rollback replay cannot read its dead log, so it
// goes fully offline (qDirty) — and Heal keeps failing until the file
// is revived.
func TestFaultMatrixPermanentWAL(t *testing.T) {
	fr, space := newFaultForest(t, RetryPolicy{})
	at := fmBaseline(t, fr)
	// The rule's window covers only the faulting flush; the file then
	// STAYS dead via the plane's dead-file mark until Revive — so Revive
	// alone (not rule expiry) is what lets the later Heal succeed.
	window := at + 5*vtime.Millisecond
	plane := fmInstall(t, space, fmt.Sprintf("permanent file=wal0 until=%dns", window))

	_, werr, at := fmTriggerFlush(t, fr, at)
	if !errors.Is(werr, ErrShardQuarantined) {
		t.Fatalf("flush error = %v, want ErrShardQuarantined", werr)
	}
	// The phase-1 gang force committed wal1's write, so the failure is
	// attributed to shard0 alone: shard1's flush went through and it
	// keeps full service. shard0's rollback replay read a dead log —
	// fully offline (qDirty), reads rejected too.
	if q := fr.Quarantined(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("Quarantined() = %v, want [0]", q)
	}
	if _, _, _, err := fr.Search(at, 5); !errors.Is(err, ErrShardQuarantined) {
		t.Fatalf("offline-shard read error = %v, want ErrShardQuarantined", err)
	}
	at = fmCheckKeys(t, fr, at, fmShardKeys(1))
	var werr2 error
	at, werr2 = fr.Insert(at, kv.Record{Key: fmStride + 905, Value: fmVal(fmStride + 905)})
	if werr2 != nil {
		t.Fatalf("healthy-member insert after attributed phase-1 failure: %v", werr2)
	}

	// Heal fails while the log is dead (the tail force cannot land)...
	at = vtime.Max(at, window) // past the rule window: only the dead mark remains
	if _, err := fr.Heal(at, 0); err == nil {
		t.Fatal("Heal succeeded on a dead WAL")
	}
	// ...and succeeds after the simulated drive slice is replaced.
	plane.Revive("wal0")
	at, err := fr.Heal(at, 0)
	if err != nil {
		t.Fatalf("Heal after revive: %v", err)
	}
	at, err = fr.Heal(at, 1)
	if err != nil {
		t.Fatalf("Heal shard1: %v", err)
	}
	space.SetInjector(nil)
	if q := fr.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined() = %v after Heal", q)
	}
	// The accepted pre-fault updates sat in wal0's unforced tail; Heal
	// forced it, so they are recovered rather than lost.
	at = fmCheckKeys(t, fr, at, fmShardKeys(0))
	at = fmCheckKeys(t, fr, at, fmShardKeys(1))
	at, err = fr.Insert(at, kv.Record{Key: 903, Value: fmVal(903)})
	if err != nil {
		t.Fatalf("post-Heal insert: %v", err)
	}
	if _, err = fr.Checkpoint(at); err != nil {
		t.Fatal(err)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultMatrixMigrationAbort covers the migration path: retries
// exhaust on the destination's WAL force, aborting the move mid-stream
// (a transient rule keeps the replay reads alive, so both shards serve
// degraded reads; the permanent/offline variant is covered by the crash
// test below). With
// no committed chunk the abort rolls back entirely; with committed
// chunks it publishes the partial rule [lo, frontier). Either way no key
// is lost, and after healing the migration can be re-run to completion.
func TestFaultMatrixMigrationAbort(t *testing.T) {
	for _, committedChunks := range []int{0, 2} {
		t.Run(fmt.Sprintf("chunks=%d", committedChunks), func(t *testing.T) {
			fr, space := newFaultForest(t, RetryPolicy{})
			at := fmBaseline(t, fr)
			m, at, err := fr.StartMigration(at, 0, kv.Key(fmPerShard), 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < committedChunks; i++ {
				done, next, serr := m.Step(at)
				if serr != nil || done {
					t.Fatalf("pre-fault step %d: done=%v err=%v", i, done, serr)
				}
				at = next
			}
			fmInstall(t, space, "transient call=sync file=wal1")
			_, at, err = m.Step(at)
			if err == nil {
				t.Fatal("Step succeeded with the destination WAL force failing")
			}
			if q := fr.Quarantined(); len(q) != 2 {
				t.Fatalf("Quarantined() = %v, want both shards", q)
			}
			rules := fr.Routing().Rules()
			wantFrontier := kv.Key(committedChunks * fmChunkSize)
			if committedChunks == 0 {
				if len(rules) != 0 {
					t.Fatalf("rules = %v after full abort", rules)
				}
			} else {
				if len(rules) != 1 || rules[0].Lo != 0 || rules[0].Hi != wantFrontier {
					t.Fatalf("rules = %v, want [{0 %d 0 1}]", rules, wantFrontier)
				}
			}
			// Degraded reads: every key is still served from one of the two
			// quarantined shards — committed chunks from dst, the rest from
			// src.
			at = fmCheckKeys(t, fr, at, fmShardKeys(0))
			at = fmCheckKeys(t, fr, at, fmShardKeys(1))

			space.SetInjector(nil)
			at, err = fr.Heal(at, 0)
			if err != nil {
				t.Fatalf("Heal src: %v", err)
			}
			at, err = fr.Heal(at, 1)
			if err != nil {
				t.Fatalf("Heal dst: %v", err)
			}
			at = fmCheckKeys(t, fr, at, fmShardKeys(0))

			// Re-run the move to completion: the remaining keys stream over.
			m2, at, err := fr.StartMigration(at, 0, kv.Key(fmPerShard), 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			at, err = m2.Drain(at)
			if err != nil {
				t.Fatalf("post-Heal migration: %v", err)
			}
			at = fmCheckKeys(t, fr, at, fmShardKeys(0))
			at = fmCheckKeys(t, fr, at, fmShardKeys(1))
			if err := fr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			_ = at
		})
	}
}

// TestFaultMatrixMigrationAbortCrashRecovery proves the dual-outcome
// tail contract: after a partial abort, a crash (which also drops the
// never-forced compensation tails) recovers to the same committed
// prefix — the partial rule rebuilt from the End record's range, every
// key served exactly once.
func TestFaultMatrixMigrationAbortCrashRecovery(t *testing.T) {
	fr, space := newFaultForest(t, RetryPolicy{})
	at := fmBaseline(t, fr)
	m, at, err := fr.StartMigration(at, 0, kv.Key(fmPerShard), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		done, next, serr := m.Step(at)
		if serr != nil || done {
			t.Fatalf("pre-fault step %d: done=%v err=%v", i, done, serr)
		}
		at = next
	}
	fmInstall(t, space, "permanent call=sync file=wal1")
	if _, at, err = m.Step(at); err == nil {
		t.Fatal("Step succeeded with the destination WAL dead")
	}
	space.SetInjector(nil)

	fr.Crash()
	_, at, err = fr.Recover(at)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	rules := fr.Routing().Rules()
	wantFrontier := kv.Key(2 * fmChunkSize)
	if len(rules) != 1 || rules[0].Lo != 0 || rules[0].Hi != wantFrontier {
		t.Fatalf("recovered rules = %v, want [{0 %d 0 1}]", rules, wantFrontier)
	}
	at = fmCheckKeys(t, fr, at, fmShardKeys(0))
	at = fmCheckKeys(t, fr, at, fmShardKeys(1))
	recs, _, err := fr.RangeSearch(at, 0, kv.Key(fmPerShard))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != fmPerShard {
		t.Fatalf("recovered range holds %d keys, want %d (duplicate or lost key)", len(recs), fmPerShard)
	}
	if err := fr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultMatrixCrashDuringGroupCommit extends the crash-injection
// matrix with injected-EIO-during-group-commit cases: a transient fault
// hits the flush's data gang, and the machine crashes either BEFORE any
// retry succeeds (retry budget exhausted, shard quarantined, data gang
// never landed — durable state is phase-1 WAL only) or AFTER the retry
// absorbed the fault (the flush committed, a group Sync then marks the
// commit point). Both sides must recover every committed key: in the
// before case the flush's phase-1 ganged force already made every
// buffered redo durable, so even the updates accepted moments before
// the outage survive the crash.
func TestFaultMatrixCrashDuringGroupCommit(t *testing.T) {
	t.Run("before-retry-succeeds", func(t *testing.T) {
		fr, space := newFaultForest(t, RetryPolicy{})
		at := fmBaseline(t, fr)
		fmInstall(t, space, "transient call=gang file=shard0")
		accepted, werr, at := fmTriggerFlush(t, fr, at)
		if !errors.Is(werr, ErrShardQuarantined) {
			t.Fatalf("flush error = %v, want ErrShardQuarantined", werr)
		}
		if st := fr.Stats(); st.IORetriesExhausted == 0 {
			t.Fatal("retry budget never exhausted before the crash")
		}
		// The crash lands mid-outage; the device is healthy at restart.
		space.SetInjector(nil)
		fr.Crash()
		if _, recDone, err := fr.Recover(at); err != nil {
			t.Fatalf("Recover: %v", err)
		} else {
			at = recDone
		}
		if q := fr.Quarantined(); len(q) != 0 {
			t.Fatalf("recovery left shards %v quarantined", q)
		}
		at = fmCheckKeys(t, fr, at, fmShardKeys(0))
		at = fmCheckKeys(t, fr, at, fmShardKeys(1))
		at = fmCheckKeys(t, fr, at, accepted)
		// Write service is back without an explicit Heal: replay IS the
		// rollback.
		k := kv.Key(900)
		if _, err := fr.Insert(at, kv.Record{Key: k, Value: fmVal(k)}); err != nil {
			t.Fatalf("post-recovery insert: %v", err)
		}
		if err := fr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("after-retry-succeeds", func(t *testing.T) {
		retry := RetryPolicy{MaxRetries: 4, BaseBackoff: 20 * vtime.Millisecond, MaxBackoff: 80 * vtime.Millisecond}
		fr, space := newFaultForest(t, retry)
		at := fmBaseline(t, fr)
		// Fault window shorter than the first backoff: the flush's first
		// gang submission fails, its retry lands beyond the window.
		window := at + 10*vtime.Millisecond
		fmInstall(t, space, fmt.Sprintf("transient call=gang file=shard* until=%dns", window))
		accepted, werr, at := fmTriggerFlush(t, fr, at)
		if werr != nil {
			t.Fatalf("flush under windowed fault: %v", werr)
		}
		st := fr.Stats()
		if st.IORetries == 0 {
			t.Fatal("fault window never hit: IORetries = 0")
		}
		if st.IORetriesExhausted != 0 || len(fr.Quarantined()) != 0 {
			t.Fatalf("retry did not absorb the fault: %+v", st)
		}
		// Commit point: force the buffered redos, then crash.
		at, werr = fr.Sync(at)
		if werr != nil {
			t.Fatalf("Sync: %v", werr)
		}
		fr.Crash()
		if _, recDone, err := fr.Recover(at); err != nil {
			t.Fatalf("Recover: %v", err)
		} else {
			at = recDone
		}
		at = fmCheckKeys(t, fr, at, fmShardKeys(0))
		at = fmCheckKeys(t, fr, at, fmShardKeys(1))
		fmCheckKeys(t, fr, at, accepted)
		if err := fr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFaultMatrixDeterministic reruns the exhausted-quarantine scenario
// and requires identical completion times, stats and degraded contents:
// fault decisions are pure functions of (seed, file, call, vtime, shape),
// never of goroutine schedule or map order.
func TestFaultMatrixDeterministic(t *testing.T) {
	run := func() (vtime.Ticks, ForestStats, []kv.Record) {
		fr, space := newFaultForest(t, RetryPolicy{})
		at := fmBaseline(t, fr)
		fmInstall(t, space, "transient call=gang file=shard0")
		_, _, at = fmTriggerFlush(t, fr, at)
		recs, at, err := fr.RangeSearch(at, 0, 2*fmStride)
		if err != nil {
			t.Fatal(err)
		}
		st := fr.Stats()
		st.ShardLoads = nil // slice identity; contents compared via recs
		return at, st, recs
	}
	at1, st1, recs1 := run()
	at2, st2, recs2 := run()
	if at1 != at2 {
		t.Fatalf("completion times diverge: %d vs %d", at1, at2)
	}
	if fmt.Sprintf("%+v", st1) != fmt.Sprintf("%+v", st2) {
		t.Fatalf("stats diverge:\n%+v\n%+v", st1, st2)
	}
	if len(recs1) != len(recs2) {
		t.Fatalf("degraded contents diverge: %d vs %d records", len(recs1), len(recs2))
	}
	for i := range recs1 {
		if recs1[i] != recs2[i] {
			t.Fatalf("degraded record %d diverges: %+v vs %+v", i, recs1[i], recs2[i])
		}
	}
}
