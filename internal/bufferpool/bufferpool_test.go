package bufferpool

import (
	"bytes"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

func newPoolT(t *testing.T, capacity int, policy Policy) (*Pool, *pagefile.PageFile) {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.F120())
	f, err := ssdio.NewSpace(dev).Create("bp", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pagefile.New(f, 4096)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(pf, capacity, policy)
	if err != nil {
		t.Fatal(err)
	}
	return p, pf
}

func fillPage(b byte) []byte { return bytes.Repeat([]byte{b}, 4096) }

func TestNewValidation(t *testing.T) {
	_, pf := newPoolT(t, 1, WriteBack)
	if _, err := New(pf, 0, WriteBack); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestHitAvoidsIO(t *testing.T) {
	p, pf := newPoolT(t, 4, WriteBack)
	id := pf.Alloc()
	if err := pf.WritePageNoCost(id, fillPage(5)); err != nil {
		t.Fatal(err)
	}
	_, at1, err := p.Get(0, id)
	if err != nil {
		t.Fatal(err)
	}
	if at1 == 0 {
		t.Fatal("miss cost no time")
	}
	data, at2, err := p.Get(at1, id)
	if err != nil {
		t.Fatal(err)
	}
	if at2 != at1 {
		t.Fatal("hit cost time")
	}
	if data[0] != 5 {
		t.Fatal("wrong content")
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %f", s.HitRatio())
	}
}

func TestLRUEviction(t *testing.T) {
	p, pf := newPoolT(t, 2, WriteBack)
	ids := []pagefile.PageID{pf.Alloc(), pf.Alloc(), pf.Alloc()}
	var at vtime.Ticks
	var err error
	for _, id := range ids {
		if _, at, err = p.Get(at, id); err != nil {
			t.Fatal(err)
		}
	}
	// ids[0] is the LRU victim; ids[1], ids[2] remain.
	if p.Contains(ids[0]) {
		t.Fatal("LRU victim still cached")
	}
	if !p.Contains(ids[1]) || !p.Contains(ids[2]) {
		t.Fatal("recently used pages evicted")
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	p, pf := newPoolT(t, 1, WriteBack)
	a, b := pf.Alloc(), pf.Alloc()
	at, err := p.Put(0, a, fillPage(1))
	if err != nil {
		t.Fatal(err)
	}
	writesBefore := pf.File().Stats().SyncCalls
	// Loading b evicts dirty a -> one device write then one read.
	if _, at, err = p.Get(at, b); err != nil {
		t.Fatal(err)
	}
	writesAfter := pf.File().Stats().SyncCalls
	if writesAfter-writesBefore != 2 {
		t.Fatalf("expected write-back + read = 2 device ops, got %d", writesAfter-writesBefore)
	}
	// Durable content of a must be the dirty data.
	out := make([]byte, 4096)
	if err := pf.ReadPageNoCost(a, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatal("dirty page lost on eviction")
	}
	_ = at
}

func TestWriteThroughNeverDirty(t *testing.T) {
	p, pf := newPoolT(t, 2, WriteThrough)
	id := pf.Alloc()
	if _, err := p.Put(0, id, fillPage(9)); err != nil {
		t.Fatal(err)
	}
	if p.DirtyCount() != 0 {
		t.Fatal("write-through left dirty frame")
	}
	out := make([]byte, 4096)
	if err := pf.ReadPageNoCost(id, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 9 {
		t.Fatal("write-through did not reach device")
	}
}

func TestFlushWritesAllDirty(t *testing.T) {
	p, pf := newPoolT(t, 4, WriteBack)
	ids := []pagefile.PageID{pf.Alloc(), pf.Alloc(), pf.Alloc()}
	var at vtime.Ticks
	var err error
	for i, id := range ids {
		if at, err = p.Put(at, id, fillPage(byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if p.DirtyCount() != 3 {
		t.Fatalf("dirty = %d", p.DirtyCount())
	}
	if at, err = p.Flush(at); err != nil {
		t.Fatal(err)
	}
	if p.DirtyCount() != 0 {
		t.Fatal("flush left dirty frames")
	}
	for i, id := range ids {
		out := make([]byte, 4096)
		if err := pf.ReadPageNoCost(id, out); err != nil {
			t.Fatal(err)
		}
		if out[0] != byte(i+1) {
			t.Fatalf("page %d content %d", i, out[0])
		}
	}
}

func TestPinPreventsEviction(t *testing.T) {
	p, pf := newPoolT(t, 1, WriteBack)
	a, b := pf.Alloc(), pf.Alloc()
	if _, _, err := p.Get(0, a); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Get(0, b); err == nil {
		t.Fatal("eviction of pinned page succeeded")
	}
	if err := p.Unpin(a); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Get(0, b); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(a); err == nil {
		t.Fatal("unpin of evicted/unpinned page succeeded")
	}
	if err := p.Pin(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(b); err != nil {
		t.Fatal(err)
	}
}

func TestInsertCleanAndInvalidate(t *testing.T) {
	p, pf := newPoolT(t, 2, WriteThrough)
	id := pf.Alloc()
	p.InsertClean(id, fillPage(3))
	if !p.Contains(id) {
		t.Fatal("InsertClean did not cache")
	}
	st := pf.File().Stats()
	if st.SyncCalls != 0 {
		t.Fatal("InsertClean hit the device")
	}
	data, at, err := p.Get(0, id)
	if err != nil || at != 0 || data[0] != 3 {
		t.Fatalf("get after insert: %v %v %v", data[0], at, err)
	}
	p.Invalidate(id)
	if p.Contains(id) {
		t.Fatal("Invalidate left page cached")
	}
	// InsertClean with wrong size is ignored.
	p.InsertClean(id, []byte{1})
	if p.Contains(id) {
		t.Fatal("wrong-size InsertClean cached")
	}
}

func TestInsertCleanEvictsCleanOnly(t *testing.T) {
	p, pf := newPoolT(t, 1, WriteBack)
	a, b := pf.Alloc(), pf.Alloc()
	if _, err := p.Put(0, a, fillPage(1)); err != nil { // dirty
		t.Fatal(err)
	}
	p.InsertClean(b, fillPage(2))
	// The only frame is dirty: InsertClean must refuse to evict it.
	if p.Contains(b) {
		t.Fatal("InsertClean evicted a dirty frame")
	}
	if !p.Contains(a) {
		t.Fatal("dirty frame vanished")
	}
}

func TestResize(t *testing.T) {
	p, pf := newPoolT(t, 4, WriteBack)
	var at vtime.Ticks
	var err error
	ids := make([]pagefile.PageID, 4)
	for i := range ids {
		ids[i] = pf.Alloc()
		if at, err = p.Put(at, ids[i], fillPage(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if at, err = p.Resize(at, 2); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("len after resize = %d", p.Len())
	}
	if _, err = p.Resize(at, 0); err == nil {
		t.Fatal("resize to 0 accepted")
	}
}
