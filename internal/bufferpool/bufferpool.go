// Package bufferpool implements the LRU buffer manager employed for every
// index in the paper's experiments (Section 4.1: "The LRU buffer manager
// was employed for the indexes"). It caches fixed-size pages of one
// pagefile, charges simulated time for misses and dirty-page write-backs,
// and exposes hit/miss counters.
//
// Two write policies are provided:
//
//   - WriteBack (steal/no-force): dirtied frames are written when evicted,
//     producing the mingled read/write pattern the paper blames for the
//     B-link tree's concurrency penalty (Section 4.2);
//   - WriteThrough: writes go straight to the device and frames are never
//     dirty, matching the PIO B-tree's "no dirty buffers" property.
package bufferpool

import (
	"container/list"
	"fmt"

	"repro/internal/pagefile"
	"repro/internal/vtime"
)

// Policy selects the write policy of a Pool.
type Policy uint8

const (
	// WriteBack defers page writes until eviction or Flush.
	WriteBack Policy = iota
	// WriteThrough writes pages immediately and keeps frames clean.
	WriteThrough
)

// Stats exposes the pool's counters.
type Stats struct {
	Hits, Misses  int64
	Evictions     int64
	DirtyWrites   int64
	LogicalReads  int64
	LogicalWrites int64
}

// HitRatio returns hits/(hits+misses), or 0 with no traffic.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type frame struct {
	id    pagefile.PageID
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// Pool is an LRU page cache over one pagefile. Not safe for concurrent
// use; simulated threads are serialized by the vtime scheduler and real
// concurrent wrappers add their own locking.
type Pool struct {
	pf       *pagefile.PageFile
	capacity int
	policy   Policy

	frames map[pagefile.PageID]*frame
	lru    *list.List // front = most recently used
	stats  Stats
}

// New creates a pool of capacity pages (capacity >= 1) over pf.
func New(pf *pagefile.PageFile, capacity int, policy Policy) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("bufferpool: capacity must be >= 1, got %d", capacity)
	}
	return &Pool{
		pf:       pf,
		capacity: capacity,
		policy:   policy,
		frames:   make(map[pagefile.PageID]*frame, capacity),
		lru:      list.New(),
	}, nil
}

// Capacity returns the pool size in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Resize changes the pool capacity, evicting (and writing back) as needed
// at virtual time at; it returns the time after any write-backs.
func (p *Pool) Resize(at vtime.Ticks, capacity int) (vtime.Ticks, error) {
	if capacity < 1 {
		return at, fmt.Errorf("bufferpool: capacity must be >= 1, got %d", capacity)
	}
	p.capacity = capacity
	var err error
	for len(p.frames) > p.capacity {
		at, err = p.evictOne(at)
		if err != nil {
			return at, err
		}
	}
	return at, nil
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() { p.stats = Stats{} }

// PageSize returns the underlying page size.
func (p *Pool) PageSize() int { return p.pf.PageSize() }

// evictOne removes the least recently used unpinned frame, writing it back
// if dirty. It fails if every frame is pinned.
func (p *Pool) evictOne(at vtime.Ticks) (vtime.Ticks, error) {
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		fr := e.Value.(*frame)
		if fr.pins > 0 {
			continue
		}
		if fr.dirty {
			var err error
			at, err = p.pf.WritePage(at, fr.id, fr.data)
			if err != nil {
				return at, err
			}
			p.stats.DirtyWrites++
		}
		p.lru.Remove(e)
		delete(p.frames, fr.id)
		p.stats.Evictions++
		return at, nil
	}
	return at, fmt.Errorf("bufferpool: all %d frames pinned", len(p.frames))
}

// ensureRoom makes space for one more frame.
func (p *Pool) ensureRoom(at vtime.Ticks) (vtime.Ticks, error) {
	var err error
	for len(p.frames) >= p.capacity {
		at, err = p.evictOne(at)
		if err != nil {
			return at, err
		}
	}
	return at, nil
}

// Get returns the page contents, reading from the device on a miss. The
// returned slice aliases the frame; callers must not retain it across
// further pool calls unless they pinned the page.
func (p *Pool) Get(at vtime.Ticks, id pagefile.PageID) ([]byte, vtime.Ticks, error) {
	p.stats.LogicalReads++
	if fr, ok := p.frames[id]; ok {
		p.stats.Hits++
		p.lru.MoveToFront(fr.elem)
		return fr.data, at, nil
	}
	p.stats.Misses++
	var err error
	at, err = p.ensureRoom(at)
	if err != nil {
		return nil, at, err
	}
	buf := make([]byte, p.pf.PageSize())
	at, err = p.pf.ReadPage(at, id, buf)
	if err != nil {
		return nil, at, err
	}
	fr := &frame{id: id, data: buf}
	fr.elem = p.lru.PushFront(fr)
	p.frames[id] = fr
	return fr.data, at, nil
}

// Contains reports whether the page is cached (no LRU effect).
func (p *Pool) Contains(id pagefile.PageID) bool {
	_, ok := p.frames[id]
	return ok
}

// Put stores new page contents through the pool. Under WriteThrough the
// device write happens immediately; under WriteBack the frame is dirtied.
func (p *Pool) Put(at vtime.Ticks, id pagefile.PageID, data []byte) (vtime.Ticks, error) {
	if len(data) != p.pf.PageSize() {
		return at, fmt.Errorf("bufferpool: put %d bytes, want %d", len(data), p.pf.PageSize())
	}
	p.stats.LogicalWrites++
	fr, ok := p.frames[id]
	if !ok {
		var err error
		at, err = p.ensureRoom(at)
		if err != nil {
			return at, err
		}
		fr = &frame{id: id, data: make([]byte, len(data))}
		fr.elem = p.lru.PushFront(fr)
		p.frames[id] = fr
	} else {
		p.lru.MoveToFront(fr.elem)
	}
	copy(fr.data, data)
	if p.policy == WriteThrough {
		var err error
		at, err = p.pf.WritePage(at, id, fr.data)
		if err != nil {
			return at, err
		}
		fr.dirty = false
		return at, nil
	}
	fr.dirty = true
	return at, nil
}

// InsertClean installs page contents as a clean frame without any
// simulated I/O: the caller already paid for the transfer out of band
// (e.g. a psync batch read or write that bypassed the pool). Room is made
// by evicting clean frames; a dirty victim would need a timed write, so
// dirty victims are skipped (pools used with InsertClean are write-through
// and never hold dirty frames).
func (p *Pool) InsertClean(id pagefile.PageID, data []byte) {
	if len(data) != p.pf.PageSize() {
		return
	}
	if fr, ok := p.frames[id]; ok {
		copy(fr.data, data)
		fr.dirty = false
		p.lru.MoveToFront(fr.elem)
		return
	}
	for len(p.frames) >= p.capacity {
		evicted := false
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			fr := e.Value.(*frame)
			if fr.pins > 0 || fr.dirty {
				continue
			}
			p.lru.Remove(e)
			delete(p.frames, fr.id)
			p.stats.Evictions++
			evicted = true
			break
		}
		if !evicted {
			return // nothing evictable; skip caching
		}
	}
	fr := &frame{id: id, data: append([]byte(nil), data...)}
	fr.elem = p.lru.PushFront(fr)
	p.frames[id] = fr
}

// Invalidate drops a page from the cache without writing it back (used
// after out-of-band page rewrites, e.g. psync batch writes that bypass the
// pool).
func (p *Pool) Invalidate(id pagefile.PageID) {
	if fr, ok := p.frames[id]; ok {
		p.lru.Remove(fr.elem)
		delete(p.frames, id)
	}
}

// Pin prevents eviction of a page until Unpin; the page must be resident.
func (p *Pool) Pin(id pagefile.PageID) error {
	fr, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("bufferpool: pin of non-resident page %d", id)
	}
	fr.pins++
	return nil
}

// Unpin releases one pin.
func (p *Pool) Unpin(id pagefile.PageID) error {
	fr, ok := p.frames[id]
	if !ok || fr.pins == 0 {
		return fmt.Errorf("bufferpool: unpin of unpinned page %d", id)
	}
	fr.pins--
	return nil
}

// Flush writes all dirty frames back at virtual time at (one sync write
// each, matching a conventional buffer manager's cleaner).
func (p *Pool) Flush(at vtime.Ticks) (vtime.Ticks, error) {
	var err error
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		fr := e.Value.(*frame)
		if !fr.dirty {
			continue
		}
		at, err = p.pf.WritePage(at, fr.id, fr.data)
		if err != nil {
			return at, err
		}
		fr.dirty = false
		p.stats.DirtyWrites++
	}
	return at, nil
}

// DirtyCount returns the number of dirty frames.
func (p *Pool) DirtyCount() int {
	n := 0
	for _, fr := range p.frames {
		if fr.dirty {
			n++
		}
	}
	return n
}

// Len returns the number of resident frames.
func (p *Pool) Len() int { return len(p.frames) }
