// Package bftl implements the BFTL baseline (Wu, Kuo & Chang, "An
// efficient B-tree layer implementation for flash-memory storage
// systems"), the flash-aware B-tree the paper compares against in
// Section 4.1.4.
//
// BFTL represents B-tree nodes as scattered *index units* (log records of
// individual insert/delete operations) written sequentially into log
// pages; an in-RAM *node translation table* maps each logical node to the
// list of pages holding its units. Reading a node therefore costs one read
// per page in its list; writes are cheap because dirty units from many
// nodes share one sequential log page (the reservation buffer). The
// *commit policy* bounds each node's list length at C pages by compacting
// a node (rewriting its units into fresh pages) when the bound is
// exceeded.
//
// The paper's characterization: write-optimized, search-degraded ("their
// search performance is degraded as much as the write-optimized level"),
// and its mapping table consumes the entire main-memory budget ("In BFTL,
// the entire main memory space was consumed by its mapping table thus
// making no space left for the buffer pool").
package bftl

import (
	"fmt"

	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/vtime"
)

// Config parameterizes BFTL.
type Config struct {
	// PageSize is the log page size in bytes.
	PageSize int
	// Fanout is the logical node capacity in records (leaf) or children
	// (internal); BFTL keeps B-tree shape over logical nodes.
	Fanout int
	// CommitPolicy is C, the max pages per node list before compaction.
	CommitPolicy int
	// CPUPerNode is CPU time per logical node visit.
	CPUPerNode vtime.Ticks
}

// unit is one index unit: an operation on a logical node.
type unit struct {
	op  kv.Op
	rec kv.Record
	// For internal nodes, rec.Value holds the child node id and rec.Key
	// the separator.
}

// node is a logical B-tree node materialized from its units.
type node struct {
	id       int64
	leaf     bool
	recs     []kv.Record // leaf payload, sorted
	keys     []kv.Key    // internal separators
	children []int64
}

// Tree is a BFTL B-tree over a pagefile used as a sequential log.
type Tree struct {
	cfg Config
	pf  *pagefile.PageFile

	// ntt is the node translation table: node id -> log pages holding its
	// units. This is the structure that eats the RAM budget.
	ntt map[int64][]pagefile.PageID
	// units mirrors the content of the log for materialization. Real BFTL
	// parses pages; keeping decoded units in step with the page lists
	// keeps this implementation compact while charging identical I/O.
	units map[int64][]unit

	// reservation buffer: units not yet flushed to a log page.
	pending      []pendingUnit
	pendingLimit int

	root   int64
	nextID int64
	height int
	count  int64

	stats Stats
}

type pendingUnit struct {
	nodeID int64
	u      unit
}

// Stats counts BFTL activity.
type Stats struct {
	NodeReads   int64 // page reads for node materialization
	LogWrites   int64 // sequential log page writes
	Compactions int64
}

// New creates an empty BFTL tree.
func New(pf *pagefile.PageFile, cfg Config) (*Tree, error) {
	if cfg.Fanout < 4 {
		return nil, fmt.Errorf("bftl: fanout must be >= 4, got %d", cfg.Fanout)
	}
	if cfg.CommitPolicy < 1 {
		return nil, fmt.Errorf("bftl: commit policy must be >= 1, got %d", cfg.CommitPolicy)
	}
	// The reservation buffer holds one log page worth of units.
	unitsPerPage := cfg.PageSize / (kv.EntrySize + 8)
	if unitsPerPage < 1 {
		return nil, fmt.Errorf("bftl: page size %d too small", cfg.PageSize)
	}
	t := &Tree{
		cfg:          cfg,
		pf:           pf,
		ntt:          make(map[int64][]pagefile.PageID),
		units:        make(map[int64][]unit),
		pendingLimit: unitsPerPage,
		root:         0,
		nextID:       1,
		height:       1,
	}
	return t, nil
}

// Count returns the number of live records.
func (t *Tree) Count() int64 { return t.count }

// Height returns the logical tree height.
func (t *Tree) Height() int { return t.height }

// Stats returns a snapshot of the counters.
func (t *Tree) Stats() Stats { return t.stats }

// NTTBytes estimates the node translation table's RAM footprint: node id
// (8B) plus 4B per page reference, the figure that consumes the paper's
// memory budget.
func (t *Tree) NTTBytes() int {
	total := 0
	for _, pages := range t.ntt {
		total += 8 + 4*len(pages)
	}
	return total
}

// readNode materializes a logical node, paying one page read per page in
// its translation list (the BFTL search penalty).
func (t *Tree) readNode(at vtime.Ticks, id int64) (*node, vtime.Ticks, error) {
	pages := t.ntt[id]
	buf := make([]byte, t.cfg.PageSize)
	var err error
	for _, p := range pages {
		at, err = t.pf.ReadPage(at, p, buf)
		if err != nil {
			return nil, at, err
		}
		t.stats.NodeReads++
	}
	n := t.materialize(id)
	return n, at + t.cfg.CPUPerNode, nil
}

// materialize replays a node's units (log order) into its logical form,
// including units still in the reservation buffer.
func (t *Tree) materialize(id int64) *node {
	n := &node{id: id, leaf: true}
	apply := func(u unit) {
		switch u.op {
		case kv.OpInsert, kv.OpUpdate:
			if u.op == kv.OpInsert && u.rec.Key == childMarker {
				// Internal-node child list unit.
				n.leaf = false
				n.children = append(n.children, int64(u.rec.Value))
				return
			}
			if u.op == kv.OpInsert && u.rec.Key == sepMarker {
				n.leaf = false
				n.keys = append(n.keys, kv.Key(u.rec.Value))
				return
			}
			i := kv.SearchRecords(n.recs, u.rec.Key)
			if i < len(n.recs) && n.recs[i].Key == u.rec.Key {
				n.recs[i] = u.rec
			} else {
				n.recs = append(n.recs, kv.Record{})
				copy(n.recs[i+1:], n.recs[i:])
				n.recs[i] = u.rec
			}
		case kv.OpDelete:
			i := kv.SearchRecords(n.recs, u.rec.Key)
			if i < len(n.recs) && n.recs[i].Key == u.rec.Key {
				n.recs = append(n.recs[:i], n.recs[i+1:]...)
			}
		}
	}
	for _, u := range t.units[id] {
		apply(u)
	}
	for _, pu := range t.pending {
		if pu.nodeID == id {
			apply(pu.u)
		}
	}
	return n
}

// Marker keys distinguishing internal-node units inside the shared unit
// representation (real BFTL tags units; markers keep the codec compact).
const (
	childMarker kv.Key = 1<<64 - 1
	sepMarker   kv.Key = 1<<64 - 2
)

// appendUnit adds a unit to the reservation buffer, flushing a full buffer
// as one sequential log page shared by many nodes — the BFTL write
// optimization.
func (t *Tree) appendUnit(at vtime.Ticks, id int64, u unit) (vtime.Ticks, error) {
	t.pending = append(t.pending, pendingUnit{nodeID: id, u: u})
	if len(t.pending) < t.pendingLimit {
		return at, nil
	}
	return t.flushReservation(at)
}

// flushReservation writes the reservation buffer to one fresh log page and
// updates the translation lists, compacting nodes that exceed the commit
// policy.
func (t *Tree) flushReservation(at vtime.Ticks) (vtime.Ticks, error) {
	if len(t.pending) == 0 {
		return at, nil
	}
	page := t.pf.Alloc()
	buf := make([]byte, t.cfg.PageSize)
	at, err := t.pf.WritePage(at, page, buf)
	if err != nil {
		return at, err
	}
	t.stats.LogWrites++
	touched := map[int64]bool{}
	for _, pu := range t.pending {
		t.units[pu.nodeID] = append(t.units[pu.nodeID], pu.u)
		if !touched[pu.nodeID] {
			t.ntt[pu.nodeID] = append(t.ntt[pu.nodeID], page)
			touched[pu.nodeID] = true
		}
	}
	t.pending = t.pending[:0]
	// Commit policy: compact any node whose list exceeds C pages.
	for id := range touched {
		if len(t.ntt[id]) > t.cfg.CommitPolicy {
			at, err = t.compact(at, id)
			if err != nil {
				return at, err
			}
		}
	}
	return at, nil
}

// compact rewrites a node's units into fresh dedicated pages: read every
// page in the list, write the consolidated units back.
func (t *Tree) compact(at vtime.Ticks, id int64) (vtime.Ticks, error) {
	var err error
	buf := make([]byte, t.cfg.PageSize)
	for _, p := range t.ntt[id] {
		at, err = t.pf.ReadPage(at, p, buf)
		if err != nil {
			return at, err
		}
		t.stats.NodeReads++
	}
	// Consolidated units fit one page for a sane fanout/commit policy.
	page := t.pf.Alloc()
	at, err = t.pf.WritePage(at, page, buf)
	if err != nil {
		return at, err
	}
	t.stats.LogWrites++
	t.stats.Compactions++
	for _, p := range t.ntt[id] {
		t.pf.Free(p)
	}
	t.ntt[id] = []pagefile.PageID{page}
	// Consolidate the in-memory mirror too.
	n := t.materialize(id)
	t.units[id] = nodeToUnits(n)
	return at, nil
}

// nodeToUnits re-expresses a materialized node as a minimal unit list.
func nodeToUnits(n *node) []unit {
	var us []unit
	if n.leaf {
		for _, r := range n.recs {
			us = append(us, unit{op: kv.OpInsert, rec: r})
		}
		return us
	}
	for _, c := range n.children {
		us = append(us, unit{op: kv.OpInsert, rec: kv.Record{Key: childMarker, Value: kv.Value(c)}})
	}
	for _, k := range n.keys {
		us = append(us, unit{op: kv.OpInsert, rec: kv.Record{Key: sepMarker, Value: kv.Value(k)}})
	}
	return us
}

// childIndex routes key k within internal node n.
func (n *node) childIndex(k kv.Key) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if k < n.keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Search looks up key k.
func (t *Tree) Search(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error) {
	n, at, err := t.readNode(at, t.root)
	if err != nil {
		return 0, false, at, err
	}
	for !n.leaf {
		n, at, err = t.readNode(at, n.children[n.childIndex(k)])
		if err != nil {
			return 0, false, at, err
		}
	}
	i := kv.SearchRecords(n.recs, k)
	if i < len(n.recs) && n.recs[i].Key == k {
		return n.recs[i].Value, true, at, nil
	}
	return 0, false, at, nil
}

// Insert adds record r, splitting logical nodes as needed.
func (t *Tree) Insert(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	// Descend, recording the path.
	var path []pathStep
	n, at, err := t.readNode(at, t.root)
	if err != nil {
		return at, err
	}
	for !n.leaf {
		i := n.childIndex(r.Key)
		path = append(path, pathStep{n: n, idx: i})
		n, at, err = t.readNode(at, n.children[i])
		if err != nil {
			return at, err
		}
	}
	exists := false
	if i := kv.SearchRecords(n.recs, r.Key); i < len(n.recs) && n.recs[i].Key == r.Key {
		exists = true
	}
	at, err = t.appendUnit(at, n.id, unit{op: kv.OpInsert, rec: r})
	if err != nil {
		return at, err
	}
	if !exists {
		t.count++
	}
	// Split check on the materialized size.
	if len(n.recs)+1 <= t.cfg.Fanout {
		return at, nil
	}
	return t.splitLeaf(at, path, n.id)
}

// pathStep records one internal-node step of a descent.
type pathStep struct {
	n   *node
	idx int
}

// splitLeaf splits a logical leaf: materialize, halve, rewrite both halves
// as fresh unit lists, propagate the separator.
func (t *Tree) splitLeaf(at vtime.Ticks, path []pathStep, id int64) (vtime.Ticks, error) {
	n := t.materialize(id)
	mid := len(n.recs) / 2
	right := &node{id: t.nextID, leaf: true, recs: append([]kv.Record(nil), n.recs[mid:]...)}
	t.nextID++
	n.recs = n.recs[:mid]
	sep := right.recs[0].Key
	var err error
	at, err = t.rewriteNode(at, n)
	if err != nil {
		return at, err
	}
	at, err = t.rewriteNode(at, right)
	if err != nil {
		return at, err
	}
	// Propagate upward.
	for len(path) > 0 {
		p := path[len(path)-1].n
		idx := path[len(path)-1].idx
		path = path[:len(path)-1]
		p.keys = append(p.keys, 0)
		copy(p.keys[idx+1:], p.keys[idx:])
		p.keys[idx] = sep
		p.children = append(p.children, 0)
		copy(p.children[idx+2:], p.children[idx+1:])
		p.children[idx+1] = right.id
		if len(p.children) <= t.cfg.Fanout {
			return t.rewriteNode(at, p)
		}
		m := len(p.keys) / 2
		up := p.keys[m]
		rn := &node{
			id:       t.nextID,
			keys:     append([]kv.Key(nil), p.keys[m+1:]...),
			children: append([]int64(nil), p.children[m+1:]...),
		}
		t.nextID++
		p.keys = p.keys[:m]
		p.children = p.children[:m+1]
		if at, err = t.rewriteNode(at, p); err != nil {
			return at, err
		}
		if at, err = t.rewriteNode(at, rn); err != nil {
			return at, err
		}
		sep = up
		right = rn
	}
	// Root split.
	newRoot := &node{
		id:       t.nextID,
		keys:     []kv.Key{sep},
		children: []int64{t.root, right.id},
	}
	t.nextID++
	t.root = newRoot.id
	t.height++
	return t.rewriteNode(at, newRoot)
}

// rewriteNode replaces a node's unit list with its consolidated form,
// costing one log page write.
func (t *Tree) rewriteNode(at vtime.Ticks, n *node) (vtime.Ticks, error) {
	page := t.pf.Alloc()
	buf := make([]byte, t.cfg.PageSize)
	at, err := t.pf.WritePage(at, page, buf)
	if err != nil {
		return at, err
	}
	t.stats.LogWrites++
	for _, p := range t.ntt[n.id] {
		t.pf.Free(p)
	}
	t.ntt[n.id] = []pagefile.PageID{page}
	t.units[n.id] = nodeToUnits(n)
	// Remove any pending units for this node (now consolidated).
	keep := t.pending[:0]
	for _, pu := range t.pending {
		if pu.nodeID != n.id {
			keep = append(keep, pu)
		}
	}
	t.pending = keep
	return at, nil
}

// Delete removes key k (no underflow handling: BFTL leaves nodes sparse,
// as the original paper does for its evaluation).
func (t *Tree) Delete(at vtime.Ticks, k kv.Key) (bool, vtime.Ticks, error) {
	n, at, err := t.readNode(at, t.root)
	if err != nil {
		return false, at, err
	}
	for !n.leaf {
		n, at, err = t.readNode(at, n.children[n.childIndex(k)])
		if err != nil {
			return false, at, err
		}
	}
	i := kv.SearchRecords(n.recs, k)
	if i >= len(n.recs) || n.recs[i].Key != k {
		return false, at, nil
	}
	at, err = t.appendUnit(at, n.id, unit{op: kv.OpDelete, rec: kv.Record{Key: k}})
	if err != nil {
		return false, at, err
	}
	t.count--
	return true, at, nil
}

// RangeSearch scans [lo, hi) by walking leaves left to right. BFTL has no
// leaf chain in this compact form; the walk re-descends per leaf (tracking
// each leaf's upper bound from the separators on the way down), which is
// faithful to its search-heavy cost profile.
func (t *Tree) RangeSearch(at vtime.Ticks, lo, hi kv.Key) ([]kv.Record, vtime.Ticks, error) {
	var out []kv.Record
	k := lo
	for k < hi {
		n, at2, err := t.readNode(at, t.root)
		if err != nil {
			return nil, at2, err
		}
		at = at2
		// highBound is the smallest separator to the right of the descent
		// path: the first key of the next leaf.
		var highBound kv.Key
		hasBound := false
		for !n.leaf {
			ci := n.childIndex(k)
			if ci < len(n.keys) {
				highBound, hasBound = n.keys[ci], true
			}
			n, at, err = t.readNode(at, n.children[ci])
			if err != nil {
				return nil, at, err
			}
		}
		for _, r := range n.recs {
			if r.Key >= k && r.Key < hi {
				out = append(out, r)
			}
		}
		if !hasBound {
			break // rightmost leaf
		}
		k = highBound
	}
	return out, at, nil
}

// BulkLoad builds the tree from sorted records without simulated cost.
func (t *Tree) BulkLoad(recs []kv.Record) error {
	if t.count != 0 {
		return fmt.Errorf("bftl: bulk load into non-empty tree")
	}
	if len(recs) == 0 {
		return nil
	}
	fill := int(float64(t.cfg.Fanout) * 0.7)
	if fill < 1 {
		fill = 1
	}
	type built struct {
		id    int64
		first kv.Key
	}
	var level []built
	for i := 0; i < len(recs); i += fill {
		end := i + fill
		if end > len(recs) {
			end = len(recs)
		}
		n := &node{id: t.nextID, leaf: true, recs: append([]kv.Record(nil), recs[i:end]...)}
		t.nextID++
		page := t.pf.Alloc()
		t.ntt[n.id] = []pagefile.PageID{page}
		t.units[n.id] = nodeToUnits(n)
		level = append(level, built{id: n.id, first: n.recs[0].Key})
	}
	for len(level) > 1 {
		var next []built
		for i := 0; i < len(level); {
			end := i + fill
			if end >= len(level)-1 {
				end = len(level)
			}
			group := level[i:end]
			n := &node{id: t.nextID}
			t.nextID++
			for j, b := range group {
				n.children = append(n.children, b.id)
				if j > 0 {
					n.keys = append(n.keys, b.first)
				}
			}
			page := t.pf.Alloc()
			t.ntt[n.id] = []pagefile.PageID{page}
			t.units[n.id] = nodeToUnits(n)
			next = append(next, built{id: n.id, first: group[0].first})
			i = end
		}
		level = next
		t.height++
	}
	t.root = level[0].id
	t.count = int64(len(recs))
	return nil
}
