package bftl

import (
	"math/rand"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

func newTree(t *testing.T) *Tree {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.F120())
	f, err := ssdio.NewSpace(dev).Create("bftl", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pagefile.New(f, 2048)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pf, Config{PageSize: 2048, Fanout: 32, CommitPolicy: 4})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestValidation(t *testing.T) {
	dev := flashsim.MustDevice(flashsim.F120())
	f, _ := ssdio.NewSpace(dev).Create("x", 1<<16)
	pf, _ := pagefile.New(f, 2048)
	if _, err := New(pf, Config{PageSize: 2048, Fanout: 2, CommitPolicy: 4}); err == nil {
		t.Fatal("tiny fanout accepted")
	}
	if _, err := New(pf, Config{PageSize: 2048, Fanout: 32, CommitPolicy: 0}); err == nil {
		t.Fatal("zero commit policy accepted")
	}
}

func TestInsertSearch(t *testing.T) {
	tr := newTree(t)
	var at vtime.Ticks
	var err error
	for i := 0; i < 3000; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i * 2), Value: uint64(i)})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Count() != 3000 {
		t.Fatalf("count = %d", tr.Count())
	}
	for i := 0; i < 3000; i += 101 {
		v, found, at2, err := tr.Search(at, uint64(i*2))
		if err != nil || !found || v != uint64(i) {
			t.Fatalf("Search(%d) = %v,%v,%v", i*2, v, found, err)
		}
		at = at2
		_, found, at, err = tr.Search(at, uint64(i*2+1))
		if err != nil || found {
			t.Fatalf("found absent key %d", i*2+1)
		}
	}
	if tr.Stats().LogWrites == 0 {
		t.Fatal("no log writes recorded")
	}
}

func TestRandomAgainstModel(t *testing.T) {
	tr := newTree(t)
	rng := rand.New(rand.NewSource(5))
	model := map[kv.Key]kv.Value{}
	var at vtime.Ticks
	var err error
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(1200))
		if rng.Intn(4) == 0 {
			var ok bool
			ok, at, err = tr.Delete(at, k)
			_, want := model[k]
			if err == nil && ok != want {
				t.Fatalf("op %d: Delete(%d)=%v want %v", i, k, ok, want)
			}
			delete(model, k)
		} else {
			at, err = tr.Insert(at, kv.Record{Key: k, Value: uint64(i)})
			model[k] = uint64(i)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for k, v := range model {
		got, found, _, err := tr.Search(at, k)
		if err != nil || !found || got != v {
			t.Fatalf("Search(%d) = %d,%v,%v want %d", k, got, found, err, v)
		}
	}
	if tr.Count() != int64(len(model)) {
		t.Fatalf("count %d != model %d", tr.Count(), len(model))
	}
}

func TestCompactionBoundsNodeReads(t *testing.T) {
	tr := newTree(t)
	var at vtime.Ticks
	var err error
	// Hammer one small key range so its leaf accumulates units.
	for i := 0; i < 4000; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i % 20), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().Compactions == 0 {
		t.Fatal("commit policy never triggered")
	}
	// Every node list must respect the commit policy after quiescence.
	for id, pages := range tr.ntt {
		if len(pages) > tr.cfg.CommitPolicy+1 {
			t.Fatalf("node %d list length %d exceeds policy", id, len(pages))
		}
	}
}

func TestSearchSlowerThanBtreeShape(t *testing.T) {
	// BFTL's point search must cost several page reads per node once nodes
	// scatter: after lots of inserts, reads-per-search > height.
	tr := newTree(t)
	var at vtime.Ticks
	var err error
	rng := rand.New(rand.NewSource(17))
	keys := rng.Perm(3000)
	for i, k := range keys {
		at, err = tr.Insert(at, kv.Record{Key: uint64(k * 7), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	before := tr.Stats().NodeReads
	const searches = 100
	for i := 0; i < searches; i++ {
		_, _, at, err = tr.Search(at, uint64(keys[i*29%len(keys)]*7))
		if err != nil {
			t.Fatal(err)
		}
	}
	perSearch := float64(tr.Stats().NodeReads-before) / searches
	if perSearch <= float64(tr.Height()) {
		t.Fatalf("BFTL search too cheap: %.1f page reads/search, height %d", perSearch, tr.Height())
	}
}

func TestRangeSearch(t *testing.T) {
	tr := newTree(t)
	var at vtime.Ticks
	var err error
	for i := 0; i < 2000; i++ {
		at, err = tr.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tr.RangeSearch(at, 500, 700)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("range returned %d, want 200", len(got))
	}
	for i, r := range got {
		if r.Key != uint64(500+i) {
			t.Fatalf("range[%d] = %d", i, r.Key)
		}
	}
}

func TestBulkLoad(t *testing.T) {
	tr := newTree(t)
	recs := make([]kv.Record, 10000)
	for i := range recs {
		recs[i] = kv.Record{Key: uint64(i * 5), Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 10000 || tr.Height() < 2 {
		t.Fatalf("count=%d height=%d", tr.Count(), tr.Height())
	}
	for _, i := range []int{0, 5000, 9999} {
		v, found, _, err := tr.Search(0, recs[i].Key)
		if err != nil || !found || v != recs[i].Value {
			t.Fatalf("Search(%d): %v %v %v", recs[i].Key, v, found, err)
		}
	}
	if tr.NTTBytes() == 0 {
		t.Fatal("NTT empty after bulk load")
	}
	if err := tr.BulkLoad(recs); err == nil {
		t.Fatal("bulk load into non-empty tree accepted")
	}
}
