// Package integration runs cross-index differential tests: the four index
// structures (PIO B-tree, B+-tree, BFTL, FD-tree) execute the same random
// workloads against a shared in-memory model, and their relative simulated
// timings are checked against the paper's headline relationships.
package integration

import (
	"math/rand"
	"testing"

	"repro/internal/bftl"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/fdtree"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// index is the common surface all four structures expose for the test.
type index interface {
	Insert(at vtime.Ticks, r kv.Record) (vtime.Ticks, error)
	Search(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error)
}

// deleter is implemented with different signatures; adapters unify it.
type adapters struct {
	name   string
	ins    func(at vtime.Ticks, r kv.Record) (vtime.Ticks, error)
	del    func(at vtime.Ticks, k kv.Key) (vtime.Ticks, error)
	search func(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error)
	rng    func(at vtime.Ticks, lo, hi kv.Key) ([]kv.Record, vtime.Ticks, error)
	fini   func(at vtime.Ticks) (vtime.Ticks, error)
}

func newPagefile(t *testing.T, pageSize int) *pagefile.PageFile {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	f, err := ssdio.NewSpace(dev).Create("idx", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pagefile.New(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

func buildAll(t *testing.T) []adapters {
	t.Helper()
	const ps = 1024

	pioT, err := core.New(newPagefile(t, ps), core.Config{
		PageSize: ps, LeafSegs: 2, OPQPages: 1, PioMax: 16, SPeriod: 64,
		BCnt: 128, BufferBytes: 8 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	btT, err := btree.New(newPagefile(t, ps), btree.Config{NodeSize: ps, BufferBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	bfT, err := bftl.New(newPagefile(t, ps), bftl.Config{PageSize: ps, Fanout: 32, CommitPolicy: 3})
	if err != nil {
		t.Fatal(err)
	}
	fdT, err := fdtree.New(newPagefile(t, ps), fdtree.Config{PageSize: ps, HeadPages: 2, SizeRatio: 4})
	if err != nil {
		t.Fatal(err)
	}

	return []adapters{
		{
			name:   "pio",
			ins:    pioT.Insert,
			del:    pioT.Delete,
			search: pioT.Search,
			rng:    pioT.RangeSearch,
			fini:   func(at vtime.Ticks) (vtime.Ticks, error) { return pioT.Checkpoint(at) },
		},
		{
			name: "btree",
			ins:  btT.Insert,
			del: func(at vtime.Ticks, k kv.Key) (vtime.Ticks, error) {
				_, at, err := btT.Delete(at, k)
				return at, err
			},
			search: btT.Search,
			rng:    btT.RangeSearch,
			fini:   func(at vtime.Ticks) (vtime.Ticks, error) { return at, nil },
		},
		{
			name: "bftl",
			ins:  bfT.Insert,
			del: func(at vtime.Ticks, k kv.Key) (vtime.Ticks, error) {
				_, at, err := bfT.Delete(at, k)
				return at, err
			},
			search: bfT.Search,
			rng:    bfT.RangeSearch,
			fini:   func(at vtime.Ticks) (vtime.Ticks, error) { return at, nil },
		},
		{
			name:   "fdtree",
			ins:    fdT.Insert,
			del:    fdT.Delete,
			search: fdT.Search,
			rng:    fdT.RangeSearch,
			fini:   func(at vtime.Ticks) (vtime.Ticks, error) { return at, nil },
		},
	}
}

// TestDifferentialAllIndexes drives all four indexes through one random
// workload and verifies every index agrees with the model on every probe.
func TestDifferentialAllIndexes(t *testing.T) {
	idxs := buildAll(t)
	model := make(map[kv.Key]kv.Value)
	rng := rand.New(rand.NewSource(99))
	clocks := make([]vtime.Ticks, len(idxs))

	type probe struct {
		k    kv.Key
		want kv.Value
		ok   bool
	}
	for step := 0; step < 4000; step++ {
		k := uint64(rng.Intn(800)) * 3
		switch rng.Intn(5) {
		case 0: // delete
			if _, ok := model[k]; ok {
				delete(model, k)
				for i := range idxs {
					var err error
					clocks[i], err = idxs[i].del(clocks[i], k)
					if err != nil {
						t.Fatalf("%s: delete: %v", idxs[i].name, err)
					}
				}
			}
		default: // insert/overwrite
			v := uint64(step)
			model[k] = v
			for i := range idxs {
				var err error
				clocks[i], err = idxs[i].ins(clocks[i], kv.Record{Key: k, Value: v})
				if err != nil {
					t.Fatalf("%s: insert: %v", idxs[i].name, err)
				}
			}
		}
		if step%100 == 0 {
			p := probe{k: uint64(rng.Intn(800)) * 3}
			p.want, p.ok = model[p.k]
			for i := range idxs {
				v, ok, now, err := idxs[i].search(clocks[i], p.k)
				if err != nil {
					t.Fatalf("%s: search: %v", idxs[i].name, err)
				}
				clocks[i] = now
				if ok != p.ok || (ok && v != p.want) {
					t.Fatalf("step %d: %s Search(%d) = %d,%v want %d,%v",
						step, idxs[i].name, p.k, v, ok, p.want, p.ok)
				}
			}
		}
	}
	// Final full agreement check plus a range comparison.
	for i := range idxs {
		var err error
		clocks[i], err = idxs[i].fini(clocks[i])
		if err != nil {
			t.Fatalf("%s: fini: %v", idxs[i].name, err)
		}
	}
	for k, v := range model {
		for i := range idxs {
			got, ok, now, err := idxs[i].search(clocks[i], k)
			if err != nil || !ok || got != v {
				t.Fatalf("%s: final Search(%d) = %d,%v,%v want %d", idxs[i].name, k, got, ok, err, v)
			}
			clocks[i] = now
		}
	}
	wantRange := 0
	for k := range model {
		if k >= 300 && k < 1500 {
			wantRange++
		}
	}
	for i := range idxs {
		recs, now, err := idxs[i].rng(clocks[i], 300, 1500)
		if err != nil {
			t.Fatalf("%s: range: %v", idxs[i].name, err)
		}
		clocks[i] = now
		if len(recs) != wantRange {
			t.Fatalf("%s: range size %d, want %d", idxs[i].name, len(recs), wantRange)
		}
		for j := 1; j < len(recs); j++ {
			if recs[j-1].Key >= recs[j].Key {
				t.Fatalf("%s: range unsorted", idxs[i].name)
			}
		}
	}
}

// TestHeadlineTimingRelationships checks the paper's core performance
// claims hold on a common insert-then-search workload at this scale:
// PIO inserts beat the B+-tree's; BFTL inserts beat the B+-tree's while
// its searches are the slowest.
func TestHeadlineTimingRelationships(t *testing.T) {
	idxs := buildAll(t)
	times := map[string][2]vtime.Ticks{} // name -> [insertTime, searchTime]
	const n = 4000
	// Random key order, as in the paper's synthetic workloads (sequential
	// inserts are a best case for the write-back B+-tree's hot leaf).
	keys := rand.New(rand.NewSource(5)).Perm(n)
	for i := range idxs {
		var now vtime.Ticks
		var err error
		for j, k := range keys {
			now, err = idxs[i].ins(now, kv.Record{Key: uint64(k) * 7, Value: uint64(j)})
			if err != nil {
				t.Fatal(err)
			}
		}
		now, err = idxs[i].fini(now)
		if err != nil {
			t.Fatal(err)
		}
		insTime := now
		for j := 0; j < n; j += 4 {
			_, ok, now2, err := idxs[i].search(now, uint64(keys[j])*7)
			if err != nil || !ok {
				t.Fatalf("%s: search(%d): %v %v", idxs[i].name, keys[j]*7, ok, err)
			}
			now = now2
		}
		times[idxs[i].name] = [2]vtime.Ticks{insTime, now - insTime}
	}
	// Paper's Figure 12 relationships on flashSSDs: PIO inserts beat the
	// B+-tree's; BFTL (a raw-flash design) is the worst index overall and
	// its searches lose to the B+-tree's; PIO searches beat BFTL's.
	if times["pio"][0] >= times["btree"][0] {
		t.Errorf("PIO inserts (%v) not faster than B+-tree (%v)", times["pio"][0], times["btree"][0])
	}
	if times["bftl"][1] <= times["btree"][1] {
		t.Errorf("BFTL searches (%v) not slower than B+-tree (%v)", times["bftl"][1], times["btree"][1])
	}
	if times["pio"][1] >= times["bftl"][1] {
		t.Errorf("PIO searches (%v) not faster than BFTL (%v)", times["pio"][1], times["bftl"][1])
	}
	bftlTotal := times["bftl"][0] + times["bftl"][1]
	pioTotal := times["pio"][0] + times["pio"][1]
	if pioTotal >= bftlTotal {
		t.Errorf("PIO total (%v) not below BFTL total (%v)", pioTotal, bftlTotal)
	}
}
