package costmodel

import (
	"repro/internal/flashsim"
	"repro/internal/vtime"
)

// Calibrate runs the micro-benchmark of Section 3.6 against a device:
// when a PIO B-tree is first built it measures Pr, Pw, Pr(L), P'r and P'w
// and tunes itself from those. The probe issues `samples` random requests
// per point on a scratch region of the device and averages the latencies.
//
// pageSize is the index page size in bytes; maxPages bounds the Pr(L)
// curve; pioMax is the batch size used to measure the psync-amortized
// per-page costs.
func Calibrate(dev *flashsim.Device, pageSize, maxPages, pioMax, samples int) *DeviceParams {
	if samples < 1 {
		samples = 8
	}
	if maxPages < 1 {
		maxPages = 1
	}
	d := &DeviceParams{
		PrTicks: make([]vtime.Ticks, maxPages+1),
		PwTicks: make([]vtime.Ticks, maxPages+1),
	}
	const regionPages = 1 << 16
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() int64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int64(rng % regionPages)
	}
	var now vtime.Ticks
	for l := 1; l <= maxPages; l++ {
		var rsum, wsum vtime.Ticks
		for s := 0; s < samples; s++ {
			off := next() * int64(pageSize)
			res := dev.SubmitOne(now, flashsim.Request{Op: flashsim.Read, Offset: off, Size: l * pageSize})
			rsum += res.Latency()
			now = res.Done
			res = dev.SubmitOne(now, flashsim.Request{Op: flashsim.Write, Offset: off, Size: l * pageSize})
			wsum += res.Latency()
			now = res.Done
		}
		d.PrTicks[l] = rsum / vtime.Ticks(samples)
		d.PwTicks[l] = wsum / vtime.Ticks(samples)
	}
	// Amortized psync costs: submit pioMax single-page requests at once
	// and divide the batch completion time by the batch size.
	if pioMax < 1 {
		pioMax = 64
	}
	var rTot, wTot vtime.Ticks
	for s := 0; s < samples; s++ {
		reqs := make([]flashsim.Request, pioMax)
		for i := range reqs {
			reqs[i] = flashsim.Request{Op: flashsim.Read, Offset: next() * int64(pageSize), Size: pageSize}
		}
		_, done := dev.Submit(now, reqs)
		rTot += (done - now) / vtime.Ticks(pioMax)
		now = done
		for i := range reqs {
			reqs[i].Op = flashsim.Write
		}
		_, done = dev.Submit(now, reqs)
		wTot += (done - now) / vtime.Ticks(pioMax)
		now = done
	}
	d.PrPsync = rTot / vtime.Ticks(samples)
	d.PwPsync = wTot / vtime.Ticks(samples)
	return d
}
