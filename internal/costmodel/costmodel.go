// Package costmodel implements the analytical cost models of the paper's
// Sections 3.2, 3.5 and the Appendix: the utility/cost node-size measure
// (eq. 3), the B+-tree average operation cost without (eq. 5) and with
// (eq. 6/11) a buffer pool, the PIO B-tree costs (eqs. 7-9), G(ℓ) (eq. 8),
// and the arg-min tuners for node size (S_opt), leaf size and OPQ size
// (L_opt, O_opt, eq. 10).
//
// Notation follows the paper's Table 1: H tree height, F max pointers per
// internal node, N inserted entries, U node utilization, F' = (F-1)·U
// effective fanout, Pr/Pw random page read/write latency, L leaf size in
// pages, Ri/Rs insert/search ratios, M buffer pool pages, O OPQ pages,
// P'r/P'w amortized per-page psync latencies.
package costmodel

import (
	"fmt"
	"math"

	"repro/internal/vtime"
)

// DeviceParams are the measured device characteristics the models consume.
// They come from the micro-benchmark the PIO B-tree runs when first built
// (Section 3.6) — see Calibrate in this package.
type DeviceParams struct {
	// PrTicks[s] is the random-read latency of an I/O of s pages
	// (s >= 1); PwTicks likewise for writes. Index 0 is unused.
	PrTicks []vtime.Ticks
	PwTicks []vtime.Ticks
	// PrPsync / PwPsync are P'r and P'w: amortized per-page response times
	// when PioMax pages are moved per psync call.
	PrPsync vtime.Ticks
	PwPsync vtime.Ticks
}

// Pr returns the read latency for a node of l pages.
func (d *DeviceParams) Pr(l int) vtime.Ticks {
	if l < 1 {
		l = 1
	}
	if l >= len(d.PrTicks) {
		// Extrapolate linearly from the largest measured size.
		last := len(d.PrTicks) - 1
		return d.PrTicks[last] + vtime.Ticks(l-last)*(d.PrTicks[last]-d.PrTicks[last-1])
	}
	return d.PrTicks[l]
}

// Pw returns the write latency for a node of l pages.
func (d *DeviceParams) Pw(l int) vtime.Ticks {
	if l < 1 {
		l = 1
	}
	if l >= len(d.PwTicks) {
		last := len(d.PwTicks) - 1
		return d.PwTicks[last] + vtime.Ticks(l-last)*(d.PwTicks[last]-d.PwTicks[last-1])
	}
	return d.PwTicks[l]
}

// TreeParams describe the index and workload.
type TreeParams struct {
	N  float64 // entries
	F  float64 // max pointers per internal node
	U  float64 // utilization (paper uses ~0.7 after bulk load)
	Ri float64 // insert ratio
	Rs float64 // search ratio
	M  float64 // buffer pool pages
	O  float64 // OPQ pages
	L  float64 // leaf pages
	// OPQEntriesPerPage converts O pages into OPQ entry capacity.
	OPQEntriesPerPage float64
}

// Fprime returns F' = (F-1)·U.
func (p TreeParams) Fprime() float64 { return (p.F - 1) * p.U }

// Height returns H = log2 N / log2 F' (eq. 4).
func Height(n, fprime float64) float64 {
	if n < 2 || fprime < 2 {
		return 1
	}
	return math.Log2(n) / math.Log2(fprime)
}

// UtilityCost is Graefe's utility/cost measure (eq. 3):
// log2(entriesPerPage) / accessCost. Larger is better.
func UtilityCost(entriesPerNode float64, accessCost vtime.Ticks) float64 {
	if entriesPerNode < 2 || accessCost <= 0 {
		return 0
	}
	return math.Log2(entriesPerNode) / float64(accessCost)
}

// CBtree is eq. (5): the average B+-tree operation cost without a buffer
// pool: (log2 N / log2 F')·Pr + Ri·Pw.
func CBtree(p TreeParams, pr, pw vtime.Ticks) float64 {
	h := Height(p.N, p.Fprime())
	return h*float64(pr) + p.Ri*float64(pw)
}

// Eta returns η = log_F'(N/M) - 1 (eq. 6), the non-buffered depth measure.
func Eta(n, m, fprime float64) float64 {
	if m <= 0 || fprime < 2 {
		return Height(n, fprime)
	}
	e := math.Log(n/m)/math.Log(fprime) - 1
	if e < 0 {
		return 0
	}
	return e
}

// CBtreeBuffered is eq. (6)/(11): with the buffer manager caching the top
// levels, ( ⌊η⌋ + (1 - 1/F'^(η%1)) )·Pr + Ri·Pw.
func CBtreeBuffered(p TreeParams, pr, pw vtime.Ticks) float64 {
	fp := p.Fprime()
	eta := Eta(p.N, p.M, fp)
	frac := eta - math.Floor(eta)
	nonBuffered := math.Floor(eta) + (1 - 1/math.Pow(fp, frac))
	return nonBuffered*float64(pr) + p.Ri*float64(pw)
}

// G is eq. (8): the average number of buffered update operations touching
// the same node at level ℓ (root = level H-1 here expressed by its depth
// argument): G(ℓ) = (O·F'/U) / (N / (F'^(H-ℓ)·L)), clamped to [1, bcnt].
func G(p TreeParams, level float64, bcnt float64) float64 {
	fp := p.Fprime()
	h := Height(p.N, fp)
	opqEntries := p.O * p.OPQEntriesPerPage
	nodesAtLevel := p.N / (math.Pow(fp, h-level) * math.Max(p.L, 1))
	if nodesAtLevel < 1 {
		nodesAtLevel = 1
	}
	g := opqEntries / nodesAtLevel
	if g < 1 {
		g = 1
	}
	if bcnt > 0 && g > bcnt {
		g = bcnt
	}
	return g
}

// CPio is eq. (7): the PIO B-tree average operation cost without a buffer
// pool. Search = (H-1)·Pr + Pr(L); Insert amortizes node reads by G(ℓ)
// and uses psync-amortized costs for the leaf level.
func CPio(p TreeParams, d *DeviceParams, bcnt float64) float64 {
	h := Height(p.N, p.Fprime())
	search := (h-1)*float64(d.Pr(1)) + float64(d.Pr(int(p.L)))
	var insert float64
	for l := 0.0; l <= h-2; l++ {
		insert += (1 / G(p, l, bcnt)) * float64(d.PrPsync)
	}
	insert += float64(d.PrPsync+d.PwPsync) / G(p, h-1, bcnt)
	return p.Rs*search + p.Ri*insert
}

// CPioBuffered is eq. (9): CPio with the buffer pool caching top levels;
// the OPQ's pages are deducted from the pool (M-O), and the leaf size
// divides the node population (η uses N/(L·(M-O))).
func CPioBuffered(p TreeParams, d *DeviceParams, bcnt float64) float64 {
	fp := p.Fprime()
	mEff := p.M - p.O
	if mEff < 1 {
		mEff = 1
	}
	eta := 0.0
	if arg := p.N / (math.Max(p.L, 1) * mEff); arg > 1 && fp >= 2 {
		eta = math.Log(arg)/math.Log(fp) - 1
		if eta < 0 {
			eta = 0
		}
	}
	frac := eta - math.Floor(eta)
	search := (math.Floor(eta)+(1-1/math.Pow(fp, frac)))*float64(d.Pr(1)) + float64(d.Pr(int(p.L)))

	h := Height(p.N, fp)
	var insert float64
	for l := math.Floor(eta); l <= h-2; l++ {
		insert += (1 / G(p, l, bcnt)) * float64(d.PrPsync)
	}
	// Partially buffered level correction (eq. 15 of the Appendix).
	if lvl := math.Log(mEff)/math.Log(fp) - 1; lvl > 0 {
		corr := (1 / math.Pow(fp, frac)) / G(p, lvl, bcnt)
		insert -= corr * float64(d.PrPsync)
		if insert < 0 {
			insert = 0
		}
	}
	insert += float64(d.PrPsync+d.PwPsync) / G(p, h-1, bcnt)
	return p.Rs*search + p.Ri*insert
}

// TuneResult is the outcome of the eq. (10) arg-min search.
type TuneResult struct {
	L    int     // optimal leaf pages (L_opt)
	O    int     // optimal OPQ pages (O_opt)
	Cost float64 // modelled average operation cost (ticks)
}

// TuneLeafOPQ evaluates C'_pio over the candidate grid and returns
// (L_opt, O_opt) := argmin C'_pio (eq. 10). maxL and maxO bound the sweep;
// p.L and p.O are ignored.
func TuneLeafOPQ(p TreeParams, d *DeviceParams, bcnt float64, maxL, maxO int) (TuneResult, error) {
	if maxL < 1 || maxO < 1 {
		return TuneResult{}, fmt.Errorf("costmodel: invalid sweep bounds L<=%d O<=%d", maxL, maxO)
	}
	best := TuneResult{Cost: math.Inf(1)}
	for l := 1; l <= maxL; l *= 2 {
		for o := 1; o <= maxO; o *= 2 {
			q := p
			q.L = float64(l)
			q.O = float64(o)
			c := CPioBuffered(q, d, bcnt)
			if c < best.Cost {
				best = TuneResult{L: l, O: o, Cost: c}
			}
		}
	}
	return best, nil
}

// ForestTuneResult is the eq.-(10) optimum extended to a sharded forest.
type ForestTuneResult struct {
	// Shards is the partition count the tuning was run for.
	Shards int
	// PerShard holds L_opt and the per-shard O_opt.
	PerShard TuneResult
	// GlobalO is the total OPQ page budget across the forest
	// (PerShard.O * Shards), the number handed to core.ForestConfig.
	GlobalO int
}

// TuneForest extends the eq.-(10) arg-min to a forest of identical
// shards: each shard indexes N/shards entries with M/shards buffer pages,
// so the per-shard optimum is the eq.-(10) search at the reduced scale,
// and the global OPQ budget is the per-shard optimum times the shard
// count. maxO bounds the GLOBAL budget; the per-shard sweep is bounded by
// maxO/shards (at least one page per shard).
func TuneForest(p TreeParams, d *DeviceParams, bcnt float64, maxL, maxO, shards int) (ForestTuneResult, error) {
	if shards < 1 {
		return ForestTuneResult{}, fmt.Errorf("costmodel: shards must be >= 1, got %d", shards)
	}
	q := p
	q.N = p.N / float64(shards)
	q.M = p.M / float64(shards)
	if q.M < 1 {
		q.M = 1
	}
	perShardO := maxO / shards
	if perShardO < 1 {
		perShardO = 1
	}
	res, err := TuneLeafOPQ(q, d, bcnt, maxL, perShardO)
	if err != nil {
		return ForestTuneResult{}, err
	}
	return ForestTuneResult{Shards: shards, PerShard: res, GlobalO: res.O * shards}, nil
}

// TuneNodeSize picks the B+-tree node size (in pages) minimizing the
// buffered cost (the utility/cost method extended to SSDs, Section 3.2.1):
// the candidate sizes are 1..maxPages (powers of two); entriesPerPage
// converts pages to F.
func TuneNodeSize(p TreeParams, d *DeviceParams, entriesPerPage float64, maxPages int) (int, error) {
	if maxPages < 1 {
		return 0, fmt.Errorf("costmodel: maxPages must be >= 1")
	}
	best, bestCost := 1, math.Inf(1)
	for s := 1; s <= maxPages; s *= 2 {
		q := p
		q.F = entriesPerPage * float64(s)
		// The pool holds M/s frames of s-page nodes.
		q.M = p.M / float64(s)
		if q.M < 1 {
			q.M = 1
		}
		cost := CBtreeBuffered(q, d.Pr(s), d.Pw(s))
		if cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best, nil
}
