package costmodel

import (
	"math"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/vtime"
)

func testParams() *DeviceParams {
	return Calibrate(flashsim.MustDevice(flashsim.P300()), 2048, 16, 64, 8)
}

func TestCalibrateMonotoneAndPositive(t *testing.T) {
	d := testParams()
	for l := 1; l <= 16; l++ {
		if d.Pr(l) <= 0 || d.Pw(l) <= 0 {
			t.Fatalf("non-positive latency at %d pages", l)
		}
		if l > 1 {
			if d.Pr(l) < d.Pr(l-1) {
				t.Fatalf("Pr not monotone at %d: %v < %v", l, d.Pr(l), d.Pr(l-1))
			}
			if d.Pw(l) < d.Pw(l-1) {
				t.Fatalf("Pw not monotone at %d", l)
			}
		}
	}
	// Package-level parallelism: doubling size must be sublinear.
	if d.Pr(2) >= 2*d.Pr(1) {
		t.Fatalf("Pr(2)=%v not sublinear vs Pr(1)=%v", d.Pr(2), d.Pr(1))
	}
	// Channel-level parallelism: amortized psync cost far below sync cost.
	if float64(d.PrPsync) > 0.5*float64(d.Pr(1)) {
		t.Fatalf("psync read amortization too weak: %v vs %v", d.PrPsync, d.Pr(1))
	}
	if float64(d.PwPsync) > 0.5*float64(d.Pw(1)) {
		t.Fatalf("psync write amortization too weak: %v vs %v", d.PwPsync, d.Pw(1))
	}
}

func TestPrExtrapolation(t *testing.T) {
	d := testParams()
	// Beyond the measured range extrapolation must keep growing.
	if d.Pr(32) <= d.Pr(16) {
		t.Fatal("extrapolated Pr not increasing")
	}
	if d.Pw(32) <= d.Pw(16) {
		t.Fatal("extrapolated Pw not increasing")
	}
	if d.Pr(0) != d.Pr(1) {
		t.Fatal("Pr(0) should clamp to Pr(1)")
	}
}

func TestHeight(t *testing.T) {
	if h := Height(1e9, 100); math.Abs(h-4.49) > 0.1 {
		t.Fatalf("Height(1e9,100) = %f", h)
	}
	if Height(1, 100) != 1 || Height(100, 1) != 1 {
		t.Fatal("degenerate heights wrong")
	}
}

func TestUtilityCost(t *testing.T) {
	if UtilityCost(128, 100) <= UtilityCost(128, 200) {
		t.Fatal("higher cost must lower utility")
	}
	if UtilityCost(256, 100) <= UtilityCost(128, 100) {
		t.Fatal("more entries must raise utility")
	}
	if UtilityCost(1, 100) != 0 || UtilityCost(128, 0) != 0 {
		t.Fatal("degenerate utility wrong")
	}
}

func TestCBtreeBufferedBelowUnbuffered(t *testing.T) {
	p := TreeParams{N: 1e6, F: 128, U: 0.7, Ri: 0.5, Rs: 0.5, M: 1024}
	pr, pw := vtime.Ticks(100*vtime.Microsecond), vtime.Ticks(300*vtime.Microsecond)
	if CBtreeBuffered(p, pr, pw) >= CBtree(p, pr, pw) {
		t.Fatal("buffering did not reduce modelled cost")
	}
	// More memory, lower cost.
	p2 := p
	p2.M = 16 * 1024
	if CBtreeBuffered(p2, pr, pw) >= CBtreeBuffered(p, pr, pw) {
		t.Fatal("more memory did not reduce cost")
	}
}

func TestEta(t *testing.T) {
	if Eta(1e6, 1e6, 100) != 0 {
		t.Fatal("eta should clamp at 0 when everything fits")
	}
	if Eta(1e9, 1e3, 100) <= Eta(1e9, 1e6, 100) {
		t.Fatal("less memory must raise eta")
	}
}

func TestGClamps(t *testing.T) {
	p := TreeParams{N: 1e6, F: 128, U: 0.7, O: 1, L: 1, OPQEntriesPerPage: 120}
	// Leaf level (deepest): many nodes -> G near 1.
	gLeaf := G(p, Height(p.N, p.Fprime())-1, 5000)
	if gLeaf < 1 {
		t.Fatalf("G < 1: %f", gLeaf)
	}
	// Root level: one node -> G = all OPQ entries, clamped by bcnt.
	gRoot := G(p, 0, 50)
	if gRoot > 50 {
		t.Fatalf("G not clamped by bcnt: %f", gRoot)
	}
	if gRoot <= gLeaf {
		t.Fatal("G must grow towards the root")
	}
}

func TestCPioInsertCheaperThanBtree(t *testing.T) {
	d := testParams()
	p := TreeParams{
		N: 1e6, F: 120, U: 0.7, Ri: 1, Rs: 0,
		M: 64, O: 4, L: 4, OPQEntriesPerPage: 120,
	}
	pio := CPio(p, d, 5000)
	bt := CBtree(p, d.Pr(1), d.Pw(1))
	if pio >= bt {
		t.Fatalf("modelled PIO insert %f not below B+-tree %f", pio, bt)
	}
	// And the buffered variants.
	pioB := CPioBuffered(p, d, 5000)
	btB := CBtreeBuffered(p, d.Pr(1), d.Pw(1))
	if pioB >= btB {
		t.Fatalf("modelled buffered PIO insert %f not below B+-tree %f", pioB, btB)
	}
}

func TestTuneLeafOPQ(t *testing.T) {
	d := testParams()
	base := TreeParams{N: 1e6, F: 120, U: 0.7, M: 64, OPQEntriesPerPage: 120}

	search := base
	search.Rs, search.Ri = 1, 0
	resS, err := TuneLeafOPQ(search, d, 5000, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	insert := base
	insert.Rs, insert.Ri = 0, 1
	resI, err := TuneLeafOPQ(insert, d, 5000, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Insert-heavy workloads must not get a smaller OPQ than search-only.
	if resI.O < resS.O {
		t.Fatalf("insert-heavy O=%d < search-only O=%d", resI.O, resS.O)
	}
	if resS.Cost <= 0 || resI.Cost <= 0 {
		t.Fatal("non-positive modelled cost")
	}
	if _, err := TuneLeafOPQ(base, d, 5000, 0, 0); err == nil {
		t.Fatal("invalid bounds accepted")
	}
}

func TestTuneNodeSize(t *testing.T) {
	d := testParams()
	p := TreeParams{N: 1e6, U: 0.7, Ri: 0.5, Rs: 0.5, M: 64, OPQEntriesPerPage: 120}
	pages, err := TuneNodeSize(p, d, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pages < 1 || pages > 8 {
		t.Fatalf("tuned node pages %d out of range", pages)
	}
	if _, err := TuneNodeSize(p, d, 128, 0); err == nil {
		t.Fatal("invalid maxPages accepted")
	}
}

func TestTuneForest(t *testing.T) {
	d := testParams()
	base := TreeParams{N: 1e6, F: 120, U: 0.7, M: 64, Ri: 0.5, Rs: 0.5, OPQEntriesPerPage: 120}
	single, err := TuneForest(base, d, 5000, 16, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := TuneLeafOPQ(base, d, 5000, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	// One shard must reduce to the plain eq.-(10) optimum.
	if single.PerShard != ref || single.GlobalO != ref.O {
		t.Fatalf("single-shard forest tune %+v != eq.10 %+v", single, ref)
	}
	for _, shards := range []int{2, 4, 8} {
		res, err := TuneForest(base, d, 5000, 16, 32, shards)
		if err != nil {
			t.Fatal(err)
		}
		if res.PerShard.O < 1 || res.PerShard.L < 1 {
			t.Fatalf("%d shards: degenerate per-shard params %+v", shards, res)
		}
		// The global budget stays within the sweep bound and every shard
		// keeps at least one page.
		if res.GlobalO < shards || res.GlobalO > 32 {
			t.Fatalf("%d shards: global OPQ budget %d out of range", shards, res.GlobalO)
		}
	}
	if _, err := TuneForest(base, d, 5000, 16, 32, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
}
