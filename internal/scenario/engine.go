package scenario

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/faultio"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/wal"
	"repro/internal/workload"
)

// pageSize and cpuPerNode mirror the bench package's experiment setup,
// so scenario numbers are comparable with the figure regenerations.
const (
	pageSize   = 2048
	cpuPerNode = 2 * vtime.Microsecond
	bcnt       = 5000
)

// Config is the engine scale: the knobs that vary per run (CI quick mode
// vs nightly long mode) while the Scenario shape stays fixed.
type Config struct {
	// Device is the simulated SSD profile (default: Iodrive).
	Device flashsim.Config
	// InitialEntries is the bulk-loaded forest size.
	InitialEntries int
	// OpsPerPhase is the operation budget of each phase.
	OpsPerPhase int
	// MemBytes is the global memory budget (OPQ + buffer pool).
	MemBytes int
	// Seed fixes all workload generation.
	Seed int64
	// Shards/Threads override the scenario's defaults when positive.
	Shards, Threads int
	// FaultProgram, when non-empty, overrides the scenario's Faults
	// program: a faultio program installed on the I/O plane after the
	// bulk load. A program without an explicit seed is seeded from Seed.
	FaultProgram string
}

// DefaultConfig scales like bench.DefaultScale.
func DefaultConfig() Config {
	return Config{
		Device:         flashsim.Iodrive(),
		InitialEntries: 200_000,
		OpsPerPhase:    20_000,
		MemBytes:       16 * 1024,
		Seed:           42,
	}
}

// QuickConfig scales like bench.QuickScale (CI smoke gates).
func QuickConfig() Config {
	return Config{
		Device:         flashsim.Iodrive(),
		InitialEntries: 20_000,
		OpsPerPhase:    2_000,
		MemBytes:       8 * 1024,
		Seed:           42,
	}
}

// PhaseResult is one phase's measured trajectory point.
type PhaseResult struct {
	Name string
	// Ops ran in the phase; Inserts of them were fresh-key inserts.
	Ops, Inserts int
	// Start/End bound the phase on the continuous virtual timeline.
	Start, End vtime.Ticks
	// KopsPerSec is the phase throughput (ops over makespan).
	KopsPerSec float64
	// MeanUS/P95US/P99US summarize per-op latency in microseconds.
	MeanUS, P95US, P99US float64
	// Migrations/MigratedKeys are the phase's committed AutoRebalance
	// moves and the keys they streamed.
	Migrations, MigratedKeys int64
	// Retunes counts applied eq.-(10) OPQ-budget changes;
	// OPQBudgetPages is the global budget in force at phase end.
	Retunes        int
	OPQBudgetPages int
	// Flushes and GangSubmits are the phase's flush-plane activity.
	Flushes, GangSubmits int64
	// GCStalls counts aging-triggered garbage collections hit.
	GCStalls int64
	// IORetries counts transient-fault I/O retries charged in the phase
	// (zero on a clean plane).
	IORetries int64
	// Rejected counts ops the forest refused in degraded mode
	// (ErrShardQuarantined): availability lost to a quarantined shard
	// between its failure and its heal or evacuation.
	Rejected int
	// HealProbes/AutoHeals are the phase's auto-heal prober activity:
	// probe I/Os issued against quarantined shards and successful
	// re-admissions.
	HealProbes, AutoHeals int64
	// EvacuatedChunks counts evacuation chunks streamed off quarantined
	// shards during the phase.
	EvacuatedChunks int64
	// WatchdogTimeouts counts stuck-I/O watchdog firings (hanging ops
	// abandoned at their vtime deadline) in the phase.
	WatchdogTimeouts int64
	// RedoneEntries/RecoverMS report the crash-restart replay (zero for
	// phases without CrashRestart).
	RedoneEntries int64
	RecoverMS     float64
}

// Result is one scenario run.
type Result struct {
	Scenario string
	Device   string
	Shards   int
	Threads  int
	Phases   []PhaseResult
	// ExpectedKeys/FinalKeys cross-check durability: bulk-loaded plus
	// every insert issued must equal the forest's final count.
	ExpectedKeys, FinalKeys int64
	// RoutingEpoch/TotalMigrations/TotalMigratedKeys summarize how much
	// the forest adapted over the run.
	RoutingEpoch                       uint64
	TotalMigrations, TotalMigratedKeys int64
	// TunedL/TunedO are the last eq.-(10) recommendation observed.
	TunedL, TunedO int
	// FaultProgram is the fault program the run installed ("" for a
	// clean plane); IORetries/IORetriesExhausted aggregate the transient
	// retry activity it caused. A run that ends with a shard still
	// quarantined fails outright, like one that lost a key.
	FaultProgram                  string
	IORetries, IORetriesExhausted int64
	// Self-healing totals: probe I/Os against quarantined shards,
	// successful auto-heals, committed quarantine evacuations and the
	// chunks they streamed, and stuck-I/O watchdog firings.
	HealProbes, AutoHeals        int64
	Evacuations, EvacuatedChunks int64
	WatchdogTimeouts             int64
	// Rejected is the total count of ops refused in degraded mode.
	Rejected int
	// LostUncommitted is ExpectedKeys minus FinalKeys when a permanent
	// device loss was evacuated: inserts acknowledged into a shard's OPQ
	// whose redo records were still in the WAL's unforced tail when the
	// device died were never committed, exactly like unsynced writes in a
	// crash. Bounded by the OPQ budget; zero on every run without an
	// evacuation.
	LostUncommitted int64
	// End is the scenario makespan.
	End vtime.Ticks
}

// engine is one scenario run's mutable state.
type engine struct {
	sc      Scenario
	cfg     Config
	shards  int
	threads int

	dev     *flashsim.Device
	fr      *core.Forest
	recs    []kv.Record
	stripes []*stripeState
	faults  string // resolved fault program ("" = clean plane)

	expected int64 // live keys the run has committed to

	// Adaptation state.
	dparams          *costmodel.DeviceParams
	leafSegs         int
	appliedO         int // global OPQ pages currently installed
	tunedL, tunedO   int
	insertsSinceTune int64
	opsSinceTune     int64
}

// Run executes the scenario at the given scale and returns its measured
// trajectory. Runs are bit-deterministic: same scenario, same Config,
// same Result.
func Run(sc Scenario, cfg Config) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if cfg.Device.Name == "" {
		cfg.Device = flashsim.Iodrive()
	}
	if cfg.InitialEntries < sc.Stripes*16 {
		return nil, fmt.Errorf("scenario %s: %d entries too few for %d stripes", sc.Name, cfg.InitialEntries, sc.Stripes)
	}
	if cfg.OpsPerPhase < 1 {
		return nil, fmt.Errorf("scenario %s: OpsPerPhase must be positive, got %d", sc.Name, cfg.OpsPerPhase)
	}
	e, err := build(sc, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Scenario: sc.Name,
		Device:   cfg.Device.Name,
		Shards:   e.shards,
		Threads:  e.threads,
	}
	now := vtime.Ticks(0)
	for pi, ph := range sc.Phases {
		pr := PhaseResult{Name: ph.Name, Start: now}
		if ph.Aging != nil {
			// Age the live device, then recalibrate the cost model's view
			// of it so the next retune sees the degraded write path.
			e.dev.SetAging(*ph.Aging)
			e.calibrate(*ph.Aging)
		}
		if ph.CrashRestart {
			if now, err = e.crashRestart(now, &pr); err != nil {
				return nil, fmt.Errorf("scenario %s: phase %s: %w", sc.Name, ph.Name, err)
			}
		}
		ops, inserts := phaseOps(ph, e.stripes, e.recs, cfg.OpsPerPhase, cfg.Seed+int64(pi)*1_000_003)
		preStats := e.fr.Stats()
		preDev := e.dev.Stats()
		preRetunes := pr.Retunes
		end, lat, retunes, rejected, rejectedInserts, err := e.runPhase(now, ops)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: phase %s: %w", sc.Name, ph.Name, err)
		}
		e.expected += int64(inserts) - int64(rejectedInserts)
		postStats := e.fr.Stats()
		postDev := e.dev.Stats()

		pr.Ops = len(ops)
		pr.Inserts = inserts - rejectedInserts
		pr.Rejected = rejected
		pr.End = end
		elapsed := end - now
		if elapsed > 0 {
			pr.KopsPerSec = float64(len(ops)) / elapsed.Seconds() / 1e3
		}
		pr.MeanUS, pr.P95US, pr.P99US = latencySummary(lat)
		pr.Migrations = postStats.Migrations - preStats.Migrations
		pr.MigratedKeys = postStats.MigratedKeys - preStats.MigratedKeys
		pr.Retunes = preRetunes + retunes
		pr.OPQBudgetPages = e.appliedO
		pr.Flushes = postStats.Tree.Flushes - preStats.Tree.Flushes
		pr.GangSubmits = postStats.GangSubmits - preStats.GangSubmits
		pr.GCStalls = postDev.GCStalls - preDev.GCStalls
		pr.IORetries = postStats.IORetries - preStats.IORetries
		pr.HealProbes = postStats.HealProbes - preStats.HealProbes
		pr.AutoHeals = postStats.AutoHeals - preStats.AutoHeals
		pr.EvacuatedChunks = postStats.EvacuatedChunks - preStats.EvacuatedChunks
		pr.WatchdogTimeouts = postStats.WatchdogTimeouts - preStats.WatchdogTimeouts
		res.Phases = append(res.Phases, pr)
		res.Rejected += rejected
		now = end
	}
	if err := e.fr.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("scenario %s: forest invalid after run: %w", sc.Name, err)
	}
	st := e.fr.Stats()
	res.ExpectedKeys = e.expected
	res.FinalKeys = e.fr.Count()
	if st.Evacuations > 0 {
		// A permanent device loss was evacuated: acknowledged inserts whose
		// redo records sat in the dead WAL's unforced tail were never
		// committed and are legitimately gone — like unsynced writes in a
		// crash — but the loss must stay bounded by the OPQ budget (one
		// flush round's worth of buffered entries per incident), and no
		// COMMITTED key may be missing.
		maxLoss := int64((e.appliedO + e.shards) * (pageSize / kv.EntrySize))
		res.LostUncommitted = res.ExpectedKeys - res.FinalKeys
		if res.LostUncommitted < 0 || res.LostUncommitted > maxLoss*st.Evacuations {
			return nil, fmt.Errorf("scenario %s: lost keys beyond the uncommitted tail: forest holds %d, expected %d (tolerance %d over %d evacuations)",
				sc.Name, res.FinalKeys, res.ExpectedKeys, maxLoss*st.Evacuations, st.Evacuations)
		}
	} else if res.FinalKeys != res.ExpectedKeys {
		return nil, fmt.Errorf("scenario %s: lost keys: forest holds %d, expected %d", sc.Name, res.FinalKeys, res.ExpectedKeys)
	}
	res.RoutingEpoch = st.RoutingEpoch
	res.TotalMigrations = st.Migrations
	res.TotalMigratedKeys = st.MigratedKeys
	res.TunedL, res.TunedO = e.tunedL, e.tunedO
	res.FaultProgram = e.faults
	res.IORetries = st.IORetries
	res.IORetriesExhausted = st.IORetriesExhausted
	res.HealProbes = st.HealProbes
	res.AutoHeals = st.AutoHeals
	res.Evacuations = st.Evacuations
	res.EvacuatedChunks = st.EvacuatedChunks
	res.WatchdogTimeouts = st.WatchdogTimeouts
	if st.QuarantinedShards > 0 {
		return nil, fmt.Errorf("scenario %s: run ended with %d shards quarantined", sc.Name, st.QuarantinedShards)
	}
	res.End = now
	return res, nil
}

// build bulk-loads a WAL-attached, range-partitioned forest on a fresh
// simulated device and initializes the adaptation state with an initial
// eq.-(10) tune for the first phase's traffic mix.
func build(sc Scenario, cfg Config) (*engine, error) {
	e := &engine{sc: sc, cfg: cfg, shards: sc.Shards, threads: sc.Threads}
	if cfg.Shards > 0 {
		e.shards = cfg.Shards
	}
	if e.shards <= 0 {
		e.shards = 4
	}
	if cfg.Threads > 0 {
		e.threads = cfg.Threads
	}
	if e.threads <= 0 {
		e.threads = 8
	}
	n := cfg.InitialEntries

	// Initial tune: calibrate a throwaway device instance (probing the
	// live one would disturb its reservation timelines), then run the
	// eq.-(10) arg-min for the first phase's weighted insert ratio.
	e.calibrate(flashsim.Aging{})
	ri := phaseInsertRatio(sc.Phases[0])
	e.leafSegs = 4
	e.appliedO = 1
	if res, err := costmodel.TuneForest(e.tuneParams(float64(n), ri), e.dparams, bcnt, 16, e.maxO(), e.shards); err == nil {
		e.leafSegs = res.PerShard.L
		e.appliedO = res.GlobalO
		e.tunedL, e.tunedO = res.PerShard.L, res.GlobalO
	}

	e.dev = flashsim.MustDevice(cfg.Device)
	space := ssdio.NewSpace(e.dev)
	// Arm the stuck-I/O watchdog at the forest's (default) retry-policy
	// deadline, so a hanging device trips a transient timeout into the
	// retry/quarantine machine instead of stretching an op's latency.
	space.SetStuckTimeout(core.RetryPolicy{}.StuckDeadline())
	pfs := make([]*pagefile.PageFile, e.shards)
	logs := make([]*wal.Log, e.shards)
	perShardBytes := int64(n)*64/int64(e.shards) + 1<<20
	for i := range pfs {
		f, err := space.Create(fmt.Sprintf("shard%d", i), perShardBytes)
		if err != nil {
			return nil, err
		}
		if pfs[i], err = pagefile.New(f, pageSize); err != nil {
			return nil, err
		}
		wf, err := space.Create(fmt.Sprintf("wal%d", i), 16<<20)
		if err != nil {
			return nil, err
		}
		if logs[i], err = wal.NewLog(wf, pageSize); err != nil {
			return nil, err
		}
	}
	// Even range bounds over the loaded key domain: tenants address
	// stripes of it, shards each own an equal slice initially, and the
	// rebalancer reshapes ownership as the scenario's skew emerges.
	bounds := make([]kv.Key, e.shards-1)
	for i := range bounds {
		bounds[i] = kv.Key((i+1)*n/e.shards) * 16
	}
	leaves := n / (core.Config{PageSize: pageSize, LeafSegs: e.leafSegs}).LeafEntryEstimate()
	bufBytes := cfg.MemBytes - e.appliedO*pageSize - leaves
	if bufBytes < e.shards*pageSize {
		bufBytes = e.shards * pageSize
	}
	fr, err := core.NewForest(pfs, core.ForestConfig{
		Partitioner: core.RangePartitioner{Bounds: bounds},
		Shard: core.Config{
			PageSize:    pageSize,
			LeafSegs:    e.leafSegs,
			OPQPages:    e.appliedO,
			PioMax:      64,
			SPeriod:     5000,
			BCnt:        bcnt,
			BufferBytes: bufBytes,
			CPUPerNode:  cpuPerNode,
		},
		Logs:       logs,
		Heal:       sc.Heal,
		Evacuation: sc.Evacuation,
	})
	if err != nil {
		return nil, err
	}
	e.recs = make([]kv.Record, n)
	for i := range e.recs {
		e.recs[i] = kv.Record{Key: uint64(i)*16 + 8, Value: uint64(i)}
	}
	if err := fr.BulkLoad(e.recs); err != nil {
		return nil, err
	}
	// Faults go live only now: the bulk load and file creation above ran
	// on a clean plane, so an injected program perturbs serving, not
	// setup.
	e.faults = cfg.FaultProgram
	if e.faults == "" {
		e.faults = sc.Faults
	}
	if e.faults != "" {
		prog, err := faultio.Parse(e.faults)
		if err != nil {
			return nil, err
		}
		if prog.Seed == 0 {
			prog.Seed = uint64(cfg.Seed)
		}
		space.SetInjector(faultio.New(prog))
	}
	e.fr = fr
	e.expected = int64(n)
	e.stripes = make([]*stripeState, sc.Stripes)
	for i := range e.stripes {
		e.stripes[i] = &stripeState{
			lo:        i * n / sc.Stripes,
			hi:        (i + 1) * n / sc.Stripes,
			nextFresh: make(map[int]uint64),
		}
	}
	return e, nil
}

// calibrate measures the cost model's device parameters on a throwaway
// device instance carrying the given aging profile.
func (e *engine) calibrate(a flashsim.Aging) {
	probe := flashsim.MustDevice(e.cfg.Device)
	probe.SetAging(a)
	e.dparams = costmodel.Calibrate(probe, pageSize, 16, 64, 8)
}

func (e *engine) tuneParams(n, insertRatio float64) costmodel.TreeParams {
	return costmodel.TreeParams{
		N:                 n,
		F:                 float64(pageSize / kv.RecordSize),
		U:                 0.7,
		Ri:                insertRatio,
		Rs:                1 - insertRatio,
		M:                 float64(e.cfg.MemBytes / pageSize),
		OPQEntriesPerPage: float64(pageSize / kv.EntrySize),
	}
}

func (e *engine) maxO() int {
	maxO := e.cfg.MemBytes/pageSize - 1
	if maxO < e.shards {
		maxO = e.shards
	}
	return maxO
}

// phaseInsertRatio is the phase's weighted average insert ratio.
func phaseInsertRatio(ph Phase) float64 {
	total, ins := 0.0, 0.0
	for _, tn := range ph.Tenants {
		total += tn.Weight
		ins += tn.Weight * tn.InsertRatio
	}
	if total == 0 {
		return 0
	}
	return ins / total
}

// crashRestart drives the mid-scenario failure: a group Sync makes every
// buffered operation's redo record durable (the commit point), the crash
// drops all volatile state, and recovery replays the WALs. Losing any
// committed key is a hard scenario failure, not a metric.
func (e *engine) crashRestart(now vtime.Ticks, pr *PhaseResult) (vtime.Ticks, error) {
	now, err := e.fr.Sync(now)
	if err != nil {
		return now, err
	}
	e.fr.Crash()
	rep, recDone, err := e.fr.Recover(now)
	if err != nil {
		return recDone, err
	}
	pr.RedoneEntries = int64(rep.Total.RedoneEntries)
	pr.RecoverMS = (recDone - now).Millis()
	if got := e.fr.Count(); got != e.expected {
		return recDone, fmt.Errorf("crash-restart lost keys: forest holds %d, expected %d", got, e.expected)
	}
	// The crash dropped the volatile OPQ resize; reinstall the budget the
	// adaptation loop had chosen.
	if recDone, _, _, err = e.fr.ApplyOPQBudget(recDone, e.appliedO); err != nil {
		return recDone, err
	}
	return recDone, nil
}

// runPhase replays the phase's ops round-robin over the workload threads
// plus, when configured, one adaptation thread polling AutoRebalance and
// the eq.-(10) retuner. Returns the phase end time, the per-op latency
// samples, the number of applied retunes, and the degraded-mode
// rejection counts (all ops, and the inserts among them).
func (e *engine) runPhase(base vtime.Ticks, ops []workload.Op) (vtime.Ticks, []vtime.Ticks, int, int, int, error) {
	threads := e.threads
	active := threads
	var opErr error
	rejected, rejectedInserts := 0, 0
	lat := make([]vtime.Ticks, 0, len(ops))
	workers := make([]*vtime.Thread, 0, threads)
	ths := make([]*vtime.Thread, 0, threads+1)
	for i := 0; i < threads; i++ {
		tid := i
		step := 0
		ths = append(ths, &vtime.Thread{ID: tid, Step: func(t *vtime.Thread) bool {
			idx := step*threads + tid
			step++
			if idx >= len(ops) || opErr != nil {
				active--
				return false
			}
			op := ops[idx]
			start := vtime.Max(t.Clock.Now(), base)
			var done vtime.Ticks
			var err error
			if op.Kind == workload.OpInsert {
				done, err = e.fr.Insert(start, op.Rec)
			} else {
				_, _, done, err = e.fr.Search(start, op.Rec.Key)
			}
			if err != nil {
				if errors.Is(err, core.ErrShardQuarantined) {
					// Degraded mode is availability loss, not scenario
					// failure: the shard's writes are refused between its
					// quarantine and its heal or evacuation. Count the
					// rejection and keep the client running — the baseline
					// gates how much rejection a scenario may see.
					rejected++
					if op.Kind == workload.OpInsert {
						rejectedInserts++
					}
					t.Clock.AdvanceTo(vtime.Max(done, start))
					return true
				}
				opErr = err
				active--
				return false
			}
			lat = append(lat, done-start)
			e.opsSinceTune++
			if op.Kind == workload.OpInsert {
				e.insertsSinceTune++
			}
			t.Clock.AdvanceTo(done)
			return true
		}})
	}
	workers = append(workers, ths...)
	retunes := 0
	if e.sc.Adapt.Interval > 0 {
		ths = append(ths, &vtime.Thread{ID: threads, Step: func(t *vtime.Thread) bool {
			if active == 0 || opErr != nil {
				return false
			}
			now := vtime.Max(t.Clock.Now(), base) + e.sc.Adapt.Interval
			next, n, err := e.adaptTick(now)
			if err != nil {
				opErr = err
				return false
			}
			retunes += n
			t.Clock.AdvanceTo(vtime.Max(now, next))
			return true
		}})
	}
	s := vtime.NewScheduler(3*vtime.Microsecond, ths...)
	s.Run()
	// The phase ends when the WORKERS end: the adaptation thread's clock
	// parks one idle poll interval past the last op, and counting that
	// idle tail would understate every phase's throughput.
	end := base
	for _, t := range workers {
		end = vtime.Max(end, t.Clock.Now())
	}
	if opErr != nil {
		return end, nil, retunes, rejected, rejectedInserts, opErr
	}
	return end, lat, retunes, rejected, rejectedInserts, nil
}

// defaultDrainBudget bounds the adaptation thread's per-poll migration
// drain: a stuck (or fault-injected) migration yields back to the poll
// loop after this much charged vtime instead of freezing it, and the
// next poll resumes the drain where it stopped. Scenarios override it
// via Adapt.Policy.DrainBudget (negative = unbounded).
const defaultDrainBudget = 20 * vtime.Millisecond

// adaptTick is one adaptation poll: let AutoRebalance act on the shard
// load deltas, then re-run the eq.-(10) tuner on the observed insert
// ratio and live entry count and apply a changed OPQ budget to the
// forest. Returns the time the adaptation work finished and the number
// of applied retunes (0 or 1).
func (e *engine) adaptTick(now vtime.Ticks) (vtime.Ticks, int, error) {
	pol := e.sc.Adapt.Policy
	if pol.DrainBudget == 0 {
		pol.DrainBudget = defaultDrainBudget
	}
	moved, _, _, done, err := e.fr.AutoRebalance(now, pol)
	if err != nil {
		return done, 0, err
	}
	if moved {
		now = vtime.Max(now, done)
	}
	if !e.sc.Adapt.Retune || e.opsSinceTune < 256 {
		return now, 0, nil
	}
	ri := float64(e.insertsSinceTune) / float64(e.opsSinceTune)
	e.insertsSinceTune, e.opsSinceTune = 0, 0
	res, err := costmodel.TuneForest(e.tuneParams(float64(e.fr.Count()), ri), e.dparams, bcnt, 16, e.maxO(), e.shards)
	if err != nil {
		return now, 0, nil // an unusable sweep just skips this poll
	}
	e.tunedL, e.tunedO = res.PerShard.L, res.GlobalO
	if res.GlobalO == e.appliedO {
		return now, 0, nil
	}
	done, _, _, err = e.fr.ApplyOPQBudget(now, res.GlobalO)
	if err != nil {
		return done, 0, err
	}
	e.appliedO = res.GlobalO
	return vtime.Max(now, done), 1, nil
}

// latencySummary reduces latency samples to mean/p95/p99 microseconds.
func latencySummary(lat []vtime.Ticks) (mean, p95, p99 float64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sorted := make([]vtime.Ticks, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum vtime.Ticks
	for _, l := range sorted {
		sum += l
	}
	pick := func(q float64) float64 {
		i := int(q*float64(len(sorted))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i].Micros()
	}
	return (sum / vtime.Ticks(len(sorted))).Micros(), pick(0.95), pick(0.99)
}
