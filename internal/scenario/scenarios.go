package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flashsim"
	"repro/internal/vtime"
)

// Named returns the scenario registered under name.
func Named(name string) (Scenario, error) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q", name)
}

// All returns the named scenario suite in a fixed order.
func All() []Scenario {
	return []Scenario{Diurnal(), SkewDrift(), BurstCrash(), Chaos(), Blackout()}
}

// adaptEvery is the default adaptation poll period: long enough that a
// poll sees a meaningful op-count delta, short enough that every phase
// gets several polls even at the CI quick scale.
const adaptEvery = 4 * vtime.Millisecond

// Diurnal is a day in four phases over four tenants: traffic weight
// rotates from the batch loader (night) through the interactive apps
// (morning, peak) to analytics (evening), and the insert-heavy mix of
// the night flips to search-heavy at peak. The adaptation loop must
// chase both the load rotation (AutoRebalance) and the mix flip (the
// eq.-(10) retuner shrinks the OPQ budget as the insert ratio drops).
func Diurnal() Scenario {
	// The four tenants; weights vary per phase, character stays fixed.
	loader := func(w float64) Tenant {
		return Tenant{Name: "loader", Stripe: 0, Weight: w, InsertRatio: 0.9}
	}
	app1 := func(w float64) Tenant {
		return Tenant{Name: "app1", Stripe: 1, Weight: w, InsertRatio: 0.2, ZipfS: 1.2}
	}
	app2 := func(w float64) Tenant {
		return Tenant{Name: "app2", Stripe: 2, Weight: w, InsertRatio: 0.3, ZipfS: 1.1}
	}
	analytics := func(w float64) Tenant {
		return Tenant{Name: "analytics", Stripe: 3, Weight: w, InsertRatio: 0.05}
	}
	return Scenario{
		Name:    "diurnal",
		Title:   "Diurnal four-tenant load rotation with adaptive retuning",
		Stripes: 4,
		Adapt: Adapt{
			Interval: adaptEvery,
			Policy:   core.RebalancePolicy{MinOps: 100, HotFactor: 1.5},
			Retune:   true,
		},
		Phases: []Phase{
			{Name: "night", Tenants: []Tenant{loader(8), app1(1), app2(1), analytics(2)}},
			{Name: "morning", Tenants: []Tenant{loader(1), app1(5), app2(3), analytics(1)}},
			{Name: "peak", Tenants: []Tenant{loader(0.5), app1(6), app2(6), analytics(0.5)}},
			{Name: "evening", Tenants: []Tenant{loader(2), app1(2), app2(2), analytics(6)}},
		},
	}
}

// SkewDrift keeps the mix constant but walks a dominant tenant's hotspot
// across the key domain: the heavy tenant sits on stripe 0, then 2, then
// 5. Each move strands the routing balance AutoRebalance just built, so
// the rebalancer must chase the hotspot with fresh migrations — the
// per-phase Migrations metric is the point of the scenario.
func SkewDrift() Scenario {
	heavy := func(stripe int) Tenant {
		return Tenant{Name: "heavy", Stripe: stripe, Weight: 8, InsertRatio: 0.5, ZipfS: 1.3}
	}
	bg := func(stripe int) Tenant {
		return Tenant{Name: "bg", Stripe: stripe, Weight: 1, InsertRatio: 0.2}
	}
	return Scenario{
		Name:    "skewdrift",
		Title:   "Dominant-tenant hotspot drifting across the key domain",
		Stripes: 6,
		Adapt: Adapt{
			// Skew throttles throughput, so a poll window must be wider
			// than adaptEvery to accumulate a meaningful op delta.
			Interval: 10 * vtime.Millisecond,
			Policy:   core.RebalancePolicy{MinOps: 150, HotFactor: 1.6},
		},
		Phases: []Phase{
			{Name: "low", Tenants: []Tenant{heavy(0), bg(3)}},
			{Name: "mid", Tenants: []Tenant{heavy(2), bg(5)}},
			{Name: "high", Tenants: []Tenant{heavy(5), bg(1)}},
		},
	}
}

// Chaos replays the diurnal rotation on a fault-injected I/O plane and
// crash-restarts before the final phase, so recovery itself replays
// through the faulty plane. The seeded program transiently fails about
// one WAL force or psync batch in 500 and one gang member in 250 — far
// below the retry budget's exhaustion threshold — so every fault must
// be absorbed by retry/backoff: the run completes with zero quarantined
// shards and no lost key, and the gated metrics price the retry
// overhead.
func Chaos() Scenario {
	sc := Diurnal()
	sc.Name = "chaos"
	sc.Title = "Diurnal rotation under a transient-fault I/O plane"
	sc.Faults = "seed=7; transient call=sync p=0.002; transient call=psync p=0.002; transient call=gang p=0.004"
	sc.Phases[len(sc.Phases)-1].CrashRestart = true
	return sc
}

// Blackout is the self-healing gauntlet: the diurnal rotation loses one
// shard's WAL device permanently mid-run (writes to it fail forever,
// reads keep working — a wear-out or controller fault, not a crash). The
// first failed group-commit force quarantines the shard; auto-heal
// probes reach the device but the force-tail re-admission test keeps
// failing, so the evacuation deadline trips and the adaptation loop
// migrates the shard's committed range to healthy shards. The run must
// end with the dead shard evacuated (capacity lost, availability
// restored): writes rejected during the degraded window are counted and
// gated, every committed key is served, and the final phases' gated
// throughput/latency show the SLA recovering on the surviving shards.
func Blackout() Scenario {
	sc := Diurnal()
	sc.Name = "blackout"
	sc.Title = "Permanent WAL loss mid-diurnal: quarantine, auto-evacuation, SLA recovery"
	// Kill shard 2's WAL early in the run. Only the log file dies: the
	// quarantine rollback stays in-memory (no durable FlushStart means no
	// undo writes), so the shard keeps serving reads until evacuated.
	sc.Faults = "readonly file=wal2 from=8ms"
	// A short evacuation deadline (vs the 25ms core default) makes the
	// scenario give up on the dead device while the quick CI scale still
	// has most of the run left to measure the recovered SLA.
	sc.Evacuation = core.EvacuationPolicy{After: 5 * vtime.Millisecond}
	return sc
}

// BurstCrash is the durability gauntlet: cold uniform reads, then a
// write burst concentrated on one stripe, then the same burst on an aged
// device (slower programs, periodic GC stalls — the retuner recalibrates
// and re-balances the OPQ budget against the degraded write path), and
// finally a crash-restart with mixed traffic on the recovered forest.
// The engine fails the scenario outright if recovery loses a key.
func BurstCrash() Scenario {
	reader := Tenant{Name: "reader", Stripe: 0, Weight: 1, InsertRatio: 0}
	burst := Tenant{Name: "burster", Stripe: 1, Weight: 9, InsertRatio: 0.95}
	return Scenario{
		Name:    "burstcrash",
		Title:   "Write burst over cold reads, device aging, crash-restart",
		Stripes: 2,
		Adapt: Adapt{
			Interval: adaptEvery,
			Policy:   core.RebalancePolicy{MinOps: 100, HotFactor: 1.5},
			Retune:   true,
		},
		Phases: []Phase{
			{Name: "cold", Tenants: []Tenant{reader, {Name: "burster", Stripe: 1, Weight: 1, InsertRatio: 0.1}}},
			{Name: "burst", Tenants: []Tenant{reader, burst}},
			{
				Name:    "aged",
				Tenants: []Tenant{reader, burst},
				Aging: &flashsim.Aging{
					ProgramFactor: 2.5,
					GCEvery:       4,
					GCStall:       1 * vtime.Millisecond,
				},
			},
			{
				Name:         "restart",
				CrashRestart: true,
				Tenants: []Tenant{
					{Name: "reader", Stripe: 0, Weight: 2, InsertRatio: 0},
					{Name: "burster", Stripe: 1, Weight: 3, InsertRatio: 0.4},
				},
			},
		},
	}
}
