package scenario

import (
	"reflect"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/vtime"
	"repro/internal/workload"
)

func tinyConfig() Config {
	return Config{
		Device:         flashsim.Iodrive(),
		InitialEntries: 8_000,
		OpsPerPhase:    800,
		MemBytes:       8 * 1024,
		Seed:           42,
		Shards:         4,
		Threads:        4,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"no name", Scenario{Stripes: 1, Phases: []Phase{{Name: "p", Tenants: []Tenant{{Weight: 1}}}}}},
		{"no stripes", Scenario{Name: "x", Phases: []Phase{{Name: "p", Tenants: []Tenant{{Weight: 1}}}}}},
		{"no phases", Scenario{Name: "x", Stripes: 1}},
		{"unnamed phase", Scenario{Name: "x", Stripes: 1, Phases: []Phase{{Tenants: []Tenant{{Weight: 1}}}}}},
		{"dup phase", Scenario{Name: "x", Stripes: 1, Phases: []Phase{
			{Name: "p", Tenants: []Tenant{{Weight: 1}}},
			{Name: "p", Tenants: []Tenant{{Weight: 1}}},
		}}},
		{"no tenants", Scenario{Name: "x", Stripes: 1, Phases: []Phase{{Name: "p"}}}},
		{"stripe out of range", Scenario{Name: "x", Stripes: 1, Phases: []Phase{
			{Name: "p", Tenants: []Tenant{{Stripe: 1, Weight: 1}}},
		}}},
		{"bad ratio", Scenario{Name: "x", Stripes: 1, Phases: []Phase{
			{Name: "p", Tenants: []Tenant{{Weight: 1, InsertRatio: 1.5}}},
		}}},
		{"zero weights", Scenario{Name: "x", Stripes: 1, Phases: []Phase{
			{Name: "p", Tenants: []Tenant{{Weight: 0}}},
		}}},
	}
	for _, c := range cases {
		if err := c.sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", c.name)
		}
	}
	for _, sc := range All() {
		if err := sc.Validate(); err != nil {
			t.Errorf("named scenario %s invalid: %v", sc.Name, err)
		}
	}
}

func TestNamed(t *testing.T) {
	sc, err := Named("diurnal")
	if err != nil || sc.Name != "diurnal" {
		t.Fatalf("Named(diurnal) = %v, %v", sc.Name, err)
	}
	if _, err := Named("nope"); err == nil {
		t.Fatal("Named accepted an unknown scenario")
	}
}

// TestPhaseOpsFreshKeys checks the generator never re-inserts a loaded or
// previously drawn key, within or across phases.
func TestPhaseOpsFreshKeys(t *testing.T) {
	sc := Diurnal()
	n := 4_000
	recs := makeRecords(n)
	stripes := makeStripes(n, sc.Stripes)
	seen := make(map[uint64]bool)
	for pi, ph := range sc.Phases {
		ops, inserts := phaseOps(ph, stripes, recs, 1_000, 42+int64(pi)*1_000_003)
		if len(ops) != 1_000 {
			t.Fatalf("phase %s: got %d ops", ph.Name, len(ops))
		}
		gotInserts := 0
		for _, op := range ops {
			if op.Kind != workload.OpInsert {
				continue
			}
			gotInserts++
			if op.Rec.Key%16 == 8 {
				t.Fatalf("phase %s: insert collides with loaded key %d", ph.Name, op.Rec.Key)
			}
			if seen[op.Rec.Key] {
				t.Fatalf("phase %s: duplicate fresh key %d", ph.Name, op.Rec.Key)
			}
			seen[op.Rec.Key] = true
		}
		if gotInserts != inserts {
			t.Fatalf("phase %s: reported %d inserts, counted %d", ph.Name, inserts, gotInserts)
		}
	}
}

func makeRecords(n int) []kv.Record {
	recs := make([]kv.Record, n)
	for i := range recs {
		recs[i] = kv.Record{Key: uint64(i)*16 + 8, Value: uint64(i)}
	}
	return recs
}

func makeStripes(n, stripes int) []*stripeState {
	out := make([]*stripeState, stripes)
	for i := range out {
		out[i] = &stripeState{
			lo:        i * n / stripes,
			hi:        (i + 1) * n / stripes,
			nextFresh: make(map[int]uint64),
		}
	}
	return out
}

func TestRunDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, err := Run(SkewDrift(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(SkewDrift(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunDiurnalAdapts(t *testing.T) {
	res, err := Run(Diurnal(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("got %d phases", len(res.Phases))
	}
	prev := vtime.Ticks(0)
	for _, pr := range res.Phases {
		if pr.Start != prev {
			t.Fatalf("phase %s starts at %v, previous ended at %v: timeline not continuous", pr.Name, pr.Start, prev)
		}
		if pr.End < pr.Start || pr.Ops == 0 || pr.KopsPerSec <= 0 {
			t.Fatalf("phase %s malformed: %+v", pr.Name, pr)
		}
		if pr.P99US < pr.P95US || pr.MeanUS <= 0 {
			t.Fatalf("phase %s latency summary malformed: %+v", pr.Name, pr)
		}
		prev = pr.End
	}
	if res.FinalKeys != res.ExpectedKeys {
		t.Fatalf("keys: final %d, expected %d", res.FinalKeys, res.ExpectedKeys)
	}
	if res.TunedO == 0 {
		t.Fatal("retuning never produced a recommendation")
	}
}

func TestRunBurstCrashRecovers(t *testing.T) {
	res, err := Run(BurstCrash(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var restart *PhaseResult
	for i := range res.Phases {
		if res.Phases[i].Name == "restart" {
			restart = &res.Phases[i]
		}
	}
	if restart == nil {
		t.Fatal("no restart phase in result")
	}
	if restart.RedoneEntries == 0 {
		t.Fatalf("restart phase replayed nothing: %+v", restart)
	}
	if res.FinalKeys != res.ExpectedKeys {
		t.Fatalf("crash-restart lost keys: final %d, expected %d", res.FinalKeys, res.ExpectedKeys)
	}
	aged := false
	for _, pr := range res.Phases {
		if pr.Name == "aged" && pr.GCStalls > 0 {
			aged = true
		}
	}
	if !aged {
		t.Fatal("aged phase saw no GC stalls; aging not applied")
	}
}

// TestRunRebalances checks skewdrift actually triggers migrations: the
// whole point of the scenario is a hotspot the rebalancer must chase.
func TestRunRebalances(t *testing.T) {
	res, err := Run(SkewDrift(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMigrations == 0 {
		t.Fatal("skewdrift triggered no migrations")
	}
	if res.RoutingEpoch == 0 {
		t.Fatal("routing epoch never advanced")
	}
}

// TestRunChaosAbsorbsFaults checks the chaos scenario's fault program
// actually fires and is fully absorbed by retry/backoff: retries are
// recorded, no retry budget runs dry (Run fails outright if a shard ends
// quarantined), and no committed key is lost.
func TestRunChaosAbsorbsFaults(t *testing.T) {
	res, err := Run(Chaos(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultProgram == "" {
		t.Fatal("chaos run resolved no fault program")
	}
	if res.IORetries == 0 {
		t.Fatal("fault program injected nothing: no transient retries recorded")
	}
	if res.IORetriesExhausted != 0 {
		t.Fatalf("%d retry budgets exhausted; chaos probabilities are meant to stay below exhaustion", res.IORetriesExhausted)
	}
	if res.FinalKeys != res.ExpectedKeys {
		t.Fatalf("chaos run lost keys: final %d, expected %d", res.FinalKeys, res.ExpectedKeys)
	}
	var restart bool
	for _, pr := range res.Phases {
		if pr.RedoneEntries > 0 {
			restart = true
		}
	}
	if !restart {
		t.Fatal("chaos run never crash-restarted")
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(Scenario{}, tinyConfig()); err == nil {
		t.Fatal("Run accepted an invalid scenario")
	}
	cfg := tinyConfig()
	cfg.OpsPerPhase = 0
	if _, err := Run(Diurnal(), cfg); err == nil {
		t.Fatal("Run accepted a zero op budget")
	}
	cfg = tinyConfig()
	cfg.InitialEntries = 10
	if _, err := Run(Diurnal(), cfg); err == nil {
		t.Fatal("Run accepted too few entries for the stripe count")
	}
}

// TestRunBlackoutEvacuates checks the self-healing gauntlet end to end:
// the dead WAL quarantines its shard, heal probes run but cannot
// re-admit it, the evacuation deadline trips and the adaptation loop
// streams the committed range to healthy shards, and the run ends with
// the shard evacuated — no shard left quarantined, every committed key
// served, and the degraded window's rejections counted.
func TestRunBlackoutEvacuates(t *testing.T) {
	res, err := Run(Blackout(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Evacuations == 0 {
		t.Fatalf("blackout run committed no evacuation: %+v", res)
	}
	if res.EvacuatedChunks == 0 {
		t.Fatal("evacuation streamed no chunks")
	}
	if res.HealProbes == 0 {
		t.Fatal("no heal probes issued against the quarantined shard")
	}
	if res.AutoHeals != 0 {
		t.Fatalf("a permanently dead WAL auto-healed %d times", res.AutoHeals)
	}
	if res.Rejected == 0 {
		t.Fatal("no writes were rejected during the degraded window")
	}
	if res.LostUncommitted < 0 {
		t.Fatalf("negative uncommitted loss %d", res.LostUncommitted)
	}
	// The run's own invariants already bound LostUncommitted by the OPQ
	// budget and require FinalKeys to cover everything else.
	if res.FinalKeys+res.LostUncommitted != res.ExpectedKeys {
		t.Fatalf("accounting broken: final %d + lost %d != expected %d",
			res.FinalKeys, res.LostUncommitted, res.ExpectedKeys)
	}
}

// TestRunBlackoutDeterministic double-runs blackout: degraded-mode
// rejections, evacuation scheduling and the healing counters must all be
// byte-deterministic like every other scenario.
func TestRunBlackoutDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, err := Run(Blackout(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Blackout(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two blackout runs diverged:\n%+v\n%+v", a, b)
	}
}
