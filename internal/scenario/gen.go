package scenario

import (
	"math/rand"

	"repro/internal/kv"
	"repro/internal/workload"
)

// stripeState carries a key stripe's fresh-insert bookkeeping across
// phases: record i of the bulk load holds key i*16+8, leaving 15 gap
// slots per record for fresh inserts. Tenants targeting the same stripe
// share this state, so inserts never collide within or across phases.
type stripeState struct {
	lo, hi    int // global record index range [lo, hi)
	nextFresh map[int]uint64
}

// insertOp draws a fresh-key insert in the stripe. When the drawn base
// record has used all 15 gap slots it probes forward deterministically;
// a saturated stripe degrades to a point search (the caller inspects
// op.Kind, so accounting stays exact).
func (st *stripeState) insertOp(rng *rand.Rand, recs []kv.Record) workload.Op {
	span := st.hi - st.lo
	base := st.lo + rng.Intn(span)
	for try := 0; try < 16; try++ {
		if st.nextFresh[base] < 15 {
			off := st.nextFresh[base]
			if off >= 8 {
				off++ // skip the loaded-key slot
			}
			st.nextFresh[base]++
			return workload.Op{
				Kind: workload.OpInsert,
				Rec:  kv.Record{Key: uint64(base)*16 + off, Value: rng.Uint64()},
			}
		}
		base = st.lo + (base-st.lo+1)%span
	}
	return workload.Op{Kind: workload.OpSearch, Rec: recs[base]}
}

// tenantGen draws one tenant's operations for one phase.
type tenantGen struct {
	tenant Tenant
	st     *stripeState
	rng    *rand.Rand
	zipf   *rand.Zipf
	recs   []kv.Record
}

func newTenantGen(tn Tenant, st *stripeState, recs []kv.Record, seed int64) *tenantGen {
	g := &tenantGen{tenant: tn, st: st, recs: recs, rng: rand.New(rand.NewSource(seed))}
	if tn.ZipfS > 1 && st.hi-st.lo > 1 {
		g.zipf = rand.NewZipf(g.rng, tn.ZipfS, 1, uint64(st.hi-st.lo-1))
	}
	return g
}

func (g *tenantGen) next() workload.Op {
	if g.rng.Float64() < g.tenant.InsertRatio {
		return g.st.insertOp(g.rng, g.recs)
	}
	idx := g.st.lo
	if g.zipf != nil {
		idx += int(g.zipf.Uint64())
	} else {
		idx += g.rng.Intn(g.st.hi - g.st.lo)
	}
	return workload.Op{Kind: workload.OpSearch, Rec: g.recs[idx]}
}

// phaseOps pre-generates a phase's interleaved operation stream: each op
// is drawn from a tenant picked by weighted choice, so the mix shifts
// exactly with the phase's tenant weights. Returns the ops and the
// number of inserts among them (for the engine's expected-count and
// observed-insert-ratio tracking).
func phaseOps(ph Phase, stripes []*stripeState, recs []kv.Record, n int, seed int64) ([]workload.Op, int) {
	gens := make([]*tenantGen, len(ph.Tenants))
	cum := make([]float64, len(ph.Tenants))
	total := 0.0
	for i, tn := range ph.Tenants {
		gens[i] = newTenantGen(tn, stripes[tn.Stripe], recs, seed+int64(i)*7919)
		total += tn.Weight
		cum[i] = total
	}
	pick := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	ops := make([]workload.Op, 0, n)
	inserts := 0
	for i := 0; i < n; i++ {
		x := pick.Float64() * total
		ti := len(gens) - 1
		for j, c := range cum {
			if x < c {
				ti = j
				break
			}
		}
		op := gens[ti].next()
		if op.Kind == workload.OpInsert {
			inserts++
		}
		ops = append(ops, op)
	}
	return ops, inserts
}
