// Package scenario is a deterministic, vtime-driven scenario engine: it
// composes phased, multi-tenant traffic programs — diurnal load swings,
// tenant skew that drifts mid-run, burst writes over cold reads, flash
// aging/GC pressure, crash-restart mid-scenario — and plays them against
// a live core.Forest on one continuous virtual timeline.
//
// Unlike the bench package, whose experiments regenerate the paper's
// fixed-shape figures, a scenario exercises the system's ADAPTATION
// machinery while it serves: the engine periodically invokes
// Forest.AutoRebalance off the observed ShardLoads and re-runs the
// eq.-(10) tuner (costmodel.TuneForest) on the observed insert ratio,
// applying the retuned OPQ budget to the live forest. Per-phase
// throughput, latency, migration, retune and recovery metrics land in a
// bench.Table-compatible result that CI gates against checked-in
// baselines, so a regression in how the system adapts — not just how
// fast it runs — fails the build.
//
// Everything is virtual time and seeded randomness: two runs of the same
// scenario at the same scale produce bit-identical results.
package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faultio"
	"repro/internal/flashsim"
	"repro/internal/vtime"
)

// Tenant is one traffic source within a phase. Tenants of the same name
// in different phases share fresh-key state (the engine keys generator
// state by stripe), so a tenant's inserts never collide across phases.
type Tenant struct {
	// Name labels the tenant in notes.
	Name string
	// Stripe is the index of the key stripe this tenant's traffic
	// targets (stripes partition the loaded key domain contiguously).
	Stripe int
	// Weight is the tenant's share of the phase's operations, relative
	// to the other tenants' weights.
	Weight float64
	// InsertRatio is the fraction of the tenant's ops that are inserts
	// (fresh keys in its stripe); the rest are point searches.
	InsertRatio float64
	// ZipfS, when > 1, skews the tenant's searches zipfian over its
	// stripe (hot keys); 0 or 1 means uniform.
	ZipfS float64
}

// Phase is one stage of a scenario. Phases run back to back on one
// continuous virtual timeline; vlock horizons, OPQ contents and routing
// state carry across phase boundaries exactly as they would in a
// long-running server.
type Phase struct {
	// Name labels the phase in tables and metric keys (keep it short,
	// lowercase, no spaces).
	Name string
	// Tenants are the phase's traffic sources. The per-phase op budget
	// is split across them by Weight.
	Tenants []Tenant
	// CrashRestart, when set, crashes the forest at the phase start —
	// after a group Sync commit point — and recovers it before the
	// phase's traffic runs. The engine verifies no key was lost.
	CrashRestart bool
	// Aging, when non-nil, is installed on the simulated device at the
	// phase start: programs slow down and GC stalls appear, and the
	// adaptation loop's recalibration sees the degraded device.
	Aging *flashsim.Aging
}

// Adapt configures the engine's adaptation thread, which runs alongside
// the workload threads in virtual time.
type Adapt struct {
	// Interval is the adaptation poll period in virtual time; 0 disables
	// the adaptation thread entirely.
	Interval vtime.Ticks
	// Policy drives Forest.AutoRebalance at each poll. A zero DrainBudget
	// gets the engine's default bound (so a stuck or fault-injected
	// migration cannot freeze the poll loop); a negative one drains
	// unbounded.
	Policy core.RebalancePolicy
	// Retune, when set, re-runs costmodel.TuneForest at each poll on the
	// observed insert ratio and live entry count (recalibrating when the
	// device aged) and applies the retuned OPQ budget to the forest.
	Retune bool
}

// Scenario is a named, phased, multi-tenant traffic program.
type Scenario struct {
	// Name identifies the scenario (experiment id "scenario_<Name>").
	Name string
	// Title describes it in table output.
	Title string
	// Stripes is the number of contiguous key stripes tenants address.
	Stripes int
	// Shards is the forest shard count (0: engine default).
	Shards int
	// Threads is the simulated workload thread count (0: engine default).
	Threads int
	// Adapt configures the adaptation loop.
	Adapt Adapt
	// Faults, when non-empty, is a faultio fault program (clauses like
	// "transient call=gang p=0.01", separated by ';' or newlines)
	// installed on the simulated I/O plane after the bulk load, so the
	// injected faults hit live traffic but not setup. A program without
	// an explicit seed is seeded from the run's Config.Seed.
	// Config.FaultProgram overrides it per run.
	Faults string
	// Heal paces the forest's auto-heal prober for quarantined shards
	// (zero value = core defaults).
	Heal core.HealPolicy
	// Evacuation bounds how long a shard may stay quarantined before the
	// adaptation loop's AutoRebalance migrates its range to healthy
	// shards (zero value = core default deadline).
	Evacuation core.EvacuationPolicy
	// Phases run in order.
	Phases []Phase
}

// Validate reports a descriptive error for an unusable scenario.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if sc.Stripes < 1 {
		return fmt.Errorf("scenario %s: Stripes must be >= 1, got %d", sc.Name, sc.Stripes)
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("scenario %s: no phases", sc.Name)
	}
	if sc.Faults != "" {
		if _, err := faultio.Parse(sc.Faults); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}
	seen := make(map[string]bool)
	for _, ph := range sc.Phases {
		if ph.Name == "" {
			return fmt.Errorf("scenario %s: phase with empty name", sc.Name)
		}
		if seen[ph.Name] {
			return fmt.Errorf("scenario %s: duplicate phase %q", sc.Name, ph.Name)
		}
		seen[ph.Name] = true
		if len(ph.Tenants) == 0 {
			return fmt.Errorf("scenario %s: phase %q has no tenants", sc.Name, ph.Name)
		}
		total := 0.0
		for _, tn := range ph.Tenants {
			if tn.Stripe < 0 || tn.Stripe >= sc.Stripes {
				return fmt.Errorf("scenario %s: phase %q tenant %q stripe %d out of range [0,%d)",
					sc.Name, ph.Name, tn.Name, tn.Stripe, sc.Stripes)
			}
			if tn.Weight < 0 || tn.InsertRatio < 0 || tn.InsertRatio > 1 {
				return fmt.Errorf("scenario %s: phase %q tenant %q has invalid weight/ratio",
					sc.Name, ph.Name, tn.Name)
			}
			total += tn.Weight
		}
		if total <= 0 {
			return fmt.Errorf("scenario %s: phase %q tenant weights sum to %v", sc.Name, ph.Name, total)
		}
	}
	return nil
}
