// Fault-injection hook of the I/O plane. A Space optionally carries an
// Injector that rules on every submission unit BEFORE any file contents
// are touched: a failed unit is neither applied nor submitted to the
// device, so the durable state it leaves behind is exactly the state a
// crash immediately before the write would leave — which is what lets
// WAL recovery reasoning carry over unchanged to injected faults.
package ssdio

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/vtime"
)

// Call kinds passed to Injector.Decide.
const (
	CallSync  = "sync"  // File.Sync: one blocking request
	CallPsync = "psync" // File.Psync: one batch, one file
	CallGang  = "gang"  // PsyncGang: one decision per member batch
)

// FaultDecision is an injector's ruling on one submission unit.
type FaultDecision struct {
	// Err, when non-nil, fails the unit: contents are not applied, nothing
	// is submitted, and the caller sees Err after Delay ticks of blocking.
	Err error
	// Delay is extra blocked time on the vtime clock: a latency spike when
	// Err is nil, the hang before the failure surfaces when Err is set.
	Delay vtime.Ticks
	// Hang marks Delay as a non-responsive hang (a stuck op, a device-wide
	// stall window) rather than a bounded latency spike. Hangs are
	// eligible for the Space's stuck-I/O watchdog (SetStuckTimeout), which
	// abandons them at the armed deadline with a StuckError instead of
	// blocking for the full hang.
	Hang bool
}

// Injector intercepts submissions on a Space. Decide is consulted once
// per Sync call, once per Psync call, and once per member batch of a
// PsyncGang, always before any file contents are touched.
//
// Implementations must be deterministic functions of their own
// configuration and the call parameters (file, call kind, virtual time,
// request shape) so simulated runs stay byte-reproducible, and must not
// call back into the I/O plane.
type Injector interface {
	Decide(file string, call string, at vtime.Ticks, reqs []Req) FaultDecision
}

// SetInjector installs (or, with nil, removes) the Space's fault
// injector. With no injector the I/O plane behaves — and costs —
// exactly as before the hook existed.
func (s *Space) SetInjector(inj Injector) {
	if inj == nil {
		s.inj.Store(nil)
		return
	}
	s.inj.Store(&injectorBox{inj: inj})
}

// injectorBox wraps the interface so a nil injector and "no injector"
// both load as nil.
type injectorBox struct{ inj Injector }

// injector returns the active injector, or nil.
func (s *Space) injector() Injector {
	if b := s.inj.Load(); b != nil {
		return b.inj
	}
	return nil
}

// SetStuckTimeout arms the Space's stuck-I/O watchdog: a submission unit
// whose fault ruling hangs (FaultDecision.Hang) longer than t is
// abandoned after exactly t ticks with a StuckError instead of blocking
// for the full hang. Zero (the default) disarms the watchdog, so hangs
// run their course as pure latency. A timed-out unit never touched file
// contents — the durable state it leaves equals a crash before the
// write, the same contract as every other injected failure.
func (s *Space) SetStuckTimeout(t vtime.Ticks) { s.stuck.Store(int64(t)) }

// StuckTimeout returns the armed watchdog deadline (0 = disarmed).
func (s *Space) StuckTimeout() vtime.Ticks { return vtime.Ticks(s.stuck.Load()) }

// watchdog caps a hanging decision at the Space's stuck timeout.
func (s *Space) watchdog(file, call string, at vtime.Ticks, d FaultDecision) FaultDecision {
	wd := s.StuckTimeout()
	if wd <= 0 || !d.Hang || d.Delay <= wd {
		return d
	}
	return FaultDecision{
		Err:   &StuckError{File: file, Call: call, At: at, Hang: d.Delay, Timeout: wd, Cause: d.Err},
		Delay: wd,
		Hang:  true,
	}
}

// StuckError reports a submission unit abandoned by the stuck-I/O
// watchdog: the fault plane ruled it would hang for Hang ticks, past the
// armed Timeout deadline, so the caller gave up at the deadline. The
// unit's contents were never applied. It classifies as transient (the
// device may answer a resubmission) and carries the WatchdogTimeout
// marker that retry layers count on.
type StuckError struct {
	File    string
	Call    string
	At      vtime.Ticks
	Hang    vtime.Ticks // how long the unit would have hung
	Timeout vtime.Ticks // the armed watchdog deadline
	Cause   error       // the hang's underlying injected fault, if any
}

func (e *StuckError) Error() string {
	return fmt.Sprintf("ssdio: stuck %s on %s at %s: watchdog fired after %s (op would hang %s)",
		e.Call, e.File, e.At, e.Timeout, e.Hang)
}

// Unwrap exposes the hang's underlying injected fault for errors.Is.
func (e *StuckError) Unwrap() error { return e.Cause }

// TransientIO: a timed-out op may succeed when resubmitted.
func (e *StuckError) TransientIO() bool { return true }

// WatchdogTimeout marks the error as a stuck-I/O watchdog firing.
func (e *StuckError) WatchdogTimeout() bool { return true }

// GangFault describes one failed member batch of a PsyncGang submission.
type GangFault struct {
	Batch int    // index into the batches slice passed to PsyncGang
	File  string // name of the batch's file
	Err   error  // the injected failure
}

// PartialGangError reports a gang submission in which some member
// batches landed on the device and others failed. Landed batches were
// applied and submitted as one psync call; the batches listed in Faults
// (ascending by Batch) were neither applied nor submitted.
type PartialGangError struct {
	Landed int // count of batches applied and submitted
	Faults []GangFault
}

func (e *PartialGangError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ssdio: partial gang: %d batches landed, %d failed:", e.Landed, len(e.Faults))
	for _, f := range e.Faults {
		fmt.Fprintf(&b, " [%d %s: %v]", f.Batch, f.File, f.Err)
	}
	return b.String()
}

// TransientIO reports whether every failed batch carries a transient
// fault, i.e. whether resubmitting the failed batches may succeed.
func (e *PartialGangError) TransientIO() bool {
	for _, f := range e.Faults {
		if !transientErr(f.Err) {
			return false
		}
	}
	return len(e.Faults) > 0
}

// transientErr probes err for the TransientIO marker carried by injected
// transient faults (see internal/faultio). Unknown errors are permanent.
func transientErr(err error) bool {
	var t interface{ TransientIO() bool }
	return errors.As(err, &t) && t.TransientIO()
}
