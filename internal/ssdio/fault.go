// Fault-injection hook of the I/O plane. A Space optionally carries an
// Injector that rules on every submission unit BEFORE any file contents
// are touched: a failed unit is neither applied nor submitted to the
// device, so the durable state it leaves behind is exactly the state a
// crash immediately before the write would leave — which is what lets
// WAL recovery reasoning carry over unchanged to injected faults.
package ssdio

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/vtime"
)

// Call kinds passed to Injector.Decide.
const (
	CallSync  = "sync"  // File.Sync: one blocking request
	CallPsync = "psync" // File.Psync: one batch, one file
	CallGang  = "gang"  // PsyncGang: one decision per member batch
)

// FaultDecision is an injector's ruling on one submission unit.
type FaultDecision struct {
	// Err, when non-nil, fails the unit: contents are not applied, nothing
	// is submitted, and the caller sees Err after Delay ticks of blocking.
	Err error
	// Delay is extra blocked time on the vtime clock: a latency spike when
	// Err is nil, the hang before the failure surfaces when Err is set.
	Delay vtime.Ticks
}

// Injector intercepts submissions on a Space. Decide is consulted once
// per Sync call, once per Psync call, and once per member batch of a
// PsyncGang, always before any file contents are touched.
//
// Implementations must be deterministic functions of their own
// configuration and the call parameters (file, call kind, virtual time,
// request shape) so simulated runs stay byte-reproducible, and must not
// call back into the I/O plane.
type Injector interface {
	Decide(file string, call string, at vtime.Ticks, reqs []Req) FaultDecision
}

// SetInjector installs (or, with nil, removes) the Space's fault
// injector. With no injector the I/O plane behaves — and costs —
// exactly as before the hook existed.
func (s *Space) SetInjector(inj Injector) {
	if inj == nil {
		s.inj.Store(nil)
		return
	}
	s.inj.Store(&injectorBox{inj: inj})
}

// injectorBox wraps the interface so a nil injector and "no injector"
// both load as nil.
type injectorBox struct{ inj Injector }

// injector returns the active injector, or nil.
func (s *Space) injector() Injector {
	if b := s.inj.Load(); b != nil {
		return b.inj
	}
	return nil
}

// GangFault describes one failed member batch of a PsyncGang submission.
type GangFault struct {
	Batch int    // index into the batches slice passed to PsyncGang
	File  string // name of the batch's file
	Err   error  // the injected failure
}

// PartialGangError reports a gang submission in which some member
// batches landed on the device and others failed. Landed batches were
// applied and submitted as one psync call; the batches listed in Faults
// (ascending by Batch) were neither applied nor submitted.
type PartialGangError struct {
	Landed int // count of batches applied and submitted
	Faults []GangFault
}

func (e *PartialGangError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ssdio: partial gang: %d batches landed, %d failed:", e.Landed, len(e.Faults))
	for _, f := range e.Faults {
		fmt.Fprintf(&b, " [%d %s: %v]", f.Batch, f.File, f.Err)
	}
	return b.String()
}

// TransientIO reports whether every failed batch carries a transient
// fault, i.e. whether resubmitting the failed batches may succeed.
func (e *PartialGangError) TransientIO() bool {
	for _, f := range e.Faults {
		if !transientErr(f.Err) {
			return false
		}
	}
	return len(e.Faults) > 0
}

// transientErr probes err for the TransientIO marker carried by injected
// transient faults (see internal/faultio). Unknown errors are permanent.
func transientErr(err error) bool {
	var t interface{ TransientIO() bool }
	return errors.As(err, &t) && t.TransientIO()
}
