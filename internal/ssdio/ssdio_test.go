package ssdio

import (
	"bytes"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/vtime"
)

func newSpace() *Space {
	return NewSpace(flashsim.MustDevice(flashsim.P300()))
}

func TestCreateOpenRemove(t *testing.T) {
	s := newSpace()
	f, err := s.Create("a", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "a" || f.Size() != 4096 {
		t.Fatalf("name=%q size=%d", f.Name(), f.Size())
	}
	if _, err := s.Create("a", 4096); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if _, err := s.Create("b", 0); err == nil {
		t.Fatal("zero-size create accepted")
	}
	got, err := s.Open("a")
	if err != nil || got != f {
		t.Fatalf("Open: %v %v", got, err)
	}
	if _, err := s.Open("zz"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestSyncRoundTrip(t *testing.T) {
	s := newSpace()
	f, _ := s.Create("f", 64*1024)
	data := bytes.Repeat([]byte{0xAB}, 4096)
	done, err := f.Sync(0, Req{Op: flashsim.Write, Off: 8192, Buf: data})
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("write cost no time")
	}
	out := make([]byte, 4096)
	done2, err := f.Sync(done, Req{Op: flashsim.Read, Off: 8192, Buf: out})
	if err != nil {
		t.Fatal(err)
	}
	if done2 <= done {
		t.Fatal("read cost no time")
	}
	if !bytes.Equal(out, data) {
		t.Fatal("read back wrong data")
	}
}

func TestPsyncRoundTripAndFasterThanSync(t *testing.T) {
	s := newSpace()
	f, _ := s.Create("f", 1<<20)
	const n = 32
	// Write n pages via psync.
	reqs := make([]Req, n)
	for i := range reqs {
		buf := bytes.Repeat([]byte{byte(i + 1)}, 4096)
		reqs[i] = Req{Op: flashsim.Write, Off: int64(i) * 4096, Buf: buf}
	}
	pDone, err := f.Psync(0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Read them back via psync and verify.
	outs := make([]Req, n)
	for i := range outs {
		outs[i] = Req{Op: flashsim.Read, Off: int64(i) * 4096, Buf: make([]byte, 4096)}
	}
	rDone, err := f.Psync(pDone, outs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i].Buf[0] != byte(i+1) {
			t.Fatalf("page %d wrong content %d", i, outs[i].Buf[0])
		}
	}
	psyncTime := rDone - pDone

	// Same reads one by one on a fresh space must be much slower.
	s2 := newSpace()
	f2, _ := s2.Create("f", 1<<20)
	var now vtime.Ticks
	for i := 0; i < n; i++ {
		now, err = f2.Sync(now, Req{Op: flashsim.Read, Off: int64(i) * 4096, Buf: make([]byte, 4096)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if float64(now)/float64(psyncTime) < 4 {
		t.Fatalf("psync speedup only %.1fx (psync=%v sync=%v)", float64(now)/float64(psyncTime), psyncTime, now)
	}
}

// TestSharedFileWriteOrdering reproduces Figure 4(a): synchronous writers
// to a shared file serialize on the write-ordering lock, so two simulated
// threads writing at the same virtual time cannot overlap.
func TestSharedFileWriteOrdering(t *testing.T) {
	s := newSpace()
	f, _ := s.Create("shared", 1<<20)
	buf := make([]byte, 4096)
	// Thread A writes at t=0, thread B also at t=0.
	doneA, err := f.Sync(0, Req{Op: flashsim.Write, Off: 0, Buf: buf})
	if err != nil {
		t.Fatal(err)
	}
	doneB, err := f.Sync(0, Req{Op: flashsim.Write, Off: 8192, Buf: buf})
	if err != nil {
		t.Fatal(err)
	}
	if doneB < doneA {
		t.Fatalf("second write finished (%v) before first (%v) despite write ordering", doneB, doneA)
	}
	// On separate files the same two writes overlap.
	s2 := newSpace()
	fa, _ := s2.Create("a", 1<<20)
	fb, _ := s2.Create("b", 1<<20)
	dA, _ := fa.Sync(0, Req{Op: flashsim.Write, Off: 0, Buf: buf})
	dB, _ := fb.Sync(0, Req{Op: flashsim.Write, Off: 8192, Buf: buf})
	if dB >= dA+dA/2 {
		t.Fatalf("separate-file writes did not overlap: %v then %v", dA, dB)
	}
}

// TestReadsNotSerialized: the write-ordering lock must not affect reads.
func TestReadsNotSerialized(t *testing.T) {
	s := newSpace()
	f, _ := s.Create("f", 1<<20)
	buf := make([]byte, 4096)
	d1, _ := f.Sync(0, Req{Op: flashsim.Read, Off: 0, Buf: buf})
	d2, _ := f.Sync(0, Req{Op: flashsim.Read, Off: 4096 * 3, Buf: buf})
	// Both issued at t=0 on different channels: must overlap substantially.
	if d2 > d1*2 {
		t.Fatalf("reads appear serialized: %v vs %v", d1, d2)
	}
}

func TestContextSwitchAccounting(t *testing.T) {
	s := newSpace()
	f, _ := s.Create("f", 1<<20)
	buf := make([]byte, 4096)
	var now vtime.Ticks
	for i := 0; i < 10; i++ {
		now, _ = f.Sync(now, Req{Op: flashsim.Read, Off: int64(i) * 4096, Buf: buf})
	}
	reqs := make([]Req, 10)
	for i := range reqs {
		reqs[i] = Req{Op: flashsim.Read, Off: int64(i) * 4096, Buf: make([]byte, 4096)}
	}
	now, _ = f.Psync(now, reqs)
	st := f.Stats()
	// 10 sync calls x2 + 1 psync call x2 = 22.
	if st.CtxSwitches != 22 {
		t.Fatalf("CtxSwitches = %d, want 22", st.CtxSwitches)
	}
	if st.SyncCalls != 10 || st.PsyncCalls != 1 || st.PsyncReqs != 10 {
		t.Fatalf("stats = %+v", st)
	}
	f.ResetStats()
	if f.Stats().CtxSwitches != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestRangeErrors(t *testing.T) {
	s := newSpace()
	f, _ := s.Create("f", 8192)
	buf := make([]byte, 4096)
	if _, err := f.Sync(0, Req{Op: flashsim.Read, Off: 8192, Buf: buf}); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := f.Sync(0, Req{Op: flashsim.Read, Off: -1, Buf: buf}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := f.Sync(0, Req{Op: flashsim.Read, Off: 0, Buf: nil}); err == nil {
		t.Fatal("empty buffer accepted")
	}
	if _, err := f.Psync(0, []Req{{Op: flashsim.Read, Off: 8192, Buf: buf}}); err == nil {
		t.Fatal("psync out-of-range accepted")
	}
	if err := f.ReadAt(buf, 8000); err == nil {
		t.Fatal("ReadAt out of range accepted")
	}
}

func TestEnsureSizeAndWriteAtGrow(t *testing.T) {
	s := newSpace()
	f, _ := s.Create("f", 4096)
	f.EnsureSize(16384)
	if f.Size() != 16384 {
		t.Fatalf("size = %d", f.Size())
	}
	f.EnsureSize(100) // shrink is a no-op
	if f.Size() != 16384 {
		t.Fatal("EnsureSize shrank the file")
	}
	if err := f.WriteAt([]byte{1, 2, 3}, 20000); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 20003 {
		t.Fatalf("WriteAt did not grow: %d", f.Size())
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := newSpace()
	f, _ := s.Create("f", 4096)
	if err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	snap := f.Snapshot()
	if err := f.WriteAt([]byte("world"), 0); err != nil {
		t.Fatal(err)
	}
	f.Restore(snap)
	out := make([]byte, 5)
	if err := f.ReadAt(out, 0); err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello" {
		t.Fatalf("restored %q", out)
	}
}

func TestPsyncEmptyBatch(t *testing.T) {
	s := newSpace()
	f, _ := s.Create("f", 4096)
	done, err := f.Psync(55, nil)
	if err != nil || done != 55 {
		t.Fatalf("empty psync: %v %v", done, err)
	}
}
