// Package ssdio layers files and I/O request methods over the simulated
// flash SSD. It provides the three request methods compared in Section 2.3
// of the paper:
//
//   - Sync: one blocking request at a time (traditional synchronous I/O);
//   - Psync: "parallel synchronous I/O" — a whole array of requests is
//     submitted at once and the caller blocks until every member completed,
//     with no completion-event routine;
//   - thread-mode: many simulated threads each issuing Sync requests
//     (parallel processing), including the POSIX write-ordering per-file
//     writer lock that serializes synchronous direct writes to a shared
//     file (the effect behind Figure 4(a) vs 4(b)).
//
// Files hold real contents (byte slices) while all timing comes from the
// flashsim device, so index structures built on top are both functionally
// correct and time-faithful.
package ssdio

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/flashsim"
	"repro/internal/vtime"
)

// ErrOutOfRange reports an access beyond the end of a file.
var ErrOutOfRange = errors.New("ssdio: access out of file range")

// Req is one file I/O: read fills Buf from the file, write stores Buf into
// the file. Off is file-relative. len(Buf) is the transfer size.
type Req struct {
	Op  flashsim.Op
	Off int64
	Buf []byte
}

// Stats counts submitter activity for the context-switch experiment
// (Figure 4(c)) and general reporting.
type Stats struct {
	// SyncCalls / PsyncCalls count blocking submissions.
	SyncCalls  int64
	PsyncCalls int64
	// PsyncReqs counts requests carried inside psync batches.
	PsyncReqs int64
	// CtxSwitches counts simulated context switches: every blocking call
	// costs two (block on submit, wake on completion), independent of the
	// number of requests in the batch — the key psync advantage.
	CtxSwitches int64
	// IOTime accumulates time spent blocked in I/O calls.
	IOTime vtime.Ticks
}

// Space is an allocator of device address ranges: a minimal file system on
// the simulated SSD. It is safe for concurrent use.
type Space struct {
	dev *flashsim.Device

	// inj is the active fault injector (see fault.go); nil loads mean the
	// plane is fault-free and every path below costs exactly what it did
	// before the hook existed.
	inj atomic.Pointer[injectorBox]

	// stuck is the armed stuck-I/O watchdog deadline in ticks (see
	// SetStuckTimeout); 0 means disarmed.
	stuck atomic.Int64

	mu    sync.Mutex
	next  int64            // guarded by mu
	files map[string]*File // guarded by mu
}

// NewSpace creates an empty space on dev.
func NewSpace(dev *flashsim.Device) *Space {
	return &Space{dev: dev, files: make(map[string]*File)}
}

// Device returns the underlying simulated device.
func (s *Space) Device() *flashsim.Device { return s.dev }

// Create allocates a file of the given size (bytes). Creating an existing
// name returns an error; use Open to retrieve it.
func (s *Space) Create(name string, size int64) (*File, error) {
	if size <= 0 {
		return nil, fmt.Errorf("ssdio: create %q: size must be positive, got %d", name, size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[name]; ok {
		return nil, fmt.Errorf("ssdio: create %q: file exists", name)
	}
	f := &File{
		space: s,
		name:  name,
		base:  s.next,
		data:  make([]byte, size),
	}
	// Align file bases to the flash page size so striping begins at a
	// channel boundary for every file.
	fps := int64(s.dev.Config().FlashPageSize)
	s.next += (size + fps - 1) / fps * fps
	s.files[name] = f
	return f, nil
}

// Open returns a previously created file.
func (s *Space) Open(name string) (*File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("ssdio: open %q: no such file", name)
	}
	return f, nil
}

// Remove deletes a file's directory entry (its address range is not
// reused; the space is an arena).
func (s *Space) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[name]; !ok {
		return fmt.Errorf("ssdio: remove %q: no such file", name)
	}
	delete(s.files, name)
	return nil
}

// File is a fixed-base, growable byte range on the simulated SSD.
type File struct {
	space *Space
	name  string
	base  int64

	mu   sync.Mutex
	data []byte // guarded by mu

	// writeOrder models the per-file reader-writer lock POSIX-compliant
	// file systems use to satisfy write ordering for synchronous writes
	// (Section 2.3). Only Sync writes take it; Psync batches come from a
	// single submitter and are exempt, which is exactly why psync I/O wins
	// on a shared file in Figure 4(a).
	writeOrder vtime.Mutex

	stats Stats // guarded by mu
}

// Name returns the file's name within its Space.
func (f *File) Name() string { return f.name }

// Size returns the current file size in bytes.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data))
}

// Stats returns a snapshot of the file's submitter counters.
func (f *File) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// ResetStats zeroes the counters.
func (f *File) ResetStats() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats = Stats{}
}

// EnsureSize grows the file to at least size bytes (contents zero-filled).
// Growth is a metadata operation and carries no simulated I/O cost. The
// backing array grows geometrically so repeated small extensions (every
// page allocation calls EnsureSize) stay amortized O(1) per byte.
func (f *File) EnsureSize(size int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int64(len(f.data)) >= size {
		return
	}
	if int64(cap(f.data)) >= size {
		f.data = f.data[:size]
		return
	}
	newCap := int64(cap(f.data)) * 2
	if newCap < size {
		newCap = size
	}
	nd := make([]byte, size, newCap)
	copy(nd, f.data)
	f.data = nd
}

// checkRange validates one request against the file size.
// Caller holds f.mu.
func (f *File) checkRange(r Req) error {
	if r.Off < 0 || r.Off+int64(len(r.Buf)) > int64(len(f.data)) {
		return fmt.Errorf("%w: %s off=%d len=%d size=%d", ErrOutOfRange, f.name, r.Off, len(r.Buf), len(f.data))
	}
	if len(r.Buf) == 0 {
		return fmt.Errorf("ssdio: %s: empty buffer", f.name)
	}
	return nil
}

// apply moves bytes for one request. Caller holds f.mu.
func (f *File) apply(r Req) {
	if r.Op == flashsim.Read {
		copy(r.Buf, f.data[r.Off:])
	} else {
		copy(f.data[r.Off:], r.Buf)
	}
}

// Psync submits the whole batch at virtual time at and returns the time at
// which every request has completed. This is the paper's psync I/O: one
// blocking call, outstanding level = len(reqs).
func (f *File) Psync(at vtime.Ticks, reqs []Req) (vtime.Ticks, error) {
	if len(reqs) == 0 {
		return at, nil
	}
	subAt := at
	if inj := f.space.injector(); inj != nil {
		d := f.space.watchdog(f.name, CallPsync, at, inj.Decide(f.name, CallPsync, at, reqs))
		if d.Err != nil {
			// The call blocked (and is charged) like a real submission,
			// but no contents were applied and nothing reached the device:
			// durable state is as if the machine crashed before the write.
			f.mu.Lock()
			f.stats.PsyncCalls++
			f.stats.PsyncReqs += int64(len(reqs))
			f.stats.CtxSwitches += 2
			f.stats.IOTime += d.Delay
			f.mu.Unlock()
			return at + d.Delay, d.Err
		}
		subAt += d.Delay
	}
	f.mu.Lock()
	devReqs := make([]flashsim.Request, len(reqs))
	for i, r := range reqs {
		if err := f.checkRange(r); err != nil {
			f.mu.Unlock()
			return at, err
		}
		devReqs[i] = flashsim.Request{Op: r.Op, Offset: f.base + r.Off, Size: len(r.Buf)}
	}
	for _, r := range reqs {
		f.apply(r)
	}
	f.stats.PsyncCalls++
	f.stats.PsyncReqs += int64(len(reqs))
	f.stats.CtxSwitches += 2
	f.mu.Unlock()

	_, done := f.space.dev.Submit(subAt, devReqs)

	f.mu.Lock()
	f.stats.IOTime += done - at
	f.mu.Unlock()
	return done, nil
}

// GangBatch pairs one file with the requests it contributes to a
// cross-file psync submission (see PsyncGang).
type GangBatch struct {
	F    *File
	Reqs []Req
}

// PsyncGang submits the requests of several files of one Space as a
// single psync call: one blocking submission, outstanding level equal to
// the total request count. This is the second level of the paper's
// batching — independent flush batches (e.g. one per index shard) are
// concatenated so the device sees one large request array and keeps every
// channel busy, instead of draining the batches one blocking call at a
// time. All files must belong to the same Space.
func PsyncGang(at vtime.Ticks, batches []GangBatch) (vtime.Ticks, error) {
	var total int
	var space *Space
	for _, b := range batches {
		if len(b.Reqs) == 0 {
			continue
		}
		total += len(b.Reqs)
		if space == nil {
			space = b.F.space
		} else if b.F.space != space {
			return at, fmt.Errorf("ssdio: psync gang spans spaces (%q)", b.F.name)
		}
	}
	if total == 0 {
		return at, nil
	}

	// Fault decisions come first, one per member batch, before any file
	// contents are touched: a failed batch is neither applied nor
	// submitted, leaving its file exactly as a crash before the write
	// would. The longest member delay stalls the whole blocking call.
	var skip []bool
	var faults []GangFault
	var delay vtime.Ticks
	if inj := space.injector(); inj != nil {
		skip = make([]bool, len(batches))
		for i, b := range batches {
			if len(b.Reqs) == 0 {
				continue
			}
			d := space.watchdog(b.F.name, CallGang, at, inj.Decide(b.F.name, CallGang, at, b.Reqs))
			if d.Delay > delay {
				delay = d.Delay
			}
			if d.Err != nil {
				skip[i] = true
				faults = append(faults, GangFault{Batch: i, File: b.F.name, Err: d.Err})
			}
		}
	}

	// Validate every surviving batch before touching any file contents,
	// so a bad request leaves the whole gang un-applied (all-or-nothing).
	devReqs := make([]flashsim.Request, 0, total)
	landed := 0
	for i, b := range batches {
		f := b.F
		if len(b.Reqs) == 0 || (skip != nil && skip[i]) {
			continue
		}
		landed++
		f.mu.Lock()
		for _, r := range b.Reqs {
			if err := f.checkRange(r); err != nil {
				f.mu.Unlock()
				return at, err
			}
			devReqs = append(devReqs, flashsim.Request{Op: r.Op, Offset: f.base + r.Off, Size: len(r.Buf)})
		}
		f.mu.Unlock()
	}
	for i, b := range batches {
		if len(b.Reqs) == 0 || (skip != nil && skip[i]) {
			continue
		}
		b.F.mu.Lock()
		for _, r := range b.Reqs {
			b.F.apply(r)
		}
		b.F.stats.PsyncReqs += int64(len(b.Reqs))
		b.F.mu.Unlock()
	}

	done := at + delay
	if len(devReqs) > 0 {
		_, done = space.dev.Submit(at+delay, devReqs)
	}

	// The gang is one blocking call from one submitter; charge the
	// call-level counters to the first contributing file. Failed batches
	// contribute no request counts — they never reached the device — but
	// their delay is part of the blocked window.
	for _, b := range batches {
		if len(b.Reqs) == 0 {
			continue
		}
		b.F.mu.Lock()
		b.F.stats.PsyncCalls++
		b.F.stats.CtxSwitches += 2
		b.F.stats.IOTime += done - at
		b.F.mu.Unlock()
		break
	}
	if len(faults) > 0 {
		return done, &PartialGangError{Landed: landed, Faults: faults}
	}
	return done, nil
}

// Sync submits one blocking request at virtual time at. Synchronous writes
// serialize on the file's write-ordering lock, reproducing the POSIX
// behaviour that prevents parallel processing from exploiting internal
// parallelism on a shared file.
func (f *File) Sync(at vtime.Ticks, r Req) (vtime.Ticks, error) {
	subAt := at
	if inj := f.space.injector(); inj != nil {
		d := f.space.watchdog(f.name, CallSync, at, inj.Decide(f.name, CallSync, at, []Req{r}))
		if d.Err != nil {
			f.mu.Lock()
			f.stats.SyncCalls++
			f.stats.CtxSwitches += 2
			f.stats.IOTime += d.Delay
			f.mu.Unlock()
			return at + d.Delay, d.Err
		}
		subAt += d.Delay
	}
	f.mu.Lock()
	if err := f.checkRange(r); err != nil {
		f.mu.Unlock()
		return at, err
	}
	f.apply(r)
	f.stats.SyncCalls++
	f.stats.CtxSwitches += 2
	start := subAt
	if r.Op == flashsim.Write {
		start = f.writeOrder.Acquire(subAt)
	}
	devReq := flashsim.Request{Op: r.Op, Offset: f.base + r.Off, Size: len(r.Buf)}
	f.mu.Unlock()

	res := f.space.dev.SubmitOne(start, devReq)

	f.mu.Lock()
	if r.Op == flashsim.Write {
		f.writeOrder.Release(res.Done)
	}
	f.stats.IOTime += res.Done - at
	f.mu.Unlock()
	return res.Done, nil
}

// ReadAt copies file contents without any simulated I/O cost. It is meant
// for experiment setup, assertions and debugging, never for timed paths.
func (f *File) ReadAt(buf []byte, off int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off+int64(len(buf)) > int64(len(f.data)) {
		return fmt.Errorf("%w: %s off=%d len=%d size=%d", ErrOutOfRange, f.name, off, len(buf), len(f.data))
	}
	copy(buf, f.data[off:])
	return nil
}

// WriteAt stores file contents without any simulated I/O cost (see ReadAt).
func (f *File) WriteAt(buf []byte, off int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 {
		return fmt.Errorf("%w: %s off=%d", ErrOutOfRange, f.name, off)
	}
	if need := off + int64(len(buf)); need > int64(len(f.data)) {
		nd := make([]byte, need)
		copy(nd, f.data)
		f.data = nd
	}
	copy(f.data[off:], buf)
	return nil
}

// Snapshot returns a copy of the file contents, used by crash-recovery
// tests to capture the durable state at a simulated crash point.
func (f *File) Snapshot() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out
}

// Restore replaces the file contents from a snapshot.
func (f *File) Restore(data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.data = make([]byte, len(data))
	copy(f.data, data)
}
