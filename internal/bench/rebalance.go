package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// buildRebalanceForest bulk-loads a range-partitioned, WAL-attached
// forest (one log per shard) whose first stripe holds most of the keys —
// the dominant-tenant layout a skewed workload turns into a hotspot.
func buildRebalanceForest(p flashsim.Config, n, memBytes, shards int, pp pioParams) (*core.Forest, []kv.Record, error) {
	// Skewed stripes over the loaded key domain [0, n*16): stripe 0 is
	// the dominant tenant, the rest split the remainder evenly.
	hotN := n * rebalanceHotPercent / 100
	bounds := make([]kv.Key, shards-1)
	for i := range bounds {
		bounds[i] = kv.Key(hotN+i*(n-hotN)/(shards-1)) * 16
	}
	fr, _, recs, err := buildWALForest(p, n, memBytes, shards, pp,
		core.RangePartitioner{Bounds: bounds}, false)
	return fr, recs, err
}

// RebalanceBench measures online shard rebalancing under a hotspot: a
// mixed workload confined to shard 0's stripe is driven before, during,
// and after a SplitShard that carves the hot stripe's upper half onto an
// idle shard. "During" interleaves the migration's chunk steps with the
// workload as one more simulated thread, so the dip and the recovery are
// both visible — and deterministic, which lets CI gate on the numbers.
func RebalanceBench(s Scale) ([]Table, error) {
	threads := s.Threads
	if threads <= 0 {
		threads = 8
	}
	shards := s.Shards
	if shards <= 1 {
		shards = 4
	}
	const insertRatio = 0.5
	dev := flashsim.Iodrive()
	pp := forestTune(dev, s.InitialEntries, s.MemBytes, shards, insertRatio)
	fr, recs, err := buildRebalanceForest(dev, s.InitialEntries, s.MemBytes, shards, pp)
	if err != nil {
		return nil, err
	}
	// The hotspot: every operation targets the dominant stripe. One
	// stateful generator feeds all three phases, so fresh-key inserts
	// never repeat across phases (the tree treats keys as unique).
	hot := recs[:len(recs)*rebalanceHotPercent/100]
	gen := newHotspotGen(hot, s.Seed)
	boundary := hot[len(hot)/2].Key

	t := &Table{
		ID: "rebalance-" + dev.Name,
		Title: fmt.Sprintf("hotspot split, %d ops/phase 50/50 mix on 1 of %d stripes, %d threads, N=%d",
			s.Ops, shards, threads, s.InitialEntries),
		Header:  []string{"phase", "elapsed_s", "kops_per_s", "flushes", "gang_submits", "migrated_keys"},
		Metrics: map[string]float64{},
	}
	// The three phases share one continuous virtual timeline (the shard
	// vlocks carry their horizons across phases); each phase's threads
	// start at the phase base and its makespan is measured from there.
	phase := func(name string, base vtime.Ticks, ops []workload.Op, extra *core.Migration) (vtime.Ticks, error) {
		pre := fr.Stats()
		ths := make([]*vtimeThread, 0, threads+1)
		for i := 0; i < threads; i++ {
			tid := i
			ths = append(ths, newVtimeThread(tid, func(_, step int, now vtime.Ticks) (vtime.Ticks, bool) {
				idx := step*threads + tid
				if idx >= len(ops) {
					return now, false
				}
				op := ops[idx]
				var next vtime.Ticks
				var err error
				if op.Kind == workload.OpInsert {
					next, err = fr.Insert(vtime.Max(now, base), op.Rec)
				} else {
					_, _, next, err = fr.Search(vtime.Max(now, base), op.Rec.Key)
				}
				if err != nil {
					panic(err)
				}
				return next, true
			}))
		}
		if extra != nil {
			ths = append(ths, newVtimeThread(threads, func(_, _ int, now vtime.Ticks) (vtime.Ticks, bool) {
				if extra.Done() {
					return now, false
				}
				_, next, err := extra.Step(vtime.Max(now, base))
				if err != nil {
					panic(err)
				}
				return next, true
			}))
		}
		end := vtime.Max(runThreads(3*vtime.Microsecond, ths), base)
		elapsed := end - base
		post := fr.Stats()
		kops := float64(len(ops)) / elapsed.Seconds() / 1e3
		t.AddRow(name, fmtSeconds(elapsed), fmt.Sprintf("%.1f", kops),
			fmt.Sprintf("%d", post.Tree.Flushes-pre.Tree.Flushes),
			fmt.Sprintf("%d", post.GangSubmits-pre.GangSubmits),
			fmt.Sprintf("%d", post.MigratedKeys-pre.MigratedKeys))
		t.Metrics[name+"_kops_per_s"] = kops
		return end, nil
	}

	now, err := phase("before", 0, gen.ops(s.Ops, insertRatio), nil)
	if err != nil {
		return nil, err
	}
	// The split streams toward shard 1 (idle, like every non-hot shard);
	// its chunks run as one more simulated thread among the workload.
	mig, now, err := fr.StartMigration(now, boundary, core.MaxMigrationKey, 0, 1)
	if err != nil {
		return nil, err
	}
	now, err = phase("during", now, gen.ops(s.Ops, insertRatio), mig)
	if err != nil {
		return nil, err
	}
	// Finish any chunks the during-phase makespan cut short.
	now, err = mig.Drain(now)
	if err != nil {
		return nil, err
	}
	if _, err := phase("after", now, gen.ops(s.Ops, insertRatio), nil); err != nil {
		return nil, err
	}
	st := fr.Stats()
	if err := fr.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("bench: forest invalid after rebalance: %w", err)
	}
	before := t.Metrics["before_kops_per_s"]
	after := t.Metrics["after_kops_per_s"]
	if before > 0 {
		t.Metrics["after_speedup"] = after / before
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("split moved %d keys in bounded chunks while serving; routing epoch %d, %d committed migrations",
			st.MigratedKeys, st.RoutingEpoch, st.Migrations),
		"before: the hot stripe pins one shard, so every flush is solo; after: the split spreads the hotspot over two shards whose flushes gang into shared psync submissions")
	return []Table{*t}, nil
}

// rebalanceHotPercent is the share of loaded keys living in stripe 0 —
// the dominant tenant whose traffic the split spreads out.
const rebalanceHotPercent = 70

// hotspotGen generates a mixed workload confined to one loaded stripe.
// Unlike workload.Mixed it keeps its fresh-key state across calls, so
// successive phases never re-insert a key. The records must be the
// workload.InitialKeys layout (record i holds key i*16+8).
type hotspotGen struct {
	recs      []kv.Record
	rng       *rand.Rand
	nextFresh map[int]uint64
}

func newHotspotGen(recs []kv.Record, seed int64) *hotspotGen {
	return &hotspotGen{recs: recs, rng: rand.New(rand.NewSource(seed)), nextFresh: make(map[int]uint64)}
}

func (g *hotspotGen) ops(n int, insertRatio float64) []workload.Op {
	out := make([]workload.Op, 0, n)
	for i := 0; i < n; i++ {
		base := g.rng.Intn(len(g.recs))
		if g.rng.Float64() < insertRatio {
			// Fresh keys fill the 15 gap slots around each loaded key.
			off := g.nextFresh[base] % 15
			if off >= 8 {
				off++
			}
			g.nextFresh[base]++
			out = append(out, workload.Op{
				Kind: workload.OpInsert,
				Rec:  kv.Record{Key: uint64(base)*16 + off, Value: g.rng.Uint64()},
			})
		} else {
			out = append(out, workload.Op{Kind: workload.OpSearch, Rec: g.recs[base]})
		}
	}
	return out
}

func init() {
	Register("rebalance", RebalanceBench)
}
