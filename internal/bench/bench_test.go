package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "a note") {
		t.Fatalf("rendering missing parts:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"fig2", "fig3", "fig3c", "fig4", "fig4c", "fig9", "fig10", "fig11", "fig12", "fig13a", "fig13b", "tune", "ablation", "forest", "recovery"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q not registered", w)
		}
	}
	if _, err := Run("nope", QuickScale()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// parse reads a numeric cell.
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q", cell)
	}
	return v
}

func TestFig2Shapes(t *testing.T) {
	tabs, err := Fig2(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	read := tabs[0]
	// 4KB latency must be < 2x the 2KB latency on every device
	// (package-level parallelism).
	for col := 1; col < len(read.Header); col++ {
		l2 := parse(t, read.Rows[0][col])
		l4 := parse(t, read.Rows[1][col])
		if l4 >= 2*l2 {
			t.Errorf("%s: 4KB latency %v not sublinear vs 2KB %v", read.Header[col], l4, l2)
		}
	}
	// Latency must grow with size overall.
	for col := 1; col < len(read.Header); col++ {
		first := parse(t, read.Rows[0][col])
		last := parse(t, read.Rows[len(read.Rows)-1][col])
		if last <= first {
			t.Errorf("%s: latency did not grow with I/O size", read.Header[col])
		}
	}
}

func TestFig3BandwidthScales(t *testing.T) {
	tabs, err := Fig3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		for col := 1; col < len(tab.Header); col++ {
			b1 := parse(t, tab.Rows[0][col])
			b64 := parse(t, tab.Rows[len(tab.Rows)-1][col])
			if b64 < 4*b1 {
				t.Errorf("%s %s: bandwidth gain %.1fx < 4x", tab.ID, tab.Header[col], b64/b1)
			}
		}
	}
}

func TestFig3cInterleavePenalty(t *testing.T) {
	tabs, err := Fig3c(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	// At the highest OutStd level, non-interleaved >= interleaved on every
	// device.
	last := tab.Rows[len(tab.Rows)-1]
	for col := 1; col < len(tab.Header); col += 2 {
		non := parse(t, last[col])
		inter := parse(t, last[col+1])
		if non < inter {
			t.Errorf("%s: interleaved faster (%v) than non-interleaved (%v)", tab.Header[col], inter, non)
		}
	}
}

func TestFig4SharedFileThreadCollapse(t *testing.T) {
	tabs, err := Fig4(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	shared := tabs[0]
	// At high OutStd, psync must beat threads on a shared file.
	last := shared.Rows[len(shared.Rows)-1]
	for col := 1; col < len(shared.Header); col += 2 {
		psync := parse(t, last[col])
		thread := parse(t, last[col+1])
		if psync < 2*thread {
			t.Errorf("shared file: psync %v not >> threads %v", psync, thread)
		}
	}
	// On separate files threads must be competitive (>= 50% of psync).
	separate := tabs[1]
	lastSep := separate.Rows[len(separate.Rows)-1]
	for col := 1; col < len(separate.Header); col += 2 {
		psync := parse(t, lastSep[col])
		thread := parse(t, lastSep[col+1])
		if thread < psync/2 {
			t.Errorf("separate files: threads %v below half of psync %v", thread, psync)
		}
	}
}

func TestFig4cContextSwitchGap(t *testing.T) {
	tabs, err := Fig4c(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	last := tab.Rows[len(tab.Rows)-1] // OutStd 32
	psync := parse(t, last[1])
	threads := parse(t, last[2])
	if threads < 10*psync {
		t.Errorf("context switch gap %vx, want >= 10x", threads/psync)
	}
}

func TestFig10PrangeNeverLoses(t *testing.T) {
	tabs, err := Fig10(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		for _, row := range tab.Rows {
			if sp := parse(t, row[3]); sp < 0.95 {
				t.Errorf("%s range %s: prange slower than legacy (%.2f)", tab.ID, row[0], sp)
			}
		}
		// The widest range should show a clear win.
		if sp := parse(t, tab.Rows[len(tab.Rows)-1][3]); sp < 1.5 {
			t.Errorf("%s: widest-range speedup only %.2f", tab.ID, sp)
		}
	}
}

func TestFig11InsertBeatsBtree(t *testing.T) {
	tabs, err := Fig11(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		var btIns float64
		var opq1Ins float64
		for _, row := range tab.Rows {
			if row[0] == "btree" {
				btIns = parse(t, row[1])
			}
			if row[0] == "1" {
				opq1Ins = parse(t, row[1])
			}
		}
		if btIns == 0 || opq1Ins == 0 {
			t.Fatalf("%s: missing rows", tab.ID)
		}
		if btIns < 2*opq1Ins {
			t.Errorf("%s: OPQ=1 insert speedup only %.1fx", tab.ID, btIns/opq1Ins)
		}
	}
}

// microScale is small enough to smoke-test the heavyweight index
// experiments inside the unit-test budget.
func microScale() Scale {
	return Scale{InitialEntries: 5_000, Ops: 500, MemBytes: 8 * 1024, Seed: 42}
}

func TestFig9Smoke(t *testing.T) {
	tabs, err := Fig9(microScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("%d tables", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s empty", tab.ID)
		}
		for _, row := range tab.Rows {
			if parse(t, row[1]) <= 0 || parse(t, row[2]) <= 0 {
				t.Fatalf("%s: non-positive time in %v", tab.ID, row)
			}
		}
	}
}

func TestFig12Smoke(t *testing.T) {
	tabs, err := Fig12(microScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 5 {
			t.Fatalf("%s: %d rows", tab.ID, len(tab.Rows))
		}
		// PIO must beat BFTL in total on every ratio (the paper's weakest
		// baseline).
		for _, row := range tab.Rows {
			bftlTotal := parse(t, row[1]) + parse(t, row[2])
			pioTotal := parse(t, row[7]) + parse(t, row[8])
			if pioTotal > bftlTotal {
				t.Errorf("%s %s: PIO total %.2f above BFTL %.2f", tab.ID, row[0], pioTotal, bftlTotal)
			}
		}
	}
}

func TestFig13Smoke(t *testing.T) {
	tabs, err := Fig13a(microScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 6 {
		t.Fatalf("fig13a rows = %d", len(tabs[0].Rows))
	}
	// PIO inserts must be far cheaper than the B+-tree's on every device.
	for r := 0; r+1 < len(tabs[0].Rows); r += 2 {
		btIns := parse(t, tabs[0].Rows[r][3])
		pioIns := parse(t, tabs[0].Rows[r+1][3])
		if pioIns > btIns {
			t.Errorf("row %d: PIO insert %.2f above btree %.2f", r, pioIns, btIns)
		}
	}
	tabs, err = Fig13b(microScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabs[0].Rows {
		if sp := parse(t, row[4]); sp < 1.0 {
			t.Errorf("fig13b %s threads=%s: PIO slower than B-link (%.2f)", row[0], row[1], sp)
		}
	}
}

func TestAblationSmoke(t *testing.T) {
	tabs, err := Ablations(microScale())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][2]float64{}
	for _, row := range tabs[0].Rows {
		rows[row[0]] = [2]float64{parse(t, row[1]), parse(t, row[2])}
	}
	if rows["psync-off"][0] <= rows["baseline"][0] {
		t.Errorf("psync-off inserts (%.2f) not slower than baseline (%.2f)",
			rows["psync-off"][0], rows["baseline"][0])
	}
	if rows["sorted-leaves"][0] < rows["baseline"][0] {
		t.Errorf("sorted-leaves inserts (%.2f) below baseline (%.2f)",
			rows["sorted-leaves"][0], rows["baseline"][0])
	}
}

func TestNodeSizeSmoke(t *testing.T) {
	tabs, err := NodeSize(microScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 4 {
			t.Fatalf("%s: %d rows", tab.ID, len(tab.Rows))
		}
		marked := false
		for _, row := range tab.Rows {
			if row[4] != "" {
				marked = true
			}
		}
		if !marked {
			t.Fatalf("%s: utility/cost pick not marked", tab.ID)
		}
	}
}

func TestTuneProducesValidParams(t *testing.T) {
	tabs, err := Tune(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabs[0].Rows {
		l := parse(t, row[2])
		o := parse(t, row[3])
		if l < 1 || l > 16 || o < 1 {
			t.Errorf("tuned params out of range: L=%v O=%v", l, o)
		}
	}
}

// TestRecoveryGangFewerSubmissions: at 4 shards the ganged group commit
// must issue strictly fewer blocking log submissions than the per-shard
// baseline, and recovery after the crash must redo the committed tail.
func TestRecoveryGangFewerSubmissions(t *testing.T) {
	s := microScale()
	s.Shards = 4
	tabs, err := RecoveryBench(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 2 {
			t.Fatalf("%s: %d rows, want ganged + per-shard", tab.ID, len(tab.Rows))
		}
		var ganged, baseline float64
		for _, row := range tab.Rows {
			switch row[0] {
			case "ganged":
				ganged = parse(t, row[3])
				if parse(t, row[4]) == 0 {
					t.Errorf("%s: ganged mode issued no ganged log forces", tab.ID)
				}
			case "per-shard":
				baseline = parse(t, row[3])
				if parse(t, row[4]) != 0 {
					t.Errorf("%s: baseline issued ganged log forces", tab.ID)
				}
			}
		}
		if ganged >= baseline {
			t.Errorf("%s: ganged log submissions %.0f not fewer than per-shard %.0f",
				tab.ID, ganged, baseline)
		}
	}
}

func TestForestScalingShape(t *testing.T) {
	tabs, err := ForestScaling(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		base := parse(t, tab.Rows[0][2]) // concurrent elapsed
		oneShard := parse(t, tab.Rows[1][2])
		if oneShard != base {
			t.Errorf("%s: single-shard forest %.3fs != concurrent %.3fs", tab.ID, oneShard, base)
		}
		// Some multi-shard configuration must beat the whole-index lock,
		// and at least one must have merged flushes into gang submissions.
		improved, merged := false, false
		for _, row := range tab.Rows[2:] {
			if parse(t, row[2]) < base {
				improved = true
			}
			if parse(t, row[5]) > 0 {
				merged = true
			}
		}
		if !improved {
			t.Errorf("%s: no shard count improved on the concurrent baseline", tab.ID)
		}
		if !merged {
			t.Errorf("%s: no gang submissions at any shard count", tab.ID)
		}
	}
}
