package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/wal"
	"repro/internal/workload"
)

// buildWALForest is buildForest plus one write-ahead log per shard on the
// same simulated device, so ganged log forces share the device with the
// ganged data writes. A nil partitioner hash-partitions; the rebalance
// bench passes skewed range bounds.
func buildWALForest(p flashsim.Config, n, memBytes, shards int, pp pioParams, part core.Partitioner, disableGang bool) (*core.Forest, []*wal.Log, []kv.Record, error) {
	dev := flashsim.MustDevice(p)
	space := ssdio.NewSpace(dev)
	pfs := make([]*pagefile.PageFile, shards)
	logs := make([]*wal.Log, shards)
	perShardBytes := int64(n)*64/int64(shards) + 1<<20
	for i := range pfs {
		f, err := space.Create(fmt.Sprintf("forest%d", i), perShardBytes)
		if err != nil {
			return nil, nil, nil, err
		}
		pfs[i], err = pagefile.New(f, pageSize)
		if err != nil {
			return nil, nil, nil, err
		}
		wf, err := space.Create(fmt.Sprintf("wal%d", i), 16<<20)
		if err != nil {
			return nil, nil, nil, err
		}
		logs[i], err = wal.NewLog(wf, pageSize)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	leaves := n / (core.Config{PageSize: pageSize, LeafSegs: pp.LeafSegs}).LeafEntryEstimate()
	bufBytes := memBytes - pp.OPQPages*pageSize - leaves
	if bufBytes < shards*pageSize {
		bufBytes = shards * pageSize
	}
	fr, err := core.NewForest(pfs, core.ForestConfig{
		Partitioner: part,
		Shard: core.Config{
			PageSize:    pageSize,
			LeafSegs:    pp.LeafSegs,
			OPQPages:    pp.OPQPages,
			PioMax:      64,
			SPeriod:     5000,
			BCnt:        pp.BCnt,
			BufferBytes: bufBytes,
			CPUPerNode:  cpuPerNode,
		},
		Logs:           logs,
		DisableLogGang: disableGang,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	recs := initialRecords(n)
	if err := fr.BulkLoad(recs); err != nil {
		return nil, nil, nil, err
	}
	return fr, logs, recs, nil
}

// RecoveryBench measures the log plane of the sharded forest: an
// insert-only workload against WAL-attached forests of growing shard
// count, once with the coordinator's two-phase ganged group commit and
// once with per-shard serial log forces (the baseline). It reports the
// blocking log submissions each mode issued, then crashes each forest at
// a commit point and replays the WAL, reporting the redo volume and
// recovery time.
func RecoveryBench(s Scale) ([]Table, error) {
	threads := s.Threads
	if threads <= 0 {
		threads = 8
	}
	shardLadder := []int{1, 2, 4, 8}
	if s.Shards > 0 {
		shardLadder = []int{s.Shards}
	}
	const insertRatio = 1.0
	var out []Table
	for _, dev := range []flashsim.Config{flashsim.Iodrive(), flashsim.P300()} {
		t := &Table{
			ID: "recovery-" + dev.Name,
			Title: fmt.Sprintf("group-commit WAL, %d inserts, %d threads, N=%d, %d channels",
				s.Ops, threads, s.InitialEntries, dev.Channels),
			Header: []string{"mode", "shards", "elapsed_s", "log_submits",
				"log_gangs", "log_forces", "flushes", "redone", "recover_ms"},
			Metrics: map[string]float64{},
		}
		for _, shards := range shardLadder {
			pp := forestTune(dev, s.InitialEntries, s.MemBytes, shards, insertRatio)
			for _, mode := range []string{"ganged", "per-shard"} {
				fr, logs, recs, err := buildWALForest(dev, s.InitialEntries, s.MemBytes, shards, pp, nil, mode == "per-shard")
				if err != nil {
					return nil, err
				}
				ops := workload.Mixed(s.Ops, insertRatio, recs, s.Seed)
				elapsed := runMixedThreads(ops, threads, fr.Insert, fr.Search)
				// Commit point: one last ganged force makes the queued
				// entries' redo records durable, then the crash hits.
				endAt, _, err := wal.ForceGroup(elapsed, logs)
				if err != nil {
					return nil, err
				}
				st := fr.Stats()
				fr.Crash()
				rep, recDone, err := fr.Recover(endAt)
				if err != nil {
					return nil, err
				}
				if err := fr.CheckInvariants(); err != nil {
					return nil, fmt.Errorf("bench: recovered forest invalid: %w", err)
				}
				t.AddRow(mode, fmt.Sprintf("%d", shards), fmtSeconds(elapsed),
					fmt.Sprintf("%d", st.LogSubmits),
					fmt.Sprintf("%d", st.LogGangSubmits),
					fmt.Sprintf("%d", st.LogForceWrites),
					fmt.Sprintf("%d", st.Tree.Flushes),
					fmt.Sprintf("%d", rep.Total.RedoneEntries),
					fmt.Sprintf("%.2f", (recDone-endAt).Millis()))
				t.Metrics[fmt.Sprintf("%s_%dshards_kops_per_s", mode, shards)] =
					float64(s.Ops) / elapsed.Seconds() / 1e3
			}
		}
		t.Notes = append(t.Notes,
			"log_submits counts blocking log-force submissions (serial forces + ganged group commits); ganged mode turns each group flush's per-member forces into two shared submissions",
			"the crash hits a commit point, so recovery redoes the queued tail without undo I/O; recover_ms is the timed undo cost (zero here by design)")
		out = append(out, *t)
	}
	return out, nil
}

func init() {
	Register("recovery", RecoveryBench)
}
