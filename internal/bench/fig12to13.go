package bench

import (
	"fmt"

	"repro/internal/blink"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// Fig12: mixed insert/search workloads (10/90..90/10) across the four
// indexes (BFTL, B+-tree, FD-tree, PIO B-tree) on the three devices,
// reporting insert and search time separately as in the paper's stacked
// bars.
func Fig12(s Scale) ([]Table, error) {
	ratios := []struct {
		name   string
		insert float64
	}{
		{"10/90", 0.10}, {"30/70", 0.30}, {"50/50", 0.50}, {"70/30", 0.70}, {"90/10", 0.90},
	}
	var out []Table
	for _, dev := range mainDevices() {
		t := &Table{
			ID:    "fig12-" + dev.Name,
			Title: fmt.Sprintf("mixed workload elapsed time (s), %d ops, N=%d", s.Ops, s.InitialEntries),
			Header: []string{"ins/sea", "bftl_ins", "bftl_sea", "btree_ins", "btree_sea",
				"fdtree_ins", "fdtree_sea", "pio_ins", "pio_sea", "pio_total_speedup_vs_btree"},
		}
		for _, r := range ratios {
			row := []string{r.name}
			var btTotal, pioTotal vtime.Ticks

			// BFTL.
			bf, recs, err := buildBftl(dev, s.InitialEntries)
			if err != nil {
				return nil, err
			}
			ops := workload.Mixed(s.Ops, r.insert, recs, s.Seed)
			var ins, sea vtime.Ticks
			var now vtime.Ticks
			for _, op := range ops {
				before := now
				if op.Kind == workload.OpInsert {
					now, err = bf.Insert(now, op.Rec)
					ins += now - before
				} else {
					_, _, now, err = bf.Search(now, op.Rec.Key)
					sea += now - before
				}
				if err != nil {
					return nil, err
				}
			}
			row = append(row, fmtSeconds(ins), fmtSeconds(sea))

			// B+-tree.
			bt, recs, err := buildBtree(dev, s.InitialEntries, s.MemBytes)
			if err != nil {
				return nil, err
			}
			ops = workload.Mixed(s.Ops, r.insert, recs, s.Seed)
			ins, sea, now = 0, 0, 0
			for _, op := range ops {
				before := now
				if op.Kind == workload.OpInsert {
					now, err = bt.Insert(now, op.Rec)
					ins += now - before
				} else {
					_, _, now, err = bt.Search(now, op.Rec.Key)
					sea += now - before
				}
				if err != nil {
					return nil, err
				}
			}
			row = append(row, fmtSeconds(ins), fmtSeconds(sea))
			btTotal = ins + sea

			// FD-tree.
			fd, recs, err := buildFdtree(dev, s.InitialEntries, s.MemBytes)
			if err != nil {
				return nil, err
			}
			ops = workload.Mixed(s.Ops, r.insert, recs, s.Seed)
			ins, sea, now = 0, 0, 0
			for _, op := range ops {
				before := now
				if op.Kind == workload.OpInsert {
					now, err = fd.Insert(now, op.Rec)
					ins += now - before
				} else {
					_, _, now, err = fd.Search(now, op.Rec.Key)
					sea += now - before
				}
				if err != nil {
					return nil, err
				}
			}
			row = append(row, fmtSeconds(ins), fmtSeconds(sea))

			// PIO B-tree, auto-tuned per Section 3.6 for the ratio.
			pp := defaultPio()
			pio, recs, err := buildPio(dev, s.InitialEntries, s.MemBytes, pp)
			if err != nil {
				return nil, err
			}
			ops = workload.Mixed(s.Ops, r.insert, recs, s.Seed)
			ins, sea, now = 0, 0, 0
			for _, op := range ops {
				before := now
				if op.Kind == workload.OpInsert {
					now, err = pio.Insert(now, op.Rec)
					ins += now - before
				} else {
					_, _, now, err = pio.Search(now, op.Rec.Key)
					sea += now - before
				}
				if err != nil {
					return nil, err
				}
			}
			row = append(row, fmtSeconds(ins), fmtSeconds(sea))
			pioTotal = ins + sea

			row = append(row, fmt.Sprintf("%.2f", float64(btTotal)/float64(pioTotal)))
			t.AddRow(row...)
		}
		t.Notes = append(t.Notes,
			"paper: PIO beats BFTL 2-15x, B+-tree 1.4-11x, FD-tree 1.23-1.47x (gap mostly point search)")
		out = append(out, *t)
	}
	return out, nil
}

// tpccIndexes builds one index per relation on a single shared device.
type tpccIndexes struct {
	dev    *flashsim.Device
	btrees []*btree.Tree
	pios   []*core.Tree
}

// buildTPCC loads the per-relation initial keys into both index families
// on separate files of one device (paper: "8 index files for 8 index
// relations"), using the Section 4.2 parameters: node/page size 4KB -> at
// our scale pageSize; L=1; OPQ=20 pages; buffer 4MB -> MemBytes/4.
func buildTPCC(p flashsim.Config, initial [][]kv.Record, memBytes int, pioOnly, btreeOnly bool) (*tpccIndexes, error) {
	dev := flashsim.MustDevice(p)
	space := ssdio.NewSpace(dev)
	out := &tpccIndexes{dev: dev}
	perRelMem := memBytes / len(initial)
	if perRelMem < pageSize {
		perRelMem = pageSize
	}
	for r, recs := range initial {
		if !pioOnly {
			f, err := space.Create(fmt.Sprintf("bt%d", r), int64(len(recs))*64+1<<20)
			if err != nil {
				return nil, err
			}
			pf, err := pagefile.New(f, pageSize)
			if err != nil {
				return nil, err
			}
			bt, err := btree.New(pf, btree.Config{NodeSize: pageSize, BufferBytes: perRelMem, CPUPerNode: cpuPerNode})
			if err != nil {
				return nil, err
			}
			if err := bt.BulkLoad(recs); err != nil {
				return nil, err
			}
			out.btrees = append(out.btrees, bt)
		}
		if !btreeOnly {
			f, err := space.Create(fmt.Sprintf("pio%d", r), int64(len(recs))*64+1<<20)
			if err != nil {
				return nil, err
			}
			pf, err := pagefile.New(f, pageSize)
			if err != nil {
				return nil, err
			}
			opqPages := 4 // scaled from the paper's 20 x 4KB
			bufBytes := perRelMem - opqPages*pageSize
			if bufBytes < pageSize {
				bufBytes = pageSize
			}
			pio, err := core.New(pf, core.Config{
				PageSize: pageSize, LeafSegs: 1, OPQPages: opqPages,
				PioMax: 64, SPeriod: 5000, BCnt: 5000,
				BufferBytes: bufBytes, CPUPerNode: cpuPerNode,
			})
			if err != nil {
				return nil, err
			}
			if err := pio.BulkLoad(recs); err != nil {
				return nil, err
			}
			out.pios = append(out.pios, pio)
		}
	}
	return out, nil
}

// Fig13a: TPC-C trace, single process: per-op-type elapsed time for
// B+-tree and PIO B-tree on the three devices.
func Fig13a(s Scale) ([]Table, error) {
	trace, initial := workload.TPCCTrace(workload.TPCCConfig{
		Ops:  s.Ops,
		Seed: s.Seed,
	}, s.InitialEntries/8)
	t := &Table{
		ID:    "fig13a",
		Title: fmt.Sprintf("TPC-C trace (%d ops): per-op time (s), single process", len(trace)),
		Header: []string{"device", "index", "search_s", "insert_s", "range_s", "delete_s",
			"total_s", "speedup"},
	}
	for _, dev := range mainDevices() {
		// Each family replays on its own fresh device instance so the
		// virtual resource timelines do not cross-contaminate.
		idx, err := buildTPCC(dev, initial, s.MemBytes/4, false, true)
		if err != nil {
			return nil, err
		}
		idxPio, err := buildTPCC(dev, initial, s.MemBytes/4, true, false)
		if err != nil {
			return nil, err
		}
		btT, err := replayTrace(trace, func(op workload.Op, now vtime.Ticks) (vtime.Ticks, error) {
			bt := idx.btrees[op.Relation]
			switch op.Kind {
			case workload.OpSearch:
				_, _, n, err := bt.Search(now, op.Rec.Key)
				return n, err
			case workload.OpInsert:
				return bt.Insert(now, op.Rec)
			case workload.OpRange:
				_, n, err := bt.RangeSearch(now, op.Rec.Key, op.Rec.Key+op.Span)
				return n, err
			default:
				_, n, err := bt.Delete(now, op.Rec.Key)
				return n, err
			}
		})
		if err != nil {
			return nil, err
		}
		pioT, err := replayTrace(trace, func(op workload.Op, now vtime.Ticks) (vtime.Ticks, error) {
			pio := idxPio.pios[op.Relation]
			switch op.Kind {
			case workload.OpSearch:
				_, _, n, err := pio.Search(now, op.Rec.Key)
				return n, err
			case workload.OpInsert:
				return pio.Insert(now, op.Rec)
			case workload.OpRange:
				_, n, err := pio.RangeSearch(now, op.Rec.Key, op.Rec.Key+op.Span)
				return n, err
			default:
				return pio.Delete(now, op.Rec.Key)
			}
		})
		if err != nil {
			return nil, err
		}
		bTot := btT.total()
		pTot := pioT.total()
		t.AddRow(dev.Name, "btree", fmtSeconds(btT.search), fmtSeconds(btT.insert),
			fmtSeconds(btT.rng), fmtSeconds(btT.del), fmtSeconds(bTot), "1.00")
		t.AddRow(dev.Name, "pio", fmtSeconds(pioT.search), fmtSeconds(pioT.insert),
			fmtSeconds(pioT.rng), fmtSeconds(pioT.del), fmtSeconds(pTot),
			fmt.Sprintf("%.2f", float64(bTot)/float64(pTot)))
	}
	st := workload.Measure(trace)
	t.Notes = append(t.Notes, fmt.Sprintf("trace mix: search %.1f%% insert %.1f%% range %.1f%% delete %.1f%%",
		100*st.Frac(workload.OpSearch), 100*st.Frac(workload.OpInsert),
		100*st.Frac(workload.OpRange), 100*st.Frac(workload.OpDelete)))
	t.Notes = append(t.Notes, "paper: PIO 1.25-1.49x total; insert 5.7-6.2x; range 1.9-2.1x")
	return []Table{*t}, nil
}

// opTimes accumulates per-kind elapsed time.
type opTimes struct {
	search, insert, rng, del vtime.Ticks
}

func (o opTimes) total() vtime.Ticks { return o.search + o.insert + o.rng + o.del }

// replayTrace runs the trace single-threaded, attributing time per kind.
func replayTrace(trace []workload.Op, exec func(workload.Op, vtime.Ticks) (vtime.Ticks, error)) (opTimes, error) {
	var o opTimes
	var now vtime.Ticks
	for _, op := range trace {
		next, err := exec(op, now)
		if err != nil {
			return o, err
		}
		d := next - now
		switch op.Kind {
		case workload.OpSearch:
			o.search += d
		case workload.OpInsert:
			o.insert += d
		case workload.OpRange:
			o.rng += d
		default:
			o.del += d
		}
		now = next
	}
	return o, nil
}

// Fig13b: TPC-C trace with 1..16 simulated threads: concurrent PIO B-tree
// vs B-link tree.
func Fig13b(s Scale) ([]Table, error) {
	trace, initial := workload.TPCCTrace(workload.TPCCConfig{
		Ops:  s.Ops,
		Seed: s.Seed,
	}, s.InitialEntries/8)
	t := &Table{
		ID:     "fig13b",
		Title:  fmt.Sprintf("TPC-C trace (%d ops): elapsed (s) vs threads", len(trace)),
		Header: []string{"device", "threads", "blink_s", "pio_s", "speedup"},
	}
	for _, dev := range mainDevices() {
		for _, threads := range []int{1, 2, 4, 8, 16} {
			// B-link tree family.
			idx, err := buildTPCC(dev, initial, s.MemBytes/4, false, true)
			if err != nil {
				return nil, err
			}
			blinks := make([]*blink.Tree, len(idx.btrees))
			for i, bt := range idx.btrees {
				blinks[i] = blink.New(bt, vtime.Microsecond)
			}
			blinkTime := runTraceThreads(trace, threads, func(op workload.Op, now vtime.Ticks) (vtime.Ticks, error) {
				b := blinks[op.Relation]
				switch op.Kind {
				case workload.OpSearch:
					_, _, n, err := b.Search(now, op.Rec.Key)
					return n, err
				case workload.OpInsert:
					return b.Insert(now, op.Rec)
				case workload.OpRange:
					_, n, err := b.RangeSearch(now, op.Rec.Key, op.Rec.Key+op.Span)
					return n, err
				default:
					_, n, err := b.Delete(now, op.Rec.Key)
					return n, err
				}
			})

			// Concurrent PIO family.
			idx2, err := buildTPCC(dev, initial, s.MemBytes/4, true, false)
			if err != nil {
				return nil, err
			}
			cpios := make([]*core.Concurrent, len(idx2.pios))
			for i, p := range idx2.pios {
				cpios[i] = core.NewConcurrent(p)
			}
			pioTime := runTraceThreads(trace, threads, func(op workload.Op, now vtime.Ticks) (vtime.Ticks, error) {
				c := cpios[op.Relation]
				switch op.Kind {
				case workload.OpSearch:
					_, _, n, err := c.Search(now, op.Rec.Key)
					return n, err
				case workload.OpInsert:
					return c.Insert(now, op.Rec)
				case workload.OpRange:
					_, n, err := c.RangeSearch(now, op.Rec.Key, op.Rec.Key+op.Span)
					return n, err
				default:
					return c.Delete(now, op.Rec.Key)
				}
			})
			t.AddRow(dev.Name, fmt.Sprintf("%d", threads), fmtSeconds(blinkTime), fmtSeconds(pioTime),
				fmt.Sprintf("%.2f", float64(blinkTime)/float64(pioTime)))
		}
	}
	t.Notes = append(t.Notes, "paper: concurrent PIO 1.17-1.49x faster than B-link across thread counts")
	return []Table{*t}, nil
}

// runTraceThreads partitions the trace round-robin across simulated
// threads and returns the makespan.
func runTraceThreads(trace []workload.Op, threads int, exec func(workload.Op, vtime.Ticks) (vtime.Ticks, error)) vtime.Ticks {
	ths := make([]*vtimeThread, threads)
	for i := 0; i < threads; i++ {
		tid := i
		ths[i] = newVtimeThread(i, func(_, step int, now vtime.Ticks) (vtime.Ticks, bool) {
			idx := step*threads + tid
			if idx >= len(trace) {
				return now, false
			}
			next, err := exec(trace[idx], now)
			if err != nil {
				panic(err)
			}
			return next, true
		})
	}
	return runThreads(3*vtime.Microsecond, ths)
}

func init() {
	Register("fig12", Fig12)
	Register("fig13a", Fig13a)
	Register("fig13b", Fig13b)
}
