package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/vtime"
	"repro/internal/workload"
)

// Fig9: point-search elapsed time vs buffer pool size, B+-tree vs PIO
// B-tree, on the three main devices (search-only workload).
func Fig9(s Scale) ([]Table, error) {
	var out []Table
	// Buffer sweep mirrors the paper's 1MB..16MB as fractions of the
	// scaled budget: mem/16 .. mem (deduplicated after the page-size floor).
	var sweeps []int
	for _, m := range []int{s.MemBytes / 16, s.MemBytes / 8, s.MemBytes / 4, s.MemBytes / 2, s.MemBytes} {
		if m < pageSize {
			m = pageSize
		}
		if len(sweeps) == 0 || sweeps[len(sweeps)-1] != m {
			sweeps = append(sweeps, m)
		}
	}
	for _, dev := range mainDevices() {
		t := &Table{
			ID:     "fig9-" + dev.Name,
			Title:  fmt.Sprintf("search time (s) vs buffer size, %d searches, N=%d", s.Ops, s.InitialEntries),
			Header: []string{"buffer_bytes", "btree_s", "pio_s", "speedup"},
		}
		// One node size per device (tuned at the full budget), as in the
		// paper's sweep.
		nodeSize := btreeNodeSize(dev, s.InitialEntries, s.MemBytes)
		for _, mem := range sweeps {
			bt, recs, err := buildBtreeNode(dev, s.InitialEntries, mem, nodeSize)
			if err != nil {
				return nil, err
			}
			ops := workload.SearchOnly(s.Ops, recs, s.Seed)
			var btTime vtime.Ticks
			for _, op := range ops {
				_, _, btTime2, err := bt.Search(btTime, op.Rec.Key)
				if err != nil {
					return nil, err
				}
				btTime = btTime2
			}
			// Leaf and OPQ sizes per eq. (10) for the search-only ratio.
			pp := tunePio(dev, s.InitialEntries, mem, 0.0)
			pio, _, err := buildPio(dev, s.InitialEntries, mem, pp)
			if err != nil {
				return nil, err
			}
			var pioTime vtime.Ticks
			for _, op := range ops {
				_, _, pioTime2, err := pio.Search(pioTime, op.Rec.Key)
				if err != nil {
					return nil, err
				}
				pioTime = pioTime2
			}
			t.AddRow(fmt.Sprintf("%d", mem), fmtSeconds(btTime), fmtSeconds(pioTime),
				fmt.Sprintf("%.2f", float64(btTime)/float64(pioTime)))
		}
		t.Notes = append(t.Notes, "paper: PIO 1.36-1.5x faster point search across buffer sizes")
		out = append(out, *t)
	}
	return out, nil
}

// Fig10: range-search latency vs key range (log scale), B+-tree legacy
// range vs PIO prange.
func Fig10(s Scale) ([]Table, error) {
	var out []Table
	// Key ranges in entries: the paper sweeps 1K..32M over 1G entries
	// (1e-6..3.2% of N); scaled: from ~N/200000 up to ~N/30.
	spans := []int{}
	for sp := s.InitialEntries / 2048; sp <= s.InitialEntries/8; sp *= 4 {
		if sp < 4 {
			sp = 4
		}
		spans = append(spans, sp)
	}
	const queries = 20
	for _, dev := range mainDevices() {
		t := &Table{
			ID:     "fig10-" + dev.Name,
			Title:  fmt.Sprintf("range search latency (µs, avg of %d) vs range size (entries)", queries),
			Header: []string{"range_entries", "btree_us", "pio_us", "speedup"},
		}
		bt, recs, err := buildBtree(dev, s.InitialEntries, s.MemBytes)
		if err != nil {
			return nil, err
		}
		pio, _, err := buildPio(dev, s.InitialEntries, s.MemBytes, defaultPio())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(s.Seed))
		for _, span := range spans {
			var btTime, pioTime vtime.Ticks
			for q := 0; q < queries; q++ {
				start := rng.Intn(len(recs) - span)
				lo, hi := recs[start].Key, recs[start+span].Key
				bres, btTime2, err := bt.RangeSearch(btTime, lo, hi)
				if err != nil {
					return nil, err
				}
				pres, pioTime2, err := pio.RangeSearch(pioTime, lo, hi)
				if err != nil {
					return nil, err
				}
				if len(bres) != len(pres) {
					return nil, fmt.Errorf("fig10: result mismatch %d vs %d", len(bres), len(pres))
				}
				btTime, pioTime = btTime2, pioTime2
			}
			t.AddRow(fmt.Sprintf("%d", span),
				fmt.Sprintf("%.0f", (btTime/queries).Micros()),
				fmt.Sprintf("%.0f", (pioTime/queries).Micros()),
				fmt.Sprintf("%.2f", float64(btTime)/float64(pioTime)))
		}
		t.Notes = append(t.Notes, "paper: prange >= legacy range everywhere, up to ~5x on wide ranges")
		out = append(out, *t)
	}
	return out, nil
}

// Fig11: insert time and search time vs OPQ size (buffer pool shrinks as
// the OPQ grows, total memory fixed).
func Fig11(s Scale) ([]Table, error) {
	var out []Table
	maxPages := s.MemBytes / pageSize
	var opqSizes []int
	seen := map[int]bool{}
	for _, p := range []int{1, 2, 4, 8, 16, 64, 256, maxPages - 1} {
		if p >= 1 && p <= maxPages-1 && !seen[p] {
			seen[p] = true
			opqSizes = append(opqSizes, p)
		}
	}
	for _, dev := range mainDevices() {
		t := &Table{
			ID:     "fig11-" + dev.Name,
			Title:  fmt.Sprintf("insert/search time (s) vs OPQ pages, %d ops each", s.Ops),
			Header: []string{"opq_pages", "insert_s", "search_s"},
		}
		for _, opq := range opqSizes {
			pp := defaultPio()
			pp.OPQPages = opq
			pio, recs, err := buildPio(dev, s.InitialEntries, s.MemBytes, pp)
			if err != nil {
				return nil, err
			}
			inserts := workload.InsertOnly(s.Ops, recs, s.Seed)
			var insTime vtime.Ticks
			for _, op := range inserts {
				insTime, err = pio.Insert(insTime, op.Rec)
				if err != nil {
					return nil, err
				}
			}
			searches := workload.SearchOnly(s.Ops, recs, s.Seed+1)
			var seaTime vtime.Ticks
			for _, op := range searches {
				_, _, seaTime2, err := pio.Search(seaTime, op.Rec.Key)
				if err != nil {
					return nil, err
				}
				seaTime = seaTime2
			}
			t.AddRow(fmt.Sprintf("%d", opq), fmtSeconds(insTime), fmtSeconds(seaTime))
		}
		// Reference: B+-tree on the same workloads with the full budget.
		bt, recs, err := buildBtree(dev, s.InitialEntries, s.MemBytes)
		if err != nil {
			return nil, err
		}
		var btIns, btSea vtime.Ticks
		for _, op := range workload.InsertOnly(s.Ops, recs, s.Seed) {
			btIns, err = bt.Insert(btIns, op.Rec)
			if err != nil {
				return nil, err
			}
		}
		for _, op := range workload.SearchOnly(s.Ops, recs, s.Seed+1) {
			_, _, btSea2, err := bt.Search(btSea, op.Rec.Key)
			if err != nil {
				return nil, err
			}
			btSea = btSea2
		}
		t.AddRow("btree", fmtSeconds(btIns), fmtSeconds(btSea))
		t.Notes = append(t.Notes,
			"paper: OPQ=1 page already 4.3-8.2x faster inserts than B+-tree; large OPQ up to 28x; search degrades slowly")
		out = append(out, *t)
	}
	return out, nil
}

func init() {
	Register("fig9", Fig9)
	Register("fig10", Fig10)
	Register("fig11", Fig11)
}
