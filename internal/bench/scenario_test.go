package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestScenarioExperimentsRegistered checks every named scenario shows up
// in the registry under the scenario_ prefix.
func TestScenarioExperimentsRegistered(t *testing.T) {
	ids := IDs()
	for _, sc := range scenario.All() {
		want := "scenario_" + sc.Name
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %s not registered (have %v)", want, ids)
		}
	}
}

func TestScenarioBenchQuick(t *testing.T) {
	tables, err := Run("scenario_burstcrash", QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	tb := tables[0]
	if tb.ID != "scenario_burstcrash" || len(tb.Rows) != 4 {
		t.Fatalf("table malformed: id=%s rows=%d", tb.ID, len(tb.Rows))
	}
	for _, m := range []string{"cold_kops_per_s", "burst_p99_us", "restart_kops_per_s", "total_migrated_keys", "final_keys"} {
		if _, ok := tb.Metrics[m]; !ok {
			t.Errorf("metric %s missing (have %v)", m, tb.Metrics)
		}
	}
	// The scenario tables must survive the stable marshaling twice with
	// identical bytes — this is what the CI determinism gate relies on.
	a, err := MarshalStable(tables)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run("scenario_burstcrash", QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalStable(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("scenario_burstcrash BENCH JSON not byte-stable across runs")
	}
	if !strings.Contains(strings.Join(tb.Notes, "\n"), "durability check") {
		t.Errorf("notes missing durability check: %v", tb.Notes)
	}
}
