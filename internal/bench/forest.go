package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// buildForest bulk-loads a sharded PIO forest on a fresh device instance.
// OPQ and buffer budgets are global (the forest splits them), mirroring
// buildPio's memory accounting so a one-shard forest is parameter-for-
// parameter the Concurrent baseline.
func buildForest(p flashsim.Config, n, memBytes, shards int, pp pioParams) (*core.Forest, []kv.Record, error) {
	dev := flashsim.MustDevice(p)
	space := ssdio.NewSpace(dev)
	pfs := make([]*pagefile.PageFile, shards)
	perShardBytes := int64(n)*64/int64(shards) + 1<<20
	for i := range pfs {
		f, err := space.Create(fmt.Sprintf("forest%d", i), perShardBytes)
		if err != nil {
			return nil, nil, err
		}
		pfs[i], err = pagefile.New(f, pageSize)
		if err != nil {
			return nil, nil, err
		}
	}
	leaves := n / (core.Config{PageSize: pageSize, LeafSegs: pp.LeafSegs}).LeafEntryEstimate()
	bufBytes := memBytes - pp.OPQPages*pageSize - leaves
	if bufBytes < shards*pageSize {
		bufBytes = shards * pageSize
	}
	fr, err := core.NewForest(pfs, core.ForestConfig{
		Shard: core.Config{
			PageSize:    pageSize,
			LeafSegs:    pp.LeafSegs,
			OPQPages:    pp.OPQPages, // global budget, split by the forest
			PioMax:      64,
			SPeriod:     5000,
			BCnt:        pp.BCnt,
			BufferBytes: bufBytes, // global budget, split by the forest
			CPUPerNode:  cpuPerNode,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	recs := initialRecords(n)
	if err := fr.BulkLoad(recs); err != nil {
		return nil, nil, err
	}
	return fr, recs, nil
}

// forestTune picks the forest parameters: the per-shard (L, O) optimum of
// eq. (10) at the per-shard scale (Section 3.6 extended to sharding),
// reported as a global OPQ budget.
func forestTune(p flashsim.Config, n, memBytes, shards int, insertRatio float64) pioParams {
	dev := flashsim.MustDevice(p)
	d := costmodel.Calibrate(dev, pageSize, 16, 64, 8)
	params := costmodel.TreeParams{
		N:                 float64(n),
		F:                 float64(pageSize / kv.RecordSize),
		U:                 0.7,
		Ri:                insertRatio,
		Rs:                1 - insertRatio,
		M:                 float64(memBytes / pageSize),
		OPQEntriesPerPage: float64(pageSize / kv.EntrySize),
	}
	maxO := memBytes/pageSize - 1
	if maxO < shards {
		maxO = shards
	}
	pp := defaultPio()
	res, err := costmodel.TuneForest(params, d, 5000, 16, maxO, shards)
	if err == nil {
		pp.LeafSegs = res.PerShard.L
		pp.OPQPages = res.GlobalO
	}
	return pp
}

// runMixedThreads replays a mixed insert/search workload round-robin over
// simulated threads against any concurrent index and returns the
// makespan.
func runMixedThreads(ops []workload.Op, threads int,
	insert func(vtime.Ticks, kv.Record) (vtime.Ticks, error),
	search func(vtime.Ticks, kv.Key) (kv.Value, bool, vtime.Ticks, error)) vtime.Ticks {
	ths := make([]*vtimeThread, threads)
	for i := 0; i < threads; i++ {
		tid := i
		ths[i] = newVtimeThread(i, func(_, step int, now vtime.Ticks) (vtime.Ticks, bool) {
			idx := step*threads + tid
			if idx >= len(ops) {
				return now, false
			}
			op := ops[idx]
			var next vtime.Ticks
			var err error
			if op.Kind == workload.OpInsert {
				next, err = insert(now, op.Rec)
			} else {
				_, _, next, err = search(now, op.Rec.Key)
			}
			if err != nil {
				panic(err)
			}
			return next, true
		})
	}
	return runThreads(3*vtime.Microsecond, ths)
}

// ForestScaling is the shard-scaling experiment: a mixed workload driven
// by simulated threads against the Concurrent single tree (the paper's
// Section 4.2 scheme) and against forests of growing shard count, on the
// multi-channel device profiles. Per-shard flush locks let searches on
// other shards proceed during a flush, and ripe shards flush together
// through one concatenated psync submission; both effects grow with the
// shard count until the device's channels saturate.
func ForestScaling(s Scale) ([]Table, error) {
	threads := s.Threads
	if threads <= 0 {
		threads = 8
	}
	shardLadder := []int{1, 2, 4, 8}
	if s.Shards > 0 {
		shardLadder = []int{s.Shards}
	}
	const insertRatio = 0.5
	var out []Table
	for _, dev := range []flashsim.Config{flashsim.Iodrive(), flashsim.P300()} {
		t := &Table{
			ID: "forest-" + dev.Name,
			Title: fmt.Sprintf("shard scaling, %d ops 50/50 mix, %d threads, N=%d, %d channels",
				s.Ops, threads, s.InitialEntries, dev.Channels),
			Header: []string{"index", "shards", "elapsed_s", "speedup", "flushes",
				"gang_submits", "shards_per_group", "vlock_wait_ms"},
		}

		// Baseline: the Concurrent wrapper over one PIO B-tree, with the
		// same global budgets the forests get.
		pp := forestTune(dev, s.InitialEntries, s.MemBytes, 1, insertRatio)
		tr, recs, err := buildPio(dev, s.InitialEntries, s.MemBytes, pp)
		if err != nil {
			return nil, err
		}
		cc := core.NewConcurrent(tr)
		ops := workload.Mixed(s.Ops, insertRatio, recs, s.Seed)
		baseTime := runMixedThreads(ops, threads, cc.Insert, cc.Search)
		waits, contended := cc.VLockStats()
		st := cc.Tree().Stats()
		t.AddRow("concurrent", "1", fmtSeconds(baseTime), "1.00",
			fmt.Sprintf("%d", st.Flushes), "0", "1.00",
			fmt.Sprintf("%.1f", contended.Millis()))
		_ = waits

		for _, shards := range shardLadder {
			pp := forestTune(dev, s.InitialEntries, s.MemBytes, shards, insertRatio)
			fr, recs, err := buildForest(dev, s.InitialEntries, s.MemBytes, shards, pp)
			if err != nil {
				return nil, err
			}
			ops := workload.Mixed(s.Ops, insertRatio, recs, s.Seed)
			elapsed := runMixedThreads(ops, threads, fr.Insert, fr.Search)
			fst := fr.Stats()
			perGroup := 0.0
			if fst.GroupFlushes > 0 {
				perGroup = float64(fst.GroupedShards) / float64(fst.GroupFlushes)
			}
			t.AddRow("forest", fmt.Sprintf("%d", shards), fmtSeconds(elapsed),
				fmt.Sprintf("%.2f", float64(baseTime)/float64(elapsed)),
				fmt.Sprintf("%d", fst.Tree.Flushes),
				fmt.Sprintf("%d", fst.GangSubmits),
				fmt.Sprintf("%.2f", perGroup),
				fmt.Sprintf("%.1f", fst.VLockContended.Millis()))
		}
		t.Notes = append(t.Notes,
			"per-shard flush locks stop one shard's flush from stalling the others; gang_submits counts cross-shard flush batches merged into one psync call")
		out = append(out, *t)
	}
	return out, nil
}

func init() {
	Register("forest", ForestScaling)
}
