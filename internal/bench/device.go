package bench

import (
	"fmt"

	"repro/internal/flashsim"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// Figure 2: random read/write latency vs I/O size (2KB..256KB) on all six
// device profiles, OutStd level 1, direct I/O.
func Fig2(s Scale) ([]Table, error) {
	read := &Table{ID: "fig2a", Title: "random-read latency (µs) vs I/O size", Header: []string{"size_kb"}}
	write := &Table{ID: "fig2b", Title: "random-write latency (µs) vs I/O size", Header: []string{"size_kb"}}
	profiles := flashsim.Profiles()
	for _, p := range profiles {
		read.Header = append(read.Header, p.Name)
		write.Header = append(write.Header, p.Name)
	}
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256}
	const samples = 64
	for _, kb := range sizes {
		rRow := []string{fmt.Sprintf("%d", kb)}
		wRow := []string{fmt.Sprintf("%d", kb)}
		for _, p := range profiles {
			dev := flashsim.MustDevice(p)
			rng := newRng(s.Seed)
			var now vtime.Ticks
			var rSum, wSum vtime.Ticks
			for i := 0; i < samples; i++ {
				off := rng.pageOffset()
				res := dev.SubmitOne(now, flashsim.Request{Op: flashsim.Read, Offset: off, Size: kb * 1024})
				rSum += res.Latency()
				now = res.Done
				res = dev.SubmitOne(now, flashsim.Request{Op: flashsim.Write, Offset: rng.pageOffset(), Size: kb * 1024})
				wSum += res.Latency()
				now = res.Done
			}
			rRow = append(rRow, fmt.Sprintf("%.0f", (rSum/samples).Micros()))
			wRow = append(wRow, fmt.Sprintf("%.0f", (wSum/samples).Micros()))
		}
		read.AddRow(rRow...)
		write.AddRow(wRow...)
	}
	read.Notes = append(read.Notes, "paper shape: 4KB latency ~= 2KB latency (striping), sublinear growth beyond")
	return []Table{*read, *write}, nil
}

// Figure 3(a,b): 4KB random read / write bandwidth vs outstanding I/O
// level 1..64.
func Fig3(s Scale) ([]Table, error) {
	read := &Table{ID: "fig3a", Title: "read bandwidth (MB/s) vs OutStd level, 4KB", Header: []string{"outstd"}}
	write := &Table{ID: "fig3b", Title: "write bandwidth (MB/s) vs OutStd level, 4KB", Header: []string{"outstd"}}
	profiles := flashsim.Profiles()
	for _, p := range profiles {
		read.Header = append(read.Header, p.Name)
		write.Header = append(write.Header, p.Name)
	}
	levels := []int{1, 2, 4, 8, 16, 32, 64}
	for _, lvl := range levels {
		rRow := []string{fmt.Sprintf("%d", lvl)}
		wRow := []string{fmt.Sprintf("%d", lvl)}
		for _, p := range profiles {
			rRow = append(rRow, fmt.Sprintf("%.0f", bandwidth(p, lvl, s.Seed, flashsim.Read, false)))
			wRow = append(wRow, fmt.Sprintf("%.0f", bandwidth(p, lvl, s.Seed, flashsim.Write, false)))
		}
		read.AddRow(rRow...)
		write.AddRow(wRow...)
	}
	read.Notes = append(read.Notes, "paper shape: >10x growth from level 1 to 64, saturating near host-interface bandwidth")
	return []Table{*read, *write}, nil
}

// Fig3c: interleaved vs non-interleaved read/write mix bandwidth.
func Fig3c(s Scale) ([]Table, error) {
	t := &Table{ID: "fig3c", Title: "mixed R/W bandwidth (MB/s): interleaved vs non-interleaved", Header: []string{"outstd"}}
	profiles := []flashsim.Config{flashsim.F120(), flashsim.P300(), flashsim.Iodrive()}
	for _, p := range profiles {
		t.Header = append(t.Header, p.Name, p.Name+"_interleaved")
	}
	for _, lvl := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		row := []string{fmt.Sprintf("%d", lvl)}
		for _, p := range profiles {
			non := bandwidthMixed(p, lvl, s.Seed, false)
			inter := bandwidthMixed(p, lvl, s.Seed, true)
			row = append(row, fmt.Sprintf("%.0f", non), fmt.Sprintf("%.0f", inter))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: non-interleaved 1.25-1.37x faster at level 64")
	return []Table{*t}, nil
}

// bandwidth measures MB/s for `rounds` batches of lvl 4KB requests.
func bandwidth(p flashsim.Config, lvl int, seed int64, op flashsim.Op, interleave bool) float64 {
	dev := flashsim.MustDevice(p)
	rng := newRng(seed)
	const totalReqs = 2048
	var now vtime.Ticks
	var bytes int64
	for n := 0; n < totalReqs; n += lvl {
		batch := make([]flashsim.Request, lvl)
		for i := range batch {
			batch[i] = flashsim.Request{Op: op, Offset: rng.pageOffset(), Size: 4096}
			bytes += 4096
		}
		_, done := dev.Submit(now, batch)
		now = done
	}
	return mbps(bytes, now)
}

// bandwidthMixed measures a 50/50 read/write mix, interleaved (R,W,R,W...)
// or segregated (n reads then n writes) within each batch.
func bandwidthMixed(p flashsim.Config, lvl int, seed int64, interleaved bool) float64 {
	dev := flashsim.MustDevice(p)
	rng := newRng(seed)
	const totalReqs = 2048
	var now vtime.Ticks
	var bytes int64
	for n := 0; n < totalReqs; n += lvl {
		batch := make([]flashsim.Request, lvl)
		for i := range batch {
			op := flashsim.Read
			if interleaved {
				if i%2 == 1 {
					op = flashsim.Write
				}
			} else if i >= lvl/2 {
				op = flashsim.Write
			}
			batch[i] = flashsim.Request{Op: op, Offset: rng.pageOffset(), Size: 4096}
			bytes += 4096
		}
		_, done := dev.Submit(now, batch)
		now = done
	}
	return mbps(bytes, now)
}

// Fig4: psync I/O vs parallel processing (simulated threads), shared file
// vs separate files, mixed R/W; plus Fig4c context switches.
func Fig4(s Scale) ([]Table, error) {
	shared := &Table{ID: "fig4a", Title: "psync vs threads, shared file (MB/s)", Header: []string{"outstd"}}
	separate := &Table{ID: "fig4b", Title: "psync vs threads, separate files (MB/s)", Header: []string{"outstd"}}
	profiles := []flashsim.Config{flashsim.F120(), flashsim.P300(), flashsim.Iodrive()}
	for _, p := range profiles {
		shared.Header = append(shared.Header, p.Name+"_psync", p.Name+"_thread")
		separate.Header = append(separate.Header, p.Name+"_psync", p.Name+"_thread")
	}
	for _, lvl := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		shRow := []string{fmt.Sprintf("%d", lvl)}
		sepRow := []string{fmt.Sprintf("%d", lvl)}
		for _, p := range profiles {
			shRow = append(shRow,
				fmt.Sprintf("%.0f", psyncBW(p, lvl, s.Seed)),
				fmt.Sprintf("%.0f", threadBW(p, lvl, s.Seed, true)))
			sepRow = append(sepRow,
				fmt.Sprintf("%.0f", psyncBW(p, lvl, s.Seed)),
				fmt.Sprintf("%.0f", threadBW(p, lvl, s.Seed, false)))
		}
		shared.AddRow(shRow...)
		separate.AddRow(sepRow...)
	}
	shared.Notes = append(shared.Notes,
		"paper: threads saturate near OutStd-2 bandwidth on a shared file (POSIX write ordering); psync keeps scaling")
	return []Table{*shared, *separate}, nil
}

// Fig4c: context switches, psync vs parallel processing, 4KB reads.
func Fig4c(s Scale) ([]Table, error) {
	t := &Table{
		ID:     "fig4c",
		Title:  "context switches per 1M 4KB reads (simulated, thousands)",
		Header: []string{"outstd", "psync_K", "threads_K"},
	}
	const reads = 1_000_000
	for _, lvl := range []int{1, 2, 4, 8, 16, 32} {
		// psync: 2 switches per batch of lvl requests.
		psync := int64(reads/lvl) * 2
		// threads: 2 switches per blocking sync call.
		threads := int64(reads) * 2
		t.AddRow(fmt.Sprintf("%d", lvl), fmt.Sprintf("%d", psync/1000), fmt.Sprintf("%d", threads/1000))
	}
	t.Notes = append(t.Notes, "paper: order-of-magnitude gap at OutStd 32 (62.5K vs 2000K)")
	return []Table{*t}, nil
}

// psyncBW: one process issuing psync batches of lvl mixed R/W requests to
// one file.
func psyncBW(p flashsim.Config, lvl int, seed int64) float64 {
	dev := flashsim.MustDevice(p)
	space := ssdio.NewSpace(dev)
	f, err := space.Create("bench", 4<<20)
	if err != nil {
		panic(err)
	}
	rng := newRng(seed)
	const totalReqs = 2048
	var now vtime.Ticks
	var bytes int64
	buf := make([]byte, 4096)
	for n := 0; n < totalReqs; n += lvl {
		reqs := make([]ssdio.Req, lvl)
		for i := range reqs {
			op := flashsim.Read
			if i >= lvl/2 {
				op = flashsim.Write
			}
			reqs[i] = ssdio.Req{Op: op, Off: rng.fileOffset(4 << 20), Buf: buf}
			bytes += 4096
		}
		done, err := f.Psync(now, reqs)
		if err != nil {
			panic(err)
		}
		now = done
	}
	return mbps(bytes, now)
}

// threadBW: lvl simulated threads each issuing blocking sync R/W to a
// shared file (POSIX write-ordering lock) or separate files.
func threadBW(p flashsim.Config, lvl int, seed int64, sharedFile bool) float64 {
	dev := flashsim.MustDevice(p)
	space := ssdio.NewSpace(dev)
	files := make([]*ssdio.File, lvl)
	if sharedFile {
		f, err := space.Create("shared", 4<<20)
		if err != nil {
			panic(err)
		}
		for i := range files {
			files[i] = f
		}
	} else {
		for i := range files {
			f, err := space.Create(fmt.Sprintf("f%d", i), 4<<20)
			if err != nil {
				panic(err)
			}
			files[i] = f
		}
	}
	const totalReqs = 2048
	perThread := totalReqs / lvl
	if perThread < 1 {
		perThread = 1
	}
	var bytes int64
	threads := make([]*vtimeThread, lvl)
	for i := range threads {
		threads[i] = newVtimeThread(i, func(tid int, step int, now vtime.Ticks) (vtime.Ticks, bool) {
			if step >= perThread {
				return now, false
			}
			rng := newRng(seed + int64(tid*7919+step))
			op := flashsim.Read
			if step%2 == 1 {
				op = flashsim.Write
			}
			buf := make([]byte, 4096)
			done, err := files[tid].Sync(now, ssdio.Req{Op: op, Off: rng.fileOffset(4 << 20), Buf: buf})
			if err != nil {
				panic(err)
			}
			bytes += 4096
			return done, true
		})
	}
	end := runThreads(3*vtime.Microsecond, threads)
	return mbps(bytes, end)
}

func mbps(bytes int64, elapsed vtime.Ticks) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / elapsed.Seconds()
}

// xorshift RNG for deterministic offsets without math/rand state sharing.
type rng struct{ s uint64 }

func newRng(seed int64) *rng {
	u := uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	return &rng{s: u}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// pageOffset returns a 4KB-aligned offset within a 4GB region (the
// paper's benchmark file size).
func (r *rng) pageOffset() int64 {
	return int64(r.next()%(1<<20)) * 4096
}

// fileOffset returns a 4KB-aligned offset within a size-byte file.
func (r *rng) fileOffset(size int64) int64 {
	pages := size / 4096
	return int64(r.next()%uint64(pages)) * 4096
}

func init() {
	Register("fig2", Fig2)
	Register("fig3", Fig3)
	Register("fig3c", Fig3c)
	Register("fig4", Fig4)
	Register("fig4c", Fig4c)
}
