package bench

import "repro/internal/vtime"

// vtimeThread adapts a step function to the vtime scheduler: stepFn
// receives (threadID, stepIndex, now) and returns (newNow, more).
type vtimeThread struct {
	id     int
	step   int
	stepFn func(tid, step int, now vtime.Ticks) (vtime.Ticks, bool)
}

func newVtimeThread(id int, fn func(tid, step int, now vtime.Ticks) (vtime.Ticks, bool)) *vtimeThread {
	return &vtimeThread{id: id, stepFn: fn}
}

// runThreads executes the simulated threads deterministically and returns
// the makespan.
func runThreads(ctxSwitchCost vtime.Ticks, threads []*vtimeThread) vtime.Ticks {
	sched := make([]*vtime.Thread, len(threads))
	for i, th := range threads {
		th := th
		sched[i] = &vtime.Thread{
			ID: th.id,
			Step: func(t *vtime.Thread) bool {
				now, more := th.stepFn(th.id, th.step, t.Clock.Now())
				th.step++
				t.Clock.AdvanceTo(now)
				return more
			},
		}
	}
	s := vtime.NewScheduler(ctxSwitchCost, sched...)
	return s.Run()
}
