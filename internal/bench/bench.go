// Package bench regenerates every table and figure of the paper's
// evaluation (Sections 2 and 4) on the simulated substrate. Each FigN
// function returns a Table whose rows mirror the series the paper plots;
// cmd/pioexp and the root-level testing.B benchmarks print them.
//
// Scaling: the paper loads 1G entries (>8GB) with a 16MB buffer pool and
// runs 5-10M operations per experiment. The simulator is fast but the
// experiments here default to a proportional scale-down (see Scale) that
// preserves N/M (and thus the buffered height η) and the op-to-data
// ratios. EXPERIMENTS.md records per-figure parameters.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one regenerated figure or table.
type Table struct {
	// ID names the paper artifact, e.g. "fig9".
	ID string
	// Title describes the experiment.
	Title string
	// Header labels the columns; Rows hold formatted cells.
	Header []string
	Rows   [][]string
	// Notes carry scaling factors and observations.
	Notes []string
	// Metrics are named scalar results (higher is better) extracted for
	// machine consumption: the CI bench-trend gate compares them against
	// a checked-in baseline. Simulated time is deterministic, so the
	// values are stable across machines.
	Metrics map[string]float64 `json:",omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Scale bundles the experiment scale knobs.
type Scale struct {
	// InitialEntries is the bulk-loaded tree size (paper: 1e9).
	InitialEntries int
	// Ops is the per-experiment operation count (paper: 5e6 or 1e7).
	Ops int
	// MemBytes is the total main-memory budget (paper: 16MB).
	MemBytes int
	// Seed fixes workload generation.
	Seed int64
	// Shards fixes the forest shard count for the shard-scaling
	// experiment; 0 sweeps a preset ladder.
	Shards int
	// Threads fixes the simulated thread count for concurrency
	// experiments that accept it; 0 uses each experiment's preset.
	Threads int
	// Faults, when non-empty, is a faultio fault program installed on
	// the I/O plane of experiments that support injection (the scenario
	// suite), overriding any program the scenario itself declares.
	Faults string
}

// DefaultScale keeps the paper's N/M ratio (1e9·16B data : 16MB buffer ≈
// 1000:1) at laptop size: 200k entries (3.2MB of records) with a 16KB
// budget, and 20k ops per run.
func DefaultScale() Scale {
	return Scale{
		InitialEntries: 200_000,
		Ops:            20_000,
		MemBytes:       16 * 1024,
		Seed:           42,
	}
}

// QuickScale is a fast smoke-test scale for unit tests.
func QuickScale() Scale {
	return Scale{
		InitialEntries: 20_000,
		Ops:            2_000,
		MemBytes:       8 * 1024,
		Seed:           42,
	}
}

// Registry maps experiment ids to runners, for cmd/pioexp.
type Runner func(s Scale) ([]Table, error)

var registry = map[string]Runner{}

// Register adds an experiment runner (called from init functions).
func Register(id string, r Runner) { registry[id] = r }

// Run executes the registered experiment.
func Run(id string, s Scale) ([]Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return r(s)
}

// IDs lists registered experiments.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
