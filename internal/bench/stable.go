package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// stableTable mirrors Table with Metrics pre-rendered, so the enclosing
// MarshalIndent cannot reorder or reformat them.
type stableTable struct {
	ID      string
	Title   string
	Header  []string
	Rows    [][]string
	Notes   []string
	Metrics json.RawMessage `json:",omitempty"`
}

// MarshalStable renders tables as indented JSON with a byte-stable
// layout: struct keys in declaration order, metric keys sorted, floats
// in shortest round-trip decimal form. Two marshals of equal tables are
// byte-identical, so CI can diff BENCH_*.json files directly. A
// non-finite metric (NaN, ±Inf) is an error, not a silently-broken
// file.
func MarshalStable(tables []Table) ([]byte, error) {
	out := make([]stableTable, len(tables))
	for i, t := range tables {
		var mraw json.RawMessage
		if len(t.Metrics) > 0 {
			keys := make([]string, 0, len(t.Metrics))
			for k := range t.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var mb bytes.Buffer
			mb.WriteByte('{')
			for j, k := range keys {
				v := t.Metrics[k]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("bench: table %s metric %s is %v, not representable in JSON", t.ID, k, v)
				}
				if j > 0 {
					mb.WriteByte(',')
				}
				kb, err := json.Marshal(k)
				if err != nil {
					return nil, err
				}
				mb.Write(kb)
				mb.WriteByte(':')
				mb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
			mb.WriteByte('}')
			mraw = mb.Bytes()
		}
		out[i] = stableTable{
			ID:      t.ID,
			Title:   t.Title,
			Header:  t.Header,
			Rows:    t.Rows,
			Notes:   t.Notes,
			Metrics: mraw,
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
