package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleTables() []Table {
	return []Table{
		{
			ID:     "t1",
			Title:  "first",
			Header: []string{"a", "b"},
			Rows:   [][]string{{"1", "2"}},
			Notes:  []string{"note"},
			Metrics: map[string]float64{
				"zeta_kops": 12.5,
				"alpha_us":  3.25,
				"mid":       1e6,
			},
		},
		{ID: "t2", Title: "no metrics"},
	}
}

func TestMarshalStableDeterministic(t *testing.T) {
	a, err := MarshalStable(sampleTables())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalStable(sampleTables())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two marshals differ:\n%s\n---\n%s", a, b)
	}
	// Metric keys must appear sorted in the byte stream.
	s := string(a)
	if strings.Index(s, "alpha_us") > strings.Index(s, "mid") ||
		strings.Index(s, "mid") > strings.Index(s, "zeta_kops") {
		t.Fatalf("metric keys not sorted:\n%s", s)
	}
}

func TestMarshalStableRoundTrips(t *testing.T) {
	b, err := MarshalStable(sampleTables())
	if err != nil {
		t.Fatal(err)
	}
	var got []Table
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("stable output does not parse back: %v\n%s", err, b)
	}
	if len(got) != 2 || got[0].ID != "t1" || got[0].Metrics["zeta_kops"] != 12.5 ||
		got[0].Metrics["mid"] != 1e6 || got[1].Metrics != nil {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestMarshalStableRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		ts := sampleTables()
		ts[0].Metrics["bad"] = bad
		if _, err := MarshalStable(ts); err == nil {
			t.Fatalf("MarshalStable accepted metric value %v", bad)
		} else if !strings.Contains(err.Error(), "bad") {
			t.Fatalf("error does not name the metric: %v", err)
		}
	}
}
