package bench

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// Tune regenerates the Section 3.6 auto-tuning result: calibrate the
// device (Pr, Pw, Pr(L), P'r, P'w), then pick (L_opt, O_opt) per eq. (10)
// for a range of insert/search ratios, plus the B+-tree node size via the
// extended utility/cost method (Section 3.2.1 / eq. 3).
func Tune(s Scale) ([]Table, error) {
	t := &Table{
		ID:     "tune",
		Title:  "auto-tuned parameters per device and insert ratio (eq. 10)",
		Header: []string{"device", "insert_ratio", "L_opt", "O_opt_pages", "modelled_us_per_op", "btree_node_pages"},
	}
	for _, p := range mainDevices() {
		dev := flashsim.MustDevice(p)
		d := costmodel.Calibrate(dev, pageSize, 16, 64, 16)
		entriesPerPage := float64(pageSize / kv.RecordSize)
		for _, ri := range []float64{0.1, 0.5, 0.9} {
			params := costmodel.TreeParams{
				N:                 float64(s.InitialEntries),
				F:                 entriesPerPage,
				U:                 0.7,
				Ri:                ri,
				Rs:                1 - ri,
				M:                 float64(s.MemBytes / pageSize),
				OPQEntriesPerPage: float64(pageSize / kv.EntrySize),
			}
			res, err := costmodel.TuneLeafOPQ(params, d, 5000, 16, s.MemBytes/pageSize)
			if err != nil {
				return nil, err
			}
			nodePages, err := costmodel.TuneNodeSize(params, d, entriesPerPage, 16)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.Name, fmt.Sprintf("%.1f", ri),
				fmt.Sprintf("%d", res.L), fmt.Sprintf("%d", res.O),
				fmt.Sprintf("%.0f", res.Cost/float64(vtime.Microsecond)),
				fmt.Sprintf("%d", nodePages))
		}
	}
	t.Notes = append(t.Notes,
		"paper guidance: leaf 4-16KB when insert ratio moderate; OPQ of one page already wins; higher insert ratio favours larger OPQ")
	return []Table{*t}, nil
}

// Ablations quantify the design choices DESIGN.md calls out: psync off,
// LSMap off, PioMax sweep.
func Ablations(s Scale) ([]Table, error) {
	dev := flashsim.P300()
	t := &Table{
		ID:     "ablation",
		Title:  fmt.Sprintf("PIO B-tree ablations on %s: %d inserts + %d searches", dev.Name, s.Ops, s.Ops),
		Header: []string{"variant", "insert_s", "search_s"},
	}
	type variant struct {
		name                                     string
		disablePsync, disableLSMap, sortedLeaves bool
		pioMax                                   int
	}
	variants := []variant{
		{name: "baseline", pioMax: 64},
		{name: "psync-off", disablePsync: true, pioMax: 64},
		{name: "lsmap-off", disableLSMap: true, pioMax: 64},
		{name: "sorted-leaves", sortedLeaves: true, pioMax: 64},
		{name: "piomax-8", pioMax: 8},
		{name: "piomax-16", pioMax: 16},
		{name: "piomax-128", pioMax: 128},
	}
	for _, v := range variants {
		pp := defaultPio()
		pp.OPQPages = 4
		insT, seaT, err := runPioVariant(dev, s, pp, v.disablePsync, v.disableLSMap, v.sortedLeaves, v.pioMax)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, fmtSeconds(insT), fmtSeconds(seaT))
	}
	t.Notes = append(t.Notes,
		"psync-off isolates channel-level parallelism; lsmap-off pays whole-leaf reads on updates; sorted-leaves pays full-leaf rewrites per batch")
	return []Table{*t}, nil
}

// runPioVariant builds a PIO tree with ablation flags and measures an
// insert-only then search-only pass.
func runPioVariant(p flashsim.Config, s Scale, pp pioParams, disablePsync, disableLSMap, sortedLeaves bool, pioMax int) (vtime.Ticks, vtime.Ticks, error) {
	pf, err := newPagefile(p, "pio-ablate", int64(s.InitialEntries)*64+1<<20)
	if err != nil {
		return 0, 0, err
	}
	bufBytes := s.MemBytes - pp.OPQPages*pageSize
	if bufBytes < pageSize {
		bufBytes = pageSize
	}
	tr, err := coreNew(pf, pp, bufBytes, disablePsync, disableLSMap, sortedLeaves, pioMax)
	if err != nil {
		return 0, 0, err
	}
	recs := initialRecords(s.InitialEntries)
	if err := tr.BulkLoad(recs); err != nil {
		return 0, 0, err
	}
	var insT vtime.Ticks
	for _, op := range workload.InsertOnly(s.Ops, recs, s.Seed) {
		insT, err = tr.Insert(insT, op.Rec)
		if err != nil {
			return 0, 0, err
		}
	}
	var seaT vtime.Ticks
	for _, op := range workload.SearchOnly(s.Ops, recs, s.Seed+1) {
		_, _, seaT2, err := tr.Search(seaT, op.Rec.Key)
		if err != nil {
			return 0, 0, err
		}
		seaT = seaT2
	}
	return insT, seaT, nil
}

func init() {
	Register("tune", Tune)
	Register("ablation", Ablations)
}
