package bench

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// NodeSize validates the Section 3.2.1 claim that the optimal B+-tree
// node size on a flashSSD is NOT the smallest I/O unit (as on raw flash):
// it sweeps node sizes, reports the measured per-op time of a 50/50
// workload next to the modelled C'_b+ cost, and marks the eq.-(3)
// utility/cost pick. The model's argmin should fall in the same valley as
// the measurement.
func NodeSize(s Scale) ([]Table, error) {
	var out []Table
	for _, dev := range mainDevices() {
		t := &Table{
			ID:     "nodesize-" + dev.Name,
			Title:  fmt.Sprintf("B+-tree node-size sweep, 50/50 workload, %d ops, N=%d", s.Ops, s.InitialEntries),
			Header: []string{"node_pages", "node_bytes", "measured_us_per_op", "modelled_us_per_op", "utilitycost_pick"},
		}
		d := costmodel.Calibrate(flashsim.MustDevice(dev), pageSize, 8, 64, 8)
		pick := btreeNodeSize(dev, s.InitialEntries, s.MemBytes) / pageSize
		for pages := 1; pages <= 8; pages *= 2 {
			nodeSize := pages * pageSize
			bt, recs, err := buildBtreeNode(dev, s.InitialEntries, s.MemBytes, nodeSize)
			if err != nil {
				return nil, err
			}
			ops := workload.Mixed(s.Ops, 0.5, recs, s.Seed)
			var now vtime.Ticks
			for _, op := range ops {
				if op.Kind == workload.OpInsert {
					now, err = bt.Insert(now, op.Rec)
				} else {
					_, _, now, err = bt.Search(now, op.Rec.Key)
				}
				if err != nil {
					return nil, err
				}
			}
			measured := float64(now) / float64(len(ops)) / float64(vtime.Microsecond)
			params := costmodel.TreeParams{
				N:  float64(s.InitialEntries),
				F:  float64(nodeSize / kv.RecordSize),
				U:  0.7,
				Ri: 0.5, Rs: 0.5,
				M: float64(s.MemBytes / nodeSize),
			}
			modelled := costmodel.CBtreeBuffered(params, d.Pr(pages), d.Pw(pages)) / float64(vtime.Microsecond)
			mark := ""
			if pages == pick {
				mark = "<== eq.(3)"
			}
			t.AddRow(fmt.Sprintf("%d", pages), fmt.Sprintf("%d", nodeSize),
				fmt.Sprintf("%.0f", measured), fmt.Sprintf("%.0f", modelled), mark)
		}
		t.Notes = append(t.Notes,
			"paper: on raw flash the optimum is the smallest unit (2KB); on flashSSDs non-linear latencies move it up")
		out = append(out, *t)
	}
	return out, nil
}

func init() {
	Register("nodesize", NodeSize)
}
