package bench

import (
	"fmt"

	"repro/internal/bftl"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/fdtree"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// pageSize is the index page size used by the index experiments: 2KB
// keeps frame-count granularity at the scaled-down buffer budgets.
const pageSize = 2048

// cpuPerNode is the CPU charge per node visit for all indexes, keeping
// CPU a minor but non-zero cost as in the paper's setup.
const cpuPerNode = 2 * vtime.Microsecond

// mainDevices returns the three devices of the paper's Section 4.
func mainDevices() []flashsim.Config {
	return []flashsim.Config{flashsim.Iodrive(), flashsim.P300(), flashsim.F120()}
}

// newPagefile creates a fresh pagefile on a fresh instance of profile p.
func newPagefile(p flashsim.Config, name string, bytes int64) (*pagefile.PageFile, error) {
	return newPagefileSized(p, name, bytes, pageSize)
}

func newPagefileSized(p flashsim.Config, name string, bytes int64, pgSize int) (*pagefile.PageFile, error) {
	dev := flashsim.MustDevice(p)
	f, err := ssdio.NewSpace(dev).Create(name, bytes)
	if err != nil {
		return nil, err
	}
	return pagefile.New(f, pgSize)
}

// tunedNodePages caches the eq.-3 utility/cost node size per device and
// memory budget.
var tunedNodePages = map[string]int{}

// btreeNodeSize picks the B+-tree node size for device p via the paper's
// Section 4.1.1 procedure ("the utility/cost measure (3) was utilized"),
// extended with the SSD cost model of Section 3.2.1.
func btreeNodeSize(p flashsim.Config, n, memBytes int) int {
	key := fmt.Sprintf("%s/%d/%d", p.Name, n, memBytes)
	if v, ok := tunedNodePages[key]; ok {
		return v * pageSize
	}
	dev := flashsim.MustDevice(p)
	d := costmodel.Calibrate(dev, pageSize, 8, 64, 8)
	// Eq. (3): maximize IndexPageUtility / IndexPageAccessCost with the
	// measured (non-linear) read latencies.
	best, bestScore := 1, 0.0
	for pages := 1; pages <= 8; pages *= 2 {
		entries := float64(pages * pageSize / kv.RecordSize)
		score := costmodel.UtilityCost(entries, d.Pr(pages))
		if score > bestScore {
			best, bestScore = pages, score
		}
	}
	tunedNodePages[key] = best
	return best * pageSize
}

// buildBtree bulk-loads a B+-tree with n entries and memBytes of buffer,
// using the utility/cost-tuned node size.
func buildBtree(p flashsim.Config, n, memBytes int) (*btree.Tree, []kv.Record, error) {
	return buildBtreeNode(p, n, memBytes, btreeNodeSize(p, n, memBytes))
}

// buildBtreeNode bulk-loads a B+-tree with an explicit node size (used by
// sweeps that fix the node size once per device, as the paper does).
func buildBtreeNode(p flashsim.Config, n, memBytes, nodeSize int) (*btree.Tree, []kv.Record, error) {
	pf, err := newPagefileSized(p, "btree", int64(n)*64+1<<20, nodeSize)
	if err != nil {
		return nil, nil, err
	}
	tr, err := btree.New(pf, btree.Config{
		NodeSize:    nodeSize,
		BufferBytes: memBytes,
		CPUPerNode:  cpuPerNode,
	})
	if err != nil {
		return nil, nil, err
	}
	recs := initialRecords(n)
	if err := tr.BulkLoad(recs); err != nil {
		return nil, nil, err
	}
	return tr, recs, nil
}

// pioParams groups the PIO B-tree knobs that experiments vary.
type pioParams struct {
	LeafSegs int
	OPQPages int
	BCnt     int
}

// tunePio implements the Section 3.6 self-tuning: calibrate the device,
// then pick (L_opt, O_opt) := argmin C'_pio (eq. 10) for the workload's
// insert ratio.
func tunePio(p flashsim.Config, n, memBytes int, insertRatio float64) pioParams {
	dev := flashsim.MustDevice(p)
	d := costmodel.Calibrate(dev, pageSize, 16, 64, 8)
	params := costmodel.TreeParams{
		N:                 float64(n),
		F:                 float64(pageSize / kv.RecordSize),
		U:                 0.7,
		Ri:                insertRatio,
		Rs:                1 - insertRatio,
		M:                 float64(memBytes / pageSize),
		OPQEntriesPerPage: float64(pageSize / kv.EntrySize),
	}
	maxO := memBytes/pageSize - 1
	if maxO < 1 {
		maxO = 1
	}
	res, err := costmodel.TuneLeafOPQ(params, d, 5000, 16, maxO)
	pp := defaultPio()
	if err == nil {
		pp.LeafSegs = res.L
		pp.OPQPages = res.O
	}
	return pp
}

// defaultPio mirrors Section 4.1's fixed parameters (PioMax 64, speriod
// 5000, bcnt 5000) with L=4 (8KB leaves, the Section 3.6 guidance) and a
// single-page OPQ unless overridden.
func defaultPio() pioParams { return pioParams{LeafSegs: 4, OPQPages: 1, BCnt: 5000} }

// buildPio bulk-loads a PIO B-tree; the buffer pool gets what remains of
// memBytes after the OPQ and LSMap take their share, per Section 4.1.3.
func buildPio(p flashsim.Config, n, memBytes int, pp pioParams) (*core.Tree, []kv.Record, error) {
	pf, err := newPagefile(p, "pio", int64(n)*64+1<<20)
	if err != nil {
		return nil, nil, err
	}
	leaves := n / (core.Config{PageSize: pageSize, LeafSegs: pp.LeafSegs}).LeafEntryEstimate()
	lsmapBytes := leaves // ~1 byte per leaf
	bufBytes := memBytes - pp.OPQPages*pageSize - lsmapBytes
	if bufBytes < pageSize {
		bufBytes = pageSize
	}
	tr, err := core.New(pf, core.Config{
		PageSize:    pageSize,
		LeafSegs:    pp.LeafSegs,
		OPQPages:    pp.OPQPages,
		PioMax:      64,
		SPeriod:     5000,
		BCnt:        pp.BCnt,
		BufferBytes: bufBytes,
		CPUPerNode:  cpuPerNode,
	})
	if err != nil {
		return nil, nil, err
	}
	recs := initialRecords(n)
	if err := tr.BulkLoad(recs); err != nil {
		return nil, nil, err
	}
	return tr, recs, nil
}

// buildBftl bulk-loads a BFTL tree (its NTT consumes the memory budget,
// so no buffer pool is configured, as in the paper).
func buildBftl(p flashsim.Config, n int) (*bftl.Tree, []kv.Record, error) {
	pf, err := newPagefile(p, "bftl", int64(n)*128+1<<20)
	if err != nil {
		return nil, nil, err
	}
	tr, err := bftl.New(pf, bftl.Config{
		PageSize:     pageSize,
		Fanout:       64,
		CommitPolicy: 4,
		CPUPerNode:   cpuPerNode,
	})
	if err != nil {
		return nil, nil, err
	}
	recs := initialRecords(n)
	if err := tr.BulkLoad(recs); err != nil {
		return nil, nil, err
	}
	return tr, recs, nil
}

// buildFdtree bulk-loads an FD-tree whose head tree uses the memory
// budget.
func buildFdtree(p flashsim.Config, n, memBytes int) (*fdtree.Tree, []kv.Record, error) {
	pf, err := newPagefile(p, "fd", int64(n)*128+1<<20)
	if err != nil {
		return nil, nil, err
	}
	headPages := memBytes / pageSize
	if headPages < 1 {
		headPages = 1
	}
	tr, err := fdtree.New(pf, fdtree.Config{
		PageSize:   pageSize,
		HeadPages:  headPages,
		SizeRatio:  8,
		CPUPerNode: cpuPerNode,
	})
	if err != nil {
		return nil, nil, err
	}
	recs := initialRecords(n)
	if err := tr.BulkLoad(recs); err != nil {
		return nil, nil, err
	}
	return tr, recs, nil
}

// coreNew builds a core.Tree with ablation switches.
func coreNew(pf *pagefile.PageFile, pp pioParams, bufBytes int, disablePsync, disableLSMap, sortedLeaves bool, pioMax int) (*core.Tree, error) {
	return core.New(pf, core.Config{
		PageSize:     pageSize,
		LeafSegs:     pp.LeafSegs,
		OPQPages:     pp.OPQPages,
		PioMax:       pioMax,
		SPeriod:      5000,
		BCnt:         pp.BCnt,
		BufferBytes:  bufBytes,
		CPUPerNode:   cpuPerNode,
		DisablePsync: disablePsync,
		DisableLSMap: disableLSMap,
		SortedLeaves: sortedLeaves,
	})
}

// initialRecords builds the bulk-load key set: keys at stride 16 with
// gaps for fresh inserts.
func initialRecords(n int) []kv.Record {
	recs := make([]kv.Record, n)
	for i := range recs {
		recs[i] = kv.Record{Key: uint64(i)*16 + 8, Value: uint64(i)}
	}
	return recs
}

// fmtSeconds renders simulated ticks as seconds with 2 decimals.
func fmtSeconds(t vtime.Ticks) string { return fmt.Sprintf("%.2f", t.Seconds()) }
