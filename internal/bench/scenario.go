package bench

import (
	"fmt"

	"repro/internal/flashsim"
	"repro/internal/scenario"
)

// ScenarioBench runs one named scenario at the given scale and renders
// its per-phase trajectory as a table. Scale.Ops is the whole-run budget,
// split evenly across the scenario's phases.
func ScenarioBench(sc scenario.Scenario, s Scale) ([]Table, error) {
	cfg := scenario.Config{
		Device:         flashsim.Iodrive(),
		InitialEntries: s.InitialEntries,
		OpsPerPhase:    s.Ops / len(sc.Phases),
		MemBytes:       s.MemBytes,
		Seed:           s.Seed,
		Shards:         s.Shards,
		Threads:        s.Threads,
		FaultProgram:   s.Faults,
	}
	if cfg.OpsPerPhase < 1 {
		cfg.OpsPerPhase = 1
	}
	res, err := scenario.Run(sc, cfg)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:    "scenario_" + sc.Name,
		Title: sc.Title,
		Header: []string{"phase", "ops", "inserts", "kops/s", "mean(us)", "p95(us)", "p99(us)",
			"migrations", "moved keys", "retunes", "opq pages", "gc stalls", "io retries",
			"rejected", "probes", "heals", "evac chunks", "wd timeouts", "redone", "recover(ms)"},
		Metrics: map[string]float64{},
	}
	for _, pr := range res.Phases {
		t.AddRow(pr.Name,
			fmt.Sprintf("%d", pr.Ops),
			fmt.Sprintf("%d", pr.Inserts),
			fmt.Sprintf("%.1f", pr.KopsPerSec),
			fmt.Sprintf("%.1f", pr.MeanUS),
			fmt.Sprintf("%.1f", pr.P95US),
			fmt.Sprintf("%.1f", pr.P99US),
			fmt.Sprintf("%d", pr.Migrations),
			fmt.Sprintf("%d", pr.MigratedKeys),
			fmt.Sprintf("%d", pr.Retunes),
			fmt.Sprintf("%d", pr.OPQBudgetPages),
			fmt.Sprintf("%d", pr.GCStalls),
			fmt.Sprintf("%d", pr.IORetries),
			fmt.Sprintf("%d", pr.Rejected),
			fmt.Sprintf("%d", pr.HealProbes),
			fmt.Sprintf("%d", pr.AutoHeals),
			fmt.Sprintf("%d", pr.EvacuatedChunks),
			fmt.Sprintf("%d", pr.WatchdogTimeouts),
			fmt.Sprintf("%d", pr.RedoneEntries),
			fmt.Sprintf("%.2f", pr.RecoverMS),
		)
		t.Metrics[pr.Name+"_kops_per_s"] = pr.KopsPerSec
		t.Metrics[pr.Name+"_p99_us"] = pr.P99US
	}
	t.Metrics["total_migrated_keys"] = float64(res.TotalMigratedKeys)
	t.Metrics["final_keys"] = float64(res.FinalKeys)
	t.Metrics["io_retries"] = float64(res.IORetries)
	t.Metrics["heal_probes"] = float64(res.HealProbes)
	t.Metrics["auto_heals"] = float64(res.AutoHeals)
	t.Metrics["evacuations"] = float64(res.Evacuations)
	t.Metrics["evacuated_chunks"] = float64(res.EvacuatedChunks)
	t.Metrics["watchdog_timeouts"] = float64(res.WatchdogTimeouts)
	t.Metrics["rejected_ops"] = float64(res.Rejected)
	t.Metrics["lost_uncommitted"] = float64(res.LostUncommitted)
	if res.FaultProgram != "" {
		t.Notes = append(t.Notes,
			fmt.Sprintf("fault program: %q; %d transient retries absorbed (%d budgets exhausted)",
				res.FaultProgram, res.IORetries, res.IORetriesExhausted))
	}
	if res.Evacuations > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("self-healing: %d probes, %d auto-heals, %d evacuations streamed %d chunks; %d ops rejected while degraded, %d uncommitted tail inserts lost",
				res.HealProbes, res.AutoHeals, res.Evacuations, res.EvacuatedChunks, res.Rejected, res.LostUncommitted))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d shards, %d threads, %d entries loaded, %d ops/phase",
			res.Shards, res.Threads, cfg.InitialEntries, cfg.OpsPerPhase),
		fmt.Sprintf("makespan %.1fms; %d migrations moved %d keys; routing epoch %d",
			res.End.Millis(), res.TotalMigrations, res.TotalMigratedKeys, res.RoutingEpoch),
		fmt.Sprintf("last eq.-(10) recommendation: L=%d, global O=%d", res.TunedL, res.TunedO),
		fmt.Sprintf("durability check: %d keys expected, %d found", res.ExpectedKeys, res.FinalKeys),
	)
	return []Table{t}, nil
}

func init() {
	for _, sc := range scenario.All() {
		sc := sc
		Register("scenario_"+sc.Name, func(s Scale) ([]Table, error) {
			return ScenarioBench(sc, s)
		})
	}
}
