package pagefile

import (
	"bytes"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/ssdio"
)

func newPF(t *testing.T, pageSize int) *PageFile {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.F120())
	space := ssdio.NewSpace(dev)
	f, err := space.Create("pf", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := New(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

func TestNewRejectsBadPageSize(t *testing.T) {
	dev := flashsim.MustDevice(flashsim.F120())
	f, _ := ssdio.NewSpace(dev).Create("x", 1<<16)
	for _, sz := range []int{0, -4, 3000} {
		if _, err := New(f, sz); err == nil {
			t.Errorf("page size %d accepted", sz)
		}
	}
}

func TestAllocFreeReuse(t *testing.T) {
	pf := newPF(t, 4096)
	a := pf.Alloc()
	b := pf.Alloc()
	if a == b {
		t.Fatal("duplicate page ids")
	}
	pf.Free(a)
	c := pf.Alloc()
	if c != a {
		t.Fatalf("freed page not recycled: got %d want %d", c, a)
	}
	if pf.NumPages() != 2 {
		t.Fatalf("NumPages = %d", pf.NumPages())
	}
}

func TestAllocRunConsecutive(t *testing.T) {
	pf := newPF(t, 4096)
	first := pf.AllocRun(5)
	next := pf.Alloc()
	if next != first+5 {
		t.Fatalf("run not consecutive: first=%d next=%d", first, next)
	}
}

func TestReadWritePage(t *testing.T) {
	pf := newPF(t, 4096)
	id := pf.Alloc()
	in := bytes.Repeat([]byte{7}, 4096)
	at, err := pf.WritePage(0, id, in)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4096)
	at2, err := pf.ReadPage(at, id, out)
	if err != nil {
		t.Fatal(err)
	}
	if at2 <= at {
		t.Fatal("read free")
	}
	if !bytes.Equal(in, out) {
		t.Fatal("contents mismatch")
	}
}

func TestBadArguments(t *testing.T) {
	pf := newPF(t, 4096)
	id := pf.Alloc()
	short := make([]byte, 100)
	if _, err := pf.ReadPage(0, id, short); err == nil {
		t.Error("short read buffer accepted")
	}
	if _, err := pf.WritePage(0, id, short); err == nil {
		t.Error("short write buffer accepted")
	}
	if _, err := pf.ReadPage(0, id+100, make([]byte, 4096)); err == nil {
		t.Error("unallocated page read accepted")
	}
	if _, err := pf.ReadPage(0, InvalidPage, make([]byte, 4096)); err == nil {
		t.Error("InvalidPage read accepted")
	}
	if _, err := pf.ReadRun(0, id, 3, make([]byte, 3*4096)); err == nil {
		t.Error("run past end accepted")
	}
}

func TestRunRoundTrip(t *testing.T) {
	pf := newPF(t, 4096)
	first := pf.AllocRun(4)
	in := make([]byte, 4*4096)
	for i := range in {
		in[i] = byte(i % 251)
	}
	at, err := pf.WriteRun(0, first, 4, in)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4*4096)
	if _, err := pf.ReadRun(at, first, 4, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("run contents mismatch")
	}
}

func TestPsyncReadWrite(t *testing.T) {
	pf := newPF(t, 4096)
	ids := make([]PageID, 8)
	bufs := make([][]byte, 8)
	for i := range ids {
		ids[i] = pf.Alloc()
		bufs[i] = bytes.Repeat([]byte{byte(i + 1)}, 4096)
	}
	at, err := pf.PsyncWrite(0, ids, bufs)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]byte, 8)
	for i := range outs {
		outs[i] = make([]byte, 4096)
	}
	if _, err := pf.PsyncRead(at, ids, outs); err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i][0] != byte(i+1) {
			t.Fatalf("page %d contents %d", i, outs[i][0])
		}
	}
	if _, err := pf.PsyncRead(0, ids, outs[:4]); err == nil {
		t.Error("mismatched ids/bufs accepted")
	}
}

func TestPsyncRuns(t *testing.T) {
	pf := newPF(t, 4096)
	a := pf.AllocRun(2)
	b := pf.AllocRun(3)
	wa := bytes.Repeat([]byte{0x11}, 2*4096)
	wb := bytes.Repeat([]byte{0x22}, 3*4096)
	at, err := pf.PsyncRuns(0, []RunReq{
		{First: a, N: 2, Buf: wa, Write: true},
		{First: b, N: 3, Buf: wb, Write: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ra := make([]byte, 2*4096)
	rb := make([]byte, 3*4096)
	if _, err := pf.PsyncRuns(at, []RunReq{
		{First: a, N: 2, Buf: ra},
		{First: b, N: 3, Buf: rb},
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra, wa) || !bytes.Equal(rb, wb) {
		t.Fatal("run batch contents mismatch")
	}
	if _, err := pf.PsyncRuns(0, []RunReq{{First: a, N: 0, Buf: nil}}); err == nil {
		t.Error("zero-length run accepted")
	}
}

func TestNoCostAccessors(t *testing.T) {
	pf := newPF(t, 4096)
	id := pf.Alloc()
	in := bytes.Repeat([]byte{9}, 4096)
	if err := pf.WritePageNoCost(id, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4096)
	if err := pf.ReadPageNoCost(id, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("no-cost round trip failed")
	}
	st := pf.File().Stats()
	if st.SyncCalls != 0 || st.PsyncCalls != 0 {
		t.Fatalf("no-cost access hit the device: %+v", st)
	}
}
