// Package pagefile provides page-granular storage on an ssdio file: page
// allocation, single-page and batched (psync) multi-page reads and writes.
// Every index structure in this repository (B+-tree, PIO B-tree, BFTL,
// FD-tree, B-link tree) stores its nodes through this layer.
//
// This package is an I/O plane: piolint's ioerr analyzer treats every
// error-returning function here as an error source and fails CI if a
// caller — at any depth of wrapping — drops the error instead of
// propagating it to a return, a panic, or a crash sink. A future
// real-hardware backend surfaces pwritev2/io_uring failures through
// exactly these results, so a swallowed error here would silently void
// the durability contract.
package pagefile

import (
	"fmt"

	"repro/internal/flashsim"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// PageID identifies one page within a PageFile. Zero is a valid page;
// InvalidPage marks "no page".
type PageID int64

// InvalidPage is the nil page id.
const InvalidPage PageID = -1

// PageFile is a growable array of fixed-size pages on a simulated SSD
// file. It is not safe for concurrent use; the simulated-thread scheduler
// serializes access in concurrency experiments.
type PageFile struct {
	f        *ssdio.File
	pageSize int
	next     PageID
	free     []PageID
}

// New creates a page file with the given page size on f. The page size
// must be a positive multiple of the device flash page size or divide it
// evenly (powers of two in practice).
func New(f *ssdio.File, pageSize int) (*PageFile, error) {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("pagefile: page size must be a positive power of two, got %d", pageSize)
	}
	return &PageFile{f: f, pageSize: pageSize}, nil
}

// PageSize returns the page size in bytes.
func (p *PageFile) PageSize() int { return p.pageSize }

// File exposes the underlying ssdio file (for stats and snapshots).
func (p *PageFile) File() *ssdio.File { return p.f }

// NumPages returns the number of pages ever allocated (including freed).
func (p *PageFile) NumPages() int64 { return int64(p.next) }

// Alloc returns a fresh (or recycled) page id. Allocation itself is a
// metadata operation with no simulated I/O cost; the first write pays.
func (p *PageFile) Alloc() PageID {
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		return id
	}
	id := p.next
	p.next++
	p.f.EnsureSize(int64(p.next) * int64(p.pageSize))
	return id
}

// AllocRun allocates n consecutive page ids (used by FD-tree sorted runs
// and bulk loaders that want sequential layout).
func (p *PageFile) AllocRun(n int) PageID {
	if n <= 0 {
		panic(fmt.Sprintf("pagefile: AllocRun(%d)", n))
	}
	id := p.next
	p.next += PageID(n)
	p.f.EnsureSize(int64(p.next) * int64(p.pageSize))
	return id
}

// Free recycles a page id.
func (p *PageFile) Free(id PageID) {
	p.free = append(p.free, id)
}

// check validates an id and returns its byte offset.
func (p *PageFile) check(id PageID) (int64, error) {
	if id < 0 || id >= p.next {
		return 0, fmt.Errorf("pagefile: page %d out of range [0,%d)", id, p.next)
	}
	return int64(id) * int64(p.pageSize), nil
}

// ReadPage synchronously reads one page at virtual time at into buf
// (len(buf) must equal the page size) and returns the completion time.
func (p *PageFile) ReadPage(at vtime.Ticks, id PageID, buf []byte) (vtime.Ticks, error) {
	off, err := p.check(id)
	if err != nil {
		return at, err
	}
	if len(buf) != p.pageSize {
		return at, fmt.Errorf("pagefile: read buffer %d bytes, want %d", len(buf), p.pageSize)
	}
	return p.f.Sync(at, ssdio.Req{Op: flashsim.Read, Off: off, Buf: buf})
}

// WritePage synchronously writes one page.
func (p *PageFile) WritePage(at vtime.Ticks, id PageID, buf []byte) (vtime.Ticks, error) {
	off, err := p.check(id)
	if err != nil {
		return at, err
	}
	if len(buf) != p.pageSize {
		return at, fmt.Errorf("pagefile: write buffer %d bytes, want %d", len(buf), p.pageSize)
	}
	return p.f.Sync(at, ssdio.Req{Op: flashsim.Write, Off: off, Buf: buf})
}

// ReadRun synchronously reads n consecutive pages starting at id as one
// large request (sequential I/O with package-level parallelism), filling
// buf of n*pageSize bytes.
func (p *PageFile) ReadRun(at vtime.Ticks, id PageID, n int, buf []byte) (vtime.Ticks, error) {
	off, err := p.check(id)
	if err != nil {
		return at, err
	}
	if _, err := p.check(id + PageID(n) - 1); err != nil {
		return at, err
	}
	if len(buf) != n*p.pageSize {
		return at, fmt.Errorf("pagefile: run buffer %d bytes, want %d", len(buf), n*p.pageSize)
	}
	return p.f.Sync(at, ssdio.Req{Op: flashsim.Read, Off: off, Buf: buf})
}

// WriteRun synchronously writes n consecutive pages as one large request.
func (p *PageFile) WriteRun(at vtime.Ticks, id PageID, n int, buf []byte) (vtime.Ticks, error) {
	off, err := p.check(id)
	if err != nil {
		return at, err
	}
	if _, err := p.check(id + PageID(n) - 1); err != nil {
		return at, err
	}
	if len(buf) != n*p.pageSize {
		return at, fmt.Errorf("pagefile: run buffer %d bytes, want %d", len(buf), n*p.pageSize)
	}
	return p.f.Sync(at, ssdio.Req{Op: flashsim.Write, Off: off, Buf: buf})
}

// PsyncRead reads the given pages in one psync call; bufs[i] receives page
// ids[i]. This is the read half of the paper's MPSearch descent.
func (p *PageFile) PsyncRead(at vtime.Ticks, ids []PageID, bufs [][]byte) (vtime.Ticks, error) {
	return p.psync(at, flashsim.Read, ids, bufs)
}

// PsyncWrite writes the given pages in one psync call; the write half of
// the paper's batch update.
func (p *PageFile) PsyncWrite(at vtime.Ticks, ids []PageID, bufs [][]byte) (vtime.Ticks, error) {
	return p.psync(at, flashsim.Write, ids, bufs)
}

func (p *PageFile) psync(at vtime.Ticks, op flashsim.Op, ids []PageID, bufs [][]byte) (vtime.Ticks, error) {
	if len(ids) != len(bufs) {
		return at, fmt.Errorf("pagefile: %d ids but %d buffers", len(ids), len(bufs))
	}
	if len(ids) == 0 {
		return at, nil
	}
	reqs := make([]ssdio.Req, len(ids))
	for i, id := range ids {
		off, err := p.check(id)
		if err != nil {
			return at, err
		}
		if len(bufs[i]) != p.pageSize {
			return at, fmt.Errorf("pagefile: buffer %d is %d bytes, want %d", i, len(bufs[i]), p.pageSize)
		}
		reqs[i] = ssdio.Req{Op: op, Off: off, Buf: bufs[i]}
	}
	return p.f.Psync(at, reqs)
}

// RunReq is one request of a psync batch covering N consecutive pages
// starting at First. A PIO B-tree leaf read/write is a single RunReq, so
// a batch of RunReqs exercises channel-level parallelism (many requests)
// and package-level parallelism (multi-page requests) simultaneously.
type RunReq struct {
	First PageID
	N     int
	Buf   []byte // N*pageSize bytes
	Write bool
}

// PsyncRuns submits a batch of run requests as one psync call.
func (p *PageFile) PsyncRuns(at vtime.Ticks, runs []RunReq) (vtime.Ticks, error) {
	if len(runs) == 0 {
		return at, nil
	}
	reqs, err := p.GatherRuns(runs)
	if err != nil {
		return at, err
	}
	return p.f.Psync(at, reqs)
}

// GatherRuns validates a batch of run requests and converts them to ssdio
// requests without submitting, so a coordinator can concatenate the
// batches of several page files into one cross-file psync submission
// (ssdio.PsyncGang). The data is neither read nor written until the gang
// is submitted.
func (p *PageFile) GatherRuns(runs []RunReq) ([]ssdio.Req, error) {
	reqs := make([]ssdio.Req, len(runs))
	for i, r := range runs {
		if r.N <= 0 {
			return nil, fmt.Errorf("pagefile: run %d has %d pages", i, r.N)
		}
		off, err := p.check(r.First)
		if err != nil {
			return nil, err
		}
		if _, err := p.check(r.First + PageID(r.N) - 1); err != nil {
			return nil, err
		}
		if len(r.Buf) != r.N*p.pageSize {
			return nil, fmt.Errorf("pagefile: run %d buffer %d bytes, want %d", i, len(r.Buf), r.N*p.pageSize)
		}
		op := flashsim.Read
		if r.Write {
			op = flashsim.Write
		}
		reqs[i] = ssdio.Req{Op: op, Off: off, Buf: r.Buf}
	}
	return reqs, nil
}

// ReadPageNoCost fetches page contents without simulated time, for
// verification and recovery inspection.
func (p *PageFile) ReadPageNoCost(id PageID, buf []byte) error {
	off, err := p.check(id)
	if err != nil {
		return err
	}
	return p.f.ReadAt(buf, off)
}

// WritePageNoCost stores page contents without simulated time, for bulk
// loading during experiment setup.
func (p *PageFile) WritePageNoCost(id PageID, buf []byte) error {
	off, err := p.check(id)
	if err != nil {
		return err
	}
	return p.f.WriteAt(buf, off)
}
