package faultio

import (
	"errors"
	"testing"

	"repro/internal/flashsim"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

func newSpace(t *testing.T) *ssdio.Space {
	t.Helper()
	cfg, err := flashsim.ProfileByName("p300")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := flashsim.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ssdio.NewSpace(dev)
}

func TestTransientWindow(t *testing.T) {
	sp := newSpace(t)
	f, err := sp.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sp.SetInjector(New(Program{Rules: []Rule{
		{Kind: Transient, File: "data", From: 100, Until: 200},
	}}))
	buf := make([]byte, 512)
	// Inside the window every call fails transiently.
	_, err = f.Psync(150, []ssdio.Req{{Op: flashsim.Write, Off: 0, Buf: buf}})
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != Transient || !fe.TransientIO() {
		t.Fatalf("want transient FaultError inside window, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("FaultError should unwrap to ErrInjected")
	}
	// Outside the window the plane is transparent.
	if _, err := f.Psync(250, []ssdio.Req{{Op: flashsim.Write, Off: 0, Buf: buf}}); err != nil {
		t.Fatalf("outside window: %v", err)
	}
}

func TestPermanentMarksFileDead(t *testing.T) {
	sp := newSpace(t)
	f, err := sp.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pl := New(Program{Rules: []Rule{
		{Kind: Permanent, File: "data", From: 100, Until: 101},
	}}) // fires only in a 1ns window...
	sp.SetInjector(pl)
	buf := make([]byte, 512)
	if _, err := f.Sync(100, ssdio.Req{Op: flashsim.Write, Buf: buf}); err == nil {
		t.Fatal("want permanent failure at t=100")
	}
	// ...but the file stays dead long after the window closed.
	_, err = f.Sync(10_000, ssdio.Req{Op: flashsim.Write, Buf: buf})
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != Permanent || fe.TransientIO() {
		t.Fatalf("want permanent FaultError after window, got %v", err)
	}
	if st := pl.Stats(); st.Permanent != 2 || st.DeadFiles != 1 {
		t.Fatalf("stats = %+v", st)
	}
	pl.Revive("data")
	if _, err := f.Sync(20_000, ssdio.Req{Op: flashsim.Write, Buf: buf}); err != nil {
		t.Fatalf("after Revive: %v", err)
	}
}

func TestLatencyAndStuckChargeVtime(t *testing.T) {
	sp := newSpace(t)
	f, err := sp.Create("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	base, err := f.Psync(0, []ssdio.Req{{Op: flashsim.Write, Off: 0, Buf: buf}})
	if err != nil {
		t.Fatal(err)
	}
	sp.SetInjector(New(Program{Rules: []Rule{
		{Kind: Latency, Delay: 5 * vtime.Millisecond},
	}}))
	slow, err := f.Psync(0, []ssdio.Req{{Op: flashsim.Write, Off: 0, Buf: buf}})
	if err != nil {
		t.Fatal(err)
	}
	if got := slow - base; got != 5*vtime.Millisecond {
		t.Fatalf("latency spike charged %v, want 5ms", got)
	}
	sp.SetInjector(New(Program{Rules: []Rule{
		{Kind: Stuck, Delay: 7 * vtime.Millisecond},
	}}))
	done, err := f.Psync(0, []ssdio.Req{{Op: flashsim.Write, Off: 0, Buf: buf}})
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != Stuck || !fe.TransientIO() {
		t.Fatalf("want stuck FaultError, got %v", err)
	}
	if done != 7*vtime.Millisecond {
		t.Fatalf("stuck op returned at %v, want the 7ms timeout", done)
	}
}

func TestPartialGang(t *testing.T) {
	sp := newSpace(t)
	a, err := sp.Create("a", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Create("b", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sp.SetInjector(New(Program{Rules: []Rule{
		{Kind: Transient, File: "b", Call: ssdio.CallGang},
	}}))
	wa := []byte{1, 2, 3, 4}
	wb := []byte{5, 6, 7, 8}
	_, err = ssdio.PsyncGang(0, []ssdio.GangBatch{
		{F: a, Reqs: []ssdio.Req{{Op: flashsim.Write, Off: 0, Buf: wa}}},
		{F: b, Reqs: []ssdio.Req{{Op: flashsim.Write, Off: 0, Buf: wb}}},
	})
	var pge *ssdio.PartialGangError
	if !errors.As(err, &pge) {
		t.Fatalf("want PartialGangError, got %v", err)
	}
	if pge.Landed != 1 || len(pge.Faults) != 1 || pge.Faults[0].Batch != 1 || pge.Faults[0].File != "b" {
		t.Fatalf("partial gang shape: %+v", pge)
	}
	if !pge.TransientIO() {
		t.Fatal("all-transient partial gang should classify transient")
	}
	// Batch a landed, batch b was never applied.
	got := make([]byte, 4)
	if err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wa) {
		t.Fatalf("landed batch contents: %v", got)
	}
	if err := b.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "\x00\x00\x00\x00" {
		t.Fatalf("failed batch must not touch contents: %v", got)
	}
}

func TestDeterministicProbability(t *testing.T) {
	run := func() []bool {
		pl := New(Program{Seed: 7, Rules: []Rule{{Kind: Transient, P: 0.5}}})
		outs := make([]bool, 0, 64)
		for at := vtime.Ticks(0); at < 64; at++ {
			d := pl.Decide("f", ssdio.CallPsync, at, []ssdio.Req{{Off: 0, Buf: make([]byte, 1)}})
			outs = append(outs, d.Err != nil)
		}
		return outs
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times; hash looks degenerate", fired, len(a))
	}
}

func TestParse(t *testing.T) {
	p, err := Parse(`
		seed=42
		# WAL gang forces flake for 40ms
		transient file=pio-1-wal-* call=gang p=0.2 from=10ms until=50ms
		latency delay=200us p=0.1; stuck call=psync delay=5ms
		permanent file=pio-1-shard-2 from=30ms
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Rules) != 4 {
		t.Fatalf("parsed %+v", p)
	}
	r := p.Rules[0]
	if r.Kind != Transient || r.File != "pio-1-wal-*" || r.Call != ssdio.CallGang ||
		r.P != 0.2 || r.From != 10*vtime.Millisecond || r.Until != 50*vtime.Millisecond {
		t.Fatalf("rule 0 = %+v", r)
	}
	if p.Rules[1].Delay != 200*vtime.Microsecond || p.Rules[2].Delay != 5*vtime.Millisecond {
		t.Fatalf("durations: %+v", p.Rules[1:3])
	}
	for _, bad := range []string{
		"flaky file=x",
		"transient p=1.5",
		"latency p=0.1",
		"transient call=fsync",
		"seed=42 extra",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}
