package faultio

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// Parse compiles a textual fault program. The format is line-oriented
// (newlines or ';' separate clauses, '#' starts a comment):
//
//	seed=42
//	transient file=pio-1-wal-* call=gang p=0.2 from=10ms until=50ms
//	latency delay=200us p=0.1
//	permanent file=pio-1-shard-2 from=30ms
//	stuck call=psync delay=5ms p=0.01
//	stall from=5ms delay=2ms every=20ms
//	readonly file=pio-1-wal-2 from=30ms
//
// The first word of a clause is the fault kind (or the seed setting);
// the remaining key=value fields fill the Rule. Durations accept ns, us,
// µs, ms, and s suffixes; a bare number is nanoseconds. An omitted p
// means the rule always fires inside its window. every= is valid only on
// stall rules (a periodic device-wide pulse of delay= length) and
// requires an explicit delay=.
func Parse(text string) (Program, error) {
	var p Program
	for _, line := range strings.FieldsFunc(text, func(r rune) bool { return r == '\n' || r == ';' }) {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		head := fields[0]
		if v, ok := strings.CutPrefix(head, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Program{}, fmt.Errorf("faultio: bad seed %q: %v", v, err)
			}
			p.Seed = seed
			if len(fields) > 1 {
				return Program{}, fmt.Errorf("faultio: trailing fields after %s", head)
			}
			continue
		}
		var r Rule
		switch head {
		case "transient":
			r.Kind = Transient
		case "permanent":
			r.Kind = Permanent
		case "latency":
			r.Kind = Latency
		case "stuck":
			r.Kind = Stuck
		case "stall":
			r.Kind = Stall
		case "readonly":
			r.Kind = ReadOnly
		default:
			return Program{}, fmt.Errorf("faultio: unknown fault kind %q", head)
		}
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return Program{}, fmt.Errorf("faultio: field %q is not key=value", f)
			}
			var err error
			switch key {
			case "file":
				r.File = val
			case "call":
				switch val {
				case ssdio.CallSync, ssdio.CallPsync, ssdio.CallGang:
					r.Call = val
				default:
					return Program{}, fmt.Errorf("faultio: unknown call kind %q", val)
				}
			case "p":
				r.P, err = strconv.ParseFloat(val, 64)
				// The inverted comparison also rejects NaN, which would
				// slip through `< 0 || > 1` and make fires() misbehave.
				if err == nil && !(r.P >= 0 && r.P <= 1) {
					err = fmt.Errorf("probability out of [0,1]")
				}
			case "from":
				r.From, err = parseTicks(val)
			case "until":
				r.Until, err = parseTicks(val)
			case "delay":
				r.Delay, err = parseTicks(val)
			case "every":
				r.Every, err = parseTicks(val)
			default:
				return Program{}, fmt.Errorf("faultio: unknown field %q", key)
			}
			if err != nil {
				return Program{}, fmt.Errorf("faultio: bad %s=%s: %v", key, val, err)
			}
		}
		if r.Kind == Latency && r.Delay == 0 {
			return Program{}, fmt.Errorf("faultio: latency rule needs delay=")
		}
		if r.Every > 0 && r.Kind != Stall {
			return Program{}, fmt.Errorf("faultio: every= is only valid on stall rules")
		}
		if r.Kind == Stall && r.Every > 0 && r.Delay == 0 {
			return Program{}, fmt.Errorf("faultio: periodic stall rule needs delay=")
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

// parseTicks parses a duration with an ns/us/µs/ms/s suffix (bare
// numbers are nanoseconds) into vtime Ticks.
func parseTicks(s string) (vtime.Ticks, error) {
	unit := vtime.Nanosecond
	num := s
	for _, u := range []struct {
		suffix string
		ticks  vtime.Ticks
	}{
		{"ns", vtime.Nanosecond},
		{"us", vtime.Microsecond},
		{"µs", vtime.Microsecond},
		{"ms", vtime.Millisecond},
		{"s", vtime.Second},
	} {
		if v, ok := strings.CutSuffix(s, u.suffix); ok {
			unit, num = u.ticks, v
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite duration")
	}
	if v < 0 {
		return 0, fmt.Errorf("negative duration")
	}
	// Cap well below the int64 range: an overflowing float-to-Ticks
	// conversion is implementation-specific (it can wrap negative), and
	// the injectors add delays to the clock, which must never overflow.
	t := v * float64(unit)
	if t > float64(math.MaxInt64/4) {
		return 0, fmt.Errorf("duration too large")
	}
	return vtime.Ticks(t), nil
}
